// Quickstart: two replica groups in the simulator, a handful of global and
// local multicasts through FastCast, and the delivery order printed from
// every replica — the five-minute tour of the public API.
//
// Observability tour: run with `--trace spans.json` to dump every message's
// lifecycle span and with `--metrics-out metrics.json` for the protocol
// counters; both also print a short summary to stdout.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "fastcast/harness/experiment.hpp"
#include "fastcast/obs/observability.hpp"

using namespace fastcast;
using namespace fastcast::harness;

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    auto want_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "quickstart: %s needs a path\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = want_value("--trace");
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metrics_path = want_value("--metrics-out");
    } else {
      std::fprintf(stderr,
                   "usage: quickstart [--trace <path>] [--metrics-out <path>]\n");
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = 2;
  cfg.topo.clients = 2;
  cfg.topo.protocol = Protocol::kFastCast;
  // Client 0 sends global messages (both groups); client 1 local to group 1.
  cfg.dst_factory = [](std::size_t idx) -> DstPicker {
    if (idx == 0) return all_groups(2);
    return fixed_group(1);
  };
  cfg.warmup = milliseconds(0);
  cfg.measure = milliseconds(50);
  cfg.check_level = Checker::Level::kFull;
  cfg.observe = true;
  cfg.trace = !trace_path.empty();

  Cluster cluster(cfg);

  // Record every replica's delivery sequence for printing.
  std::map<NodeId, std::vector<MsgId>> orders;
  for (NodeId n : cluster.deployment().membership.all_replicas()) {
    cluster.replica(n).add_observer(
        [&orders](Context& ctx, const MulticastMessage& msg) {
          orders[ctx.self()].push_back(msg.id);
        });
  }

  cluster.start();
  cluster.stop_clients(milliseconds(50));
  cluster.simulator().run_to_idle();

  std::printf("FastCast quickstart: 2 groups x 3 replicas, 2 clients\n\n");
  for (const auto& [node, seq] : orders) {
    std::printf("replica %u (group %u) a-delivered %zu messages:",
                node, cluster.deployment().membership.group_of(node), seq.size());
    for (MsgId mid : seq) {
      std::printf(" %u.%u", msg_id_sender(mid), msg_id_seq(mid));
    }
    std::printf("\n");
  }

  const auto report = cluster.checker().check(/*quiesced=*/true);
  auto& obs = *cluster.observability();
  report.publish(obs.metrics);
  const auto checked = obs.metrics.counter_value("checker.multicasts");
  const auto compared = obs.metrics.counter_value("checker.orders_compared");
  std::printf("\nchecker: %s (%llu messages checked, %llu orders compared)\n",
              report.ok ? "all atomic-multicast properties hold" : "VIOLATIONS",
              static_cast<unsigned long long>(checked),
              static_cast<unsigned long long>(compared));
  for (const auto& v : report.violations) std::printf("  %s\n", v.c_str());

  std::printf("\nprotocol metrics:\n");
  std::ostringstream text;
  obs.metrics.write_text(text);
  std::fputs(text.str().c_str(), stdout);

  bool io_ok = true;
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (out) {
      obs.metrics.write_json(out);
      out << '\n';
      std::printf("\nwrote metrics to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "quickstart: cannot write %s\n",
                   metrics_path.c_str());
      io_ok = false;
    }
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (out) {
      obs.tracer.dump_json(out);
      std::printf("wrote %zu message spans to %s\n", obs.tracer.span_count(),
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "quickstart: cannot write %s\n", trace_path.c_str());
      io_ok = false;
    }
  }
  return report.ok && io_ok ? 0 : 1;
}
