// Quickstart: two replica groups in the simulator, a handful of global and
// local multicasts through FastCast, and the delivery order printed from
// every replica — the five-minute tour of the public API.

#include <cstdio>
#include <map>
#include <vector>

#include "fastcast/harness/experiment.hpp"

using namespace fastcast;
using namespace fastcast::harness;

int main() {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = 2;
  cfg.topo.clients = 2;
  cfg.topo.protocol = Protocol::kFastCast;
  // Client 0 sends global messages (both groups); client 1 local to group 1.
  cfg.dst_factory = [](std::size_t idx) -> DstPicker {
    if (idx == 0) return all_groups(2);
    return fixed_group(1);
  };
  cfg.warmup = milliseconds(0);
  cfg.measure = milliseconds(50);
  cfg.check_level = Checker::Level::kFull;

  Cluster cluster(cfg);

  // Record every replica's delivery sequence for printing.
  std::map<NodeId, std::vector<MsgId>> orders;
  for (NodeId n : cluster.deployment().membership.all_replicas()) {
    cluster.replica(n).add_observer(
        [&orders](Context& ctx, const MulticastMessage& msg) {
          orders[ctx.self()].push_back(msg.id);
        });
  }

  cluster.start();
  cluster.stop_clients(milliseconds(50));
  cluster.simulator().run_to_idle();

  std::printf("FastCast quickstart: 2 groups x 3 replicas, 2 clients\n\n");
  for (const auto& [node, seq] : orders) {
    std::printf("replica %u (group %u) a-delivered %zu messages:",
                node, cluster.deployment().membership.group_of(node), seq.size());
    for (MsgId mid : seq) {
      std::printf(" %u.%u", msg_id_sender(mid), msg_id_seq(mid));
    }
    std::printf("\n");
  }

  const auto report = cluster.checker().check(/*quiesced=*/true);
  std::printf("\nchecker: %s (%llu multicasts, %llu deliveries)\n",
              report.ok ? "all atomic-multicast properties hold" : "VIOLATIONS",
              static_cast<unsigned long long>(report.multicast_count),
              static_cast<unsigned long long>(report.delivery_count));
  for (const auto& v : report.violations) std::printf("  %s\n", v.c_str());
  return report.ok ? 0 : 1;
}
