// The paper's social-network service (§5.3) at demo scale: 400 users
// partitioned over 4 groups by the from-scratch graph partitioner, posts
// atomically multicast to every group holding a follower, timelines
// maintained as a replicated state machine. Prints the spread histogram,
// a few timelines, and verifies all replicas of each partition agree.

#include <cstdio>
#include <map>

#include "fastcast/app/socialnet/partitioner.hpp"
#include "fastcast/app/socialnet/service.hpp"
#include "fastcast/harness/experiment.hpp"

using namespace fastcast;
using namespace fastcast::harness;
using namespace fastcast::app;

int main() {
  // 1. Build the social graph and partition it (the METIS stand-in).
  SocialGraphConfig gcfg;
  gcfg.users = 400;
  gcfg.communities = 4;
  gcfg.seed = 11;
  SocialGraph graph = generate_social_graph(gcfg);
  PartitionerConfig pcfg;
  pcfg.partitions = 4;
  PartitionResult partition = partition_graph(graph, pcfg);
  std::printf("social graph: %zu users, %zu follow edges, %zu cut by "
              "partitioning (%.1f%%)\n",
              graph.user_count, graph.edge_count(), partition.cut_edges,
              100.0 * static_cast<double>(partition.cut_edges) /
                  static_cast<double>(graph.edge_count()));
  const auto hist = spread_histogram(graph, partition.partition_of, 4);
  std::printf("follower spread:");
  for (std::size_t k = 0; k < hist.size(); ++k) {
    std::printf("  %zu users span %zu", hist[k], k + 1);
  }
  std::printf("\n\n");

  auto service = std::make_shared<SocialNetworkService>(
      std::move(graph), std::move(partition.partition_of), 4);

  // 2. Deploy FastCast over 4 groups. Client c posts on behalf of users
  // c, c+4, c+8, ... — the picker derives each message's destinations from
  // the planned poster, and the message id's sequence number recovers the
  // poster on delivery (so replicas can apply the post deterministically).
  const std::size_t n_clients = 4;
  auto poster_for = [service](std::size_t client, std::uint32_t seq) {
    return static_cast<UserId>((client + n_clients * seq) % service->user_count());
  };

  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = 4;
  cfg.topo.clients = n_clients;
  cfg.topo.protocol = Protocol::kFastCast;
  cfg.warmup = 0;
  cfg.measure = milliseconds(150);
  cfg.dst_factory = [service, poster_for](std::size_t client) -> DstPicker {
    auto seq = std::make_shared<std::uint32_t>(0);
    return [service, poster_for, client, seq](Rng&) {
      return service->post_destinations(poster_for(client, (*seq)++));
    };
  };

  Cluster cluster(cfg);

  std::map<NodeId, TimelineState> timelines;
  const auto& membership = cluster.deployment().membership;
  const NodeId first_client = cluster.deployment().clients[0];
  for (NodeId n : membership.all_replicas()) {
    timelines.emplace(n, TimelineState(service));
    cluster.replica(n).add_observer(
        [&timelines, poster_for, first_client](Context& ctx,
                                               const MulticastMessage& m) {
          const std::size_t client = msg_id_sender(m.id) - first_client;
          const UserId poster = poster_for(client, msg_id_seq(m.id));
          MulticastMessage post = m;
          post.payload = SocialNetworkService::encode_post(poster, msg_id_seq(m.id));
          timelines.at(ctx.self()).apply(ctx.my_group(), post);
        });
  }

  cluster.start();
  cluster.stop_clients(milliseconds(150));
  cluster.simulator().run_to_idle();

  // 3. Verify replicated-timeline agreement per partition and show reads.
  bool consistent = true;
  for (GroupId g = 0; g < 4; ++g) {
    const auto& members = membership.members(g);
    const auto digest = timelines.at(members[0]).digest();
    bool group_ok = true;
    for (NodeId n : members) {
      if (timelines.at(n).digest() != digest) group_ok = false;
    }
    consistent = consistent && group_ok;
    std::printf("partition %u: %llu posts applied, replica digests %s\n", g,
                static_cast<unsigned long long>(
                    timelines.at(members[0]).applied_count()),
                group_ok ? "agree" : "DIVERGE");
  }

  std::printf("\nsample timelines (newest first):\n");
  for (UserId u : {0u, 1u, 2u}) {
    const GroupId home = service->partition_of(u);
    const NodeId replica = membership.members(home)[0];
    std::printf("  user %u (partition %u): ", u, home);
    for (const auto& entry : timelines.at(replica).read_timeline(u, 4)) {
      std::printf("%s ", entry.c_str());
    }
    std::printf("\n");
  }

  const auto report = cluster.checker().check(true);
  std::printf("\nchecker: %s\n",
              report.ok ? "all atomic-multicast properties hold"
                        : report.violations[0].c_str());
  return (consistent && report.ok) ? 0 : 1;
}
