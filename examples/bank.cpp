// Multi-partition bank on top of FastCast: accounts are sharded over
// three replica groups; deposits are local messages, transfers between
// accounts in different shards are global messages. Because atomic
// multicast orders the transfers consistently at both shards, every
// replica of a shard computes the same balances and no money is created
// or destroyed — which the example verifies at the end.

#include <cstdio>
#include <map>
#include <vector>

#include "fastcast/harness/experiment.hpp"

using namespace fastcast;
using namespace fastcast::harness;

namespace {

constexpr std::size_t kShards = 3;
constexpr std::size_t kAccountsPerShard = 4;

struct Op {
  enum class Kind : std::uint8_t { kDeposit, kTransfer } kind;
  std::uint32_t from = 0;  // account ids; shard = id % kShards
  std::uint32_t to = 0;
  std::int64_t amount = 0;
};

GroupId shard_of(std::uint32_t account) {
  return static_cast<GroupId>(account % kShards);
}

/// The replicated state machine applied on every a-delivery.
struct BankState {
  std::map<std::uint32_t, std::int64_t> balances;

  void apply(GroupId my_shard, const Op& op) {
    if (op.kind == Op::Kind::kDeposit) {
      if (shard_of(op.to) == my_shard) balances[op.to] += op.amount;
      return;
    }
    // A transfer debits in the source shard and credits in the target
    // shard; both shards a-deliver the same message in a consistent order.
    if (shard_of(op.from) == my_shard) balances[op.from] -= op.amount;
    if (shard_of(op.to) == my_shard) balances[op.to] += op.amount;
  }
};

}  // namespace

int main() {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = kShards;
  cfg.topo.clients = 2;
  cfg.topo.protocol = Protocol::kFastCast;
  // The harness clients aren't used for the workload; ops are injected
  // below via a scripted destination picker that cycles the op list.
  struct Script {
    std::vector<Op> ops;
    std::size_t next = 0;
  };
  auto script = std::make_shared<Script>();
  Rng rng(2026);
  const std::size_t total_accounts = kShards * kAccountsPerShard;
  for (std::uint32_t a = 0; a < total_accounts; ++a) {
    script->ops.push_back({Op::Kind::kDeposit, 0, a, 1000});
  }
  for (int i = 0; i < 60; ++i) {
    const auto from = static_cast<std::uint32_t>(rng.uniform(total_accounts));
    auto to = static_cast<std::uint32_t>(rng.uniform(total_accounts));
    if (to == from) to = (to + 1) % total_accounts;
    script->ops.push_back(
        {Op::Kind::kTransfer, from, to, static_cast<std::int64_t>(rng.uniform(100))});
  }

  // Each client pulls the next scripted op: the destination picker reads
  // the op at the shared cursor; the multicast observer below advances the
  // cursor and records message-id -> op for the replicas to apply. Once
  // the script is exhausted the cursor wraps over the transfer section
  // only, so deposits happen exactly once and money stays conserved.
  auto op_at = [script](std::size_t i) -> const Op& {
    if (i < script->ops.size()) return script->ops[i];
    const std::size_t deposits = kShards * kAccountsPerShard;
    const std::size_t transfers = script->ops.size() - deposits;
    return script->ops[deposits + (i - script->ops.size()) % transfers];
  };
  cfg.dst_factory = [script, op_at](std::size_t) -> DstPicker {
    return [script, op_at](Rng&) -> std::vector<GroupId> {
      const Op& op = op_at(script->next);
      if (op.kind == Op::Kind::kDeposit) return {shard_of(op.to)};
      if (shard_of(op.from) == shard_of(op.to)) return {shard_of(op.from)};
      std::vector<GroupId> dst{shard_of(op.from), shard_of(op.to)};
      if (dst[0] > dst[1]) std::swap(dst[0], dst[1]);
      return dst;
    };
  };
  cfg.warmup = 0;
  cfg.measure = milliseconds(200);

  Cluster cluster(cfg);

  // Per-replica bank states, updated on a-delivery.
  std::map<MsgId, Op> op_of;
  std::map<NodeId, BankState> states;
  for (std::size_t c = 0; c < 2; ++c) {
    cluster.client(c).add_multicast_observer(
        [script, op_at, &op_of](const MulticastMessage& m) {
          op_of[m.id] = op_at(script->next);
          ++script->next;
        });
  }
  for (NodeId n : cluster.deployment().membership.all_replicas()) {
    cluster.replica(n).add_observer(
        [&states, &op_of](Context& ctx, const MulticastMessage& m) {
          states[ctx.self()].apply(ctx.my_group(), op_of.at(m.id));
        });
  }

  cluster.start();
  cluster.stop_clients(milliseconds(200));
  cluster.simulator().run_to_idle();

  // Verify: replicas of one shard agree exactly, and the global balance
  // equals the sum of deposits (transfers conserve money).
  std::int64_t global = 0;
  bool consistent = true;
  const auto& membership = cluster.deployment().membership;
  for (GroupId g = 0; g < kShards; ++g) {
    const auto& members = membership.members(g);
    for (std::size_t i = 1; i < members.size(); ++i) {
      if (states[members[i]].balances != states[members[0]].balances) {
        consistent = false;
      }
    }
    std::printf("shard %u balances:", g);
    for (const auto& [account, balance] : states[members[0]].balances) {
      std::printf(" a%u=%lld", account, static_cast<long long>(balance));
      global += balance;
    }
    std::printf("\n");
  }
  const auto deposits =
      static_cast<std::int64_t>(kShards * kAccountsPerShard) * 1000;
  std::printf("\nreplica consistency: %s\n", consistent ? "OK" : "BROKEN");
  std::printf("global balance: %lld (deposited %lld) -> %s\n",
              static_cast<long long>(global), static_cast<long long>(deposits),
              global == deposits ? "conserved" : "VIOLATED");
  const auto report = cluster.checker().check(true);
  std::printf("checker: %s\n", report.ok ? "ok" : report.violations[0].c_str());
  return (consistent && global == deposits && report.ok) ? 0 : 1;
}
