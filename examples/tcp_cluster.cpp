// The same FastCast protocol objects the simulator runs, deployed over
// real TCP sockets: 2 groups × 3 replicas plus one client, each node a
// thread with its own socket transport, all inside this process. The
// client multicasts 30 global messages and prints the measured latency.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "fastcast/amcast/client_stub.hpp"
#include "fastcast/amcast/fastcast.hpp"
#include "fastcast/amcast/node.hpp"
#include "fastcast/checker/checker.hpp"
#include "fastcast/common/stats.hpp"
#include "fastcast/net/tcp_cluster.hpp"

using namespace fastcast;

namespace {

constexpr int kMessages = 30;

class DemoClient : public Process {
 public:
  DemoClient(std::mutex* mu, Checker* checker, LatencyRecorder* latencies,
             std::atomic<int>* completed)
      : mu_(mu), checker_(checker), latencies_(latencies), completed_(completed) {}

  void on_start(Context& ctx) override {
    stub_.on_start(ctx);
    send_next(ctx);
  }

  void on_message(Context& ctx, NodeId from, const Message& msg) override {
    if (const auto* ack = std::get_if<AmAck>(&msg.payload)) {
      if (ack->mid != outstanding_) return;  // later replicas' acks
      {
        std::lock_guard<std::mutex> lock(*mu_);
        latencies_->add(ctx.now() - sent_at_);
      }
      outstanding_ = 0;
      completed_->fetch_add(1);
      if (next_seq_ < kMessages) send_next(ctx);
      return;
    }
    stub_.handle(ctx, from, msg);
  }

 private:
  void send_next(Context& ctx) {
    MulticastMessage m;
    m.id = make_msg_id(ctx.self(), next_seq_++);
    m.sender = ctx.self();
    m.dst = {0, 1};
    m.payload = "hello over tcp";
    outstanding_ = m.id;
    sent_at_ = ctx.now();
    {
      std::lock_guard<std::mutex> lock(*mu_);
      checker_->note_multicast(m);
    }
    stub_.amulticast(ctx, m);
  }

  GenuineClientStub stub_;
  std::mutex* mu_;
  Checker* checker_;
  LatencyRecorder* latencies_;
  std::atomic<int>* completed_;
  std::uint32_t next_seq_ = 0;
  MsgId outstanding_ = 0;
  Time sent_at_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  net::BackendKind backend = net::BackendKind::kPoll;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--transport-backend=", 20) == 0) {
      const auto parsed = net::parse_backend_kind(arg + 20);
      if (!parsed) {
        std::fprintf(stderr, "unknown backend '%s' (poll|uring|auto)\n",
                     arg + 20);
        return 2;
      }
      backend = *parsed;
    } else {
      std::fprintf(stderr,
                   "usage: tcp_cluster [--transport-backend=poll|uring|auto]\n");
      return std::strcmp(arg, "--help") == 0 ? 0 : 2;
    }
  }
  if (backend == net::BackendKind::kUring && !net::uring_available()) {
    std::fprintf(stderr, "io_uring is not available on this host\n");
    return 2;
  }

  Membership membership;
  membership.add_group(3, {0, 0, 0});
  membership.add_group(3, {0, 0, 0});
  const NodeId client_node = membership.add_client(0);

  net::TcpCluster::Config cfg;
  cfg.membership = membership;
  cfg.base_port = 19300;
  cfg.backend = backend;
  net::TcpCluster cluster(std::move(cfg));

  std::mutex mu;
  Checker checker(&membership);
  LatencyRecorder latencies;
  std::atomic<int> completed{0};

  for (NodeId n : membership.all_replicas()) {
    const GroupId g = membership.group_of(n);
    TimestampProtocolBase::Config pc;
    pc.group = g;
    pc.consensus.group = g;
    pc.consensus.members = membership.members(g);
    auto node = std::make_shared<ReplicaNode>(std::make_shared<FastCast>(pc, n));
    node->add_observer([&mu, &checker](Context& ctx, const MulticastMessage& m) {
      std::lock_guard<std::mutex> lock(mu);
      checker.note_delivery(ctx.self(), m.id);
    });
    cluster.add_process(n, node);
  }
  cluster.add_process(client_node, std::make_shared<DemoClient>(
                                       &mu, &checker, &latencies, &completed));

  std::printf(
      "starting 7 nodes (6 replicas + 1 client) on 127.0.0.1:19300+ "
      "[%s backend]...\n",
      net::to_string(net::resolve_backend(backend)));
  cluster.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (completed.load() < kMessages &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));  // stragglers
  cluster.stop();

  std::lock_guard<std::mutex> lock(mu);
  std::printf("completed %d/%d multicasts over TCP\n", completed.load(), kMessages);
  if (!latencies.empty()) {
    std::printf("latency: median %.3f ms, p95 %.3f ms, max %.3f ms\n",
                to_milliseconds(latencies.median()),
                to_milliseconds(latencies.percentile(95)),
                to_milliseconds(latencies.max()));
  }
  const auto report = checker.check(/*quiesced=*/true);
  std::printf("checker: %s\n", report.ok
                                   ? "all atomic-multicast properties hold"
                                   : report.violations[0].c_str());
  return (completed.load() == kMessages && report.ok) ? 0 : 1;
}
