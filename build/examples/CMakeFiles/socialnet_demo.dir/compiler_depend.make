# Empty compiler generated dependencies file for socialnet_demo.
# This may be replaced when dependencies are built.
