file(REMOVE_RECURSE
  "CMakeFiles/socialnet_demo.dir/socialnet_demo.cpp.o"
  "CMakeFiles/socialnet_demo.dir/socialnet_demo.cpp.o.d"
  "socialnet_demo"
  "socialnet_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socialnet_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
