# Empty dependencies file for genuineness_test.
# This may be replaced when dependencies are built.
