file(REMOVE_RECURSE
  "CMakeFiles/genuineness_test.dir/genuineness_test.cpp.o"
  "CMakeFiles/genuineness_test.dir/genuineness_test.cpp.o.d"
  "genuineness_test"
  "genuineness_test.pdb"
  "genuineness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genuineness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
