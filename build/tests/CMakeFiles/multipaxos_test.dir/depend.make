# Empty dependencies file for multipaxos_test.
# This may be replaced when dependencies are built.
