file(REMOVE_RECURSE
  "CMakeFiles/multipaxos_test.dir/multipaxos_test.cpp.o"
  "CMakeFiles/multipaxos_test.dir/multipaxos_test.cpp.o.d"
  "multipaxos_test"
  "multipaxos_test.pdb"
  "multipaxos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipaxos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
