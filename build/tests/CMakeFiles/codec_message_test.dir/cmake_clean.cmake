file(REMOVE_RECURSE
  "CMakeFiles/codec_message_test.dir/codec_message_test.cpp.o"
  "CMakeFiles/codec_message_test.dir/codec_message_test.cpp.o.d"
  "codec_message_test"
  "codec_message_test.pdb"
  "codec_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
