# Empty dependencies file for codec_message_test.
# This may be replaced when dependencies are built.
