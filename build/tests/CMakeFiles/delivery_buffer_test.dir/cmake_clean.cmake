file(REMOVE_RECURSE
  "CMakeFiles/delivery_buffer_test.dir/delivery_buffer_test.cpp.o"
  "CMakeFiles/delivery_buffer_test.dir/delivery_buffer_test.cpp.o.d"
  "delivery_buffer_test"
  "delivery_buffer_test.pdb"
  "delivery_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delivery_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
