# Empty dependencies file for rmcast_test.
# This may be replaced when dependencies are built.
