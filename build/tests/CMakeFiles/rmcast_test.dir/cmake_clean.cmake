file(REMOVE_RECURSE
  "CMakeFiles/rmcast_test.dir/rmcast_test.cpp.o"
  "CMakeFiles/rmcast_test.dir/rmcast_test.cpp.o.d"
  "rmcast_test"
  "rmcast_test.pdb"
  "rmcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
