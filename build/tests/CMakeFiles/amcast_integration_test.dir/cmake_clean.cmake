file(REMOVE_RECURSE
  "CMakeFiles/amcast_integration_test.dir/amcast_integration_test.cpp.o"
  "CMakeFiles/amcast_integration_test.dir/amcast_integration_test.cpp.o.d"
  "amcast_integration_test"
  "amcast_integration_test.pdb"
  "amcast_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amcast_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
