# Empty dependencies file for amcast_integration_test.
# This may be replaced when dependencies are built.
