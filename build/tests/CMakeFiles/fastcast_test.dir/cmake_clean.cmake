file(REMOVE_RECURSE
  "CMakeFiles/fastcast_test.dir/fastcast_test.cpp.o"
  "CMakeFiles/fastcast_test.dir/fastcast_test.cpp.o.d"
  "fastcast_test"
  "fastcast_test.pdb"
  "fastcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
