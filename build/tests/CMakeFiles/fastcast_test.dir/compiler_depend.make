# Empty compiler generated dependencies file for fastcast_test.
# This may be replaced when dependencies are built.
