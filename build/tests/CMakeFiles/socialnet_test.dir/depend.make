# Empty dependencies file for socialnet_test.
# This may be replaced when dependencies are built.
