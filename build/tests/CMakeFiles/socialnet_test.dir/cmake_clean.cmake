file(REMOVE_RECURSE
  "CMakeFiles/socialnet_test.dir/socialnet_test.cpp.o"
  "CMakeFiles/socialnet_test.dir/socialnet_test.cpp.o.d"
  "socialnet_test"
  "socialnet_test.pdb"
  "socialnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socialnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
