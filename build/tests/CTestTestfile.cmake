# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/codec_message_test[1]_include.cmake")
include("/root/repo/build/tests/membership_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rmcast_test[1]_include.cmake")
include("/root/repo/build/tests/paxos_test[1]_include.cmake")
include("/root/repo/build/tests/delivery_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/amcast_integration_test[1]_include.cmake")
include("/root/repo/build/tests/fastcast_test[1]_include.cmake")
include("/root/repo/build/tests/multipaxos_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/socialnet_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/genuineness_test[1]_include.cmake")
