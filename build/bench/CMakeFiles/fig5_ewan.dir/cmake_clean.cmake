file(REMOVE_RECURSE
  "CMakeFiles/fig5_ewan.dir/fig5_ewan.cpp.o"
  "CMakeFiles/fig5_ewan.dir/fig5_ewan.cpp.o.d"
  "fig5_ewan"
  "fig5_ewan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ewan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
