# Empty compiler generated dependencies file for fig5_ewan.
# This may be replaced when dependencies are built.
