file(REMOVE_RECURSE
  "CMakeFiles/fig6_wan.dir/fig6_wan.cpp.o"
  "CMakeFiles/fig6_wan.dir/fig6_wan.cpp.o.d"
  "fig6_wan"
  "fig6_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
