# Empty compiler generated dependencies file for fig6_wan.
# This may be replaced when dependencies are built.
