file(REMOVE_RECURSE
  "CMakeFiles/fig4_lan.dir/fig4_lan.cpp.o"
  "CMakeFiles/fig4_lan.dir/fig4_lan.cpp.o.d"
  "fig4_lan"
  "fig4_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
