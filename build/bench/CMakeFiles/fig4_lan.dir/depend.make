# Empty dependencies file for fig4_lan.
# This may be replaced when dependencies are built.
