# Empty dependencies file for fig7_socialnet.
# This may be replaced when dependencies are built.
