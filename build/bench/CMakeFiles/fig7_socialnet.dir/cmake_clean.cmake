file(REMOVE_RECURSE
  "CMakeFiles/fig7_socialnet.dir/fig7_socialnet.cpp.o"
  "CMakeFiles/fig7_socialnet.dir/fig7_socialnet.cpp.o.d"
  "fig7_socialnet"
  "fig7_socialnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_socialnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
