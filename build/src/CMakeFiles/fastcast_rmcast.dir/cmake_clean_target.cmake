file(REMOVE_RECURSE
  "libfastcast_rmcast.a"
)
