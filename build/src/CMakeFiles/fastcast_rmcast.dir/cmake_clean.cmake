file(REMOVE_RECURSE
  "CMakeFiles/fastcast_rmcast.dir/rmcast/reliable_multicast.cpp.o"
  "CMakeFiles/fastcast_rmcast.dir/rmcast/reliable_multicast.cpp.o.d"
  "libfastcast_rmcast.a"
  "libfastcast_rmcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastcast_rmcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
