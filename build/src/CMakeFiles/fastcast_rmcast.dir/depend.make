# Empty dependencies file for fastcast_rmcast.
# This may be replaced when dependencies are built.
