file(REMOVE_RECURSE
  "CMakeFiles/fastcast_common.dir/common/codec.cpp.o"
  "CMakeFiles/fastcast_common.dir/common/codec.cpp.o.d"
  "CMakeFiles/fastcast_common.dir/common/logging.cpp.o"
  "CMakeFiles/fastcast_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/fastcast_common.dir/common/stats.cpp.o"
  "CMakeFiles/fastcast_common.dir/common/stats.cpp.o.d"
  "libfastcast_common.a"
  "libfastcast_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastcast_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
