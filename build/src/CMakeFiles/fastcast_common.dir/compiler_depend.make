# Empty compiler generated dependencies file for fastcast_common.
# This may be replaced when dependencies are built.
