file(REMOVE_RECURSE
  "libfastcast_common.a"
)
