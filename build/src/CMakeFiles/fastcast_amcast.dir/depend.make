# Empty dependencies file for fastcast_amcast.
# This may be replaced when dependencies are built.
