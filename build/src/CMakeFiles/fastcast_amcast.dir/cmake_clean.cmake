file(REMOVE_RECURSE
  "CMakeFiles/fastcast_amcast.dir/amcast/basecast.cpp.o"
  "CMakeFiles/fastcast_amcast.dir/amcast/basecast.cpp.o.d"
  "CMakeFiles/fastcast_amcast.dir/amcast/client_stub.cpp.o"
  "CMakeFiles/fastcast_amcast.dir/amcast/client_stub.cpp.o.d"
  "CMakeFiles/fastcast_amcast.dir/amcast/delivery_buffer.cpp.o"
  "CMakeFiles/fastcast_amcast.dir/amcast/delivery_buffer.cpp.o.d"
  "CMakeFiles/fastcast_amcast.dir/amcast/fastcast.cpp.o"
  "CMakeFiles/fastcast_amcast.dir/amcast/fastcast.cpp.o.d"
  "CMakeFiles/fastcast_amcast.dir/amcast/multipaxos_amcast.cpp.o"
  "CMakeFiles/fastcast_amcast.dir/amcast/multipaxos_amcast.cpp.o.d"
  "CMakeFiles/fastcast_amcast.dir/amcast/node.cpp.o"
  "CMakeFiles/fastcast_amcast.dir/amcast/node.cpp.o.d"
  "CMakeFiles/fastcast_amcast.dir/amcast/timestamp_base.cpp.o"
  "CMakeFiles/fastcast_amcast.dir/amcast/timestamp_base.cpp.o.d"
  "libfastcast_amcast.a"
  "libfastcast_amcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastcast_amcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
