
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amcast/basecast.cpp" "src/CMakeFiles/fastcast_amcast.dir/amcast/basecast.cpp.o" "gcc" "src/CMakeFiles/fastcast_amcast.dir/amcast/basecast.cpp.o.d"
  "/root/repo/src/amcast/client_stub.cpp" "src/CMakeFiles/fastcast_amcast.dir/amcast/client_stub.cpp.o" "gcc" "src/CMakeFiles/fastcast_amcast.dir/amcast/client_stub.cpp.o.d"
  "/root/repo/src/amcast/delivery_buffer.cpp" "src/CMakeFiles/fastcast_amcast.dir/amcast/delivery_buffer.cpp.o" "gcc" "src/CMakeFiles/fastcast_amcast.dir/amcast/delivery_buffer.cpp.o.d"
  "/root/repo/src/amcast/fastcast.cpp" "src/CMakeFiles/fastcast_amcast.dir/amcast/fastcast.cpp.o" "gcc" "src/CMakeFiles/fastcast_amcast.dir/amcast/fastcast.cpp.o.d"
  "/root/repo/src/amcast/multipaxos_amcast.cpp" "src/CMakeFiles/fastcast_amcast.dir/amcast/multipaxos_amcast.cpp.o" "gcc" "src/CMakeFiles/fastcast_amcast.dir/amcast/multipaxos_amcast.cpp.o.d"
  "/root/repo/src/amcast/node.cpp" "src/CMakeFiles/fastcast_amcast.dir/amcast/node.cpp.o" "gcc" "src/CMakeFiles/fastcast_amcast.dir/amcast/node.cpp.o.d"
  "/root/repo/src/amcast/timestamp_base.cpp" "src/CMakeFiles/fastcast_amcast.dir/amcast/timestamp_base.cpp.o" "gcc" "src/CMakeFiles/fastcast_amcast.dir/amcast/timestamp_base.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastcast_paxos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastcast_rmcast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastcast_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastcast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
