file(REMOVE_RECURSE
  "libfastcast_amcast.a"
)
