file(REMOVE_RECURSE
  "libfastcast_paxos.a"
)
