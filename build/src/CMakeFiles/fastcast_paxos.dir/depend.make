# Empty dependencies file for fastcast_paxos.
# This may be replaced when dependencies are built.
