
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paxos/acceptor.cpp" "src/CMakeFiles/fastcast_paxos.dir/paxos/acceptor.cpp.o" "gcc" "src/CMakeFiles/fastcast_paxos.dir/paxos/acceptor.cpp.o.d"
  "/root/repo/src/paxos/group_consensus.cpp" "src/CMakeFiles/fastcast_paxos.dir/paxos/group_consensus.cpp.o" "gcc" "src/CMakeFiles/fastcast_paxos.dir/paxos/group_consensus.cpp.o.d"
  "/root/repo/src/paxos/leader_elector.cpp" "src/CMakeFiles/fastcast_paxos.dir/paxos/leader_elector.cpp.o" "gcc" "src/CMakeFiles/fastcast_paxos.dir/paxos/leader_elector.cpp.o.d"
  "/root/repo/src/paxos/learner.cpp" "src/CMakeFiles/fastcast_paxos.dir/paxos/learner.cpp.o" "gcc" "src/CMakeFiles/fastcast_paxos.dir/paxos/learner.cpp.o.d"
  "/root/repo/src/paxos/proposer.cpp" "src/CMakeFiles/fastcast_paxos.dir/paxos/proposer.cpp.o" "gcc" "src/CMakeFiles/fastcast_paxos.dir/paxos/proposer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastcast_rmcast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastcast_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fastcast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
