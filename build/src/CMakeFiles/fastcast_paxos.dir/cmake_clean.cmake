file(REMOVE_RECURSE
  "CMakeFiles/fastcast_paxos.dir/paxos/acceptor.cpp.o"
  "CMakeFiles/fastcast_paxos.dir/paxos/acceptor.cpp.o.d"
  "CMakeFiles/fastcast_paxos.dir/paxos/group_consensus.cpp.o"
  "CMakeFiles/fastcast_paxos.dir/paxos/group_consensus.cpp.o.d"
  "CMakeFiles/fastcast_paxos.dir/paxos/leader_elector.cpp.o"
  "CMakeFiles/fastcast_paxos.dir/paxos/leader_elector.cpp.o.d"
  "CMakeFiles/fastcast_paxos.dir/paxos/learner.cpp.o"
  "CMakeFiles/fastcast_paxos.dir/paxos/learner.cpp.o.d"
  "CMakeFiles/fastcast_paxos.dir/paxos/proposer.cpp.o"
  "CMakeFiles/fastcast_paxos.dir/paxos/proposer.cpp.o.d"
  "libfastcast_paxos.a"
  "libfastcast_paxos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastcast_paxos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
