file(REMOVE_RECURSE
  "libfastcast_checker.a"
)
