# Empty dependencies file for fastcast_checker.
# This may be replaced when dependencies are built.
