file(REMOVE_RECURSE
  "CMakeFiles/fastcast_checker.dir/checker/checker.cpp.o"
  "CMakeFiles/fastcast_checker.dir/checker/checker.cpp.o.d"
  "libfastcast_checker.a"
  "libfastcast_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastcast_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
