file(REMOVE_RECURSE
  "libfastcast_harness.a"
)
