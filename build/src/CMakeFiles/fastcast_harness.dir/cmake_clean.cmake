file(REMOVE_RECURSE
  "CMakeFiles/fastcast_harness.dir/harness/client.cpp.o"
  "CMakeFiles/fastcast_harness.dir/harness/client.cpp.o.d"
  "CMakeFiles/fastcast_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/fastcast_harness.dir/harness/experiment.cpp.o.d"
  "CMakeFiles/fastcast_harness.dir/harness/table.cpp.o"
  "CMakeFiles/fastcast_harness.dir/harness/table.cpp.o.d"
  "CMakeFiles/fastcast_harness.dir/harness/topology.cpp.o"
  "CMakeFiles/fastcast_harness.dir/harness/topology.cpp.o.d"
  "libfastcast_harness.a"
  "libfastcast_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastcast_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
