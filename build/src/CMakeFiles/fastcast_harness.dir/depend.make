# Empty dependencies file for fastcast_harness.
# This may be replaced when dependencies are built.
