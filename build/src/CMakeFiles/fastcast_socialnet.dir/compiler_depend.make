# Empty compiler generated dependencies file for fastcast_socialnet.
# This may be replaced when dependencies are built.
