file(REMOVE_RECURSE
  "CMakeFiles/fastcast_socialnet.dir/app/socialnet/graph.cpp.o"
  "CMakeFiles/fastcast_socialnet.dir/app/socialnet/graph.cpp.o.d"
  "CMakeFiles/fastcast_socialnet.dir/app/socialnet/partitioner.cpp.o"
  "CMakeFiles/fastcast_socialnet.dir/app/socialnet/partitioner.cpp.o.d"
  "CMakeFiles/fastcast_socialnet.dir/app/socialnet/service.cpp.o"
  "CMakeFiles/fastcast_socialnet.dir/app/socialnet/service.cpp.o.d"
  "libfastcast_socialnet.a"
  "libfastcast_socialnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastcast_socialnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
