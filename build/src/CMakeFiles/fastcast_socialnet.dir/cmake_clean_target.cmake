file(REMOVE_RECURSE
  "libfastcast_socialnet.a"
)
