
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/membership.cpp" "src/CMakeFiles/fastcast_runtime.dir/runtime/membership.cpp.o" "gcc" "src/CMakeFiles/fastcast_runtime.dir/runtime/membership.cpp.o.d"
  "/root/repo/src/runtime/message.cpp" "src/CMakeFiles/fastcast_runtime.dir/runtime/message.cpp.o" "gcc" "src/CMakeFiles/fastcast_runtime.dir/runtime/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fastcast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
