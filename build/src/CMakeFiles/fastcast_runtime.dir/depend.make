# Empty dependencies file for fastcast_runtime.
# This may be replaced when dependencies are built.
