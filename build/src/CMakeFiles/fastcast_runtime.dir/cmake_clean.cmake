file(REMOVE_RECURSE
  "CMakeFiles/fastcast_runtime.dir/runtime/membership.cpp.o"
  "CMakeFiles/fastcast_runtime.dir/runtime/membership.cpp.o.d"
  "CMakeFiles/fastcast_runtime.dir/runtime/message.cpp.o"
  "CMakeFiles/fastcast_runtime.dir/runtime/message.cpp.o.d"
  "libfastcast_runtime.a"
  "libfastcast_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastcast_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
