file(REMOVE_RECURSE
  "libfastcast_runtime.a"
)
