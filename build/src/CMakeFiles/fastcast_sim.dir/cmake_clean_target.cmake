file(REMOVE_RECURSE
  "libfastcast_sim.a"
)
