# Empty dependencies file for fastcast_sim.
# This may be replaced when dependencies are built.
