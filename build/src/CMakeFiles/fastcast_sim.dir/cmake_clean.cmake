file(REMOVE_RECURSE
  "CMakeFiles/fastcast_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/fastcast_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/fastcast_sim.dir/sim/latency.cpp.o"
  "CMakeFiles/fastcast_sim.dir/sim/latency.cpp.o.d"
  "CMakeFiles/fastcast_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/fastcast_sim.dir/sim/simulator.cpp.o.d"
  "libfastcast_sim.a"
  "libfastcast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastcast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
