# Empty compiler generated dependencies file for fastcast_net.
# This may be replaced when dependencies are built.
