file(REMOVE_RECURSE
  "CMakeFiles/fastcast_net.dir/net/frame.cpp.o"
  "CMakeFiles/fastcast_net.dir/net/frame.cpp.o.d"
  "CMakeFiles/fastcast_net.dir/net/tcp_cluster.cpp.o"
  "CMakeFiles/fastcast_net.dir/net/tcp_cluster.cpp.o.d"
  "CMakeFiles/fastcast_net.dir/net/tcp_transport.cpp.o"
  "CMakeFiles/fastcast_net.dir/net/tcp_transport.cpp.o.d"
  "libfastcast_net.a"
  "libfastcast_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastcast_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
