file(REMOVE_RECURSE
  "libfastcast_net.a"
)
