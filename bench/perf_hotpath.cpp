/// \file perf_hotpath.cpp
/// Tracked microbenchmark for the three hot paths this repo optimizes:
///
///   engine      steady-state simulator event loop (pop + push of a
///               deliver-sized closure), measured against an in-file
///               replica of the pre-optimization engine
///               (std::function + std::priority_queue) for an honest
///               before/after on the same machine;
///   codec       Message encoding throughput, fresh-allocation vs the
///               reusable-buffer `_into` path;
///   tcp         loopback TCP transport: one-way framed-message
///               throughput (gather-write coalescing) and ping-pong
///               round-trip p50/p99;
///   end_to_end  a full simulated FastCast experiment, reporting
///               wall-clock event rate and heap allocations per
///               client-observed delivery;
///   storage     WAL append+commit throughput (accept-sized records)
///               under the three fsync policies, on the deterministic
///               in-memory backend and on real files — pins the cost of
///               the durability gate so fsync-policy regressions show up
///               in the tracked BENCH output.
///
/// Emits BENCH_hotpath.json (override with --json); `--smoke` shrinks the
/// iteration counts so CI can run it as a build smoke test. Allocation
/// counts come from this binary's operator new/delete overrides.

#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "fastcast/common/codec.hpp"
#include "fastcast/common/rng.hpp"
#include "fastcast/net/cpu_affinity.hpp"
#include "fastcast/net/sharded_transport.hpp"
#include "fastcast/net/tcp_transport.hpp"
#include "fastcast/obs/json.hpp"
#include "fastcast/obs/metrics.hpp"
#include "fastcast/sim/event_queue.hpp"
#include "fastcast/storage/storage.hpp"

// ---------------------------------------------------------------------------
// Heap instrumentation: every allocation in the process goes through these,
// so (allocs after - allocs before) around a loop is exact, not sampled.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace fastcast::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t allocs_now() { return g_allocs.load(std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Pre-optimization engine, replicated verbatim from the seed tree so the
// before/after comparison runs in one binary on identical hardware.
// ---------------------------------------------------------------------------

class LegacyEventQueue {
 public:
  struct Event {
    Time at = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  void push(Time at, std::function<void()> fn) {
    heap_.push(Event{at, next_seq_++, std::move(fn)});
  }
  bool empty() const { return heap_.empty(); }
  Event pop() {
    Event e = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

/// The simulator's deliver closure captures (this, to, from, shared_ptr) —
/// 32 bytes, past std::function's 16-byte inline buffer. The bench pushes
/// closures of the same shape so the legacy numbers include the per-event
/// heap allocation real runs paid.
struct DeliverLikeCapture {
  void* sim;
  std::uint32_t to;
  std::uint32_t from;
  std::shared_ptr<int> msg;
};

struct EngineResult {
  double legacy_ops_per_sec = 0;
  double pooled_ops_per_sec = 0;
  double legacy_allocs_per_op = 0;
  double pooled_allocs_per_op = 0;
  double speedup = 0;
};

EngineResult bench_engine(std::size_t ops) {
  constexpr std::size_t kDepth = 1024;  // steady-state queue depth
  std::uint64_t sink = 0;
  auto msg = std::make_shared<int>(7);
  DeliverLikeCapture cap{&sink, 1, 2, msg};

  EngineResult r;
  {
    LegacyEventQueue q;
    for (std::size_t i = 0; i < kDepth; ++i) {
      q.push(static_cast<Time>(i), [cap, &sink] { sink += cap.to; });
    }
    const std::uint64_t a0 = allocs_now();
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      auto e = q.pop();
      e.fn();
      q.push(e.at + kDepth, [cap, &sink] { sink += cap.to; });
    }
    const double dt = seconds_since(t0);
    r.legacy_ops_per_sec = static_cast<double>(ops) / dt;
    r.legacy_allocs_per_op =
        static_cast<double>(allocs_now() - a0) / static_cast<double>(ops);
  }
  {
    sim::EventQueue q;
    for (std::size_t i = 0; i < kDepth; ++i) {
      q.push(static_cast<Time>(i), [cap, &sink] { sink += cap.to; });
    }
    const std::uint64_t a0 = allocs_now();
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      auto e = q.pop();
      e.fn();
      q.push(e.at + kDepth, [cap, &sink] { sink += cap.to; });
    }
    const double dt = seconds_since(t0);
    r.pooled_ops_per_sec = static_cast<double>(ops) / dt;
    r.pooled_allocs_per_op =
        static_cast<double>(allocs_now() - a0) / static_cast<double>(ops);
  }
  if (sink == 0) std::fprintf(stderr, "unreachable\n");  // defeat DCE
  r.speedup = r.pooled_ops_per_sec / r.legacy_ops_per_sec;
  return r;
}

// ---------------------------------------------------------------------------
// Codec: encode the hot FastCast wire message (an RmData carrying a
// SEND-SOFT) fresh-allocating vs into a reused buffer.
// ---------------------------------------------------------------------------

Message hot_wire_message() {
  RmData rm;
  rm.origin = 3;
  rm.seq = 4242;
  rm.dst_groups = {0, 1};
  rm.dest_nodes = {0, 1, 2, 3, 4, 5};
  rm.dest_seqs = {100, 101, 102, 103, 104, 105};
  rm.inner = AmSendSoft{1, 987654, make_msg_id(3, 77), {0, 1}};
  return Message{rm};
}

struct CodecResult {
  double fresh_mb_per_sec = 0;
  double reused_mb_per_sec = 0;
  double fresh_allocs_per_msg = 0;
  double reused_allocs_per_msg = 0;
  std::uint64_t encoded_bytes = 0;
  double speedup = 0;
};

CodecResult bench_codec(std::size_t iters) {
  const Message msg = hot_wire_message();
  CodecResult r;
  r.encoded_bytes = encode_message(msg).size();
  const double mb =
      static_cast<double>(r.encoded_bytes) * static_cast<double>(iters) / 1e6;
  {
    const std::uint64_t a0 = allocs_now();
    const auto t0 = Clock::now();
    std::size_t total = 0;
    for (std::size_t i = 0; i < iters; ++i) {
      total += encode_message(msg).size();
    }
    const double dt = seconds_since(t0);
    r.fresh_mb_per_sec = mb / dt;
    r.fresh_allocs_per_msg =
        static_cast<double>(allocs_now() - a0) / static_cast<double>(iters);
    if (total == 0) std::fprintf(stderr, "unreachable\n");
  }
  {
    std::vector<std::byte> buf;
    const std::uint64_t a0 = allocs_now();
    const auto t0 = Clock::now();
    std::size_t total = 0;
    for (std::size_t i = 0; i < iters; ++i) {
      encode_message_into(msg, buf);
      total += buf.size();
    }
    const double dt = seconds_since(t0);
    r.reused_mb_per_sec = mb / dt;
    r.reused_allocs_per_msg =
        static_cast<double>(allocs_now() - a0) / static_cast<double>(iters);
    if (total == 0) std::fprintf(stderr, "unreachable\n");
  }
  r.speedup = r.reused_mb_per_sec / r.fresh_mb_per_sec;
  return r;
}

// ---------------------------------------------------------------------------
// Loopback TCP: one-way coalesced throughput and ping-pong latency.
// ---------------------------------------------------------------------------

struct TcpResult {
  double frames_per_sec = 0;
  double rtt_p50_us = 0;
  double rtt_p99_us = 0;
  std::uint64_t frames = 0;
};

TcpResult bench_tcp(std::size_t frames, std::size_t pings,
                    net::BackendKind backend) {
  using net::AddressBook;
  using net::TcpTransport;
  AddressBook book;
  static std::uint16_t port_salt = 0;
  book.base_port = static_cast<std::uint16_t>(23000 + (::getpid() % 500) +
                                              (port_salt += 16));

  const net::TransportOptions opt{backend};
  TcpTransport a(0, book, opt);
  TcpTransport b(1, book, opt);
  a.listen();
  b.listen();

  std::uint64_t b_received = 0;
  b.set_receive([&](NodeId, const Message&) { ++b_received; });
  std::uint64_t a_received = 0;
  a.set_receive([&](NodeId, const Message&) { ++a_received; });

  const Message msg = hot_wire_message();
  TcpResult r;
  r.frames = frames;

  // One-way: enqueue everything, then pump both ends until B saw it all.
  // send() coalesces into per-peer queues; the syscall count is dominated
  // by gather-writes of up to 64 frames each.
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < frames; ++i) {
    a.send(1, msg);
    if ((i & 1023) == 1023) {
      a.poll_once(0);
      b.poll_once(0);
    }
  }
  while (b_received < frames) {
    a.poll_once(0);
    b.poll_once(1);
  }
  r.frames_per_sec = static_cast<double>(frames) / seconds_since(t0);

  // Ping-pong: measures per-message latency through frame + queue + poll.
  std::vector<double> rtts_us;
  rtts_us.reserve(pings);
  for (std::size_t i = 0; i < pings; ++i) {
    const std::uint64_t want_b = b_received + 1;
    const std::uint64_t want_a = a_received + 1;
    const auto p0 = Clock::now();
    a.send(1, msg);
    while (b_received < want_b) {
      a.poll_once(0);
      b.poll_once(0);
    }
    b.send(0, msg);
    while (a_received < want_a) {
      b.poll_once(0);
      a.poll_once(0);
    }
    rtts_us.push_back(std::chrono::duration<double, std::micro>(Clock::now() - p0)
                          .count());
  }
  std::sort(rtts_us.begin(), rtts_us.end());
  r.rtt_p50_us = rtts_us[rtts_us.size() / 2];
  r.rtt_p99_us = rtts_us[(rtts_us.size() * 99) / 100];

  a.close_all();
  b.close_all();
  return r;
}

// ---------------------------------------------------------------------------
// Transport scaling: N concurrent senders into one sharded receiver,
// aggregate frames/s per shard count, for each available backend. On a
// many-core host the curve shows thread-per-core scaling; host_cpus is
// recorded so flat curves on starved CI runners read as what they are.
// ---------------------------------------------------------------------------

struct ScalingPoint {
  int shards = 0;
  double frames_per_sec = 0;
  std::uint64_t frames = 0;
};

struct TransportBackendResult {
  const char* backend = "?";
  bool available = false;
  double single_conn_frames_per_sec = 0;
  std::vector<ScalingPoint> scaling;
};

ScalingPoint bench_sharded(net::BackendKind backend, int shards,
                           std::size_t total_frames) {
  using net::AddressBook;
  using net::TcpTransport;
  constexpr int kSenders = 4;
  AddressBook book;
  static std::uint16_t port_salt = 0;
  book.base_port = static_cast<std::uint16_t>(25000 + (::getpid() % 500) +
                                              (port_salt += 16));

  net::ShardedOptions so;
  so.shards = shards;
  so.backend = backend;
  so.ring_capacity = 1 << 15;
  net::ShardedTransport hub(0, book, so);
  hub.start();

  const Message msg = hot_wire_message();
  const std::size_t per_sender = total_frames / kSenders;
  std::atomic<bool> go{false};
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      const NodeId id = static_cast<NodeId>(s + 1);
      TcpTransport t(id, book, net::TransportOptions{backend});
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < per_sender; ++i) {
        t.send(0, msg);
        if ((i & 1023) == 1023) t.poll_once(0);
      }
      const auto drain_deadline =
          Clock::now() + std::chrono::seconds(120);
      while (t.pending_bytes() > 0 && Clock::now() < drain_deadline) {
        t.poll_once(1);
      }
      t.close_all();
    });
  }

  ScalingPoint p;
  p.shards = shards;
  const std::uint64_t want = per_sender * kSenders;
  std::uint64_t got = 0;
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  const auto deadline = Clock::now() + std::chrono::seconds(120);
  while (got < want && Clock::now() < deadline) {
    const std::size_t n =
        hub.poll_deliveries([](NodeId, const Message&) {});
    got += n;
    if (n == 0) std::this_thread::yield();
  }
  const double dt = seconds_since(t0);
  for (auto& th : senders) th.join();
  hub.stop();
  p.frames = got;
  p.frames_per_sec = dt > 0 ? static_cast<double>(got) / dt : 0;
  return p;
}

TransportBackendResult bench_transport_backend(net::BackendKind backend,
                                               std::size_t single_frames,
                                               std::size_t scale_frames) {
  TransportBackendResult r;
  r.backend = net::to_string(backend);
  r.available =
      backend != net::BackendKind::kUring || net::uring_available();
  if (!r.available) return r;
  r.single_conn_frames_per_sec =
      bench_tcp(single_frames, /*pings=*/200, backend).frames_per_sec;
  for (int shards : {1, 2, 4}) {
    r.scaling.push_back(bench_sharded(backend, shards, scale_frames));
  }
  return r;
}

// ---------------------------------------------------------------------------
// Varint codec: the unrolled fast paths against in-file replicas of the
// original byte-at-a-time loops, on a wire-realistic value mix (mostly
// 1-byte, a 2-byte tier, a tail of large values).
// ---------------------------------------------------------------------------

void legacy_varint_encode(std::vector<std::byte>& buf, std::uint64_t v) {
  while (v >= 0x80) {
    buf.push_back(std::byte{static_cast<std::uint8_t>(v | 0x80)});
    v >>= 7;
  }
  buf.push_back(std::byte{static_cast<std::uint8_t>(v)});
}

std::uint64_t legacy_varint_decode(std::span<const std::byte> data,
                                   std::size_t& pos, bool& ok) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift > 63 || pos >= data.size()) {
      ok = false;
      return 0;
    }
    const auto b = static_cast<std::uint8_t>(data[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

struct VarintResult {
  double legacy_encode_mops = 0;
  double fast_encode_mops = 0;
  double legacy_decode_mops = 0;
  double fast_decode_mops = 0;
  double encode_speedup = 0;
  double decode_speedup = 0;
};

VarintResult bench_varint(std::size_t iters) {
  // Wire-realistic mix: ~70% 1-byte (flags, small counts), ~25% 2-byte
  // (seqs, sizes), ~5% wide (timestamps, ids).
  std::vector<std::uint64_t> values(4096);
  Rng rng(0x5eed);
  for (auto& v : values) {
    const std::uint64_t pick = rng.uniform(100);
    if (pick < 70) {
      v = rng.uniform(128);
    } else if (pick < 95) {
      v = 128 + rng.uniform(16384 - 128);
    } else {
      v = rng.next();
    }
  }
  const std::size_t rounds = iters / values.size();

  VarintResult r;
  std::uint64_t sink = 0;
  {
    std::vector<std::byte> buf;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < rounds; ++i) {
      buf.clear();
      for (std::uint64_t v : values) legacy_varint_encode(buf, v);
      sink += buf.size();
    }
    r.legacy_encode_mops =
        static_cast<double>(rounds * values.size()) / seconds_since(t0) / 1e6;
  }
  {
    Writer w;
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < rounds; ++i) {
      w.clear();
      for (std::uint64_t v : values) w.varint(v);
      sink += w.size();
    }
    r.fast_encode_mops =
        static_cast<double>(rounds * values.size()) / seconds_since(t0) / 1e6;
  }
  Writer encoded;
  for (std::uint64_t v : values) encoded.varint(v);
  {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < rounds; ++i) {
      std::size_t pos = 0;
      bool ok = true;
      for (std::size_t k = 0; k < values.size(); ++k) {
        sink += legacy_varint_decode(encoded.data(), pos, ok);
      }
      if (!ok) std::fprintf(stderr, "legacy decode failed\n");
    }
    r.legacy_decode_mops =
        static_cast<double>(rounds * values.size()) / seconds_since(t0) / 1e6;
  }
  {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < rounds; ++i) {
      Reader reader(encoded.data());
      for (std::size_t k = 0; k < values.size(); ++k) sink += reader.varint();
      if (!reader.ok()) std::fprintf(stderr, "fast decode failed\n");
    }
    r.fast_decode_mops =
        static_cast<double>(rounds * values.size()) / seconds_since(t0) / 1e6;
  }
  if (sink == 0) std::fprintf(stderr, "unreachable\n");
  r.encode_speedup = r.fast_encode_mops / r.legacy_encode_mops;
  r.decode_speedup = r.fast_decode_mops / r.legacy_decode_mops;
  return r;
}

// ---------------------------------------------------------------------------
// End-to-end: a short LAN FastCast experiment through the whole stack.
// ---------------------------------------------------------------------------

struct EndToEndResult {
  double events_per_sec = 0;
  double allocs_per_delivery = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t events = 0;
  bool check_ok = false;
};

EndToEndResult bench_end_to_end(bool smoke) {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = 2;
  cfg.topo.clients = 4;
  cfg.topo.protocol = Protocol::kFastCast;
  cfg.seed = 42;
  cfg.dst_factory = [](std::size_t i) -> DstPicker {
    if (i % 2 == 0) return fixed_group(static_cast<GroupId>(i % 2));
    return random_subset(2, 2);
  };
  cfg.warmup = milliseconds(smoke ? 20 : 50);
  cfg.measure = milliseconds(smoke ? 100 : 400);
  cfg.check_level = Checker::Level::kFast;

  const std::uint64_t a0 = allocs_now();
  const auto t0 = Clock::now();
  ExperimentResult res = run_experiment(cfg);
  const double dt = seconds_since(t0);
  const std::uint64_t allocs = allocs_now() - a0;

  EndToEndResult r;
  r.events = res.events_processed;
  r.deliveries = res.latency.count();
  r.events_per_sec = static_cast<double>(res.events_processed) / dt;
  r.allocs_per_delivery =
      r.deliveries == 0 ? 0
                        : static_cast<double>(allocs) /
                              static_cast<double>(r.deliveries);
  r.check_ok = res.report.ok;
  return r;
}

// ---------------------------------------------------------------------------
// Storage: WAL append + commit throughput per fsync policy. One accept-sized
// record (64-byte value) per iteration, commit() after every record — the
// exact shape of the acceptor hot path — with a final flush() so the batch
// policy settles its tail before the clock stops.
// ---------------------------------------------------------------------------

struct StoragePolicyResult {
  const char* name;
  double mem_records_per_sec = 0;
  double file_records_per_sec = 0;
  std::uint64_t mem_records = 0;
  std::uint64_t file_records = 0;
};

double bench_storage_one(std::unique_ptr<storage::StorageBackend> backend,
                         storage::FsyncPolicy policy, std::size_t records) {
  storage::NodeStorage::Config cfg;
  cfg.fsync = policy;
  storage::NodeStorage st(std::move(backend), cfg);
  std::array<std::byte, 64> value{};
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < records; ++i) {
    st.log_accept(0, i, Ballot{1, 0}, value);
    st.commit();
  }
  st.flush();
  return static_cast<double>(records) / seconds_since(t0);
}

std::vector<StoragePolicyResult> bench_storage(bool smoke) {
  storage::FsyncPolicy always;
  storage::FsyncPolicy batch;
  batch.mode = storage::FsyncPolicy::Mode::kBatch;
  storage::FsyncPolicy never;
  never.mode = storage::FsyncPolicy::Mode::kNever;

  const std::size_t mem_records = smoke ? 20'000 : 200'000;
  // A real fsync per record is orders of magnitude slower than the append;
  // keep the file/always cell honest but bounded.
  const std::size_t file_always_records = smoke ? 500 : 5'000;
  const std::size_t file_records = smoke ? 10'000 : 100'000;

  char tmpl[] = "./fc_bench_storage_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  std::vector<StoragePolicyResult> out;
  const struct {
    const char* name;
    storage::FsyncPolicy policy;
  } policies[] = {{"always", always}, {"batch", batch}, {"never", never}};
  int sub = 0;
  for (const auto& p : policies) {
    StoragePolicyResult r;
    r.name = p.name;
    r.mem_records = mem_records;
    r.mem_records_per_sec = bench_storage_one(
        std::make_unique<storage::MemBackend>(), p.policy, mem_records);
    if (dir != nullptr) {
      r.file_records = p.policy.mode == storage::FsyncPolicy::Mode::kAlways
                           ? file_always_records
                           : file_records;
      const std::string sub_dir =
          std::string(dir) + "/p" + std::to_string(sub++);
      r.file_records_per_sec =
          bench_storage_one(std::make_unique<storage::FileBackend>(sub_dir),
                            p.policy, r.file_records);
    }
    out.push_back(r);
  }
  if (dir != nullptr) {
    const std::string cleanup = std::string("rm -rf '") + dir + "'";
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());
  }
  return out;
}

}  // namespace
}  // namespace fastcast::bench

int main(int argc, char** argv) {
  using namespace fastcast;
  using namespace fastcast::bench;

  bool smoke = false;
  std::string json_path = "BENCH_hotpath.json";
  double max_allocs_per_delivery = 0;  // 0 = no guard
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-allocs-per-delivery") == 0 &&
               i + 1 < argc) {
      max_allocs_per_delivery = std::atof(argv[++i]);
    } else {
      std::fprintf(
          stderr,
          "usage: perf_hotpath [--smoke] [--json <path>]\n"
          "                    [--max-allocs-per-delivery <N>]\n"
          "  --smoke  reduced iteration counts (CI smoke test)\n"
          "  --json   output path (default BENCH_hotpath.json)\n"
          "  --max-allocs-per-delivery  fail (exit 1) if the end-to-end\n"
          "           experiment allocates more than N times per delivery —\n"
          "           the allocation-regression guard CI runs in perf-smoke\n");
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }
  const bool grade = warn_if_not_benchmark_grade("perf_hotpath");

  const std::size_t engine_ops = smoke ? 200'000 : 5'000'000;
  const std::size_t codec_iters = smoke ? 100'000 : 2'000'000;
  const std::size_t tcp_frames = smoke ? 20'000 : 400'000;
  const std::size_t tcp_pings = smoke ? 200 : 2'000;
  const std::size_t scale_frames = smoke ? 40'000 : 400'000;
  const std::size_t varint_ops = smoke ? 4'000'000 : 40'000'000;

  const EngineResult eng = bench_engine(engine_ops);
  std::printf("engine      legacy %12.0f ops/s (%.2f allocs/op)\n",
              eng.legacy_ops_per_sec, eng.legacy_allocs_per_op);
  std::printf("            pooled %12.0f ops/s (%.2f allocs/op)  %.2fx\n",
              eng.pooled_ops_per_sec, eng.pooled_allocs_per_op, eng.speedup);

  const CodecResult cod = bench_codec(codec_iters);
  std::printf("codec       fresh  %12.1f MB/s (%.2f allocs/msg)\n",
              cod.fresh_mb_per_sec, cod.fresh_allocs_per_msg);
  std::printf("            reused %12.1f MB/s (%.2f allocs/msg)  %.2fx\n",
              cod.reused_mb_per_sec, cod.reused_allocs_per_msg, cod.speedup);

  const VarintResult vint = bench_varint(varint_ops);
  std::printf("varint      encode legacy %7.1f Mops/s  fast %7.1f Mops/s  %.2fx\n",
              vint.legacy_encode_mops, vint.fast_encode_mops,
              vint.encode_speedup);
  std::printf("            decode legacy %7.1f Mops/s  fast %7.1f Mops/s  %.2fx\n",
              vint.legacy_decode_mops, vint.fast_decode_mops,
              vint.decode_speedup);

  const TcpResult tcp = bench_tcp(tcp_frames, tcp_pings, net::BackendKind::kPoll);
  std::printf("tcp         %12.0f frames/s   rtt p50 %.1fus p99 %.1fus\n",
              tcp.frames_per_sec, tcp.rtt_p50_us, tcp.rtt_p99_us);

  // Transport scaling: every available backend, single connection plus the
  // sharded hub at 1/2/4 shards with 4 concurrent senders.
  const int host_cpus = net::online_cpu_count();
  std::vector<TransportBackendResult> transports;
  transports.push_back(bench_transport_backend(net::BackendKind::kPoll,
                                               tcp_frames, scale_frames));
  transports.push_back(bench_transport_backend(net::BackendKind::kUring,
                                               tcp_frames, scale_frames));
  for (const TransportBackendResult& t : transports) {
    if (!t.available) {
      std::printf("transport   %-6s unavailable on this host\n", t.backend);
      continue;
    }
    std::printf("transport   %-6s single %10.0f frames/s   shards:", t.backend,
                t.single_conn_frames_per_sec);
    for (const ScalingPoint& p : t.scaling) {
      std::printf("  %dx %10.0f/s", p.shards, p.frames_per_sec);
    }
    std::printf("   (%d cpus)\n", host_cpus);
  }

  const EndToEndResult e2e = bench_end_to_end(smoke);
  std::printf("end_to_end  %12.0f events/s   %.1f allocs/delivery (%llu "
              "deliveries, check %s)\n",
              e2e.events_per_sec, e2e.allocs_per_delivery,
              static_cast<unsigned long long>(e2e.deliveries),
              e2e.check_ok ? "ok" : "FAILED");

  bool allocs_guard_ok = true;
  if (max_allocs_per_delivery > 0 &&
      e2e.allocs_per_delivery > max_allocs_per_delivery) {
    allocs_guard_ok = false;
    std::fprintf(stderr,
                 "perf_hotpath: ALLOCATION REGRESSION: %.1f allocs/delivery "
                 "exceeds the --max-allocs-per-delivery budget of %.1f\n",
                 e2e.allocs_per_delivery, max_allocs_per_delivery);
  }

  const std::vector<StoragePolicyResult> sto = bench_storage(smoke);
  for (const StoragePolicyResult& s : sto) {
    std::printf("storage     %-6s mem %12.0f rec/s   file %12.0f rec/s\n",
                s.name, s.mem_records_per_sec, s.file_records_per_sec);
  }

  // Fold the headline numbers into a MetricsRegistry so the JSON carries
  // the same instruments the runtime exports.
  obs::MetricsRegistry metrics;
  metrics.gauge("hotpath.engine.pooled_ops_per_sec")
      .set(static_cast<std::int64_t>(eng.pooled_ops_per_sec));
  metrics.gauge("hotpath.engine.legacy_ops_per_sec")
      .set(static_cast<std::int64_t>(eng.legacy_ops_per_sec));
  metrics.gauge("hotpath.codec.reused_mb_per_sec")
      .set(static_cast<std::int64_t>(cod.reused_mb_per_sec));
  metrics.gauge("hotpath.tcp.frames_per_sec")
      .set(static_cast<std::int64_t>(tcp.frames_per_sec));
  metrics.gauge("hotpath.e2e.events_per_sec")
      .set(static_cast<std::int64_t>(e2e.events_per_sec));
  for (const TransportBackendResult& t : transports) {
    if (!t.available) continue;
    for (const ScalingPoint& p : t.scaling) {
      metrics
          .gauge(std::string("hotpath.transport.") + t.backend + ".shards" +
                 std::to_string(p.shards) + "_frames_per_sec")
          .set(static_cast<std::int64_t>(p.frames_per_sec));
    }
  }
  for (const StoragePolicyResult& s : sto) {
    metrics.gauge(std::string("hotpath.storage.mem_") + s.name +
                  "_records_per_sec")
        .set(static_cast<std::int64_t>(s.mem_records_per_sec));
    metrics.gauge(std::string("hotpath.storage.file_") + s.name +
                  "_records_per_sec")
        .set(static_cast<std::int64_t>(s.file_records_per_sec));
  }

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "perf_hotpath: cannot write %s\n", json_path.c_str());
    return 1;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "perf_hotpath");
  write_build_flavor(w);
  w.kv("smoke", smoke);
  w.key("engine").begin_object();
  w.kv("legacy_ops_per_sec", eng.legacy_ops_per_sec);
  w.kv("pooled_ops_per_sec", eng.pooled_ops_per_sec);
  w.kv("speedup", eng.speedup);
  w.kv("legacy_allocs_per_op", eng.legacy_allocs_per_op);
  w.kv("pooled_allocs_per_op", eng.pooled_allocs_per_op);
  w.end_object();
  w.key("codec").begin_object();
  w.kv("fresh_mb_per_sec", cod.fresh_mb_per_sec);
  w.kv("reused_mb_per_sec", cod.reused_mb_per_sec);
  w.kv("speedup", cod.speedup);
  w.kv("fresh_allocs_per_msg", cod.fresh_allocs_per_msg);
  w.kv("reused_allocs_per_msg", cod.reused_allocs_per_msg);
  w.kv("encoded_bytes", cod.encoded_bytes);
  w.end_object();
  w.key("varint").begin_object();
  w.kv("legacy_encode_mops", vint.legacy_encode_mops);
  w.kv("fast_encode_mops", vint.fast_encode_mops);
  w.kv("encode_speedup", vint.encode_speedup);
  w.kv("legacy_decode_mops", vint.legacy_decode_mops);
  w.kv("fast_decode_mops", vint.fast_decode_mops);
  w.kv("decode_speedup", vint.decode_speedup);
  w.end_object();
  w.key("tcp").begin_object();
  w.kv("frames_per_sec", tcp.frames_per_sec);
  w.kv("rtt_p50_us", tcp.rtt_p50_us);
  w.kv("rtt_p99_us", tcp.rtt_p99_us);
  w.kv("frames", tcp.frames);
  w.end_object();
  w.key("transport").begin_object();
  w.kv("host_cpus", static_cast<std::int64_t>(host_cpus));
  w.key("backends").begin_array();
  for (const TransportBackendResult& t : transports) {
    w.begin_object();
    w.kv("backend", t.backend);
    w.kv("available", t.available);
    if (t.available) {
      w.kv("single_conn_frames_per_sec", t.single_conn_frames_per_sec);
      w.key("scaling").begin_array();
      for (const ScalingPoint& p : t.scaling) {
        w.begin_object();
        w.kv("shards", static_cast<std::int64_t>(p.shards));
        w.kv("frames_per_sec", p.frames_per_sec);
        w.kv("frames", p.frames);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("end_to_end").begin_object();
  w.kv("events_per_sec", e2e.events_per_sec);
  w.kv("allocs_per_delivery", e2e.allocs_per_delivery);
  w.kv("max_allocs_per_delivery", max_allocs_per_delivery);
  w.kv("deliveries", e2e.deliveries);
  w.kv("events", e2e.events);
  w.kv("check_ok", e2e.check_ok);
  w.end_object();
  w.key("storage").begin_array();
  for (const StoragePolicyResult& s : sto) {
    w.begin_object();
    w.kv("fsync_policy", s.name);
    w.kv("mem_records_per_sec", s.mem_records_per_sec);
    w.kv("mem_records", s.mem_records);
    w.kv("file_records_per_sec", s.file_records_per_sec);
    w.kv("file_records", s.file_records);
    w.end_object();
  }
  w.end_array();
  w.key("metrics").begin_object();
  for (const auto& [n, v] : metrics.gauges()) w.kv(n, v);
  w.end_object();
  w.end_object();
  out << '\n';
  std::printf("wrote %s%s\n", json_path.c_str(),
              grade ? "" : " (NOT benchmark-grade — see warning above)");
  return (e2e.check_ok && allocs_guard_ok) ? 0 : 1;
}
