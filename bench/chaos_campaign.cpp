/// \file chaos_campaign.cpp
/// Randomized fault-injection campaigns: for every protocol × fault
/// intensity, runs a sweep of seeded chaos schedules (crash/recover
/// windows with leader bias, drop bursts, partition episodes) through the
/// harness chaos runner and reports
///
///   safety      checker verdict over the five atomic-multicast
///               properties (non-quiesced) — any violation fails the
///               campaign and the process exits non-zero;
///   availability fraction of measurement slices with client progress
///               (mean and worst seed);
///   failover    leader failovers observed and the worst p99 failover
///               latency reported by the paxos.failover_latency_ns
///               histogram.
///
/// Every run reproduces from its printed seed: the schedule is a pure
/// function of (membership, fault config, seed). `--smoke` shrinks the
/// sweep for CI; `--json <path>` emits machine-readable rows; `--seeds N`
/// overrides the per-cell seed count.
///
/// `--durable` arms the storage subsystem: every crash becomes a real
/// process death (torn unsynced WAL bytes, replica rebuilt from snapshot +
/// log replay) and each run ends with the wire-level acceptor
/// no-regression check. `--wal-dir <path>` switches from the in-memory
/// backend to file-backed WALs (one subdirectory per cell × seed so no
/// state leaks between runs); `--fsync-policy always|batch[:N[:ms]]|never`
/// picks the commit policy. Both imply `--durable`.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fastcast/harness/chaos.hpp"
#include "fastcast/harness/table.hpp"
#include "fastcast/obs/json.hpp"

namespace fastcast::bench {
namespace {

using namespace fastcast::harness;

struct Intensity {
  const char* name;
  sim::ChaosConfig faults;
  /// --overload only: offered load as a multiple of the (deliberately
  /// lowered) service capacity. 0 everywhere else.
  double offered_multiplier = 0;
};

std::vector<Intensity> intensities() {
  std::vector<Intensity> out;
  {
    Intensity i;
    i.name = "light";
    i.faults.crashes = 1;
    i.faults.leader_bias = 0.25;
    i.faults.min_downtime = milliseconds(30);
    i.faults.max_downtime = milliseconds(60);
    i.faults.drop_bursts = 1;
    i.faults.burst_drop_probability = 0.02;
    i.faults.min_burst = milliseconds(10);
    i.faults.max_burst = milliseconds(30);
    i.faults.partitions = 0;
    out.push_back(i);
  }
  {
    Intensity i;
    i.name = "moderate";
    i.faults.crashes = 2;
    i.faults.leader_bias = 0.5;
    i.faults.min_downtime = milliseconds(40);
    i.faults.max_downtime = milliseconds(80);
    i.faults.drop_bursts = 1;
    i.faults.burst_drop_probability = 0.05;
    i.faults.min_burst = milliseconds(20);
    i.faults.max_burst = milliseconds(50);
    i.faults.partitions = 1;
    i.faults.min_partition = milliseconds(20);
    i.faults.max_partition = milliseconds(60);
    out.push_back(i);
  }
  {
    Intensity i;
    i.name = "heavy";
    i.faults.crashes = 4;
    i.faults.leader_bias = 0.75;
    i.faults.min_downtime = milliseconds(50);
    i.faults.max_downtime = milliseconds(100);
    i.faults.drop_bursts = 2;
    i.faults.burst_drop_probability = 0.10;
    i.faults.min_burst = milliseconds(20);
    i.faults.max_burst = milliseconds(60);
    i.faults.partitions = 2;
    i.faults.min_partition = milliseconds(20);
    i.faults.max_partition = milliseconds(60);
    out.push_back(i);
  }
  return out;
}

/// --lag scenario family: one (non-leader) replica held down for a long
/// stretch of the window, then recovered far behind the decided frontier.
/// Repair is enabled, so the campaign asserts catch-up completes within the
/// cooldown (bounded catch-up) and the prune watermark advances (bounded
/// acceptor state) on top of the usual safety verdict.
std::vector<Intensity> lag_intensities() {
  std::vector<Intensity> out;
  {
    Intensity i;
    i.name = "lag-short";
    i.faults.crashes = 0;
    i.faults.drop_bursts = 0;
    i.faults.partitions = 0;
    i.faults.lag_episodes = 1;
    i.faults.lag_min_downtime = milliseconds(150);
    i.faults.lag_max_downtime = milliseconds(250);
    out.push_back(i);
  }
  {
    Intensity i;
    i.name = "lag-long";
    i.faults.crashes = 0;
    i.faults.drop_bursts = 0;
    i.faults.partitions = 0;
    i.faults.lag_episodes = 1;
    i.faults.lag_min_downtime = milliseconds(250);
    i.faults.lag_max_downtime = milliseconds(400);
    out.push_back(i);
  }
  {
    Intensity i;
    i.name = "lag-lossy";
    i.faults.crashes = 0;
    i.faults.drop_bursts = 1;
    i.faults.burst_drop_probability = 0.05;
    i.faults.min_burst = milliseconds(20);
    i.faults.max_burst = milliseconds(50);
    i.faults.partitions = 0;
    i.faults.lag_episodes = 1;
    i.faults.lag_min_downtime = milliseconds(150);
    i.faults.lag_max_downtime = milliseconds(300);
    out.push_back(i);
  }
  return out;
}

/// --overload scenario family: open-loop clients push offered load past
/// the service capacity (lowered via a heavy per-message CPU cost) while
/// leader-biased crashes land in the middle of the surge. The flow layer
/// (DESIGN.md §14) is armed end to end — server admission + deadlines on
/// the MultiPaxos side, advisory Busy + client backoff on the genuine
/// side — and every seed asserts, on top of the safety verdict, the
/// conservation law: every request reaches exactly one terminal state
/// (completed / rejected / expired / timed out) with nothing left in
/// flight after the settle window. Admitted messages are never silently
/// lost, no matter how hard the cluster is pushed.
std::vector<Intensity> overload_intensities() {
  std::vector<Intensity> out;
  {
    Intensity i;
    i.name = "surge";
    i.offered_multiplier = 1.5;
    i.faults.crashes = 1;
    i.faults.leader_bias = 0.75;
    i.faults.min_downtime = milliseconds(30);
    i.faults.max_downtime = milliseconds(60);
    i.faults.drop_bursts = 0;
    i.faults.partitions = 0;
    out.push_back(i);
  }
  {
    Intensity i;
    i.name = "surge-heavy";
    i.offered_multiplier = 2.5;
    i.faults.crashes = 2;
    i.faults.leader_bias = 0.75;
    i.faults.min_downtime = milliseconds(40);
    i.faults.max_downtime = milliseconds(80);
    i.faults.drop_bursts = 0;
    i.faults.partitions = 0;
    out.push_back(i);
  }
  {
    Intensity i;
    i.name = "surge-lossy";
    i.offered_multiplier = 2.0;
    i.faults.crashes = 1;
    i.faults.leader_bias = 0.5;
    i.faults.min_downtime = milliseconds(30);
    i.faults.max_downtime = milliseconds(60);
    i.faults.drop_bursts = 1;
    i.faults.burst_drop_probability = 0.05;
    i.faults.min_burst = milliseconds(20);
    i.faults.max_burst = milliseconds(50);
    i.faults.partitions = 0;
    out.push_back(i);
  }
  return out;
}

/// Rough per-node service capacity under the --overload CPU model (50 us
/// per handled message): each multicast costs the bottleneck node several
/// protocol messages, so a low-thousands figure keeps the multipliers
/// honest (1.5x is genuinely past the knee, 2.5x deep collapse territory).
constexpr double kOverloadCapacityPerSec = 2000;

ChaosRunConfig base_config(Protocol proto) {
  ChaosRunConfig cfg;
  cfg.experiment.topo.env = Environment::kLan;
  cfg.experiment.topo.groups = 2;
  cfg.experiment.topo.clients = 4;
  cfg.experiment.topo.protocol = proto;
  cfg.experiment.warmup = milliseconds(20);
  cfg.experiment.measure = milliseconds(600);
  cfg.experiment.slice = milliseconds(20);
  cfg.experiment.check_level = Checker::Level::kFull;
  cfg.experiment.dst_factory = same_dst_for_all(random_subset(2, 2));
  cfg.experiment.drop_probability = 0.01;  // arms retransmission/catch-up
  cfg.experiment.heartbeats = true;        // arms re-election
  return cfg;
}

struct CellResult {
  const char* protocol;
  const char* intensity;
  std::uint64_t seeds = 0;
  std::uint64_t passed = 0;
  double availability_sum = 0;
  double availability_min = 1.0;
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t failovers = 0;
  std::int64_t failover_p99_ns_max = 0;
  std::vector<std::uint64_t> failed_seeds;

  // Durable-mode sums (zero when --durable is off).
  std::uint64_t replayed_records = 0;
  std::uint64_t storage_snapshots = 0;
  std::uint64_t durability_checks = 0;

  // Lag-mode sums (zero when --lag is off).
  std::uint64_t repair_transfers = 0;
  std::uint64_t repair_completed = 0;
  std::uint64_t repair_installed = 0;
  std::int64_t prune_watermark_max = 0;

  // Overload-mode sums (zero when --overload is off).
  std::uint64_t sent = 0;
  std::uint64_t completions = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t retries = 0;
};

}  // namespace
}  // namespace fastcast::bench

int main(int argc, char** argv) {
  using namespace fastcast;
  using namespace fastcast::bench;
  using namespace fastcast::harness;

  std::uint64_t seeds = 20;
  std::string json_path;
  bool durable = false;
  bool lag = false;
  bool overload = false;
  std::string wal_dir;
  storage::FsyncPolicy fsync;
  const auto usage = [argv] {
    std::fprintf(stderr,
                 "usage: %s [--smoke] [--lag] [--overload] [--seeds N]\n"
                 "       [--json <path>] [--durable] [--wal-dir <path>]\n"
                 "       [--fsync-policy <p>]\n"
                 "  --smoke         3 seeds per cell (CI)\n"
                 "  --lag           lag-recovery scenario family: one replica\n"
                 "                  down for a long window then recovered;\n"
                 "                  repair (state transfer + pruning) enabled,\n"
                 "                  catch-up must complete and the prune\n"
                 "                  watermark must advance in every cell\n"
                 "  --overload      overload scenario family: open-loop load\n"
                 "                  past saturation plus leader-biased\n"
                 "                  crashes, flow control armed; every seed\n"
                 "                  asserts safety plus the terminal-state\n"
                 "                  conservation law (admitted messages are\n"
                 "                  never silently lost)\n"
                 "  --seeds         seeds per protocol x intensity cell "
                 "(default 20)\n"
                 "  --json          machine-readable campaign results\n"
                 "  --durable       WAL-backed crashes: real process death,\n"
                 "                  recovery from snapshot + log replay,\n"
                 "                  acceptor no-regression check per run\n"
                 "  --wal-dir       file-backed WALs under <path> (implies\n"
                 "                  --durable; default: in-memory backend)\n"
                 "  --fsync-policy  always | batch[:N[:ms]] | never "
                 "(implies --durable; default always)\n",
                 argv[0]);
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      seeds = 3;
    } else if (std::strcmp(argv[i], "--lag") == 0) {
      lag = true;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--durable") == 0) {
      durable = true;
    } else if (std::strcmp(argv[i], "--wal-dir") == 0 && i + 1 < argc) {
      wal_dir = argv[++i];
      durable = true;
    } else if (std::strcmp(argv[i], "--fsync-policy") == 0 && i + 1 < argc) {
      const auto parsed = storage::FsyncPolicy::parse(argv[++i]);
      if (!parsed) {
        std::fprintf(stderr, "chaos_campaign: bad --fsync-policy '%s'\n",
                     argv[i]);
        usage();
        return 2;
      }
      fsync = *parsed;
      durable = true;
    } else {
      usage();
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  if (lag && overload) {
    std::fprintf(stderr, "chaos_campaign: --lag and --overload are separate "
                         "scenario families; pick one\n");
    return 2;
  }

  const std::vector<Protocol> protocols = {
      Protocol::kBaseCast, Protocol::kFastCast, Protocol::kMultiPaxos};
  std::vector<CellResult> cells;
  bool all_ok = true;

  const std::vector<Intensity> matrix = lag       ? lag_intensities()
                                        : overload ? overload_intensities()
                                                   : intensities();
  for (Protocol proto : protocols) {
    for (const Intensity& intensity : matrix) {
      CellResult cell;
      cell.protocol = to_string(proto);
      cell.intensity = intensity.name;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        ChaosRunConfig cfg = base_config(proto);
        cfg.faults = intensity.faults;
        cfg.seed = seed;
        if (lag) {
          cfg.experiment.repair.enable = true;
          cfg.experiment.repair.lag_threshold = 32;
          // Bounded catch-up: the recovered replica must finish its transfer
          // well inside this settle window (asserted below).
          cfg.cooldown = milliseconds(900);
        }
        if (overload) {
          // Lower the service ceiling (50 us per handled message) so the
          // open-loop rate below is genuinely past saturation, then arm
          // the whole flow layer: server-side admission + deadline drops,
          // client-side timeouts, capped backoff and a bounded retry
          // budget.
          cfg.experiment.cpu_override =
              sim::CpuModel{microseconds(50), microseconds(5), 0};
          const double offered =
              kOverloadCapacityPerSec * intensity.offered_multiplier;
          cfg.experiment.open_loop_interval = static_cast<Duration>(
              static_cast<double>(kSecond) *
              static_cast<double>(cfg.experiment.topo.clients) / offered);
          cfg.experiment.flow.enable = true;
          cfg.experiment.flow.target_delay = milliseconds(5);
          cfg.experiment.flow.trigger_window = milliseconds(10);
          cfg.experiment.client_flow.deadline = milliseconds(60);
          cfg.experiment.client_flow.request_timeout = milliseconds(120);
          cfg.experiment.client_flow.backoff_base = milliseconds(1);
          cfg.experiment.client_flow.backoff_max = milliseconds(32);
          cfg.experiment.client_flow.retry_budget = 0.25;
          cfg.experiment.client_flow.max_retries = 2;
          // Longer than the worst timeout+retry chain (3 x 120 ms plus
          // backoff), so in_flight_end == 0 is a real assertion, not a
          // race against unresolved timers.
          cfg.cooldown = milliseconds(900);
        }
        if (durable) {
          cfg.experiment.durability.durable = true;
          cfg.experiment.durability.fsync = fsync;
          if (!wal_dir.empty()) {
            // One directory per cell × seed: file-backed state must never
            // leak from one deterministic run into the next.
            cfg.experiment.durability.wal_dir =
                wal_dir + "/" + cell.protocol + "-" + cell.intensity +
                "-seed" + std::to_string(seed);
          }
        }
        const ChaosRunResult r = run_chaos(cfg);
        ++cell.seeds;
        // Lag mode adds a bounded-catch-up assertion on top of safety: by
        // the end of the settle window no learner may trail its group's
        // frontier by the transfer-triggering threshold — a recovered
        // replica must have caught up (via snapshot transfer or tail
        // learning), not been left permanently behind.
        const bool still_lagging =
            lag && r.end_max_lag >= cfg.experiment.repair.lag_threshold;
        // Overload mode adds the conservation law: every primary send
        // reached exactly one terminal state and nothing is left
        // unresolved after the settle window. A violation means an
        // admitted message (or its verdict) was silently lost.
        const bool leaked =
            overload &&
            (r.sent != r.completions + r.rejected + r.expired + r.timed_out ||
             r.in_flight_end != 0);
        if (r.report.ok && !still_lagging && !leaked) {
          ++cell.passed;
        } else {
          all_ok = false;
          cell.failed_seeds.push_back(seed);
          char note[96] = "";
          if (still_lagging) {
            std::snprintf(note, sizeof(note),
                          " (replica still lagging: end_max_lag=%llu)",
                          static_cast<unsigned long long>(r.end_max_lag));
          } else if (leaked) {
            std::snprintf(note, sizeof(note),
                          " (conservation violated: sent=%llu resolved=%llu)",
                          static_cast<unsigned long long>(r.sent),
                          static_cast<unsigned long long>(
                              r.completions + r.rejected + r.expired +
                              r.timed_out));
          }
          std::fprintf(stderr, "FAIL %s/%s seed %llu%s\n%s\nschedule:\n%s\n",
                       cell.protocol, cell.intensity,
                       static_cast<unsigned long long>(seed), note,
                       r.to_string().c_str(), r.schedule.describe().c_str());
        }
        cell.availability_sum += r.availability;
        cell.availability_min = std::min(cell.availability_min, r.availability);
        cell.crashes += r.crashes;
        cell.recoveries += r.recoveries;
        cell.failovers += r.leader_failovers;
        cell.failover_p99_ns_max =
            std::max(cell.failover_p99_ns_max, r.failover_p99_ns);
        cell.replayed_records += r.replayed_records;
        cell.storage_snapshots += r.storage_snapshots;
        cell.durability_checks += r.durability_checks;
        cell.repair_transfers += r.repair_transfers;
        cell.repair_completed += r.repair_completed;
        cell.repair_installed += r.repair_entries_installed;
        cell.prune_watermark_max =
            std::max(cell.prune_watermark_max, r.prune_watermark);
        cell.sent += r.sent;
        cell.completions += r.completions;
        cell.rejected += r.rejected;
        cell.expired += r.expired;
        cell.timed_out += r.timed_out;
        cell.suppressed += r.suppressed;
        cell.retries += r.retries;
      }
      if (overload && cell.rejected + cell.expired + cell.suppressed +
                              cell.timed_out ==
                          0) {
        // Past-saturation load with flow armed must visibly engage the
        // control loop somewhere — explicit rejection/expiry on the
        // MultiPaxos side, backoff suppression or timeouts on the
        // advisory-only genuine side. All-zero means the scenario never
        // actually overloaded anything.
        all_ok = false;
        std::fprintf(stderr,
                     "FAIL %s/%s: overload control never engaged "
                     "(sent=%llu completions=%llu)\n",
                     cell.protocol, cell.intensity,
                     static_cast<unsigned long long>(cell.sent),
                     static_cast<unsigned long long>(cell.completions));
      }
      if (lag && (cell.repair_completed == 0 || cell.prune_watermark_max <= 0)) {
        // Across every seed of the cell at least one transfer must have
        // completed and the acceptors' prune watermark must have advanced —
        // otherwise the subsystem under test never actually engaged.
        all_ok = false;
        std::fprintf(stderr,
                     "FAIL %s/%s: repair never engaged "
                     "(completed=%llu prune_watermark=%lld)\n",
                     cell.protocol, cell.intensity,
                     static_cast<unsigned long long>(cell.repair_completed),
                     static_cast<long long>(cell.prune_watermark_max));
      }
      cells.push_back(std::move(cell));
    }
  }

  std::vector<std::string> headers = {"protocol",  "intensity", "safety",
                                      "avail mean", "avail min", "crashes",
                                      "failovers",  "failover p99"};
  if (durable) {
    headers.insert(headers.end(), {"replayed", "snapshots", "floor checks"});
  }
  if (lag) {
    headers.insert(headers.end(), {"transfers", "installed", "prune wm"});
  }
  if (overload) {
    headers.insert(headers.end(), {"sent", "rejected", "expired", "timed out",
                                   "suppressed", "retries"});
  }
  std::string title =
      std::string(lag ? "Lag-recovery" : overload ? "Overload" : "Chaos") +
      " campaigns (LAN, 2 groups, 4 clients; " + std::to_string(seeds) +
      " seeds per cell";
  if (durable) {
    title += "; durable, fsync " + fsync.to_string() +
             (wal_dir.empty() ? ", mem backend" : ", file backend");
  }
  title += ")";
  Table table(title, headers);
  for (const CellResult& c : cells) {
    const double avail_mean =
        c.seeds > 0 ? c.availability_sum / static_cast<double>(c.seeds) : 0;
    std::vector<std::string> row = {
        c.protocol, c.intensity,
        std::to_string(c.passed) + "/" + std::to_string(c.seeds),
        fmt_double(avail_mean * 100, 1) + "%",
        fmt_double(c.availability_min * 100, 1) + "%",
        std::to_string(c.crashes),
        std::to_string(c.failovers),
        c.failover_p99_ns_max > 0
            ? fmt_double(static_cast<double>(c.failover_p99_ns_max) / 1e6, 1) +
                  " ms"
            : "-"};
    if (durable) {
      row.push_back(std::to_string(c.replayed_records));
      row.push_back(std::to_string(c.storage_snapshots));
      row.push_back(std::to_string(c.durability_checks));
    }
    if (lag) {
      row.push_back(std::to_string(c.repair_completed) + "/" +
                    std::to_string(c.repair_transfers));
      row.push_back(std::to_string(c.repair_installed));
      row.push_back(std::to_string(c.prune_watermark_max));
    }
    if (overload) {
      row.push_back(std::to_string(c.sent));
      row.push_back(std::to_string(c.rejected));
      row.push_back(std::to_string(c.expired));
      row.push_back(std::to_string(c.timed_out));
      row.push_back(std::to_string(c.suppressed));
      row.push_back(std::to_string(c.retries));
    }
    table.add_row(std::move(row));
  }
  table.print(
      "safety = seeds with all checker properties intact; failing seeds "
      "reproduce deterministically.");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "chaos_campaign: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    obs::JsonWriter w(out);
    w.begin_object();
    w.kv("bench", "chaos_campaign");
    w.kv("seeds_per_cell", seeds);
    w.kv("durable", durable);
    w.kv("lag", lag);
    w.kv("overload", overload);
    if (durable) {
      w.kv("fsync_policy", fsync.to_string());
      w.kv("backend", wal_dir.empty() ? "mem" : "file");
    }
    w.key("cells").begin_array();
    for (const CellResult& c : cells) {
      w.begin_object();
      w.kv("protocol", c.protocol);
      w.kv("intensity", c.intensity);
      w.kv("seeds", c.seeds);
      w.kv("passed", c.passed);
      w.kv("availability_mean",
           c.seeds > 0 ? c.availability_sum / static_cast<double>(c.seeds) : 0);
      w.kv("availability_min", c.availability_min);
      w.kv("crashes", c.crashes);
      w.kv("recoveries", c.recoveries);
      w.kv("leader_failovers", c.failovers);
      w.kv("failover_p99_ns_max", c.failover_p99_ns_max);
      if (durable) {
        w.kv("replayed_records", c.replayed_records);
        w.kv("storage_snapshots", c.storage_snapshots);
        w.kv("durability_checks", c.durability_checks);
      }
      if (lag) {
        w.kv("repair_transfers", c.repair_transfers);
        w.kv("repair_completed", c.repair_completed);
        w.kv("repair_installed", c.repair_installed);
        w.kv("prune_watermark_max", c.prune_watermark_max);
      }
      if (overload) {
        w.kv("sent", c.sent);
        w.kv("completions", c.completions);
        w.kv("rejected", c.rejected);
        w.kv("expired", c.expired);
        w.kv("timed_out", c.timed_out);
        w.kv("suppressed", c.suppressed);
        w.kv("retries", c.retries);
      }
      w.key("failed_seeds").begin_array();
      for (const std::uint64_t s : c.failed_seeds) w.value(s);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.kv("all_ok", all_ok);
    w.end_object();
    out << '\n';
  }

  return all_ok ? 0 : 1;
}
