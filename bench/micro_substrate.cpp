// Substrate microbenchmarks (google-benchmark): the per-operation costs of
// the building blocks — codec, event queue, RNG, delivery buffer, and a
// whole simulated consensus instance — that determine how much simulated
// time per wall-clock second the figure benches can chew through.

#include <benchmark/benchmark.h>

#include "fastcast/amcast/delivery_buffer.hpp"
#include "fastcast/paxos/group_consensus.hpp"
#include "fastcast/sim/simulator.hpp"

namespace fastcast {
namespace {

Message sample_rm_data() {
  MulticastMessage m;
  m.id = make_msg_id(7, 42);
  m.sender = 7;
  m.dst = {0, 3, 5};
  m.payload = std::string(64, 'p');
  RmData d;
  d.origin = 9;
  d.seq = 1234;
  d.dst_groups = {0, 3, 5};
  d.dest_nodes = {0, 1, 2, 9, 10, 11, 15, 16, 17};
  d.dest_seqs = {1, 1, 1, 1, 1, 1, 1, 1, 1};
  d.inner = AmStart{m};
  return Message{d};
}

void BM_EncodeMessage(benchmark::State& state) {
  const Message msg = sample_rm_data();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_message(msg));
  }
}
BENCHMARK(BM_EncodeMessage);

void BM_DecodeMessage(benchmark::State& state) {
  const auto bytes = encode_message(sample_rm_data());
  for (auto _ : state) {
    Message out;
    benchmark::DoNotOptimize(decode_message(bytes, out));
  }
}
BENCHMARK(BM_DecodeMessage);

void BM_EncodeTupleBatch(benchmark::State& state) {
  std::vector<Tuple> batch;
  for (int i = 0; i < 32; ++i) {
    batch.push_back(Tuple{TupleKind::kSyncHard, 3, static_cast<Ts>(i),
                          make_msg_id(1, static_cast<std::uint32_t>(i)),
                          {0, 1, 2, 3}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_tuples(batch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_EncodeTupleBatch);

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  Rng rng(1);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(static_cast<Time>(rng.uniform(1000000)), [] {});
    }
    for (int i = 0; i < 64; ++i) q.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

/// One fully-simulated consensus decision (3 replicas, LAN): the unit of
/// work behind every SET-HARD / SYNC-* step in the figure benches.
void BM_SimulatedConsensusDecision(benchmark::State& state) {
  struct Node : Process {
    explicit Node(paxos::GroupConsensus::Config cfg, NodeId self)
        : cons(cfg, self) {}
    void on_start(Context& ctx) override { cons.on_start(ctx); }
    void on_message(Context& ctx, NodeId from, const Message& msg) override {
      cons.handle(ctx, from, msg);
    }
    paxos::GroupConsensus cons;
  };

  Membership membership;
  membership.add_group(3, {0, 0, 0});
  sim::Simulator sim(membership, sim::make_paper_lan(), {});
  paxos::GroupConsensus::Config cfg;
  cfg.group = 0;
  cfg.members = membership.members(0);
  std::vector<std::shared_ptr<Node>> nodes;
  std::uint64_t decided = 0;
  for (NodeId n = 0; n < 3; ++n) {
    nodes.push_back(std::make_shared<Node>(cfg, n));
    nodes.back()->cons.set_decide(
        [&decided](InstanceId, const std::vector<std::byte>&) { ++decided; });
    sim.add_process(n, nodes.back());
  }
  sim.start();
  const std::vector<std::byte> value(64, std::byte{1});
  for (auto _ : state) {
    nodes[0]->cons.propose(*const_cast<Context*>(&sim.context(0)), value);
    sim.run_to_idle();
  }
  benchmark::DoNotOptimize(decided);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatedConsensusDecision);

void BM_DeliveryBufferLocalCycle(benchmark::State& state) {
  class NullContext final : public Context {
   public:
    NullContext() { membership_.add_group(1, {0}); }
    NodeId self() const override { return 0; }
    Time now() const override { return 0; }
    void send(NodeId, const Message&) override {}
    TimerId set_timer(Duration, std::function<void()>) override { return 1; }
    void cancel_timer(TimerId) override {}
    Rng& rng() override { return rng_; }
    const Membership& membership() const override { return membership_; }

   private:
    Rng rng_;
    Membership membership_;
  };
  NullContext ctx;
  DeliveryBuffer buffer;
  std::uint64_t delivered = 0;
  buffer.set_deliver([&delivered](Context&, const MulticastMessage&) { ++delivered; });
  MulticastMessage m;
  m.sender = 1;
  m.dst = {0};
  m.payload = std::string(64, 'x');
  Ts ts = 0;
  std::uint32_t seq = 0;
  for (auto _ : state) {
    m.id = make_msg_id(1, seq++);
    buffer.store_body(ctx, m);
    buffer.add_entry(ctx, EntryKind::kSyncHard, 0, ++ts, m.id);
  }
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_DeliveryBufferLocalCycle);

}  // namespace
}  // namespace fastcast

BENCHMARK_MAIN();
