#pragma once

#include "bench_util.hpp"

/// \file figure_panels.hpp
/// The four-panel microbenchmark layout shared by Figures 4 (LAN),
/// 5 (emulated WAN) and 6 (real WAN):
///   top-left    — single-client latency, multicast to all groups, versus
///                 the number of groups in the configuration;
///   top-right   — single-client latency, 16 groups, multicast to k groups;
///   bottom-left — latency under load, 16 groups, kg×kc = 1536;
///   bottom-right— throughput under load, same configurations.

namespace fastcast::bench {

inline void run_figure_panels(Environment env, const char* fig,
                              bool slow_path_ablation) {
  const std::vector<std::size_t> group_counts = {1, 2, 4, 8, 16};
  const std::vector<std::pair<std::size_t, std::size_t>> load_points = {
      {1, 1536}, {2, 768}, {4, 384}, {8, 192}, {16, 96}};
  const std::vector<Protocol> protos =
      slow_path_ablation ? kFourProtocols : kThreeProtocols;

  std::vector<std::string> columns{"config"};
  for (Protocol p : protos) columns.push_back(to_string(p));

  {
    Table t(std::string(fig) + " top-left — 1 client multicasts to ALL "
                               "groups vs #groups [median ms (p95)]",
            {"groups", "BaseCast", "FastCast", "MultiPaxos"});
    for (std::size_t g : group_counts) {
      std::vector<std::string> row{std::to_string(g)};
      for (Protocol proto : kThreeProtocols) {
        const auto r = run_single_client(env, proto, g, all_groups(g));
        check_or_warn(r, fig);
        note_result(std::string(fig) + " top-left", std::to_string(g),
                    to_string(proto), r);
        row.push_back(lat_cell(r));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  {
    Table t(std::string(fig) + " top-right — 1 client multicasts to k of "
                               "16 groups [median ms (p95)]",
            {"k dest groups", "BaseCast", "FastCast", "MultiPaxos"});
    for (std::size_t k : group_counts) {
      std::vector<std::string> row{std::to_string(k)};
      for (Protocol proto : kThreeProtocols) {
        const auto r = run_single_client(env, proto, 16, random_subset(16, k));
        check_or_warn(r, fig);
        note_result(std::string(fig) + " top-right", std::to_string(k),
                    to_string(proto), r);
        row.push_back(lat_cell(r));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  {
    Table lat(std::string(fig) + " bottom-left — latency under load, 16 "
                                 "groups, kg x kc = 1536 [median ms (p95)]",
              columns);
    Table tput(std::string(fig) + " bottom-right — throughput under load "
                                  "[msgs/s, ±95% CI]",
               columns);
    for (auto [kg, kc] : load_points) {
      std::vector<std::string> lrow{std::to_string(kg) + "G/" +
                                    std::to_string(kc) + "C"};
      std::vector<std::string> trow = lrow;
      for (Protocol proto : protos) {
        const auto r = run_load(env, proto, 16, kg, kc);
        check_or_warn(r, fig);
        note_result(std::string(fig) + " bottom",
                    std::to_string(kg) + "G/" + std::to_string(kc) + "C",
                    to_string(proto), r);
        lrow.push_back(lat_cell(r));
        trow.push_back(tput_cell(r));
      }
      lat.add_row(std::move(lrow));
      tput.add_row(std::move(trow));
    }
    lat.print();
    tput.print();
  }
}

}  // namespace fastcast::bench
