// Figure 4: microbenchmark in a LAN.
//
// Paper shapes: with one client MultiPaxos is lowest almost everywhere
// (3 communication delays and tiny RTTs), FastCast beats BaseCast below
// ~8 destination groups and loses above (fast-path message overhead);
// under load FastCast wins at 2 destination groups, BaseCast at more, and
// MultiPaxos wins only when messages address all 16 groups.

#include "figure_panels.hpp"

int main(int argc, char** argv) {
  fastcast::bench::parse_bench_cli(argc, argv, "fig4_lan");
  fastcast::bench::run_figure_panels(fastcast::harness::Environment::kLan,
                                     "Fig. 4 (LAN)", /*slow_path_ablation=*/false);
  return fastcast::bench::finish_bench("fig4_lan");
}
