// Figure 7: the social network application in the emulated WAN — 10 000
// users partitioned over 16 groups (paper spread: 7110/2474/376/40 users
// spanning 1/2/3/4-5 partitions), posts atomically multicast to every
// group holding a follower.
//
// Paper shapes: single client — FastCast ≈ MultiPaxos ≈ 1 RTT (73–76 ms),
// BaseCast ≈ 2×; throughput — FastCast leads up to ~3200 clients and
// saturates ~12 500 posts/s with BaseCast catching up near saturation
// while MultiPaxos is overwhelmed; at 800/1600 clients FastCast's latency
// stays near 1 RTT while BaseCast is ~2x and MultiPaxos degrades.

#include "bench_util.hpp"
#include "fastcast/app/socialnet/service.hpp"

using namespace fastcast;
using namespace fastcast::bench;

namespace {

std::shared_ptr<const app::SocialNetworkService> make_service() {
  auto pg = app::generate_paper_spread_graph(10000, 16, /*seed=*/7);
  return std::make_shared<app::SocialNetworkService>(std::move(pg.graph),
                                                     std::move(pg.partition_of), 16);
}

ExperimentResult run_social(Protocol proto, std::size_t clients, DstPicker dst,
                            Duration measure = milliseconds(2000)) {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kEmulatedWan;
  cfg.topo.groups = 16;
  cfg.topo.clients = clients;
  cfg.topo.protocol = proto;
  cfg.dst_factory = same_dst_for_all(std::move(dst));
  cfg.warmup = milliseconds(900);
  cfg.measure = measure;
  cfg.slice = measure / 8;
  cfg.drain = false;
  cfg.check_level = Checker::Level::kFast;
  return run_configured(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  parse_bench_cli(argc, argv, "fig7_socialnet");
  auto service = make_service();

  {
    Table t("Fig. 7 top-left — single client 'post' latency vs #groups in "
            "the poster's follower spread [median ms (p95)]",
            {"dest groups", "BaseCast", "FastCast", "MultiPaxos"});
    for (std::size_t span : {1, 2, 3, 4}) {
      std::vector<std::string> row{std::to_string(span)};
      for (Protocol proto : kThreeProtocols) {
        const auto r = run_social(proto, 1,
                                  app::social_post_picker_with_span(service, span),
                                  milliseconds(3500));
        check_or_warn(r, "fig7 top-left");
        note_result("Fig. 7 top-left", std::to_string(span), to_string(proto),
                    r);
        row.push_back(lat_cell(r));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  {
    Table t("Fig. 7 top-right — post throughput vs number of clients "
            "[posts/s, ±95% CI]",
            {"clients", "BaseCast", "FastCast", "MultiPaxos"});
    for (std::size_t clients : {800, 1600, 2400, 3200, 4000}) {
      std::vector<std::string> row{std::to_string(clients)};
      for (Protocol proto : kThreeProtocols) {
        const auto r =
            run_social(proto, clients, app::social_post_picker(service));
        check_or_warn(r, "fig7 top-right");
        note_result("Fig. 7 top-right", std::to_string(clients),
                    to_string(proto), r);
        row.push_back(tput_cell(r));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  for (std::size_t clients : {800, 1600}) {
    Table t("Fig. 7 bottom — latency by destination-group count with " +
                std::to_string(clients) + " clients [median ms (p95)]",
            {"dest groups", "BaseCast", "FastCast", "MultiPaxos"});
    std::vector<std::vector<std::string>> rows(4);
    for (std::size_t span = 1; span <= 4; ++span) {
      rows[span - 1].push_back(std::to_string(span));
    }
    for (Protocol proto : kThreeProtocols) {
      ExperimentConfig cfg;
      cfg.topo.env = Environment::kEmulatedWan;
      cfg.topo.groups = 16;
      cfg.topo.clients = clients;
      cfg.topo.protocol = proto;
      cfg.dst_factory = same_dst_for_all(app::social_post_picker(service));
      cfg.warmup = milliseconds(900);
      cfg.measure = milliseconds(2000);
      cfg.slice = milliseconds(400);
      cfg.drain = false;
      cfg.check_level = Checker::Level::kFast;
      Cluster cluster(cfg);
      cluster.start();
      auto& sim = cluster.simulator();
      sim.run_until(cfg.warmup);
      cluster.metrics().open_window(cfg.warmup, cfg.warmup + cfg.measure, cfg.slice);
      sim.run_until(cfg.warmup + cfg.measure);
      cluster.metrics().close_window();
      for (std::size_t span = 1; span <= 4; ++span) {
        const auto& lat = cluster.metrics().latency_for_tag(span);
        rows[span - 1].push_back(
            lat.empty() ? "-" : format_ms(lat.median()) + " (p95 " +
                                    format_ms(lat.percentile(95)) + ")");
      }
      const auto report = cluster.checker().check(false, Checker::Level::kFast);
      if (!report.ok) {
        std::fprintf(stderr, "WARNING: checker violations in fig7 bottom: %s\n",
                     report.violations[0].c_str());
      }
    }
    for (auto& row : rows) t.add_row(std::move(row));
    t.print();
  }
  return finish_bench("fig7_socialnet");
}
