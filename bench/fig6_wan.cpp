// Figure 6: microbenchmark in the real WAN (EC2 California / N. Virginia /
// Ireland — same latency matrix as the emulated WAN, faster CPUs).
//
// Paper shapes: single-client results match the emulated WAN; under load
// FastCast improves slightly at 8–16 groups thanks to the cheaper CPUs
// (~84 ms vs BaseCast's 163–170 ms; 80% more throughput at 2 destination
// groups); MultiPaxos still wins when messages address all groups.

#include "figure_panels.hpp"

int main(int argc, char** argv) {
  fastcast::bench::parse_bench_cli(argc, argv, "fig6_wan");
  fastcast::bench::run_figure_panels(fastcast::harness::Environment::kRealWan,
                                     "Fig. 6 (real WAN)",
                                     /*slow_path_ablation=*/false);
  return fastcast::bench::finish_bench("fig6_wan");
}
