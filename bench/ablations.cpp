// Ablation benches for the implementation's design choices (DESIGN.md §3):
//
//   A. Deferred SYNC-HARD proposals (FastCast). Algorithm 2 as written
//      proposes every r-delivered SYNC-HARD; when Task 6 will match it
//      anyway the instance is redundant and competes with the *next*
//      message's SYNC-SOFT for the proposer pipeline. Measured as WAN
//      fast-path latency, eager vs deferred.
//   B. Consensus pipeline depth. A window smaller than
//      1 + destinations stalls the fast path by a full consensus round.
//   C. SEND-HARD transmission policy: leader-only (prototype) versus every
//      member (pseudocode) — message-count overhead for identical results.
//   D. Reliable-multicast relay: agreement insurance for crashed senders,
//      priced in messages.

#include "bench_util.hpp"

using namespace fastcast;
using namespace fastcast::bench;

namespace {

ExperimentConfig wan_fastcast(std::size_t groups) {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kEmulatedWan;
  cfg.topo.groups = groups;
  cfg.topo.clients = 1;
  cfg.topo.protocol = Protocol::kFastCast;
  cfg.dst_factory = same_dst_for_all(all_groups(groups));
  cfg.warmup = milliseconds(600);
  cfg.measure = milliseconds(3000);
  cfg.check_level = Checker::Level::kFast;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  parse_bench_cli(argc, argv, "ablations");
  {
    Table t("Ablation A — FastCast SYNC-HARD proposal policy, emulated WAN, "
            "1 client to all groups [median ms (p95)]",
            {"groups", "deferred (ours)", "eager (Alg. 2 verbatim)"});
    for (std::size_t g : {2, 4, 8}) {
      auto cfg = wan_fastcast(g);
      const auto deferred = run_configured(cfg);
      note_result("Ablation A", std::to_string(g), "deferred", deferred);
      cfg.fastcast_eager_hard = true;
      const auto eager = run_configured(cfg);
      note_result("Ablation A", std::to_string(g), "eager", eager);
      t.add_row({std::to_string(g), lat_cell(deferred), lat_cell(eager)});
    }
    t.print("eager proposals fill the pipeline with redundant instances and "
            "stall the next message's fast path");
  }

  {
    Table t("Ablation B — consensus pipeline depth, FastCast, emulated WAN, "
            "1 client to 4 groups [median ms (p95)]",
            {"window", "latency"});
    for (std::size_t window : {2, 4, 8, 32}) {
      auto cfg = wan_fastcast(4);
      cfg.consensus_window = window;
      const auto r = run_configured(cfg);
      note_result("Ablation B", std::to_string(window), "FastCast", r);
      t.add_row({std::to_string(window), lat_cell(r)});
    }
    t.print("a window below 1 + #destinations serialises the SYNC-SOFT "
            "proposals behind SET-HARD");
  }

  {
    Table t("Ablation C — SEND-HARD transmission policy, BaseCast, LAN, "
            "8 clients to 2 of 4 groups",
            {"policy", "median ms", "messages sent"});
    for (auto policy : {TimestampProtocolBase::Config::HardSend::kLeaderOnly,
                        TimestampProtocolBase::Config::HardSend::kAll}) {
      ExperimentConfig cfg;
      cfg.topo.env = Environment::kLan;
      cfg.topo.groups = 4;
      cfg.topo.clients = 8;
      cfg.topo.protocol = Protocol::kBaseCast;
      cfg.dst_factory = same_dst_for_all(random_subset(4, 2));
      cfg.warmup = milliseconds(100);
      cfg.measure = milliseconds(400);
      cfg.hard_send = policy;
      const auto r = run_configured(cfg);
      check_or_warn(r, "ablation C");
      const bool leader_only =
          policy == TimestampProtocolBase::Config::HardSend::kLeaderOnly;
      note_result("Ablation C", leader_only ? "leader-only" : "all members",
                  "BaseCast", r);
      t.add_row({leader_only ? "leader-only"
                     : "all members",
                 format_ms(r.latency.median()),
                 fmt_count(static_cast<double>(r.messages_sent))});
    }
    t.print("every member transmitting SEND-HARD (the pseudocode) costs "
            "extra messages for identical delivery results");
  }

  {
    Table t("Ablation D — reliable-multicast relay policy, FastCast, LAN, "
            "8 clients to 2 of 4 groups",
            {"relay", "median ms", "messages sent"});
    for (auto relay : {RmConfig::Relay::kNone, RmConfig::Relay::kSelf}) {
      ExperimentConfig cfg;
      cfg.topo.env = Environment::kLan;
      cfg.topo.groups = 4;
      cfg.topo.clients = 8;
      cfg.topo.protocol = Protocol::kFastCast;
      cfg.dst_factory = same_dst_for_all(random_subset(4, 2));
      cfg.warmup = milliseconds(100);
      cfg.measure = milliseconds(400);
      cfg.relay = relay;
      const auto r = run_configured(cfg);
      check_or_warn(r, "ablation D");
      note_result("Ablation D",
                  relay == RmConfig::Relay::kNone ? "none" : "every receiver",
                  "FastCast", r);
      t.add_row({relay == RmConfig::Relay::kNone ? "none" : "every receiver",
                 format_ms(r.latency.median()),
                 fmt_count(static_cast<double>(r.messages_sent))});
    }
    t.print("relaying buys sender-crash agreement at a multiplicative "
            "message cost");
  }
  return finish_bench("ablations");
}
