#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "fastcast/harness/experiment.hpp"
#include "fastcast/harness/table.hpp"

/// \file bench_util.hpp
/// Shared runners for the figure-reproduction benches. Each figure binary
/// prints the same series the paper plots: median latency with a 95th
/// percentile, or mean throughput with a 95% confidence interval.
///
/// Simulated durations are shorter than the paper's multi-minute runs so a
/// full bench sweep finishes in minutes; the confidence intervals printed
/// alongside show the windows are long enough for stable shapes.

namespace fastcast::bench {

using namespace fastcast::harness;

inline const std::vector<Protocol> kThreeProtocols = {
    Protocol::kBaseCast, Protocol::kFastCast, Protocol::kMultiPaxos};

inline const std::vector<Protocol> kFourProtocols = {
    Protocol::kBaseCast, Protocol::kFastCast, Protocol::kMultiPaxos,
    Protocol::kFastCastSlowPath};

/// Single closed-loop client multicasting to `dst` in a `groups`-group
/// deployment (the paper's "latency without queueing effects" setup).
inline ExperimentResult run_single_client(Environment env, Protocol proto,
                                          std::size_t groups, DstPicker dst,
                                          std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.topo.env = env;
  cfg.topo.groups = groups;
  cfg.topo.clients = 1;
  cfg.topo.protocol = proto;
  cfg.seed = seed;
  cfg.dst_factory = same_dst_for_all(std::move(dst));
  const bool lan = env == Environment::kLan;
  cfg.warmup = lan ? milliseconds(50) : milliseconds(600);
  cfg.measure = lan ? milliseconds(400) : milliseconds(3500);
  cfg.check_level = Checker::Level::kFast;
  return run_experiment(cfg);
}

/// "Operational load": kc clients multicasting to kg random destination
/// groups each, in a `groups`-group system (kg · kc = 1536 in the paper).
inline ExperimentResult run_load(Environment env, Protocol proto,
                                 std::size_t groups, std::size_t kg,
                                 std::size_t kc, std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.topo.env = env;
  cfg.topo.groups = groups;
  cfg.topo.clients = kc;
  cfg.topo.protocol = proto;
  cfg.seed = seed;
  cfg.dst_factory = [groups, kg, kc](std::size_t i) -> DstPicker {
    if (kg == 1) return fixed_group(static_cast<GroupId>(i % groups));
    (void)kc;
    return random_subset(groups, kg);
  };
  const bool lan = env == Environment::kLan;
  cfg.warmup = lan ? milliseconds(150) : milliseconds(900);
  cfg.measure = lan ? milliseconds(300) : milliseconds(2000);
  cfg.slice = cfg.measure / 8;
  cfg.drain = false;  // safety-only checks; keeps big runs fast
  cfg.check_level = Checker::Level::kFast;
  return run_experiment(cfg);
}

inline std::string lat_cell(const ExperimentResult& r) {
  if (r.latency.empty()) return "-";
  return format_ms(r.latency.median()) + " (p95 " +
         format_ms(r.latency.percentile(95)) + ")";
}

inline std::string tput_cell(const ExperimentResult& r) {
  return fmt_count(r.throughput.mean_per_sec) + " ±" +
         fmt_count(r.throughput.ci95_per_sec);
}

inline void check_or_warn(const ExperimentResult& r, const char* what) {
  if (!r.report.ok) {
    std::fprintf(stderr, "WARNING: checker violations in %s:\n", what);
    for (const auto& v : r.report.violations) {
      std::fprintf(stderr, "  %s\n", v.c_str());
    }
  }
}

}  // namespace fastcast::bench
