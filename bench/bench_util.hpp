#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fastcast/harness/experiment.hpp"
#include "fastcast/harness/table.hpp"
#include "fastcast/obs/json.hpp"
#include "fastcast/obs/observability.hpp"

/// \file bench_util.hpp
/// Shared runners for the figure-reproduction benches. Each figure binary
/// prints the same series the paper plots: median latency with a 95th
/// percentile, or mean throughput with a 95% confidence interval.
///
/// Simulated durations are shorter than the paper's multi-minute runs so a
/// full bench sweep finishes in minutes; the confidence intervals printed
/// alongside show the windows are long enough for stable shapes.

namespace fastcast::bench {

using namespace fastcast::harness;

inline const std::vector<Protocol> kThreeProtocols = {
    Protocol::kBaseCast, Protocol::kFastCast, Protocol::kMultiPaxos};

inline const std::vector<Protocol> kFourProtocols = {
    Protocol::kBaseCast, Protocol::kFastCast, Protocol::kMultiPaxos,
    Protocol::kFastCastSlowPath};

// ---------------------------------------------------------------------------
// Shared command line: every figure binary accepts
//   --json <path>         machine-readable results (BENCH_*.json)
//   --metrics-out <path>  protocol metrics merged over all runs
//   --trace <path>        span dump of the last run (rewritten per run)
// ---------------------------------------------------------------------------

struct BenchCli {
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;

  bool observe() const { return !metrics_path.empty() || !trace_path.empty(); }
};

// ---------------------------------------------------------------------------
// Build-flavor detection: numbers from unoptimized or sanitized builds are
// not comparable to tracked baselines, so every bench stamps the flavor into
// its JSON and warns loudly when it is not a clean optimized build.
// ---------------------------------------------------------------------------

constexpr bool build_is_optimized() {
#ifdef __OPTIMIZE__
  return true;
#else
  return false;
#endif
}

constexpr bool build_has_assertions() {
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

constexpr bool build_is_sanitized() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer) || __has_feature(undefined_behavior_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

constexpr bool build_is_benchmark_grade() {
  return build_is_optimized() && !build_is_sanitized();
}

/// Warns on stderr when this binary was built in a flavor whose timings are
/// meaningless (debug / sanitizers). Returns true when the build is clean.
inline bool warn_if_not_benchmark_grade(const char* name) {
  if (build_is_benchmark_grade()) return true;
  std::fprintf(stderr,
               "%s: WARNING: not a benchmark-grade build (optimized=%d, "
               "sanitized=%d, assertions=%d); timings will be misleading — "
               "rebuild with -DCMAKE_BUILD_TYPE=Release\n",
               name, build_is_optimized() ? 1 : 0, build_is_sanitized() ? 1 : 0,
               build_has_assertions() ? 1 : 0);
  return false;
}

/// Writes the "build" JSON object (call inside an open object).
inline void write_build_flavor(obs::JsonWriter& w) {
  w.key("build").begin_object();
  w.kv("optimized", build_is_optimized());
  w.kv("sanitized", build_is_sanitized());
  w.kv("assertions", build_has_assertions());
  w.kv("benchmark_grade", build_is_benchmark_grade());
  w.end_object();
}

inline BenchCli& bench_cli() {
  static BenchCli cli;
  return cli;
}

/// Metrics accumulated across every run of the binary (counters add,
/// gauges keep the max).
inline obs::MetricsRegistry& bench_merged_metrics() {
  static obs::MetricsRegistry registry;
  return registry;
}

/// One measured configuration, captured for --json alongside the printed
/// table cell.
struct BenchRow {
  std::string table;    ///< e.g. "Fig. 4 (LAN) top-left"
  std::string x;        ///< row key, e.g. "8" groups or "2G/768C"
  std::string series;   ///< protocol / column name
  double median_ms = 0;
  double p95_ms = 0;
  std::uint64_t latency_samples = 0;
  double tput_per_sec = 0;
  double tput_ci95 = 0;
  std::uint64_t fast_path = 0;
  std::uint64_t slow_path = 0;
  bool check_ok = true;
};

inline std::vector<BenchRow>& bench_rows() {
  static std::vector<BenchRow> rows;
  return rows;
}

inline void note_result(const std::string& table, const std::string& x,
                        const std::string& series, const ExperimentResult& r) {
  BenchRow row;
  row.table = table;
  row.x = x;
  row.series = series;
  if (!r.latency.empty()) {
    row.median_ms = to_milliseconds(r.latency.median());
    row.p95_ms = to_milliseconds(r.latency.percentile(95));
    row.latency_samples = r.latency.count();
  }
  row.tput_per_sec = r.throughput.mean_per_sec;
  row.tput_ci95 = r.throughput.ci95_per_sec;
  row.fast_path = r.fast_path_hits;
  row.slow_path = r.slow_path_hits;
  row.check_ok = r.report.ok;
  bench_rows().push_back(std::move(row));
}

/// Parses the shared flags; prints usage and exits on --help or a flag it
/// does not know.
inline void parse_bench_cli(int argc, char** argv, const char* name) {
  warn_if_not_benchmark_grade(name);
  auto& cli = bench_cli();
  for (int i = 1; i < argc; ++i) {
    auto want_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a path\n", name, flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      cli.json_path = want_value("--json");
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      cli.metrics_path = want_value("--metrics-out");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      cli.trace_path = want_value("--trace");
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>] [--metrics-out <path>] "
                   "[--trace <path>]\n"
                   "  --json         machine-readable results for all table "
                   "cells\n"
                   "  --metrics-out  protocol metrics merged over all runs\n"
                   "  --trace        message-span dump of the last run\n",
                   name);
      std::exit(std::strcmp(argv[i], "--help") == 0 ? 0 : 2);
    }
  }
}

/// Runs an experiment with the shared CLI applied: enables observability
/// when requested, folds the run's metrics into the process-wide registry
/// and rewrites the trace dump (the file ends up holding the last run).
inline ExperimentResult run_configured(ExperimentConfig cfg) {
  const auto& cli = bench_cli();
  if (cli.observe()) cfg.observe = true;
  if (!cli.trace_path.empty()) cfg.trace = true;
  ExperimentResult r = run_experiment(cfg);
  if (r.obs) {
    bench_merged_metrics().merge_from(r.obs->metrics);
    if (!cli.trace_path.empty()) {
      std::ofstream out(cli.trace_path);
      if (out) {
        r.obs->tracer.dump_json(out);
      } else {
        std::fprintf(stderr, "bench: cannot write %s\n",
                     cli.trace_path.c_str());
      }
    }
  }
  return r;
}

/// Writes --json / --metrics-out files (if requested). Call once at the
/// end of main; returns the process exit code.
inline int finish_bench(const char* name) {
  const auto& cli = bench_cli();
  if (!cli.json_path.empty()) {
    std::ofstream out(cli.json_path);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write %s\n", name, cli.json_path.c_str());
      return 1;
    }
    obs::JsonWriter w(out);
    w.begin_object();
    w.kv("bench", name);
    write_build_flavor(w);
    w.key("rows").begin_array();
    for (const BenchRow& row : bench_rows()) {
      w.begin_object();
      w.kv("table", row.table);
      w.kv("x", row.x);
      w.kv("series", row.series);
      if (row.latency_samples > 0) {
        w.kv("median_ms", row.median_ms);
        w.kv("p95_ms", row.p95_ms);
        w.kv("latency_samples", row.latency_samples);
      }
      w.kv("tput_per_sec", row.tput_per_sec);
      w.kv("tput_ci95", row.tput_ci95);
      w.kv("fast_path", row.fast_path);
      w.kv("slow_path", row.slow_path);
      w.kv("check_ok", row.check_ok);
      w.end_object();
    }
    w.end_array();
    if (cli.observe()) {
      const auto cs = bench_merged_metrics().counters();
      const auto gs = bench_merged_metrics().gauges();
      w.key("metrics").begin_object();
      w.key("counters").begin_object();
      for (const auto& [n, v] : cs) w.kv(n, v);
      w.end_object();
      w.key("gauges").begin_object();
      for (const auto& [n, v] : gs) w.kv(n, v);
      w.end_object();
      w.end_object();
    }
    w.end_object();
    out << '\n';
  }
  if (!cli.metrics_path.empty()) {
    std::ofstream out(cli.metrics_path);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write %s\n", name,
                   cli.metrics_path.c_str());
      return 1;
    }
    bench_merged_metrics().write_json(out);
    out << '\n';
  }
  return 0;
}

/// Single closed-loop client multicasting to `dst` in a `groups`-group
/// deployment (the paper's "latency without queueing effects" setup).
inline ExperimentResult run_single_client(Environment env, Protocol proto,
                                          std::size_t groups, DstPicker dst,
                                          std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.topo.env = env;
  cfg.topo.groups = groups;
  cfg.topo.clients = 1;
  cfg.topo.protocol = proto;
  cfg.seed = seed;
  cfg.dst_factory = same_dst_for_all(std::move(dst));
  const bool lan = env == Environment::kLan;
  cfg.warmup = lan ? milliseconds(50) : milliseconds(600);
  cfg.measure = lan ? milliseconds(400) : milliseconds(3500);
  cfg.check_level = Checker::Level::kFast;
  return run_configured(std::move(cfg));
}

/// "Operational load": kc clients multicasting to kg random destination
/// groups each, in a `groups`-group system (kg · kc = 1536 in the paper).
inline ExperimentResult run_load(Environment env, Protocol proto,
                                 std::size_t groups, std::size_t kg,
                                 std::size_t kc, std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.topo.env = env;
  cfg.topo.groups = groups;
  cfg.topo.clients = kc;
  cfg.topo.protocol = proto;
  cfg.seed = seed;
  cfg.dst_factory = [groups, kg, kc](std::size_t i) -> DstPicker {
    if (kg == 1) return fixed_group(static_cast<GroupId>(i % groups));
    (void)kc;
    return random_subset(groups, kg);
  };
  const bool lan = env == Environment::kLan;
  cfg.warmup = lan ? milliseconds(150) : milliseconds(900);
  cfg.measure = lan ? milliseconds(300) : milliseconds(2000);
  cfg.slice = cfg.measure / 8;
  cfg.drain = false;  // safety-only checks; keeps big runs fast
  cfg.check_level = Checker::Level::kFast;
  return run_configured(std::move(cfg));
}

inline std::string lat_cell(const ExperimentResult& r) {
  if (r.latency.empty()) return "-";
  return format_ms(r.latency.median()) + " (p95 " +
         format_ms(r.latency.percentile(95)) + ")";
}

inline std::string tput_cell(const ExperimentResult& r) {
  return fmt_count(r.throughput.mean_per_sec) + " ±" +
         fmt_count(r.throughput.ci95_per_sec);
}

inline void check_or_warn(const ExperimentResult& r, const char* what) {
  if (!r.report.ok) {
    std::fprintf(stderr, "WARNING: checker violations in %s:\n", what);
    for (const auto& v : r.report.violations) {
      std::fprintf(stderr, "  %s\n", v.c_str());
    }
  }
}

}  // namespace fastcast::bench
