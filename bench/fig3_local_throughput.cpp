// Figure 3: throughput of single-group (local) messages versus number of
// groups on the LAN, 200 closed-loop clients per group.
//
// Paper shape: the genuine protocols (BaseCast/FastCast, identical for
// local messages) scale linearly — ~36 k msgs/s with one group up to
// ~600 k with 16 — while MultiPaxos' fixed ordering group saturates near
// 48 k msgs/s regardless of group count.

#include "bench_util.hpp"

using namespace fastcast;
using namespace fastcast::bench;

int main(int argc, char** argv) {
  parse_bench_cli(argc, argv, "fig3_local_throughput");
  const std::vector<std::size_t> group_counts = {1, 2, 4, 8, 16};

  Table table("Fig. 3 — local-message throughput in LAN, 200 clients/group "
              "[msgs/s, ±95% CI]",
              {"groups", "BaseCast", "FastCast", "MultiPaxos"});

  for (std::size_t groups : group_counts) {
    std::vector<std::string> row{std::to_string(groups)};
    for (Protocol proto : kThreeProtocols) {
      const auto r =
          run_load(Environment::kLan, proto, groups, /*kg=*/1,
                   /*kc=*/200 * groups);
      check_or_warn(r, "fig3");
      note_result("Fig. 3", std::to_string(groups), to_string(proto), r);
      row.push_back(tput_cell(r));
    }
    table.add_row(std::move(row));
  }
  table.print(
      "genuine protocols scale linearly with groups; MultiPaxos is "
      "CPU-bound at its fixed ordering group");
  return finish_bench("fig3_local_throughput");
}
