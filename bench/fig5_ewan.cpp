// Figure 5: microbenchmark in the emulated WAN (RTTs 70/70/144 ms ±5%).
//
// Paper shapes: single client — FastCast and MultiPaxos ≈ 1 RTT for any
// destination count, BaseCast ≈ 2 RTT; under load FastCast beats BaseCast
// up to 8 destination groups (≈70% higher throughput at 2), MultiPaxos
// wins at 16/all; the forced-slow-path ablation costs ≈ BaseCast plus the
// fast path's wasted overhead.

#include "figure_panels.hpp"

int main(int argc, char** argv) {
  fastcast::bench::parse_bench_cli(argc, argv, "fig5_ewan");
  fastcast::bench::run_figure_panels(fastcast::harness::Environment::kEmulatedWan,
                                     "Fig. 5 (emulated WAN)",
                                     /*slow_path_ablation=*/true);
  return fastcast::bench::finish_bench("fig5_ewan");
}
