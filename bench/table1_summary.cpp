// Table 1: which protocol performs best per (benchmark, environment,
// load, destination count) cell, 16-group system.
//
// Paper's table: under low load MultiPaxos wins in the LAN and for
// messages addressed to all groups; FastCast wins WAN cells with 2–8
// destinations; local messages are a tie between the genuine protocols;
// BaseCast takes the many-but-not-all LAN cells under load.

#include "bench_util.hpp"

using namespace fastcast;
using namespace fastcast::bench;

namespace {

/// Winners within 5% are reported as a tie (the paper's "equal" cells).
std::string winner_by(const std::vector<std::pair<std::string, double>>& scores,
                      bool lower_is_better) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    const bool better = lower_is_better ? scores[i].second < scores[best].second
                                        : scores[i].second > scores[best].second;
    if (better) best = i;
  }
  std::string cell = scores[best].first;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (i == best) continue;
    const double ratio = scores[i].second / scores[best].second;
    const bool close = lower_is_better ? ratio < 1.05 : ratio > 0.95;
    if (close) cell += "=" + scores[i].first;
  }
  return cell;
}

const char* short_name(Protocol p) {
  switch (p) {
    case Protocol::kBaseCast: return "BC";
    case Protocol::kFastCast: return "FC";
    case Protocol::kMultiPaxos: return "MP";
    case Protocol::kFastCastSlowPath: return "FCs";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  parse_bench_cli(argc, argv, "table1_summary");
  const std::vector<std::size_t> dest_counts = {1, 2, 4, 8, 16};
  Table table(
      "Table 1 — best protocol per configuration (16 groups; FC=FastCast, "
      "BC=BaseCast, MP=MultiPaxos; '=' marks results within 5%)",
      {"environment", "load", "1", "2", "4", "8", "16 (all)"});

  for (Environment env : {Environment::kLan, Environment::kEmulatedWan,
                          Environment::kRealWan}) {
    // Low load: one client; winner by median latency.
    {
      std::vector<std::string> row{to_string(env), "low"};
      for (std::size_t k : dest_counts) {
        std::vector<std::pair<std::string, double>> scores;
        for (Protocol proto : kThreeProtocols) {
          const auto r = run_single_client(env, proto, 16, random_subset(16, k));
          check_or_warn(r, "table1 low");
          note_result(std::string("Table 1 low ") + to_string(env),
                      std::to_string(k), to_string(proto), r);
          scores.emplace_back(short_name(proto),
                              to_milliseconds(r.latency.median()));
        }
        row.push_back(winner_by(scores, /*lower_is_better=*/true));
      }
      table.add_row(std::move(row));
    }
    // High load: kg·kc = 1536; winner by throughput.
    {
      std::vector<std::string> row{to_string(env), "high"};
      for (std::size_t k : dest_counts) {
        std::vector<std::pair<std::string, double>> scores;
        for (Protocol proto : kThreeProtocols) {
          const auto r = run_load(env, proto, 16, k, 1536 / k);
          check_or_warn(r, "table1 high");
          note_result(std::string("Table 1 high ") + to_string(env),
                      std::to_string(k), to_string(proto), r);
          scores.emplace_back(short_name(proto), r.throughput.mean_per_sec);
        }
        row.push_back(winner_by(scores, /*lower_is_better=*/false));
      }
      table.add_row(std::move(row));
    }
  }
  table.print("low load: winner by median latency; high load: by throughput");
  return finish_bench("table1_summary");
}
