// Open-loop saturation sweep for the dissemination/ordering split.
//
// The MultiPaxos baseline is non-genuine: one fixed ordering group
// sequences every multicast, so its leader is the system bottleneck. This
// bench drives that bottleneck with open-loop clients (a new multicast
// every interval, regardless of outstanding acks) at increasing offered
// load and contrasts the two ordering modes at equal safety:
//
//   payload — full message batches travel through consensus (P2a/P2b carry
//             the payload bytes to every acceptor);
//   ids     — bodies are disseminated out-of-band to destination members
//             while consensus orders compact id records.
//
// To make the contrast visible the CPU model charges a per-byte
// serialization cost (CpuModel::per_byte, off everywhere else), so frames
// that carry payload cost send-side CPU proportional to their size — the
// simulator analogue of NIC/memcpy bandwidth. Under that model the payload
// mode saturates when the ordering leader's outbound bytes do; id mode
// keeps consensus frames small and saturates later.
//
// Reported per (mode, offered load): deliveries/s summed over all replicas
// in the measurement window (completion-independent, so saturation shows
// even when ack latency grows without bound), delivered payload bytes/s,
// and completion latency percentiles under load.
//
// Emits BENCH_openloop.json (override with --json); --smoke shrinks the
// sweep so CI can run it as a schema/regression smoke test.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fastcast/net/cpu_affinity.hpp"

namespace fastcast::bench {
namespace {

constexpr std::size_t kGroups = 3;
constexpr std::size_t kClients = 24;
constexpr std::size_t kPayloadBytes = 2048;

struct OpenLoopRow {
  std::string mode;              // "payload" | "ids"
  std::string overload;          // "none" (base sweep) | "off" | "on"
  double offered_per_sec = 0;    // clients / interval
  double deliveries_per_sec = 0; // replica a-deliveries in the window
  double delivered_bytes_per_sec = 0;
  double goodput_per_sec = 0;    // windowed completions that met deadline
  double median_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  std::uint64_t latency_samples = 0;
  std::uint64_t rejected = 0;      // terminal Busy/kOverload (run total)
  std::uint64_t expired = 0;       // terminal Busy/kExpired
  std::uint64_t timed_out = 0;     // client gave up waiting
  std::uint64_t suppressed = 0;    // injection ticks shed during backoff
  std::uint64_t deadline_miss = 0; // completed but past deadline
  bool check_ok = true;
};

/// Past-saturation sweep control: kNone is the base dissemination/ordering
/// sweep (no deadlines, flow dark — bit-for-bit the historical workload);
/// kOff stamps a deadline so goodput is measurable but leaves every
/// control off (the collapse column); kOn arms the full flow layer
/// (admission at the ordering leader, client timeout/backoff/retry).
enum class Overload { kNone, kOff, kOn };

harness::ExperimentConfig make_config(harness::ExperimentConfig::MpOrdering mode,
                                      Duration interval, bool smoke,
                                      std::uint64_t seed,
                                      Overload overload = Overload::kNone) {
  using namespace harness;
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = kGroups;
  cfg.topo.clients = kClients;
  cfg.topo.protocol = Protocol::kMultiPaxos;
  cfg.seed = seed;
  cfg.mp_ordering = mode;
  if (mode == ExperimentConfig::MpOrdering::kIds) {
    // Accumulate ids so consensus instances carry batches, exercising the
    // pipeline the way a loaded deployment would.
    cfg.mp_batch_fill = 16;
    cfg.mp_batch_delay = microseconds(200);
  }
  cfg.payload_size = kPayloadBytes;
  cfg.open_loop_interval = interval;
  // Single destination group per message: the ordering group's extra work
  // is pure overhead of non-genuineness, which is exactly the cost the
  // dissemination/ordering split attacks.
  cfg.dst_factory = [](std::size_t i) -> DstPicker {
    return fixed_group(static_cast<GroupId>(i % kGroups));
  };
  // Same CPU/latency floor as the calibrated LAN model, plus a 1 ns/byte
  // (~1 GB/s per node) serialization term so payload-carrying frames are
  // no longer free.
  cfg.cpu_override =
      sim::CpuModel{microseconds(15), microseconds(2), nanoseconds(1)};
  cfg.warmup = milliseconds(smoke ? 20 : 250);
  cfg.measure = milliseconds(smoke ? 80 : 400);
  cfg.slice = cfg.measure / 8;
  cfg.drain = false;  // open loop: we want behaviour *under* load
  cfg.check_level = Checker::Level::kFast;
  if (overload != Overload::kNone) {
    // Both columns stamp the same deadline so "goodput" means the same
    // thing; only the on column gets any machinery to protect it.
    cfg.client_flow.deadline = milliseconds(50);
    if (overload == Overload::kOn) {
      cfg.flow.enable = true;
      cfg.flow.target_delay = milliseconds(10);
      cfg.flow.trigger_window = milliseconds(4);
      cfg.client_flow.request_timeout = milliseconds(150);
      cfg.client_flow.backoff_base = milliseconds(1);
      cfg.client_flow.backoff_max = milliseconds(16);
      cfg.client_flow.retry_budget = 0.25;
      cfg.client_flow.max_retries = 2;
      cfg.client_flow.pace_increase = 0.002;
    }
  }
  return cfg;
}

OpenLoopRow run_point(harness::ExperimentConfig::MpOrdering mode,
                      Duration interval, bool smoke,
                      Overload overload = Overload::kNone) {
  const harness::ExperimentConfig cfg =
      make_config(mode, interval, smoke, 1, overload);
  const harness::ExperimentResult r = run_configured(cfg);
  check_or_warn(r, "openloop_throughput");

  OpenLoopRow row;
  row.mode =
      mode == harness::ExperimentConfig::MpOrdering::kIds ? "ids" : "payload";
  row.overload = overload == Overload::kNone ? "none"
                 : overload == Overload::kOn ? "on"
                                             : "off";
  row.offered_per_sec =
      static_cast<double>(kClients) / to_seconds(interval);
  const double window_s = to_seconds(cfg.measure);
  row.deliveries_per_sec =
      static_cast<double>(r.window_deliveries) / window_s;
  row.delivered_bytes_per_sec =
      row.deliveries_per_sec * static_cast<double>(kPayloadBytes);
  row.goodput_per_sec = static_cast<double>(r.window_goodput) / window_s;
  if (!r.latency.empty()) {
    row.median_ms = to_milliseconds(r.latency.median());
    row.p95_ms = to_milliseconds(r.latency.percentile(95));
    row.p99_ms = to_milliseconds(r.latency.percentile(99));
    row.latency_samples = r.latency.count();
  }
  row.rejected = r.rejected;
  row.expired = r.expired;
  row.timed_out = r.timed_out;
  row.suppressed = r.suppressed;
  row.deadline_miss = r.deadline_miss;
  row.check_ok = r.report.ok;
  return row;
}

/// Summary of the graceful-degradation proof: goodput with control on at
/// 2x the saturation offered rate, against the best goodput any
/// control-off point achieves (the saturation plateau).
struct OverloadHeadline {
  bool present = false;
  double saturation_goodput = 0;  // best "off" goodput across the sweep
  double on_2x_goodput = 0;       // "on" goodput at 2x the knee
  double off_2x_goodput = 0;      // "off" goodput at 2x the knee (collapse)
  bool ok = true;
};

int write_json(const std::string& path, const std::vector<OpenLoopRow>& rows,
               const OverloadHeadline& headline, bool smoke, int host_cpus) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "openloop_throughput: cannot write %s\n",
                 path.c_str());
    return 1;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("bench", "openloop_throughput");
  write_build_flavor(w);
  w.kv("smoke", smoke);
  w.kv("host_cpus", static_cast<std::int64_t>(host_cpus));
  w.kv("groups", static_cast<std::int64_t>(kGroups));
  w.kv("clients", static_cast<std::int64_t>(kClients));
  w.kv("payload_bytes", static_cast<std::int64_t>(kPayloadBytes));
  w.key("rows").begin_array();
  for (const OpenLoopRow& row : rows) {
    w.begin_object();
    w.kv("mode", row.mode);
    w.kv("overload", row.overload);
    w.kv("offered_per_sec", row.offered_per_sec);
    w.kv("deliveries_per_sec", row.deliveries_per_sec);
    w.kv("delivered_bytes_per_sec", row.delivered_bytes_per_sec);
    w.kv("goodput_per_sec", row.goodput_per_sec);
    w.kv("median_ms", row.median_ms);
    w.kv("p95_ms", row.p95_ms);
    w.kv("p99_ms", row.p99_ms);
    w.kv("latency_samples", row.latency_samples);
    w.kv("rejected", row.rejected);
    w.kv("expired", row.expired);
    w.kv("timed_out", row.timed_out);
    w.kv("suppressed", row.suppressed);
    w.kv("deadline_miss", row.deadline_miss);
    w.kv("check_ok", row.check_ok);
    w.end_object();
  }
  w.end_array();
  if (headline.present) {
    w.key("overload_headline").begin_object();
    w.kv("saturation_goodput_per_sec", headline.saturation_goodput);
    w.kv("on_2x_goodput_per_sec", headline.on_2x_goodput);
    w.kv("off_2x_goodput_per_sec", headline.off_2x_goodput);
    w.kv("holds_80pct", headline.ok);
    w.end_object();
  }
  w.end_object();
  out << '\n';
  return 0;
}

int bench_main(int argc, char** argv) {
  warn_if_not_benchmark_grade("openloop_throughput");
  bool smoke = false;
  std::string json_path = "BENCH_openloop.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: openloop_throughput [--smoke] [--json <path>]\n"
          "  --smoke  reduced sweep / short windows (CI smoke test)\n"
          "  --json   output path (default BENCH_openloop.json)\n");
      return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
    }
  }

  // Offered load per point = kClients / interval. The full sweep brackets
  // the calibrated single-node saturation (~66 k handled msgs/s at 15 us
  // per message) from well below to well past it.
  std::vector<std::int64_t> offered = smoke
                                          ? std::vector<std::int64_t>{4000, 24000}
                                          : std::vector<std::int64_t>{4000, 8000,
                                                                      16000, 24000,
                                                                      32000, 48000};

  using Mode = harness::ExperimentConfig::MpOrdering;
  std::vector<OpenLoopRow> rows;
  bool all_safe = true;
  std::printf("open-loop saturation, fixed ordering group (%zu groups, %zu "
              "clients, %zu B payload)\n",
              kGroups, kClients, kPayloadBytes);
  std::printf("%-8s %12s %14s %12s %10s %10s\n", "mode", "offered/s",
              "deliveries/s", "MB/s", "median ms", "p95 ms");
  for (Mode mode : {Mode::kPayload, Mode::kIds}) {
    for (std::int64_t rate : offered) {
      const Duration interval =
          kSecond * static_cast<Duration>(kClients) / rate;
      OpenLoopRow row = run_point(mode, interval, smoke);
      all_safe = all_safe && row.check_ok;
      std::printf("%-8s %12.0f %14.0f %12.2f %10.3f %10.3f\n",
                  row.mode.c_str(), row.offered_per_sec,
                  row.deliveries_per_sec,
                  row.delivered_bytes_per_sec / 1e6, row.median_ms,
                  row.p95_ms);
      rows.push_back(std::move(row));
    }
  }

  // Headline: at the top offered rate, id ordering must deliver at least
  // what payload-through-consensus does (it saturates later).
  double payload_peak = 0, ids_peak = 0;
  for (const OpenLoopRow& row : rows) {
    double& peak = row.mode == "ids" ? ids_peak : payload_peak;
    if (row.deliveries_per_sec > peak) peak = row.deliveries_per_sec;
  }
  std::printf("peak deliveries/s: payload %.0f, ids %.0f (%+.1f%%)\n",
              payload_peak, ids_peak,
              payload_peak > 0
                  ? 100.0 * (ids_peak - payload_peak) / payload_peak
                  : 0.0);

  // Graceful-degradation sweep (id mode, 50 ms deadline in both columns):
  // offered load from half the knee to 4x past it. The "off" column has no
  // protection, so past saturation queues grow without bound, acks land
  // past the deadline and goodput collapses; "on" arms admission control
  // at the ordering leader plus client timeout/backoff/retry, so goodput
  // must hold at >= 80% of the saturation plateau (the knee is calibrated
  // from the base sweep: deliveries stop scaling near 33k offered/s).
  constexpr std::int64_t kKnee = 33000;
  const std::vector<std::int64_t> ov_offered =
      smoke ? std::vector<std::int64_t>{2 * kKnee}
            : std::vector<std::int64_t>{kKnee / 2, kKnee, 2 * kKnee, 3 * kKnee,
                                        4 * kKnee};
  std::printf("\noverload sweep (ids mode, 50 ms deadline)\n");
  std::printf("%-5s %12s %12s %12s %10s %10s %10s %10s\n", "ctl", "offered/s",
              "goodput/s", "rejected", "expired", "timedout", "suppress",
              "p99 ms");
  OverloadHeadline headline;
  headline.present = true;
  for (std::int64_t rate : ov_offered) {
    for (Overload ctl : {Overload::kOff, Overload::kOn}) {
      const Duration interval =
          kSecond * static_cast<Duration>(kClients) / rate;
      OpenLoopRow row = run_point(Mode::kIds, interval, smoke, ctl);
      all_safe = all_safe && row.check_ok;
      std::printf("%-5s %12.0f %12.0f %12llu %10llu %10llu %10llu %10.3f\n",
                  row.overload.c_str(), row.offered_per_sec,
                  row.goodput_per_sec,
                  static_cast<unsigned long long>(row.rejected),
                  static_cast<unsigned long long>(row.expired),
                  static_cast<unsigned long long>(row.timed_out),
                  static_cast<unsigned long long>(row.suppressed),
                  row.p99_ms);
      if (row.overload == "off") {
        headline.saturation_goodput =
            std::max(headline.saturation_goodput, row.goodput_per_sec);
        if (rate == 2 * kKnee) headline.off_2x_goodput = row.goodput_per_sec;
      } else if (rate == 2 * kKnee) {
        headline.on_2x_goodput = row.goodput_per_sec;
      }
      rows.push_back(std::move(row));
    }
  }
  headline.ok = headline.on_2x_goodput >= 0.8 * headline.saturation_goodput;
  std::printf("goodput at 2x saturation: off %.0f/s, on %.0f/s "
              "(plateau %.0f/s) -> control %s\n",
              headline.off_2x_goodput, headline.on_2x_goodput,
              headline.saturation_goodput,
              headline.ok ? "holds >=80%" : "BELOW 80% of plateau");

  const int rc =
      write_json(json_path, rows, headline, smoke, net::online_cpu_count());
  if (rc != 0) return rc;
  if (!all_safe) {
    std::fprintf(stderr, "openloop_throughput: checker violations\n");
    return 1;
  }
  if (!smoke && !headline.ok) {
    // The smoke sweep's windows are too short for a stable plateau figure,
    // so only the full run enforces the degradation bound.
    std::fprintf(stderr,
                 "openloop_throughput: goodput under overload fell below "
                 "80%% of the saturation plateau\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace fastcast::bench

int main(int argc, char** argv) {
  return fastcast::bench::bench_main(argc, argv);
}
