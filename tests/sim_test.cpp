// Discrete-event simulator tests: event ordering, latency models, CPU
// queueing, fault injection, determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "fastcast/sim/chaos.hpp"
#include "fastcast/sim/event_queue.hpp"
#include "fastcast/sim/simulator.hpp"

namespace fastcast::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTime) {
  EventQueue q;
  q.push(42, [] {});
  EXPECT_EQ(q.next_time(), 42);
}

TEST(EventQueue, PoolRecyclesNodesInSteadyState) {
  EventQueue q;
  for (int i = 0; i < 64; ++i) q.push(i, [] {});
  const std::size_t pool_after_fill = q.pool_size();
  // Steady-state churn at constant depth must not grow the pool: every
  // pop returns a node to the free list that the next push reuses.
  for (int i = 0; i < 10'000; ++i) {
    q.pop().fn();
    q.push(1'000 + i, [] {});
  }
  EXPECT_EQ(q.pool_size(), pool_after_fill);
  EXPECT_EQ(q.size(), 64u);
}

TEST(EventQueue, HighWaterMarkTracksPeakDepth) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.push(i, [] {});
  for (int i = 0; i < 10; ++i) q.pop().fn();
  EXPECT_EQ(q.high_water_mark(), 10u);
  for (int i = 0; i < 3; ++i) q.push(i, [] {});
  EXPECT_EQ(q.high_water_mark(), 10u);  // peak, not current depth
  EXPECT_EQ(q.pushed_count(), 13u);
}

TEST(EventQueue, LargeClosuresFallBackToHeapCorrectly) {
  // Captures past EventFn's inline buffer must still run and destruct
  // exactly once (the fallback boxes them in a single heap allocation).
  struct Big {
    std::array<std::uint64_t, 16> data;  // 128 bytes, over kInlineBytes
    std::shared_ptr<int> alive;
  };
  auto alive = std::make_shared<int>(0);
  EventQueue q;
  Big big{{}, alive};
  big.data[7] = 99;
  std::uint64_t seen = 0;
  q.push(1, [big, &seen] { seen = big.data[7]; });
  big.alive.reset();
  EXPECT_EQ(alive.use_count(), 2);  // `alive` + the queued closure's copy
  q.pop().fn();
  EXPECT_EQ(seen, 99u);
  EXPECT_EQ(alive.use_count(), 1);  // closure destroyed after the pop
}

TEST(EventQueue, StressOrderingMatchesStableSortReference) {
  // Adversarial interleaving of pushes and pops with heavy time ties: the
  // observed execution order must equal a stable sort by (time, push
  // index) — the queue's determinism contract.
  EventQueue q;
  std::vector<std::pair<Time, int>> pushed;  // (time, id)
  std::vector<int> executed;
  int next_id = 0;
  std::uint64_t rng = 12345;
  auto rnd = [&rng](std::uint64_t mod) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return (rng >> 33) % mod;
  };
  Time floor_time = 0;  // pops raise the floor; later pushes stay above it
  for (int round = 0; round < 2'000; ++round) {
    if (q.empty() || rnd(3) != 0) {
      const Time at = floor_time + static_cast<Time>(rnd(8));
      const int id = next_id++;
      pushed.push_back({at, id});
      q.push(at, [id, &executed] { executed.push_back(id); });
    } else {
      floor_time = q.next_time();
      q.pop().fn();
    }
  }
  while (!q.empty()) q.pop().fn();

  std::stable_sort(pushed.begin(), pushed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(executed.size(), pushed.size());
  for (std::size_t i = 0; i < pushed.size(); ++i) {
    EXPECT_EQ(executed[i], pushed[i].second) << "at position " << i;
  }
}

TEST(Latency, ConstantNominal) {
  ConstantLatency lat(milliseconds(5));
  Rng rng(1);
  EXPECT_EQ(lat.nominal(0, 1), milliseconds(5));
  EXPECT_EQ(lat.sample(0, 1, rng), milliseconds(5));  // no jitter configured
}

TEST(Latency, JitterStaysPositiveAndCentered) {
  ConstantLatency lat(milliseconds(10), 0.05);
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const Duration d = lat.sample(0, 1, rng);
    ASSERT_GT(d, 0);
    sum += static_cast<double>(d);
  }
  EXPECT_NEAR(sum / 5000, static_cast<double>(milliseconds(10)),
              static_cast<double>(milliseconds(10)) * 0.01);
}

Membership wan_membership() {
  Membership m;
  m.add_group(3, {0, 1, 2});
  m.add_group(3, {0, 1, 2});
  m.add_client(0);
  return m;
}

TEST(Latency, PaperWanMatrix) {
  const Membership m = wan_membership();
  auto lat = make_paper_wan(&m);
  // Nodes 0,3 in R1; 1,4 in R2; 2,5 in R3.
  EXPECT_EQ(lat->nominal(0, 3), milliseconds_f(0.05));  // intra-region
  EXPECT_EQ(lat->nominal(0, 1), milliseconds(35));      // R1-R2
  EXPECT_EQ(lat->nominal(1, 2), milliseconds(35));      // R2-R3
  EXPECT_EQ(lat->nominal(0, 2), milliseconds(72));      // R1-R3
  EXPECT_EQ(lat->nominal(2, 0), milliseconds(72));      // symmetric
}

/// Minimal ping/pong processes for simulator behaviour tests.
class Recorder : public Process {
 public:
  void on_message(Context& ctx, NodeId from, const Message& msg) override {
    received.push_back({ctx.now(), from});
    if (reply_to != kInvalidNode) ctx.send(reply_to, msg);
  }
  struct Event {
    Time at;
    NodeId from;
  };
  std::vector<Event> received;
  NodeId reply_to = kInvalidNode;
};

class Starter : public Process {
 public:
  explicit Starter(std::function<void(Context&)> fn) : fn_(std::move(fn)) {}
  void on_start(Context& ctx) override { fn_(ctx); }
  void on_message(Context&, NodeId, const Message&) override {}

 private:
  std::function<void(Context&)> fn_;
};

Membership two_nodes() {
  Membership m;
  m.add_group(1, {0});
  m.add_group(1, {0});
  return m;
}

TEST(Simulator, DeliversWithLatency) {
  SimConfig cfg;
  Simulator sim(two_nodes(), std::make_unique<ConstantLatency>(milliseconds(3)), cfg);
  auto rec = std::make_shared<Recorder>();
  sim.add_process(0, std::make_shared<Starter>([](Context& ctx) {
    ctx.send(1, Message{RmAck{0, 1}});
  }));
  sim.add_process(1, rec);
  sim.start();
  sim.run_to_idle();
  ASSERT_EQ(rec->received.size(), 1u);
  EXPECT_EQ(rec->received[0].at, milliseconds(3));
  EXPECT_EQ(rec->received[0].from, 0u);
}

TEST(Simulator, TimersFireAndCancel) {
  SimConfig cfg;
  Simulator sim(two_nodes(), std::make_unique<ConstantLatency>(1), cfg);
  std::vector<int> fired;
  sim.add_process(0, std::make_shared<Starter>([&fired](Context& ctx) {
    ctx.set_timer(milliseconds(5), [&fired] { fired.push_back(1); });
    const TimerId cancelled =
        ctx.set_timer(milliseconds(6), [&fired] { fired.push_back(2); });
    ctx.set_timer(milliseconds(7), [&fired] { fired.push_back(3); });
    ctx.cancel_timer(cancelled);
  }));
  sim.add_process(1, std::make_shared<Recorder>());
  sim.start();
  sim.run_to_idle();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(Simulator, CpuCostSerializesArrivals) {
  SimConfig cfg;
  cfg.cpu = CpuModel{milliseconds(2), 0};
  Simulator sim(two_nodes(), std::make_unique<ConstantLatency>(milliseconds(1)), cfg);
  auto rec = std::make_shared<Recorder>();
  sim.add_process(0, std::make_shared<Starter>([](Context& ctx) {
    for (int i = 0; i < 3; ++i) ctx.send(1, Message{RmAck{0, 1}});
  }));
  sim.add_process(1, rec);
  sim.start();
  sim.run_to_idle();
  ASSERT_EQ(rec->received.size(), 3u);
  // First arrival processed at t≈3ms (send departs at 2ms CPU end + 1ms
  // latency); the second waits for the 2ms handler, the third for two.
  EXPECT_EQ(rec->received[0].at, milliseconds(3));
  EXPECT_EQ(rec->received[1].at, milliseconds(5));
  EXPECT_EQ(rec->received[2].at, milliseconds(7));
}

TEST(Simulator, CrashStopsDelivery) {
  SimConfig cfg;
  Simulator sim(two_nodes(), std::make_unique<ConstantLatency>(milliseconds(5)), cfg);
  auto rec = std::make_shared<Recorder>();
  sim.add_process(0, std::make_shared<Starter>([](Context& ctx) {
    ctx.send(1, Message{RmAck{0, 1}});
  }));
  sim.add_process(1, rec);
  sim.schedule_crash(1, milliseconds(2));
  sim.start();
  sim.run_to_idle();
  EXPECT_TRUE(sim.is_crashed(1));
  EXPECT_TRUE(rec->received.empty());
}

TEST(Simulator, DropProbabilityDropsRoughlyThatFraction) {
  SimConfig cfg;
  cfg.drop_probability = 0.3;
  Simulator sim(two_nodes(), std::make_unique<ConstantLatency>(1), cfg);
  auto rec = std::make_shared<Recorder>();
  sim.add_process(0, std::make_shared<Starter>([](Context& ctx) {
    for (int i = 0; i < 2000; ++i) ctx.send(1, Message{RmAck{0, 1}});
  }));
  sim.add_process(1, rec);
  sim.start();
  sim.run_to_idle();
  EXPECT_NEAR(static_cast<double>(rec->received.size()), 1400.0, 100.0);
  EXPECT_EQ(sim.messages_dropped() + rec->received.size(), 2000u);
}

TEST(Simulator, LinkFilterImplementsPartition) {
  SimConfig cfg;
  Simulator sim(two_nodes(), std::make_unique<ConstantLatency>(1), cfg);
  auto rec = std::make_shared<Recorder>();
  sim.add_process(0, std::make_shared<Starter>([](Context& ctx) {
    ctx.send(1, Message{RmAck{0, 1}});
    ctx.set_timer(milliseconds(10), [&ctx] { ctx.send(1, Message{RmAck{0, 2}}); });
  }));
  sim.add_process(1, rec);
  sim.set_link_filter([](NodeId, NodeId, Time at) { return at >= milliseconds(5); });
  sim.start();
  sim.run_to_idle();
  ASSERT_EQ(rec->received.size(), 1u);  // only the post-heal message
}

TEST(Simulator, SerializeMessagesModeRoundTripsEverySend) {
  SimConfig cfg;
  cfg.serialize_messages = true;
  Simulator sim(two_nodes(), std::make_unique<ConstantLatency>(1), cfg);
  auto rec = std::make_shared<Recorder>();
  sim.add_process(0, std::make_shared<Starter>([](Context& ctx) {
    MulticastMessage m;
    m.id = make_msg_id(0, 1);
    m.sender = 0;
    m.dst = {0, 1};
    m.payload = "hello";
    ctx.send(1, Message{MpSubmit{m}});
  }));
  sim.add_process(1, rec);
  sim.start();
  sim.run_to_idle();
  EXPECT_EQ(rec->received.size(), 1u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    SimConfig cfg;
    cfg.seed = seed;
    cfg.drop_probability = 0.1;
    Simulator sim(two_nodes(),
                  std::make_unique<ConstantLatency>(milliseconds(1), 0.05), cfg);
    auto rec = std::make_shared<Recorder>();
    sim.add_process(0, std::make_shared<Starter>([](Context& ctx) {
      for (std::uint64_t i = 0; i < 500; ++i) ctx.send(1, Message{RmAck{0, i}});
    }));
    sim.add_process(1, rec);
    sim.start();
    sim.run_to_idle();
    Time last = rec->received.empty() ? 0 : rec->received.back().at;
    return std::make_tuple(rec->received.size(), last, sim.messages_dropped());
  };
  const auto a = run(77);
  const auto b = run(77);
  EXPECT_EQ(a, b);
  const auto c = run(78);
  EXPECT_NE(std::get<1>(a), std::get<1>(c));  // different seed, different jitter
}

/// Process that arms a repeating tick and records lifecycle calls, for the
/// crash-recovery semantics tests.
class TickingProcess : public Process {
 public:
  void on_start(Context& ctx) override {
    ++starts;
    arm(ctx);
  }
  void on_recover(Context& ctx) override {
    ++recovers;
    arm(ctx);
  }
  void on_message(Context&, NodeId, const Message&) override {}

  int starts = 0;
  int recovers = 0;
  std::vector<Time> ticks;

 private:
  void arm(Context& ctx) {
    ctx.set_timer(milliseconds(10), [this, &ctx] {
      ticks.push_back(ctx.now());
      arm(ctx);
    });
  }
};

TEST(Simulator, RecoverRunsOnRecoverAndResumesTimers) {
  SimConfig cfg;
  Simulator sim(two_nodes(), std::make_unique<ConstantLatency>(1), cfg);
  auto p = std::make_shared<TickingProcess>();
  sim.add_process(0, p);
  sim.add_process(1, std::make_shared<Recorder>());
  sim.schedule_crash(0, milliseconds(35));
  sim.schedule_recover(0, milliseconds(100));
  sim.start();
  sim.run_until(milliseconds(165));

  EXPECT_EQ(p->starts, 1);
  EXPECT_EQ(p->recovers, 1);
  EXPECT_FALSE(sim.is_crashed(0));
  // Ticks at 10,20,30 — crash kills the armed timer — then the chain
  // resumes relative to the recovery time: 110,120,...,160.
  ASSERT_EQ(p->ticks.size(), 9u);
  EXPECT_EQ(p->ticks[2], milliseconds(30));
  EXPECT_EQ(p->ticks[3], milliseconds(110));
  EXPECT_EQ(p->ticks.back(), milliseconds(160));
}

TEST(Simulator, RecoverIsNoOpOnLiveNodeAndCrashIsIdempotent) {
  SimConfig cfg;
  Simulator sim(two_nodes(), std::make_unique<ConstantLatency>(1), cfg);
  auto p = std::make_shared<TickingProcess>();
  sim.add_process(0, p);
  sim.add_process(1, std::make_shared<Recorder>());
  sim.start();
  sim.recover(0);  // not crashed: must not re-run on_recover
  EXPECT_EQ(p->recovers, 0);
  sim.crash(0);
  sim.crash(0);  // second crash is a no-op
  EXPECT_TRUE(sim.is_crashed(0));
}

TEST(Simulator, ScheduleAtRunsSimulationLevelActions) {
  SimConfig cfg;
  Simulator sim(two_nodes(), std::make_unique<ConstantLatency>(1), cfg);
  sim.add_process(0, std::make_shared<Recorder>());
  sim.add_process(1, std::make_shared<Recorder>());
  std::vector<Time> at;
  sim.schedule_at(milliseconds(7), [&] { at.push_back(sim.now()); });
  sim.schedule_at(milliseconds(3), [&] { at.push_back(sim.now()); });
  sim.start();
  sim.run_to_idle();
  EXPECT_EQ(at, (std::vector<Time>{milliseconds(3), milliseconds(7)}));
}

// --- ChaosSchedule ---------------------------------------------------------

Membership chaos_membership() {
  Membership m;
  m.add_group(3, {0, 0, 0});
  m.add_group(3, {0, 0, 0});
  m.add_client(0);
  return m;
}

ChaosConfig chaos_config() {
  ChaosConfig cfg;
  cfg.start = milliseconds(10);
  cfg.end = milliseconds(500);
  cfg.crashes = 4;
  cfg.min_downtime = milliseconds(20);
  cfg.max_downtime = milliseconds(60);
  cfg.drop_bursts = 2;
  cfg.min_burst = milliseconds(10);
  cfg.max_burst = milliseconds(40);
  cfg.partitions = 2;
  cfg.min_partition = milliseconds(10);
  cfg.max_partition = milliseconds(40);
  return cfg;
}

TEST(ChaosSchedule, IsDeterministicPerSeedAndVariesAcrossSeeds) {
  const Membership m = chaos_membership();
  const auto a = ChaosSchedule::generate(m, chaos_config(), 7);
  const auto b = ChaosSchedule::generate(m, chaos_config(), 7);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
  }
  const auto c = ChaosSchedule::generate(m, chaos_config(), 8);
  EXPECT_NE(a.describe(), c.describe());
}

TEST(ChaosSchedule, RespectsFaultAssumptions) {
  const Membership m = chaos_membership();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto s = ChaosSchedule::generate(m, chaos_config(), seed);
    // Crash windows per group never overlap, every crash recovers inside
    // the campaign window, and clients are never targeted.
    std::map<GroupId, std::vector<std::pair<Time, Time>>> windows;
    std::map<NodeId, Time> open;
    for (const auto& e : s.events()) {
      if (e.kind == ChaosEvent::Kind::kCrash) {
        EXPECT_FALSE(m.is_client(e.node));
        open[e.node] = e.at;
      } else if (e.kind == ChaosEvent::Kind::kRecover) {
        ASSERT_TRUE(open.contains(e.node));
        EXPECT_LE(e.at, chaos_config().end);
        windows[m.group_of(e.node)].push_back({open[e.node], e.at});
        open.erase(e.node);
      } else if (e.kind == ChaosEvent::Kind::kPartitionStart) {
        EXPECT_FALSE(m.is_client(e.node));
      }
    }
    EXPECT_TRUE(open.empty()) << "unrecovered crash, seed " << seed;
    for (auto& [g, w] : windows) {
      std::sort(w.begin(), w.end());
      for (std::size_t i = 1; i < w.size(); ++i) {
        EXPECT_GE(w[i].first, w[i - 1].second)
            << "overlapping crashes in group " << g << ", seed " << seed;
      }
    }
  }
}

TEST(ChaosSchedule, ApplyInjectsCrashAndRecovery) {
  Membership m = chaos_membership();
  SimConfig cfg;
  Simulator sim(m, std::make_unique<ConstantLatency>(1), cfg);
  std::vector<std::shared_ptr<TickingProcess>> procs;
  for (NodeId n = 0; n < m.node_count(); ++n) {
    auto p = std::make_shared<TickingProcess>();
    procs.push_back(p);
    sim.add_process(n, p);
  }
  ChaosConfig ccfg = chaos_config();
  ccfg.drop_bursts = 0;
  ccfg.partitions = 0;
  const auto schedule = ChaosSchedule::generate(m, ccfg, 3);
  ASSERT_FALSE(schedule.events().empty());
  schedule.apply(sim);
  sim.start();
  sim.run_until(milliseconds(600));
  int recovered = 0;
  for (const auto& p : procs) recovered += p->recovers;
  EXPECT_GT(recovered, 0);
  for (NodeId n = 0; n < m.node_count(); ++n) {
    EXPECT_FALSE(sim.is_crashed(n)) << "node " << n;
  }
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  SimConfig cfg;
  Simulator sim(two_nodes(), std::make_unique<ConstantLatency>(1), cfg);
  sim.add_process(0, std::make_shared<Recorder>());
  sim.add_process(1, std::make_shared<Recorder>());
  sim.start();
  sim.run_until(seconds(3));
  EXPECT_EQ(sim.now(), seconds(3));
}

}  // namespace
}  // namespace fastcast::sim
