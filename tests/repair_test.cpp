// State-transfer & replica-repair subsystem tests: wire codec for the
// repair messages, RepairCoordinator behaviour (corrupt-chunk rejection and
// re-fetch, watermark pruning safety), acceptor continuation hints and
// pruning, WAL torn-crash invariants for the settled/install records, and
// the end-to-end lag-recovery property — a replica recovered after missing
// N decided instances catches up via O(gap/chunk) snapshot chunks rather
// than O(N) P2b replays, while pruning keeps acceptor state bounded.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "fastcast/harness/experiment.hpp"
#include "fastcast/paxos/acceptor.hpp"
#include "fastcast/repair/repair.hpp"
#include "fastcast/storage/storage.hpp"

namespace fastcast {
namespace {

using repair::RepairCoordinator;
using repair::RepairEntry;
using repair::decode_repair_entries;
using repair::encode_repair_entries;

// ---------------------------------------------------------------------------
// Wire codec

template <typename T>
Message round_trip(const T& payload) {
  const auto bytes = encode_message(Message{payload});
  Message out;
  EXPECT_TRUE(decode_message(bytes, out));
  return out;
}

TEST(RepairCodec, WatermarkAnnounceRoundTrip) {
  const WatermarkAnnounce in{7, 3, 1000, 1234};
  const Message m = round_trip(in);
  const auto* out = std::get_if<WatermarkAnnounce>(&m.payload);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->group, in.group);
  EXPECT_EQ(out->from, in.from);
  EXPECT_EQ(out->settled, in.settled);
  EXPECT_EQ(out->frontier, in.frontier);
}

TEST(RepairCodec, RepairRequestRoundTrip) {
  const RepairRequest in{2, 555};
  const Message m = round_trip(in);
  const auto* out = std::get_if<RepairRequest>(&m.payload);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->group, in.group);
  EXPECT_EQ(out->from_instance, in.from_instance);
}

TEST(RepairCodec, P2bMoreRoundTrip) {
  const P2bMore in{4, 129};
  const Message m = round_trip(in);
  const auto* out = std::get_if<P2bMore>(&m.payload);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->group, in.group);
  EXPECT_EQ(out->next_instance, in.next_instance);
}

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> out;
  while (*s != '\0') out.push_back(static_cast<std::byte>(*s++));
  return out;
}

TEST(RepairCodec, RepairSnapshotRoundTrip) {
  RepairSnapshot in;
  in.group = 1;
  in.from_instance = 64;
  in.watermark = 96;
  in.last = true;
  encode_repair_entries({{64, bytes_of("a")}, {65, bytes_of("bb")}}, in.payload);
  in.payload_crc = storage::crc32(in.payload);

  const Message m = round_trip(in);
  const auto* out = std::get_if<RepairSnapshot>(&m.payload);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->group, in.group);
  EXPECT_EQ(out->from_instance, in.from_instance);
  EXPECT_EQ(out->watermark, in.watermark);
  EXPECT_EQ(out->last, in.last);
  EXPECT_EQ(out->payload_crc, in.payload_crc);
  EXPECT_EQ(out->payload, in.payload);

  std::vector<RepairEntry> entries;
  ASSERT_TRUE(decode_repair_entries(out->payload, entries));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].instance, 64u);
  EXPECT_EQ(entries[1].value, bytes_of("bb"));
}

TEST(RepairCodec, DecodeRejectsTruncation) {
  RepairSnapshot snap;
  snap.group = 1;
  snap.from_instance = 0;
  snap.watermark = 1;
  snap.last = false;
  encode_repair_entries({{0, bytes_of("xyz")}}, snap.payload);
  snap.payload_crc = storage::crc32(snap.payload);
  const auto bytes = encode_message(Message{snap});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    Message out;
    EXPECT_FALSE(decode_message(std::span(bytes.data(), cut), out))
        << "cut at " << cut;
  }
}

TEST(RepairCodec, EntriesDecodeRejectsGarbage) {
  std::vector<std::byte> payload;
  encode_repair_entries({{3, bytes_of("v")}}, payload);
  std::vector<RepairEntry> entries;
  ASSERT_TRUE(decode_repair_entries(payload, entries));
  payload.push_back(std::byte{0x41});  // trailing garbage
  EXPECT_FALSE(decode_repair_entries(payload, entries));
  EXPECT_FALSE(decode_repair_entries(std::span(payload.data(), 0), entries));
}

// ---------------------------------------------------------------------------
// RepairCoordinator unit tests (fake context: recorded sends, manual timers)

class FakeContext final : public Context {
 public:
  FakeContext() { membership_.add_group(3, {0, 0, 0}); }  // nodes 0,1,2

  NodeId self() const override { return 0; }
  Time now() const override { return now_; }
  void send(NodeId to, const Message& msg) override {
    sent.push_back({to, msg});
  }
  TimerId set_timer(Duration delay, std::function<void()> cb) override {
    timers_.emplace(now_ + delay, std::move(cb));
    return ++next_timer_;
  }
  void cancel_timer(TimerId) override {}
  Rng& rng() override { return rng_; }
  const Membership& membership() const override { return membership_; }

  /// Fires every timer due at or before `t` in order (timers may re-arm).
  void run_until(Time t) {
    while (!timers_.empty() && timers_.begin()->first <= t) {
      auto it = timers_.begin();
      now_ = it->first;
      auto cb = std::move(it->second);
      timers_.erase(it);
      cb();
    }
    now_ = t;
  }

  std::vector<std::pair<NodeId, Message>> sent;

 private:
  Time now_ = 0;
  TimerId next_timer_ = 0;
  std::multimap<Time, std::function<void()>> timers_;
  Rng rng_;
  Membership membership_;
};

struct CoordinatorFixture : ::testing::Test {
  CoordinatorFixture() {
    RepairCoordinator::Config cfg;
    cfg.group = 1;
    cfg.self = 0;
    cfg.members = {0, 1, 2};
    cfg.learners = {0, 1, 2};
    cfg.options.enable = true;
    cfg.options.announce_interval = milliseconds(10);
    cfg.options.lag_threshold = 4;
    cfg.options.chunk_entries = 8;
    options = cfg.options;

    RepairCoordinator::Hooks hooks;
    hooks.settled = [this] { return repair::Settled{settled, clock}; };
    hooks.frontier = [this] { return frontier; };
    hooks.install = [this](Context&, InstanceId inst,
                           const std::vector<std::byte>& value) {
      installed.emplace_back(inst, value);
      frontier = std::max(frontier, inst + 1);
      return true;
    };
    hooks.prune = [this](Context&, InstanceId floor) { pruned_to = floor; };
    hooks.kick_tail = [this](Context&) { ++kicks; };
    coord = std::make_unique<RepairCoordinator>(cfg, std::move(hooks));
  }

  void announce_from(NodeId from, InstanceId settled_mark,
                     InstanceId frontier_mark) {
    coord->handle(ctx, from,
                  Message{WatermarkAnnounce{1, from, settled_mark, frontier_mark}});
  }

  /// Messages of payload type T sent to `to` (drains nothing).
  template <typename T>
  std::vector<T> sent_to(NodeId to) const {
    std::vector<T> out;
    for (const auto& [dst, msg] : ctx.sent) {
      if (dst != to) continue;
      if (const auto* p = std::get_if<T>(&msg.payload)) out.push_back(*p);
    }
    return out;
  }

  RepairSnapshot make_chunk(InstanceId from, std::size_t n, bool last) {
    std::vector<RepairEntry> entries;
    for (std::size_t i = 0; i < n; ++i) {
      entries.push_back({from + i, bytes_of("v")});
    }
    RepairSnapshot snap;
    snap.group = 1;
    snap.from_instance = from;
    snap.watermark = from + n;
    snap.last = last;
    encode_repair_entries(entries, snap.payload);
    snap.payload_crc = storage::crc32(snap.payload);
    return snap;
  }

  FakeContext ctx;
  repair::Options options;
  InstanceId settled = 0;
  std::uint64_t clock = 0;
  InstanceId frontier = 0;
  InstanceId pruned_to = 0;
  int kicks = 0;
  std::vector<std::pair<InstanceId, std::vector<std::byte>>> installed;
  std::unique_ptr<RepairCoordinator> coord;
};

TEST_F(CoordinatorFixture, LagTriggersRequestToFurthestPeer) {
  coord->on_start(ctx);
  announce_from(1, 50, 60);
  announce_from(2, 40, 50);
  const auto reqs = sent_to<RepairRequest>(1);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].from_instance, 0u);
  EXPECT_TRUE(coord->transfer_active());
  EXPECT_TRUE(sent_to<RepairRequest>(2).empty());
}

TEST_F(CoordinatorFixture, SmallGapDoesNotTransfer) {
  coord->on_start(ctx);
  announce_from(1, 2, 3);  // below lag_threshold = 4
  EXPECT_FALSE(coord->transfer_active());
  EXPECT_TRUE(sent_to<RepairRequest>(1).empty());
}

TEST_F(CoordinatorFixture, CorruptChunkIsRejectedAndRefetchedElsewhere) {
  coord->on_start(ctx);
  announce_from(1, 50, 60);
  announce_from(2, 45, 55);
  ASSERT_EQ(sent_to<RepairRequest>(1).size(), 1u);  // furthest peer first

  RepairSnapshot bad = make_chunk(0, 8, false);
  bad.payload_crc ^= 0xdeadbeef;  // corrupt on the wire
  coord->handle(ctx, 1, Message{bad});

  EXPECT_TRUE(installed.empty());  // nothing from the corrupt chunk
  // Re-fetched from the other up-to-date peer, not the failed server.
  ASSERT_EQ(sent_to<RepairRequest>(2).size(), 1u);
  EXPECT_TRUE(coord->transfer_active());

  // The failed server's stale chunks are ignored from now on.
  coord->handle(ctx, 1, Message{make_chunk(0, 8, true)});
  EXPECT_TRUE(installed.empty());

  // The good peer completes the transfer; installs resume delivery order.
  coord->handle(ctx, 2, Message{make_chunk(0, 8, false)});
  coord->handle(ctx, 2, Message{make_chunk(8, 8, true)});
  ASSERT_EQ(installed.size(), 16u);
  EXPECT_EQ(installed.front().first, 0u);
  EXPECT_EQ(installed.back().first, 15u);
  EXPECT_FALSE(coord->transfer_active());
  EXPECT_EQ(kicks, 1);  // tail above the watermark goes to normal catch-up
}

TEST_F(CoordinatorFixture, MisalignedChunkIsIgnoredNotFatal) {
  coord->on_start(ctx);
  announce_from(1, 50, 60);
  ASSERT_TRUE(coord->transfer_active());
  // A well-formed chunk at the wrong offset is stale (duplicate or from an
  // abandoned transfer), not server corruption: ignored, transfer stays up.
  coord->handle(ctx, 1, Message{make_chunk(3, 8, true)});  // expected 0
  EXPECT_TRUE(installed.empty());
  EXPECT_TRUE(coord->transfer_active());
  EXPECT_TRUE(sent_to<RepairRequest>(2).empty());  // no blacklist re-fetch
}

TEST_F(CoordinatorFixture, ServesOneChunkPerRequestUntilFrontier) {
  frontier = 20;
  for (InstanceId i = 0; i < 20; ++i) coord->note_decided(i, bytes_of("d"));
  coord->handle(ctx, 2, Message{RepairRequest{1, 4}});
  auto chunks = sent_to<RepairSnapshot>(2);
  ASSERT_EQ(chunks.size(), 1u);  // stop-and-wait: one chunk per request
  EXPECT_EQ(chunks[0].from_instance, 4u);
  EXPECT_EQ(chunks[0].watermark, 12u);  // chunk_entries = 8
  EXPECT_FALSE(chunks[0].last);
  EXPECT_EQ(chunks[0].payload_crc, storage::crc32(chunks[0].payload));

  // The requester pulls the rest; the final chunk is marked last.
  coord->handle(ctx, 2, Message{RepairRequest{1, 12}});
  chunks = sent_to<RepairSnapshot>(2);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[1].from_instance, 12u);
  EXPECT_EQ(chunks[1].watermark, 20u);
  EXPECT_TRUE(chunks[1].last);
}

TEST_F(CoordinatorFixture, ServerWithHoleServesNothing) {
  frontier = 20;
  for (InstanceId i = 10; i < 20; ++i) coord->note_decided(i, bytes_of("d"));
  coord->handle(ctx, 2, Message{RepairRequest{1, 4}});  // below our log start
  EXPECT_TRUE(sent_to<RepairSnapshot>(2).empty());
}

TEST_F(CoordinatorFixture, PruneWaitsForEveryLearner) {
  settled = 30;
  frontier = 30;
  coord->on_start(ctx);
  ctx.run_until(milliseconds(15));  // fire one announce (marks self)
  announce_from(1, 20, 30);
  // Learner 2 has never announced: its silence must block pruning.
  EXPECT_EQ(coord->prune_floor(), 0u);
  EXPECT_EQ(pruned_to, 0u);

  announce_from(2, 10, 30);
  EXPECT_EQ(coord->prune_floor(), 10u);
  EXPECT_EQ(pruned_to, 10u);
}

TEST_F(CoordinatorFixture, PruneNeverPassesSlowestWatermark) {
  settled = 100;
  frontier = 100;
  for (InstanceId i = 0; i < 100; ++i) coord->note_decided(i, bytes_of("d"));
  coord->on_start(ctx);
  ctx.run_until(milliseconds(15));
  announce_from(1, 80, 100);
  announce_from(2, 25, 100);
  EXPECT_EQ(coord->prune_floor(), 25u);
  // The decided log keeps everything a live peer may still fetch.
  EXPECT_EQ(coord->decided_log_size(), 75u);

  // Peer 2 goes quiet and everyone else races ahead: the floor FREEZES at
  // its last announce — pruning may stall, never overtake a live peer.
  settled = 500;
  frontier = 500;
  announce_from(1, 400, 500);
  ctx.run_until(milliseconds(40));
  EXPECT_EQ(coord->prune_floor(), 25u);
}

TEST_F(CoordinatorFixture, AnnouncedSettledWaitsForWalDurability) {
  storage::NodeStorage::Config scfg;
  scfg.fsync.mode = storage::FsyncPolicy::Mode::kBatch;
  scfg.fsync.batch_records = 1000;  // commit() alone never flushes here
  storage::NodeStorage st(std::make_unique<storage::MemBackend>(), scfg);
  ctx.set_storage(&st);

  settled = 30;
  frontier = 30;
  coord->on_start(ctx);
  ctx.run_until(milliseconds(15));  // first announce tick
  auto anns = sent_to<WatermarkAnnounce>(1);
  ASSERT_FALSE(anns.empty());
  // The kSettled record is logged but not flushed: announcing 30 now would
  // let peers prune to a value a crash here could still lose, wedging this
  // node below the group prune floor on recovery.
  EXPECT_EQ(anns.back().settled, 0u);
  EXPECT_EQ(anns.back().frontier, 30u);
  EXPECT_EQ(coord->durable_settled(), 0u);

  // Peers are fully settled; our own non-durable watermark must gate the
  // prune floor all the same.
  announce_from(1, 30, 30);
  announce_from(2, 30, 30);
  EXPECT_EQ(coord->prune_floor(), 0u);

  st.flush();  // the batch interval timer fires in the real runtime
  EXPECT_EQ(coord->durable_settled(), 30u);
  ctx.run_until(milliseconds(25));  // next tick ships the latched value
  anns = sent_to<WatermarkAnnounce>(1);
  EXPECT_EQ(anns.back().settled, 30u);
  EXPECT_EQ(coord->prune_floor(), 30u);
  EXPECT_EQ(pruned_to, 30u);
}

TEST_F(CoordinatorFixture, AnnouncedSettledImmediateUnderFsyncAlways) {
  storage::NodeStorage::Config scfg;  // default policy: always
  storage::NodeStorage st(std::make_unique<storage::MemBackend>(), scfg);
  ctx.set_storage(&st);

  settled = 12;
  frontier = 12;
  coord->on_start(ctx);
  ctx.run_until(milliseconds(15));
  const auto anns = sent_to<WatermarkAnnounce>(1);
  ASSERT_FALSE(anns.empty());
  // log_settled's commit() flushes before the announce is built, so the
  // durability gate degenerates to the ungated behavior.
  EXPECT_EQ(anns.back().settled, 12u);
  EXPECT_EQ(coord->durable_settled(), 12u);
}

TEST_F(CoordinatorFixture, RecoveryRelogsSettledTheCrashDropped) {
  storage::NodeStorage::Config scfg;
  scfg.fsync.mode = storage::FsyncPolicy::Mode::kBatch;
  scfg.fsync.batch_records = 1000;
  storage::NodeStorage st(std::make_unique<storage::MemBackend>(), scfg);
  ctx.set_storage(&st);

  settled = 30;
  frontier = 30;
  coord->on_start(ctx);
  ctx.run_until(milliseconds(15));  // logs settled=30, never flushed
  st.drop_pending();  // crash analogue: the gated latch closure never runs
  coord->on_recover(ctx);
  EXPECT_EQ(coord->durable_settled(), 0u);

  // The recovered incarnation re-logs the settled record instead of
  // assuming the dead one's unflushed append survived.
  ctx.run_until(milliseconds(40));
  st.flush();
  EXPECT_EQ(coord->durable_settled(), 30u);

  // A WAL-recovered settled frontier is durable by definition and seeds
  // the latch directly.
  coord->restore_durable_settled(50);
  EXPECT_EQ(coord->durable_settled(), 50u);
}

TEST(RepairCoordinatorNonMember, KeepsNoDecidedLogAndServesNothing) {
  RepairCoordinator::Config cfg;
  cfg.group = 1;
  cfg.self = 3;  // pure learner, not an acceptor
  cfg.members = {0, 1, 2};
  cfg.learners = {0, 1, 2, 3};
  cfg.options.enable = true;
  RepairCoordinator::Hooks hooks;
  hooks.settled = [] { return repair::Settled{}; };
  hooks.frontier = [] { return InstanceId{50}; };
  hooks.install = [](Context&, InstanceId, const std::vector<std::byte>&) {
    return true;
  };
  RepairCoordinator coord(cfg, std::move(hooks));

  // Only members serve transfers, so retaining decided values on a pure
  // learner would just duplicate the whole history for nothing.
  for (InstanceId i = 0; i < 50; ++i) coord.note_decided(i, bytes_of("d"));
  EXPECT_EQ(coord.decided_log_size(), 0u);

  FakeContext ctx;
  coord.handle(ctx, 1, Message{RepairRequest{1, 0}});
  EXPECT_TRUE(ctx.sent.empty());
}

TEST_F(CoordinatorFixture, StalledTransferTimesOutTowardAnotherPeer) {
  coord->on_start(ctx);
  announce_from(1, 50, 60);
  announce_from(2, 45, 55);
  ASSERT_TRUE(coord->transfer_active());
  ASSERT_EQ(sent_to<RepairRequest>(1).size(), 1u);
  // No chunk ever arrives; announce ticks past transfer_timeout re-target.
  ctx.run_until(options.transfer_timeout + milliseconds(50));
  EXPECT_GE(sent_to<RepairRequest>(2).size(), 1u);
}

// ---------------------------------------------------------------------------
// Acceptor: P2bMore continuation, install, prune

struct AcceptorFixture : ::testing::Test {
  AcceptorFixture() : acceptor(1, {0, 1, 2}) {}

  FakeContext ctx;
  paxos::Acceptor acceptor;
};

TEST_F(AcceptorFixture, CappedReplayEmitsContinuationHint) {
  for (InstanceId i = 0; i < 300; ++i) {
    acceptor.install(ctx, i, bytes_of("v"));
  }
  acceptor.on_p2b_request(ctx, 2, P2bRequest{1, 0});

  std::uint64_t p2bs = 0;
  InstanceId last_instance = 0;
  std::vector<P2bMore> more;
  for (const auto& [to, msg] : ctx.sent) {
    ASSERT_EQ(to, 2u);
    if (const auto* p = std::get_if<P2b>(&msg.payload)) {
      ++p2bs;
      last_instance = p->instance;
    } else if (const auto* m = std::get_if<P2bMore>(&msg.payload)) {
      more.push_back(*m);
    }
  }
  EXPECT_EQ(p2bs, 128u);  // the documented batch cap
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0].next_instance, last_instance + 1);

  // The final batch has no remainder, so no hint.
  ctx.sent.clear();
  acceptor.on_p2b_request(ctx, 2, P2bRequest{1, 256});
  std::uint64_t tail_p2bs = 0;
  std::uint64_t tail_more = 0;
  for (const auto& [to, msg] : ctx.sent) {
    (void)to;
    tail_p2bs += std::get_if<P2b>(&msg.payload) != nullptr ? 1 : 0;
    tail_more += std::get_if<P2bMore>(&msg.payload) != nullptr ? 1 : 0;
  }
  EXPECT_EQ(tail_p2bs, 44u);  // 256..299
  EXPECT_EQ(tail_more, 0u);
}

TEST_F(AcceptorFixture, PruneDropsEntriesBelowFloorOnly) {
  for (InstanceId i = 0; i < 100; ++i) {
    acceptor.install(ctx, i, bytes_of("v"));
  }
  EXPECT_EQ(acceptor.prune_below(ctx, 40), 40u);
  EXPECT_EQ(acceptor.accepted_count(), 60u);
  EXPECT_EQ(acceptor.accepted().begin()->first, 40u);
  EXPECT_EQ(acceptor.pruned_below(), 40u);

  // Regressing the floor is a no-op; installs below it are refused.
  EXPECT_EQ(acceptor.prune_below(ctx, 10), 0u);
  acceptor.install(ctx, 5, bytes_of("v"));
  EXPECT_EQ(acceptor.accepted().begin()->first, 40u);
}

// ---------------------------------------------------------------------------
// WAL torn-crash invariants

Ballot ballot(std::uint32_t round, NodeId node) { return Ballot{round, node}; }

TEST(RepairDurability, SettledNeverOutrunsDeliveredAcrossTornCrashes) {
  // The settled record is appended AFTER the deliveries it summarizes, so
  // any surviving log prefix that contains it contains them too — checked
  // against the emulated kill -9 (torn tail of unsynced bytes) across
  // seeds and crash points.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng torn(seed);
    storage::NodeStorage::Config cfg;
    cfg.fsync.mode = storage::FsyncPolicy::Mode::kBatch;
    cfg.fsync.batch_records = 7;
    storage::NodeStorage st(std::make_unique<storage::MemBackend>(), cfg);

    const GroupId g = 1;
    const auto value = bytes_of("v");
    const InstanceId total = 30;
    for (InstanceId i = 0; i < total; ++i) {
      st.log_accept(g, i, ballot(1, 0), value);
      st.log_delivered(1000 + i);  // the delivery instance i caused
      st.commit();
      if ((i + 1) % 5 == 0) {
        st.log_settled(g, i + 1, /*clock=*/i + 1);
        st.commit();
      }
    }
    st.on_crash(&torn);

    const storage::DurableState& durable = st.reset_and_recover();
    const auto it = durable.groups.find(g);
    const InstanceId settled = it == durable.groups.end() ? 0 : it->second.settled;
    for (InstanceId i = 0; i < settled; ++i) {
      EXPECT_TRUE(durable.delivered.contains(1000 + i))
          << "seed " << seed << ": settled=" << settled
          << " but delivery of instance " << i << " lost";
    }
    if (it != durable.groups.end() && settled > 0) {
      // The clock bound covers every settled instance.
      EXPECT_GE(it->second.settled_clock, settled);
    }
  }
}

TEST(RepairDurability, CrashMidInstallRecoversPrefixNeverTorn) {
  // A transfer installs entries in instance order with a boundary marker
  // per chunk; a torn crash must leave a contiguous PREFIX of the installed
  // run (pre-install, post-install, or a clean cut between — never a hole).
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng torn(seed ^ 0x5eedULL);
    storage::NodeStorage::Config cfg;
    cfg.fsync.mode = storage::FsyncPolicy::Mode::kBatch;
    cfg.fsync.batch_records = 9;
    storage::NodeStorage st(std::make_unique<storage::MemBackend>(), cfg);

    const GroupId g = 2;
    const InstanceId from = 10;
    const InstanceId through = 42;
    const auto value = bytes_of("installed");
    for (InstanceId i = from; i < through; i += 8) {
      const InstanceId chunk_end = std::min<InstanceId>(i + 8, through);
      for (InstanceId j = i; j < chunk_end; ++j) {
        st.log_accept(g, j, Ballot{}, value);
      }
      st.log_repair_install(g, i, chunk_end);
      st.commit();
    }
    st.on_crash(&torn);

    const storage::DurableState& durable = st.reset_and_recover();
    const auto it = durable.groups.find(g);
    std::set<InstanceId> recovered;
    if (it != durable.groups.end()) {
      for (const auto& [inst, acc] : it->second.accepted) recovered.insert(inst);
    }
    // Contiguity: whatever survived starts at `from` with no holes.
    InstanceId expect = from;
    for (const InstanceId inst : recovered) {
      EXPECT_EQ(inst, expect) << "seed " << seed << ": torn install";
      ++expect;
    }
    EXPECT_LE(expect, through);
  }
}

TEST(RepairDurability, PruneRecordSurvivesRecovery) {
  storage::NodeStorage::Config cfg;
  storage::NodeStorage st(std::make_unique<storage::MemBackend>(), cfg);
  const GroupId g = 1;
  for (InstanceId i = 0; i < 20; ++i) {
    st.log_accept(g, i, ballot(1, 0), bytes_of("v"));
  }
  st.log_prune_accepted(g, 12);
  st.flush();

  const storage::DurableState& durable = st.reset_and_recover();
  const auto it = durable.groups.find(g);
  ASSERT_NE(it, durable.groups.end());
  EXPECT_EQ(it->second.pruned_below, 12u);
  ASSERT_FALSE(it->second.accepted.empty());
  EXPECT_EQ(it->second.accepted.begin()->first, 12u);
  EXPECT_EQ(it->second.accepted.size(), 8u);
}

// ---------------------------------------------------------------------------
// End to end: lag recovery in O(gap/chunk) messages, bounded acceptor state

struct LagOutcome {
  std::uint64_t replay_p2bs = 0;      ///< P2bs to the victim below the gap end
  std::uint64_t snapshot_chunks = 0;  ///< RepairSnapshot chunks to the victim
  InstanceId gap_end = 0;             ///< leader frontier at recovery time
  InstanceId victim_frontier = 0;     ///< victim frontier at run end
  InstanceId victim_pruned_below = 0;
  std::size_t victim_accepted = 0;
  std::uint64_t completions = 0;
};

LagOutcome run_lag_scenario(bool repair_on) {
  harness::ExperimentConfig cfg;
  cfg.topo.env = harness::Environment::kLan;
  cfg.topo.groups = 2;
  cfg.topo.clients = 4;
  cfg.topo.protocol = harness::Protocol::kFastCast;
  cfg.seed = 7;
  cfg.dst_factory = harness::same_dst_for_all(harness::random_subset(2, 2));
  cfg.drop_probability = 0.01;  // arms catch-up polling + repropose
  cfg.run_checker = true;
  cfg.check_level = Checker::Level::kFull;
  if (repair_on) {
    cfg.repair.enable = true;
    cfg.repair.lag_threshold = 8;
    cfg.repair.chunk_entries = 32;
    cfg.repair.announce_interval = milliseconds(20);
  }

  harness::Cluster cluster(cfg);
  auto& sim = cluster.simulator();
  const NodeId victim = cluster.deployment().membership.members(0)[1];
  const NodeId leader = cluster.deployment().membership.members(0)[0];

  const Time crash_at = milliseconds(100);
  const Time recover_at = milliseconds(500);
  LagOutcome out;
  sim.set_send_observer([&](NodeId, NodeId to, const Message& msg) {
    if (to != victim || sim.now() < recover_at) return;
    if (const auto* p2b = std::get_if<P2b>(&msg.payload)) {
      if (p2b->group == 0 && p2b->instance < out.gap_end) ++out.replay_p2bs;
    } else if (std::get_if<RepairSnapshot>(&msg.payload) != nullptr) {
      ++out.snapshot_chunks;
    }
  });
  sim.schedule_crash(victim, crash_at);
  sim.schedule_recover(victim, recover_at);
  auto* leader_engine =
      cluster.replica(leader).protocol().consensus_engine();
  sim.schedule_at(recover_at, [&out, leader_engine] {
    out.gap_end = leader_engine->learner().next_to_deliver();
  });

  cluster.start();
  sim.run_until(milliseconds(1100));
  cluster.stop_clients(sim.now());
  sim.run_for(milliseconds(400));

  auto* victim_engine = cluster.replica(victim).protocol().consensus_engine();
  out.victim_frontier = victim_engine->learner().next_to_deliver();
  out.victim_pruned_below = victim_engine->acceptor().pruned_below();
  out.victim_accepted = victim_engine->acceptor().accepted_count();
  out.completions = cluster.metrics().completions_total();

  // Safety holds with or without repair (non-quiesced: traffic in flight).
  const auto report = cluster.checker().check(false, cfg.check_level);
  std::string violations;
  for (const auto& v : report.violations) violations += v + "\n";
  EXPECT_TRUE(report.ok) << (repair_on ? "repair" : "control") << " run:\n"
                         << violations;
  return out;
}

TEST(LagRecovery, SnapshotTransferBeatsP2bReplayOnTheGap) {
  const LagOutcome control = run_lag_scenario(false);
  const LagOutcome repaired = run_lag_scenario(true);

  // The scenario produced a real gap, and both runs got past it.
  ASSERT_GT(control.gap_end, 16u);
  EXPECT_GE(control.victim_frontier, control.gap_end);
  EXPECT_GE(repaired.victim_frontier, repaired.gap_end);
  EXPECT_GT(control.completions, 0u);
  EXPECT_GT(repaired.completions, 0u);

  // Control relearns the gap as per-instance P2b replays (O(N) messages);
  // repair ships it as O(gap / chunk_entries) snapshot chunks and at most a
  // short tail of P2bs.
  EXPECT_GT(control.replay_p2bs, control.gap_end / 2);
  EXPECT_GT(repaired.snapshot_chunks, 0u);
  EXPECT_LT(repaired.replay_p2bs * 4, control.replay_p2bs)
      << "repair run replayed " << repaired.replay_p2bs << " P2bs vs control "
      << control.replay_p2bs << " (gap " << repaired.gap_end << ")";
}

TEST(LagRecovery, PruningBoundsAcceptorState) {
  const LagOutcome repaired = run_lag_scenario(true);
  // The watermark advanced and the acceptor dropped everything below it:
  // retained state is the (frontier - floor) live window, not the full
  // decided history.
  EXPECT_GT(repaired.victim_pruned_below, 0u);
  EXPECT_LT(repaired.victim_accepted,
            static_cast<std::size_t>(repaired.victim_frontier));
  EXPECT_LE(repaired.victim_accepted,
            static_cast<std::size_t>(repaired.victim_frontier -
                                     repaired.victim_pruned_below) +
                1);
}

}  // namespace
}  // namespace fastcast
