// Wire-format tests: every Message payload must round-trip exactly, and
// decode must reject malformed input without crashing (the TCP transport
// feeds it raw network bytes).

#include <gtest/gtest.h>

#include "fastcast/common/rng.hpp"
#include "fastcast/runtime/message.hpp"

namespace fastcast {
namespace {

template <typename T>
T round_trip(const T& payload) {
  Message in{payload};
  const auto bytes = encode_message(in);
  Message out;
  EXPECT_TRUE(decode_message(bytes, out));
  const T* decoded = std::get_if<T>(&out.payload);
  EXPECT_NE(decoded, nullptr);
  return *decoded;
}

MulticastMessage sample_msg() {
  MulticastMessage m;
  m.id = make_msg_id(7, 42);
  m.sender = 7;
  m.dst = {0, 3, 5};
  m.payload = std::string(64, 'p');
  return m;
}

TEST(MessageCodec, RmDataRoundTrip) {
  RmData d;
  d.origin = 9;
  d.seq = 1234;
  d.dst_groups = {1, 2};
  d.dest_nodes = {3, 4, 5, 6, 7, 8};
  d.dest_seqs = {10, 11, 12, 13, 14, 15};
  d.inner = AmStart{sample_msg()};
  const RmData out = round_trip(d);
  EXPECT_EQ(out.origin, 9u);
  EXPECT_EQ(out.seq, 1234u);
  EXPECT_EQ(out.dst_groups, d.dst_groups);
  EXPECT_EQ(out.dest_nodes, d.dest_nodes);
  EXPECT_EQ(out.dest_seqs, d.dest_seqs);
  EXPECT_EQ(std::get<AmStart>(out.inner).msg, sample_msg());
}

TEST(MessageCodec, RmDataCarriesSendSoftAndHard) {
  for (int which = 0; which < 2; ++which) {
    RmData d;
    d.origin = 1;
    d.seq = 2;
    d.dst_groups = {0, 1};
    if (which == 0) {
      d.inner = AmSendSoft{3, 99, make_msg_id(1, 2), {0, 1}};
    } else {
      d.inner = AmSendHard{3, 99, make_msg_id(1, 2), {0, 1}};
    }
    const RmData out = round_trip(d);
    if (which == 0) {
      const auto& s = std::get<AmSendSoft>(out.inner);
      EXPECT_EQ(s.from_group, 3u);
      EXPECT_EQ(s.ts, 99u);
    } else {
      const auto& s = std::get<AmSendHard>(out.inner);
      EXPECT_EQ(s.from_group, 3u);
      EXPECT_EQ(s.ts, 99u);
    }
  }
}

TEST(MessageCodec, RmAckRoundTrip) {
  const RmAck out = round_trip(RmAck{5, 77});
  EXPECT_EQ(out.origin, 5u);
  EXPECT_EQ(out.seq, 77u);
}

TEST(MessageCodec, PaxosPhase1RoundTrip) {
  P1a p1a{2, Ballot{3, 1}, 17};
  const P1a a = round_trip(p1a);
  EXPECT_EQ(a.group, 2u);
  EXPECT_EQ(a.ballot, (Ballot{3, 1}));
  EXPECT_EQ(a.from_instance, 17u);

  P1b p1b;
  p1b.group = 2;
  p1b.ballot = Ballot{3, 1};
  p1b.from_instance = 17;
  p1b.accepted.push_back({18, Ballot{2, 0}, encode_tuples({})});
  p1b.accepted.push_back({20, Ballot{1, 2}, {std::byte{1}, std::byte{2}}});
  const P1b b = round_trip(p1b);
  ASSERT_EQ(b.accepted.size(), 2u);
  EXPECT_EQ(b.accepted[0].instance, 18u);
  EXPECT_EQ(b.accepted[1].vballot, (Ballot{1, 2}));
  EXPECT_EQ(b.accepted[1].value.size(), 2u);
}

TEST(MessageCodec, PaxosPhase2RoundTrip) {
  const std::vector<std::byte> value = encode_tuples(
      {Tuple{TupleKind::kSyncHard, 1, 9, make_msg_id(4, 4), {0, 1}}});
  const P2a a = round_trip(P2a{1, Ballot{1, 0}, 5, value});
  EXPECT_EQ(a.instance, 5u);
  EXPECT_EQ(a.value, value);
  const P2b b = round_trip(P2b{1, Ballot{1, 0}, 5, 2, value});
  EXPECT_EQ(b.acceptor, 2u);
  EXPECT_EQ(b.value, value);
  const PaxosNack n = round_trip(PaxosNack{1, Ballot{9, 2}, 5});
  EXPECT_EQ(n.promised, (Ballot{9, 2}));
}

TEST(MessageCodec, ClientMessagesRoundTrip) {
  const MpSubmit s = round_trip(MpSubmit{sample_msg()});
  EXPECT_EQ(s.msg, sample_msg());
  const AmAck a = round_trip(AmAck{make_msg_id(7, 42), 3, 11});
  EXPECT_EQ(a.mid, make_msg_id(7, 42));
  EXPECT_EQ(a.from_group, 3u);
  EXPECT_EQ(a.deliverer, 11u);
  const FdHeartbeat h = round_trip(FdHeartbeat{4, 12, 99});
  EXPECT_EQ(h.epoch, 99u);
}

TEST(MessageCodec, TupleRoundTrip) {
  const std::vector<Tuple> tuples = {
      {TupleKind::kSetHard, 0, 0, make_msg_id(1, 1), {0, 1, 2}},
      {TupleKind::kSyncSoft, 1, 5, make_msg_id(2, 2), {1}},
      {TupleKind::kSyncHard, 2, 7, make_msg_id(3, 3), {0, 2}},
  };
  const auto bytes = encode_tuples(tuples);
  std::vector<Tuple> out;
  ASSERT_TRUE(decode_tuples(bytes, out));
  EXPECT_EQ(out, tuples);
}

TEST(MessageCodec, MsgBatchRoundTrip) {
  std::vector<MulticastMessage> batch = {sample_msg(), sample_msg()};
  batch[1].id = make_msg_id(8, 1);
  const auto bytes = encode_msg_batch(batch);
  std::vector<MulticastMessage> out;
  ASSERT_TRUE(decode_msg_batch(bytes, out));
  EXPECT_EQ(out, batch);
}

TEST(MessageCodec, IdOrderingMessagesRoundTrip) {
  const MpBody b = round_trip(MpBody{sample_msg()});
  EXPECT_EQ(b.msg, sample_msg());
  const MpBodyRequest q = round_trip(MpBodyRequest{make_msg_id(7, 42)});
  EXPECT_EQ(q.mid, make_msg_id(7, 42));
}

TEST(MessageCodec, IdBatchRoundTrip) {
  std::vector<MpIdRecord> batch = {
      {make_msg_id(1, 1), 1, {0, 1, 2}},
      {make_msg_id(2, 9), 2, {3}},
      {make_msg_id(3, 77), 5, {}},
  };
  const auto bytes = encode_id_batch(batch);
  std::vector<MpIdRecord> out;
  ASSERT_TRUE(decode_id_batch(bytes, out));
  EXPECT_EQ(out, batch);
}

TEST(MessageCodec, IdBatchRejectsTruncation) {
  const auto bytes = encode_id_batch({{make_msg_id(4, 4), 3, {0, 1}}});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::byte> cut(bytes.begin(),
                               bytes.begin() + static_cast<std::ptrdiff_t>(len));
    std::vector<MpIdRecord> out;
    EXPECT_FALSE(decode_id_batch(cut, out)) << "prefix " << len;
  }
}

TEST(MessageCodec, ApproxWireBytesTracksDominantFields) {
  // The estimate only needs to rank frames: a payload-carrying frame must
  // dwarf a control frame, and grow with its payload.
  MulticastMessage small = sample_msg();
  MulticastMessage big = sample_msg();
  big.payload = std::string(4096, 'q');
  const auto small_body = approx_wire_bytes(Message{MpBody{small}});
  const auto big_body = approx_wire_bytes(Message{MpBody{big}});
  const auto ack = approx_wire_bytes(Message{AmAck{small.id, 0, 1}});
  EXPECT_GT(small_body, ack);
  EXPECT_GE(big_body, small_body + 4000);
  // P2a/P2b cost tracks the proposed value, the heart of the
  // payload-vs-id ordering contrast.
  const auto fat = approx_wire_bytes(
      Message{P2a{0, {}, 1, std::vector<std::byte>(1000)}});
  const auto thin = approx_wire_bytes(Message{P2a{0, {}, 1, {}}});
  EXPECT_GE(fat, thin + 1000);
}

TEST(MessageCodec, DecodeRejectsTruncation) {
  const auto bytes = encode_message(Message{MpSubmit{sample_msg()}});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Message out;
    EXPECT_FALSE(decode_message(std::span(bytes.data(), cut), out))
        << "prefix of length " << cut << " decoded successfully";
  }
}

TEST(MessageCodec, DecodeRejectsTrailingGarbage) {
  auto bytes = encode_message(Message{RmAck{1, 2}});
  bytes.push_back(std::byte{0});
  Message out;
  EXPECT_FALSE(decode_message(bytes, out));
}

TEST(MessageCodec, DecodeRejectsUnknownTag) {
  std::vector<std::byte> bytes = {std::byte{200}};
  Message out;
  EXPECT_FALSE(decode_message(bytes, out));
}

TEST(MessageCodec, FuzzDecodeNeverCrashes) {
  Rng rng(0xfaceb00c);
  for (int i = 0; i < 5000; ++i) {
    const std::size_t len = rng.uniform(200);
    std::vector<std::byte> junk(len);
    for (auto& b : junk) b = static_cast<std::byte>(rng.uniform(256));
    Message out;
    (void)decode_message(junk, out);  // must not crash or hang
  }
  SUCCEED();
}

TEST(MessageCodec, FuzzMutatedValidMessages) {
  Rng rng(0x5eed1);
  RmData d;
  d.origin = 1;
  d.seq = 2;
  d.dst_groups = {0, 1};
  d.dest_nodes = {0, 1, 2};
  d.dest_seqs = {1, 1, 1};
  d.inner = AmStart{sample_msg()};
  const auto base = encode_message(Message{d});
  for (int i = 0; i < 5000; ++i) {
    auto bytes = base;
    const std::size_t pos = rng.uniform(bytes.size());
    bytes[pos] = static_cast<std::byte>(rng.uniform(256));
    Message out;
    (void)decode_message(bytes, out);  // either decodes or fails cleanly
  }
  SUCCEED();
}

TEST(MessageCodec, MessageKindNames) {
  EXPECT_STREQ(message_kind(Message{RmAck{}}), "RmAck");
  EXPECT_STREQ(message_kind(Message{P2b{}}), "P2b");
  EXPECT_STREQ(message_kind(Message{MpSubmit{}}), "MpSubmit");
}

TEST(MessageCodec, TsKeyOrdering) {
  EXPECT_LT((TsKey{1, 5}), (TsKey{2, 1}));
  EXPECT_LT((TsKey{2, 1}), (TsKey{2, 2}));
  EXPECT_EQ((TsKey{3, 3}), (TsKey{3, 3}));
}

TEST(MessageCodec, MsgIdPacking) {
  const MsgId id = make_msg_id(0xabcd, 0x1234);
  EXPECT_EQ(msg_id_sender(id), 0xabcdu);
  EXPECT_EQ(msg_id_seq(id), 0x1234u);
}

// --- Overload control: Busy frames and deadline/sent_at stamps -------------

TEST(MessageCodec, BusyRoundTrip) {
  for (const auto reason : {Busy::Reason::kOverload, Busy::Reason::kExpired}) {
    for (const bool advisory : {false, true}) {
      Busy b;
      b.mid = make_msg_id(3, 77);
      b.reason = reason;
      b.advisory = advisory;
      b.retry_after = milliseconds(7);
      EXPECT_EQ(round_trip(b), b);
    }
  }
}

TEST(MessageCodec, BusyGoldenBytes) {
  Busy b;
  b.mid = 0x0102030405060708;
  b.reason = Busy::Reason::kExpired;
  b.advisory = true;
  b.retry_after = 300;
  const std::vector<std::byte> expect = {
      std::byte{18},                                       // WireTag::kBusy
      std::byte{0x08}, std::byte{0x07}, std::byte{0x06},   // mid, u64 LE
      std::byte{0x05}, std::byte{0x04}, std::byte{0x03},
      std::byte{0x02}, std::byte{0x01},
      std::byte{1},                                        // kExpired
      std::byte{1},                                        // advisory
      std::byte{0xAC}, std::byte{0x02},                    // varint 300
  };
  EXPECT_EQ(encode_message(Message{b}), expect);
}

TEST(MessageCodec, BusyRejectsTruncation) {
  Busy b;
  b.mid = make_msg_id(1, 9);
  b.retry_after = 300;  // 2-byte varint, so the last cut lands mid-varint
  const auto bytes = encode_message(Message{b});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Message out;
    EXPECT_FALSE(decode_message(std::span(bytes.data(), cut), out))
        << "prefix of length " << cut << " decoded successfully";
  }
}

TEST(MessageCodec, BusyRejectsInvalidEnums) {
  Busy b;
  b.mid = make_msg_id(1, 9);
  auto bytes = encode_message(Message{b});
  // Layout: tag (1) + mid (8) + reason (1) + advisory (1) + retry_after.
  auto patched = bytes;
  patched[9] = std::byte{2};  // beyond kExpired
  Message out;
  EXPECT_FALSE(decode_message(patched, out));
  patched = bytes;
  patched[10] = std::byte{2};  // advisory must be 0 or 1
  EXPECT_FALSE(decode_message(patched, out));
}

MulticastMessage stamped_msg() {
  MulticastMessage m = sample_msg();
  m.deadline = 50'000'000;   // 50 ms, absolute
  m.sent_at = 49'900'000;
  return m;
}

TEST(MessageCodec, StampedMessagesRoundTrip) {
  // All three client-facing carriers, with both stamps, and with each stamp
  // alone (the pair is emitted whenever either is set).
  for (const auto& msg :
       {stamped_msg(),
        [] { auto m = stamped_msg(); m.sent_at = 0; return m; }(),
        [] { auto m = stamped_msg(); m.deadline = 0; return m; }()}) {
    EXPECT_EQ(round_trip(MpSubmit{msg}).msg, msg);
    EXPECT_EQ(round_trip(MpBody{msg}).msg, msg);
    RmData d;
    d.origin = 9;
    d.seq = 4;
    d.dst_groups = {0, 1};
    d.inner = AmStart{msg};
    EXPECT_EQ(std::get<AmStart>(round_trip(d).inner).msg, msg);
  }
}

TEST(MessageCodec, StampPairIsTrailingSuffix) {
  // The stamps ride as two trailing varints appended to the pre-stamp
  // encoding, which is what keeps old decoders' view of the frame intact
  // and the batch codecs byte-stable.
  const MulticastMessage stamped = stamped_msg();
  MulticastMessage plain = stamped;
  plain.deadline = 0;
  plain.sent_at = 0;
  auto expect = encode_message(Message{MpSubmit{plain}});
  Writer w{std::move(expect)};
  w.varint(static_cast<std::uint64_t>(stamped.deadline));
  w.varint(static_cast<std::uint64_t>(stamped.sent_at));
  EXPECT_EQ(encode_message(Message{MpSubmit{stamped}}), w.take());
}

TEST(MessageCodec, StampedFrameTruncationAndBackwardCompat) {
  // Truncating a stamped frame at the pre-stamp boundary yields exactly a
  // legacy frame: it must decode, with zeroed stamps. One varint further is
  // a deadline-only frame (sent_at optional). Every other cut must fail.
  const MulticastMessage stamped = stamped_msg();
  MulticastMessage plain = stamped;
  plain.deadline = 0;
  plain.sent_at = 0;
  const auto bytes = encode_message(Message{MpSubmit{stamped}});
  const std::size_t plain_len = encode_message(Message{MpSubmit{plain}}).size();
  Writer w;
  w.varint(static_cast<std::uint64_t>(stamped.deadline));
  const std::size_t deadline_len = w.take().size();

  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    Message out;
    const bool ok = decode_message(std::span(bytes.data(), cut), out);
    if (cut == plain_len || cut == plain_len + deadline_len ||
        cut == bytes.size()) {
      ASSERT_TRUE(ok) << "cut " << cut;
      const auto& m = std::get<MpSubmit>(out.payload).msg;
      EXPECT_EQ(m.id, stamped.id);
      EXPECT_EQ(m.deadline, cut > plain_len ? stamped.deadline : 0);
      EXPECT_EQ(m.sent_at, cut == bytes.size() ? stamped.sent_at : 0);
    } else {
      EXPECT_FALSE(ok) << "cut " << cut;
    }
  }
}

}  // namespace
}  // namespace fastcast
