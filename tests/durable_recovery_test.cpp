// Disk-backed crash recovery, end to end: chaos campaigns where every
// crash is a real process death (fresh protocol objects rebuilt from
// snapshot + WAL replay, unsynced bytes torn away), checked against the
// atomic-multicast safety properties AND the storage no-regression
// contract (nothing an acceptor externalized may be forgotten). Plus the
// TcpCluster variant: kill a node's thread, rebuild it from its on-disk
// WAL directory, and watch it rejoin.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "fastcast/harness/chaos.hpp"
#include "fastcast/net/tcp_cluster.hpp"

namespace fastcast::harness {
namespace {

ChaosRunConfig durable_campaign_config(Protocol proto, std::uint64_t seed,
                                       storage::FsyncPolicy fsync) {
  ChaosRunConfig cfg;
  cfg.seed = seed;
  cfg.experiment.topo.env = Environment::kLan;
  cfg.experiment.topo.groups = 2;
  cfg.experiment.topo.clients = 4;
  cfg.experiment.topo.protocol = proto;
  cfg.experiment.warmup = milliseconds(20);
  cfg.experiment.measure = milliseconds(400);
  cfg.experiment.slice = milliseconds(20);
  cfg.experiment.check_level = Checker::Level::kFull;
  cfg.experiment.dst_factory = same_dst_for_all(random_subset(2, 2));
  cfg.experiment.drop_probability = 0.01;
  cfg.experiment.heartbeats = true;

  cfg.experiment.durability.durable = true;
  cfg.experiment.durability.fsync = fsync;
  cfg.experiment.durability.snapshot_every = 512;

  cfg.faults.crashes = 2;
  cfg.faults.leader_bias = 0.5;
  cfg.faults.min_downtime = milliseconds(40);
  cfg.faults.max_downtime = milliseconds(80);
  cfg.faults.drop_bursts = 1;
  cfg.faults.burst_drop_probability = 0.05;
  cfg.faults.min_burst = milliseconds(20);
  cfg.faults.max_burst = milliseconds(50);
  cfg.faults.partitions = 1;
  cfg.faults.min_partition = milliseconds(20);
  cfg.faults.max_partition = milliseconds(60);
  return cfg;
}

class DurableChaosCampaign : public ::testing::TestWithParam<Protocol> {};

TEST_P(DurableChaosCampaign, SafetyAndNoRegressionAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto cfg = durable_campaign_config(GetParam(), seed,
                                             storage::FsyncPolicy{});
    const ChaosRunResult result = run_chaos(cfg);
    ASSERT_TRUE(result.report.ok)
        << to_string(GetParam()) << " seed " << seed << "\n"
        << result.to_string() << "\nschedule:\n"
        << result.schedule.describe();
    EXPECT_GT(result.completions, 0u)
        << to_string(GetParam()) << " seed " << seed << " made no progress";
    // Every scheduled crash was a real process death and recovered.
    EXPECT_EQ(result.recoveries, result.crashes);
    // The wire-level acceptor floors were actually checked against the
    // re-read durable state (the campaign's whole point).
    EXPECT_GT(result.durability_checks, 0u)
        << to_string(GetParam()) << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, DurableChaosCampaign,
    ::testing::Values(Protocol::kBaseCast, Protocol::kFastCast,
                      Protocol::kMultiPaxos),
    [](const ::testing::TestParamInfo<Protocol>& info) -> std::string {
      switch (info.param) {
        case Protocol::kBaseCast: return "BaseCast";
        case Protocol::kFastCast: return "FastCast";
        case Protocol::kMultiPaxos: return "MultiPaxos";
        default: return "Other";
      }
    });

TEST(DurableChaos, BatchPolicySurvivesCrashes) {
  storage::FsyncPolicy batch;
  batch.mode = storage::FsyncPolicy::Mode::kBatch;
  batch.batch_records = 8;
  batch.batch_interval = milliseconds(2);
  for (std::uint64_t seed : {3u, 7u, 11u}) {
    const auto cfg =
        durable_campaign_config(Protocol::kFastCast, seed, batch);
    const ChaosRunResult result = run_chaos(cfg);
    ASSERT_TRUE(result.report.ok)
        << "seed " << seed << "\n"
        << result.to_string() << "\nschedule:\n"
        << result.schedule.describe();
    EXPECT_GT(result.completions, 0u);
    EXPECT_GT(result.durability_checks, 0u);
  }
}

TEST(DurableChaos, RunsAreDeterministic) {
  const auto cfg = durable_campaign_config(Protocol::kFastCast, 5,
                                           storage::FsyncPolicy{});
  const ChaosRunResult a = run_chaos(cfg);
  const ChaosRunResult b = run_chaos(cfg);
  EXPECT_EQ(a.report.ok, b.report.ok);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.replayed_records, b.replayed_records);
  EXPECT_EQ(a.storage_snapshots, b.storage_snapshots);
  EXPECT_EQ(a.durability_checks, b.durability_checks);
}

TEST(DurableChaos, SnapshotsTruncateTheLogMidCampaign) {
  // Aggressive snapshot cadence: the run must take snapshots and still
  // satisfy safety + no-regression (recovery = snapshot + short suffix).
  auto cfg = durable_campaign_config(Protocol::kFastCast, 9,
                                     storage::FsyncPolicy{});
  cfg.experiment.durability.snapshot_every = 64;
  const ChaosRunResult result = run_chaos(cfg);
  ASSERT_TRUE(result.report.ok) << result.to_string();
  EXPECT_GT(result.storage_snapshots, 0u);
  EXPECT_GT(result.durability_checks, 0u);
}

}  // namespace
}  // namespace fastcast::harness

namespace fastcast::net {
namespace {

/// Kill a TCP node's thread mid-traffic, then restart it as a genuinely
/// fresh process image: new protocol objects seeded only from the node's
/// on-disk WAL directory. The cluster must lose no client message and the
/// restarted node must demonstrably have read its state back from disk.
TEST(TcpClusterDurable, RestartsFromDiskAndRejoins) {
  char tmpl[] = "./fc_durable_XXXXXX";
  char* wal_dir = ::mkdtemp(tmpl);
  ASSERT_NE(wal_dir, nullptr);

  Membership membership;
  membership.add_group(3, {0, 0, 0});
  membership.add_group(3, {0, 0, 0});
  const NodeId client_node = membership.add_client(0);
  const NodeId victim = 4;  // follower of group 1

  storage::StorageManager::Config sc;
  sc.wal_dir = wal_dir;
  storage::StorageManager storage(std::move(sc));

  TcpCluster::Config cfg;
  cfg.membership = membership;
  cfg.base_port = static_cast<std::uint16_t>(28000 + (::getpid() % 2000));
  cfg.storage = &storage;
  TcpCluster cluster(std::move(cfg));

  std::mutex mu;
  Checker checker(&membership);
  std::atomic<int> completions{0};

  const auto make_protocol = [&membership](NodeId n) {
    const GroupId g = membership.group_of(n);
    TimestampProtocolBase::Config pc;
    pc.group = g;
    pc.consensus.group = g;
    pc.consensus.members = membership.members(g);
    pc.consensus.reliable_links = false;
    pc.rmcast.reliable_links = false;
    pc.enable_repropose = true;
    return std::make_shared<FastCast>(pc, n);
  };
  // Restart re-externalizes in-doubt deliveries at-least-once; the
  // application dedups by id (shared across the victim's two lives).
  std::map<NodeId, std::set<MsgId>> seen;
  const auto make_node = [&mu, &checker,
                          &seen](std::shared_ptr<AtomicMulticast> p) {
    auto node = std::make_shared<ReplicaNode>(std::move(p));
    node->add_observer(
        [&mu, &checker, &seen](Context& ctx, const MulticastMessage& m) {
          std::lock_guard<std::mutex> lock(mu);
          if (!seen[ctx.self()].insert(m.id).second) return;
          checker.note_delivery(ctx.self(), m.id);
        });
    return node;
  };

  for (NodeId n : membership.all_replicas()) {
    cluster.add_process(n, make_node(make_protocol(n)));
  }

  class PacedClient : public Process {
   public:
    PacedClient(std::mutex* mu, Checker* checker, std::atomic<int>* completions)
        : mu_(mu), checker_(checker), completions_(completions) {}
    void on_start(Context& ctx) override {
      stub_.on_start(ctx);
      send_next(ctx);
    }
    void on_message(Context& ctx, NodeId from, const Message& msg) override {
      if (const auto* ack = std::get_if<AmAck>(&msg.payload)) {
        if (ack->mid == outstanding_) {
          completions_->fetch_add(1);
          outstanding_ = 0;
          if (next_seq_ < 30) {
            ctx.set_timer(milliseconds(5), [this, &ctx] { send_next(ctx); });
          }
        }
        return;
      }
      stub_.handle(ctx, from, msg);
    }

   private:
    void send_next(Context& ctx) {
      MulticastMessage m;
      m.id = make_msg_id(ctx.self(), next_seq_++);
      m.sender = ctx.self();
      m.dst = {0, 1};
      m.payload = "post";
      outstanding_ = m.id;
      {
        std::lock_guard<std::mutex> lock(*mu_);
        checker_->note_multicast(m);
      }
      stub_.amulticast(ctx, m);
    }
    GenuineClientStub stub_;
    std::mutex* mu_;
    Checker* checker_;
    std::atomic<int>* completions_;
    std::uint32_t next_seq_ = 0;
    MsgId outstanding_ = 0;
  };
  cluster.add_process(
      client_node, std::make_shared<PacedClient>(&mu, &checker, &completions));

  cluster.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool killed = false;
  bool restarted = false;
  while (completions.load() < 30 && std::chrono::steady_clock::now() < deadline) {
    if (!killed && completions.load() >= 8) {
      cluster.stop_node(victim);
      killed = true;
    }
    if (killed && !restarted && completions.load() >= 18) {
      // Real process death: the retained objects are discarded; the fresh
      // stack is seeded exclusively from the WAL directory on disk.
      storage::NodeStorage* st = storage.node(victim);
      const storage::DurableState& durable = st->reset_and_recover();
      EXPECT_FALSE(durable.delivered.empty())
          << "the victim delivered messages before the kill; its WAL must "
             "remember them";
      auto protocol = make_protocol(victim);
      protocol->restore_durable(durable);
      cluster.restart_node(victim, make_node(std::move(protocol)));
      restarted = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  cluster.stop();

  EXPECT_TRUE(killed);
  EXPECT_TRUE(restarted);
  EXPECT_EQ(completions.load(), 30);
  {
    std::lock_guard<std::mutex> lock(mu);
    const auto report = checker.check(/*quiesced=*/false, Checker::Level::kFull);
    EXPECT_TRUE(report.ok)
        << (report.violations.empty() ? "" : report.violations[0]);
  }

  const std::string cleanup = std::string("rm -rf '") + wal_dir + "'";
  [[maybe_unused]] const int rc = ::system(cleanup.c_str());
}

}  // namespace
}  // namespace fastcast::net
