// TCP transport tests: framing, loopback transport, and a real-socket
// cluster running the exact FastCast protocol objects the simulator runs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "fastcast/amcast/client_stub.hpp"
#include "fastcast/amcast/fastcast.hpp"
#include "fastcast/amcast/node.hpp"
#include "fastcast/checker/checker.hpp"
#include "fastcast/net/tcp_cluster.hpp"

namespace fastcast::net {
namespace {

TEST(FrameParser, RoundTripsSingleFrame) {
  const Message msg{AmAck{make_msg_id(1, 2), 3, 4}};
  const auto frame = frame_message(msg);
  FrameParser parser;
  parser.feed(frame.data(), frame.size());
  const auto out = parser.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<AmAck>(out->payload).mid, make_msg_id(1, 2));
  EXPECT_FALSE(parser.next().has_value());
}

TEST(FrameParser, HandlesBytewiseDelivery) {
  const Message msg{RmAck{7, 8}};
  const auto frame = frame_message(msg);
  FrameParser parser;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_FALSE(parser.next().has_value());
    parser.feed(&frame[i], 1);
  }
  ASSERT_TRUE(parser.next().has_value());
}

TEST(FrameParser, HandlesCoalescedFrames) {
  std::vector<std::byte> stream;
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto f = frame_message(Message{RmAck{1, i}});
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameParser parser;
  parser.feed(stream.data(), stream.size());
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto out = parser.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(std::get<RmAck>(out->payload).seq, i);
  }
  EXPECT_FALSE(parser.next().has_value());
}

TEST(FrameParser, FlagsOversizedFrame) {
  std::vector<std::byte> bad(4);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(bad.data(), &huge, 4);
  FrameParser parser;
  parser.feed(bad.data(), bad.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupted());
}

TEST(FrameParser, FlagsUndecodableBody) {
  std::vector<std::byte> frame(4 + 3);
  const std::uint32_t len = 3;
  std::memcpy(frame.data(), &len, 4);
  frame[4] = std::byte{255};  // unknown tag
  FrameParser parser;
  parser.feed(frame.data(), frame.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupted());
}

/// End-to-end: two groups of three over real sockets, FastCast, one client
/// sending global messages; checker verifies the resulting history.
TEST(TcpCluster, RunsFastCastOverRealSockets) {
  Membership membership;
  membership.add_group(3, {0, 0, 0});
  membership.add_group(3, {0, 0, 0});
  const NodeId client_node = membership.add_client(0);

  TcpCluster::Config cfg;
  cfg.membership = membership;
  cfg.base_port = static_cast<std::uint16_t>(21000 + (::getpid() % 2000));
  TcpCluster cluster(std::move(cfg));

  std::mutex mu;
  Checker checker(&membership);
  std::atomic<int> completions{0};

  // Replicas: plain FastCast over the group's consensus.
  for (NodeId n : membership.all_replicas()) {
    const GroupId g = membership.group_of(n);
    TimestampProtocolBase::Config pc;
    pc.group = g;
    pc.consensus.group = g;
    pc.consensus.members = membership.members(g);
    auto node = std::make_shared<ReplicaNode>(std::make_shared<FastCast>(pc, n));
    node->add_observer([&mu, &checker](Context& ctx, const MulticastMessage& m) {
      std::lock_guard<std::mutex> lock(mu);
      checker.note_delivery(ctx.self(), m.id);
    });
    cluster.add_process(n, node);
  }

  // Closed-loop client: 20 global messages, completing on the first ack.
  class TestClient : public Process {
   public:
    TestClient(std::mutex* mu, Checker* checker, std::atomic<int>* completions)
        : mu_(mu), checker_(checker), completions_(completions) {}
    void on_start(Context& ctx) override {
      stub_.on_start(ctx);
      send_next(ctx);
    }
    void on_message(Context& ctx, NodeId from, const Message& msg) override {
      if (const auto* ack = std::get_if<AmAck>(&msg.payload)) {
        if (ack->mid == outstanding_) {
          completions_->fetch_add(1);
          outstanding_ = 0;
          if (next_seq_ < 20) send_next(ctx);
        }
        return;
      }
      stub_.handle(ctx, from, msg);
    }

   private:
    void send_next(Context& ctx) {
      MulticastMessage m;
      m.id = make_msg_id(ctx.self(), next_seq_++);
      m.sender = ctx.self();
      m.dst = {0, 1};
      m.payload = "post";
      outstanding_ = m.id;
      {
        std::lock_guard<std::mutex> lock(*mu_);
        checker_->note_multicast(m);
      }
      stub_.amulticast(ctx, m);
    }
    GenuineClientStub stub_;
    std::mutex* mu_;
    Checker* checker_;
    std::atomic<int>* completions_;
    std::uint32_t next_seq_ = 0;
    MsgId outstanding_ = 0;
  };
  cluster.add_process(client_node,
                      std::make_shared<TestClient>(&mu, &checker, &completions));

  cluster.start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (completions.load() < 20 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Give stragglers (other replicas' deliveries) a moment, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  cluster.stop();

  EXPECT_EQ(completions.load(), 20);
  std::lock_guard<std::mutex> lock(mu);
  const auto report = checker.check(/*quiesced=*/true, Checker::Level::kFull);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? ""
                                                       : report.violations[0]);
  EXPECT_EQ(report.delivery_count, 20u * 6u);
}

}  // namespace
}  // namespace fastcast::net
