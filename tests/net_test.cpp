// TCP transport tests: framing, loopback transport, and a real-socket
// cluster running the exact FastCast protocol objects the simulator runs.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "fastcast/net/transport_backend.hpp"

#include "fastcast/amcast/client_stub.hpp"
#include "fastcast/amcast/fastcast.hpp"
#include "fastcast/amcast/node.hpp"
#include "fastcast/checker/checker.hpp"
#include "fastcast/net/sharded_transport.hpp"
#include "fastcast/net/spsc_ring.hpp"
#include "fastcast/net/tcp_cluster.hpp"
#include "fastcast/net/timer_heap.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast::net {
namespace {

TEST(TimerHeap, FiresInDeadlineOrderAndSkipsCancelled) {
  TimerHeap heap;
  std::vector<int> fired;
  heap.schedule(30, [&] { fired.push_back(3); });
  const TimerId cancelled = heap.schedule(10, [&] { fired.push_back(1); });
  heap.schedule(20, [&] { fired.push_back(2); });
  heap.cancel(cancelled);
  Time due = 0;
  ASSERT_TRUE(heap.next_due(due));
  EXPECT_EQ(due, 20);
  EXPECT_EQ(heap.fire_due(25), 1u);
  EXPECT_EQ(heap.fire_due(100), 1u);
  EXPECT_EQ(fired, (std::vector<int>{2, 3}));
  EXPECT_TRUE(heap.empty());
}

TEST(TimerHeap, CallbacksMayRescheduleReentrantly) {
  TimerHeap heap;
  int chain = 0;
  std::function<void()> arm = [&] {
    ++chain;
    if (chain < 5) heap.schedule(chain * 10, arm);
  };
  heap.schedule(0, arm);
  // Each fire_due call runs everything due so far, including re-arms that
  // came due within the same call.
  EXPECT_EQ(heap.fire_due(100), 5u);
  EXPECT_EQ(chain, 5);
}

TEST(TimerHeap, ArmAndCancelChurnDoesNotGrowHeapUnboundedly) {
  // Regression: the TCP runtime used to keep every cancelled TimerEntry in
  // its map forever, so failure-detector style arm-then-cancel churn leaked
  // one entry per round. The heap must stay bounded by the compaction
  // invariant: heap_size <= max(kCompactMin, 2 x armed) after any cancel.
  TimerHeap heap;
  std::vector<TimerId> standing;
  for (int i = 0; i < 100; ++i) {
    standing.push_back(heap.schedule(1'000'000 + i, [] {}));
  }
  for (int round = 0; round < 10'000; ++round) {
    const TimerId id = heap.schedule(2'000'000 + round, [] {});
    heap.cancel(id);
    const std::size_t bound =
        std::max(TimerHeap::kCompactMin, 2 * heap.armed());
    ASSERT_LE(heap.heap_size(), bound) << "round " << round;
  }
  EXPECT_EQ(heap.armed(), standing.size());
  // The standing timers are all still live and fire exactly once.
  EXPECT_EQ(heap.fire_due(3'000'000), standing.size());
}

TEST(TcpTransport, QueuesWhileUnreachableAndFlushesAfterReconnect) {
  AddressBook addresses;
  addresses.base_port = static_cast<std::uint16_t>(24000 + (::getpid() % 1000));

  TcpTransport sender(0, addresses);
  RetryPolicy retry;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 20;
  sender.set_retry_policy(retry);
  sender.listen();

  // Peer 1 is not listening yet: the frame must be queued, not dropped
  // (this was the startup message-loss bug), and connect attempts counted.
  sender.send(1, Message{RmAck{7, 9}});
  for (int i = 0; i < 10; ++i) {
    sender.flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(sender.stats().connect_failures, 0u);
  EXPECT_EQ(sender.stats().tx_frames_dropped, 0u);
  EXPECT_GT(sender.pending_bytes(), 0u);

  // Peer comes up; backoff reconnection must deliver the queued frame.
  TcpTransport receiver(1, addresses);
  receiver.listen();
  std::atomic<int> got{0};
  NodeId got_from = kInvalidNode;
  std::uint64_t got_seq = 0;
  receiver.set_receive([&](NodeId from, const Message& msg) {
    got_from = from;
    got_seq = std::get<RmAck>(msg.payload).seq;
    got.fetch_add(1);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    sender.poll_once(1);
    receiver.poll_once(1);
  }
  ASSERT_EQ(got.load(), 1);
  EXPECT_EQ(got_from, 0u);
  EXPECT_EQ(got_seq, 9u);
  EXPECT_EQ(sender.pending_bytes(), 0u);
  EXPECT_GE(sender.stats().reconnects, 1u);
  sender.close_all();
  receiver.close_all();
}

TEST(FrameParser, RoundTripsSingleFrame) {
  const Message msg{AmAck{make_msg_id(1, 2), 3, 4}};
  const auto frame = frame_message(msg);
  FrameParser parser;
  parser.feed(frame.data(), frame.size());
  const auto out = parser.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<AmAck>(out->payload).mid, make_msg_id(1, 2));
  EXPECT_FALSE(parser.next().has_value());
}

TEST(FrameParser, HandlesBytewiseDelivery) {
  const Message msg{RmAck{7, 8}};
  const auto frame = frame_message(msg);
  FrameParser parser;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_FALSE(parser.next().has_value());
    parser.feed(&frame[i], 1);
  }
  ASSERT_TRUE(parser.next().has_value());
}

TEST(FrameParser, HandlesCoalescedFrames) {
  std::vector<std::byte> stream;
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto f = frame_message(Message{RmAck{1, i}});
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameParser parser;
  parser.feed(stream.data(), stream.size());
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto out = parser.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(std::get<RmAck>(out->payload).seq, i);
  }
  EXPECT_FALSE(parser.next().has_value());
}

TEST(FrameParser, FlagsOversizedFrame) {
  std::vector<std::byte> bad(4);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(bad.data(), &huge, 4);
  FrameParser parser;
  parser.feed(bad.data(), bad.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupted());
}

TEST(FrameParser, FlagsUndecodableBody) {
  std::vector<std::byte> frame(4 + 3);
  const std::uint32_t len = 3;
  std::memcpy(frame.data(), &len, 4);
  frame[4] = std::byte{255};  // unknown tag
  FrameParser parser;
  parser.feed(frame.data(), frame.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupted());
}

/// End-to-end: two groups of three over real sockets, FastCast, one client
/// sending global messages; checker verifies the resulting history.
/// Allocates a fresh 16-port block so concurrently-lingering sockets from
/// earlier tests (TIME_WAIT) can never collide with a new listener.
std::uint16_t next_port_block() {
  static std::atomic<int> block{0};
  return static_cast<std::uint16_t>(21000 + (::getpid() % 500) * 16 +
                                    (block.fetch_add(1) % 512) * 16);
}

/// Shared base for every backend-parameterized suite: uring cases
/// auto-skip when the kernel (or the build) lacks io_uring, so the same
/// test list runs everywhere and reports skips instead of failures.
class BackendParamTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == BackendKind::kUring && !uring_available()) {
      GTEST_SKIP() << "io_uring not available in this build/kernel";
    }
    addresses_.base_port = next_port_block();
  }
  TransportOptions opts() const { return TransportOptions{GetParam()}; }
  AddressBook addresses_;
};

std::string backend_param_name(
    const ::testing::TestParamInfo<BackendKind>& info) {
  return to_string(info.param);
}

void run_fastcast_over_real_sockets(BackendKind backend) {
  Membership membership;
  membership.add_group(3, {0, 0, 0});
  membership.add_group(3, {0, 0, 0});
  const NodeId client_node = membership.add_client(0);

  TcpCluster::Config cfg;
  cfg.membership = membership;
  cfg.base_port = next_port_block();
  cfg.backend = backend;
  TcpCluster cluster(std::move(cfg));

  std::mutex mu;
  Checker checker(&membership);
  std::atomic<int> completions{0};

  // Replicas: plain FastCast over the group's consensus.
  for (NodeId n : membership.all_replicas()) {
    const GroupId g = membership.group_of(n);
    TimestampProtocolBase::Config pc;
    pc.group = g;
    pc.consensus.group = g;
    pc.consensus.members = membership.members(g);
    auto node = std::make_shared<ReplicaNode>(std::make_shared<FastCast>(pc, n));
    node->add_observer([&mu, &checker](Context& ctx, const MulticastMessage& m) {
      std::lock_guard<std::mutex> lock(mu);
      checker.note_delivery(ctx.self(), m.id);
    });
    cluster.add_process(n, node);
  }

  // Closed-loop client: 20 global messages, completing on the first ack.
  class TestClient : public Process {
   public:
    TestClient(std::mutex* mu, Checker* checker, std::atomic<int>* completions)
        : mu_(mu), checker_(checker), completions_(completions) {}
    void on_start(Context& ctx) override {
      stub_.on_start(ctx);
      send_next(ctx);
    }
    void on_message(Context& ctx, NodeId from, const Message& msg) override {
      if (const auto* ack = std::get_if<AmAck>(&msg.payload)) {
        if (ack->mid == outstanding_) {
          completions_->fetch_add(1);
          outstanding_ = 0;
          if (next_seq_ < 20) send_next(ctx);
        }
        return;
      }
      stub_.handle(ctx, from, msg);
    }

   private:
    void send_next(Context& ctx) {
      MulticastMessage m;
      m.id = make_msg_id(ctx.self(), next_seq_++);
      m.sender = ctx.self();
      m.dst = {0, 1};
      m.payload = "post";
      outstanding_ = m.id;
      {
        std::lock_guard<std::mutex> lock(*mu_);
        checker_->note_multicast(m);
      }
      stub_.amulticast(ctx, m);
    }
    GenuineClientStub stub_;
    std::mutex* mu_;
    Checker* checker_;
    std::atomic<int>* completions_;
    std::uint32_t next_seq_ = 0;
    MsgId outstanding_ = 0;
  };
  cluster.add_process(client_node,
                      std::make_shared<TestClient>(&mu, &checker, &completions));

  cluster.start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (completions.load() < 20 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Give stragglers (other replicas' deliveries) a moment, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  cluster.stop();

  EXPECT_EQ(completions.load(), 20);
  std::lock_guard<std::mutex> lock(mu);
  const auto report = checker.check(/*quiesced=*/true, Checker::Level::kFull);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? ""
                                                       : report.violations[0]);
  EXPECT_EQ(report.delivery_count, 20u * 6u);
}

/// A node is killed mid-run and restarted; no client message may be lost
/// (the acceptance bar for the transport retry queues + cluster recovery).
void run_kill_restart_cluster(BackendKind backend) {
  Membership membership;
  membership.add_group(3, {0, 0, 0});
  membership.add_group(3, {0, 0, 0});
  const NodeId client_node = membership.add_client(0);
  const NodeId victim = 4;  // follower of group 1 (leader is node 3)

  TcpCluster::Config cfg;
  cfg.membership = membership;
  cfg.base_port = next_port_block();
  cfg.backend = backend;
  TcpCluster cluster(std::move(cfg));

  std::mutex mu;
  Checker checker(&membership);
  std::atomic<int> completions{0};

  for (NodeId n : membership.all_replicas()) {
    const GroupId g = membership.group_of(n);
    TimestampProtocolBase::Config pc;
    pc.group = g;
    pc.consensus.group = g;
    pc.consensus.members = membership.members(g);
    // Lossy-link machinery on: the victim's reconnect window behaves like
    // loss, and the restarted node relies on retransmission + catch-up.
    pc.consensus.reliable_links = false;
    pc.rmcast.reliable_links = false;
    pc.enable_repropose = true;
    auto node = std::make_shared<ReplicaNode>(std::make_shared<FastCast>(pc, n));
    node->add_observer([&mu, &checker](Context& ctx, const MulticastMessage& m) {
      std::lock_guard<std::mutex> lock(mu);
      checker.note_delivery(ctx.self(), m.id);
    });
    cluster.add_process(n, node);
  }

  // Closed-loop client pacing one global message per ~5ms so the kill and
  // the restart both land while traffic is in flight.
  class PacedClient : public Process {
   public:
    PacedClient(std::mutex* mu, Checker* checker, std::atomic<int>* completions)
        : mu_(mu), checker_(checker), completions_(completions) {}
    void on_start(Context& ctx) override {
      stub_.on_start(ctx);
      send_next(ctx);
    }
    void on_message(Context& ctx, NodeId from, const Message& msg) override {
      if (const auto* ack = std::get_if<AmAck>(&msg.payload)) {
        if (ack->mid == outstanding_) {
          completions_->fetch_add(1);
          outstanding_ = 0;
          if (next_seq_ < 30) {
            ctx.set_timer(milliseconds(5), [this, &ctx] { send_next(ctx); });
          }
        }
        return;
      }
      stub_.handle(ctx, from, msg);
    }

   private:
    void send_next(Context& ctx) {
      MulticastMessage m;
      m.id = make_msg_id(ctx.self(), next_seq_++);
      m.sender = ctx.self();
      m.dst = {0, 1};
      m.payload = "post";
      outstanding_ = m.id;
      {
        std::lock_guard<std::mutex> lock(*mu_);
        checker_->note_multicast(m);
      }
      stub_.amulticast(ctx, m);
    }
    GenuineClientStub stub_;
    std::mutex* mu_;
    Checker* checker_;
    std::atomic<int>* completions_;
    std::uint32_t next_seq_ = 0;
    MsgId outstanding_ = 0;
  };
  cluster.add_process(
      client_node, std::make_shared<PacedClient>(&mu, &checker, &completions));

  cluster.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool killed = false;
  bool restarted = false;
  while (completions.load() < 30 && std::chrono::steady_clock::now() < deadline) {
    if (!killed && completions.load() >= 8) {
      cluster.stop_node(victim);
      killed = true;
    }
    if (killed && !restarted && completions.load() >= 18) {
      cluster.restart_node(victim);
      restarted = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Let the restarted node finish catching up before tearing down.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  cluster.stop();

  EXPECT_TRUE(killed);
  EXPECT_TRUE(restarted);
  // Zero lost client messages across the kill/restart.
  EXPECT_EQ(completions.load(), 30);
  std::lock_guard<std::mutex> lock(mu);
  // Safety-only: the restarted node may still be missing tail deliveries.
  const auto report = checker.check(/*quiesced=*/false, Checker::Level::kFull);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? ""
                                                       : report.violations[0]);
}

// ===========================================================================
// Backend conformance: every TransportBackend implementation must present
// the same observable transport semantics. The whole protocol-over-cluster
// path, plus targeted transport behaviours (stream reassembly, queue
// shedding, reconnect accounting), run against each backend.
// ===========================================================================

class ClusterConformance : public BackendParamTest {};

TEST_P(ClusterConformance, RunsFastCastOverRealSockets) {
  run_fastcast_over_real_sockets(GetParam());
}

TEST_P(ClusterConformance, SurvivesKilledAndRestartedNode) {
  run_kill_restart_cluster(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Backends, ClusterConformance,
                         ::testing::Values(BackendKind::kPoll,
                                           BackendKind::kUring),
                         backend_param_name);

class TransportConformance : public BackendParamTest {};

TEST_P(TransportConformance, ReportsResolvedBackendName) {
  TcpTransport t(0, addresses_, opts());
  EXPECT_STREQ(t.backend_name(), to_string(GetParam()));
}

TEST_P(TransportConformance, RebindsSamePortImmediatelyAfterDestroy) {
  // Pending backend ops pin their sockets inside the kernel. If teardown
  // does not cancel and reap them, the listen socket outlives the
  // transport (io_uring frees deferred-teardown references on a kernel
  // worker) and an immediate rebind of the same port throws EADDRINUSE —
  // SO_REUSEADDR cannot override a socket still in LISTEN. Caught by
  // back-to-back tcp_cluster runs on the uring backend.
  for (int round = 0; round < 5; ++round) {
    TcpTransport t(0, addresses_, opts());
    ASSERT_NO_THROW(t.listen()) << "round " << round;
    t.poll_once(0);  // arms the readiness watch on the listen socket
  }  // the destructor must release the port synchronously
}

TEST_P(TransportConformance, DeliversBidirectionalTrafficInOrder) {
  TcpTransport a(0, addresses_, opts());
  TcpTransport b(1, addresses_, opts());
  a.listen();
  b.listen();

  constexpr std::uint64_t kCount = 300;
  std::vector<std::uint64_t> a_got, b_got;
  a.set_receive([&](NodeId from, const Message& msg) {
    EXPECT_EQ(from, 1u);
    a_got.push_back(std::get<RmAck>(msg.payload).seq);
  });
  b.set_receive([&](NodeId from, const Message& msg) {
    EXPECT_EQ(from, 0u);
    b_got.push_back(std::get<RmAck>(msg.payload).seq);
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    a.send(1, Message{RmAck{0, i}});
    b.send(0, Message{RmAck{1, i}});
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((a_got.size() < kCount || b_got.size() < kCount) &&
         std::chrono::steady_clock::now() < deadline) {
    a.poll_once(1);
    b.poll_once(1);
  }
  ASSERT_EQ(a_got.size(), kCount);
  ASSERT_EQ(b_got.size(), kCount);
  // TCP + per-peer FIFO queues: sequences arrive exactly in send order.
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(a_got[i], i);
    EXPECT_EQ(b_got[i], i);
  }
  a.close_all();
  b.close_all();
}

TEST_P(TransportConformance, ReassemblesLargeAndCoalescedFrames) {
  // Mixes >kMaxIov tiny frames (multi-sendmsg batching, head_offset
  // bookkeeping) with multi-megabyte frames (bigger than the socket
  // buffer, so the stream fragments and the parser must reassemble across
  // many armed receives).
  TcpTransport sender(0, addresses_, opts());
  TcpTransport receiver(1, addresses_, opts());
  sender.listen();
  receiver.listen();

  constexpr int kSmall = 200;  // > kMaxIov, forces several gather batches
  constexpr int kLarge = 4;
  const std::string blob(1 << 20, 'x');

  std::mutex mu;
  std::vector<std::uint64_t> small_seqs;
  int large_ok = 0;
  receiver.set_receive([&](NodeId from, const Message& msg) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(from, 0u);
    if (const auto* ack = std::get_if<RmAck>(&msg.payload)) {
      small_seqs.push_back(ack->seq);
      return;
    }
    const auto& data = std::get<RmData>(msg.payload);
    const auto& mm = std::get<AmStart>(data.inner).msg;
    if (mm.payload == blob) ++large_ok;
  });

  // Receiver drains on its own thread so the sender's blocking writes
  // always make progress (each object stays single-threaded).
  std::atomic<bool> stop{false};
  std::thread rx([&] {
    while (!stop.load()) receiver.poll_once(1);
    receiver.close_all();
  });

  for (std::uint64_t i = 0; i < kSmall; ++i) {
    sender.send(1, Message{RmAck{0, i}});
  }
  for (int i = 0; i < kLarge; ++i) {
    RmData d;
    d.origin = 0;
    d.seq = static_cast<std::uint64_t>(i);
    MulticastMessage mm;
    mm.id = make_msg_id(0, static_cast<std::uint32_t>(i));
    mm.sender = 0;
    mm.dst = {0};
    mm.payload = blob;
    d.inner = AmStart{std::move(mm)};
    sender.send(1, Message{std::move(d)});
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool done = false;
  while (!done && std::chrono::steady_clock::now() < deadline) {
    sender.poll_once(1);
    std::lock_guard<std::mutex> lock(mu);
    done = small_seqs.size() == kSmall && large_ok == kLarge;
  }
  stop.store(true);
  rx.join();
  sender.close_all();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(small_seqs.size(), static_cast<std::size_t>(kSmall));
  for (std::uint64_t i = 0; i < kSmall; ++i) EXPECT_EQ(small_seqs[i], i);
  EXPECT_EQ(large_ok, kLarge);
}

TEST_P(TransportConformance, ShedsQueueBeyondBudgetWhileUnreachable) {
  TcpTransport sender(0, addresses_, opts());
  RetryPolicy rp;
  rp.base_backoff_ms = 1;
  rp.max_queued_bytes = 4 * 1024;
  sender.set_retry_policy(rp);
  sender.listen();

  // Peer 1 never listens: frames queue up to the budget, then shed.
  for (std::uint64_t i = 0; i < 2000; ++i) {
    sender.send(1, Message{RmAck{0, i}});
  }
  EXPECT_GT(sender.stats().connect_failures, 0u);
  EXPECT_GT(sender.stats().tx_frames_dropped, 0u);
  // The queue itself stays bounded (one in-flight frame of slack).
  EXPECT_LE(sender.pending_bytes(), rp.max_queued_bytes + 256);
  sender.close_all();
}

TEST_P(TransportConformance, ShedExportsCountersAndGaugesThenRecovers) {
  // The backpressure telemetry contract: while a peer is unreachable the
  // tx queue gauge tracks pending bytes up to the budget, overflow lands
  // in net.tx_frames_dropped, and once the peer appears the queue drains —
  // gauge back to zero, frames delivered — without recreating the
  // transport.
  obs::Observability obs;
  TcpTransport sender(0, addresses_, opts());
  RetryPolicy rp;
  rp.base_backoff_ms = 1;
  rp.max_backoff_ms = 20;
  rp.max_queued_bytes = 4 * 1024;
  sender.set_retry_policy(rp);
  sender.set_observability(&obs);
  sender.listen();

  for (std::uint64_t i = 0; i < 2000; ++i) {
    sender.send(1, Message{RmAck{0, i}});
  }
  EXPECT_GT(obs.metrics.counter_value("net.tx_frames_dropped"), 0u);
  EXPECT_EQ(obs.metrics.gauge_value("net.tx_queued_bytes"),
            static_cast<std::int64_t>(sender.pending_bytes()));
  EXPECT_GT(obs.metrics.gauge_value("net.tx_queued_bytes"), 0);
  EXPECT_LE(obs.metrics.gauge_value("net.tx_queued_bytes"),
            static_cast<std::int64_t>(rp.max_queued_bytes + 256));
  EXPECT_GE(obs.metrics.gauge_value("net.tx_queued_bytes_hwm"),
            obs.metrics.gauge_value("net.tx_queued_bytes"));

  // Peer appears: the surviving queue must flush and the gauge drain to 0.
  TcpTransport receiver(1, addresses_, opts());
  receiver.listen();
  std::atomic<std::uint64_t> got{0};
  receiver.set_receive([&](NodeId, const Message&) { got.fetch_add(1); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((got.load() == 0 || sender.pending_bytes() > 0) &&
         std::chrono::steady_clock::now() < deadline) {
    sender.poll_once(1);
    receiver.poll_once(1);
  }
  EXPECT_GT(got.load(), 0u);
  EXPECT_EQ(sender.pending_bytes(), 0u);
  EXPECT_EQ(obs.metrics.gauge_value("net.tx_queued_bytes"), 0);
  EXPECT_GT(obs.metrics.gauge_value("net.tx_queued_bytes_hwm"), 0);
  sender.close_all();
  receiver.close_all();
}

TEST_P(TransportConformance, ReconnectsWithBackoffAfterPeerRestart) {
  TcpTransport sender(0, addresses_, opts());
  RetryPolicy rp;
  rp.base_backoff_ms = 1;
  rp.max_backoff_ms = 20;
  sender.set_retry_policy(rp);
  sender.listen();

  std::atomic<std::uint64_t> got{0};
  auto make_receiver = [&] {
    auto r = std::make_unique<TcpTransport>(1, addresses_, opts());
    r->set_retry_policy(rp);
    r->listen();
    r->set_receive(
        [&](NodeId, const Message&) { got.fetch_add(1); });
    return r;
  };

  auto receiver = make_receiver();
  sender.send(1, Message{RmAck{0, 1}});
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    sender.poll_once(1);
    receiver->poll_once(1);
  }
  ASSERT_EQ(got.load(), 1u);

  // Kill the receiver; keep sending until the sender notices the loss.
  receiver->close_all();
  receiver.reset();
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::uint64_t seq = 2;
  while (sender.stats().disconnects == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    sender.send(1, Message{RmAck{0, seq++}});
    sender.poll_once(1);
  }
  ASSERT_GE(sender.stats().disconnects, 1u);

  // Peer returns: backoff reconnect must flush the queued tail.
  receiver = make_receiver();
  const std::uint64_t before = got.load();
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.load() == before &&
         std::chrono::steady_clock::now() < deadline) {
    sender.poll_once(1);
    receiver->poll_once(1);
  }
  EXPECT_GT(got.load(), before);
  EXPECT_GE(sender.stats().reconnects, 1u);
  sender.close_all();
  receiver->close_all();
}

/// Regression for a reconnect-accounting bug found while extracting the
/// poll backend: try_connect consulted the *global* disconnect counter, so
/// once any peer had dropped, a clean first-try connect to a brand-new
/// peer was miscounted as a reconnect.
TEST_P(TransportConformance, FirstConnectToNewPeerIsNotAReconnect) {
  TcpTransport sender(0, addresses_, opts());
  RetryPolicy rp;
  rp.base_backoff_ms = 1;
  sender.set_retry_policy(rp);
  sender.listen();

  std::atomic<std::uint64_t> got1{0}, got2{0};
  {
    TcpTransport rx1(1, addresses_, opts());
    rx1.listen();
    rx1.set_receive([&](NodeId, const Message&) { got1.fetch_add(1); });
    sender.send(1, Message{RmAck{0, 1}});
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (got1.load() == 0 && std::chrono::steady_clock::now() < deadline) {
      sender.poll_once(1);
      rx1.poll_once(1);
    }
    ASSERT_EQ(got1.load(), 1u);
    rx1.close_all();
  }
  // Provoke the disconnect so the global counter is non-zero.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::uint64_t seq = 2;
  while (sender.stats().disconnects == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    sender.send(1, Message{RmAck{0, seq++}});
    sender.poll_once(1);
  }
  ASSERT_GE(sender.stats().disconnects, 1u);
  const std::uint64_t reconnects_before = sender.stats().reconnects;

  // Fresh peer 2, already listening: its first-try connect is clean and
  // must not bump the reconnect counter.
  TcpTransport rx2(2, addresses_, opts());
  rx2.listen();
  rx2.set_receive([&](NodeId, const Message&) { got2.fetch_add(1); });
  sender.send(2, Message{RmAck{0, 100}});
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got2.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    sender.poll_once(1);
    rx2.poll_once(1);
  }
  ASSERT_EQ(got2.load(), 1u);
  EXPECT_EQ(sender.stats().reconnects, reconnects_before);
  sender.close_all();
  rx2.close_all();
}

TEST_P(TransportConformance, RemoveReclaimsArmedReceiveBufferSynchronously) {
  // Regression: the uring backend used to only *queue* cancel SQEs in
  // remove() (not even submitted until the next wait), while the contract
  // lets the caller reclaim the armed buffer the moment remove() returns —
  // so the kernel could complete the still-in-flight RECV into memory the
  // caller had already freed or reused (a kernel-side write ASan cannot
  // see). remove() must cancel and reap synchronously: once it returns,
  // nothing may touch the buffer and no event for the fd may surface.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  auto backend = make_backend(GetParam());
  std::vector<std::byte> buf(256, std::byte{0x5a});
  backend->arm_recv(sv[0], buf.data(), buf.size());

  std::vector<TransportBackend::Event> events;
  backend->wait(0, events);  // submits the armed receive; no data yet
  EXPECT_TRUE(events.empty());

  backend->remove(sv[0]);
  // The caller reuses the memory...
  std::fill(buf.begin(), buf.end(), std::byte{0xab});
  // ...and only then does peer data arrive for the dead registration.
  const char late[] = "late";
  ASSERT_EQ(::write(sv[1], late, sizeof late),
            static_cast<ssize_t>(sizeof late));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline) {
    backend->wait(1, events);
  }
  EXPECT_TRUE(events.empty()) << "stale event surfaced for a removed fd";
  const std::size_t clobbered = static_cast<std::size_t>(
      std::count_if(buf.begin(), buf.end(),
                    [](std::byte b) { return b != std::byte{0xab}; }));
  EXPECT_EQ(clobbered, 0u) << "kernel wrote into a reclaimed receive buffer";

  ::close(sv[0]);
  ::close(sv[1]);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values(BackendKind::kPoll,
                                           BackendKind::kUring),
                         backend_param_name);

// ===========================================================================
// Sharded transport: peer ownership, hello-based fd handoff between
// shards, SPSC delivery to the protocol thread, and the reply path.
// ===========================================================================

class ShardedConformance : public BackendParamTest {};

TEST_P(ShardedConformance, RoutesPeersAcrossShardsBothDirections) {
  constexpr int kSenders = 4;
  constexpr std::uint64_t kPerSender = 150;

  ShardedOptions so;
  so.shards = 3;  // senders 1..4 spread over shards 1, 2, 0, 1
  so.backend = GetParam();
  ShardedTransport hub(0, addresses_, so);
  hub.start();

  struct Sender {
    std::unique_ptr<TcpTransport> t;
    std::atomic<std::uint64_t> acked{0};
  };
  std::vector<Sender> senders(kSenders);
  for (int i = 0; i < kSenders; ++i) {
    const NodeId id = static_cast<NodeId>(i + 1);
    senders[i].t = std::make_unique<TcpTransport>(id, addresses_, opts());
    senders[i].t->listen();  // the hub's reply path connects back here
    senders[i].t->set_receive([&s = senders[i]](NodeId from, const Message& m) {
      EXPECT_EQ(from, 0u);
      EXPECT_EQ(std::get<RmAck>(m.payload).origin, 0u);
      s.acked.fetch_add(1);
    });
    for (std::uint64_t seq = 0; seq < kPerSender; ++seq) {
      senders[i].t->send(0, Message{RmAck{id, seq}});
    }
  }

  // Protocol thread: drain deliveries, echo an ack per message, verify
  // per-sender FIFO (sharding must not reorder within a connection).
  std::vector<std::uint64_t> next_seq(kSenders + 1, 0);
  std::uint64_t delivered = 0;
  bool fifo_ok = true;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  auto all_acked = [&] {
    for (auto& s : senders) {
      if (s.acked.load() < kPerSender) return false;
    }
    return true;
  };
  while ((delivered < kSenders * kPerSender || !all_acked()) &&
         std::chrono::steady_clock::now() < deadline) {
    delivered += hub.poll_deliveries([&](NodeId from, const Message& msg) {
      const auto& ack = std::get<RmAck>(msg.payload);
      fifo_ok = fifo_ok && ack.seq == next_seq[from]++;
      hub.send(from, Message{RmAck{0, ack.seq}});
    });
    for (auto& s : senders) s.t->poll_once(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EXPECT_EQ(delivered, kSenders * kPerSender);
  EXPECT_EQ(hub.frames_received(), kSenders * kPerSender);
  EXPECT_TRUE(fifo_ok);
  for (int i = 0; i < kSenders; ++i) {
    EXPECT_EQ(senders[i].acked.load(), kPerSender) << "sender " << i + 1;
    senders[i].t->close_all();
  }
  hub.stop();
}

TEST(SpscRing, PopReleasesSlotFreight) {
  // Regression: pop() move-assigned out of the slot but left the husk in
  // place. A moved-from shared_ptr is guaranteed empty, but a moved-from
  // vector/Message may legally keep its allocation — and even with
  // shared_ptr, a slot that push() later overwrites is the only thing
  // freeing it. Verify an idle ring holds no references to anything that
  // passed through it.
  SpscRing<std::shared_ptr<int>> ring(8);
  auto probe = std::make_shared<int>(42);
  std::weak_ptr<int> watch = probe;
  ASSERT_TRUE(ring.push(std::move(probe)));
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.pop(out));
  ASSERT_EQ(*out, 42);
  out.reset();
  // Ring is empty and the consumer dropped its copy: nothing may keep the
  // object alive.
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(watch.expired());

  // Same through a full wrap: no slot may pin freight after its pop.
  std::vector<std::weak_ptr<int>> watches;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) {
      auto p = std::make_shared<int>(i);
      watches.push_back(p);
      ASSERT_TRUE(ring.push(std::move(p)));
    }
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(ring.pop(out));
      out.reset();
    }
  }
  for (const auto& w : watches) EXPECT_TRUE(w.expired());
}

TEST_P(ShardedConformance, SpscRingBackpressuresInsteadOfDropping) {
  // Tiny rings + a burst far bigger than their capacity: every message
  // must still arrive (send() and the shard receive path spin instead of
  // shedding).
  ShardedOptions so;
  so.shards = 2;
  so.backend = GetParam();
  so.ring_capacity = 8;
  ShardedTransport hub(0, addresses_, so);
  hub.start();

  TcpTransport peer(1, addresses_, opts());
  peer.listen();
  std::atomic<std::uint64_t> peer_got{0};
  peer.set_receive([&](NodeId, const Message&) { peer_got.fetch_add(1); });

  constexpr std::uint64_t kBurst = 500;
  std::thread pump([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (peer_got.load() < kBurst &&
           std::chrono::steady_clock::now() < deadline) {
      peer.poll_once(1);
    }
  });
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    hub.send(1, Message{RmAck{0, i}});  // blocks on the 8-entry ring
  }
  pump.join();
  EXPECT_EQ(peer_got.load(), kBurst);
  peer.close_all();
  hub.stop();
}

TEST_P(ShardedConformance, RecordsRingOccupancyHighWater) {
  // Tiny rings guarantee the burst actually queues; the hwm gauge must see
  // a nonzero occupancy and never exceed the ring capacity.
  obs::Observability obs;
  ShardedOptions so;
  so.shards = 2;
  so.backend = GetParam();
  so.ring_capacity = 8;
  ShardedTransport hub(0, addresses_, so);
  hub.set_observability(&obs);
  hub.start();

  TcpTransport peer(1, addresses_, opts());
  peer.listen();
  std::atomic<std::uint64_t> peer_got{0};
  peer.set_receive([&](NodeId, const Message&) { peer_got.fetch_add(1); });

  constexpr std::uint64_t kBurst = 500;
  std::thread pump([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (peer_got.load() < kBurst &&
           std::chrono::steady_clock::now() < deadline) {
      peer.poll_once(1);
    }
  });
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    hub.send(1, Message{RmAck{0, i}});
  }
  pump.join();
  EXPECT_EQ(peer_got.load(), kBurst);
  const std::int64_t hwm = obs.metrics.gauge_value("net.shard_ring_hwm");
  EXPECT_GT(hwm, 0);
  EXPECT_LE(hwm, static_cast<std::int64_t>(so.ring_capacity));
  peer.close_all();
  hub.stop();
}

TEST_P(ShardedConformance, StopDoesNotDeadlockWhenRxRingIsFullAtShutdown) {
  // Regression: the shard→protocol rx push used to spin unconditionally on
  // a full ring. With the protocol thread not draining (its prerogative —
  // it is the one calling stop()), the shard thread spun forever inside
  // poll_once and stop()'s join() hung. Once stop() begins, pushers must
  // bail out instead of backpressuring against a consumer that is gone.
  ShardedOptions so;
  so.shards = 1;
  so.backend = GetParam();
  so.ring_capacity = 8;
  ShardedTransport hub(0, addresses_, so);
  hub.start();

  TcpTransport peer(1, addresses_, opts());
  peer.listen();
  for (std::uint64_t i = 0; i < 100; ++i) {
    peer.send(0, Message{RmAck{1, i}});
  }
  peer.flush();
  // Let the shard receive enough frames to fill the 8-entry rx ring and
  // start spinning; this thread deliberately never calls poll_deliveries.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  hub.stop();  // must return promptly rather than hang on join()
  peer.close_all();
}

INSTANTIATE_TEST_SUITE_P(Backends, ShardedConformance,
                         ::testing::Values(BackendKind::kPoll,
                                           BackendKind::kUring),
                         backend_param_name);

}  // namespace
}  // namespace fastcast::net
