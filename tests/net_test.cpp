// TCP transport tests: framing, loopback transport, and a real-socket
// cluster running the exact FastCast protocol objects the simulator runs.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "fastcast/amcast/client_stub.hpp"
#include "fastcast/amcast/fastcast.hpp"
#include "fastcast/amcast/node.hpp"
#include "fastcast/checker/checker.hpp"
#include "fastcast/net/tcp_cluster.hpp"
#include "fastcast/net/timer_heap.hpp"

namespace fastcast::net {
namespace {

TEST(TimerHeap, FiresInDeadlineOrderAndSkipsCancelled) {
  TimerHeap heap;
  std::vector<int> fired;
  heap.schedule(30, [&] { fired.push_back(3); });
  const TimerId cancelled = heap.schedule(10, [&] { fired.push_back(1); });
  heap.schedule(20, [&] { fired.push_back(2); });
  heap.cancel(cancelled);
  Time due = 0;
  ASSERT_TRUE(heap.next_due(due));
  EXPECT_EQ(due, 20);
  EXPECT_EQ(heap.fire_due(25), 1u);
  EXPECT_EQ(heap.fire_due(100), 1u);
  EXPECT_EQ(fired, (std::vector<int>{2, 3}));
  EXPECT_TRUE(heap.empty());
}

TEST(TimerHeap, CallbacksMayRescheduleReentrantly) {
  TimerHeap heap;
  int chain = 0;
  std::function<void()> arm = [&] {
    ++chain;
    if (chain < 5) heap.schedule(chain * 10, arm);
  };
  heap.schedule(0, arm);
  // Each fire_due call runs everything due so far, including re-arms that
  // came due within the same call.
  EXPECT_EQ(heap.fire_due(100), 5u);
  EXPECT_EQ(chain, 5);
}

TEST(TimerHeap, ArmAndCancelChurnDoesNotGrowHeapUnboundedly) {
  // Regression: the TCP runtime used to keep every cancelled TimerEntry in
  // its map forever, so failure-detector style arm-then-cancel churn leaked
  // one entry per round. The heap must stay bounded by the compaction
  // invariant: heap_size <= max(kCompactMin, 2 x armed) after any cancel.
  TimerHeap heap;
  std::vector<TimerId> standing;
  for (int i = 0; i < 100; ++i) {
    standing.push_back(heap.schedule(1'000'000 + i, [] {}));
  }
  for (int round = 0; round < 10'000; ++round) {
    const TimerId id = heap.schedule(2'000'000 + round, [] {});
    heap.cancel(id);
    const std::size_t bound =
        std::max(TimerHeap::kCompactMin, 2 * heap.armed());
    ASSERT_LE(heap.heap_size(), bound) << "round " << round;
  }
  EXPECT_EQ(heap.armed(), standing.size());
  // The standing timers are all still live and fire exactly once.
  EXPECT_EQ(heap.fire_due(3'000'000), standing.size());
}

TEST(TcpTransport, QueuesWhileUnreachableAndFlushesAfterReconnect) {
  AddressBook addresses;
  addresses.base_port = static_cast<std::uint16_t>(24000 + (::getpid() % 1000));

  TcpTransport sender(0, addresses);
  RetryPolicy retry;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 20;
  sender.set_retry_policy(retry);
  sender.listen();

  // Peer 1 is not listening yet: the frame must be queued, not dropped
  // (this was the startup message-loss bug), and connect attempts counted.
  sender.send(1, Message{RmAck{7, 9}});
  for (int i = 0; i < 10; ++i) {
    sender.flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(sender.stats().connect_failures, 0u);
  EXPECT_EQ(sender.stats().tx_frames_dropped, 0u);
  EXPECT_GT(sender.pending_bytes(), 0u);

  // Peer comes up; backoff reconnection must deliver the queued frame.
  TcpTransport receiver(1, addresses);
  receiver.listen();
  std::atomic<int> got{0};
  NodeId got_from = kInvalidNode;
  std::uint64_t got_seq = 0;
  receiver.set_receive([&](NodeId from, const Message& msg) {
    got_from = from;
    got_seq = std::get<RmAck>(msg.payload).seq;
    got.fetch_add(1);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (got.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    sender.poll_once(1);
    receiver.poll_once(1);
  }
  ASSERT_EQ(got.load(), 1);
  EXPECT_EQ(got_from, 0u);
  EXPECT_EQ(got_seq, 9u);
  EXPECT_EQ(sender.pending_bytes(), 0u);
  EXPECT_GE(sender.stats().reconnects, 1u);
  sender.close_all();
  receiver.close_all();
}

TEST(FrameParser, RoundTripsSingleFrame) {
  const Message msg{AmAck{make_msg_id(1, 2), 3, 4}};
  const auto frame = frame_message(msg);
  FrameParser parser;
  parser.feed(frame.data(), frame.size());
  const auto out = parser.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<AmAck>(out->payload).mid, make_msg_id(1, 2));
  EXPECT_FALSE(parser.next().has_value());
}

TEST(FrameParser, HandlesBytewiseDelivery) {
  const Message msg{RmAck{7, 8}};
  const auto frame = frame_message(msg);
  FrameParser parser;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_FALSE(parser.next().has_value());
    parser.feed(&frame[i], 1);
  }
  ASSERT_TRUE(parser.next().has_value());
}

TEST(FrameParser, HandlesCoalescedFrames) {
  std::vector<std::byte> stream;
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto f = frame_message(Message{RmAck{1, i}});
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameParser parser;
  parser.feed(stream.data(), stream.size());
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto out = parser.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(std::get<RmAck>(out->payload).seq, i);
  }
  EXPECT_FALSE(parser.next().has_value());
}

TEST(FrameParser, FlagsOversizedFrame) {
  std::vector<std::byte> bad(4);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(bad.data(), &huge, 4);
  FrameParser parser;
  parser.feed(bad.data(), bad.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupted());
}

TEST(FrameParser, FlagsUndecodableBody) {
  std::vector<std::byte> frame(4 + 3);
  const std::uint32_t len = 3;
  std::memcpy(frame.data(), &len, 4);
  frame[4] = std::byte{255};  // unknown tag
  FrameParser parser;
  parser.feed(frame.data(), frame.size());
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_TRUE(parser.corrupted());
}

/// End-to-end: two groups of three over real sockets, FastCast, one client
/// sending global messages; checker verifies the resulting history.
TEST(TcpCluster, RunsFastCastOverRealSockets) {
  Membership membership;
  membership.add_group(3, {0, 0, 0});
  membership.add_group(3, {0, 0, 0});
  const NodeId client_node = membership.add_client(0);

  TcpCluster::Config cfg;
  cfg.membership = membership;
  cfg.base_port = static_cast<std::uint16_t>(21000 + (::getpid() % 2000));
  TcpCluster cluster(std::move(cfg));

  std::mutex mu;
  Checker checker(&membership);
  std::atomic<int> completions{0};

  // Replicas: plain FastCast over the group's consensus.
  for (NodeId n : membership.all_replicas()) {
    const GroupId g = membership.group_of(n);
    TimestampProtocolBase::Config pc;
    pc.group = g;
    pc.consensus.group = g;
    pc.consensus.members = membership.members(g);
    auto node = std::make_shared<ReplicaNode>(std::make_shared<FastCast>(pc, n));
    node->add_observer([&mu, &checker](Context& ctx, const MulticastMessage& m) {
      std::lock_guard<std::mutex> lock(mu);
      checker.note_delivery(ctx.self(), m.id);
    });
    cluster.add_process(n, node);
  }

  // Closed-loop client: 20 global messages, completing on the first ack.
  class TestClient : public Process {
   public:
    TestClient(std::mutex* mu, Checker* checker, std::atomic<int>* completions)
        : mu_(mu), checker_(checker), completions_(completions) {}
    void on_start(Context& ctx) override {
      stub_.on_start(ctx);
      send_next(ctx);
    }
    void on_message(Context& ctx, NodeId from, const Message& msg) override {
      if (const auto* ack = std::get_if<AmAck>(&msg.payload)) {
        if (ack->mid == outstanding_) {
          completions_->fetch_add(1);
          outstanding_ = 0;
          if (next_seq_ < 20) send_next(ctx);
        }
        return;
      }
      stub_.handle(ctx, from, msg);
    }

   private:
    void send_next(Context& ctx) {
      MulticastMessage m;
      m.id = make_msg_id(ctx.self(), next_seq_++);
      m.sender = ctx.self();
      m.dst = {0, 1};
      m.payload = "post";
      outstanding_ = m.id;
      {
        std::lock_guard<std::mutex> lock(*mu_);
        checker_->note_multicast(m);
      }
      stub_.amulticast(ctx, m);
    }
    GenuineClientStub stub_;
    std::mutex* mu_;
    Checker* checker_;
    std::atomic<int>* completions_;
    std::uint32_t next_seq_ = 0;
    MsgId outstanding_ = 0;
  };
  cluster.add_process(client_node,
                      std::make_shared<TestClient>(&mu, &checker, &completions));

  cluster.start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (completions.load() < 20 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Give stragglers (other replicas' deliveries) a moment, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  cluster.stop();

  EXPECT_EQ(completions.load(), 20);
  std::lock_guard<std::mutex> lock(mu);
  const auto report = checker.check(/*quiesced=*/true, Checker::Level::kFull);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? ""
                                                       : report.violations[0]);
  EXPECT_EQ(report.delivery_count, 20u * 6u);
}

/// A node is killed mid-run and restarted; no client message may be lost
/// (the acceptance bar for the transport retry queues + cluster recovery).
TEST(TcpCluster, SurvivesKilledAndRestartedNode) {
  Membership membership;
  membership.add_group(3, {0, 0, 0});
  membership.add_group(3, {0, 0, 0});
  const NodeId client_node = membership.add_client(0);
  const NodeId victim = 4;  // follower of group 1 (leader is node 3)

  TcpCluster::Config cfg;
  cfg.membership = membership;
  cfg.base_port = static_cast<std::uint16_t>(26000 + (::getpid() % 2000));
  TcpCluster cluster(std::move(cfg));

  std::mutex mu;
  Checker checker(&membership);
  std::atomic<int> completions{0};

  for (NodeId n : membership.all_replicas()) {
    const GroupId g = membership.group_of(n);
    TimestampProtocolBase::Config pc;
    pc.group = g;
    pc.consensus.group = g;
    pc.consensus.members = membership.members(g);
    // Lossy-link machinery on: the victim's reconnect window behaves like
    // loss, and the restarted node relies on retransmission + catch-up.
    pc.consensus.reliable_links = false;
    pc.rmcast.reliable_links = false;
    pc.enable_repropose = true;
    auto node = std::make_shared<ReplicaNode>(std::make_shared<FastCast>(pc, n));
    node->add_observer([&mu, &checker](Context& ctx, const MulticastMessage& m) {
      std::lock_guard<std::mutex> lock(mu);
      checker.note_delivery(ctx.self(), m.id);
    });
    cluster.add_process(n, node);
  }

  // Closed-loop client pacing one global message per ~5ms so the kill and
  // the restart both land while traffic is in flight.
  class PacedClient : public Process {
   public:
    PacedClient(std::mutex* mu, Checker* checker, std::atomic<int>* completions)
        : mu_(mu), checker_(checker), completions_(completions) {}
    void on_start(Context& ctx) override {
      stub_.on_start(ctx);
      send_next(ctx);
    }
    void on_message(Context& ctx, NodeId from, const Message& msg) override {
      if (const auto* ack = std::get_if<AmAck>(&msg.payload)) {
        if (ack->mid == outstanding_) {
          completions_->fetch_add(1);
          outstanding_ = 0;
          if (next_seq_ < 30) {
            ctx.set_timer(milliseconds(5), [this, &ctx] { send_next(ctx); });
          }
        }
        return;
      }
      stub_.handle(ctx, from, msg);
    }

   private:
    void send_next(Context& ctx) {
      MulticastMessage m;
      m.id = make_msg_id(ctx.self(), next_seq_++);
      m.sender = ctx.self();
      m.dst = {0, 1};
      m.payload = "post";
      outstanding_ = m.id;
      {
        std::lock_guard<std::mutex> lock(*mu_);
        checker_->note_multicast(m);
      }
      stub_.amulticast(ctx, m);
    }
    GenuineClientStub stub_;
    std::mutex* mu_;
    Checker* checker_;
    std::atomic<int>* completions_;
    std::uint32_t next_seq_ = 0;
    MsgId outstanding_ = 0;
  };
  cluster.add_process(
      client_node, std::make_shared<PacedClient>(&mu, &checker, &completions));

  cluster.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool killed = false;
  bool restarted = false;
  while (completions.load() < 30 && std::chrono::steady_clock::now() < deadline) {
    if (!killed && completions.load() >= 8) {
      cluster.stop_node(victim);
      killed = true;
    }
    if (killed && !restarted && completions.load() >= 18) {
      cluster.restart_node(victim);
      restarted = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Let the restarted node finish catching up before tearing down.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  cluster.stop();

  EXPECT_TRUE(killed);
  EXPECT_TRUE(restarted);
  // Zero lost client messages across the kill/restart.
  EXPECT_EQ(completions.load(), 30);
  std::lock_guard<std::mutex> lock(mu);
  // Safety-only: the restarted node may still be missing tail deliveries.
  const auto report = checker.check(/*quiesced=*/false, Checker::Level::kFull);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? ""
                                                       : report.violations[0]);
}

}  // namespace
}  // namespace fastcast::net
