// Unit tests for the common substrate: RNG, codec primitives, statistics.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "fastcast/common/codec.hpp"
#include "fastcast/common/rng.hpp"
#include "fastcast/common/stats.hpp"
#include "fastcast/common/time.hpp"

namespace fastcast {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.next() == child.next();
  EXPECT_LT(equal, 3);
}

TEST(Time, Conversions) {
  EXPECT_EQ(milliseconds(1), 1000 * microseconds(1));
  EXPECT_EQ(seconds(1), 1000 * milliseconds(1));
  EXPECT_EQ(milliseconds_f(0.5), microseconds(500));
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(70)), 70.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
}

TEST(Codec, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, VarintBoundaries) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                          0xffffffffULL, ~0ULL}) {
    Writer w;
    w.varint(v);
    Reader r(w.data());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
  }
}

/// Pins the exact LEB128 byte sequences. The writer/reader fast paths
/// (1-byte and 2-byte early exits, the unrolled >=10-bytes-remaining
/// decoder) must stay byte-identical to the canonical encoding — any
/// deviation is a wire-format break, not a perf tweak.
TEST(Codec, VarintGoldenBytes) {
  struct Golden {
    std::uint64_t value;
    std::vector<std::uint8_t> wire;
  };
  const std::vector<Golden> goldens = {
      {0, {0x00}},
      {1, {0x01}},
      {127, {0x7f}},                          // 1-byte fast-path boundary
      {128, {0x80, 0x01}},                    // first 2-byte value
      {300, {0xac, 0x02}},
      {16383, {0xff, 0x7f}},                  // 2-byte fast-path boundary
      {16384, {0x80, 0x80, 0x01}},            // first scratch-buffer value
      {0xffffffffULL, {0xff, 0xff, 0xff, 0xff, 0x0f}},
      {1ULL << 63, {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                    0x01}},
      {~0ULL, {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
               0x01}},                        // max length: 10 bytes
  };
  for (const auto& g : goldens) {
    Writer w;
    w.varint(g.value);
    ASSERT_EQ(w.size(), g.wire.size()) << "value " << g.value;
    for (std::size_t i = 0; i < g.wire.size(); ++i) {
      EXPECT_EQ(static_cast<std::uint8_t>(w.data()[i]), g.wire[i])
          << "value " << g.value << " byte " << i;
    }
    // Decode via the unrolled path (pad so >=10 bytes remain)...
    std::vector<std::byte> padded(w.data().begin(), w.data().end());
    padded.resize(padded.size() + 10);
    Reader fast(padded);
    EXPECT_EQ(fast.varint(), g.value);
    EXPECT_TRUE(fast.ok());
    // ...and via the tail path (exact-size buffer, per-byte checks).
    Reader slow(w.data());
    EXPECT_EQ(slow.varint(), g.value);
    EXPECT_TRUE(slow.ok());
  }
}

TEST(Codec, VarintRejectsOverlongOnBothDecodePaths) {
  // 11 continuation-flagged bytes: invalid however many bytes remain.
  std::vector<std::byte> overlong(11, std::byte{0xff});
  overlong.push_back(std::byte{0x00});
  Reader fast(overlong);  // >= 10 remaining: unrolled path
  fast.varint();
  EXPECT_FALSE(fast.ok());

  std::vector<std::byte> truncated(3, std::byte{0x80});
  Reader tail(truncated);  // < 10 remaining: slow path, runs off the end
  tail.varint();
  EXPECT_FALSE(tail.ok());
}

// ---------------------------------------------------------------------------
// Adversarial varint fuzzing. Reader::varint has three routes — the 1-byte
// fast path, the bounds-check-free unrolled decoder (>=10 bytes remaining)
// and the per-byte tail loop — which must accept/reject exactly the same
// byte strings with the same value and consumed length. The oracle below is
// a third, deliberately naive LEB128 decoder written straight from the spec,
// so a shared bug in the two production paths still gets caught.

struct VarintOracle {
  std::uint64_t value = 0;
  std::size_t consumed = 0;
  bool ok = false;
};

VarintOracle reference_varint(std::span<const std::byte> in) {
  VarintOracle out;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (i >= 10) return out;  // an 11th byte would need shift > 63
    const auto b = static_cast<std::uint8_t>(in[i]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << (7 * i);
    if ((b & 0x80) == 0) {
      out.value = v;
      out.consumed = i + 1;
      out.ok = true;
      return out;
    }
  }
  return out;  // ran off the end with the continuation bit still set
}

TEST(Codec, VarintFuzzRoundTripBothPaths) {
  Rng rng(0x5eed);
  for (int iter = 0; iter < 20000; ++iter) {
    // Mask to a random bit width so every encoded length 1..10 shows up.
    const auto bits = 1 + static_cast<unsigned>(rng.uniform(64));
    std::uint64_t v = rng.next();
    if (bits < 64) v &= (1ULL << bits) - 1;
    Writer w;
    w.varint(v);
    // Exact-size buffer: multi-byte values take the per-byte tail loop.
    Reader tail(w.data());
    ASSERT_EQ(tail.varint(), v);
    ASSERT_TRUE(tail.ok());
    ASSERT_TRUE(tail.at_end());
    // Adversarial 0xff padding (continuation bit everywhere): the unrolled
    // path must stop at the value's own terminator, never read on.
    std::vector<std::byte> padded(w.data().begin(), w.data().end());
    padded.resize(padded.size() + 10, std::byte{0xff});
    Reader fast(padded);
    ASSERT_EQ(fast.varint(), v);
    ASSERT_TRUE(fast.ok());
    ASSERT_EQ(fast.remaining(), 10u);
  }
}

TEST(Codec, VarintFuzzRandomBytesMatchOracle) {
  Rng rng(0xfacade);
  for (int iter = 0; iter < 20000; ++iter) {
    // Continuation-biased bytes reach the deep unroll tiers far more often
    // than uniform bytes would (a uniform byte terminates half the time).
    const auto len = static_cast<std::size_t>(1 + rng.uniform(14));
    std::vector<std::byte> buf(len);
    for (auto& slot : buf) {
      auto b = static_cast<std::uint8_t>(rng.next());
      if (rng.uniform(4) != 0) b |= 0x80;
      slot = std::byte{b};
    }
    const VarintOracle want = reference_varint(buf);
    Reader r(buf);  // len >= 10 takes the unrolled path, < 10 the tail loop
    const std::uint64_t got = r.varint();
    ASSERT_EQ(r.ok(), want.ok) << "len " << len;
    if (!want.ok) continue;
    ASSERT_EQ(got, want.value);
    ASSERT_EQ(buf.size() - r.remaining(), want.consumed);
    // The same logical bytes must decode identically however much trails
    // them: exact size (tail loop) vs >=10 spare bytes (unrolled).
    std::vector<std::byte> exact(buf.begin(),
                                 buf.begin() + static_cast<std::ptrdiff_t>(
                                                   want.consumed));
    Reader t(exact);
    ASSERT_EQ(t.varint(), want.value);
    ASSERT_TRUE(t.ok());
    exact.resize(want.consumed + 10, std::byte{0xff});
    Reader f(exact);
    ASSERT_EQ(f.varint(), want.value);
    ASSERT_TRUE(f.ok());
    ASSERT_EQ(f.remaining(), 10u);
  }
}

TEST(Codec, VarintFuzzBoundaryTruncations) {
  Rng rng(0xb0b);
  for (int iter = 0; iter < 5000; ++iter) {
    const std::uint64_t v = rng.next() >> rng.uniform(64);
    Writer w;
    w.varint(v);
    const auto& wire = w.data();
    for (std::size_t k = 0; k < wire.size(); ++k) {
      // Every proper prefix ends on a continuation byte. The exact-size
      // reader (tail loop) must fail cleanly...
      std::vector<std::byte> prefix(wire.begin(),
                                    wire.begin() + static_cast<std::ptrdiff_t>(k));
      Reader t(prefix);
      t.varint();
      ASSERT_FALSE(t.ok()) << "prefix " << k << " of " << wire.size();
      // ...while the same prefix with garbage appended (unrolled path once
      // >=10 bytes remain) must agree with the oracle byte-for-byte —
      // whether that means failing or decoding a different value.
      prefix.resize(k + 11);
      for (std::size_t i = k; i < prefix.size(); ++i) {
        prefix[i] = std::byte{static_cast<std::uint8_t>(rng.next())};
      }
      const VarintOracle want = reference_varint(prefix);
      Reader f(prefix);
      const std::uint64_t got = f.varint();
      ASSERT_EQ(f.ok(), want.ok);
      if (want.ok) {
        ASSERT_EQ(got, want.value);
        ASSERT_EQ(prefix.size() - f.remaining(), want.consumed);
      }
    }
  }
}

TEST(Codec, StringsAndBytes) {
  Writer w;
  w.str("hello");
  w.str("");
  w.bytes(to_bytes(std::string_view("\x00\x01\x02", 3)));
  Reader r(w.data());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes().size(), 3u);
  EXPECT_TRUE(r.ok());
}

TEST(Codec, ReaderFailsOnTruncation) {
  Writer w;
  w.u64(42);
  auto data = w.take();
  data.resize(4);
  Reader r(data);
  (void)r.u64();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, ReaderFailsOnOversizedVarint) {
  std::vector<std::byte> bad(11, std::byte{0xff});
  Reader r(bad);
  (void)r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, ReaderFailsOnBogusLengthPrefix) {
  Writer w;
  w.varint(1u << 20);  // claims a megabyte follows
  Reader r(w.data());
  (void)r.str();
  EXPECT_FALSE(r.ok());
}

TEST(Stats, PercentilesExact) {
  LatencyRecorder rec;
  for (int i = 100; i >= 1; --i) rec.add(milliseconds(i));
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_EQ(rec.median(), milliseconds(50));
  EXPECT_EQ(rec.percentile(95), milliseconds(95));
  EXPECT_EQ(rec.percentile(100), milliseconds(100));
  EXPECT_EQ(rec.min(), milliseconds(1));
  EXPECT_EQ(rec.max(), milliseconds(100));
}

TEST(Stats, EmptyRecorderIsSafe) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.median(), 0);
  EXPECT_EQ(rec.mean(), 0.0);
  EXPECT_EQ(rec.stddev(), 0.0);
}

TEST(Stats, MeanAndStddev) {
  LatencyRecorder rec;
  rec.add(2);
  rec.add(4);
  rec.add(4);
  rec.add(4);
  rec.add(5);
  rec.add(5);
  rec.add(7);
  rec.add(9);
  EXPECT_DOUBLE_EQ(rec.mean(), 5.0);
  EXPECT_NEAR(rec.stddev(), 2.138, 0.001);
}

TEST(Stats, ThroughputSummary) {
  const std::vector<std::uint64_t> slices = {100, 110, 90, 100, 100};
  const auto s = summarize_throughput(slices, milliseconds(100));
  EXPECT_EQ(s.total, 500u);
  EXPECT_NEAR(s.mean_per_sec, 1000.0, 1e-6);
  EXPECT_GT(s.ci95_per_sec, 0.0);
  EXPECT_LT(s.ci95_per_sec, 100.0);
}

TEST(Stats, ThroughputEmpty) {
  const auto s = summarize_throughput({}, milliseconds(100));
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.mean_per_sec, 0.0);
}

TEST(Stats, FormatMs) {
  EXPECT_EQ(format_ms(microseconds(691)), "0.691");
  EXPECT_EQ(format_ms(milliseconds(84)), "84.00");
  EXPECT_EQ(format_ms(milliseconds(163)), "163.0");
}

}  // namespace
}  // namespace fastcast
