// Regression anchors for the hot-path optimizations: the wire format and
// the fixed-seed delivery orders must not drift when the encoding or event
// engine changes. Every golden constant below was captured from the
// pre-optimization tree, so a failure here means observable behavior
// changed, not just performance.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "fastcast/harness/experiment.hpp"
#include "fastcast/net/frame.hpp"
#include "fastcast/runtime/message.hpp"

namespace fastcast {
namespace {

using namespace fastcast::harness;

std::string hex(const std::vector<std::byte>& b) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(b.size() * 2);
  for (std::byte x : b) {
    s += digits[std::to_integer<int>(x) >> 4];
    s += digits[std::to_integer<int>(x) & 0xf];
  }
  return s;
}

// ---------------------------------------------------------------------------
// Golden wire bytes (one representative per Message variant).
// ---------------------------------------------------------------------------

MulticastMessage golden_mm() {
  MulticastMessage mm;
  mm.id = make_msg_id(3, 7);
  mm.sender = 3;
  mm.dst = {0, 2};
  mm.payload = "golden";
  return mm;
}

RmData golden_rmdata() {
  RmData rd;
  rd.origin = 1;
  rd.seq = 42;
  rd.dst_groups = {0, 2};
  rd.dest_nodes = {0, 1, 6, 7};
  rd.dest_seqs = {11, 12, 13, 14};
  rd.inner = AmStart{golden_mm()};
  return rd;
}

struct GoldenCase {
  const char* name;
  Message msg;
  const char* hex;
};

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  cases.push_back(
      {"RmData_AmStart", Message{golden_rmdata()},
       "01010000002a0000000000000002000204000000000b010000000c060000000d070000"
       "000e0107000000030000000300000002000206676f6c64656e"});
  RmData soft = golden_rmdata();
  soft.inner = AmSendSoft{2, 99, make_msg_id(3, 7), {0, 2}};
  cases.push_back(
      {"RmData_AmSendSoft", Message{soft},
       "01010000002a0000000000000002000204000000000b010000000c060000000d070000"
       "000e0202630700000003000000020002"});
  RmData hard = golden_rmdata();
  hard.inner = AmSendHard{2, 100, make_msg_id(3, 7), {0, 2}};
  cases.push_back(
      {"RmData_AmSendHard", Message{hard},
       "01010000002a0000000000000002000204000000000b010000000c060000000d070000"
       "000e0302640700000003000000020002"});
  cases.push_back({"RmAck", Message{RmAck{5, 1234}}, "0205000000d204000000000000"});
  cases.push_back({"P1a", Message{P1a{1, Ballot{3, 2}, 17}},
                   "030103000000020000001100000000000000"});
  P1b p1b;
  p1b.group = 1;
  p1b.ballot = Ballot{3, 2};
  p1b.from_instance = 17;
  p1b.accepted.push_back({18, Ballot{2, 1}, to_bytes("val-a")});
  p1b.accepted.push_back({19, Ballot{3, 0}, to_bytes("val-b")});
  cases.push_back(
      {"P1b", Message{p1b},
       "04010300000002000000110000000000000002120000000000000002000000010000000"
       "576616c2d61130000000000000003000000000000000576616c2d62"});
  cases.push_back({"P2a", Message{P2a{1, Ballot{3, 2}, 20, to_bytes("value!")}},
                   "0501030000000200000014000000000000000676616c756521"});
  cases.push_back(
      {"P2b", Message{P2b{1, Ballot{3, 2}, 20, 4, to_bytes("value!")}},
       "060103000000020000001400000000000000040000000676616c756521"});
  cases.push_back({"PaxosNack", Message{PaxosNack{1, Ballot{9, 1}, 21}},
                   "070109000000010000001500000000000000"});
  cases.push_back({"P2bRequest", Message{P2bRequest{1, 22}},
                   "0b011600000000000000"});
  cases.push_back({"MpSubmit", Message{MpSubmit{golden_mm()}},
                   "0807000000030000000300000002000206676f6c64656e"});
  cases.push_back({"AmAck", Message{AmAck{make_msg_id(3, 7), 2, 6}},
                   "0907000000030000000206000000"});
  cases.push_back({"FdHeartbeat", Message{FdHeartbeat{1, 2, 33}},
                   "0a01020000002100000000000000"});
  return cases;
}

TEST(WireGolden, MessageEncodingsMatchSeedBytes) {
  for (const GoldenCase& c : golden_cases()) {
    EXPECT_EQ(hex(encode_message(c.msg)), c.hex) << c.name;
  }
}

TEST(WireGolden, ReusableEncodersAreByteIdentical) {
  std::vector<std::byte> buf;
  for (const GoldenCase& c : golden_cases()) {
    // Encode twice into the same buffer: the second pass runs with warmed
    // capacity (the pooled-buffer steady state) and must produce the same
    // bytes as the allocating encoder.
    encode_message_into(c.msg, buf);
    encode_message_into(c.msg, buf);
    EXPECT_EQ(hex(buf), c.hex) << c.name;
  }
}

TEST(WireGolden, TupleAndBatchValuesMatchSeedBytes) {
  std::vector<Tuple> ts;
  ts.push_back(Tuple{TupleKind::kSetHard, 1, 0, make_msg_id(3, 7), {0, 1}});
  ts.push_back(Tuple{TupleKind::kSyncSoft, 0, 55, make_msg_id(2, 9), {0}});
  ts.push_back(Tuple{TupleKind::kSyncHard, 2, 77, make_msg_id(1, 4), {1, 2}});
  const char* tuples_hex =
      "0300010007000000030000000200010100370900000002000000010002024d0400000001"
      "000000020102";
  EXPECT_EQ(hex(encode_tuples(ts)), tuples_hex);
  std::vector<std::byte> buf;
  encode_tuples_into(ts, buf);
  EXPECT_EQ(hex(buf), tuples_hex);

  std::vector<MulticastMessage> batch;
  MulticastMessage a;
  a.id = make_msg_id(9, 1);
  a.sender = 9;
  a.dst = {0};
  a.payload = "x";
  batch.push_back(a);
  a.id = make_msg_id(9, 2);
  a.dst = {0, 1};
  a.payload = "yy";
  batch.push_back(a);
  const char* batch_hex =
      "0201000000090000000900000001000178020000000900000009000000020001027979";
  EXPECT_EQ(hex(encode_msg_batch(batch)), batch_hex);
  encode_msg_batch_into(batch, buf);
  EXPECT_EQ(hex(buf), batch_hex);
}

TEST(WireGolden, FramingIsLengthPrefixPlusGoldenBody) {
  for (const GoldenCase& c : golden_cases()) {
    const std::vector<std::byte> framed = net::frame_message(c.msg);
    ASSERT_GE(framed.size(), 4u) << c.name;
    std::uint32_t len = 0;
    std::memcpy(&len, framed.data(), 4);
    EXPECT_EQ(len, framed.size() - 4) << c.name;
    EXPECT_EQ(hex({framed.begin() + 4, framed.end()}), c.hex) << c.name;

    // The appending variant must coalesce without disturbing earlier frames.
    std::vector<std::byte> two;
    net::frame_message_into(c.msg, two);
    net::frame_message_into(c.msg, two);
    ASSERT_EQ(two.size(), framed.size() * 2) << c.name;
    EXPECT_EQ(hex({two.begin(), two.begin() + static_cast<std::ptrdiff_t>(
                                                  framed.size())}),
              hex(framed))
        << c.name;
    EXPECT_EQ(hex({two.begin() + static_cast<std::ptrdiff_t>(framed.size()),
                   two.end()}),
              hex(framed))
        << c.name;
  }
}

TEST(WireGolden, BufferPoolRecyclesCapacity) {
  BufferPool pool;
  std::vector<std::byte> b = pool.acquire();
  b.resize(512);
  const std::byte* data = b.data();
  pool.release(std::move(b));
  EXPECT_EQ(pool.pooled(), 1u);
  std::vector<std::byte> again = pool.acquire();
  EXPECT_EQ(again.data(), data);  // same storage came back
  EXPECT_TRUE(again.empty());     // but cleared
  EXPECT_GE(again.capacity(), 512u);
}

// ---------------------------------------------------------------------------
// Fixed-seed delivery-order fingerprints. The FNV-1a hash covers every
// replica's full a-delivery sequence, so any reordering anywhere in a
// ~2600-delivery run changes the value. Constants captured from the
// pre-optimization tree: the engine/codec/transport work must not move a
// single delivery.
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ULL;
  }
  return h;
}

std::pair<std::size_t, std::uint64_t> delivery_fingerprint(Protocol proto,
                                                           std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = 2;
  cfg.topo.clients = 4;
  cfg.topo.protocol = proto;
  cfg.seed = seed;
  cfg.dst_factory = [](std::size_t i) -> DstPicker {
    if (i % 2 == 0) return fixed_group(static_cast<GroupId>(i % 2));
    return random_subset(2, 2);
  };
  Cluster cluster(cfg);
  std::map<NodeId, std::vector<MsgId>> orders;
  for (NodeId n : cluster.deployment().membership.all_replicas()) {
    cluster.replica(n).add_observer(
        [&orders](Context& ctx, const MulticastMessage& m) {
          orders[ctx.self()].push_back(m.id);
        });
  }
  cluster.start();
  cluster.stop_clients(milliseconds(150));
  cluster.simulator().run_to_idle(seconds(30));
  std::uint64_t h = 1469598103934665603ULL;
  std::size_t count = 0;
  for (const auto& [n, mids] : orders) {
    h = fnv1a(h, n);
    for (MsgId m : mids) h = fnv1a(h, m);
    count += mids.size();
  }
  return {count, h};
}

TEST(DeliveryDeterminism, FastCastSeed42MatchesSeedTree) {
  const auto [count, hash] = delivery_fingerprint(Protocol::kFastCast, 42);
  EXPECT_EQ(count, 2643u);
  EXPECT_EQ(hash, 18027007248634400521ULL);
}

TEST(DeliveryDeterminism, FastCastSeed7MatchesSeedTree) {
  const auto [count, hash] = delivery_fingerprint(Protocol::kFastCast, 7);
  EXPECT_EQ(count, 2646u);
  EXPECT_EQ(hash, 9011836200525403687ULL);
}

TEST(DeliveryDeterminism, BaseCastSeed42MatchesSeedTree) {
  const auto [count, hash] = delivery_fingerprint(Protocol::kBaseCast, 42);
  EXPECT_EQ(count, 2388u);
  EXPECT_EQ(hash, 14387120508232805152ULL);
}

// ---------------------------------------------------------------------------
// The simulator exports its queue high-water mark through the metrics
// registry; a run that delivered anything must have observed a non-empty
// queue at some point.
// ---------------------------------------------------------------------------

TEST(QueueHighWater, GaugeIsExportedDuringObservedRuns) {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = 2;
  cfg.topo.clients = 2;
  cfg.topo.protocol = Protocol::kFastCast;
  cfg.seed = 1;
  cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
  cfg.warmup = milliseconds(20);
  cfg.measure = milliseconds(100);
  cfg.observe = true;
  ExperimentResult res = run_experiment(cfg);
  ASSERT_NE(res.obs, nullptr);
  const auto gauges = res.obs->metrics.gauges();
  const auto it = gauges.find("sim.event_queue.high_water");
  ASSERT_NE(it, gauges.end());
  EXPECT_GT(it->second, 0);
}

}  // namespace
}  // namespace fastcast
