// Property-based sweeps: for every protocol, across seeds, group counts,
// destination distributions and environments, a full run must satisfy all
// five atomic-multicast properties (verified by the checker at kFull).

#include <gtest/gtest.h>

#include <tuple>

#include "fastcast/harness/experiment.hpp"

namespace fastcast::harness {
namespace {

struct SweepParam {
  Protocol protocol;
  std::size_t groups;
  std::size_t clients;
  std::uint64_t seed;
  bool serialize;
};

std::string param_name(const testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  std::string name = to_string(p.protocol);
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  name += "_g" + std::to_string(p.groups) + "_c" + std::to_string(p.clients) +
          "_s" + std::to_string(p.seed) + (p.serialize ? "_wire" : "");
  return name;
}

class ProtocolSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(ProtocolSweep, AllPropertiesHold) {
  const SweepParam p = GetParam();
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = p.groups;
  cfg.topo.clients = p.clients;
  cfg.topo.protocol = p.protocol;
  cfg.seed = p.seed;
  cfg.serialize_messages = p.serialize;
  cfg.warmup = milliseconds(10);
  cfg.measure = milliseconds(120);
  cfg.check_level = Checker::Level::kFull;
  // Mixed workload: a third local, a third pairs, a third wide.
  cfg.dst_factory = [&p](std::size_t i) -> DstPicker {
    switch (i % 3) {
      case 0: return fixed_group(static_cast<GroupId>(i % p.groups));
      case 1: return random_subset(p.groups, std::min<std::size_t>(2, p.groups));
      default: return random_subset(p.groups, (p.groups + 1) / 2);
    }
  };
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  ASSERT_TRUE(r.report.ok) << r.report.violations[0];
  EXPECT_GT(r.report.delivery_count, 0u);
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (Protocol proto : {Protocol::kBaseCast, Protocol::kFastCast,
                         Protocol::kFastCastSlowPath, Protocol::kMultiPaxos}) {
    for (std::size_t groups : {1, 2, 3, 5}) {
      for (std::uint64_t seed : {1, 7, 1234}) {
        params.push_back({proto, groups, 2 * groups, seed, false});
      }
    }
    // One wire-serialized variant per protocol.
    params.push_back({proto, 3, 6, 42, true});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolSweep, testing::ValuesIn(sweep_params()),
                         param_name);

// --- Heavier contention: many clients all multicasting to overlapping
// destination pairs, where ordering mistakes would show up as cycles.

class ContentionSweep
    : public testing::TestWithParam<std::tuple<Protocol, std::uint64_t>> {};

TEST_P(ContentionSweep, OverlappingPairsStayAcyclic) {
  const auto [proto, seed] = GetParam();
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = 4;
  cfg.topo.clients = 16;
  cfg.topo.protocol = proto;
  cfg.seed = seed;
  cfg.warmup = milliseconds(10);
  cfg.measure = milliseconds(150);
  cfg.check_level = Checker::Level::kFull;
  cfg.dst_factory = same_dst_for_all(random_subset(4, 2));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  ASSERT_TRUE(r.report.ok) << r.report.violations[0];
}

INSTANTIATE_TEST_SUITE_P(
    Contention, ContentionSweep,
    testing::Combine(testing::Values(Protocol::kBaseCast, Protocol::kFastCast,
                                     Protocol::kFastCastSlowPath,
                                     Protocol::kMultiPaxos),
                     testing::Values(3u, 17u, 99u)));

// --- WAN sweeps: longer delays shift interleavings entirely; run a
// smaller matrix there.

class WanSweep
    : public testing::TestWithParam<std::tuple<Protocol, std::uint64_t>> {};

TEST_P(WanSweep, PropertiesHoldAcrossRegions) {
  const auto [proto, seed] = GetParam();
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kEmulatedWan;
  cfg.topo.groups = 3;
  cfg.topo.clients = 6;
  cfg.topo.protocol = proto;
  cfg.seed = seed;
  cfg.warmup = milliseconds(200);
  cfg.measure = milliseconds(800);
  cfg.check_level = Checker::Level::kFull;
  cfg.dst_factory = [](std::size_t i) -> DstPicker {
    return i % 2 == 0 ? random_subset(3, 2) : fixed_group(static_cast<GroupId>(i % 3));
  };
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  ASSERT_TRUE(r.report.ok) << r.report.violations[0];
}

INSTANTIATE_TEST_SUITE_P(
    Wan, WanSweep,
    testing::Combine(testing::Values(Protocol::kBaseCast, Protocol::kFastCast,
                                     Protocol::kFastCastSlowPath,
                                     Protocol::kMultiPaxos),
                     testing::Values(5u, 23u)));

// --- Fair-lossy links: retransmission keeps every property intact.

class LossSweep : public testing::TestWithParam<std::tuple<Protocol, double>> {};

TEST_P(LossSweep, PropertiesHoldUnderMessageLoss) {
  const auto [proto, drop] = GetParam();
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = 2;
  cfg.topo.clients = 4;
  cfg.topo.protocol = proto;
  cfg.drop_probability = drop;
  cfg.warmup = milliseconds(20);
  cfg.measure = milliseconds(200);
  cfg.drain_grace = seconds(40);
  cfg.check_level = Checker::Level::kFull;
  cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
  const auto r = run_experiment(cfg);
  // Drain is disabled under loss (timers keep the queue alive), so the
  // checker runs in non-quiesced mode: safety only, which must hold.
  ASSERT_TRUE(r.report.ok) << r.report.violations[0];
  EXPECT_GT(r.report.delivery_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Loss, LossSweep,
    testing::Combine(testing::Values(Protocol::kBaseCast, Protocol::kFastCast,
                                     Protocol::kMultiPaxos),
                     testing::Values(0.05, 0.2)));

}  // namespace
}  // namespace fastcast::harness
