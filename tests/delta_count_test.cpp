// Empirical δ-accounting: measures the paper's time-complexity claims from
// recorded message spans instead of asserting them on paper.
//
// Setup: every link has a constant one-way delay δ with zero jitter and
// nodes process messages in zero time (CpuModel{0,0}), so the interval
// from amulticast to a-delivery is an exact integer multiple of δ. The
// tracer divides each interval by δ; the tests assert the quotients the
// algorithms promise:
//   FastCast  — global messages 4δ (fast path), local messages 3δ;
//   BaseCast  — global messages 6δ;
//   FastCast with the fast path disabled — strictly worse than 4δ.

#include <gtest/gtest.h>

#include "fastcast/harness/experiment.hpp"
#include "fastcast/sim/latency.hpp"

namespace fastcast::harness {
namespace {

constexpr Duration kDelta = milliseconds(10);

/// Jitter-free uniform-δ run: one client, `groups` groups, destinations
/// chosen by `dst`, spans traced for δ-accounting.
obs::DeltaSummary run_delta(Protocol proto, std::size_t groups, DstPicker dst) {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kEmulatedWan;  // only picks defaults we override
  cfg.topo.groups = groups;
  cfg.topo.clients = 1;
  cfg.topo.protocol = proto;
  cfg.dst_factory = same_dst_for_all(std::move(dst));
  cfg.latency_factory = [](const Membership*) {
    return std::make_unique<sim::ConstantLatency>(kDelta, /*jitter_frac=*/0.0);
  };
  cfg.cpu_override = sim::CpuModel{0, 0};
  cfg.warmup = milliseconds(0);
  cfg.measure = milliseconds(400);
  cfg.trace = true;
  cfg.delta = kDelta;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_TRUE(r.report.ok);
  return r.delta_summary;
}

/// The summary class for `dst_groups`-destination deliveries; fails the
/// test if the run produced none.
const obs::DeltaSummary::Class& class_of(const obs::DeltaSummary& sum,
                                         std::uint32_t dst_groups) {
  for (const auto& c : sum.classes) {
    if (c.dst_groups == dst_groups) return c;
  }
  ADD_FAILURE() << "no deliveries with dst_groups=" << dst_groups << "\n"
                << sum.to_string();
  static const obs::DeltaSummary::Class kEmpty{};
  return kEmpty;
}

TEST(DeltaCount, FastCastGlobalMessagesTakeFourDelta) {
  const auto sum = run_delta(Protocol::kFastCast, 2, all_groups(2));
  EXPECT_EQ(sum.unmatched, 0u);
  const auto& global = class_of(sum, 2);
  ASSERT_GT(global.samples, 10u);
  EXPECT_DOUBLE_EQ(global.min_hops, 4.0) << sum.to_string();
  EXPECT_DOUBLE_EQ(global.max_hops, 4.0) << sum.to_string();
}

TEST(DeltaCount, FastCastLocalMessagesTakeThreeDelta) {
  const auto sum = run_delta(Protocol::kFastCast, 2, fixed_group(0));
  const auto& local = class_of(sum, 1);
  ASSERT_GT(local.samples, 10u);
  EXPECT_DOUBLE_EQ(local.min_hops, 3.0) << sum.to_string();
  EXPECT_DOUBLE_EQ(local.max_hops, 3.0) << sum.to_string();
}

TEST(DeltaCount, BaseCastGlobalMessagesTakeSixDelta) {
  const auto sum = run_delta(Protocol::kBaseCast, 2, all_groups(2));
  const auto& global = class_of(sum, 2);
  ASSERT_GT(global.samples, 10u);
  EXPECT_DOUBLE_EQ(global.min_hops, 6.0) << sum.to_string();
  EXPECT_DOUBLE_EQ(global.max_hops, 6.0) << sum.to_string();
}

TEST(DeltaCount, ForcedSlowPathIsWorseThanFastPath) {
  const auto sum = run_delta(Protocol::kFastCastSlowPath, 2, all_groups(2));
  const auto& global = class_of(sum, 2);
  ASSERT_GT(global.samples, 10u);
  EXPECT_GT(global.min_hops, 4.0) << sum.to_string();
}

TEST(DeltaCount, FourGroupsStillFourDelta) {
  // The fast path's 4δ is independent of the destination count.
  const auto sum = run_delta(Protocol::kFastCast, 4, all_groups(4));
  const auto& global = class_of(sum, 4);
  ASSERT_GT(global.samples, 5u);
  EXPECT_DOUBLE_EQ(global.min_hops, 4.0) << sum.to_string();
  EXPECT_DOUBLE_EQ(global.max_hops, 4.0) << sum.to_string();
}

}  // namespace
}  // namespace fastcast::harness
