// Harness unit tests: metrics windows, destination pickers, topology
// builders, table rendering.

#include <gtest/gtest.h>

#include <set>

#include "fastcast/harness/experiment.hpp"
#include "fastcast/harness/table.hpp"

namespace fastcast::harness {
namespace {

TEST(Metrics, WindowFiltersCompletions) {
  Metrics m;
  m.open_window(milliseconds(100), milliseconds(200), milliseconds(10));
  m.note_completion(milliseconds(40), milliseconds(50));    // before window
  m.note_completion(milliseconds(140), milliseconds(150));  // inside
  m.note_completion(milliseconds(190), milliseconds(210));  // completes after
  EXPECT_EQ(m.latency().count(), 1u);
  EXPECT_EQ(m.latency().median(), milliseconds(10));
  EXPECT_EQ(m.completions_total(), 3u);
}

TEST(Metrics, SliceCountsFeedThroughput) {
  Metrics m;
  m.open_window(0, seconds(1), milliseconds(100));
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 5; ++j) {
      const Time t = milliseconds(100) * i + milliseconds(10) * (j + 1);
      m.note_completion(t - milliseconds(5), t);
    }
  }
  const auto tput = m.throughput();
  EXPECT_EQ(tput.total, 50u);
  EXPECT_NEAR(tput.mean_per_sec, 50.0, 1e-6);
  EXPECT_NEAR(tput.ci95_per_sec, 0.0, 1e-9);  // perfectly even slices
}

TEST(Metrics, ClosedWindowIgnoresCompletions) {
  Metrics m;
  m.open_window(0, seconds(1), milliseconds(100));
  m.close_window();
  m.note_completion(0, milliseconds(10));
  EXPECT_EQ(m.latency().count(), 0u);
}

TEST(DstPickers, FixedGroup) {
  Rng rng(1);
  auto p = fixed_group(3);
  EXPECT_EQ(p(rng), (std::vector<GroupId>{3}));
}

TEST(DstPickers, AllGroups) {
  Rng rng(1);
  auto p = all_groups(4);
  EXPECT_EQ(p(rng), (std::vector<GroupId>{0, 1, 2, 3}));
}

TEST(DstPickers, RandomSubsetIsSortedUniqueAndSizedK) {
  Rng rng(5);
  auto p = random_subset(16, 5);
  std::set<std::vector<GroupId>> distinct;
  for (int i = 0; i < 200; ++i) {
    const auto dst = p(rng);
    ASSERT_EQ(dst.size(), 5u);
    for (std::size_t j = 1; j < dst.size(); ++j) ASSERT_LT(dst[j - 1], dst[j]);
    for (GroupId g : dst) ASSERT_LT(g, 16u);
    distinct.insert(dst);
  }
  EXPECT_GT(distinct.size(), 50u);  // actually random
}

TEST(DstPickers, RandomSubsetFullSize) {
  Rng rng(5);
  auto p = random_subset(4, 4);
  EXPECT_EQ(p(rng), (std::vector<GroupId>{0, 1, 2, 3}));
}

TEST(Topology, LanPlacesEverythingInOneRegion) {
  TopologyConfig cfg;
  cfg.env = Environment::kLan;
  cfg.groups = 2;
  cfg.clients = 3;
  const auto d = build_deployment(cfg);
  for (NodeId n : d.membership.all_nodes()) {
    EXPECT_EQ(d.membership.region_of(n), 0u);
  }
  EXPECT_EQ(d.ordering_group, kNoGroup);
  EXPECT_EQ(d.clients.size(), 3u);
}

TEST(Topology, WanSpreadsReplicasAcrossRegionsPerFig2) {
  TopologyConfig cfg;
  cfg.env = Environment::kEmulatedWan;
  cfg.groups = 16;
  cfg.clients = 6;
  const auto d = build_deployment(cfg);
  for (GroupId g = 0; g < 16; ++g) {
    const auto& members = d.membership.members(g);
    ASSERT_EQ(members.size(), 3u);
    EXPECT_EQ(d.membership.region_of(members[0]), 0u);  // leader in R1
    EXPECT_EQ(d.membership.region_of(members[1]), 1u);
    EXPECT_EQ(d.membership.region_of(members[2]), 2u);
  }
  // Clients round-robin over regions; the first is co-located with leaders.
  EXPECT_EQ(d.membership.region_of(d.clients[0]), 0u);
  EXPECT_EQ(d.membership.region_of(d.clients[1]), 1u);
  EXPECT_EQ(d.membership.region_of(d.clients[2]), 2u);
}

TEST(Topology, MultiPaxosGetsDedicatedOrderingGroup) {
  TopologyConfig cfg;
  cfg.protocol = Protocol::kMultiPaxos;
  cfg.groups = 4;
  const auto d = build_deployment(cfg);
  EXPECT_EQ(d.ordering_group, 4u);
  EXPECT_EQ(d.membership.group_count(), 5u);
}

TEST(Topology, CpuPresetsOrdering) {
  EXPECT_GT(cpu_for(Environment::kLan).per_message,
            cpu_for(Environment::kRealWan).per_message);
  EXPECT_EQ(cpu_for(Environment::kLan).per_message,
            cpu_for(Environment::kEmulatedWan).per_message);
}

TEST(Table, RendersAlignedColumnsAndNote) {
  Table t("Latency", {"protocol", "ms"});
  t.add_row({"FastCast", "84.0"});
  t.add_row({"BaseCast", "163.0"});
  const std::string s = t.to_string("median over 3 runs");
  EXPECT_NE(s.find("== Latency"), std::string::npos);
  EXPECT_NE(s.find("protocol"), std::string::npos);
  EXPECT_NE(s.find("FastCast"), std::string::npos);
  EXPECT_NE(s.find("note: median over 3 runs"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_count(1234567.0), "1,234,567");
  EXPECT_EQ(fmt_count(999.0), "999");
}

TEST(Experiment, ReportsPathStatsOnlyForFastCast) {
  ExperimentConfig cfg;
  cfg.topo.groups = 2;
  cfg.topo.clients = 1;
  cfg.topo.protocol = Protocol::kBaseCast;
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  cfg.warmup = milliseconds(10);
  cfg.measure = milliseconds(50);
  const auto r = run_experiment(cfg);
  EXPECT_EQ(r.fast_path_hits, 0u);
  EXPECT_EQ(r.slow_path_hits, 0u);
}

TEST(Experiment, DeterministicForFixedSeed) {
  auto run = [](std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.topo.groups = 2;
    cfg.topo.clients = 4;
    cfg.topo.protocol = Protocol::kFastCast;
    cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
    cfg.warmup = milliseconds(10);
    cfg.measure = milliseconds(100);
    cfg.seed = seed;
    const auto r = run_experiment(cfg);
    return std::make_tuple(r.latency.count(), r.latency.median(),
                           r.report.delivery_count, r.messages_sent);
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));  // some field differs under different jitter
}

}  // namespace
}  // namespace fastcast::harness
