// FastCast-specific behaviour: the fast path's 4δ latency, Task-6
// matching, guess accuracy, the forced-slow-path ablation, and equivalence
// of delivered orders with BaseCast semantics.

#include <gtest/gtest.h>

#include "fastcast/harness/experiment.hpp"

namespace fastcast::harness {
namespace {

ExperimentConfig wan_config(Protocol proto, std::size_t groups, std::size_t clients) {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kEmulatedWan;
  cfg.topo.groups = groups;
  cfg.topo.clients = clients;
  cfg.topo.protocol = proto;
  cfg.warmup = milliseconds(300);
  cfg.measure = seconds(2);
  cfg.check_level = Checker::Level::kFull;
  return cfg;
}

TEST(FastCast, FourDeltaFastPathInWan) {
  // Fast path ≈ 1 RTT (two of the four delays are intra-region), versus
  // BaseCast's ≈ 2 RTT — Proposition 2.
  auto cfg = wan_config(Protocol::kFastCast, 2, 1);
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  const auto r = run_experiment(cfg);
  ASSERT_GT(r.latency.count(), 10u);
  EXPECT_GT(to_milliseconds(r.latency.median()), 55.0);
  EXPECT_LT(to_milliseconds(r.latency.median()), 95.0);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
  EXPECT_GT(r.fast_path_hits, 0u);
  EXPECT_EQ(r.slow_path_hits, 0u);  // quiet run: every guess matches
}

TEST(FastCast, FastPathHoldsUpTo16Groups) {
  for (std::size_t g : {4, 16}) {
    auto cfg = wan_config(Protocol::kFastCast, g, 1);
    cfg.dst_factory = same_dst_for_all(all_groups(g));
    const auto r = run_experiment(cfg);
    ASSERT_GT(r.latency.count(), 10u) << g << " groups";
    EXPECT_LT(to_milliseconds(r.latency.median()), 100.0) << g << " groups";
    EXPECT_TRUE(r.report.ok) << g << " groups";
  }
}

TEST(FastCast, ForcedSlowPathFallsBackToSixDelta) {
  auto cfg = wan_config(Protocol::kFastCastSlowPath, 2, 1);
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  const auto r = run_experiment(cfg);
  ASSERT_GT(r.latency.count(), 5u);
  EXPECT_GT(to_milliseconds(r.latency.median()), 120.0);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
  EXPECT_EQ(r.fast_path_hits, 0u);  // wrong guesses never match
  EXPECT_GT(r.slow_path_hits, 0u);
}

TEST(FastCast, ForcedSlowPathStillSatisfiesAllProperties) {
  auto cfg = wan_config(Protocol::kFastCastSlowPath, 3, 6);
  cfg.topo.env = Environment::kLan;
  cfg.warmup = milliseconds(10);
  cfg.measure = milliseconds(200);
  cfg.dst_factory = same_dst_for_all(random_subset(3, 2));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
}

TEST(FastCast, LocalMessagesTakeThreeDeltas) {
  auto cfg = wan_config(Protocol::kFastCast, 2, 1);
  cfg.dst_factory = same_dst_for_all(fixed_group(1));
  const auto r = run_experiment(cfg);
  ASSERT_GT(r.latency.count(), 10u);
  EXPECT_LT(to_milliseconds(r.latency.median()), 90.0);  // 1 consensus ≈ 1 RTT
  EXPECT_EQ(r.fast_path_hits, 0u);  // the fast path only exists for globals
}

TEST(FastCast, GuessesMatchInQuietRuns) {
  auto cfg = wan_config(Protocol::kFastCast, 2, 1);
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  Cluster cluster(cfg);
  cluster.start();
  cluster.stop_clients(seconds(1));
  ASSERT_TRUE(cluster.simulator().run_to_idle(seconds(60)));
  std::uint64_t guesses = 0, mismatches = 0;
  for (NodeId n : cluster.deployment().membership.all_replicas()) {
    if (auto* fc = dynamic_cast<FastCast*>(&cluster.replica(n).protocol())) {
      guesses += fc->guesses_sent();
      mismatches += fc->guess_mismatches();
    }
  }
  EXPECT_GT(guesses, 10u);
  EXPECT_EQ(mismatches, 0u);
}

TEST(FastCast, ConcurrentClientsMostlyFastPath) {
  auto cfg = wan_config(Protocol::kFastCast, 2, 8);
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
  // Under moderate concurrency the leader's batch-order guesses still
  // track the decision order: most SYNC-HARDs match via Task 6.
  EXPECT_GT(r.fast_path_hits, r.slow_path_hits);
}

TEST(FastCast, SlowPathCorrectnessUnderConcurrency) {
  auto cfg = wan_config(Protocol::kFastCastSlowPath, 4, 8);
  cfg.dst_factory = same_dst_for_all(random_subset(4, 2));
  cfg.measure = seconds(1);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
  EXPECT_EQ(r.fast_path_hits, 0u);
}

TEST(FastCast, FastAndSlowPathsDeliverConsistentCrossGroupOrders) {
  // Run the same workload twice — fast path on and forced slow — and check
  // both produce property-clean histories (the orders themselves may
  // differ; atomic multicast does not fix a unique order).
  for (Protocol proto : {Protocol::kFastCast, Protocol::kFastCastSlowPath}) {
    auto cfg = wan_config(proto, 3, 4);
    cfg.topo.env = Environment::kLan;
    cfg.warmup = milliseconds(10);
    cfg.measure = milliseconds(150);
    cfg.seed = 99;
    cfg.dst_factory = same_dst_for_all(random_subset(3, 2));
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.report.ok) << to_string(proto);
  }
}

TEST(FastCast, EagerHardProposalModeIsEquallyCorrect) {
  // The Algorithm-2-verbatim variant (no SYNC-HARD deferral) must satisfy
  // the same properties; only performance differs (see bench/ablations).
  auto cfg = wan_config(Protocol::kFastCast, 3, 6);
  cfg.topo.env = Environment::kLan;
  cfg.warmup = milliseconds(10);
  cfg.measure = milliseconds(200);
  cfg.fastcast_eager_hard = true;
  cfg.dst_factory = same_dst_for_all(random_subset(3, 2));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
  EXPECT_GT(r.fast_path_hits, 0u);
}

TEST(FastCast, SoftClockNeverTrailsHardClock) {
  auto cfg = wan_config(Protocol::kFastCast, 2, 4);
  cfg.topo.env = Environment::kLan;
  cfg.warmup = milliseconds(10);
  cfg.measure = milliseconds(150);
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  Cluster cluster(cfg);
  cluster.start();
  cluster.stop_clients(milliseconds(160));
  ASSERT_TRUE(cluster.simulator().run_to_idle(seconds(30)));
  for (NodeId n : cluster.deployment().membership.all_replicas()) {
    auto* fc = dynamic_cast<FastCast*>(&cluster.replica(n).protocol());
    ASSERT_NE(fc, nullptr);
    if (fc->guesses_sent() > 0) {  // only the leader advances CS
      EXPECT_GE(fc->soft_clock(), fc->hard_clock());
    }
  }
}

}  // namespace
}  // namespace fastcast::harness
