// FIFO reliable multicast tests: FIFO order, dedup, validity, relaying on
// origin crash, retransmission over lossy links.

#include <gtest/gtest.h>

#include "fastcast/rmcast/reliable_multicast.hpp"
#include "fastcast/sim/simulator.hpp"

namespace fastcast {
namespace {

using sim::ConstantLatency;
using sim::SimConfig;
using sim::Simulator;

/// Test node hosting one ReliableMulticast endpoint.
class RmNode : public Process {
 public:
  explicit RmNode(RmConfig cfg = {}) : rm(cfg) {
    rm.set_deliver([this](Context&, NodeId origin, const AmcastPayload& p) {
      deliveries.push_back({origin, std::get<AmStart>(p).msg.id});
    });
  }

  void on_start(Context& ctx) override {
    rm.on_start(ctx);
    if (start_hook) start_hook(ctx);
  }
  void on_message(Context& ctx, NodeId from, const Message& msg) override {
    EXPECT_TRUE(rm.handle(ctx, from, msg)) << "unexpected message";
  }

  static AmcastPayload payload(NodeId sender, std::uint32_t seq) {
    MulticastMessage m;
    m.id = make_msg_id(sender, seq);
    m.sender = sender;
    m.dst = {0};
    m.payload = "x";
    return AmStart{m};
  }

  ReliableMulticast rm;
  std::function<void(Context&)> start_hook;
  std::vector<std::pair<NodeId, MsgId>> deliveries;
};

/// 2 groups of 3 plus one client (node 6).
Membership standard_membership() {
  Membership m;
  m.add_group(3, {0, 0, 0});
  m.add_group(3, {0, 0, 0});
  m.add_client(0);
  return m;
}

struct Fixture {
  explicit Fixture(RmConfig cfg = {}, SimConfig sim_cfg = {})
      : membership(standard_membership()),
        sim(membership, std::make_unique<ConstantLatency>(milliseconds(1), 0.05),
            sim_cfg) {
    for (NodeId n = 0; n < 7; ++n) {
      nodes.push_back(std::make_shared<RmNode>(cfg));
      sim.add_process(n, nodes.back());
    }
  }
  Membership membership;
  Simulator sim;
  std::vector<std::shared_ptr<RmNode>> nodes;
};

TEST(ReliableMulticast, DeliversToEveryDestinationGroupMember) {
  Fixture f;
  f.nodes[6]->start_hook = [&f](Context& ctx) {
    f.nodes[6]->rm.multicast(ctx, {0, 1}, RmNode::payload(6, 0));
  };
  f.sim.start();
  f.sim.run_to_idle();
  for (NodeId n = 0; n < 6; ++n) {
    ASSERT_EQ(f.nodes[n]->deliveries.size(), 1u) << "node " << n;
    EXPECT_EQ(f.nodes[n]->deliveries[0].second, make_msg_id(6, 0));
  }
  EXPECT_TRUE(f.nodes[6]->deliveries.empty());  // client is not a destination
}

TEST(ReliableMulticast, FifoOrderPerOrigin) {
  Fixture f;
  f.nodes[6]->start_hook = [&f](Context& ctx) {
    for (std::uint32_t i = 0; i < 50; ++i) {
      f.nodes[6]->rm.multicast(ctx, {0}, RmNode::payload(6, i));
    }
  };
  f.sim.start();
  f.sim.run_to_idle();
  for (NodeId n = 0; n < 3; ++n) {
    ASSERT_EQ(f.nodes[n]->deliveries.size(), 50u);
    for (std::uint32_t i = 0; i < 50; ++i) {
      EXPECT_EQ(f.nodes[n]->deliveries[i].second, make_msg_id(6, i));
    }
  }
}

TEST(ReliableMulticast, FifoHoldsAcrossDifferentDestinationSets) {
  // Interleave sends to {0}, {1}, {0,1}; each receiver must see its subset
  // in send order.
  Fixture f;
  f.nodes[6]->start_hook = [&f](Context& ctx) {
    auto& rm = f.nodes[6]->rm;
    rm.multicast(ctx, {0}, RmNode::payload(6, 0));
    rm.multicast(ctx, {1}, RmNode::payload(6, 1));
    rm.multicast(ctx, {0, 1}, RmNode::payload(6, 2));
    rm.multicast(ctx, {1}, RmNode::payload(6, 3));
    rm.multicast(ctx, {0}, RmNode::payload(6, 4));
  };
  f.sim.start();
  f.sim.run_to_idle();
  for (NodeId n = 0; n < 3; ++n) {
    std::vector<MsgId> got;
    for (auto& d : f.nodes[n]->deliveries) got.push_back(d.second);
    EXPECT_EQ(got, (std::vector<MsgId>{make_msg_id(6, 0), make_msg_id(6, 2),
                                       make_msg_id(6, 4)}));
  }
  for (NodeId n = 3; n < 6; ++n) {
    std::vector<MsgId> got;
    for (auto& d : f.nodes[n]->deliveries) got.push_back(d.second);
    EXPECT_EQ(got, (std::vector<MsgId>{make_msg_id(6, 1), make_msg_id(6, 2),
                                       make_msg_id(6, 3)}));
  }
}

TEST(ReliableMulticast, TwoOriginsIndependentFifoStreams) {
  Fixture f;
  f.nodes[0]->start_hook = [&f](Context& ctx) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      f.nodes[0]->rm.multicast(ctx, {1}, RmNode::payload(0, i));
    }
  };
  f.nodes[6]->start_hook = [&f](Context& ctx) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      f.nodes[6]->rm.multicast(ctx, {1}, RmNode::payload(6, i));
    }
  };
  f.sim.start();
  f.sim.run_to_idle();
  for (NodeId n = 3; n < 6; ++n) {
    std::uint32_t next0 = 0, next6 = 0;
    for (auto& [origin, mid] : f.nodes[n]->deliveries) {
      if (origin == 0) EXPECT_EQ(mid, make_msg_id(0, next0++));
      if (origin == 6) EXPECT_EQ(mid, make_msg_id(6, next6++));
    }
    EXPECT_EQ(next0, 10u);
    EXPECT_EQ(next6, 10u);
  }
}

TEST(ReliableMulticast, LossyLinksStillDeliverWithRetransmission) {
  RmConfig cfg;
  cfg.reliable_links = false;
  cfg.retransmit_interval = milliseconds(10);
  SimConfig sim_cfg;
  sim_cfg.drop_probability = 0.3;
  Fixture f(cfg, sim_cfg);
  f.nodes[6]->start_hook = [&f](Context& ctx) {
    for (std::uint32_t i = 0; i < 20; ++i) {
      f.nodes[6]->rm.multicast(ctx, {0, 1}, RmNode::payload(6, i));
    }
  };
  f.sim.start();
  f.sim.run_until(seconds(5));
  for (NodeId n = 0; n < 6; ++n) {
    ASSERT_EQ(f.nodes[n]->deliveries.size(), 20u) << "node " << n;
    for (std::uint32_t i = 0; i < 20; ++i) {
      EXPECT_EQ(f.nodes[n]->deliveries[i].second, make_msg_id(6, i));
    }
  }
}

TEST(ReliableMulticast, RelayCoversOriginCrashMidMulticast) {
  // The origin's copies to group 1 are cut by a partition just after the
  // copies to group 0 leave; with Relay::kSelf the group-0 receivers relay
  // and group 1 still delivers (non-uniform agreement).
  RmConfig cfg;
  cfg.relay = RmConfig::Relay::kSelf;
  Fixture f(cfg);
  f.nodes[6]->start_hook = [&f](Context& ctx) {
    f.nodes[6]->rm.multicast(ctx, {0, 1}, RmNode::payload(6, 0));
  };
  // Drop the origin's copies to nodes 3..5 (group 1); relays are allowed.
  f.sim.set_link_filter([](NodeId from, NodeId to, Time) {
    return !(from == 6 && to >= 3 && to <= 5);
  });
  f.sim.start();
  f.sim.run_to_idle();
  for (NodeId n = 0; n < 6; ++n) {
    ASSERT_EQ(f.nodes[n]->deliveries.size(), 1u) << "node " << n;
  }
}

TEST(ReliableMulticast, NoDuplicateDeliveriesUnderRelaying) {
  RmConfig cfg;
  cfg.relay = RmConfig::Relay::kSelf;
  Fixture f(cfg);
  f.nodes[6]->start_hook = [&f](Context& ctx) {
    for (std::uint32_t i = 0; i < 10; ++i) {
      f.nodes[6]->rm.multicast(ctx, {0, 1}, RmNode::payload(6, i));
    }
  };
  f.sim.start();
  f.sim.run_to_idle();
  for (NodeId n = 0; n < 6; ++n) {
    EXPECT_EQ(f.nodes[n]->deliveries.size(), 10u) << "node " << n;
  }
}

TEST(ReliableMulticast, SelfDeliveryWhenOriginIsDestination) {
  Fixture f;
  f.nodes[0]->start_hook = [&f](Context& ctx) {
    f.nodes[0]->rm.multicast(ctx, {0}, RmNode::payload(0, 0));
  };
  f.sim.start();
  f.sim.run_to_idle();
  ASSERT_EQ(f.nodes[0]->deliveries.size(), 1u);
  EXPECT_EQ(f.nodes[0]->deliveries[0].first, 0u);
}

TEST(ReliableMulticast, HoldbackBuffersOutOfOrderArrival) {
  // Send two messages; partition delays the first copy so the second
  // arrives first and must be held back.
  Fixture f;
  f.nodes[6]->start_hook = [&f](Context& ctx) {
    f.nodes[6]->rm.multicast(ctx, {0}, RmNode::payload(6, 0));
    ctx.set_timer(milliseconds(5), [&f, &ctx] {
      f.nodes[6]->rm.multicast(ctx, {0}, RmNode::payload(6, 1));
    });
  };
  // Delay: drop seq-1 copies before t=2ms... instead block node 0 only.
  // Simpler: nothing to do — jitter cannot reorder by design here, so this
  // test exercises the holdback structurally via a filter that drops the
  // first transmission window to node 0.
  bool dropped_once = false;
  f.sim.set_link_filter([&dropped_once](NodeId from, NodeId to, Time) mutable {
    if (from == 6 && to == 0 && !dropped_once) {
      dropped_once = true;
      return false;
    }
    return true;
  });
  RmConfig lossy;
  (void)lossy;
  f.sim.start();
  f.sim.run_until(seconds(1));
  // Node 0 misses message 0 forever (no retransmission configured): it must
  // deliver nothing rather than deliver message 1 out of order.
  EXPECT_TRUE(f.nodes[0]->deliveries.empty());
  ASSERT_EQ(f.nodes[1]->deliveries.size(), 2u);
  EXPECT_GT(f.nodes[0]->rm.holdback_size(), 0u);
}

}  // namespace
}  // namespace fastcast
