// Randomized fault-campaign tests: seeded crash/recover windows, drop
// bursts and partitions over every protocol, checked against the five
// atomic-multicast properties (safety, non-quiesced).

#include <gtest/gtest.h>

#include "fastcast/harness/chaos.hpp"

namespace fastcast::harness {
namespace {

ChaosRunConfig campaign_config(Protocol proto, std::uint64_t seed) {
  ChaosRunConfig cfg;
  cfg.seed = seed;
  cfg.experiment.topo.env = Environment::kLan;
  cfg.experiment.topo.groups = 2;
  cfg.experiment.topo.clients = 4;
  cfg.experiment.topo.protocol = proto;
  cfg.experiment.warmup = milliseconds(20);
  cfg.experiment.measure = milliseconds(400);
  cfg.experiment.slice = milliseconds(20);
  cfg.experiment.check_level = Checker::Level::kFull;
  cfg.experiment.dst_factory = same_dst_for_all(random_subset(2, 2));
  // Recovery machinery on: lossy links arm retransmission/catch-up, and
  // heartbeats arm re-election so leader-targeted crashes fail over.
  cfg.experiment.drop_probability = 0.01;
  cfg.experiment.heartbeats = true;

  cfg.faults.crashes = 2;
  cfg.faults.leader_bias = 0.5;
  cfg.faults.min_downtime = milliseconds(40);
  cfg.faults.max_downtime = milliseconds(80);
  cfg.faults.drop_bursts = 1;
  cfg.faults.burst_drop_probability = 0.05;
  cfg.faults.min_burst = milliseconds(20);
  cfg.faults.max_burst = milliseconds(50);
  cfg.faults.partitions = 1;
  cfg.faults.min_partition = milliseconds(20);
  cfg.faults.max_partition = milliseconds(60);
  return cfg;
}

class ChaosCampaign : public ::testing::TestWithParam<Protocol> {};

TEST_P(ChaosCampaign, SafetyHoldsAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto cfg = campaign_config(GetParam(), seed);
    const ChaosRunResult result = run_chaos(cfg);
    ASSERT_TRUE(result.report.ok)
        << to_string(GetParam()) << " seed " << seed << "\n"
        << result.to_string() << "\nschedule:\n"
        << result.schedule.describe();
    EXPECT_GT(result.completions, 0u)
        << to_string(GetParam()) << " seed " << seed << " made no progress";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ChaosCampaign,
    ::testing::Values(Protocol::kBaseCast, Protocol::kFastCast,
                      Protocol::kMultiPaxos),
    [](const ::testing::TestParamInfo<Protocol>& info) -> std::string {
      switch (info.param) {
        case Protocol::kBaseCast: return "BaseCast";
        case Protocol::kFastCast: return "FastCast";
        case Protocol::kMultiPaxos: return "MultiPaxos";
        default: return "Other";
      }
    });

TEST(ChaosCampaign, FixedSeedSmokeReportsFaultAccounting) {
  const auto cfg = campaign_config(Protocol::kFastCast, 7);
  const ChaosRunResult result = run_chaos(cfg);
  ASSERT_TRUE(result.report.ok) << result.to_string();
  // The schedule injected real faults and every crash recovered; the
  // counters the runner reports must agree with that.
  EXPECT_GT(result.crashes, 0u);
  EXPECT_EQ(result.recoveries, result.crashes);
  EXPECT_GT(result.availability, 0.0);
  EXPECT_LE(result.availability, 1.0);
  // Determinism: the same seed reproduces the same schedule and verdict.
  const ChaosRunResult again = run_chaos(cfg);
  EXPECT_EQ(again.schedule.describe(), result.schedule.describe());
  EXPECT_EQ(again.completions, result.completions);
}

TEST(ChaosCampaign, FaultFreeFastCastGuessesPerfectly) {
  // Regression guard: on a fault-free LAN run the FastCast guess heuristic
  // must never miss — chaos-hardening changes must not perturb the fast
  // path. (Under faults, mismatches are expected and harmless.)
  ChaosRunConfig cfg = campaign_config(Protocol::kFastCast, 1);
  cfg.experiment.observe = true;
  cfg.experiment.drop_probability = 0.0;
  cfg.experiment.heartbeats = false;
  cfg.faults.crashes = 0;
  cfg.faults.drop_bursts = 0;
  cfg.faults.partitions = 0;
  const ChaosRunResult result = run_chaos(cfg);
  ASSERT_TRUE(result.report.ok) << result.to_string();
  EXPECT_EQ(result.crashes, 0u);
  EXPECT_GT(result.completions, 0u);
  const auto cfg2 = cfg;  // re-run for the counter (run_chaos owns the obs)
  Cluster cluster(cfg2.experiment);
  cluster.start();
  cluster.simulator().run_until(cfg2.experiment.warmup +
                                cfg2.experiment.measure);
  ASSERT_NE(cluster.observability(), nullptr);
  EXPECT_EQ(
      cluster.observability()->metrics.counter_value("fastcast.guess_mismatches"),
      0u);
}

}  // namespace
}  // namespace fastcast::harness
