// Integration tests for the genuine timestamp protocols on full clusters:
// BaseCast/FastCast deliver with all five atomic-multicast properties under
// mixed local/global workloads, in every environment.

#include <gtest/gtest.h>

#include <map>

#include "fastcast/harness/experiment.hpp"

namespace fastcast::harness {
namespace {

ExperimentConfig base_config(Protocol proto, std::size_t groups,
                             std::size_t clients) {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = groups;
  cfg.topo.clients = clients;
  cfg.topo.protocol = proto;
  cfg.warmup = milliseconds(10);
  cfg.measure = milliseconds(200);
  cfg.check_level = Checker::Level::kFull;
  return cfg;
}

TEST(BaseCast, LocalMessagesSingleGroup) {
  auto cfg = base_config(Protocol::kBaseCast, 1, 3);
  cfg.dst_factory = same_dst_for_all(fixed_group(0));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
  EXPECT_GT(r.latency.count(), 50u);
}

TEST(BaseCast, GlobalMessagesTwoGroups) {
  auto cfg = base_config(Protocol::kBaseCast, 2, 2);
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
}

TEST(BaseCast, MixedLocalAndGlobal) {
  auto cfg = base_config(Protocol::kBaseCast, 3, 6);
  cfg.dst_factory = [](std::size_t i) -> DstPicker {
    if (i % 2 == 0) return fixed_group(static_cast<GroupId>(i % 3));
    return random_subset(3, 2);
  };
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
}

TEST(BaseCast, SixDeltaLatencyForGlobalMessages) {
  // In the emulated WAN a global BaseCast message needs two consensus
  // rounds back-to-back ≈ 2 RTT ≈ 140 ms (Proposition 1's 6δ structure).
  auto cfg = base_config(Protocol::kBaseCast, 2, 1);
  cfg.topo.env = Environment::kEmulatedWan;
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  cfg.warmup = milliseconds(300);
  cfg.measure = seconds(2);
  const auto r = run_experiment(cfg);
  ASSERT_GT(r.latency.count(), 5u);
  EXPECT_GT(to_milliseconds(r.latency.median()), 120.0);
  EXPECT_LT(to_milliseconds(r.latency.median()), 170.0);
}

TEST(BaseCast, ThreeDeltaLatencyForLocalMessages) {
  // Local messages need one consensus: ≈ 1 RTT ≈ 70 ms in the WAN.
  auto cfg = base_config(Protocol::kBaseCast, 2, 1);
  cfg.topo.env = Environment::kEmulatedWan;
  cfg.dst_factory = same_dst_for_all(fixed_group(0));
  cfg.warmup = milliseconds(300);
  cfg.measure = seconds(2);
  const auto r = run_experiment(cfg);
  ASSERT_GT(r.latency.count(), 10u);
  EXPECT_GT(to_milliseconds(r.latency.median()), 55.0);
  EXPECT_LT(to_milliseconds(r.latency.median()), 90.0);
}

TEST(BaseCast, HardSendAllPolicyMatchesPseudocode) {
  auto cfg = base_config(Protocol::kBaseCast, 2, 2);
  cfg.hard_send = TimestampProtocolBase::Config::HardSend::kAll;
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
}

TEST(BaseCast, SerializedMessagesModeWorks) {
  // Every unicast goes through encode+decode — proves the protocols only
  // rely on what the wire format carries.
  auto cfg = base_config(Protocol::kBaseCast, 2, 2);
  cfg.serialize_messages = true;
  cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
}

TEST(BaseCast, ManyGroupsManyClients) {
  auto cfg = base_config(Protocol::kBaseCast, 8, 16);
  cfg.dst_factory = [](std::size_t) { return random_subset(8, 3); };
  cfg.measure = milliseconds(100);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
  EXPECT_GT(r.report.delivery_count, 0u);
}

TEST(AtomicMulticast, AllReplicasOfAGroupDeliverSameSequence) {
  auto cfg = base_config(Protocol::kFastCast, 2, 4);
  cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
  Cluster cluster(cfg);
  std::map<NodeId, std::vector<MsgId>> orders;
  for (NodeId n : cluster.deployment().membership.all_replicas()) {
    cluster.replica(n).add_observer(
        [&orders](Context& ctx, const MulticastMessage& m) {
          orders[ctx.self()].push_back(m.id);
        });
  }
  cluster.start();
  cluster.stop_clients(milliseconds(150));
  ASSERT_TRUE(cluster.simulator().run_to_idle(seconds(30)));
  EXPECT_EQ(orders[0], orders[1]);
  EXPECT_EQ(orders[0], orders[2]);
  EXPECT_EQ(orders[3], orders[4]);
  EXPECT_EQ(orders[3], orders[5]);
  EXPECT_FALSE(orders[0].empty());
  // Global messages appear in the same relative order across groups.
  EXPECT_EQ(orders[0], orders[3]);  // all messages here are global
}

TEST(AtomicMulticast, AcksComeFromEveryDestinationReplica) {
  auto cfg = base_config(Protocol::kBaseCast, 2, 1);
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  cfg.measure = milliseconds(50);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.report.ok);
  // 6 replicas deliver each message; the client counts only the first ack,
  // so latency samples == completed ops, deliveries == 6×.
  EXPECT_EQ(r.report.delivery_count % 6, 0u);
}

TEST(AtomicMulticast, HardClockMonotonicAcrossGroupMembers) {
  auto cfg = base_config(Protocol::kBaseCast, 2, 2);
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  Cluster cluster(cfg);
  cluster.start();
  cluster.stop_clients(milliseconds(100));
  ASSERT_TRUE(cluster.simulator().run_to_idle(seconds(30)));
  // After quiescence all members of a group have applied the same decided
  // tuples; their hard clocks must agree.
  for (GroupId g = 0; g < 2; ++g) {
    std::vector<Ts> clocks;
    for (NodeId n : cluster.deployment().membership.members(g)) {
      auto* proto =
          dynamic_cast<TimestampProtocolBase*>(&cluster.replica(n).protocol());
      ASSERT_NE(proto, nullptr);
      clocks.push_back(proto->hard_clock());
      EXPECT_EQ(proto->buffer().undelivered_count(), 0u);
    }
    EXPECT_EQ(clocks[0], clocks[1]);
    EXPECT_EQ(clocks[0], clocks[2]);
    EXPECT_GT(clocks[0], 0u);
  }
}

TEST(AtomicMulticast, DisjointDestinationsDoNotInterfere) {
  // Clients 0,1 target group 0; clients 2,3 target group 1. Genuine
  // protocols keep the groups independent — both make progress and the
  // checker holds.
  auto cfg = base_config(Protocol::kFastCast, 2, 4);
  cfg.dst_factory = [](std::size_t i) -> DstPicker {
    return fixed_group(static_cast<GroupId>(i / 2));
  };
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
}

}  // namespace
}  // namespace fastcast::harness
