// Failure-injection tests: replica crashes, leader crashes with
// re-election, partitions that heal, and sender crashes with relaying.

#include <gtest/gtest.h>

#include "fastcast/harness/experiment.hpp"

namespace fastcast::harness {
namespace {

ExperimentConfig faulty_config(Protocol proto) {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = 2;
  cfg.topo.clients = 4;
  cfg.topo.protocol = proto;
  cfg.warmup = milliseconds(10);
  cfg.measure = milliseconds(300);
  cfg.check_level = Checker::Level::kFull;
  return cfg;
}

TEST(Faults, FollowerCrashIsTransparent) {
  for (Protocol proto : {Protocol::kBaseCast, Protocol::kFastCast}) {
    auto cfg = faulty_config(proto);
    cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
    Cluster cluster(cfg);
    // Crash one follower in each group (nodes 1 and 4).
    cluster.simulator().schedule_crash(1, milliseconds(50));
    cluster.simulator().schedule_crash(4, milliseconds(80));
    cluster.checker().note_crashed(1);
    cluster.checker().note_crashed(4);
    cluster.start();
    cluster.stop_clients(milliseconds(310));
    const bool drained = cluster.simulator().run_to_idle(seconds(60));
    const auto report =
        cluster.checker().check(drained, Checker::Level::kFull);
    ASSERT_TRUE(report.ok) << to_string(proto) << ": " << report.violations[0];
    EXPECT_GT(report.delivery_count, 0u);
  }
}

TEST(Faults, LeaderCrashRecoversWithElection) {
  for (Protocol proto : {Protocol::kBaseCast, Protocol::kFastCast}) {
    auto cfg = faulty_config(proto);
    cfg.heartbeats = true;  // enable the failure detector / Ω oracle
    cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
    Cluster cluster(cfg);
    // Crash group 0's initial leader (node 0) mid-run.
    cluster.simulator().schedule_crash(0, milliseconds(60));
    cluster.checker().note_crashed(0);
    cluster.start();
    cluster.stop_clients(milliseconds(310));
    // Heartbeat timers never stop, so run a fixed grace then check safety
    // plus (manually) that post-crash messages still completed.
    cluster.simulator().run_until(seconds(4));
    const auto report = cluster.checker().check(false, Checker::Level::kFull);
    ASSERT_TRUE(report.ok) << to_string(proto) << ": " << report.violations[0];
    // Progress after the crash: total completions well beyond what could
    // have finished before t=60ms.
    EXPECT_GT(cluster.metrics().completions_total(), 50u) << to_string(proto);
    // Surviving members of group 0 agree on the leader (node 1).
    EXPECT_GT(report.delivery_count, 0u);
  }
}

TEST(Faults, MultiPaxosOrderingLeaderCrashRecovers) {
  auto cfg = faulty_config(Protocol::kMultiPaxos);
  cfg.heartbeats = true;
  cfg.drop_probability = 0.01;  // forces client retry machinery on
  cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
  Cluster cluster(cfg);
  // The ordering group is the extra group: its members are nodes 6..8.
  const auto& d = cluster.deployment();
  const NodeId ordering_leader =
      d.membership.members(d.ordering_group).front();
  cluster.simulator().schedule_crash(ordering_leader, milliseconds(60));
  cluster.checker().note_crashed(ordering_leader);
  cluster.start();
  cluster.stop_clients(milliseconds(310));
  cluster.simulator().run_until(seconds(6));
  const auto report = cluster.checker().check(false, Checker::Level::kFull);
  ASSERT_TRUE(report.ok) << report.violations[0];
  EXPECT_GT(cluster.metrics().completions_total(), 20u);
}

TEST(Faults, PartitionHealsAndDeliveryResumes) {
  for (Protocol proto :
       {Protocol::kBaseCast, Protocol::kFastCast, Protocol::kMultiPaxos}) {
    auto cfg = faulty_config(proto);
    cfg.drop_probability = 0.01;  // enables retransmission machinery
    cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
    Cluster cluster(cfg);
    // Cut group 0's leader (node 0) off from group 1 between 50 and 150 ms.
    cluster.simulator().set_link_filter([](NodeId from, NodeId to, Time at) {
      const bool involved = (from == 0 && to >= 3 && to <= 5) ||
                            (to == 0 && from >= 3 && from <= 5);
      if (!involved) return true;
      return at < milliseconds(50) || at > milliseconds(150);
    });
    cluster.start();
    cluster.stop_clients(milliseconds(310));
    cluster.simulator().run_until(seconds(6));
    const auto report = cluster.checker().check(false, Checker::Level::kFull);
    ASSERT_TRUE(report.ok) << to_string(proto) << ": " << report.violations[0];
    EXPECT_GT(cluster.metrics().completions_total(), 20u) << to_string(proto);
  }
}

TEST(Faults, CrashedFollowerRecoversAndRunContinues) {
  for (Protocol proto :
       {Protocol::kBaseCast, Protocol::kFastCast, Protocol::kMultiPaxos}) {
    auto cfg = faulty_config(proto);
    cfg.drop_probability = 0.01;  // catch-up/retransmission machinery on
    cfg.observe = true;
    cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
    Cluster cluster(cfg);
    // Node 1 (follower of group 0) is down between 50 and 150 ms, then
    // recovers and re-joins. It is a correct process over the whole run, so
    // it is NOT excluded from the checker.
    cluster.simulator().schedule_crash(1, milliseconds(50));
    cluster.simulator().schedule_recover(1, milliseconds(150));
    cluster.start();
    cluster.stop_clients(milliseconds(310));
    cluster.simulator().run_until(seconds(6));
    const auto report = cluster.checker().check(false, Checker::Level::kFull);
    ASSERT_TRUE(report.ok) << to_string(proto) << ": " << report.violations[0];
    EXPECT_GT(cluster.metrics().completions_total(), 20u) << to_string(proto);
    const auto obs = cluster.observability();
    ASSERT_NE(obs, nullptr);
    EXPECT_EQ(obs->metrics.counter_value("fault.crashes"), 1u);
    EXPECT_EQ(obs->metrics.counter_value("fault.recoveries"), 1u);
  }
}

TEST(Faults, CrashedLeaderRecoversAndRejoinsAsFollower) {
  for (Protocol proto : {Protocol::kBaseCast, Protocol::kFastCast}) {
    auto cfg = faulty_config(proto);
    cfg.heartbeats = true;        // failover to node 1 while 0 is down
    cfg.drop_probability = 0.01;  // recovery catch-up machinery on
    cfg.observe = true;
    cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
    Cluster cluster(cfg);
    cluster.simulator().schedule_crash(0, milliseconds(60));
    cluster.simulator().schedule_recover(0, milliseconds(250));
    cluster.start();
    cluster.stop_clients(milliseconds(310));
    cluster.simulator().run_until(seconds(6));
    const auto report = cluster.checker().check(false, Checker::Level::kFull);
    ASSERT_TRUE(report.ok) << to_string(proto) << ": " << report.violations[0];
    EXPECT_GT(cluster.metrics().completions_total(), 20u) << to_string(proto);
    const auto obs = cluster.observability();
    ASSERT_NE(obs, nullptr);
    // The deposed leader's comeback must have triggered a real failover.
    EXPECT_GE(obs->metrics.counter_value("paxos.leader_failovers"), 1u)
        << to_string(proto);
    EXPECT_EQ(obs->metrics.counter_value("fault.recoveries"), 1u);
  }
}

TEST(Faults, ClientCrashMidStreamLeavesSystemConsistent) {
  auto cfg = faulty_config(Protocol::kFastCast);
  cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
  Cluster cluster(cfg);
  const NodeId client0 = cluster.deployment().clients[0];
  cluster.simulator().schedule_crash(client0, milliseconds(40));
  cluster.checker().note_crashed(client0);
  cluster.start();
  cluster.stop_clients(milliseconds(310));
  const bool drained = cluster.simulator().run_to_idle(seconds(60));
  const auto report = cluster.checker().check(drained, Checker::Level::kFull);
  ASSERT_TRUE(report.ok) << report.violations[0];
}

TEST(Faults, RelayingToleratesSenderCrashForInFlightMessages) {
  // With Relay::kSelf, copies that already reached one group are forwarded
  // to the rest even if the origin dies — keeping rmcast agreement and so
  // amcast agreement (validity is excused for the crashed sender).
  auto cfg = faulty_config(Protocol::kBaseCast);
  cfg.relay = RmConfig::Relay::kSelf;
  cfg.dst_factory = same_dst_for_all(random_subset(2, 2));
  Cluster cluster(cfg);
  const NodeId client0 = cluster.deployment().clients[0];
  cluster.simulator().schedule_crash(client0, milliseconds(25));
  cluster.checker().note_crashed(client0);
  cluster.start();
  cluster.stop_clients(milliseconds(310));
  const bool drained = cluster.simulator().run_to_idle(seconds(60));
  const auto report = cluster.checker().check(drained, Checker::Level::kFull);
  ASSERT_TRUE(report.ok) << report.violations[0];
}

TEST(Faults, WholeDatacenterLossInWan) {
  // Fig. 2's resilience claim: with one replica per region, losing a whole
  // region (every node in R3) leaves every group with a quorum.
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kEmulatedWan;
  cfg.topo.groups = 3;
  cfg.topo.clients = 3;
  cfg.topo.protocol = Protocol::kFastCast;
  cfg.warmup = milliseconds(200);
  cfg.measure = seconds(1);
  cfg.check_level = Checker::Level::kFull;
  cfg.dst_factory = same_dst_for_all(random_subset(3, 2));
  Cluster cluster(cfg);
  const auto& m = cluster.deployment().membership;
  for (NodeId n : m.all_replicas()) {
    if (m.region_of(n) == 2) {
      cluster.simulator().schedule_crash(n, milliseconds(400));
      cluster.checker().note_crashed(n);
    }
  }
  cluster.start();
  cluster.stop_clients(milliseconds(1200));
  const bool drained = cluster.simulator().run_to_idle(seconds(120));
  const auto report = cluster.checker().check(drained, Checker::Level::kFull);
  ASSERT_TRUE(report.ok) << report.violations[0];
  EXPECT_GT(cluster.metrics().completions_total(), 10u);
}

}  // namespace
}  // namespace fastcast::harness
