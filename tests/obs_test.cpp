// Unit tests for the observability subsystem: the streaming JSON writer,
// the metrics registry, and the message-lifecycle tracer.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <thread>

#include "fastcast/obs/json.hpp"
#include "fastcast/obs/metrics.hpp"
#include "fastcast/obs/observability.hpp"
#include "fastcast/obs/trace.hpp"

namespace fastcast::obs {
namespace {

// --- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, CompactObject) {
  std::ostringstream out;
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.kv("a", 1);
  w.kv("b", "two");
  w.kv("c", true);
  w.end_object();
  EXPECT_EQ(out.str(), R"({"a":1,"b":"two","c":true})");
}

TEST(JsonWriter, NestedContainers) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_object();
  w.key("xs").begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.key("o").begin_object().kv("k", 4.5).end_object();
  w.end_object();
  EXPECT_EQ(out.str(), R"({"xs":[1,2,3],"o":{"k":4.5}})");
}

TEST(JsonWriter, StringEscaping) {
  std::ostringstream out;
  write_json_string(out, "a\"b\\c\n\t\x01");
  EXPECT_EQ(out.str(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter w(out, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(out.str(), "[null,null]");
}

TEST(JsonWriter, IndentedOutput) {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object().kv("a", 1).end_object();
  EXPECT_EQ(out.str(), "{\n  \"a\": 1\n}");
}

// --- MetricsRegistry -------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  reg.counter("x").inc();
  reg.counter("x").inc(4);
  EXPECT_EQ(reg.counter_value("x"), 5u);
  EXPECT_EQ(reg.counter_value("never-touched"), 0u);

  reg.gauge("g").set(7);
  reg.gauge("g").record_max(3);  // lower: ignored
  EXPECT_EQ(reg.gauge_value("g"), 7);
  reg.gauge("g").record_max(11);
  EXPECT_EQ(reg.gauge_value("g"), 11);
}

TEST(Metrics, ReferencesAreStable) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hot");
  for (int i = 0; i < 100; ++i) reg.counter("filler" + std::to_string(i));
  c.inc();
  EXPECT_EQ(reg.counter_value("hot"), 1u);
  EXPECT_EQ(&c, &reg.counter("hot"));
}

TEST(Metrics, MergeAddsCountersAndMaxesGauges) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("n").inc(2);
  b.counter("n").inc(3);
  b.counter("only-b").inc();
  a.gauge("depth").set(5);
  b.gauge("depth").set(4);
  a.merge_from(b);
  EXPECT_EQ(a.counter_value("n"), 5u);
  EXPECT_EQ(a.counter_value("only-b"), 1u);
  EXPECT_EQ(a.gauge_value("depth"), 5);
}

TEST(Metrics, WriteJsonShape) {
  MetricsRegistry reg;
  reg.counter("a.count").inc(2);
  reg.gauge("a.depth").set(-3);
  std::ostringstream out;
  reg.write_json(out, /*indent=*/0);
  EXPECT_EQ(
      out.str(),
      R"({"counters":{"a.count":2},"gauges":{"a.depth":-3},"histograms":{}})");
}

// --- Histogram -------------------------------------------------------------

TEST(Histogram, CountSumAndBuckets) {
  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006);
  // 0 and 1 share bucket 0; 2 is bucket 1; 3 rounds up to bucket 2 (≤4).
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(Histogram::bucket_bound(0), 1);
  EXPECT_EQ(Histogram::bucket_bound(10), 1024);
}

TEST(Histogram, PercentilesAreUpperBoundsOfRankBucket) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(100);    // bucket bound 128
  for (int i = 0; i < 10; ++i) h.observe(10000);  // bucket bound 16384
  EXPECT_EQ(h.percentile(50), 128);
  EXPECT_EQ(h.percentile(99), 16384);
  Histogram empty;
  EXPECT_EQ(empty.percentile(50), 0);
}

TEST(Histogram, MergeAddsBucketwise) {
  Histogram a;
  Histogram b;
  a.observe(5);
  b.observe(5);
  b.observe(500);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 510);
}

TEST(Metrics, RegistryHistogramsRoundTrip) {
  MetricsRegistry a;
  a.histogram("lat").observe(100);
  MetricsRegistry b;
  b.histogram("lat").observe(200);
  b.histogram("only-b").observe(1);
  a.merge_from(b);
  const auto snap = a.histograms();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.at("lat").count, 2u);
  EXPECT_EQ(snap.at("lat").sum, 300);
  EXPECT_EQ(snap.at("only-b").count, 1u);

  std::ostringstream out;
  a.write_json(out, 0);
  EXPECT_NE(out.str().find("\"histograms\""), std::string::npos);
  EXPECT_NE(out.str().find("\"lat\""), std::string::npos);
}

TEST(Metrics, ConcurrentIncrementsDoNotLoseCounts) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIncs = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter& c = reg.counter("shared");
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter_value("shared"), kThreads * kIncs);
}

// --- Tracer ----------------------------------------------------------------

TEST(Tracer, RecordsSpansPerMessage) {
  Tracer tr;
  const MsgId m = make_msg_id(7, 0);
  tr.record(m, SpanEventKind::kMcast, 7, kNoGroup, 100, /*aux=*/2);
  tr.record(m, SpanEventKind::kRdeliver, 0, 0, 200);
  tr.record(m, SpanEventKind::kAdeliver, 0, 0, 500, /*aux=*/2);
  tr.record(make_msg_id(8, 0), SpanEventKind::kMcast, 8, kNoGroup, 150, 1);

  EXPECT_EQ(tr.span_count(), 2u);
  EXPECT_EQ(tr.event_count(), 4u);
  EXPECT_EQ(tr.count(SpanEventKind::kMcast), 2u);
  EXPECT_EQ(tr.count(SpanEventKind::kAdeliver), 1u);

  const Span s = tr.span(m);
  ASSERT_EQ(s.events.size(), 3u);
  EXPECT_EQ(s.mcast_at(), 100);
  EXPECT_EQ(s.of_kind(SpanEventKind::kRdeliver).size(), 1u);
  EXPECT_EQ(tr.span(make_msg_id(99, 99)).events.size(), 0u);
}

TEST(Tracer, DeliveryDeltasDivideByDelta) {
  Tracer tr;
  const MsgId m = make_msg_id(5, 1);
  tr.record(m, SpanEventKind::kMcast, 5, kNoGroup, 1000, /*aux=*/2);
  tr.record(m, SpanEventKind::kAdeliver, 0, 0, 5000, /*aux=*/2);
  tr.record(m, SpanEventKind::kAdeliver, 3, 1, 4000, /*aux=*/2);

  const auto deltas = tr.delivery_deltas(/*delta=*/1000);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_DOUBLE_EQ(deltas[0].hops, 4.0);
  EXPECT_DOUBLE_EQ(deltas[1].hops, 3.0);
  EXPECT_EQ(deltas[0].dst_groups, 2u);
}

TEST(Tracer, SummarizeSplitsByDstGroupsAndCountsUnmatched) {
  Tracer tr;
  // One local (1 dst group) and one global (2 dst groups) message.
  const MsgId local = make_msg_id(1, 0);
  tr.record(local, SpanEventKind::kMcast, 1, kNoGroup, 0, 1);
  tr.record(local, SpanEventKind::kAdeliver, 0, 0, 3000, 1);
  const MsgId global = make_msg_id(1, 1);
  tr.record(global, SpanEventKind::kMcast, 1, kNoGroup, 0, 2);
  tr.record(global, SpanEventKind::kAdeliver, 0, 0, 4000, 2);
  tr.record(global, SpanEventKind::kAdeliver, 3, 1, 4000, 2);
  // An adeliver with no recorded mcast (message traced mid-run).
  tr.record(make_msg_id(2, 0), SpanEventKind::kAdeliver, 0, 0, 9000, 1);

  const DeltaSummary sum = tr.summarize(/*delta=*/1000);
  EXPECT_EQ(sum.deliveries, 3u);
  EXPECT_EQ(sum.unmatched, 1u);
  ASSERT_EQ(sum.classes.size(), 2u);
  EXPECT_EQ(sum.classes[0].dst_groups, 1u);
  EXPECT_DOUBLE_EQ(sum.classes[0].mean_hops, 3.0);
  EXPECT_EQ(sum.classes[1].dst_groups, 2u);
  EXPECT_EQ(sum.classes[1].samples, 2u);
  EXPECT_EQ(sum.classes[1].histogram.at(4), 2u);
  EXPECT_FALSE(sum.to_string().empty());
}

TEST(Tracer, DumpJsonAndClear) {
  Tracer tr;
  tr.record(make_msg_id(3, 7), SpanEventKind::kMcast, 3, kNoGroup, 42, 1);
  std::ostringstream out;
  tr.dump_json(out, 0);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"sender\":3"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"mcast\""), std::string::npos);

  tr.clear();
  EXPECT_EQ(tr.span_count(), 0u);
  EXPECT_EQ(tr.event_count(), 0u);
}

// --- Observability bundle --------------------------------------------------

TEST(Observability, TraceGateSkipsRecordingWhenOff) {
  Observability obs;
  obs.trace(make_msg_id(1, 0), SpanEventKind::kMcast, 1, kNoGroup, 0, 1);
  EXPECT_EQ(obs.tracer.span_count(), 0u);  // tracing defaults to off
  obs.tracing = true;
  obs.trace(make_msg_id(1, 0), SpanEventKind::kMcast, 1, kNoGroup, 0, 1);
  EXPECT_EQ(obs.tracer.span_count(), 1u);
}

}  // namespace
}  // namespace fastcast::obs
