// Checker self-tests: it must accept correct histories and flag each
// seeded violation class.

#include <gtest/gtest.h>

#include "fastcast/checker/checker.hpp"

namespace fastcast {
namespace {

Membership two_groups() {
  Membership m;
  m.add_group(3, {0, 0, 0});  // nodes 0..2
  m.add_group(3, {0, 0, 0});  // nodes 3..5
  m.add_client(0);            // node 6
  return m;
}

MulticastMessage msg(MsgId id, std::vector<GroupId> dst) {
  MulticastMessage m;
  m.id = id;
  m.sender = 6;
  m.dst = std::move(dst);
  return m;
}

struct CheckerTest : testing::Test {
  CheckerTest() : membership(two_groups()), checker(&membership) {}

  void deliver_to_group(GroupId g, MsgId mid) {
    for (NodeId n : membership.members(g)) checker.note_delivery(n, mid);
  }

  Membership membership;
  Checker checker;
};

TEST_F(CheckerTest, AcceptsCorrectHistory) {
  checker.note_multicast(msg(1, {0}));
  checker.note_multicast(msg(2, {0, 1}));
  deliver_to_group(0, 1);
  deliver_to_group(0, 2);
  deliver_to_group(1, 2);
  const auto r = checker.check(/*quiesced=*/true);
  EXPECT_TRUE(r.ok) << (r.violations.empty() ? "" : r.violations[0]);
  EXPECT_EQ(r.multicast_count, 2u);
  EXPECT_EQ(r.delivery_count, 9u);
}

TEST_F(CheckerTest, FlagsDuplicateDelivery) {
  checker.note_multicast(msg(1, {0}));
  deliver_to_group(0, 1);
  checker.note_delivery(0, 1);  // node 0 delivers twice
  const auto r = checker.check(false);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("integrity"), std::string::npos);
}

TEST_F(CheckerTest, FlagsDeliveryOfNeverMulticastMessage) {
  checker.note_delivery(0, 99);
  const auto r = checker.check(false);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("never-multicast"), std::string::npos);
}

TEST_F(CheckerTest, FlagsDeliveryOutsideDestination) {
  checker.note_multicast(msg(1, {0}));
  checker.note_delivery(3, 1);  // node 3 is in group 1, not addressed
  const auto r = checker.check(false);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("not addressed"), std::string::npos);
}

TEST_F(CheckerTest, FlagsOrderCycleAcrossGroups) {
  checker.note_multicast(msg(1, {0, 1}));
  checker.note_multicast(msg(2, {0, 1}));
  // Group 0 delivers 1 then 2; group 1 delivers 2 then 1.
  for (NodeId n : membership.members(0)) {
    checker.note_delivery(n, 1);
    checker.note_delivery(n, 2);
  }
  for (NodeId n : membership.members(1)) {
    checker.note_delivery(n, 2);
    checker.note_delivery(n, 1);
  }
  const auto r = checker.check(false);
  ASSERT_FALSE(r.ok);
  bool found = false;
  for (const auto& v : r.violations) {
    if (v.find("cycle") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(CheckerTest, FlagsCrosswisePrefixViolation) {
  checker.note_multicast(msg(1, {0, 1}));
  checker.note_multicast(msg(2, {0, 1}));
  // Node 0 delivered only 1; node 3 delivered only 2 — neither order can
  // ever satisfy prefix order.
  checker.note_delivery(0, 1);
  checker.note_delivery(3, 2);
  const auto r = checker.check(false, Checker::Level::kFull);
  ASSERT_FALSE(r.ok);
  bool found = false;
  for (const auto& v : r.violations) {
    if (v.find("prefix order") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(CheckerTest, CrosswiseCheckSkippedAtFastLevel) {
  checker.note_multicast(msg(1, {0, 1}));
  checker.note_multicast(msg(2, {0, 1}));
  checker.note_delivery(0, 1);
  checker.note_delivery(3, 2);
  const auto r = checker.check(false, Checker::Level::kFast);
  EXPECT_TRUE(r.ok);  // kFast deliberately skips the quadratic pass
}

TEST_F(CheckerTest, FlagsSameGroupDivergence) {
  checker.note_multicast(msg(1, {0}));
  checker.note_multicast(msg(2, {0}));
  checker.note_delivery(0, 1);
  checker.note_delivery(0, 2);
  checker.note_delivery(1, 2);  // node 1 diverges from node 0
  checker.note_delivery(1, 1);
  const auto r = checker.check(false);
  ASSERT_FALSE(r.ok);
}

TEST_F(CheckerTest, SameGroupPrefixAllowedWhileRunning) {
  checker.note_multicast(msg(1, {0}));
  checker.note_multicast(msg(2, {0}));
  checker.note_delivery(0, 1);
  checker.note_delivery(0, 2);
  checker.note_delivery(1, 1);  // node 1 simply lags
  EXPECT_TRUE(checker.check(/*quiesced=*/false).ok);
  EXPECT_FALSE(checker.check(/*quiesced=*/true).ok);  // must catch up by then
}

TEST_F(CheckerTest, FlagsAgreementMissWhenQuiesced) {
  checker.note_multicast(msg(1, {0, 1}));
  deliver_to_group(0, 1);  // group 1 never delivers
  const auto r = checker.check(true);
  ASSERT_FALSE(r.ok);
  bool found = false;
  for (const auto& v : r.violations) {
    if (v.find("agreement") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(CheckerTest, CrashedReplicaExcusedFromAgreement) {
  checker.note_multicast(msg(1, {0}));
  checker.note_delivery(0, 1);
  checker.note_delivery(1, 1);
  checker.note_crashed(2);  // node 2 crashed: it may miss the message
  EXPECT_TRUE(checker.check(true).ok);
}

TEST_F(CheckerTest, FlagsValidityViolation) {
  checker.note_multicast(msg(1, {0}));
  const auto r = checker.check(true);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.violations[0].find("validity"), std::string::npos);
}

TEST_F(CheckerTest, CrashedSenderExcusedFromValidity) {
  checker.note_multicast(msg(1, {0}));
  checker.note_crashed(6);  // the client
  EXPECT_TRUE(checker.check(true).ok);
}

TEST_F(CheckerTest, ValidityNotCheckedWhileRunning) {
  checker.note_multicast(msg(1, {0}));
  EXPECT_TRUE(checker.check(false).ok);
}

}  // namespace
}  // namespace fastcast
