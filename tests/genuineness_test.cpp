// Genuineness and message-minimality tests — the paper's defining
// properties of an efficient atomic multicast (§2.3 / related work [24]).
//
// Genuine (Guerraoui & Schiper): in any run, a process sends or receives
// messages only if it is the sender or a member of a destination group of
// some multicast message. We drive workloads whose destination sets never
// include certain groups and assert — by observing every unicast in the
// simulator — that those groups' replicas stay completely silent under
// BaseCast/FastCast, and provably do NOT under the MultiPaxos comparator.
//
// Message-minimality (Rodrigues et al.): protocol messages have size
// proportional to the number of destination *groups*, not to the total
// number of processes in the system.

#include <gtest/gtest.h>

#include <set>

#include "fastcast/harness/experiment.hpp"

namespace fastcast::harness {
namespace {

struct Traffic {
  std::set<NodeId> senders;
  std::set<NodeId> receivers;
  std::uint64_t total = 0;
};

/// Runs `proto` with 4 groups where every message targets groups {0, 1}
/// only, and records which nodes touch the network.
Traffic observe_traffic(Protocol proto) {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = 4;
  cfg.topo.clients = 2;
  cfg.topo.protocol = proto;
  cfg.warmup = milliseconds(5);
  cfg.measure = milliseconds(100);
  cfg.check_level = Checker::Level::kFull;
  cfg.dst_factory = same_dst_for_all(
      [](Rng&) { return std::vector<GroupId>{0, 1}; });

  Cluster cluster(cfg);
  Traffic traffic;
  cluster.simulator().set_send_observer(
      [&traffic](NodeId from, NodeId to, const Message&) {
        traffic.senders.insert(from);
        traffic.receivers.insert(to);
        ++traffic.total;
      });
  cluster.start();
  cluster.stop_clients(milliseconds(105));
  EXPECT_TRUE(cluster.simulator().run_to_idle(seconds(30)));
  EXPECT_TRUE(cluster.checker().check(true).ok);
  EXPECT_GT(cluster.metrics().completions_total(), 0u);
  return traffic;
}

TEST(Genuineness, TimestampProtocolsKeepUninvolvedGroupsSilent) {
  for (Protocol proto : {Protocol::kBaseCast, Protocol::kFastCast}) {
    const Traffic traffic = observe_traffic(proto);
    // Groups 2 and 3 (nodes 6..11) are never addressed: genuine protocols
    // must not involve them in any way.
    for (NodeId n = 6; n <= 11; ++n) {
      EXPECT_FALSE(traffic.senders.contains(n))
          << to_string(proto) << ": uninvolved node " << n << " sent";
      EXPECT_FALSE(traffic.receivers.contains(n))
          << to_string(proto) << ": uninvolved node " << n << " received";
    }
    // The involved groups obviously do communicate.
    EXPECT_TRUE(traffic.senders.contains(0));
    EXPECT_TRUE(traffic.senders.contains(3));
  }
}

TEST(Genuineness, MultiPaxosComparatorIsNotGenuine) {
  const Traffic traffic = observe_traffic(Protocol::kMultiPaxos);
  // The fixed ordering group (nodes 12..14, the extra group) orders every
  // message, and all replicas — including never-addressed groups 2 and 3 —
  // learn every decision: the defining non-genuine behaviour.
  bool uninvolved_touched = false;
  for (NodeId n = 6; n <= 11; ++n) {
    if (traffic.receivers.contains(n)) uninvolved_touched = true;
  }
  EXPECT_TRUE(uninvolved_touched)
      << "MultiPaxos unexpectedly behaved genuinely";
  EXPECT_TRUE(traffic.senders.contains(12));  // ordering group works
}

TEST(Genuineness, LocalTrafficStaysWithinItsGroup) {
  ExperimentConfig cfg;
  cfg.topo.env = Environment::kLan;
  cfg.topo.groups = 3;
  cfg.topo.clients = 1;
  cfg.topo.protocol = Protocol::kFastCast;
  cfg.warmup = milliseconds(5);
  cfg.measure = milliseconds(100);
  cfg.dst_factory = same_dst_for_all(fixed_group(1));
  Cluster cluster(cfg);
  std::set<NodeId> touched;
  cluster.simulator().set_send_observer(
      [&touched](NodeId from, NodeId to, const Message&) {
        touched.insert(from);
        touched.insert(to);
      });
  cluster.start();
  cluster.stop_clients(milliseconds(105));
  ASSERT_TRUE(cluster.simulator().run_to_idle(seconds(30)));
  // Only group 1 (nodes 3..5) and the client (node 9) may appear.
  for (NodeId n : touched) {
    EXPECT_TRUE((n >= 3 && n <= 5) || n == 9) << "node " << n << " involved";
  }
}

TEST(MessageMinimality, WireSizeGrowsWithGroupsNotProcesses) {
  // SEND-SOFT/SEND-HARD for k destination groups must not grow with the
  // number of processes per group beyond the 3-replicas-per-group factor
  // the rmcast envelope carries (size ∝ k, never ∝ |Π|).
  auto encoded_size = [](std::size_t k_groups) {
    std::vector<GroupId> dst(k_groups);
    std::vector<NodeId> dest_nodes(3 * k_groups);
    std::vector<std::uint64_t> dest_seqs(3 * k_groups, 1);
    for (std::size_t i = 0; i < k_groups; ++i) dst[i] = static_cast<GroupId>(i);
    for (std::size_t i = 0; i < dest_nodes.size(); ++i) {
      dest_nodes[i] = static_cast<NodeId>(i);
    }
    RmData d;
    d.origin = 0;
    d.seq = 1;
    d.dst_groups = dst;
    d.dest_nodes = dest_nodes;
    d.dest_seqs = dest_seqs;
    d.inner = AmSendHard{0, 42, make_msg_id(0, 1), dst};
    return encode_message(Message{d}).size();
  };
  const std::size_t s2 = encoded_size(2);
  const std::size_t s4 = encoded_size(4);
  const std::size_t s16 = encoded_size(16);
  // Linear in k: the 16-group frame is at most ~8x the 2-group frame plus
  // a constant, far below any |Π|-proportional blow-up.
  EXPECT_LT(s4, s2 * 2 + 16);
  EXPECT_LT(s16, s2 * 8 + 16);
}

TEST(MessageMinimality, ConsensusValueSizeProportionalToBatch) {
  std::vector<Tuple> one{{TupleKind::kSetHard, 0, 0, make_msg_id(1, 1), {0, 1}}};
  std::vector<Tuple> eight;
  for (int i = 0; i < 8; ++i) {
    eight.push_back({TupleKind::kSetHard, 0, 0,
                     make_msg_id(1, static_cast<std::uint32_t>(i)), {0, 1}});
  }
  EXPECT_LT(encode_tuples(eight).size(), encode_tuples(one).size() * 8 + 8);
}

}  // namespace
}  // namespace fastcast::harness
