// DeliveryBuffer ("B") unit tests: FINAL formation, the blocking guard,
// tie-breaking, placeholder handling, body stalls.

#include <gtest/gtest.h>

#include <algorithm>

#include "fastcast/amcast/delivery_buffer.hpp"

namespace fastcast {
namespace {

/// Minimal Context: the buffer only threads it through to callbacks.
class FakeContext final : public Context {
 public:
  FakeContext() {
    membership_.add_group(1, {0});
  }
  NodeId self() const override { return 0; }
  Time now() const override { return 0; }
  void send(NodeId, const Message&) override {}
  TimerId set_timer(Duration, std::function<void()>) override { return 1; }
  void cancel_timer(TimerId) override {}
  Rng& rng() override { return rng_; }
  const Membership& membership() const override { return membership_; }

 private:
  Rng rng_;
  Membership membership_;
};

MulticastMessage msg(MsgId id, std::vector<GroupId> dst) {
  MulticastMessage m;
  m.id = id;
  m.sender = 9;
  m.dst = std::move(dst);
  m.payload = "body";
  return m;
}

struct Fixture : testing::Test {
  void SetUp() override {
    buffer.set_deliver([this](Context&, const MulticastMessage& m) {
      delivered.push_back(m.id);
    });
  }
  FakeContext ctx;
  DeliveryBuffer buffer;
  std::vector<MsgId> delivered;
};

using DeliveryBufferTest = Fixture;

TEST_F(DeliveryBufferTest, LocalMessageDeliversOnSingleSyncHard) {
  buffer.store_body(ctx, msg(1, {0}));
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 5, 1);
  EXPECT_EQ(delivered, (std::vector<MsgId>{1}));
}

TEST_F(DeliveryBufferTest, GlobalMessageWaitsForAllGroups) {
  buffer.store_body(ctx, msg(1, {0, 1}));
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 5, 1);
  EXPECT_TRUE(delivered.empty());
  buffer.add_entry(ctx, EntryKind::kSyncHard, 1, 7, 1);
  EXPECT_EQ(delivered, (std::vector<MsgId>{1}));
}

TEST_F(DeliveryBufferTest, DeliveryStallsUntilBodyArrives) {
  buffer.note_dst(1, {0});
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 5, 1);
  EXPECT_TRUE(delivered.empty());  // FINAL formed but no body yet
  buffer.store_body(ctx, msg(1, {0}));
  EXPECT_EQ(delivered, (std::vector<MsgId>{1}));
}

TEST_F(DeliveryBufferTest, SmallerTentativeTimestampBlocksDelivery) {
  // Message 1 final ts 10; message 2 has a pending entry at ts 4 -> block.
  buffer.store_body(ctx, msg(1, {0}));
  buffer.store_body(ctx, msg(2, {0, 1}));
  buffer.add_entry(ctx, EntryKind::kPendingHard, 0, 4, 2);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 10, 1);
  EXPECT_TRUE(delivered.empty());
  // Message 2's final resolves to 12 > 10: both deliver, 1 first.
  buffer.remove_pending_hard(ctx, 2, 0);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 11, 2);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 1, 12, 2);
  EXPECT_EQ(delivered, (std::vector<MsgId>{1, 2}));
}

TEST_F(DeliveryBufferTest, SyncSoftEntriesBlockToo) {
  buffer.store_body(ctx, msg(1, {0}));
  buffer.store_body(ctx, msg(2, {0, 1}));
  buffer.add_entry(ctx, EntryKind::kSyncSoft, 0, 3, 2);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 10, 1);
  EXPECT_TRUE(delivered.empty());
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 3, 2);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 1, 4, 2);
  // Message 2 final = 4 < 10: it delivers first, then 1.
  EXPECT_EQ(delivered, (std::vector<MsgId>{2, 1}));
}

TEST_F(DeliveryBufferTest, EqualTimestampsTieBreakByMsgId) {
  // Park both messages behind pending placeholders so neither can deliver
  // before the other is known, then resolve them: the (ts, mid) tie-break
  // must deliver mid 3 before mid 7 on every replica.
  buffer.store_body(ctx, msg(7, {0, 1}));
  buffer.store_body(ctx, msg(3, {0, 1}));
  buffer.add_entry(ctx, EntryKind::kPendingHard, 0, 5, 7);
  buffer.add_entry(ctx, EntryKind::kPendingHard, 0, 5, 3);
  buffer.remove_pending_hard(ctx, 7, 0);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 5, 7);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 1, 5, 7);
  EXPECT_TRUE(delivered.empty());  // blocked by message 3's placeholder
  buffer.remove_pending_hard(ctx, 3, 0);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 5, 3);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 1, 5, 3);
  EXPECT_EQ(delivered, (std::vector<MsgId>{3, 7}));
}

TEST_F(DeliveryBufferTest, FinalIsMaxOfGroupTimestamps) {
  buffer.store_body(ctx, msg(1, {0, 1, 2}));
  buffer.store_body(ctx, msg(2, {0}));
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 1, 1);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 1, 9, 1);
  // Message 2 (ts 5) becomes known before message 1 completes; once both
  // finals exist, 2's final (5) must precede 1's final max(1,9,2) = 9.
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 5, 2);
  // Message 1's tentative ts 1 conservatively blocks message 2's final.
  EXPECT_TRUE(delivered.empty());
  buffer.add_entry(ctx, EntryKind::kSyncHard, 2, 2, 1);
  EXPECT_EQ(delivered, (std::vector<MsgId>{2, 1}));
}

TEST_F(DeliveryBufferTest, DuplicateEntriesIgnored) {
  buffer.store_body(ctx, msg(1, {0, 1}));
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 5, 1);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 5, 1);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 6, 1);  // same (kind, group)
  EXPECT_EQ(buffer.blocking_count(), 1u);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 1, 6, 1);
  EXPECT_EQ(delivered, (std::vector<MsgId>{1}));
}

TEST_F(DeliveryBufferTest, LateEntriesAfterFinalAreIgnored) {
  buffer.store_body(ctx, msg(1, {0, 1}));
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 5, 1);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 1, 6, 1);
  EXPECT_EQ(delivered.size(), 1u);
  // Slow-path stragglers for a delivered message must not resurrect it.
  buffer.add_entry(ctx, EntryKind::kSyncSoft, 0, 5, 1);
  buffer.note_dst(1, {0, 1});
  EXPECT_EQ(buffer.undelivered_count(), 0u);
  EXPECT_EQ(buffer.blocking_count(), 0u);
}

TEST_F(DeliveryBufferTest, PendingHardPlaceholderPreventsOvertaking) {
  // The scenario that motivates the placeholder (DESIGN.md): message 2's
  // SET-HARD decided with ts 4 before message 1's remote SYNC-HARD(ts 10)
  // was ordered. Without the placeholder, message 1 (final 10) would be
  // delivered before message 2 (final 6).
  buffer.store_body(ctx, msg(1, {0, 1}));
  buffer.store_body(ctx, msg(2, {0, 1}));
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 3, 1);
  buffer.add_entry(ctx, EntryKind::kPendingHard, 0, 4, 2);  // SET-HARD decide
  buffer.add_entry(ctx, EntryKind::kSyncHard, 1, 10, 1);    // m1 complete
  EXPECT_TRUE(delivered.empty()) << "m1 overtook m2's pending timestamp";
  buffer.remove_pending_hard(ctx, 2, 0);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 4, 2);
  buffer.add_entry(ctx, EntryKind::kSyncHard, 1, 6, 2);
  EXPECT_EQ(delivered, (std::vector<MsgId>{2, 1}));
}

TEST_F(DeliveryBufferTest, SyncSoftLookup) {
  buffer.note_dst(1, {0, 1});
  EXPECT_FALSE(buffer.sync_soft_ts(1, 0).has_value());
  buffer.add_entry(ctx, EntryKind::kSyncSoft, 0, 8, 1);
  ASSERT_TRUE(buffer.sync_soft_ts(1, 0).has_value());
  EXPECT_EQ(*buffer.sync_soft_ts(1, 0), 8u);
  EXPECT_FALSE(buffer.sync_soft_ts(1, 1).has_value());
  EXPECT_FALSE(buffer.has_sync_hard(1, 0));
}

TEST_F(DeliveryBufferTest, CountsAndDeliveredTracking) {
  buffer.store_body(ctx, msg(1, {0}));
  EXPECT_EQ(buffer.undelivered_count(), 1u);
  EXPECT_FALSE(buffer.was_delivered(1));
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 1, 1);
  EXPECT_TRUE(buffer.was_delivered(1));
  EXPECT_EQ(buffer.delivered_count(), 1u);
  EXPECT_EQ(buffer.undelivered_count(), 0u);
}

TEST_F(DeliveryBufferTest, ManyMessagesDeliverInTimestampOrder) {
  // 50 local messages with shuffled timestamps arrive in random order;
  // delivery must follow (ts, mid) order exactly.
  std::vector<std::pair<Ts, MsgId>> entries;
  for (MsgId i = 1; i <= 50; ++i) entries.push_back({(i * 7) % 53 + 1, i});
  Rng rng(3);
  for (std::size_t i = entries.size(); i > 1; --i) {
    std::swap(entries[i - 1], entries[rng.uniform(i)]);
  }
  for (auto& [ts, mid] : entries) buffer.store_body(ctx, msg(mid, {0}));
  // Insert a pending placeholder for every message first so the guard has
  // to hold deliveries back, then resolve them in shuffled order.
  for (auto& [ts, mid] : entries) {
    buffer.add_entry(ctx, EntryKind::kPendingHard, 1, ts, mid);
  }
  for (auto& [ts, mid] : entries) {
    buffer.remove_pending_hard(ctx, mid, 1);
    buffer.add_entry(ctx, EntryKind::kSyncHard, 0, ts, mid);
  }
  ASSERT_EQ(delivered.size(), 50u);
  std::vector<std::pair<Ts, MsgId>> sorted = entries;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(delivered[i], sorted[i].second);
}

TEST_F(DeliveryBufferTest, RestoredBodyDeliversViaConsensusReplay) {
  // The durable-recovery shape: restore_durable re-installs delivered ids
  // and persisted bodies first, THEN the consensus catch-up replays tuples
  // through add_entry. The restored body (restore_body deliberately never
  // attempts delivery itself) must satisfy the FINAL formed by the replay.
  buffer.restore_delivered({7});
  buffer.restore_body(msg(1, {0}));
  buffer.restore_body(msg(7, {0}));  // already delivered: must stay dropped
  EXPECT_TRUE(buffer.has_body(1));
  EXPECT_FALSE(buffer.has_body(7));
  EXPECT_TRUE(delivered.empty());
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 5, 1);
  EXPECT_EQ(delivered, (std::vector<MsgId>{1}));
  // Replayed tuples of the already-delivered message change nothing.
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 6, 7);
  EXPECT_EQ(delivered, (std::vector<MsgId>{1}));
}

TEST_F(DeliveryBufferTest, RestoreBodyAfterFinalFormedAborts) {
  // restore_body cannot retry delivery (no Context), so it relies on the
  // invariant that restore precedes any FINAL formation. This pins the
  // assert that turns a silent stalled-forever delivery into a loud crash
  // if the restore ordering is ever broken.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  buffer.note_dst(1, {0});
  buffer.add_entry(ctx, EntryKind::kSyncHard, 0, 5, 1);  // FINAL, no body
  EXPECT_EQ(buffer.undelivered_count(), 1u);
  EXPECT_TRUE(delivered.empty());  // stalled on the missing body
  EXPECT_DEATH(buffer.restore_body(msg(1, {0})), "restore must precede");
}

}  // namespace
}  // namespace fastcast
