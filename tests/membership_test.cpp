// Membership / deployment-description tests.

#include <gtest/gtest.h>

#include "fastcast/runtime/membership.hpp"

namespace fastcast {
namespace {

Membership sample() {
  Membership m;
  m.add_group(3, {0, 1, 2});
  m.add_group(3, {0, 1, 2});
  m.add_group(5, {0, 0, 1, 1, 2});
  m.add_client(0);
  m.add_client(2);
  return m;
}

TEST(Membership, CountsAndIds) {
  const Membership m = sample();
  EXPECT_EQ(m.group_count(), 3u);
  EXPECT_EQ(m.node_count(), 13u);
  EXPECT_EQ(m.client_count(), 2u);
  EXPECT_EQ(m.members(0), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(m.members(2).size(), 5u);
  EXPECT_EQ(m.clients(), (std::vector<NodeId>{11, 12}));
}

TEST(Membership, GroupOfAndRegions) {
  const Membership m = sample();
  EXPECT_EQ(m.group_of(0), 0u);
  EXPECT_EQ(m.group_of(4), 1u);
  EXPECT_EQ(m.group_of(10), 2u);
  EXPECT_EQ(m.group_of(11), kNoGroup);
  EXPECT_TRUE(m.is_client(12));
  EXPECT_FALSE(m.is_client(3));
  EXPECT_EQ(m.region_of(1), 1u);
  EXPECT_EQ(m.region_of(12), 2u);
}

TEST(Membership, QuorumSizes) {
  const Membership m = sample();
  EXPECT_EQ(m.quorum_size(0), 2u);  // 3 replicas -> majority 2
  EXPECT_EQ(m.quorum_size(2), 3u);  // 5 replicas -> majority 3
}

TEST(Membership, InitialLeaderIsFirstMember) {
  const Membership m = sample();
  EXPECT_EQ(m.initial_leader(1), 3u);
}

TEST(Membership, AllNodesAndReplicas) {
  const Membership m = sample();
  EXPECT_EQ(m.all_nodes().size(), 13u);
  const auto replicas = m.all_replicas();
  EXPECT_EQ(replicas.size(), 11u);
  for (NodeId n : replicas) EXPECT_NE(m.group_of(n), kNoGroup);
}

TEST(Membership, NodesOfGroupsFlattens) {
  const Membership m = sample();
  const auto nodes = m.nodes_of_groups({0, 2});
  EXPECT_EQ(nodes.size(), 8u);
  EXPECT_EQ(nodes.front(), 0u);
  EXPECT_EQ(nodes.back(), 10u);
}

TEST(Membership, SingleReplicaGroup) {
  Membership m;
  m.add_group(1, {0});
  EXPECT_EQ(m.quorum_size(0), 1u);
  EXPECT_EQ(m.initial_leader(0), 0u);
}

}  // namespace
}  // namespace fastcast
