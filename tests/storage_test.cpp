// Storage subsystem tests: WAL wire format (golden bytes), CRC behavior,
// torn-tail and bit-flip recovery, snapshot+replay equivalence, fsync
// policies and the durability gate, and the file-backed backend.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "fastcast/storage/storage.hpp"

namespace fastcast::storage {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<std::uint8_t> raw) {
  std::vector<std::byte> out;
  out.reserve(raw.size());
  for (const std::uint8_t b : raw) out.push_back(std::byte{b});
  return out;
}

std::string segment_1() { return "wal-0000000000000001.seg"; }

/// A scratch directory under the test's working directory, removed on exit.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "./fc_storage_XXXXXX";
    char* got = ::mkdtemp(tmpl);
    EXPECT_NE(got, nullptr);
    path_ = got;
  }
  ~TempDir() {
    // Best-effort recursive cleanup (two levels: dir/node-N/files).
    const std::string cmd = "rm -rf '" + path_ + "'";
    [[maybe_unused]] const int rc = ::system(cmd.c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------------------------------------------------------------------------
// CRC and wire format
// ---------------------------------------------------------------------------

TEST(Crc32, MatchesKnownCheckValue) {
  // The standard CRC-32 (IEEE, reflected 0xedb88320) check vector.
  const char* check = "123456789";
  const std::uint32_t got = crc32(std::as_bytes(std::span(check, 9)));
  EXPECT_EQ(got, 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

TEST(WalWireFormat, GoldenPromiseBody) {
  // Pinned bytes: changing the record layout must be a deliberate,
  // version-bumped decision, not an accident.
  const WalRecord rec = WalRecord::promise(1, Ballot{7, 2});
  Writer w;
  encode_record(w, rec);
  const auto golden = bytes_of({
      0x01,                    // type = kPromise
      0x01, 0x00, 0x00, 0x00,  // group = 1
      0x07, 0x00, 0x00, 0x00,  // ballot.round = 7
      0x02, 0x00, 0x00, 0x00,  // ballot.node = 2
      0x00,                    // instance varint = 0
      0xFF, 0xFF, 0xFF, 0xFF,  // node = kInvalidNode
      0x00,                    // seq varint = 0
      0x00,                    // value length varint = 0
  });
  EXPECT_EQ(w.data(), golden);
}

TEST(WalWireFormat, GoldenAcceptBody) {
  const auto value = bytes_of({0xAA, 0xBB});
  const WalRecord rec = WalRecord::accept(2, 5, Ballot{3, 1}, value);
  Writer w;
  encode_record(w, rec);
  const auto golden = bytes_of({
      0x02,                    // type = kAccept
      0x02, 0x00, 0x00, 0x00,  // group = 2
      0x03, 0x00, 0x00, 0x00,  // ballot.round = 3
      0x01, 0x00, 0x00, 0x00,  // ballot.node = 1
      0x05,                    // instance varint = 5
      0xFF, 0xFF, 0xFF, 0xFF,  // node = kInvalidNode
      0x00,                    // seq varint = 0
      0x02, 0xAA, 0xBB,        // value = [AA BB]
  });
  EXPECT_EQ(w.data(), golden);
}

TEST(WalWireFormat, GoldenFrameInSegment) {
  // The full on-disk frame is [u32 body len][u32 crc32(body)][body], and
  // the first segment is named wal-0000000000000001.seg.
  MemBackend backend;
  Wal wal(&backend, 1 << 20);
  wal.open(0, [](Lsn, const WalRecord&) {});
  wal.append(WalRecord::promise(1, Ballot{7, 2}));
  wal.commit_all(true);

  Writer w;
  encode_record(w, WalRecord::promise(1, Ballot{7, 2}));
  const std::vector<std::byte>& body = w.data();
  Writer frame;
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.u32(crc32(body));
  for (const std::byte b : body) frame.u8(std::to_integer<std::uint8_t>(b));

  std::vector<std::byte> disk;
  ASSERT_TRUE(backend.read(segment_1(), disk));
  EXPECT_EQ(disk, frame.data());
}

TEST(WalWireFormat, DecodeRoundTripsEveryType) {
  const auto payload = bytes_of({0x01, 0x02, 0x03});
  const std::vector<WalRecord> records = {
      WalRecord::promise(1, Ballot{4, 0}),
      WalRecord::accept(1, 9, Ballot{4, 0}, payload),
      WalRecord::rm_next_seq(3, 17),
      WalRecord::rm_stage(3, 16, payload),
      WalRecord::rm_settle(3, 16),
      WalRecord::rm_progress(5, 8),
      WalRecord::delivered(make_msg_id(7, 42)),
      WalRecord::body(make_msg_id(7, 43), payload),
  };
  for (const WalRecord& rec : records) {
    Writer w;
    encode_record(w, rec);
    Reader r(w.data());
    WalRecord out;
    ASSERT_TRUE(decode_record(r, out));
    EXPECT_EQ(out, rec);
  }
}

TEST(WalWireFormat, DecodeRejectsBadTypeAndTrailingBytes) {
  Writer w;
  encode_record(w, WalRecord::promise(1, Ballot{1, 1}));
  {
    auto bad = w.data();
    bad[0] = std::byte{0x0c};  // type out of range (valid: 1..11)
    Reader r(bad);
    WalRecord out;
    EXPECT_FALSE(decode_record(r, out));
  }
  {
    auto bad = w.data();
    bad.push_back(std::byte{0x00});  // trailing garbage
    Reader r(bad);
    WalRecord out;
    EXPECT_FALSE(decode_record(r, out));
  }
}

// ---------------------------------------------------------------------------
// WAL append / replay / corruption
// ---------------------------------------------------------------------------

std::vector<WalRecord> replay_all(StorageBackend* backend,
                                  WalReplayStats* stats = nullptr) {
  Wal wal(backend, 1 << 20);
  std::vector<WalRecord> seen;
  const WalReplayStats s =
      wal.open(0, [&seen](Lsn, const WalRecord& rec) { seen.push_back(rec); });
  if (stats != nullptr) *stats = s;
  return seen;
}

TEST(Wal, AppendReplayRoundTrip) {
  MemBackend backend;
  std::vector<WalRecord> written;
  {
    Wal wal(&backend, 1 << 20);
    wal.open(0, [](Lsn, const WalRecord&) {});
    for (std::uint32_t i = 0; i < 50; ++i) {
      WalRecord rec = WalRecord::rm_next_seq(i % 4, i);
      EXPECT_EQ(wal.append(rec), static_cast<Lsn>(i + 1));
      written.push_back(std::move(rec));
    }
    wal.commit_all(true);
  }
  WalReplayStats stats;
  EXPECT_EQ(replay_all(&backend, &stats), written);
  EXPECT_EQ(stats.replayed, 50u);
  EXPECT_EQ(stats.checksum_rejections, 0u);
  EXPECT_FALSE(stats.torn_tail);
}

TEST(Wal, RollsSegmentsAndReplaysAcrossThem) {
  MemBackend backend;
  Wal wal(&backend, 64);  // tiny segments: force several rolls
  wal.open(0, [](Lsn, const WalRecord&) {});
  for (std::uint32_t i = 0; i < 20; ++i) {
    wal.append(WalRecord::rm_next_seq(1, i));
  }
  wal.commit_all(true);
  EXPECT_GT(wal.segment_count(), 1u);
  EXPECT_EQ(replay_all(&backend).size(), 20u);
}

TEST(Wal, TornTailIsRepairedAndAppendContinues) {
  MemBackend backend;
  {
    Wal wal(&backend, 1 << 20);
    wal.open(0, [](Lsn, const WalRecord&) {});
    wal.append(WalRecord::promise(1, Ballot{1, 0}));
    wal.append(WalRecord::promise(1, Ballot{2, 0}));
    wal.commit_all(true);
  }
  // A crash mid-append leaves a partial frame at the end of the segment.
  backend.append(segment_1(), bytes_of({0x10, 0x00, 0x00}));
  backend.sync(segment_1());

  WalReplayStats stats;
  {
    Wal wal(&backend, 1 << 20);
    std::uint64_t replayed = 0;
    stats = wal.open(0, [&replayed](Lsn, const WalRecord&) { ++replayed; });
    EXPECT_EQ(replayed, 2u);
    EXPECT_TRUE(stats.torn_tail);
    // The repaired log accepts new appends right after the valid prefix.
    EXPECT_EQ(wal.append(WalRecord::promise(1, Ballot{3, 0})), 3u);
    wal.commit_all(true);
  }
  EXPECT_EQ(replay_all(&backend).size(), 3u);
}

TEST(Wal, BitFlipStopsReplayAtLastValidRecord) {
  MemBackend backend;
  {
    Wal wal(&backend, 1 << 20);
    wal.open(0, [](Lsn, const WalRecord&) {});
    for (std::uint32_t r = 1; r <= 5; ++r) {
      wal.append(WalRecord::promise(1, Ballot{r, 0}));
    }
    wal.commit_all(true);
  }
  // Flip one bit inside the fourth record's body.
  std::vector<std::byte> raw;
  ASSERT_TRUE(backend.read(segment_1(), raw));
  const std::size_t frame = 8 + 20;  // header + promise body
  const std::size_t target = 3 * frame + 8 + 5;
  ASSERT_LT(target, raw.size());
  raw[target] ^= std::byte{0x01};
  backend.write_atomic(segment_1(), raw);

  WalReplayStats stats;
  std::vector<WalRecord> seen = replay_all(&backend, &stats);
  // Replay stops at the corruption: records 1..3 survive, 4..5 are gone.
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen.back().ballot.round, 3u);
  EXPECT_EQ(stats.checksum_rejections, 1u);
}

TEST(Wal, CorruptionNeverRegressesAPromiseBelowTheValidPrefix) {
  // The acceptor invariant behind the checksum: a recovered node's promise
  // floor comes from the valid prefix only — corrupt bytes may cost the
  // *tail*, never resurrect an older ballot as "newer".
  MemBackend backend;
  {
    Wal wal(&backend, 1 << 20);
    wal.open(0, [](Lsn, const WalRecord&) {});
    wal.append(WalRecord::promise(1, Ballot{5, 0}));
    wal.append(WalRecord::promise(1, Ballot{9, 0}));
    wal.commit_all(true);
  }
  std::vector<std::byte> raw;
  ASSERT_TRUE(backend.read(segment_1(), raw));
  raw[raw.size() - 1] ^= std::byte{0xFF};  // corrupt the *last* record
  backend.write_atomic(segment_1(), raw);

  DurableState state;
  Wal wal(&backend, 1 << 20);
  wal.open(0, [&state](Lsn, const WalRecord& rec) { state.apply(rec); });
  // Ballot 9 is lost to the bit flip (it was never externalized if the
  // system gated on durability), but ballot 5 must still be there.
  EXPECT_EQ(state.groups.at(1).promised, (Ballot{5, 0}));
}

TEST(Wal, TruncateThroughDropsOnlyWholeColdSegments) {
  MemBackend backend;
  Wal wal(&backend, 64);
  wal.open(0, [](Lsn, const WalRecord&) {});
  for (std::uint32_t i = 0; i < 20; ++i) {
    wal.append(WalRecord::rm_next_seq(1, i));
  }
  wal.commit_all(true);
  const std::size_t before = wal.segment_count();
  ASSERT_GT(before, 2u);
  const std::size_t removed = wal.truncate_through(wal.last_lsn());
  EXPECT_EQ(removed, before - 1);  // the active segment always survives
  EXPECT_EQ(wal.segment_count(), 1u);
  // Untouched tail still replays.
  EXPECT_FALSE(replay_all(&backend).empty());
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

DurableState sample_state() {
  DurableState s;
  s.apply(WalRecord::promise(1, Ballot{3, 2}));
  s.apply(WalRecord::accept(1, 7, Ballot{3, 2}, bytes_of({0x01, 0x02})));
  s.apply(WalRecord::rm_next_seq(4, 12));
  s.apply(WalRecord::rm_stage(4, 11, bytes_of({0x0A})));
  s.apply(WalRecord::rm_progress(9, 6));
  s.apply(WalRecord::body(make_msg_id(2, 1), bytes_of({0x0B})));
  s.apply(WalRecord::delivered(make_msg_id(2, 2)));
  return s;
}

TEST(Snapshot, WriteLoadRoundTrip) {
  MemBackend backend;
  SnapshotStore store(&backend);
  const DurableState state = sample_state();
  store.write(42, state);
  DurableState loaded;
  EXPECT_EQ(store.load_latest(loaded), 42u);
  EXPECT_EQ(loaded, state);
}

TEST(Snapshot, KeepsNewestTwoAndFallsBackOnCorruption) {
  MemBackend backend;
  SnapshotStore store(&backend);
  DurableState a = sample_state();
  store.write(10, a);
  a.apply(WalRecord::delivered(make_msg_id(2, 3)));
  store.write(20, a);
  a.apply(WalRecord::delivered(make_msg_id(2, 4)));
  store.write(30, a);
  EXPECT_EQ(store.count(), 2u);  // lsn 10 garbage-collected

  // Corrupt the newest snapshot: load falls back to the previous one.
  std::vector<std::byte> raw;
  ASSERT_TRUE(backend.read("snap-000000000000001e.snap", raw));
  raw[raw.size() / 2] ^= std::byte{0x40};
  backend.write_atomic("snap-000000000000001e.snap", raw);
  DurableState loaded;
  std::uint64_t rejected = 0;
  EXPECT_EQ(store.load_latest(loaded, &rejected), 20u);
  EXPECT_EQ(rejected, 1u);
}

TEST(Snapshot, ApplySemantics) {
  DurableState s;
  // Promise/accept are monotone in ballot order.
  s.apply(WalRecord::promise(1, Ballot{5, 1}));
  s.apply(WalRecord::promise(1, Ballot{3, 0}));  // stale: ignored
  EXPECT_EQ(s.groups.at(1).promised, (Ballot{5, 1}));
  s.apply(WalRecord::accept(1, 2, Ballot{6, 0}, bytes_of({0x01})));
  EXPECT_EQ(s.groups.at(1).promised, (Ballot{6, 0}));  // accept implies promise
  s.apply(WalRecord::accept(1, 2, Ballot{5, 0}, bytes_of({0x02})));  // stale
  EXPECT_EQ(s.groups.at(1).accepted.at(2).value, bytes_of({0x01}));

  // rmcast floors are monotone; stage/settle pair up.
  s.apply(WalRecord::rm_next_seq(3, 10));
  s.apply(WalRecord::rm_next_seq(3, 8));
  EXPECT_EQ(s.rm_next_seq.at(3), 10u);
  s.apply(WalRecord::rm_stage(3, 9, bytes_of({0x0C})));
  s.apply(WalRecord::rm_settle(3, 9));
  EXPECT_TRUE(s.rm_staged.empty());

  // A delivered mid erases (and suppresses) its pending body.
  const MsgId mid = make_msg_id(1, 1);
  s.apply(WalRecord::body(mid, bytes_of({0x0D})));
  s.apply(WalRecord::delivered(mid));
  EXPECT_TRUE(s.bodies.empty());
  s.apply(WalRecord::body(mid, bytes_of({0x0D})));  // replay after delivery
  EXPECT_TRUE(s.bodies.empty());
  EXPECT_TRUE(s.delivered.contains(mid));
}

// ---------------------------------------------------------------------------
// NodeStorage: gate, policies, snapshot+replay equivalence, crash model
// ---------------------------------------------------------------------------

NodeStorage::Config config_with(FsyncPolicy::Mode mode,
                                std::uint64_t snapshot_every = 1u << 30) {
  NodeStorage::Config cfg;
  cfg.fsync.mode = mode;
  cfg.snapshot_every = snapshot_every;
  return cfg;
}

TEST(NodeStorage, ColdStartIsEmptyAndAppendsFromOne) {
  NodeStorage st(std::make_unique<MemBackend>(),
                 config_with(FsyncPolicy::Mode::kAlways));
  EXPECT_TRUE(st.state().empty());
  EXPECT_EQ(st.last_lsn(), 0u);
  EXPECT_EQ(st.recovery_info().recoveries, 1u);
  EXPECT_EQ(st.log_promise(1, Ballot{1, 0}), 1u);
}

TEST(NodeStorage, AlwaysPolicyReleasesGateOnCommit) {
  NodeStorage st(std::make_unique<MemBackend>(),
                 config_with(FsyncPolicy::Mode::kAlways));
  bool ran = false;
  const Lsn lsn = st.log_promise(1, Ballot{1, 0});
  st.when_durable(lsn, [&ran] { ran = true; });
  EXPECT_FALSE(ran);
  st.commit();
  EXPECT_TRUE(ran);
  EXPECT_EQ(st.durable_lsn(), st.last_lsn());
}

TEST(NodeStorage, BatchPolicyGatesUntilBatchFullOrFlush) {
  NodeStorage::Config cfg = config_with(FsyncPolicy::Mode::kBatch);
  cfg.fsync.batch_records = 3;
  NodeStorage st(std::make_unique<MemBackend>(), cfg);
  int released = 0;
  for (int i = 1; i <= 2; ++i) {
    const Lsn lsn = st.log_rm_next_seq(1, static_cast<std::uint64_t>(i));
    st.when_durable(lsn, [&released] { ++released; });
    st.commit();
  }
  EXPECT_EQ(released, 0);  // batch of 3 not full yet
  EXPECT_EQ(st.gated_count(), 2u);
  const Lsn lsn = st.log_rm_next_seq(1, 3);
  st.when_durable(lsn, [&released] { ++released; });
  st.commit();  // third record fills the batch
  EXPECT_EQ(released, 3);

  // A partial batch is released by the interval flush().
  st.when_durable(st.log_rm_next_seq(1, 4), [&released] { ++released; });
  st.commit();
  EXPECT_EQ(released, 3);
  st.flush();
  EXPECT_EQ(released, 4);
}

TEST(NodeStorage, CrashDropsUnsyncedRecordsAndGatedClosures) {
  NodeStorage::Config cfg = config_with(FsyncPolicy::Mode::kBatch);
  cfg.fsync.batch_records = 100;  // nothing auto-flushes
  NodeStorage st(std::make_unique<MemBackend>(), cfg);
  st.log_promise(1, Ballot{1, 0});
  st.flush();  // durable floor

  bool leaked = false;
  const Lsn lsn = st.log_promise(1, Ballot{2, 0});
  st.when_durable(lsn, [&leaked] { leaked = true; });
  st.commit();                      // batched, not yet durable
  st.on_crash(/*torn_rng=*/nullptr);  // kill -9: keep no unsynced bytes
  EXPECT_FALSE(leaked);

  const DurableState& recovered = st.reset_and_recover();
  EXPECT_EQ(recovered.groups.at(1).promised, (Ballot{1, 0}));
  EXPECT_FALSE(leaked);  // dropped closures never run
  // Appends resume after the surviving prefix, reusing the lost lsn.
  EXPECT_EQ(st.log_promise(1, Ballot{3, 0}), 2u);
}

TEST(NodeStorage, TornCrashSurvivesRecoveryAcrossSeeds) {
  // Whatever prefix of the unsynced bytes survives, recovery must end in a
  // consistent state that is a prefix of what was appended.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    NodeStorage::Config cfg = config_with(FsyncPolicy::Mode::kBatch);
    cfg.fsync.batch_records = 1000;
    NodeStorage st(std::make_unique<MemBackend>(), cfg);
    st.log_promise(1, Ballot{1, 0});
    st.flush();
    for (std::uint32_t r = 2; r <= 10; ++r) {
      st.log_promise(1, Ballot{r, 0});
    }
    Rng torn(seed);
    st.on_crash(&torn);
    const DurableState& recovered = st.reset_and_recover();
    const Ballot promised = recovered.groups.at(1).promised;
    EXPECT_GE(promised.round, 1u) << "seed " << seed;
    EXPECT_LE(promised.round, 10u) << "seed " << seed;
    // The flushed record is a hard floor regardless of the torn suffix.
    EXPECT_GE(promised, (Ballot{1, 0})) << "seed " << seed;
  }
}

TEST(NodeStorage, SnapshotPlusReplayEqualsFullReplay) {
  // Reference: fold every record into a DurableState directly.
  std::vector<WalRecord> records;
  for (std::uint32_t i = 0; i < 200; ++i) {
    switch (i % 5) {
      case 0: records.push_back(WalRecord::promise(1, Ballot{i, 0})); break;
      case 1:
        records.push_back(
            WalRecord::accept(1, i, Ballot{i, 0}, bytes_of({0x01})));
        break;
      case 2: records.push_back(WalRecord::rm_next_seq(i % 3, i)); break;
      case 3: records.push_back(WalRecord::rm_progress(i % 3, i)); break;
      case 4: records.push_back(WalRecord::delivered(make_msg_id(1, i))); break;
    }
  }
  DurableState reference;
  for (const WalRecord& rec : records) reference.apply(rec);

  // Run the same records through NodeStorage with aggressive snapshotting:
  // recovery then sees snapshot + a short log suffix, never the full log.
  NodeStorage st(std::make_unique<MemBackend>(),
                 config_with(FsyncPolicy::Mode::kAlways, /*snapshot_every=*/32));
  for (const WalRecord& rec : records) {
    switch (rec.type) {
      case WalRecordType::kPromise: st.log_promise(rec.group, rec.ballot); break;
      case WalRecordType::kAccept:
        st.log_accept(rec.group, rec.instance, rec.ballot, rec.value);
        break;
      case WalRecordType::kRmNextSeq: st.log_rm_next_seq(rec.node, rec.seq); break;
      case WalRecordType::kRmProgress:
        st.log_rm_progress(rec.node, rec.seq);
        break;
      case WalRecordType::kDelivered: st.log_delivered(rec.seq); break;
      default: FAIL();
    }
    st.commit();
  }
  EXPECT_GT(st.snapshots_taken(), 0u);
  EXPECT_EQ(st.state(), reference);  // live fold agrees

  const DurableState& recovered = st.reset_and_recover();
  EXPECT_EQ(recovered, reference);  // snapshot + replay agrees
  EXPECT_LT(st.recovery_info().replay.replayed, records.size());
  EXPECT_GT(st.recovery_info().snapshot_lsn, 0u);
}

TEST(NodeStorage, NeverPolicySnapshotAheadOfLostLogStaysConsistent) {
  // Under never-for-sim a snapshot can outlive the WAL bytes it covers; a
  // crash then must not let new appends collide with snapshotted lsns.
  NodeStorage st(std::make_unique<MemBackend>(),
                 config_with(FsyncPolicy::Mode::kNever, /*snapshot_every=*/4));
  for (std::uint32_t r = 1; r <= 8; ++r) {
    st.log_promise(1, Ballot{r, 0});
    st.commit();
  }
  ASSERT_GT(st.snapshots_taken(), 0u);
  st.on_crash(/*torn_rng=*/nullptr);  // every unsynced WAL byte lost

  const DurableState& recovered = st.reset_and_recover();
  // The snapshot is durable (write_atomic) even though the log is gone.
  EXPECT_GE(recovered.groups.at(1).promised.round, 4u);
  const Lsn resume = st.log_promise(1, Ballot{100, 0});
  EXPECT_GT(resume, st.recovery_info().snapshot_lsn);
  st.flush();
  const DurableState& again = st.reset_and_recover();
  EXPECT_EQ(again.groups.at(1).promised, (Ballot{100, 0}));
}

TEST(FsyncPolicyParse, AcceptsAllSpellingsRejectsGarbage) {
  EXPECT_EQ(FsyncPolicy::parse("always")->mode, FsyncPolicy::Mode::kAlways);
  EXPECT_EQ(FsyncPolicy::parse("never")->mode, FsyncPolicy::Mode::kNever);
  EXPECT_EQ(FsyncPolicy::parse("never-for-sim")->mode, FsyncPolicy::Mode::kNever);
  EXPECT_EQ(FsyncPolicy::parse("batch")->mode, FsyncPolicy::Mode::kBatch);
  const auto batch = FsyncPolicy::parse("batch:16:2");
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->batch_records, 16u);
  EXPECT_EQ(batch->batch_interval, milliseconds(2));
  EXPECT_EQ(batch->to_string(), "batch:16:2");
  EXPECT_FALSE(FsyncPolicy::parse("").has_value());
  EXPECT_FALSE(FsyncPolicy::parse("batch:0:2").has_value());
  EXPECT_FALSE(FsyncPolicy::parse("batch:16:-1").has_value());
  EXPECT_FALSE(FsyncPolicy::parse("sometimes").has_value());
}

// ---------------------------------------------------------------------------
// FileBackend: the same recovery invariants against real files
// ---------------------------------------------------------------------------

TEST(FileBackend, NodeStorageSurvivesProcessStyleReopen) {
  TempDir dir;
  {
    NodeStorage st(std::make_unique<FileBackend>(dir.path() + "/node-0"),
                   config_with(FsyncPolicy::Mode::kAlways, /*snapshot_every=*/16));
    for (std::uint32_t r = 1; r <= 40; ++r) {
      st.log_promise(1, Ballot{r, 0});
      st.log_delivered(make_msg_id(1, r));
      st.commit();
    }
    EXPECT_GT(st.snapshots_taken(), 0u);
  }  // handle destroyed: only the files remain, like a dead process

  NodeStorage st(std::make_unique<FileBackend>(dir.path() + "/node-0"),
                 config_with(FsyncPolicy::Mode::kAlways));
  EXPECT_EQ(st.state().groups.at(1).promised, (Ballot{40, 0}));
  EXPECT_EQ(st.state().delivered.size(), 40u);
  // The new handle appends past everything the old one wrote.
  const Lsn lsn = st.log_promise(1, Ballot{41, 0});
  EXPECT_EQ(lsn, 81u);
  EXPECT_EQ(st.last_lsn(), 81u);
}

TEST(FileBackend, TornTailOnDiskIsRepaired) {
  TempDir dir;
  const std::string node_dir = dir.path() + "/node-0";
  {
    NodeStorage st(std::make_unique<FileBackend>(node_dir),
                   config_with(FsyncPolicy::Mode::kAlways));
    st.log_promise(1, Ballot{1, 0});
    st.log_promise(1, Ballot{2, 0});
    st.commit();
  }
  {
    FileBackend raw(node_dir);
    raw.append(segment_1(), bytes_of({0x14, 0x00}));  // partial frame
    raw.sync(segment_1());
  }
  NodeStorage st(std::make_unique<FileBackend>(node_dir),
                 config_with(FsyncPolicy::Mode::kAlways));
  EXPECT_TRUE(st.recovery_info().replay.torn_tail);
  EXPECT_EQ(st.state().groups.at(1).promised, (Ballot{2, 0}));
  EXPECT_EQ(st.log_promise(1, Ballot{3, 0}), 3u);
}

}  // namespace
}  // namespace fastcast::storage
