// Social network benchmark substrate: graph generation, partitioning
// (METIS stand-in), the paper's spread distribution, the service and the
// replicated timeline state machine.

#include <gtest/gtest.h>

#include <numeric>

#include "fastcast/app/socialnet/partitioner.hpp"
#include "fastcast/app/socialnet/service.hpp"

namespace fastcast::app {
namespace {

TEST(SocialGraph, GeneratesRequestedUserCount) {
  SocialGraphConfig cfg;
  cfg.users = 2000;
  const auto g = generate_social_graph(cfg);
  EXPECT_EQ(g.user_count, 2000u);
  EXPECT_EQ(g.followers.size(), 2000u);
  EXPECT_GT(g.edge_count(), 2000u);
}

TEST(SocialGraph, FollowersAndFollowingAreInverse) {
  SocialGraphConfig cfg;
  cfg.users = 500;
  const auto g = generate_social_graph(cfg);
  std::size_t follows = 0;
  for (UserId u = 0; u < 500; ++u) {
    follows += g.following[u].size();
    for (UserId target : g.following[u]) {
      const auto& f = g.followers[target];
      EXPECT_NE(std::find(f.begin(), f.end(), u), f.end());
    }
  }
  EXPECT_EQ(follows, g.edge_count());
}

TEST(SocialGraph, DegreeDistributionIsSkewed) {
  SocialGraphConfig cfg;
  cfg.users = 3000;
  const auto g = generate_social_graph(cfg);
  std::size_t max_deg = 0, total = 0;
  for (const auto& f : g.followers) {
    max_deg = std::max(max_deg, f.size());
    total += f.size();
  }
  const double mean = static_cast<double>(total) / 3000.0;
  EXPECT_GT(static_cast<double>(max_deg), 5.0 * mean) << "no celebrity users";
}

TEST(SocialGraph, DeterministicPerSeed) {
  SocialGraphConfig cfg;
  cfg.users = 300;
  const auto a = generate_social_graph(cfg);
  const auto b = generate_social_graph(cfg);
  EXPECT_EQ(a.followers, b.followers);
}

TEST(Partitioner, BalancesWithinSlack) {
  SocialGraphConfig gcfg;
  gcfg.users = 4000;
  const auto g = generate_social_graph(gcfg);
  PartitionerConfig pcfg;
  pcfg.partitions = 8;
  const auto r = partition_graph(g, pcfg);
  const std::size_t ideal = 4000 / 8;
  for (std::size_t size : r.sizes) {
    EXPECT_LE(size, static_cast<std::size_t>(ideal * 1.06) + 1);
  }
  EXPECT_EQ(std::accumulate(r.sizes.begin(), r.sizes.end(), std::size_t{0}), 4000u);
}

TEST(Partitioner, CutsFarFewerEdgesThanRandomAssignment) {
  SocialGraphConfig gcfg;
  gcfg.users = 4000;
  const auto g = generate_social_graph(gcfg);
  PartitionerConfig pcfg;
  pcfg.partitions = 8;
  const auto r = partition_graph(g, pcfg);
  // Random assignment cuts ~ (1 - 1/8) ≈ 87.5% of edges; the community
  // structure lets the greedy partitioner do far better.
  const double cut_frac =
      static_cast<double>(r.cut_edges) / static_cast<double>(g.edge_count());
  EXPECT_LT(cut_frac, 0.5);
}

TEST(Partitioner, SpreadHistogramMostlyLocal) {
  SocialGraphConfig gcfg;
  gcfg.users = 4000;
  gcfg.communities = 8;
  const auto g = generate_social_graph(gcfg);
  PartitionerConfig pcfg;
  pcfg.partitions = 8;
  const auto r = partition_graph(g, pcfg);
  const auto hist = spread_histogram(g, r.partition_of, 8);
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), std::size_t{0}), 4000u);
  // The paper's qualitative shape: a strong majority of users span very
  // few partitions.
  EXPECT_GT(hist[0] + hist[1], 4000u * 6 / 10);
}

TEST(PaperSpreadGraph, MatchesReportedDistribution) {
  const auto pg = generate_paper_spread_graph(10000, 16, 1);
  const auto hist = spread_histogram(pg.graph, pg.partition_of, 16);
  // Paper (§5.3): 7110 span 1, 2474 span 2, 376 span 3, 40 span 4-5.
  EXPECT_NEAR(static_cast<double>(hist[0]), 7110.0, 200.0);
  EXPECT_NEAR(static_cast<double>(hist[1]), 2474.0, 150.0);
  EXPECT_NEAR(static_cast<double>(hist[2]), 376.0, 80.0);
  EXPECT_NEAR(static_cast<double>(hist[3] + hist[4]), 40.0, 30.0);
  for (std::size_t k = 5; k < 16; ++k) EXPECT_EQ(hist[k], 0u);
}

TEST(PaperSpreadGraph, PartitionsBalanced) {
  const auto pg = generate_paper_spread_graph(10000, 16, 2);
  std::vector<std::size_t> sizes(16, 0);
  for (auto p : pg.partition_of) ++sizes[p];
  for (std::size_t s : sizes) EXPECT_EQ(s, 625u);
}

std::shared_ptr<SocialNetworkService> small_service() {
  auto pg = generate_paper_spread_graph(1000, 4, 3);
  return std::make_shared<SocialNetworkService>(std::move(pg.graph),
                                                std::move(pg.partition_of), 4);
}

TEST(Service, PostDestinationsIncludeHomeAndFollowerGroups) {
  auto svc = small_service();
  for (UserId u = 0; u < 1000; ++u) {
    const auto& dst = svc->post_destinations(u);
    ASSERT_FALSE(dst.empty());
    // Sorted, unique, contains the home partition.
    for (std::size_t i = 1; i < dst.size(); ++i) ASSERT_LT(dst[i - 1], dst[i]);
    EXPECT_NE(std::find(dst.begin(), dst.end(), svc->partition_of(u)), dst.end());
    for (UserId f : svc->graph().followers[u]) {
      EXPECT_NE(std::find(dst.begin(), dst.end(), svc->partition_of(f)), dst.end());
    }
  }
}

TEST(Service, PostPayloadRoundTrip) {
  const std::string payload = SocialNetworkService::encode_post(1234, 567);
  UserId user = 0;
  std::uint64_t seq = 0;
  ASSERT_TRUE(SocialNetworkService::decode_post(payload, user, seq));
  EXPECT_EQ(user, 1234u);
  EXPECT_EQ(seq, 567u);
}

TEST(Service, DstPickersProduceValidDestinations) {
  auto svc = small_service();
  Rng rng(4);
  auto picker = social_post_picker(svc);
  for (int i = 0; i < 200; ++i) {
    const auto dst = picker(rng);
    ASSERT_FALSE(dst.empty());
    for (GroupId g : dst) ASSERT_LT(g, 4u);
  }
  auto span2 = social_post_picker_with_span(svc, 2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(span2(rng).size(), 2u);
}

TEST(TimelineState, RepeatableAndOrderSensitive) {
  auto svc = small_service();
  TimelineState a(svc), b(svc), c(svc);
  // Find a user with at least one follower in partition 0.
  UserId poster = 0;
  for (UserId u = 0; u < 1000; ++u) {
    const auto& dst = svc->post_destinations(u);
    if (std::find(dst.begin(), dst.end(), 0u) != dst.end() &&
        !svc->graph().followers[u].empty()) {
      poster = u;
      break;
    }
  }
  MulticastMessage m1, m2;
  m1.id = make_msg_id(1, 1);
  m1.payload = SocialNetworkService::encode_post(poster, 1);
  m2.id = make_msg_id(1, 2);
  m2.payload = SocialNetworkService::encode_post(poster, 2);
  a.apply(0, m1);
  a.apply(0, m2);
  b.apply(0, m1);
  b.apply(0, m2);
  c.apply(0, m2);
  c.apply(0, m1);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());  // order-sensitive
  EXPECT_EQ(a.applied_count(), 2u);
}

TEST(TimelineState, ReadReturnsNewestFirst) {
  auto svc = small_service();
  TimelineState state(svc);
  // Post to the poster's own timeline in its home group.
  const UserId poster = 0;
  const GroupId home = svc->partition_of(poster);
  for (std::uint64_t s = 1; s <= 5; ++s) {
    MulticastMessage m;
    m.id = make_msg_id(1, static_cast<std::uint32_t>(s));
    m.payload = SocialNetworkService::encode_post(poster, s);
    state.apply(home, m);
  }
  const auto tl = state.read_timeline(poster, 3);
  ASSERT_EQ(tl.size(), 3u);
  EXPECT_EQ(tl[0], "user0#5");
  EXPECT_EQ(tl[2], "user0#3");
}

}  // namespace
}  // namespace fastcast::app
