// Overload-control tests (DESIGN.md §14): OverloadController state machine
// unit tests, then end-to-end admission behaviour through run_experiment —
// MultiPaxos rejects at its ordering leader, genuine protocols only advise,
// deadlines expire early, and the client-side terminal buckets stay
// exclusive (the conservation law).

#include <gtest/gtest.h>

#include "fastcast/flow/overload.hpp"
#include "fastcast/harness/experiment.hpp"

namespace fastcast {
namespace {

using flow::Options;
using flow::OverloadController;

Options small_opts() {
  Options o;
  o.enable = true;
  o.target_delay = milliseconds(5);
  o.trigger_window = milliseconds(2);
  o.max_depth = 64;
  return o;
}

TEST(OverloadController, DisabledNeverSheds) {
  OverloadController c;  // default Options: enable = false
  for (int i = 0; i < 10; ++i) {
    c.note_sojourn(milliseconds(i), milliseconds(500));
    c.note_depth(1 << 20);
  }
  EXPECT_FALSE(c.overloaded(milliseconds(10)));
  EXPECT_TRUE(c.admit(milliseconds(10)));
}

TEST(OverloadController, BriefSpikeDoesNotTrigger) {
  OverloadController c(small_opts());
  // One huge sample, immediately followed by a healthy stream before the
  // trigger window elapses: a burst is not overload.
  c.note_sojourn(0, milliseconds(50));
  EXPECT_FALSE(c.overloaded(0));
  for (int i = 0; i < 10; ++i) c.note_sojourn(milliseconds(1), 0);
  for (int i = 2; i < 10; ++i) {
    EXPECT_FALSE(c.overloaded(milliseconds(i))) << "at ms " << i;
  }
}

TEST(OverloadController, SustainedExcessTriggers) {
  OverloadController c(small_opts());
  Time now = 0;
  for (int i = 0; i < 5; ++i) {
    c.note_sojourn(now, milliseconds(50));
    now += milliseconds(1);
  }
  // Above target continuously for >= trigger_window (2 ms).
  EXPECT_TRUE(c.overloaded(now));
  EXPECT_FALSE(c.admit(now));
}

TEST(OverloadController, ArrivalLagCountsTowardTrigger) {
  OverloadController c(small_opts());
  Time now = 0;
  // Pipeline looks healthy (1 ms), but arrivals are 10 ms stale — the sum
  // is what must trip the gate (the shared-fate of both queues).
  for (int i = 0; i < 8; ++i) {
    c.note_sojourn(now, milliseconds(1));
    c.note_arrival_lag(now, milliseconds(10));
    now += milliseconds(1);
  }
  EXPECT_TRUE(c.overloaded(now));
  EXPECT_GT(c.arrival_lag(), milliseconds(5));
  EXPECT_GE(c.total_delay(), c.estimated_delay());
}

TEST(OverloadController, HysteresisReopensAtHalfTarget) {
  OverloadController c(small_opts());
  Time now = 0;
  for (int i = 0; i < 5; ++i) {
    c.note_sojourn(now, milliseconds(50));
    now += milliseconds(1);
  }
  ASSERT_TRUE(c.overloaded(now));
  // Converge the estimate to ~3 ms: below target but above target/2 — the
  // gate must stay closed (no flapping at the boundary).
  for (int i = 0; i < 64; ++i) {
    c.note_sojourn(now, milliseconds(3));
    now += microseconds(100);
  }
  EXPECT_TRUE(c.overloaded(now));
  // A genuinely drained pipeline reopens it.
  for (int i = 0; i < 64; ++i) {
    c.note_sojourn(now, 0);
    now += microseconds(100);
  }
  EXPECT_FALSE(c.overloaded(now));
}

TEST(OverloadController, DepthBackstopShedsImmediately) {
  OverloadController c(small_opts());
  c.note_depth(64);  // == max_depth; latency estimate still zero
  EXPECT_TRUE(c.overloaded(0));
  // Drained below half the cap: reopens without any latency samples.
  c.note_depth(0);
  EXPECT_FALSE(c.overloaded(milliseconds(1)));
}

TEST(OverloadController, PipelineEstimateDecaysWhileArrivalsKeepSampling) {
  // Regression: while shedding, nothing is proposed, so the pipeline stream
  // goes silent exactly when its estimate must decay for the gate to
  // reopen. Fresh (small) arrival-lag samples from trickling clients used
  // to reset a shared idle-decay clock and pin the gate shut forever.
  OverloadController c(small_opts());
  Time now = 0;
  for (int i = 0; i < 5; ++i) {
    c.note_sojourn(now, milliseconds(50));
    now += milliseconds(1);
  }
  ASSERT_TRUE(c.overloaded(now));
  for (int i = 0; i < 100; ++i) {
    c.note_arrival_lag(now, microseconds(50));
    now += microseconds(500);
  }
  EXPECT_FALSE(c.overloaded(now))
      << "pipeline estimate never decayed: " << c.estimated_delay();
}

TEST(OverloadController, MarkProbabilityRampsWithExcess) {
  OverloadController c(small_opts());
  EXPECT_DOUBLE_EQ(c.mark_probability(0), 0.0);
  Time now = 0;
  // Converge total delay to ~1 ms: below half target, no marking.
  for (int i = 0; i < 64; ++i) {
    c.note_sojourn(now, milliseconds(1));
    now += microseconds(100);
  }
  EXPECT_DOUBLE_EQ(c.mark_probability(now), 0.0);
  // ~3.75 ms: three quarters of the way to target -> p ~= 0.5.
  for (int i = 0; i < 256; ++i) {
    c.note_sojourn(now, microseconds(3750));
    now += microseconds(10);
  }
  const double p = c.mark_probability(now);
  EXPECT_GT(p, 0.35);
  EXPECT_LT(p, 0.65);
  // Shedding forces p = 1.
  for (int i = 0; i < 5; ++i) {
    c.note_sojourn(now, milliseconds(50));
    now += milliseconds(1);
  }
  ASSERT_TRUE(c.overloaded(now));
  EXPECT_DOUBLE_EQ(c.mark_probability(now), 1.0);
}

TEST(OverloadController, RetryAfterFlooredAtBase) {
  OverloadController c(small_opts());
  EXPECT_EQ(c.retry_after(), milliseconds(2));  // default retry_after_base
  Time now = 0;
  for (int i = 0; i < 64; ++i) {
    c.note_sojourn(now, milliseconds(10));
    now += microseconds(100);
  }
  EXPECT_GT(c.retry_after(), milliseconds(5));
  EXPECT_EQ(c.retry_after(), c.total_delay());
}

// --- End-to-end admission through the harness ------------------------------

harness::ExperimentConfig overload_cfg(harness::Protocol proto) {
  harness::ExperimentConfig cfg;
  cfg.topo.env = harness::Environment::kLan;
  cfg.topo.groups = 2;
  cfg.topo.clients = 4;
  cfg.topo.protocol = proto;
  cfg.seed = 7;
  cfg.payload_size = 128;
  // Offered load far past capacity: 4 clients at one send per 100 us
  // against a 150 us per-message CPU makes the receiver the bottleneck.
  cfg.open_loop_interval = microseconds(100);
  cfg.cpu_override =
      sim::CpuModel{microseconds(150), microseconds(2), nanoseconds(1)};
  cfg.dst_factory = [](std::size_t i) -> harness::DstPicker {
    return harness::fixed_group(static_cast<GroupId>(i % 2));
  };
  cfg.warmup = milliseconds(20);
  cfg.measure = milliseconds(120);
  cfg.slice = milliseconds(15);
  cfg.drain = false;
  cfg.flow.enable = true;
  cfg.flow.target_delay = milliseconds(10);
  cfg.flow.trigger_window = milliseconds(4);
  cfg.client_flow.deadline = milliseconds(80);
  cfg.client_flow.request_timeout = milliseconds(200);
  cfg.client_flow.backoff_base = milliseconds(1);
  cfg.client_flow.backoff_max = milliseconds(16);
  cfg.client_flow.retry_budget = 0.25;
  cfg.client_flow.max_retries = 2;
  cfg.client_flow.pace_increase = 0.002;
  return cfg;
}

void expect_conservation(const harness::ExperimentResult& r) {
  EXPECT_EQ(r.sent, r.completions + r.rejected + r.expired + r.timed_out +
                        r.in_flight_end)
      << "terminal buckets must be exclusive and exhaustive";
}

TEST(FlowEndToEnd, MultiPaxosLeaderRejectsUnderOverload) {
  auto cfg = overload_cfg(harness::Protocol::kMultiPaxos);
  cfg.mp_ordering = harness::ExperimentConfig::MpOrdering::kIds;
  cfg.mp_batch_fill = 8;
  cfg.mp_batch_delay = microseconds(200);
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.report.ok) << "checker violations under overload";
  EXPECT_GT(r.completions, 0u) << "shedding must not starve admitted work";
  EXPECT_GT(r.rejected + r.expired, 0u) << "admission gate never engaged";
  EXPECT_GT(r.busy_received, 0u);
  expect_conservation(r);
}

TEST(FlowEndToEnd, GenuineProtocolOnlyAdvises) {
  // FastCast cannot renege on a reliably-multicast message: overload must
  // surface as advisory Busy (suppression / backoff), never as a terminal
  // rejection or expiry.
  const auto r = harness::run_experiment(overload_cfg(harness::Protocol::kFastCast));
  EXPECT_TRUE(r.report.ok);
  EXPECT_EQ(r.rejected, 0u) << "genuine protocol rejected a submission";
  EXPECT_EQ(r.expired, 0u) << "genuine protocol dropped on deadline";
  EXPECT_GT(r.busy_received, 0u) << "no advisories under 15x overload";
  EXPECT_GT(r.suppressed, 0u) << "advisories did not throttle the clients";
  expect_conservation(r);
}

TEST(FlowEndToEnd, TightDeadlineExpiresEarly) {
  auto cfg = overload_cfg(harness::Protocol::kMultiPaxos);
  cfg.mp_ordering = harness::ExperimentConfig::MpOrdering::kIds;
  cfg.mp_batch_fill = 8;
  cfg.mp_batch_delay = microseconds(200);
  // Deadline far under the queueing the overload builds: the leader should
  // drop early (kExpired) rather than burn consensus slots on dead work.
  cfg.client_flow.deadline = milliseconds(2);
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.report.ok);
  EXPECT_GT(r.expired, 0u) << "no deadline-aware early drops";
  expect_conservation(r);
}

TEST(FlowEndToEnd, FlowOffLeavesNoArtifacts) {
  auto cfg = overload_cfg(harness::Protocol::kMultiPaxos);
  cfg.flow.enable = false;
  cfg.client_flow = {};
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.report.ok);
  EXPECT_EQ(r.rejected, 0u);
  EXPECT_EQ(r.expired, 0u);
  EXPECT_EQ(r.timed_out, 0u);
  EXPECT_EQ(r.suppressed, 0u);
  EXPECT_EQ(r.busy_received, 0u);
  EXPECT_EQ(r.deadline_miss, 0u);
}

TEST(FlowEndToEnd, ClientTimesOutWhenClusterIsSilent) {
  auto cfg = overload_cfg(harness::Protocol::kMultiPaxos);
  cfg.drop_probability = 1.0;  // nothing survives the links
  cfg.run_checker = false;     // nothing to check; no traffic lands
  cfg.client_flow.request_timeout = milliseconds(10);
  cfg.client_flow.max_retries = 1;
  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.completions, 0u);
  EXPECT_GT(r.timed_out, 0u) << "request timeout never fired";
  expect_conservation(r);
}

TEST(FlowEndToEnd, DrainedOverloadRunPassesQuiescedChecks) {
  // Rejected submissions must not poison the quiesced validity/agreement
  // checks: the checker is told about terminal rejections so a multicast
  // with no delivery is accounted for, not flagged.
  auto cfg = overload_cfg(harness::Protocol::kMultiPaxos);
  cfg.mp_ordering = harness::ExperimentConfig::MpOrdering::kIds;
  cfg.mp_batch_fill = 8;
  cfg.mp_batch_delay = microseconds(200);
  cfg.measure = milliseconds(60);
  cfg.drain = true;
  cfg.check_level = Checker::Level::kFull;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.drained) << "overload run failed to quiesce";
  EXPECT_TRUE(r.report.ok) << "quiesced checks failed after rejections";
  EXPECT_GT(r.rejected + r.expired, 0u);
}

}  // namespace
}  // namespace fastcast
