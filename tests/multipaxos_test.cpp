// Non-genuine MultiPaxos atomic multicast tests: destination filtering,
// total order through the fixed group, 3δ latency, non-genuineness.

#include <gtest/gtest.h>

#include <map>

#include "fastcast/amcast/multipaxos_amcast.hpp"
#include "fastcast/harness/chaos.hpp"
#include "fastcast/harness/experiment.hpp"

namespace fastcast::harness {
namespace {

ExperimentConfig mp_config(std::size_t groups, std::size_t clients,
                           Environment env = Environment::kLan) {
  ExperimentConfig cfg;
  cfg.topo.env = env;
  cfg.topo.groups = groups;
  cfg.topo.clients = clients;
  cfg.topo.protocol = Protocol::kMultiPaxos;
  cfg.warmup = env == Environment::kLan ? milliseconds(10) : milliseconds(300);
  cfg.measure = env == Environment::kLan ? milliseconds(200) : seconds(2);
  cfg.check_level = Checker::Level::kFull;
  return cfg;
}

TEST(MultiPaxosAmcast, DeliversWithAllProperties) {
  auto cfg = mp_config(3, 6);
  cfg.dst_factory = same_dst_for_all(random_subset(3, 2));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
  EXPECT_GT(r.report.delivery_count, 0u);
}

TEST(MultiPaxosAmcast, FiltersDeliveriesByDestinationGroup) {
  auto cfg = mp_config(2, 2);
  cfg.dst_factory = [](std::size_t i) -> DstPicker {
    return fixed_group(static_cast<GroupId>(i));  // client i -> group i
  };
  Cluster cluster(cfg);
  std::map<NodeId, std::size_t> counts;
  for (NodeId n : cluster.deployment().membership.all_replicas()) {
    cluster.replica(n).add_observer(
        [&counts](Context& ctx, const MulticastMessage&) { ++counts[ctx.self()]; });
  }
  cluster.start();
  cluster.stop_clients(milliseconds(100));
  ASSERT_TRUE(cluster.simulator().run_to_idle(seconds(30)));
  // Groups 0 and 1 both delivered something; the ordering group (nodes of
  // the extra group) delivered nothing.
  const auto& m = cluster.deployment().membership;
  for (NodeId n : m.all_replicas()) {
    if (m.group_of(n) == cluster.deployment().ordering_group) {
      EXPECT_EQ(counts[n], 0u) << "orderer " << n << " delivered";
    } else {
      EXPECT_GT(counts[n], 0u) << "replica " << n;
    }
  }
}

TEST(MultiPaxosAmcast, TotalOrderAcrossAllGroups) {
  // Every replica's delivery sequence (restricted to its own messages) is
  // a subsequence of one global order — check pairwise consistency via the
  // checker's acyclicity plus identical order for common messages.
  auto cfg = mp_config(2, 4);
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  Cluster cluster(cfg);
  std::map<NodeId, std::vector<MsgId>> orders;
  for (NodeId n : cluster.deployment().membership.all_replicas()) {
    cluster.replica(n).add_observer(
        [&orders](Context& ctx, const MulticastMessage& msg) {
          orders[ctx.self()].push_back(msg.id);
        });
  }
  cluster.start();
  cluster.stop_clients(milliseconds(100));
  ASSERT_TRUE(cluster.simulator().run_to_idle(seconds(30)));
  // All destination replicas see the identical global sequence.
  const auto& ref = orders[0];
  EXPECT_FALSE(ref.empty());
  for (NodeId n = 1; n < 6; ++n) EXPECT_EQ(orders[n], ref) << "node " << n;
}

TEST(MultiPaxosAmcast, ThreeDeltaLatencyInWan) {
  auto cfg = mp_config(4, 1, Environment::kEmulatedWan);
  cfg.dst_factory = same_dst_for_all(all_groups(4));
  const auto r = run_experiment(cfg);
  ASSERT_GT(r.latency.count(), 10u);
  // submit→leader (~0, co-located) + accept RTT + learn ≈ 1 RTT.
  EXPECT_GT(to_milliseconds(r.latency.median()), 55.0);
  EXPECT_LT(to_milliseconds(r.latency.median()), 90.0);
}

TEST(MultiPaxosAmcast, LatencyIndependentOfDestinationCount) {
  double medians[2];
  int i = 0;
  for (std::size_t k : {1, 4}) {
    auto cfg = mp_config(4, 1, Environment::kEmulatedWan);
    cfg.dst_factory = same_dst_for_all(random_subset(4, k));
    const auto r = run_experiment(cfg);
    medians[i++] = to_milliseconds(r.latency.median());
  }
  EXPECT_NEAR(medians[0], medians[1], 10.0);
}

TEST(MultiPaxosAmcast, OrderingGroupSeesEveryMessageEvenWhenNotAddressed) {
  // The defining non-genuine behaviour: the fixed group works for every
  // message, including ones addressed to a single other group.
  auto cfg = mp_config(2, 2);
  cfg.dst_factory = same_dst_for_all(fixed_group(0));
  Cluster cluster(cfg);
  cluster.start();
  cluster.stop_clients(milliseconds(100));
  ASSERT_TRUE(cluster.simulator().run_to_idle(seconds(30)));
  const auto& m = cluster.deployment().membership;
  for (NodeId n : m.members(cluster.deployment().ordering_group)) {
    auto* mp = dynamic_cast<MultiPaxosAmcast*>(&cluster.replica(n).protocol());
    ASSERT_NE(mp, nullptr);
    EXPECT_GT(mp->ordered_count(), 0u) << "orderer " << n;
  }
}

TEST(MultiPaxosAmcast, DuplicateSubmissionsDeliveredOnce) {
  // Lossy links make the client stub retry submissions; dedup at the
  // leader and at delivery must keep integrity intact.
  auto cfg = mp_config(2, 2);
  cfg.drop_probability = 0.2;
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  cfg.measure = milliseconds(300);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
}

TEST(MultiPaxosAmcast, ScalesPoorlyVsGenuineForLocalTraffic) {
  // Fig. 3's qualitative claim at miniature scale: with 4 groups of local
  // traffic, genuine BaseCast clearly out-throughputs the fixed ordering
  // group under the same client population.
  double tput[2];
  int i = 0;
  for (Protocol proto : {Protocol::kBaseCast, Protocol::kMultiPaxos}) {
    ExperimentConfig cfg;
    cfg.topo.env = Environment::kLan;
    cfg.topo.groups = 4;
    cfg.topo.clients = 160;
    cfg.topo.protocol = proto;
    cfg.dst_factory = [](std::size_t c) {
      return fixed_group(static_cast<GroupId>(c % 4));
    };
    cfg.warmup = milliseconds(150);
    cfg.measure = milliseconds(400);
    cfg.check_level = Checker::Level::kFast;
    const auto r = run_experiment(cfg);
    EXPECT_TRUE(r.report.ok) << to_string(proto);
    tput[i++] = r.throughput.mean_per_sec;
  }
  EXPECT_GT(tput[0], tput[1] * 1.5) << "genuine should scale out";
}

// ---------------------------------------------------------------------------
// Id-ordering mode: bodies disseminated out-of-band, consensus orders
// compact id records. Ordering safety must be indistinguishable from the
// payload mode; only the wire traffic shape differs.

TEST(MultiPaxosIdOrdering, DeliversWithAllProperties) {
  auto cfg = mp_config(3, 6);
  cfg.mp_ordering = ExperimentConfig::MpOrdering::kIds;
  cfg.dst_factory = same_dst_for_all(random_subset(3, 2));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
  EXPECT_GT(r.report.delivery_count, 0u);
}

TEST(MultiPaxosIdOrdering, TotalOrderAcrossAllGroups) {
  auto cfg = mp_config(2, 4);
  cfg.mp_ordering = ExperimentConfig::MpOrdering::kIds;
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  Cluster cluster(cfg);
  std::map<NodeId, std::vector<MsgId>> orders;
  for (NodeId n : cluster.deployment().membership.all_replicas()) {
    cluster.replica(n).add_observer(
        [&orders](Context& ctx, const MulticastMessage& msg) {
          orders[ctx.self()].push_back(msg.id);
        });
  }
  cluster.start();
  cluster.stop_clients(milliseconds(100));
  ASSERT_TRUE(cluster.simulator().run_to_idle(seconds(30)));
  const auto& ref = orders[0];
  EXPECT_FALSE(ref.empty());
  for (NodeId n = 1; n < 6; ++n) EXPECT_EQ(orders[n], ref) << "node " << n;
}

TEST(MultiPaxosIdOrdering, BatchAccumulationStillDeliversEverything) {
  // Size/time thresholds hold records back; the flush timer must release
  // partial batches so nothing is stranded when load stops.
  auto cfg = mp_config(2, 8);
  cfg.mp_ordering = ExperimentConfig::MpOrdering::kIds;
  cfg.mp_batch_fill = 8;
  cfg.mp_batch_delay = milliseconds(2);
  cfg.observe = true;
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
  ASSERT_NE(r.obs, nullptr);
  const auto batches = r.obs->metrics.histograms();
  const auto it = batches.find("multipaxos.batch_records");
  ASSERT_NE(it, batches.end());
  EXPECT_GT(it->second.count, 0u);
}

TEST(MultiPaxosIdOrdering, SurvivesLossyLinksViaBodyPulls) {
  // 20% drop hits MpBody dissemination too: decided id records stall until
  // the pull path (MpBodyRequest against retained copies) or the client
  // stub's re-submission re-supplies the payload. Integrity + order must
  // hold and the run must still complete messages.
  auto cfg = mp_config(2, 2);
  cfg.mp_ordering = ExperimentConfig::MpOrdering::kIds;
  cfg.drop_probability = 0.2;
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  cfg.measure = milliseconds(300);
  const auto r = run_experiment(cfg);
  EXPECT_TRUE(r.report.ok) << r.report.violations[0];
  EXPECT_GT(r.report.delivery_count, 0u);
}

TEST(MultiPaxosIdOrdering, OrderersRetainOnlyBoundedBodies) {
  // Orderer nodes store bodies solely to serve pulls; the retained FIFO
  // must bound that store regardless of run length.
  auto cfg = mp_config(2, 8);
  cfg.mp_ordering = ExperimentConfig::MpOrdering::kIds;
  cfg.dst_factory = same_dst_for_all(all_groups(2));
  Cluster cluster(cfg);
  cluster.start();
  cluster.stop_clients(milliseconds(200));
  ASSERT_TRUE(cluster.simulator().run_to_idle(seconds(30)));
  const auto& m = cluster.deployment().membership;
  for (NodeId n : m.all_replicas()) {
    auto* mp = dynamic_cast<MultiPaxosAmcast*>(&cluster.replica(n).protocol());
    ASSERT_NE(mp, nullptr);
    EXPECT_EQ(mp->stalled_deliveries(), 0u) << "node " << n;
    EXPECT_LE(mp->body_store_size(), 8192u) << "node " << n;
  }
}

TEST(MultiPaxosIdOrdering, DurableChaosCampaignStaysSafe) {
  // Real process deaths while bodies ride outside consensus: restarted
  // replicas must restore WAL-logged bodies, replay decided id batches,
  // and pull anything lost in the crash window.
  for (std::uint64_t seed : {2u, 6u}) {
    ChaosRunConfig cfg;
    cfg.seed = seed;
    cfg.experiment.topo.env = Environment::kLan;
    cfg.experiment.topo.groups = 2;
    cfg.experiment.topo.clients = 4;
    cfg.experiment.topo.protocol = Protocol::kMultiPaxos;
    cfg.experiment.mp_ordering = ExperimentConfig::MpOrdering::kIds;
    cfg.experiment.warmup = milliseconds(20);
    cfg.experiment.measure = milliseconds(400);
    cfg.experiment.slice = milliseconds(20);
    cfg.experiment.check_level = Checker::Level::kFull;
    cfg.experiment.dst_factory = same_dst_for_all(random_subset(2, 2));
    cfg.experiment.drop_probability = 0.01;
    cfg.experiment.heartbeats = true;
    cfg.experiment.durability.durable = true;
    cfg.experiment.durability.snapshot_every = 512;
    cfg.faults.crashes = 2;
    cfg.faults.leader_bias = 0.5;
    cfg.faults.min_downtime = milliseconds(40);
    cfg.faults.max_downtime = milliseconds(80);
    const ChaosRunResult result = run_chaos(cfg);
    ASSERT_TRUE(result.report.ok)
        << "seed " << seed << "\n"
        << result.to_string() << "\nschedule:\n"
        << result.schedule.describe();
    EXPECT_GT(result.completions, 0u) << "seed " << seed;
    EXPECT_EQ(result.recoveries, result.crashes);
  }
}

}  // namespace
}  // namespace fastcast::harness
