// Paxos tests: single-group consensus service — ordered decisions,
// batching, competing proposers, leader change, lossy links, learners.

#include <gtest/gtest.h>

#include <map>

#include "fastcast/paxos/group_consensus.hpp"
#include "fastcast/sim/simulator.hpp"

namespace fastcast::paxos {
namespace {

using sim::ConstantLatency;
using sim::SimConfig;
using sim::Simulator;

std::vector<std::byte> value_of(int v) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(v));
  return w.take();
}

int value_to_int(const std::vector<std::byte>& bytes) {
  Reader r(bytes);
  return static_cast<int>(r.u32());
}

/// Node hosting one GroupConsensus engine and recording decisions in order.
class ConsensusNode : public Process {
 public:
  ConsensusNode(GroupConsensus::Config cfg, NodeId self) : cons(cfg, self) {
    cons.set_decide([this](InstanceId inst, const std::vector<std::byte>& v) {
      decided.emplace_back(inst, v);
    });
  }

  void on_start(Context& ctx) override {
    cons.on_start(ctx);
    if (start_hook) start_hook(ctx);
  }
  void on_recover(Context& ctx) override { cons.on_recover(ctx); }
  void on_message(Context& ctx, NodeId from, const Message& msg) override {
    cons.handle(ctx, from, msg);
  }

  GroupConsensus cons;
  std::function<void(Context&)> start_hook;
  std::vector<std::pair<InstanceId, std::vector<std::byte>>> decided;
};

struct Fixture {
  explicit Fixture(SimConfig sim_cfg = {}, bool heartbeats = false,
                   std::size_t replicas = 3) {
    std::vector<RegionId> regions(replicas, 0);
    membership.add_group(replicas, regions);
    sim = std::make_unique<Simulator>(
        membership, std::make_unique<ConstantLatency>(milliseconds(1), 0.05),
        sim_cfg);
    GroupConsensus::Config cfg;
    cfg.group = 0;
    cfg.members = membership.members(0);
    cfg.reliable_links = sim_cfg.drop_probability == 0.0;
    cfg.retry_interval = milliseconds(15);
    cfg.heartbeats = heartbeats;
    cfg.heartbeat_interval = milliseconds(10);
    cfg.election_timeout = milliseconds(50);
    for (std::size_t i = 0; i < replicas; ++i) {
      nodes.push_back(std::make_shared<ConsensusNode>(cfg, static_cast<NodeId>(i)));
      sim->add_process(static_cast<NodeId>(i), nodes.back());
    }
  }

  /// All (non-crashed) nodes must have identical decision streams.
  void expect_agreement(std::size_t expected_decisions) {
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      if (sim->is_crashed(static_cast<NodeId>(n))) continue;
      ASSERT_GE(nodes[n]->decided.size(), expected_decisions) << "node " << n;
      EXPECT_EQ(nodes[n]->decided, nodes[0]->decided) << "node " << n;
    }
  }

  Membership membership;
  std::unique_ptr<Simulator> sim;
  std::vector<std::shared_ptr<ConsensusNode>> nodes;
};

TEST(GroupConsensus, DecidesProposedValueOnAllMembers) {
  Fixture f;
  f.nodes[0]->start_hook = [&f](Context& ctx) {
    f.nodes[0]->cons.propose(ctx, value_of(42));
  };
  f.sim->start();
  f.sim->run_to_idle();
  f.expect_agreement(1);
  EXPECT_EQ(value_to_int(f.nodes[0]->decided[0].second), 42);
  EXPECT_EQ(f.nodes[0]->decided[0].first, 0u);
}

TEST(GroupConsensus, DecisionsArriveInInstanceOrder) {
  Fixture f;
  f.nodes[0]->start_hook = [&f](Context& ctx) {
    for (int i = 0; i < 100; ++i) f.nodes[0]->cons.propose(ctx, value_of(i));
  };
  f.sim->start();
  f.sim->run_to_idle();
  f.expect_agreement(100);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(f.nodes[0]->decided[i].first, i);
    EXPECT_EQ(value_to_int(f.nodes[0]->decided[i].second), static_cast<int>(i));
  }
}

TEST(GroupConsensus, NonLeaderProposeIsIgnored) {
  Fixture f;
  f.nodes[1]->start_hook = [&f](Context& ctx) {
    f.nodes[1]->cons.propose(ctx, value_of(7));
  };
  f.sim->start();
  f.sim->run_to_idle();
  EXPECT_TRUE(f.nodes[0]->decided.empty());
  EXPECT_FALSE(f.nodes[1]->cons.is_leader(f.sim->context(1)));
}

TEST(GroupConsensus, StableLeaderDecidesInOneRoundTrip) {
  Fixture f;
  Time decided_at = -1;
  f.nodes[0]->start_hook = [&f](Context& ctx) {
    f.nodes[0]->cons.propose(ctx, value_of(1));
  };
  f.sim->start();
  f.sim->run_to_idle();
  ASSERT_FALSE(f.nodes[0]->decided.empty());
  (void)decided_at;
  // Leader learns after P2a (1ms) + P2b (1ms) ≈ 2ms plus jitter.
  // The decision event count is the proxy here; timing is covered by the
  // latency-shape integration tests.
  f.expect_agreement(1);
}

TEST(GroupConsensus, PipelinesUpToWindowAndQueuesBeyond) {
  Fixture f;
  f.nodes[0]->start_hook = [&f](Context& ctx) {
    for (int i = 0; i < 200; ++i) f.nodes[0]->cons.propose(ctx, value_of(i));
    EXPECT_GT(f.nodes[0]->cons.proposer().queued(), 0u);
    EXPECT_EQ(f.nodes[0]->cons.proposer().in_flight(), 32u);
  };
  f.sim->start();
  f.sim->run_to_idle();
  f.expect_agreement(200);
}

TEST(GroupConsensus, SurvivesMessageLoss) {
  SimConfig sim_cfg;
  sim_cfg.drop_probability = 0.25;
  Fixture f(sim_cfg);
  f.nodes[0]->start_hook = [&f](Context& ctx) {
    for (int i = 0; i < 30; ++i) f.nodes[0]->cons.propose(ctx, value_of(i));
  };
  f.sim->start();
  f.sim->run_until(seconds(10));
  f.expect_agreement(30);
}

TEST(GroupConsensus, FollowerCrashDoesNotBlockQuorum) {
  Fixture f;
  f.nodes[0]->start_hook = [&f](Context& ctx) {
    for (int i = 0; i < 10; ++i) f.nodes[0]->cons.propose(ctx, value_of(i));
  };
  f.sim->schedule_crash(2, microseconds(100));
  f.sim->start();
  f.sim->run_to_idle();
  ASSERT_GE(f.nodes[0]->decided.size(), 10u);
  EXPECT_EQ(f.nodes[0]->decided, f.nodes[1]->decided);
}

TEST(GroupConsensus, LeaderCrashTriggersElectionAndRecovery) {
  Fixture f({}, /*heartbeats=*/true);
  f.nodes[0]->start_hook = [&f](Context& ctx) {
    for (int i = 0; i < 5; ++i) f.nodes[0]->cons.propose(ctx, value_of(i));
  };
  // Crash the initial leader shortly after it starts proposing; node 1
  // must take over (epoch 1) and new proposals must succeed.
  f.sim->schedule_crash(0, milliseconds(30));
  ConsensusNode* n1 = f.nodes[1].get();
  f.nodes[1]->start_hook = [n1](Context& ctx) {
    ctx.set_timer(milliseconds(200), [n1, &ctx] {
      n1->cons.propose(ctx, value_of(100));
    });
  };
  f.sim->start();
  f.sim->run_until(seconds(2));
  EXPECT_TRUE(f.nodes[1]->cons.is_leader(f.sim->context(1)));
  // Every decision on 1 and 2 agrees, and 100 eventually decided.
  EXPECT_EQ(f.nodes[1]->decided, f.nodes[2]->decided);
  bool found = false;
  for (auto& [inst, v] : f.nodes[1]->decided) {
    if (!v.empty() && value_to_int(v) == 100) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GroupConsensus, CompetingProposerSafety) {
  // Force node 1 to run Phase 1 with a higher ballot while node 0 is
  // proposing; decisions must stay identical on all members and every
  // proposed value must be decided at most once.
  Fixture f;
  f.nodes[0]->start_hook = [&f](Context& ctx) {
    for (int i = 0; i < 20; ++i) f.nodes[0]->cons.propose(ctx, value_of(i));
  };
  ConsensusNode* n1 = f.nodes[1].get();
  f.nodes[1]->start_hook = [n1](Context& ctx) {
    ctx.set_timer(microseconds(1500), [n1, &ctx] {
      n1->cons.proposer().start_leadership(ctx, 5,
                                           n1->cons.learner().next_to_deliver());
      n1->cons.proposer().propose(ctx, value_of(1000));
    });
  };
  f.sim->start();
  f.sim->run_until(seconds(5));
  EXPECT_EQ(f.nodes[1]->decided, f.nodes[2]->decided);
  // At most one decision per instance and per non-empty value.
  std::map<int, int> value_counts;
  for (auto& [inst, v] : f.nodes[1]->decided) {
    if (!v.empty()) ++value_counts[value_to_int(v)];
  }
  for (auto& [v, count] : value_counts) {
    EXPECT_EQ(count, 1) << "value " << v << " decided twice";
  }
  EXPECT_EQ(value_counts.count(1000), 1u);
}

TEST(GroupConsensus, FiveReplicaGroupToleratesTwoCrashes) {
  Fixture f({}, false, 5);
  f.nodes[0]->start_hook = [&f](Context& ctx) {
    for (int i = 0; i < 10; ++i) f.nodes[0]->cons.propose(ctx, value_of(i));
  };
  f.sim->schedule_crash(3, microseconds(50));
  f.sim->schedule_crash(4, microseconds(50));
  f.sim->start();
  f.sim->run_to_idle();
  ASSERT_GE(f.nodes[0]->decided.size(), 10u);
  EXPECT_EQ(f.nodes[0]->decided, f.nodes[1]->decided);
  EXPECT_EQ(f.nodes[0]->decided, f.nodes[2]->decided);
}

TEST(Acceptor, NacksLowerBallot) {
  Membership m;
  m.add_group(1, {0});
  Simulator sim(m, std::make_unique<ConstantLatency>(1), {});
  // Drive the acceptor directly through a scripted process.
  class Script : public Process {
   public:
    Acceptor acc{0, {0}};
    std::vector<const char*> log;
    void on_start(Context& ctx) override {
      acc.set_initial_promise(Ballot{5, 0});
      acc.on_p1a(ctx, 0, P1a{0, Ballot{3, 0}, 0});  // lower: nack
      acc.on_p1a(ctx, 0, P1a{0, Ballot{7, 0}, 0});  // higher: promise
      acc.on_p2a(ctx, 0, P2a{0, Ballot{6, 0}, 0, {}});  // below promise: nack
      acc.on_p2a(ctx, 0, P2a{0, Ballot{7, 0}, 0, {}});  // accepted
    }
    void on_message(Context&, NodeId, const Message& msg) override {
      log.push_back(message_kind(msg));
    }
  };
  auto script = std::make_shared<Script>();
  sim.add_process(0, script);
  sim.start();
  sim.run_to_idle();
  ASSERT_EQ(script->log.size(), 4u);
  EXPECT_STREQ(script->log[0], "PaxosNack");
  EXPECT_STREQ(script->log[1], "P1b");
  EXPECT_STREQ(script->log[2], "PaxosNack");
  EXPECT_STREQ(script->log[3], "P2b");
  EXPECT_EQ(script->acc.promised(), (Ballot{7, 0}));
}

TEST(Learner, IgnoresStaleBallotVotesAndDuplicates) {
  Membership m;
  m.add_group(1, {0});
  Simulator sim(m, std::make_unique<ConstantLatency>(1), {});
  class Script : public Process {
   public:
    Learner learner{2};
    std::vector<InstanceId> decided;
    void on_start(Context& ctx) override {
      learner.set_decide([this](InstanceId i, const std::vector<std::byte>&) {
        decided.push_back(i);
      });
      const auto v = value_of(1);
      // Duplicate votes from one acceptor must not count twice.
      learner.on_p2b(ctx, P2b{0, Ballot{2, 0}, 0, /*acceptor=*/1, v});
      learner.on_p2b(ctx, P2b{0, Ballot{2, 0}, 0, 1, v});
      EXPECT_TRUE(decided.empty());
      // A stale lower-ballot vote must not count either. (Round 1, not 0:
      // round 0 is the repair sentinel, which decides outright.)
      learner.on_p2b(ctx, P2b{0, Ballot{1, 0}, 0, 2, v});
      EXPECT_TRUE(decided.empty());
      // Second distinct acceptor at the right ballot decides.
      learner.on_p2b(ctx, P2b{0, Ballot{2, 0}, 0, 2, v});
      EXPECT_EQ(decided.size(), 1u);
    }
    void on_message(Context&, NodeId, const Message&) override {}
  };
  auto script = std::make_shared<Script>();
  sim.add_process(0, script);
  sim.start();
  sim.run_to_idle();
  EXPECT_EQ(script->decided.size(), 1u);
}

TEST(Learner, RepairSentinelVoteDecidesWithoutQuorum) {
  Membership m;
  m.add_group(1, {0});
  Simulator sim(m, std::make_unique<ConstantLatency>(1), {});
  class Script : public Process {
   public:
    Learner learner{2};
    std::vector<int> decided_values;
    void on_start(Context& ctx) override {
      learner.set_decide([this](InstanceId, const std::vector<std::byte>& v) {
        decided_values.push_back(value_to_int(v));
      });
      // One real-ballot vote (quorum = 2, not enough on its own) ...
      learner.on_p2b(ctx, P2b{0, Ballot{3, 1}, 0, 1, value_of(7)});
      EXPECT_TRUE(decided_values.empty());
      // ... then a catch-up replay of the same instance from an acceptor
      // that learned it via repair (sentinel ballot). Were it counted as a
      // vote it would split the quorum across ballots and stall; instead
      // the value is decided by construction and decides immediately.
      learner.on_p2b(ctx, P2b{0, Ballot{}, 0, 2, value_of(7)});
      EXPECT_EQ(decided_values, (std::vector<int>{7}));
      // Later real votes for the now-decided instance are no-ops.
      learner.on_p2b(ctx, P2b{0, Ballot{3, 1}, 0, 0, value_of(7)});
      EXPECT_EQ(decided_values.size(), 1u);
    }
    void on_message(Context&, NodeId, const Message&) override {}
  };
  auto script = std::make_shared<Script>();
  sim.add_process(0, script);
  sim.start();
  sim.run_to_idle();
  EXPECT_EQ(script->decided_values, (std::vector<int>{7}));
}

TEST(Learner, HigherBallotVotesSupersedeLower) {
  Membership m;
  m.add_group(1, {0});
  Simulator sim(m, std::make_unique<ConstantLatency>(1), {});
  class Script : public Process {
   public:
    Learner learner{2};
    std::vector<int> decided_values;
    void on_start(Context& ctx) override {
      learner.set_decide([this](InstanceId, const std::vector<std::byte>& v) {
        decided_values.push_back(value_to_int(v));
      });
      learner.on_p2b(ctx, P2b{0, Ballot{1, 0}, 0, 1, value_of(10)});
      // Ballot 2 votes arrive; the ballot-1 vote must be discarded.
      learner.on_p2b(ctx, P2b{0, Ballot{2, 1}, 0, 2, value_of(20)});
      EXPECT_TRUE(decided_values.empty());
      learner.on_p2b(ctx, P2b{0, Ballot{2, 1}, 0, 0, value_of(20)});
      EXPECT_EQ(decided_values, (std::vector<int>{20}));
    }
    void on_message(Context&, NodeId, const Message&) override {}
  };
  auto script = std::make_shared<Script>();
  sim.add_process(0, script);
  sim.start();
  sim.run_to_idle();
}

TEST(LeaderElector, StaticModeNeverChanges) {
  Fixture f;
  f.sim->start();
  f.sim->run_until(seconds(2));
  for (auto& node : f.nodes) {
    EXPECT_EQ(node->cons.leader(), 0u);
    EXPECT_EQ(node->cons.elector().epoch(), 0u);
  }
}

TEST(LeaderElector, HeartbeatsKeepStableLeaderInPlace) {
  Fixture f({}, /*heartbeats=*/true);
  f.sim->start();
  f.sim->run_until(seconds(2));
  for (auto& node : f.nodes) {
    EXPECT_EQ(node->cons.leader(), 0u) << "spurious election";
  }
}

TEST(LeaderElector, CrashedLeaderIsReplacedByNextMember) {
  Fixture f({}, /*heartbeats=*/true);
  f.sim->schedule_crash(0, milliseconds(40));
  f.sim->start();
  f.sim->run_until(seconds(1));
  EXPECT_EQ(f.nodes[1]->cons.leader(), 1u);
  EXPECT_EQ(f.nodes[2]->cons.leader(), 1u);
  EXPECT_GE(f.nodes[1]->cons.elector().epoch(), 1u);
}

TEST(LeaderElector, SuccessiveCrashesRotateLeadership) {
  Fixture f({}, /*heartbeats=*/true, /*replicas=*/5);
  f.sim->schedule_crash(0, milliseconds(40));
  f.sim->schedule_crash(1, milliseconds(400));
  f.sim->start();
  f.sim->run_until(seconds(2));
  EXPECT_EQ(f.nodes[2]->cons.leader(), 2u);
  EXPECT_EQ(f.nodes[3]->cons.leader(), 2u);
  EXPECT_EQ(f.nodes[4]->cons.leader(), 2u);
}

TEST(LeaderElector, RePromotionDoesNotDuplicateHeartbeatChain) {
  // Regression: advance_epoch used to call arm_heartbeat unconditionally,
  // so a node that was demoted and re-promoted while its original chain
  // callback was still pending ended up with TWO self-rescheduling chains,
  // doubling heartbeat traffic forever. Script a demote (epoch 1, leader 1)
  // and a re-promote (epoch 3, leader 0 again) before the first chain
  // callback fires, then count node 0's heartbeats.
  class ElectorHost : public Process {
   public:
    explicit ElectorHost(LeaderElector::Config cfg) : elector(std::move(cfg)) {}
    void on_start(Context& ctx) override { elector.on_start(ctx); }
    void on_message(Context& ctx, NodeId from, const Message& msg) override {
      elector.handle(ctx, from, msg);
    }
    LeaderElector elector;
  };

  Membership m;
  m.add_group(3, {0, 0, 0});
  Simulator sim(m, std::make_unique<ConstantLatency>(milliseconds(1)), {});
  LeaderElector::Config cfg;
  cfg.group = 0;
  cfg.members = m.members(0);
  cfg.heartbeats = true;
  cfg.heartbeat_interval = milliseconds(20);
  cfg.timeout = seconds(10);  // monitor never advances epochs in this run
  auto host = std::make_shared<ElectorHost>(cfg);
  sim.add_process(0, host);

  class Script : public Process {
   public:
    void on_start(Context& ctx) override {
      // Demote node 0 (epoch 1 -> leader 1), then re-promote it (epoch 3 ->
      // leader 0), both before its first chain callback at 20ms.
      ctx.set_timer(milliseconds(5), [&ctx] {
        ctx.send(0, Message{FdHeartbeat{0, 1, 1}});
      });
      ctx.set_timer(milliseconds(10), [&ctx] {
        ctx.send(0, Message{FdHeartbeat{0, 2, 3}});
      });
    }
    void on_message(Context&, NodeId, const Message&) override {}
  };
  sim.add_process(1, std::make_shared<Script>());
  class Sink : public Process {
    void on_message(Context&, NodeId, const Message&) override {}
  };
  sim.add_process(2, std::make_shared<Sink>());

  std::size_t hb_sends = 0;
  sim.set_send_observer([&](NodeId from, NodeId, const Message& msg) {
    if (from == 0 && std::holds_alternative<FdHeartbeat>(msg.payload)) {
      ++hb_sends;
    }
  });
  sim.start();
  sim.run_until(milliseconds(400));

  EXPECT_EQ(host->elector.epoch(), 3u);
  EXPECT_EQ(host->elector.leader(), 0u);
  // One chain firing every 20ms over ~400ms, 2 peers per fire ≈ 40 sends.
  // The duplicate-chain bug produced roughly double.
  EXPECT_GE(hb_sends, 30u);
  EXPECT_LE(hb_sends, 48u) << "duplicate heartbeat chain";
}

TEST(GroupConsensus, CrashedFollowerRecoversAndCatchesUp) {
  SimConfig sim_cfg;
  sim_cfg.drop_probability = 0.05;  // lossy: retry + catch-up machinery on
  Fixture f(sim_cfg);
  ConsensusNode* n0 = f.nodes[0].get();  // raw: a shared_ptr capture in the
  // node's own start_hook would be a refcount cycle (the fixture owns it)
  f.nodes[0]->start_hook = [n0](Context& ctx) {
    for (int i = 0; i < 10; ++i) n0->cons.propose(ctx, value_of(i));
    // Second batch lands after node 2 recovers.
    ctx.set_timer(milliseconds(300), [n0, &ctx] {
      for (int i = 10; i < 20; ++i) n0->cons.propose(ctx, value_of(i));
    });
  };
  f.sim->schedule_crash(2, milliseconds(20));
  f.sim->schedule_recover(2, milliseconds(200));
  f.sim->start();
  f.sim->run_until(seconds(10));
  // The recovered follower must learn the decisions it slept through (via
  // the P2bRequest catch-up poll) as well as the post-recovery batch.
  f.expect_agreement(20);
}

TEST(GroupConsensus, RecoveredLeaderRejoinsAsFollower) {
  SimConfig sim_cfg;
  sim_cfg.drop_probability = 0.05;
  Fixture f(sim_cfg, /*heartbeats=*/true);
  ConsensusNode* n0 = f.nodes[0].get();
  ConsensusNode* n1 = f.nodes[1].get();
  f.nodes[0]->start_hook = [n0](Context& ctx) {
    for (int i = 0; i < 5; ++i) n0->cons.propose(ctx, value_of(i));
  };
  f.nodes[1]->start_hook = [n1](Context& ctx) {
    // Proposed after node 0 is back: node 1 should still be leader then.
    ctx.set_timer(milliseconds(600), [n1, &ctx] {
      n1->cons.propose(ctx, value_of(100));
    });
  };
  f.sim->schedule_crash(0, milliseconds(40));
  f.sim->schedule_recover(0, milliseconds(400));
  f.sim->start();
  f.sim->run_until(seconds(5));
  // The old leader wakes up believing epoch 0; node 1's heartbeats must
  // demote it and all three must converge on the same leader and log.
  EXPECT_EQ(f.nodes[0]->cons.leader(), f.nodes[1]->cons.leader());
  EXPECT_EQ(f.nodes[2]->cons.leader(), f.nodes[1]->cons.leader());
  EXPECT_GE(f.nodes[1]->cons.elector().epoch(), 1u);
  f.expect_agreement(6);
  bool found = false;
  for (auto& [inst, v] : f.nodes[0]->decided) {
    if (!v.empty() && value_to_int(v) == 100) found = true;
  }
  EXPECT_TRUE(found) << "post-recovery proposal not decided on recovered node";
}

TEST(GroupConsensus, LearnerCatchUpFillsTailGapUnderLoss) {
  // With 30% loss, a follower can miss every P2b of the final instances;
  // the P2bRequest poll must close the gap without new proposals.
  SimConfig sim_cfg;
  sim_cfg.drop_probability = 0.3;
  Fixture f(sim_cfg);
  f.nodes[0]->start_hook = [&f](Context& ctx) {
    for (int i = 0; i < 10; ++i) f.nodes[0]->cons.propose(ctx, value_of(i));
  };
  f.sim->start();
  f.sim->run_until(seconds(15));
  for (auto& node : f.nodes) {
    EXPECT_GE(node->decided.size(), 10u);
  }
}

TEST(Learner, HoldsGapsUntilFilled) {
  Membership m;
  m.add_group(1, {0});
  Simulator sim(m, std::make_unique<ConstantLatency>(1), {});
  class Script : public Process {
   public:
    Learner learner{1};
    std::vector<InstanceId> decided;
    void on_start(Context& ctx) override {
      learner.set_decide([this](InstanceId i, const std::vector<std::byte>&) {
        decided.push_back(i);
      });
      learner.on_p2b(ctx, P2b{0, Ballot{1, 0}, 2, 0, value_of(2)});
      learner.on_p2b(ctx, P2b{0, Ballot{1, 0}, 1, 0, value_of(1)});
      EXPECT_TRUE(decided.empty());  // instance 0 missing
      learner.on_p2b(ctx, P2b{0, Ballot{1, 0}, 0, 0, value_of(0)});
      EXPECT_EQ(decided, (std::vector<InstanceId>{0, 1, 2}));
    }
    void on_message(Context&, NodeId, const Message&) override {}
  };
  auto script = std::make_shared<Script>();
  sim.add_process(0, script);
  sim.start();
  sim.run_to_idle();
}

}  // namespace
}  // namespace fastcast::paxos
