#include "fastcast/harness/chaos.hpp"

#include <sstream>

#include "fastcast/common/assert.hpp"

namespace fastcast::harness {

ChaosRunResult run_chaos(const ChaosRunConfig& config) {
  ExperimentConfig cfg = config.experiment;
  cfg.seed = config.seed;
  cfg.observe = true;  // fault counters and the failover histogram

  Cluster cluster(cfg);
  auto& sim = cluster.simulator();

  sim::ChaosConfig faults = config.faults;
  if (faults.end <= faults.start) {
    faults.start = cfg.warmup;
    faults.end = cfg.warmup + cfg.measure;
  }
  ChaosRunResult result;
  result.schedule = sim::ChaosSchedule::generate(
      cluster.deployment().membership, faults, config.seed);
  result.schedule.apply(sim);

  cluster.start();
  sim.run_until(cfg.warmup);
  const Time window_end = cfg.warmup + cfg.measure;
  cluster.metrics().open_window(cfg.warmup, window_end, cfg.slice);
  sim.run_until(window_end);
  cluster.metrics().close_window();
  cluster.stop_clients(window_end);
  sim.run_for(config.cooldown);

  // Safety only: heartbeat timers keep the queue busy forever, so the
  // quiesced (agreement/validity) checks don't apply. Recovered nodes are
  // correct processes — they are NOT excluded via note_crashed.
  result.report = cluster.checker().check(/*quiesced=*/false, cfg.check_level);

  result.completions = cluster.metrics().completions_total();
  const auto& slices = cluster.metrics().slice_counts();
  if (!slices.empty()) {
    std::size_t live = 0;
    for (const auto c : slices) live += c > 0 ? 1 : 0;
    result.availability =
        static_cast<double>(live) / static_cast<double>(slices.size());
  }

  const auto obs = cluster.observability();
  FC_ASSERT(obs != nullptr);
  result.crashes = obs->metrics.counter_value("fault.crashes");
  result.recoveries = obs->metrics.counter_value("fault.recoveries");
  result.leader_failovers = obs->metrics.counter_value("paxos.leader_failovers");
  const auto hists = obs->metrics.histograms();
  if (auto it = hists.find("paxos.failover_latency_ns"); it != hists.end()) {
    result.failover_p99_ns = it->second.p99;
  }
  return result;
}

std::string ChaosRunResult::to_string() const {
  std::ostringstream out;
  out << (report.ok ? "OK " : "VIOLATION ") << "completions=" << completions
      << " availability=" << availability << " crashes=" << crashes
      << " recoveries=" << recoveries << " failovers=" << leader_failovers;
  if (failover_p99_ns > 0) {
    out << " failover_p99_ms=" << static_cast<double>(failover_p99_ns) / 1e6;
  }
  for (const auto& v : report.violations) out << "\n  " << v;
  return out.str();
}

}  // namespace fastcast::harness
