#include "fastcast/harness/chaos.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "fastcast/amcast/node.hpp"
#include "fastcast/common/assert.hpp"
#include "fastcast/paxos/group_consensus.hpp"

namespace fastcast::harness {

namespace {

/// The highest promise ballot and per-instance accepted ballots a node has
/// externalized (sent in a P1b/P2b) for one group. Durability contract:
/// after any sequence of crashes, the node's recovered state must never
/// fall below these — a lower promise would let it re-promise to a stale
/// proposer and break the quorum intersection argument.
struct AcceptorFloor {
  Ballot promised;
  std::map<InstanceId, Ballot> accepted;
};

using FloorMap = std::map<std::pair<NodeId, GroupId>, AcceptorFloor>;

void observe_externalized(FloorMap& floors, NodeId from, const Message& msg) {
  if (const auto* p1b = std::get_if<P1b>(&msg.payload)) {
    AcceptorFloor& f = floors[{from, p1b->group}];
    f.promised = std::max(f.promised, p1b->ballot);
    for (const auto& e : p1b->accepted) {
      Ballot& b = f.accepted[e.instance];
      b = std::max(b, e.vballot);
    }
  } else if (const auto* p2b = std::get_if<P2b>(&msg.payload)) {
    if (p2b->acceptor != from) return;  // not this node's acceptor state
    AcceptorFloor& f = floors[{from, p2b->group}];
    f.promised = std::max(f.promised, p2b->ballot);
    Ballot& b = f.accepted[p2b->instance];
    b = std::max(b, p2b->ballot);
  }
}

/// Re-reads each floor-holding node's durable state from its backend and
/// asserts no externalized promise/accept regressed. Appends violations to
/// the report; returns the number of (node, group) checks performed.
std::uint64_t check_durability_floors(Cluster& cluster, const FloorMap& floors,
                                      Checker::Report& report) {
  std::uint64_t checks = 0;
  storage::StorageManager* sm = cluster.storage();
  FC_ASSERT(sm != nullptr);
  auto violation = [&report](std::string text) {
    report.ok = false;
    report.violations.push_back(std::move(text));
  };
  for (const auto& [key, floor] : floors) {
    const auto [node, group] = key;
    // Cold re-read: exactly what a fresh process after kill -9 would see.
    const storage::DurableState& durable = sm->node(node)->reset_and_recover();
    ++checks;
    const auto git = durable.groups.find(group);
    const storage::DurableState::GroupState* gs =
        git == durable.groups.end() ? nullptr : &git->second;
    if (gs == nullptr || gs->promised < floor.promised) {
      std::ostringstream out;
      out << "durability: node " << node << " group " << group
          << " promise regressed: externalized (" << floor.promised.round << ","
          << floor.promised.node << ") durable (";
      if (gs != nullptr) {
        out << gs->promised.round << "," << gs->promised.node;
      } else {
        out << "none";
      }
      out << ")";
      violation(out.str());
      continue;
    }
    for (const auto& [inst, ballot] : floor.accepted) {
      // Watermark pruning legitimately drops accepted entries below the
      // group's floor: every live learner settled them, so no peer can ever
      // need them again. Not a durability loss.
      if (inst < gs->pruned_below) continue;
      const auto ait = gs->accepted.find(inst);
      if (ait == gs->accepted.end() || ait->second.ballot < ballot) {
        std::ostringstream out;
        out << "durability: node " << node << " group " << group
            << " accepted value lost at instance " << inst
            << ": externalized ballot (" << ballot.round << "," << ballot.node
            << ")";
        violation(out.str());
      }
    }
  }
  return checks;
}

}  // namespace

ChaosRunResult run_chaos(const ChaosRunConfig& config) {
  ExperimentConfig cfg = config.experiment;
  cfg.seed = config.seed;
  cfg.observe = true;  // fault counters and the failover histogram

  Cluster cluster(cfg);
  auto& sim = cluster.simulator();

  const bool durable = cfg.durability.durable;
  // Decides how many unsynced bytes survive each kill (torn-write model).
  Rng torn_rng(config.seed ^ 0x7042a11ULL);
  FloorMap floors;
  if (durable) {
    sim.set_send_observer([&floors](NodeId from, NodeId, const Message& msg) {
      observe_externalized(floors, from, msg);
    });
    sim.set_crash_hook([&cluster, &torn_rng](NodeId node) {
      cluster.storage()->node(node)->on_crash(&torn_rng);
    });
    // Real process death: the old replica object is discarded and a fresh
    // one rebuilt from snapshot + surviving WAL.
    sim.set_recovery_factory([&cluster](NodeId node) {
      return cluster.rebuild_replica(node);
    });
  }

  sim::ChaosConfig faults = config.faults;
  if (faults.end <= faults.start) {
    faults.start = cfg.warmup;
    faults.end = cfg.warmup + cfg.measure;
  }
  ChaosRunResult result;
  result.schedule = sim::ChaosSchedule::generate(
      cluster.deployment().membership, faults, config.seed);
  result.schedule.apply(sim);

  cluster.start();
  sim.run_until(cfg.warmup);
  const Time window_end = cfg.warmup + cfg.measure;
  cluster.metrics().open_window(cfg.warmup, window_end, cfg.slice);
  sim.run_until(window_end);
  cluster.metrics().close_window();
  cluster.stop_clients(window_end);
  sim.run_for(config.cooldown);

  // Safety only: heartbeat timers keep the queue busy forever, so the
  // quiesced (agreement/validity) checks don't apply. Recovered nodes are
  // correct processes — they are NOT excluded via note_crashed.
  result.report = cluster.checker().check(/*quiesced=*/false, cfg.check_level);

  result.completions = cluster.metrics().completions_total();
  if (cfg.flow.enable) {
    const Metrics& m = cluster.metrics();
    result.sent = cluster.total_sent();
    result.rejected = m.rejected_total();
    result.expired = m.expired_total();
    result.timed_out = m.timeouts_total();
    result.suppressed = m.suppressed_total();
    result.retries = m.retries_total();
    result.in_flight_end = cluster.total_in_flight();
  }
  const auto& slices = cluster.metrics().slice_counts();
  if (!slices.empty()) {
    std::size_t live = 0;
    for (const auto c : slices) live += c > 0 ? 1 : 0;
    result.availability =
        static_cast<double>(live) / static_cast<double>(slices.size());
  }

  const auto obs = cluster.observability();
  FC_ASSERT(obs != nullptr);
  result.crashes = obs->metrics.counter_value("fault.crashes");
  result.recoveries = obs->metrics.counter_value("fault.recoveries");
  result.leader_failovers = obs->metrics.counter_value("paxos.leader_failovers");
  const auto hists = obs->metrics.histograms();
  if (auto it = hists.find("paxos.failover_latency_ns"); it != hists.end()) {
    result.failover_p99_ns = it->second.p99;
  }

  if (cfg.repair.enable) {
    result.repair_transfers = obs->metrics.counter_value("repair.transfers");
    result.repair_completed =
        obs->metrics.counter_value("repair.transfers_completed");
    result.repair_entries_installed =
        obs->metrics.counter_value("repair.entries_installed");
    result.prune_watermark = obs->metrics.gauge_value("repair.prune_watermark");

    // Residual lag after the settle window: how far the slowest learner of
    // any consensus group trails its fastest peer. Crash episodes all
    // recover inside the measurement window, so every replica should be
    // back at (or near) the frontier by now; a large spread means catch-up
    // — transfer or tail learning — failed to converge.
    std::map<GroupId, std::pair<InstanceId, InstanceId>> spread;  // min, max
    for (NodeId node : cluster.deployment().membership.all_replicas()) {
      if (sim.is_crashed(node)) continue;
      paxos::GroupConsensus* engine =
          cluster.replica(node).protocol().consensus_engine();
      if (engine == nullptr) continue;
      const InstanceId frontier = engine->learner().next_to_deliver();
      auto [it, fresh] =
          spread.try_emplace(engine->config().group, frontier, frontier);
      if (!fresh) {
        it->second.first = std::min(it->second.first, frontier);
        it->second.second = std::max(it->second.second, frontier);
      }
    }
    for (const auto& [group, mm] : spread) {
      result.end_max_lag = std::max(result.end_max_lag,
                                    static_cast<std::uint64_t>(mm.second - mm.first));
    }
  }

  if (durable) {
    result.replayed_records = obs->metrics.counter_value("storage.replayed_records");
    result.storage_snapshots = obs->metrics.counter_value("storage.snapshots");
    // The no-regression floor check only holds under fsyncing policies:
    // "never-for-sim" is documented as unsafe under crashes (it trades
    // durability for speed in pure-throughput experiments).
    if (cfg.durability.fsync.mode != storage::FsyncPolicy::Mode::kNever) {
      result.durability_checks =
          check_durability_floors(cluster, floors, result.report);
    }
  }
  return result;
}

std::string ChaosRunResult::to_string() const {
  std::ostringstream out;
  out << (report.ok ? "OK " : "VIOLATION ") << "completions=" << completions
      << " availability=" << availability << " crashes=" << crashes
      << " recoveries=" << recoveries << " failovers=" << leader_failovers;
  if (failover_p99_ns > 0) {
    out << " failover_p99_ms=" << static_cast<double>(failover_p99_ns) / 1e6;
  }
  if (durability_checks > 0) {
    out << " replayed=" << replayed_records
        << " snapshots=" << storage_snapshots
        << " durability_checks=" << durability_checks;
  }
  if (sent > 0) {
    out << " sent=" << sent << " rejected=" << rejected
        << " expired=" << expired << " timed_out=" << timed_out
        << " suppressed=" << suppressed << " retries=" << retries
        << " in_flight_end=" << in_flight_end;
  }
  if (repair_transfers > 0 || prune_watermark > 0) {
    out << " repair_transfers=" << repair_transfers << "/" << repair_completed
        << " repair_installed=" << repair_entries_installed
        << " prune_watermark=" << prune_watermark
        << " end_max_lag=" << end_max_lag;
  }
  for (const auto& v : report.violations) out << "\n  " << v;
  return out.str();
}

}  // namespace fastcast::harness
