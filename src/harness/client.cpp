#include "fastcast/harness/client.hpp"

#include <algorithm>

#include "fastcast/common/assert.hpp"

namespace fastcast::harness {

void Metrics::open_window(Time start, Time end, Duration slice) {
  window_start_ = start;
  window_end_ = end;
  slice_ = slice;
  window_open_ = true;
  const auto n = static_cast<std::size_t>((end - start + slice - 1) / slice);
  slices_.assign(n, 0);
}

void Metrics::note_completion(Time sent, Time completed, std::size_t tag,
                              bool deadline_met) {
  ++completions_total_;
  if (!deadline_met) ++deadline_miss_total_;
  if (!window_open_ || completed < window_start_ || completed >= window_end_) return;
  latency_.add(completed - sent);
  by_tag_[tag].add(completed - sent);
  if (deadline_met) ++window_goodput_;
  const auto idx = static_cast<std::size_t>((completed - window_start_) / slice_);
  if (idx < slices_.size()) ++slices_[idx];
}

const LatencyRecorder& Metrics::latency_for_tag(std::size_t tag) const {
  static const LatencyRecorder kEmpty;
  auto it = by_tag_.find(tag);
  return it == by_tag_.end() ? kEmpty : it->second;
}

ThroughputSummary Metrics::throughput() const {
  return summarize_throughput(slices_, slice_);
}

DstPicker fixed_group(GroupId g) {
  return [g](Rng&) { return std::vector<GroupId>{g}; };
}

DstPicker all_groups(std::size_t n) {
  std::vector<GroupId> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<GroupId>(i);
  return [all](Rng&) { return all; };
}

DstPicker random_subset(std::size_t n, std::size_t k) {
  FC_ASSERT(k >= 1 && k <= n);
  return [n, k](Rng& rng) {
    // Partial Fisher–Yates over group ids, then sort for canonical order.
    std::vector<GroupId> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = static_cast<GroupId>(i);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng.uniform(n - i));
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    std::sort(pool.begin(), pool.end());
    return pool;
  };
}

ClientProcess::ClientProcess(Config config, std::shared_ptr<Metrics> metrics)
    : config_(std::move(config)), metrics_(std::move(metrics)) {
  FC_ASSERT(config_.stub != nullptr);
  FC_ASSERT(config_.dst != nullptr);
  FC_ASSERT(metrics_ != nullptr);
}

void ClientProcess::on_start(Context& ctx) {
  config_.stub->on_start(ctx);
  const Duration delay = config_.first_send_at > ctx.now()
                             ? config_.first_send_at - ctx.now()
                             : 0;
  if (config_.send_interval > 0) {
    ctx.set_timer(delay, [this, &ctx] { open_loop_tick(ctx); });
  } else {
    ctx.set_timer(delay, [this, &ctx] { send_next(ctx); });
  }
}

MulticastMessage ClientProcess::build_message(Context& ctx) {
  MulticastMessage msg;
  msg.id = make_msg_id(ctx.self(), next_seq_++);
  msg.sender = ctx.self();
  msg.dst = config_.dst(ctx.rng());
  msg.payload.assign(config_.payload_size, 'x');
  if (config_.flow.deadline > 0) {
    msg.deadline = ctx.now() + config_.flow.deadline;
    msg.sent_at = ctx.now();  // re-stamped on every retransmission
  }
  return msg;
}

void ClientProcess::track_and_send(Context& ctx, MulticastMessage msg) {
  InFlight entry;
  entry.sent_at = ctx.now();
  entry.dst_size = msg.dst.size();
  entry.deadline = msg.deadline;
  if (retries_enabled()) entry.msg = msg;
  const MsgId mid = msg.id;
  in_flight_.emplace(mid, std::move(entry));
  // Primary sends accrue retry tokens: the budget scales with offered
  // load, so retries can never outnumber budget × primaries (no storm).
  if (retries_enabled()) {
    const double cap = std::max(1.0, config_.flow.retry_budget * 16.0);
    retry_tokens_ = std::min(retry_tokens_ + config_.flow.retry_budget, cap);
  }
  for (const auto& observer : observers_) observer(msg);
  config_.stub->amulticast(ctx, msg);
  arm_timeout(ctx, mid, 0);
}

void ClientProcess::send_next(Context& ctx) {
  if (config_.stop_at >= 0 && ctx.now() >= config_.stop_at) {
    idle_ = true;
    return;
  }
  MulticastMessage msg = build_message(ctx);
  outstanding_ = msg.id;
  idle_ = false;
  track_and_send(ctx, std::move(msg));
}

void ClientProcess::open_loop_tick(Context& ctx) {
  if (config_.stop_at >= 0 && ctx.now() >= config_.stop_at) {
    idle_ = true;
    return;
  }
  if (ctx.now() < backoff_until_) {
    // Backed off: this injection is shed at the source. The cadence timer
    // keeps running so offered load resumes as soon as the window passes.
    metrics_->note_suppressed();
  } else if (pacing_enabled() && !ctx.rng().bernoulli(pace_)) {
    metrics_->note_suppressed();
  } else {
    idle_ = false;
    track_and_send(ctx, build_message(ctx));
  }
  ctx.set_timer(config_.send_interval, [this, &ctx] { open_loop_tick(ctx); });
}

void ClientProcess::on_message(Context& ctx, NodeId from, const Message& msg) {
  if (const auto* ack = std::get_if<AmAck>(&msg.payload)) {
    on_ack(ctx, *ack);
    return;
  }
  if (const auto* busy = std::get_if<Busy>(&msg.payload)) {
    on_busy(ctx, *busy);
    return;
  }
  config_.stub->handle(ctx, from, msg);
}

void ClientProcess::on_ack(Context& ctx, const AmAck& ack) {
  // First terminal event wins: a late ack for a request that already
  // timed out / was rejected finds no entry and is ignored, keeping the
  // terminal buckets exclusive.
  auto it = in_flight_.find(ack.mid);
  if (it == in_flight_.end()) return;
  const InFlight& e = it->second;
  const bool met = e.deadline == 0 || ctx.now() <= e.deadline;
  metrics_->note_completion(e.sent_at, ctx.now(), e.dst_size, met);
  config_.stub->complete(ack.mid);
  // Decay, don't reset: under saturation completions keep streaming, and a
  // full reset would snap every client back to line rate the instant one
  // request survives — re-flooding the very queue the Busy replies were
  // draining. Halving recovers in a few RTTs once Busy actually stops.
  backoff_ /= 2;
  if (pacing_enabled()) {
    pace_ = std::min(1.0, pace_ + config_.flow.pace_increase);
  }
  const bool was_outstanding = !idle_ && ack.mid == outstanding_;
  in_flight_.erase(it);
  if (config_.send_interval == 0 && was_outstanding) {
    idle_ = true;
    send_next(ctx);
  }
}

void ClientProcess::on_busy(Context& ctx, const Busy& busy) {
  metrics_->note_busy();
  if (busy.advisory) {
    // ECN-style mark: the request is still in flight; only slow down. For a
    // paced client the cut alone is the right response — marks fire
    // routinely near equilibrium, and a silence window per mark would
    // duty-cycle the fleet. Without pacing the window is the only throttle.
    if (pacing_enabled()) {
      cut_pace(ctx);
    } else {
      apply_backoff(ctx, busy.retry_after);
    }
    return;
  }
  apply_backoff(ctx, busy.retry_after);
  auto it = in_flight_.find(busy.mid);
  if (it == in_flight_.end()) return;  // already resolved here
  if (busy.reason == Busy::Reason::kOverload && try_retry(ctx, it)) return;
  if (busy.reason == Busy::Reason::kExpired) {
    metrics_->note_expired();
  } else {
    metrics_->note_rejected();
  }
  finish_failed(ctx, it);
}

void ClientProcess::arm_timeout(Context& ctx, MsgId mid, std::uint64_t gen) {
  if (config_.flow.request_timeout <= 0) return;
  ctx.set_timer(config_.flow.request_timeout, [this, &ctx, mid, gen] {
    auto it = in_flight_.find(mid);
    if (it == in_flight_.end() || it->second.timeout_gen != gen) return;
    apply_backoff(ctx, 0);
    if (try_retry(ctx, it)) return;
    metrics_->note_timeout();
    finish_failed(ctx, it);
  });
}

bool ClientProcess::try_retry(Context& ctx, InFlightMap::iterator it) {
  if (!retries_enabled()) return false;
  InFlight& e = it->second;
  if (e.retries >= config_.flow.max_retries) return false;
  if (retry_tokens_ < 1.0) return false;
  retry_tokens_ -= 1.0;
  ++e.retries;
  ++e.timeout_gen;  // ages out the pending timeout of the previous attempt
  metrics_->note_retry();
  const MsgId mid = it->first;
  const Time resend_at = std::max(backoff_until_, ctx.now() + 1);
  ctx.set_timer(resend_at - ctx.now(), [this, &ctx, mid] {
    auto it2 = in_flight_.find(mid);
    if (it2 == in_flight_.end()) return;  // resolved while waiting
    // Fresh transmission, fresh stamp: sent_at feeds the server's
    // arrival-lag estimate, and a retry that kept the original stamp would
    // look tens of ms stale on arrival — poisoning the estimate the gate
    // needs to see recover before it reopens. The deadline stays original
    // (absolute), so expiry still judges the request's true age.
    if (it2->second.msg.sent_at > 0) it2->second.msg.sent_at = ctx.now();
    config_.stub->amulticast(ctx, it2->second.msg);
    arm_timeout(ctx, mid, it2->second.timeout_gen);
  });
  return true;
}

void ClientProcess::finish_failed(Context& ctx, InFlightMap::iterator it) {
  const MsgId mid = it->first;
  config_.stub->complete(mid);  // stop stub-level retransmission
  for (const auto& fn : reject_observers_) fn(mid);
  const bool was_outstanding = !idle_ && mid == outstanding_;
  in_flight_.erase(it);
  if (config_.send_interval == 0 && was_outstanding) {
    idle_ = true;
    // Closed loop resumes after the backoff window (immediately if none).
    const Time at = std::max(backoff_until_, ctx.now());
    ctx.set_timer(at - ctx.now(), [this, &ctx] {
      if (idle_) send_next(ctx);
    });
  }
}

void ClientProcess::apply_backoff(Context& ctx, Duration hint) {
  if (config_.flow.backoff_base <= 0) return;
  // One congestion signal per window: a single shed episode returns Busy for
  // every in-flight request of this client nearly at once, and doubling per
  // reply would escalate a 1 ms window to the cap in one episode — silencing
  // the fleet far longer than the queues need to drain.
  if (ctx.now() < backoff_until_) return;
  Duration step = backoff_ > 0 ? backoff_ : config_.flow.backoff_base;
  if (hint > step) step = std::min(hint, config_.flow.backoff_max);
  // Jitter the window (half deterministic, half uniform): clients sharing a
  // saturated node get their Busy replies nearly simultaneously, and
  // identical windows would re-release them as one synchronized burst that
  // re-saturates the queue they just drained.
  const Duration window =
      step / 2 + static_cast<Duration>(ctx.rng().uniform(
                     static_cast<std::uint64_t>(step / 2 + 1)));
  backoff_until_ = std::max(backoff_until_, ctx.now() + window);
  backoff_ = std::min(step * 2, config_.flow.backoff_max);
  cut_pace(ctx);
}

void ClientProcess::cut_pace(Context& ctx) {
  if (!pacing_enabled()) return;
  // One congestion event per guard window: a single overload episode
  // produces a burst of marks/Busy replies, and cutting per reply would
  // collapse the pace to its floor on one episode.
  if (ctx.now() < pace_cut_until_) return;
  pace_ = std::max(1.0 / 64.0, pace_ * 0.9);
  pace_cut_until_ = ctx.now() + milliseconds(10);
}

}  // namespace fastcast::harness
