#include "fastcast/harness/client.hpp"

#include <algorithm>

#include "fastcast/common/assert.hpp"

namespace fastcast::harness {

void Metrics::open_window(Time start, Time end, Duration slice) {
  window_start_ = start;
  window_end_ = end;
  slice_ = slice;
  window_open_ = true;
  const auto n = static_cast<std::size_t>((end - start + slice - 1) / slice);
  slices_.assign(n, 0);
}

void Metrics::note_completion(Time sent, Time completed, std::size_t tag) {
  ++completions_total_;
  if (!window_open_ || completed < window_start_ || completed >= window_end_) return;
  latency_.add(completed - sent);
  by_tag_[tag].add(completed - sent);
  const auto idx = static_cast<std::size_t>((completed - window_start_) / slice_);
  if (idx < slices_.size()) ++slices_[idx];
}

const LatencyRecorder& Metrics::latency_for_tag(std::size_t tag) const {
  static const LatencyRecorder kEmpty;
  auto it = by_tag_.find(tag);
  return it == by_tag_.end() ? kEmpty : it->second;
}

ThroughputSummary Metrics::throughput() const {
  return summarize_throughput(slices_, slice_);
}

DstPicker fixed_group(GroupId g) {
  return [g](Rng&) { return std::vector<GroupId>{g}; };
}

DstPicker all_groups(std::size_t n) {
  std::vector<GroupId> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<GroupId>(i);
  return [all](Rng&) { return all; };
}

DstPicker random_subset(std::size_t n, std::size_t k) {
  FC_ASSERT(k >= 1 && k <= n);
  return [n, k](Rng& rng) {
    // Partial Fisher–Yates over group ids, then sort for canonical order.
    std::vector<GroupId> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = static_cast<GroupId>(i);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(rng.uniform(n - i));
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    std::sort(pool.begin(), pool.end());
    return pool;
  };
}

ClientProcess::ClientProcess(Config config, std::shared_ptr<Metrics> metrics)
    : config_(std::move(config)), metrics_(std::move(metrics)) {
  FC_ASSERT(config_.stub != nullptr);
  FC_ASSERT(config_.dst != nullptr);
  FC_ASSERT(metrics_ != nullptr);
}

void ClientProcess::on_start(Context& ctx) {
  config_.stub->on_start(ctx);
  const Duration delay = config_.first_send_at > ctx.now()
                             ? config_.first_send_at - ctx.now()
                             : 0;
  if (config_.send_interval > 0) {
    ctx.set_timer(delay, [this, &ctx] { open_loop_tick(ctx); });
  } else {
    ctx.set_timer(delay, [this, &ctx] { send_next(ctx); });
  }
}

MulticastMessage ClientProcess::build_message(Context& ctx) {
  MulticastMessage msg;
  msg.id = make_msg_id(ctx.self(), next_seq_++);
  msg.sender = ctx.self();
  msg.dst = config_.dst(ctx.rng());
  msg.payload.assign(config_.payload_size, 'x');
  return msg;
}

void ClientProcess::send_next(Context& ctx) {
  if (config_.stop_at >= 0 && ctx.now() >= config_.stop_at) {
    idle_ = true;
    return;
  }
  MulticastMessage msg = build_message(ctx);
  outstanding_ = msg.id;
  outstanding_dst_size_ = msg.dst.size();
  sent_at_ = ctx.now();
  idle_ = false;
  for (const auto& observer : observers_) observer(msg);
  config_.stub->amulticast(ctx, msg);
}

void ClientProcess::open_loop_tick(Context& ctx) {
  if (config_.stop_at >= 0 && ctx.now() >= config_.stop_at) {
    idle_ = true;
    return;
  }
  MulticastMessage msg = build_message(ctx);
  in_flight_.emplace(msg.id, std::make_pair(ctx.now(), msg.dst.size()));
  idle_ = false;
  for (const auto& observer : observers_) observer(msg);
  config_.stub->amulticast(ctx, msg);
  ctx.set_timer(config_.send_interval, [this, &ctx] { open_loop_tick(ctx); });
}

void ClientProcess::on_message(Context& ctx, NodeId from, const Message& msg) {
  if (const auto* ack = std::get_if<AmAck>(&msg.payload)) {
    if (config_.send_interval > 0) {
      // Open loop: acks arrive in any order; latency is per message id.
      auto it = in_flight_.find(ack->mid);
      if (it != in_flight_.end()) {
        metrics_->note_completion(it->second.first, ctx.now(),
                                  it->second.second);
        config_.stub->complete(ack->mid);
        in_flight_.erase(it);
      }
      return;
    }
    if (!idle_ && ack->mid == outstanding_) {
      metrics_->note_completion(sent_at_, ctx.now(), outstanding_dst_size_);
      config_.stub->complete(ack->mid);
      idle_ = true;
      send_next(ctx);
    }
    return;
  }
  config_.stub->handle(ctx, from, msg);
}

}  // namespace fastcast::harness
