#include "fastcast/harness/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "fastcast/common/assert.hpp"

namespace fastcast::harness {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  FC_ASSERT(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(const std::string& note) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  os << "== " << title_ << "\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << "\n";
  };
  emit_row(columns_);
  std::size_t total = columns_.size() > 0 ? 2 * (columns_.size() - 1) : 0;
  for (std::size_t w : widths) total += w;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  if (!note.empty()) os << "note: " << note << "\n";
  return os.str();
}

void Table::print(const std::string& note) const {
  const std::string s = to_string(note);
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_count(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0f", v);
  std::string s = buf;
  // Insert thousands separators for readability.
  for (int pos = static_cast<int>(s.size()) - 3; pos > 0; pos -= 3) {
    if (s[static_cast<std::size_t>(pos) - 1] == '-') break;
    s.insert(static_cast<std::size_t>(pos), ",");
  }
  return s;
}

}  // namespace fastcast::harness
