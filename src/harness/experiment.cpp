#include "fastcast/harness/experiment.hpp"

#include <fstream>

#include "fastcast/amcast/basecast.hpp"
#include "fastcast/amcast/multipaxos_amcast.hpp"
#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/json.hpp"

namespace fastcast::harness {

Cluster::Cluster(const ExperimentConfig& config)
    : config_(config),
      deployment_(build_deployment(config.topo)),
      checker_(&deployment_.membership) {
  sim::SimConfig sim_config;
  sim_config.seed = config_.seed;
  sim_config.cpu = config_.cpu_override.value_or(cpu_for(config_.topo.env));
  sim_config.drop_probability = config_.drop_probability;
  sim_config.serialize_messages = config_.serialize_messages;
  auto latency = config_.latency_factory
                     ? config_.latency_factory(&deployment_.membership)
                     : make_latency(config_.topo.env, &deployment_.membership);
  sim_ = std::make_unique<sim::Simulator>(deployment_.membership,
                                          std::move(latency), sim_config);
  if (config_.observe || config_.trace || !config_.metrics_out.empty()) {
    obs_ = std::make_shared<obs::Observability>();
    obs_->tracing = config_.trace;
    sim_->set_observability(obs_.get());
  }
  metrics_ = std::make_shared<Metrics>();

  if (config_.durability.durable) {
    storage::StorageManager::Config sc;
    sc.wal_dir = config_.durability.wal_dir;
    sc.node.fsync = config_.durability.fsync;
    sc.node.snapshot_every = config_.durability.snapshot_every;
    storage_ = std::make_unique<storage::StorageManager>(std::move(sc));
    if (obs_) storage_->set_metrics(&obs_->metrics);
  }

  // Replicas (including the ordering group's nodes for MultiPaxos).
  for (NodeId n : deployment_.membership.all_replicas()) {
    const GroupId g = deployment_.membership.group_of(n);
    auto protocol = make_protocol(n, g);
    if (storage_) {
      // A pre-existing wal_dir seeds the replica with its on-disk state
      // (fresh dirs and the mem backend recover the empty state).
      storage::NodeStorage* st = storage_->node(n);
      protocol->restore_durable(st->state());
      sim_->set_node_storage(n, st);
    }
    auto node = make_replica(n, protocol);
    protocols_.push_back(std::move(protocol));
    replicas_.push_back(node);
    sim_->add_process(n, node);
  }

  // Clients.
  FC_ASSERT(config_.dst_factory != nullptr);
  const std::size_t n_clients = deployment_.clients.size();
  for (std::size_t i = 0; i < n_clients; ++i) {
    ClientProcess::Config cc;
    cc.stub = make_stub();
    cc.dst = config_.dst_factory(i);
    cc.payload_size = config_.payload_size;
    cc.send_interval = config_.open_loop_interval;
    cc.flow = config_.client_flow;
    // Stagger client starts across half the warm-up so load ramps smoothly.
    cc.first_send_at = static_cast<Time>(
        config_.warmup / 2 * static_cast<Duration>(i) /
        static_cast<Duration>(n_clients == 0 ? 1 : n_clients));
    auto client = std::make_shared<ClientProcess>(std::move(cc), metrics_);
    if (config_.run_checker) {
      Checker* checker = &checker_;
      client->add_multicast_observer([checker](const MulticastMessage& msg) {
        checker->note_multicast(msg);
      });
      // Explicitly failed requests (Busy rejection / expiry / timeout) are
      // exempt from quiesced validity: "delivered or explicitly rejected".
      client->add_reject_observer(
          [checker](MsgId mid) { checker->note_rejected(mid); });
    }
    clients_.push_back(client);
    sim_->add_process(deployment_.clients[i], client);
  }
}

std::shared_ptr<ReplicaNode> Cluster::make_replica(
    NodeId node, std::shared_ptr<AtomicMulticast> protocol) {
  auto replica = std::make_shared<ReplicaNode>(std::move(protocol));
  if (config_.run_checker) {
    Checker* checker = &checker_;
    if (config_.durability.durable) {
      // Crash recovery re-externalizes in-doubt deliveries at-least-once.
      // This is the application-level dedup every durable client of the
      // subsystem needs: it outlives replica rebuilds, so the checker's
      // per-node sequence stays exactly-once.
      std::set<MsgId>* seen = &seen_deliveries_[node];
      replica->add_observer(
          [checker, seen](Context& ctx, const MulticastMessage& msg) {
            if (!seen->insert(msg.id).second) return;
            checker->note_delivery(ctx.self(), msg.id);
          });
    } else {
      replica->add_observer(
          [checker](Context& ctx, const MulticastMessage& msg) {
            checker->note_delivery(ctx.self(), msg.id);
          });
    }
  }
  return replica;
}

std::shared_ptr<Process> Cluster::rebuild_replica(NodeId node) {
  FC_ASSERT_MSG(storage_ != nullptr, "rebuild_replica needs durability on");
  const auto& reps = deployment_.membership.all_replicas();
  std::size_t idx = reps.size();
  for (std::size_t i = 0; i < reps.size(); ++i) {
    if (reps[i] == node) {
      idx = i;
      break;
    }
  }
  FC_ASSERT_MSG(idx < reps.size(), "not a replica node");

  storage::NodeStorage* st = storage_->node(node);
  const storage::DurableState& durable = st->reset_and_recover();
  auto protocol = make_protocol(node, deployment_.membership.group_of(node));
  protocol->restore_durable(durable);
  auto fresh = make_replica(node, protocol);
  protocols_[idx] = std::move(protocol);
  replicas_[idx] = fresh;
  return fresh;
}

std::shared_ptr<AtomicMulticast> Cluster::make_protocol(NodeId node, GroupId group) {
  const bool reliable = config_.drop_probability == 0.0;
  const Membership& m = deployment_.membership;

  if (config_.topo.protocol == Protocol::kMultiPaxos) {
    paxos::GroupConsensus::Config cons;
    cons.group = deployment_.ordering_group;
    cons.members = m.members(deployment_.ordering_group);
    for (NodeId r : m.all_replicas()) {
      if (m.group_of(r) != deployment_.ordering_group) {
        cons.extra_learners.push_back(r);
      }
    }
    cons.window = config_.consensus_window;
    cons.reliable_links = reliable;
    cons.heartbeats = config_.heartbeats;
    cons.repair = config_.repair;

    MultiPaxosAmcast::Config cfg;
    cfg.consensus = std::move(cons);
    cfg.my_group = group == deployment_.ordering_group ? kNoGroup : group;
    cfg.ordering = config_.mp_ordering == ExperimentConfig::MpOrdering::kIds
                       ? MultiPaxosAmcast::Config::Ordering::kIds
                       : MultiPaxosAmcast::Config::Ordering::kPayload;
    cfg.batch_fill = config_.mp_batch_fill;
    cfg.batch_delay = config_.mp_batch_delay;
    cfg.flow = config_.flow;
    return std::make_shared<MultiPaxosAmcast>(std::move(cfg), node);
  }

  TimestampProtocolBase::Config cfg;
  cfg.group = group;
  cfg.consensus.group = group;
  cfg.consensus.members = m.members(group);
  cfg.consensus.window = config_.consensus_window;
  cfg.consensus.reliable_links = reliable;
  cfg.consensus.heartbeats = config_.heartbeats;
  cfg.consensus.repair = config_.repair;
  cfg.rmcast.reliable_links = reliable;
  cfg.rmcast.relay = config_.relay;
  cfg.hard_send = config_.hard_send;
  cfg.enable_repropose = !reliable || config_.heartbeats;
  cfg.flow = config_.flow;

  switch (config_.topo.protocol) {
    case Protocol::kBaseCast:
      return std::make_shared<BaseCast>(std::move(cfg), node);
    case Protocol::kFastCast: {
      FastCast::Options opt;
      opt.eager_hard_propose = config_.fastcast_eager_hard;
      return std::make_shared<FastCast>(std::move(cfg), node, opt);
    }
    case Protocol::kFastCastSlowPath: {
      FastCast::Options opt;
      opt.force_slow_path = true;
      opt.eager_hard_propose = config_.fastcast_eager_hard;
      return std::make_shared<FastCast>(std::move(cfg), node, opt);
    }
    case Protocol::kMultiPaxos: break;  // handled above
  }
  FC_ASSERT(false);
  return nullptr;
}

std::unique_ptr<ClientStub> Cluster::make_stub() {
  const bool reliable = config_.drop_probability == 0.0;
  if (config_.topo.protocol == Protocol::kMultiPaxos) {
    MultiPaxosClientStub::Config cfg;
    cfg.ordering_members =
        deployment_.membership.members(deployment_.ordering_group);
    cfg.reliable_links = reliable;
    return std::make_unique<MultiPaxosClientStub>(std::move(cfg));
  }
  RmConfig rm;
  rm.reliable_links = reliable;
  rm.relay = RmConfig::Relay::kNone;  // clients never relay
  return std::make_unique<GenuineClientStub>(rm);
}

void Cluster::stop_clients(Time at) {
  for (auto& c : clients_) c->set_stop(at);
}

ReplicaNode& Cluster::replica(NodeId node) {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (deployment_.membership.all_replicas()[i] == node) return *replicas_[i];
  }
  FC_ASSERT_MSG(false, "not a replica node");
  return *replicas_.front();
}

ClientProcess& Cluster::client(std::size_t idx) {
  FC_ASSERT(idx < clients_.size());
  return *clients_[idx];
}

std::pair<std::uint64_t, std::uint64_t> Cluster::path_stats() const {
  std::uint64_t fast = 0;
  std::uint64_t slow = 0;
  for (const auto& p : protocols_) {
    if (const auto* fc = dynamic_cast<const FastCast*>(p.get())) {
      fast += fc->fast_path_hits();
      slow += fc->slow_path_hits();
    }
  }
  return {fast, slow};
}

std::uint64_t Cluster::total_deliveries() const {
  std::uint64_t total = 0;
  for (const auto& r : replicas_) total += r->delivered_count();
  return total;
}

std::uint64_t Cluster::total_sent() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->sent_count();
  return total;
}

std::uint64_t Cluster::total_in_flight() const {
  std::uint64_t total = 0;
  for (const auto& c : clients_) total += c->in_flight_count();
  return total;
}

namespace {

/// {"config": ..., "latency_ms": ..., "throughput": ..., "metrics": ...,
///  "delta": ...} — the per-run metrics.json consumed by the bench tooling.
void write_metrics_file(const std::string& path, const ExperimentConfig& config,
                        const ExperimentResult& result) {
  std::ofstream out(path);
  if (!out) {
    FC_WARN("cannot write metrics file %s", path.c_str());
    return;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("config").begin_object();
  w.kv("protocol", to_string(config.topo.protocol));
  w.kv("environment", to_string(config.topo.env));
  w.kv("groups", static_cast<std::uint64_t>(config.topo.groups));
  w.kv("replicas_per_group",
       static_cast<std::uint64_t>(config.topo.replicas_per_group));
  w.kv("clients", static_cast<std::uint64_t>(config.topo.clients));
  w.kv("seed", config.seed);
  w.kv("measure_ms", to_milliseconds(config.measure));
  w.end_object();

  w.key("latency_ms").begin_object();
  if (!result.latency.empty()) {
    w.kv("median", to_milliseconds(result.latency.median()));
    w.kv("p95", to_milliseconds(result.latency.percentile(95.0)));
    w.kv("p99", to_milliseconds(result.latency.percentile(99.0)));
    w.kv("mean", result.latency.mean() / static_cast<double>(kMillisecond));
    w.kv("samples", static_cast<std::uint64_t>(result.latency.count()));
  }
  w.end_object();

  w.key("throughput").begin_object();
  w.kv("mean_per_sec", result.throughput.mean_per_sec);
  w.kv("ci95_per_sec", result.throughput.ci95_per_sec);
  w.kv("total", result.throughput.total);
  w.end_object();

  w.key("overload").begin_object();
  w.kv("sent", result.sent);
  w.kv("completions", result.completions);
  w.kv("window_goodput", result.window_goodput);
  w.kv("rejected", result.rejected);
  w.kv("expired", result.expired);
  w.kv("timed_out", result.timed_out);
  w.kv("deadline_miss", result.deadline_miss);
  w.kv("suppressed", result.suppressed);
  w.kv("retries", result.retries);
  w.kv("busy_received", result.busy_received);
  w.kv("in_flight_end", result.in_flight_end);
  w.end_object();

  if (result.obs) {
    const auto cs = result.obs->metrics.counters();
    const auto gs = result.obs->metrics.gauges();
    const auto hs = result.obs->metrics.histograms();
    w.key("counters").begin_object();
    for (const auto& [name, v] : cs) w.kv(name, v);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, v] : gs) w.kv(name, v);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, h] : hs) {
      w.key(name).begin_object();
      w.kv("count", h.count);
      w.kv("p50", h.p50);
      w.kv("p95", h.p95);
      w.kv("p99", h.p99);
      w.end_object();
    }
    w.end_object();
  }

  if (config.trace && config.delta > 0) {
    w.key("delta").begin_object();
    w.kv("delta_ms", to_milliseconds(result.delta_summary.delta));
    w.kv("deliveries", result.delta_summary.deliveries);
    w.kv("unmatched", result.delta_summary.unmatched);
    w.key("classes").begin_array();
    for (const auto& c : result.delta_summary.classes) {
      w.begin_object();
      w.kv("dst_groups", static_cast<std::uint64_t>(c.dst_groups));
      w.kv("samples", c.samples);
      w.kv("min_hops", c.min_hops);
      w.kv("mean_hops", c.mean_hops);
      w.kv("max_hops", c.max_hops);
      w.key("histogram").begin_object();
      for (const auto& [hops, n] : c.histogram) {
        w.kv(std::to_string(hops), n);
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  out << '\n';
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Cluster cluster(config);
  auto& sim = cluster.simulator();
  cluster.start();

  sim.run_until(config.warmup);
  const Time window_end = config.warmup + config.measure;
  cluster.metrics().open_window(config.warmup, window_end, config.slice);
  const std::uint64_t deliveries_at_open = cluster.total_deliveries();
  sim.run_until(window_end);
  cluster.metrics().close_window();
  const std::uint64_t deliveries_at_close = cluster.total_deliveries();

  ExperimentResult result;
  const bool can_drain =
      config.drain && config.drop_probability == 0.0 && !config.heartbeats;
  if (can_drain) {
    cluster.stop_clients(window_end);
    result.drained = sim.run_to_idle(window_end + config.drain_grace);
  } else if (config.drain) {
    cluster.stop_clients(window_end);
    sim.run_for(config.drain_grace / 10);  // grace period; timers keep ticking
  }

  result.latency = cluster.metrics().latency();
  result.throughput = cluster.metrics().throughput();
  result.slices = cluster.metrics().slice_counts();
  if (config.run_checker) {
    result.report = cluster.checker().check(result.drained, config.check_level);
  }
  result.events_processed = sim.events_processed();
  result.messages_sent = sim.messages_sent();
  const auto [fast, slow] = cluster.path_stats();
  result.fast_path_hits = fast;
  result.slow_path_hits = slow;
  result.window_deliveries = deliveries_at_close - deliveries_at_open;

  const Metrics& m = cluster.metrics();
  result.sent = cluster.total_sent();
  result.completions = m.completions_total();
  result.window_goodput = m.window_goodput();
  result.rejected = m.rejected_total();
  result.expired = m.expired_total();
  result.timed_out = m.timeouts_total();
  result.deadline_miss = m.deadline_miss_total();
  result.suppressed = m.suppressed_total();
  result.retries = m.retries_total();
  result.busy_received = m.busy_total();
  result.in_flight_end = cluster.total_in_flight();

  if (auto obs = cluster.observability()) {
    result.obs = obs;
    obs->metrics.gauge("sim.events_processed")
        .set(static_cast<std::int64_t>(result.events_processed));
    if (config.run_checker) result.report.publish(obs->metrics);
    if (config.trace && config.delta > 0) {
      result.delta_summary = obs->tracer.summarize(config.delta);
    }
    if (!config.metrics_out.empty()) {
      write_metrics_file(config.metrics_out, config, result);
    }
  }
  return result;
}

}  // namespace fastcast::harness
