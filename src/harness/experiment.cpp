#include "fastcast/harness/experiment.hpp"

#include "fastcast/amcast/basecast.hpp"
#include "fastcast/amcast/multipaxos_amcast.hpp"
#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"

namespace fastcast::harness {

Cluster::Cluster(const ExperimentConfig& config)
    : config_(config),
      deployment_(build_deployment(config.topo)),
      checker_(&deployment_.membership) {
  sim::SimConfig sim_config;
  sim_config.seed = config_.seed;
  sim_config.cpu = cpu_for(config_.topo.env);
  sim_config.drop_probability = config_.drop_probability;
  sim_config.serialize_messages = config_.serialize_messages;
  sim_ = std::make_unique<sim::Simulator>(
      deployment_.membership,
      make_latency(config_.topo.env, &deployment_.membership), sim_config);
  metrics_ = std::make_shared<Metrics>();

  // Replicas (including the ordering group's nodes for MultiPaxos).
  for (NodeId n : deployment_.membership.all_replicas()) {
    const GroupId g = deployment_.membership.group_of(n);
    auto protocol = make_protocol(n, g);
    auto node = std::make_shared<ReplicaNode>(protocol);
    if (config_.run_checker) {
      Checker* checker = &checker_;
      node->add_observer([checker](Context& ctx, const MulticastMessage& msg) {
        checker->note_delivery(ctx.self(), msg.id);
      });
    }
    protocols_.push_back(std::move(protocol));
    replicas_.push_back(node);
    sim_->add_process(n, node);
  }

  // Clients.
  FC_ASSERT(config_.dst_factory != nullptr);
  const std::size_t n_clients = deployment_.clients.size();
  for (std::size_t i = 0; i < n_clients; ++i) {
    ClientProcess::Config cc;
    cc.stub = make_stub();
    cc.dst = config_.dst_factory(i);
    cc.payload_size = config_.payload_size;
    // Stagger client starts across half the warm-up so load ramps smoothly.
    cc.first_send_at = static_cast<Time>(
        config_.warmup / 2 * static_cast<Duration>(i) /
        static_cast<Duration>(n_clients == 0 ? 1 : n_clients));
    auto client = std::make_shared<ClientProcess>(std::move(cc), metrics_);
    if (config_.run_checker) {
      Checker* checker = &checker_;
      client->add_multicast_observer([checker](const MulticastMessage& msg) {
        checker->note_multicast(msg);
      });
    }
    clients_.push_back(client);
    sim_->add_process(deployment_.clients[i], client);
  }
}

std::shared_ptr<AtomicMulticast> Cluster::make_protocol(NodeId node, GroupId group) {
  const bool reliable = config_.drop_probability == 0.0;
  const Membership& m = deployment_.membership;

  if (config_.topo.protocol == Protocol::kMultiPaxos) {
    paxos::GroupConsensus::Config cons;
    cons.group = deployment_.ordering_group;
    cons.members = m.members(deployment_.ordering_group);
    for (NodeId r : m.all_replicas()) {
      if (m.group_of(r) != deployment_.ordering_group) {
        cons.extra_learners.push_back(r);
      }
    }
    cons.window = config_.consensus_window;
    cons.reliable_links = reliable;
    cons.heartbeats = config_.heartbeats;

    MultiPaxosAmcast::Config cfg;
    cfg.consensus = std::move(cons);
    cfg.my_group = group == deployment_.ordering_group ? kNoGroup : group;
    return std::make_shared<MultiPaxosAmcast>(std::move(cfg), node);
  }

  TimestampProtocolBase::Config cfg;
  cfg.group = group;
  cfg.consensus.group = group;
  cfg.consensus.members = m.members(group);
  cfg.consensus.window = config_.consensus_window;
  cfg.consensus.reliable_links = reliable;
  cfg.consensus.heartbeats = config_.heartbeats;
  cfg.rmcast.reliable_links = reliable;
  cfg.rmcast.relay = config_.relay;
  cfg.hard_send = config_.hard_send;
  cfg.enable_repropose = !reliable || config_.heartbeats;

  switch (config_.topo.protocol) {
    case Protocol::kBaseCast:
      return std::make_shared<BaseCast>(std::move(cfg), node);
    case Protocol::kFastCast: {
      FastCast::Options opt;
      opt.eager_hard_propose = config_.fastcast_eager_hard;
      return std::make_shared<FastCast>(std::move(cfg), node, opt);
    }
    case Protocol::kFastCastSlowPath: {
      FastCast::Options opt;
      opt.force_slow_path = true;
      opt.eager_hard_propose = config_.fastcast_eager_hard;
      return std::make_shared<FastCast>(std::move(cfg), node, opt);
    }
    case Protocol::kMultiPaxos: break;  // handled above
  }
  FC_ASSERT(false);
  return nullptr;
}

std::unique_ptr<ClientStub> Cluster::make_stub() {
  const bool reliable = config_.drop_probability == 0.0;
  if (config_.topo.protocol == Protocol::kMultiPaxos) {
    MultiPaxosClientStub::Config cfg;
    cfg.ordering_members =
        deployment_.membership.members(deployment_.ordering_group);
    cfg.reliable_links = reliable;
    return std::make_unique<MultiPaxosClientStub>(std::move(cfg));
  }
  RmConfig rm;
  rm.reliable_links = reliable;
  rm.relay = RmConfig::Relay::kNone;  // clients never relay
  return std::make_unique<GenuineClientStub>(rm);
}

void Cluster::stop_clients(Time at) {
  for (auto& c : clients_) c->set_stop(at);
}

ReplicaNode& Cluster::replica(NodeId node) {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (deployment_.membership.all_replicas()[i] == node) return *replicas_[i];
  }
  FC_ASSERT_MSG(false, "not a replica node");
  return *replicas_.front();
}

ClientProcess& Cluster::client(std::size_t idx) {
  FC_ASSERT(idx < clients_.size());
  return *clients_[idx];
}

std::pair<std::uint64_t, std::uint64_t> Cluster::path_stats() const {
  std::uint64_t fast = 0;
  std::uint64_t slow = 0;
  for (const auto& p : protocols_) {
    if (const auto* fc = dynamic_cast<const FastCast*>(p.get())) {
      fast += fc->fast_path_hits();
      slow += fc->slow_path_hits();
    }
  }
  return {fast, slow};
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  Cluster cluster(config);
  auto& sim = cluster.simulator();
  cluster.start();

  sim.run_until(config.warmup);
  const Time window_end = config.warmup + config.measure;
  cluster.metrics().open_window(config.warmup, window_end, config.slice);
  sim.run_until(window_end);
  cluster.metrics().close_window();

  ExperimentResult result;
  const bool can_drain =
      config.drain && config.drop_probability == 0.0 && !config.heartbeats;
  if (can_drain) {
    cluster.stop_clients(window_end);
    result.drained = sim.run_to_idle(window_end + config.drain_grace);
  } else if (config.drain) {
    cluster.stop_clients(window_end);
    sim.run_for(config.drain_grace / 10);  // grace period; timers keep ticking
  }

  result.latency = cluster.metrics().latency();
  result.throughput = cluster.metrics().throughput();
  if (config.run_checker) {
    result.report = cluster.checker().check(result.drained, config.check_level);
  }
  result.events_processed = sim.events_processed();
  result.messages_sent = sim.messages_sent();
  const auto [fast, slow] = cluster.path_stats();
  result.fast_path_hits = fast;
  result.slow_path_hits = slow;
  return result;
}

}  // namespace fastcast::harness
