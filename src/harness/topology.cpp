#include "fastcast/harness/topology.hpp"

#include "fastcast/common/assert.hpp"

namespace fastcast::harness {

const char* to_string(Environment env) {
  switch (env) {
    case Environment::kLan: return "LAN";
    case Environment::kEmulatedWan: return "emulated WAN";
    case Environment::kRealWan: return "real WAN";
  }
  return "?";
}

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kBaseCast: return "BaseCast";
    case Protocol::kFastCast: return "FastCast";
    case Protocol::kFastCastSlowPath: return "FastCast (slow path)";
    case Protocol::kMultiPaxos: return "MultiPaxos";
  }
  return "?";
}

Deployment build_deployment(const TopologyConfig& config) {
  FC_ASSERT(config.groups >= 1);
  FC_ASSERT(config.replicas_per_group >= 1);

  const bool wan = config.env != Environment::kLan;
  Deployment d;
  d.group_count = config.groups;

  auto regions_for_group = [&] {
    std::vector<RegionId> regions(config.replicas_per_group, 0);
    if (wan) {
      // Fig. 2: one replica per region; member 0 (the leader) in R1.
      for (std::size_t i = 0; i < regions.size(); ++i) {
        regions[i] = static_cast<RegionId>(i % 3);
      }
    }
    return regions;
  };

  for (std::size_t g = 0; g < config.groups; ++g) {
    d.membership.add_group(config.replicas_per_group, regions_for_group());
  }
  if (config.protocol == Protocol::kMultiPaxos) {
    d.ordering_group =
        d.membership.add_group(config.replicas_per_group, regions_for_group());
  }
  for (std::size_t c = 0; c < config.clients; ++c) {
    const RegionId region = wan ? static_cast<RegionId>(c % 3) : 0;
    d.clients.push_back(d.membership.add_client(region));
  }
  return d;
}

std::unique_ptr<sim::LatencyModel> make_latency(Environment env,
                                                const Membership* membership) {
  switch (env) {
    case Environment::kLan: return sim::make_paper_lan();
    case Environment::kEmulatedWan:
    case Environment::kRealWan: return sim::make_paper_wan(membership);
  }
  FC_ASSERT(false);
  return nullptr;
}

sim::CpuModel cpu_for(Environment env) {
  switch (env) {
    case Environment::kLan:
    case Environment::kEmulatedWan:
      // Xeon L5420-era cost per handled message / per unicast issued;
      // calibrated so one group saturates near the paper's ~36 k local
      // messages/s with 200 closed-loop clients (Fig. 3).
      return sim::CpuModel{microseconds(15), microseconds(2)};
    case Environment::kRealWan:
      // m3.large: noticeably cheaper per-message processing (§5.6).
      return sim::CpuModel{microseconds(8), microseconds(1)};
  }
  FC_ASSERT(false);
  return {};
}

}  // namespace fastcast::harness
