#include "fastcast/sim/simulator.hpp"

#include <deque>
#include <utility>

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast::sim {

/// Per-node Context implementation. Sends issued during a handler are
/// buffered and flushed when the handler's CPU slice ends, so departure
/// times reflect processing cost.
class Simulator::NodeContext final : public Context {
 public:
  NodeContext(Simulator* sim, NodeId self) : sim_(sim), self_(self) {}

  NodeId self() const override { return self_; }
  Time now() const override { return sim_->now_; }
  Rng& rng() override;
  const Membership& membership() const override { return sim_->membership_; }

  void send(NodeId to, const Message& msg) override;
  void send(NodeId to, Message&& msg) override;
  TimerId set_timer(Duration delay, std::function<void()> cb) override;
  void cancel_timer(TimerId id) override;

 private:
  friend class Simulator;
  Simulator* sim_;
  NodeId self_;
  struct PendingSend {
    NodeId to;
    std::shared_ptr<const Message> msg;
  };
  std::vector<PendingSend> pending_;
};

struct Simulator::NodeState {
  NodeId id = kInvalidNode;
  std::shared_ptr<Process> process;
  std::unique_ptr<NodeContext> ctx;
  Rng rng;
  Time busy_until = 0;
  bool crashed = false;
  CpuModel cpu;
  std::unordered_map<TimerId, std::function<void()>> timers;
  std::deque<EventFn> inbox;  ///< tasks queued behind a busy CPU
  bool drain_scheduled = false;
};

Rng& Simulator::NodeContext::rng() { return sim_->nodes_[self_]->rng; }

void Simulator::NodeContext::send(NodeId to, const Message& msg) {
  FC_ASSERT(to < sim_->membership_.node_count());
  std::shared_ptr<const Message> shared;
  if (sim_->config_.serialize_messages) {
    // Round-trip through the codec so integration tests exercise exactly
    // the bytes the TCP transport would carry. The scratch buffer is owned
    // by the (single-threaded) simulator and reused across sends.
    encode_message_into(msg, sim_->codec_scratch_);
    auto decoded = std::make_shared<Message>();
    FC_ASSERT_MSG(decode_message(sim_->codec_scratch_, *decoded),
                  "codec round-trip failed");
    shared = std::move(decoded);
  } else {
    shared = std::make_shared<const Message>(msg);
  }
  pending_.push_back({to, std::move(shared)});
}

void Simulator::NodeContext::send(NodeId to, Message&& msg) {
  if (sim_->config_.serialize_messages) {
    // The serialize mode round-trips through the codec anyway; ownership
    // of the original buys nothing there.
    send(to, static_cast<const Message&>(msg));
    return;
  }
  FC_ASSERT(to < sim_->membership_.node_count());
  // Hot path: protocols overwhelmingly send freshly-built temporaries, and
  // a Message's payload carries vectors/strings — adopting it skips the
  // deep copy the const& path pays.
  pending_.push_back({to, std::make_shared<const Message>(std::move(msg))});
}

TimerId Simulator::NodeContext::set_timer(Duration delay, std::function<void()> cb) {
  FC_ASSERT(delay >= 0);
  auto& node = *sim_->nodes_[self_];
  const TimerId id = sim_->next_timer_id_++;
  node.timers.emplace(id, std::move(cb));
  const NodeId self = self_;
  Simulator* sim = sim_;
  sim_->queue_.push(sim_->now_ + delay, [sim, self, id] { sim->fire_timer(self, id); });
  return id;
}

void Simulator::NodeContext::cancel_timer(TimerId id) {
  sim_->nodes_[self_]->timers.erase(id);
}

Simulator::Simulator(const Membership& membership,
                     std::unique_ptr<LatencyModel> latency, SimConfig config)
    : membership_(membership),
      latency_(std::move(latency)),
      config_(config),
      net_rng_(config.seed ^ 0x90debeefULL) {
  FC_ASSERT(latency_ != nullptr);
  Rng seeder(config_.seed);
  nodes_.resize(membership_.node_count());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto state = std::make_unique<NodeState>();
    state->id = static_cast<NodeId>(i);
    state->ctx = std::make_unique<NodeContext>(this, state->id);
    state->rng = seeder.fork();
    state->cpu = config_.cpu;
    nodes_[i] = std::move(state);
  }
}

Simulator::~Simulator() = default;

void Simulator::add_process(NodeId node, std::shared_ptr<Process> process) {
  FC_ASSERT(node < nodes_.size());
  FC_ASSERT_MSG(nodes_[node]->process == nullptr, "process already registered");
  nodes_[node]->process = std::move(process);
}

void Simulator::start() {
  for (auto& node : nodes_) {
    FC_ASSERT_MSG(node->process != nullptr, "every node needs a process");
  }
  for (auto& node : nodes_) {
    run_handler(*node, now_, [&] { node->process->on_start(*node->ctx); });
  }
}

Context& Simulator::context(NodeId node) {
  FC_ASSERT(node < nodes_.size());
  return *nodes_[node]->ctx;
}

void Simulator::set_node_cpu(NodeId node, CpuModel cpu) {
  FC_ASSERT(node < nodes_.size());
  nodes_[node]->cpu = cpu;
}

void Simulator::set_node_storage(NodeId node, storage::NodeStorage* storage) {
  FC_ASSERT(node < nodes_.size());
  nodes_[node]->ctx->set_storage(storage);
}

void Simulator::set_observability(obs::Observability* o) {
  c_unicasts_ = o ? &o->metrics.counter("net.unicasts") : nullptr;
  c_dropped_ = o ? &o->metrics.counter("net.dropped") : nullptr;
  c_crashes_ = o ? &o->metrics.counter("fault.crashes") : nullptr;
  c_recoveries_ = o ? &o->metrics.counter("fault.recoveries") : nullptr;
  g_queue_hwm_ = o ? &o->metrics.gauge("sim.event_queue.high_water") : nullptr;
  last_reported_hwm_ = 0;
  if (g_queue_hwm_ != nullptr && queue_.high_water_mark() > 0) {
    last_reported_hwm_ = queue_.high_water_mark();
    g_queue_hwm_->record_max(static_cast<std::int64_t>(last_reported_hwm_));
  }
  for (auto& node : nodes_) node->ctx->set_observability(o);
}

void Simulator::crash(NodeId node) {
  FC_ASSERT(node < nodes_.size());
  auto& n = *nodes_[node];
  if (n.crashed) return;
  n.crashed = true;
  n.timers.clear();
  n.inbox.clear();
  if (c_crashes_) c_crashes_->inc();
  if (crash_hook_) crash_hook_(node);
}

void Simulator::schedule_crash(NodeId node, Time at) {
  queue_.push(at, [this, node] { crash(node); });
}

bool Simulator::is_crashed(NodeId node) const {
  FC_ASSERT(node < nodes_.size());
  return nodes_[node]->crashed;
}

void Simulator::recover(NodeId node) {
  FC_ASSERT(node < nodes_.size());
  auto& n = *nodes_[node];
  if (!n.crashed) return;
  n.crashed = false;
  n.busy_until = now_;
  n.inbox.clear();
  if (c_recoveries_) c_recoveries_->inc();
  if (recovery_factory_) {
    // Real process death: the retained object (and every bit of state not
    // recovered from storage by the factory) is discarded.
    if (std::shared_ptr<Process> fresh = recovery_factory_(node)) {
      n.process = std::move(fresh);
    }
  }
  NodeState* np = &n;
  run_handler(n, now_, [np] { np->process->on_recover(*np->ctx); });
}

void Simulator::schedule_recover(NodeId node, Time at) {
  queue_.push(at, [this, node] { recover(node); });
}

void Simulator::schedule_at(Time at, EventFn fn) {
  FC_ASSERT(at >= now_);
  queue_.push(at, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Export the queue's high-water mark lazily: only when it grew since the
  // last report, so the steady-state cost is one inline comparison.
  if (g_queue_hwm_ != nullptr && queue_.high_water_mark() > last_reported_hwm_) {
    last_reported_hwm_ = queue_.high_water_mark();
    g_queue_hwm_->record_max(static_cast<std::int64_t>(last_reported_hwm_));
  }
  auto event = queue_.pop();
  FC_ASSERT(event.at >= now_);
  now_ = event.at;
  ++events_processed_;
  event.fn();
  return true;
}

void Simulator::run_until(Time t) {
  while (!queue_.empty() && queue_.next_time() <= t) step();
  if (now_ < t) now_ = t;
}

bool Simulator::run_to_idle(Time limit) {
  while (!queue_.empty()) {
    if (queue_.next_time() > limit) return false;
    step();
  }
  return true;
}

void Simulator::run_handler(NodeState& node, Time at, EventFn&& body) {
  if (node.crashed) return;
  body();
  Duration cost =
      node.cpu.per_message +
      node.cpu.per_send * static_cast<Duration>(node.ctx->pending_.size());
  if (node.cpu.per_byte > 0) {
    // Bandwidth-proportional term: big frames (payload batches through
    // consensus, body dissemination) cost CPU/NIC time where small control
    // messages stay cheap. Charged on the sender, where the copy happens.
    std::uint64_t bytes = 0;
    for (const auto& send : node.ctx->pending_) {
      bytes += approx_wire_bytes(*send.msg);
    }
    cost += node.cpu.per_byte * static_cast<Duration>(bytes);
  }
  const Time done = at + cost;
  node.busy_until = done;
  flush_sends(node, done);
}

void Simulator::flush_sends(NodeState& node, Time departure) {
  for (auto& send : node.ctx->pending_) {
    ++messages_sent_;
    if (c_unicasts_) c_unicasts_->inc();
    const NodeId to = send.to;
    if (send_observer_) send_observer_(node.id, to, *send.msg);
    if (config_.drop_probability > 0.0 && to != node.id &&
        net_rng_.bernoulli(config_.drop_probability)) {
      ++messages_dropped_;
      if (c_dropped_) c_dropped_->inc();
      continue;
    }
    if (link_filter_ && !link_filter_(node.id, to, departure)) {
      ++messages_dropped_;
      if (c_dropped_) c_dropped_->inc();
      continue;
    }
    const Duration lat = latency_->sample(node.id, to, net_rng_);
    auto msg = std::move(send.msg);
    const NodeId from = node.id;
    queue_.push(departure + lat,
                [this, to, from, msg = std::move(msg)] { deliver(to, from, msg); });
  }
  node.ctx->pending_.clear();
}

void Simulator::execute_or_queue(NodeState& node, EventFn task) {
  if (node.crashed) return;
  if (node.busy_until > now_) {
    // The node's CPU is still occupied by an earlier handler: queue the
    // task in its inbox and make sure exactly one drain event exists.
    // One drain event per processed task keeps the cost linear even when
    // hundreds of arrivals pile up behind a saturated node.
    node.inbox.push_back(std::move(task));
    arm_drain(node);
    return;
  }
  run_handler(node, now_, std::move(task));
}

void Simulator::arm_drain(NodeState& node) {
  if (node.drain_scheduled) return;
  node.drain_scheduled = true;
  NodeState* n = &node;
  queue_.push(node.busy_until, [this, n] { drain_inbox(*n); });
}

void Simulator::drain_inbox(NodeState& node) {
  node.drain_scheduled = false;
  if (node.crashed) {
    node.inbox.clear();
    return;
  }
  if (node.busy_until > now_) {  // a timer/handler got in first
    arm_drain(node);
    return;
  }
  if (node.inbox.empty()) return;
  EventFn task = std::move(node.inbox.front());
  node.inbox.pop_front();
  run_handler(node, now_, std::move(task));
  if (!node.inbox.empty()) arm_drain(node);
}

void Simulator::deliver(NodeId to, NodeId from,
                        const std::shared_ptr<const Message>& msg) {
  auto& node = *nodes_[to];
  if (node.crashed) return;
  NodeState* n = &node;
  execute_or_queue(node, [n, from, msg] {
    n->process->on_message(*n->ctx, from, *msg);
  });
}

void Simulator::fire_timer(NodeId nid, TimerId id) {
  auto& node = *nodes_[nid];
  if (node.crashed) return;
  NodeState* n = &node;
  execute_or_queue(node, [n, id] {
    auto it = n->timers.find(id);
    if (it == n->timers.end()) return;  // cancelled (possibly while queued)
    auto cb = std::move(it->second);
    n->timers.erase(it);
    cb();
  });
}

}  // namespace fastcast::sim
