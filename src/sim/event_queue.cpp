#include "fastcast/sim/event_queue.hpp"

#include <algorithm>

namespace fastcast::sim {

std::uint32_t EventQueue::acquire() {
  // seq is the determinism anchor: it must never wrap or reuse values.
  // 2^64 pushes is unreachable in practice, but the queue's ordering
  // contract silently breaks if it ever did, so fail loudly instead.
  FC_ASSERT_MSG(next_seq_ != std::numeric_limits<std::uint64_t>::max(),
                "event sequence counter exhausted");
  std::uint32_t idx;
  if (free_head_ != kNilIndex) {
    idx = free_head_;
    free_head_ = pool_[idx].next_free;
  } else {
    FC_ASSERT_MSG(pool_.size() < kNilIndex, "event pool exhausted");
    idx = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  return idx;
}

void EventQueue::enqueue(HeapEntry entry) {
  heap_.push_back(entry);
  sift_up(heap_.size() - 1);
  if (heap_.size() > high_water_) high_water_ = heap_.size();
}

void EventQueue::release(std::uint32_t idx) {
  pool_[idx].next_free = free_head_;
  free_head_ = idx;
}

Time EventQueue::next_time() const {
  FC_ASSERT(!heap_.empty());
  return heap_.front().at;
}

EventQueue::Event EventQueue::pop() {
  FC_ASSERT(!heap_.empty());
  const HeapEntry top = heap_.front();
  Event e;
  e.at = top.at;
  e.seq = top.seq;
  e.fn = std::move(pool_[top.idx].fn);
  release(top.idx);
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return e;
}

void EventQueue::sift_up(std::size_t i) {
  const HeapEntry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::sift_down(std::size_t i) {
  const HeapEntry entry = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], entry)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

}  // namespace fastcast::sim
