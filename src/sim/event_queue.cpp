#include "fastcast/sim/event_queue.hpp"

#include "fastcast/common/assert.hpp"

namespace fastcast::sim {

void EventQueue::push(Time at, std::function<void()> fn) {
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

Time EventQueue::next_time() const {
  FC_ASSERT(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Event EventQueue::pop() {
  FC_ASSERT(!heap_.empty());
  // priority_queue::top() is const; the move is safe because we pop
  // immediately after and never touch the moved-from element.
  Event e = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return e;
}

}  // namespace fastcast::sim
