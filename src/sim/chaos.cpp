#include "fastcast/sim/chaos.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "fastcast/common/assert.hpp"
#include "fastcast/common/rng.hpp"
#include "fastcast/sim/simulator.hpp"

namespace fastcast::sim {

const char* chaos_event_kind_name(ChaosEvent::Kind kind) {
  switch (kind) {
    case ChaosEvent::Kind::kCrash: return "crash";
    case ChaosEvent::Kind::kRecover: return "recover";
    case ChaosEvent::Kind::kDropBurstStart: return "drop-burst-start";
    case ChaosEvent::Kind::kDropBurstEnd: return "drop-burst-end";
    case ChaosEvent::Kind::kPartitionStart: return "partition-start";
    case ChaosEvent::Kind::kPartitionEnd: return "partition-end";
  }
  return "?";
}

namespace {

Duration sample_duration(Rng& rng, Duration lo, Duration hi) {
  if (hi <= lo) return lo;
  return rng.uniform_range(lo, hi);
}

}  // namespace

ChaosSchedule ChaosSchedule::generate(const Membership& membership,
                                      const ChaosConfig& config,
                                      std::uint64_t seed) {
  FC_ASSERT(config.end >= config.start);
  FC_ASSERT(membership.group_count() > 0);
  Rng rng(seed ^ 0xc4a05c4a05ULL);
  ChaosSchedule schedule;
  const Time span = config.end - config.start;

  // Crash→recover episodes. group_free[g] is the earliest time group g may
  // lose another member: it enforces "at most one concurrent crash per
  // group", which keeps every group at a majority and makes the checker's
  // properties a hard pass/fail signal rather than a quorum-loss artifact.
  std::vector<Time> group_free(membership.group_count(), config.start);
  for (std::size_t i = 0; i < config.crashes && span > 0; ++i) {
    const auto g = static_cast<GroupId>(rng.uniform(membership.group_count()));
    const auto& members = membership.members(g);
    const NodeId victim = rng.bernoulli(config.leader_bias)
                              ? members.front()
                              : members[rng.uniform(members.size())];
    Time at = config.start + static_cast<Time>(rng.uniform(
                                 static_cast<std::uint64_t>(span)));
    at = std::max(at, group_free[g]);
    const Duration down =
        sample_duration(rng, config.min_downtime, config.max_downtime);
    if (at + down > config.end) continue;  // would dangle past the window
    schedule.events_.push_back(
        {ChaosEvent::Kind::kCrash, at, victim, 0.0});
    schedule.events_.push_back(
        {ChaosEvent::Kind::kRecover, at + down, victim, 0.0});
    // Leave slack after recovery so the node re-joins before the group's
    // next episode (catch-up needs a few timer rounds).
    group_free[g] = at + down + down / 2 + 1;
  }

  // Lag episodes: a long crash→recover against a non-leader member (the
  // leader keeps deciding, so the victim returns far behind the frontier
  // and must catch up via state transfer). Shares group_free with the
  // short-crash episodes: never two concurrent holes in one group.
  for (std::size_t i = 0; i < config.lag_episodes && span > 0; ++i) {
    const auto g = static_cast<GroupId>(rng.uniform(membership.group_count()));
    const auto& members = membership.members(g);
    const NodeId victim = members.size() > 1
                              ? members[1 + rng.uniform(members.size() - 1)]
                              : members.front();
    const Duration down = sample_duration(rng, config.lag_min_downtime,
                                          config.lag_max_downtime);
    if (down <= 0) continue;
    // Start in the first quarter of the window so recovery + catch-up fit.
    Time at = config.start + static_cast<Time>(rng.uniform(
                                 static_cast<std::uint64_t>(span / 4 + 1)));
    at = std::max(at, group_free[g]);
    if (at + down > config.end) continue;
    schedule.events_.push_back({ChaosEvent::Kind::kCrash, at, victim, 0.0});
    schedule.events_.push_back(
        {ChaosEvent::Kind::kRecover, at + down, victim, 0.0});
    group_free[g] = at + down + down / 2 + 1;
  }

  // Transient loss bursts.
  for (std::size_t i = 0; i < config.drop_bursts && span > 0; ++i) {
    const Time at = config.start + static_cast<Time>(rng.uniform(
                                       static_cast<std::uint64_t>(span)));
    const Duration len =
        sample_duration(rng, config.min_burst, config.max_burst);
    if (len <= 0 || at + len > config.end) continue;
    schedule.events_.push_back({ChaosEvent::Kind::kDropBurstStart, at,
                                kInvalidNode, config.burst_drop_probability});
    schedule.events_.push_back(
        {ChaosEvent::Kind::kDropBurstEnd, at + len, kInvalidNode, 0.0});
  }

  // Partition episodes: isolate one replica (a single-node island keeps the
  // group's majority), then heal.
  const auto replicas = membership.all_replicas();
  for (std::size_t i = 0; i < config.partitions && span > 0; ++i) {
    const NodeId victim = replicas[rng.uniform(replicas.size())];
    const Time at = config.start + static_cast<Time>(rng.uniform(
                                       static_cast<std::uint64_t>(span)));
    const Duration len =
        sample_duration(rng, config.min_partition, config.max_partition);
    if (len <= 0 || at + len > config.end) continue;
    schedule.events_.push_back(
        {ChaosEvent::Kind::kPartitionStart, at, victim, 0.0});
    schedule.events_.push_back(
        {ChaosEvent::Kind::kPartitionEnd, at + len, victim, 0.0});
  }

  std::stable_sort(schedule.events_.begin(), schedule.events_.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at < b.at;
                   });
  return schedule;
}

void ChaosSchedule::apply(Simulator& sim) const {
  const double base_drop = sim.drop_probability();

  // Partition windows become one composite link filter: a unicast is
  // dropped when exactly one endpoint is inside an active island.
  struct Window {
    NodeId node;
    Time from;
    Time to;
  };
  auto windows = std::make_shared<std::vector<Window>>();
  {
    std::unordered_map<NodeId, Time> open;
    for (const ChaosEvent& e : events_) {
      if (e.kind == ChaosEvent::Kind::kPartitionStart) {
        open[e.node] = e.at;
      } else if (e.kind == ChaosEvent::Kind::kPartitionEnd) {
        auto it = open.find(e.node);
        FC_ASSERT_MSG(it != open.end(), "partition end without start");
        windows->push_back({e.node, it->second, e.at});
        open.erase(it);
      }
    }
    FC_ASSERT_MSG(open.empty(), "unhealed partition in schedule");
  }
  if (!windows->empty()) {
    sim.set_link_filter([windows](NodeId from, NodeId to, Time at) {
      for (const Window& w : *windows) {
        if (at < w.from || at >= w.to) continue;
        if ((from == w.node) != (to == w.node)) return false;
      }
      return true;
    });
  }

  for (const ChaosEvent& e : events_) {
    switch (e.kind) {
      case ChaosEvent::Kind::kCrash:
        sim.schedule_crash(e.node, e.at);
        break;
      case ChaosEvent::Kind::kRecover:
        sim.schedule_recover(e.node, e.at);
        break;
      case ChaosEvent::Kind::kDropBurstStart: {
        const double p = e.drop_probability;
        sim.schedule_at(e.at, [&sim, p] { sim.set_drop_probability(p); });
        break;
      }
      case ChaosEvent::Kind::kDropBurstEnd:
        sim.schedule_at(e.at,
                        [&sim, base_drop] { sim.set_drop_probability(base_drop); });
        break;
      case ChaosEvent::Kind::kPartitionStart:
      case ChaosEvent::Kind::kPartitionEnd:
        break;  // handled by the link filter above
    }
  }
}

std::string ChaosSchedule::describe() const {
  std::ostringstream out;
  for (const ChaosEvent& e : events_) {
    out << e.at << "ns " << chaos_event_kind_name(e.kind);
    if (e.node != kInvalidNode) out << " node=" << e.node;
    if (e.kind == ChaosEvent::Kind::kDropBurstStart) {
      out << " p=" << e.drop_probability;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace fastcast::sim
