#include "fastcast/sim/latency.hpp"

#include "fastcast/common/assert.hpp"

namespace fastcast::sim {

namespace {

/// Applies relative normal jitter and clamps to a small positive floor.
Duration jittered(Duration base, double jitter_frac, Rng& rng) {
  if (jitter_frac <= 0.0) return base;
  const double sampled =
      rng.normal(static_cast<double>(base), jitter_frac * static_cast<double>(base));
  const auto floor = static_cast<double>(base) * 0.1;
  return static_cast<Duration>(sampled < floor ? floor : sampled);
}

}  // namespace

ConstantLatency::ConstantLatency(Duration base, double jitter_frac)
    : base_(base), jitter_frac_(jitter_frac) {
  FC_ASSERT(base > 0);
}

Duration ConstantLatency::sample(NodeId, NodeId, Rng& rng) const {
  return jittered(base_, jitter_frac_, rng);
}

Duration ConstantLatency::nominal(NodeId, NodeId) const { return base_; }

RegionLatency::RegionLatency(const Membership* membership,
                             std::vector<std::vector<Duration>> matrix,
                             double jitter_frac)
    : membership_(membership), matrix_(std::move(matrix)), jitter_frac_(jitter_frac) {
  FC_ASSERT(membership_ != nullptr);
  for (const auto& row : matrix_) FC_ASSERT(row.size() == matrix_.size());
  for (std::size_t i = 0; i < matrix_.size(); ++i) {
    for (std::size_t j = 0; j < matrix_.size(); ++j) {
      FC_ASSERT_MSG(matrix_[i][j] == matrix_[j][i], "latency matrix must be symmetric");
      FC_ASSERT(matrix_[i][j] > 0);
    }
  }
}

Duration RegionLatency::nominal(NodeId from, NodeId to) const {
  const RegionId a = membership_->region_of(from);
  const RegionId b = membership_->region_of(to);
  FC_ASSERT(a < matrix_.size() && b < matrix_.size());
  return matrix_[a][b];
}

Duration RegionLatency::sample(NodeId from, NodeId to, Rng& rng) const {
  return jittered(nominal(from, to), jitter_frac_, rng);
}

std::unique_ptr<LatencyModel> make_paper_wan(const Membership* membership) {
  const Duration intra = milliseconds_f(0.05);
  const Duration r12 = milliseconds(35);  // 70 ms RTT
  const Duration r23 = milliseconds(35);  // 70 ms RTT
  const Duration r13 = milliseconds(72);  // 144 ms RTT
  std::vector<std::vector<Duration>> m = {
      {intra, r12, r13},
      {r12, intra, r23},
      {r13, r23, intra},
  };
  return std::make_unique<RegionLatency>(membership, std::move(m), 0.05);
}

std::unique_ptr<LatencyModel> make_paper_lan() {
  return std::make_unique<ConstantLatency>(milliseconds_f(0.05), 0.05);
}

}  // namespace fastcast::sim
