#include "fastcast/checker/checker.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "fastcast/common/assert.hpp"

namespace fastcast {

void Checker::note_multicast(const MulticastMessage& msg) {
  multicast_.emplace(msg.id, MsgInfo{msg.dst, msg.sender});
}

void Checker::note_delivery(NodeId node, MsgId mid) {
  deliveries_[node].push_back(mid);
  ++delivery_count_;
}

void Checker::violate(Report& r, std::string what) {
  r.ok = false;
  if (r.violations.size() < 50) r.violations.push_back(std::move(what));
}

void Checker::Report::publish(obs::MetricsRegistry& metrics) const {
  metrics.counter("checker.multicasts").inc(multicast_count);
  metrics.counter("checker.deliveries").inc(delivery_count);
  metrics.counter("checker.order_edges").inc(order_edges);
  metrics.counter("checker.orders_compared").inc(orders_compared);
  metrics.counter("checker.violations").inc(violations.size());
}

Checker::Report Checker::check(bool quiesced, Level level) const {
  Report r;
  r.multicast_count = multicast_.size();
  r.delivery_count = delivery_count_;
  check_integrity(r);
  check_acyclic(r);
  check_same_group(r, quiesced);
  if (level == Level::kFull) check_prefix_crosswise(r);
  if (quiesced) check_agreement_validity(r);
  return r;
}

void Checker::check_integrity(Report& r) const {
  for (const auto& [node, seq] : deliveries_) {
    std::unordered_set<MsgId> seen;
    seen.reserve(seq.size());
    const GroupId g = membership_->group_of(node);
    for (MsgId mid : seq) {
      if (!seen.insert(mid).second) {
        std::ostringstream os;
        os << "integrity: node " << node << " delivered message " << mid << " twice";
        violate(r, os.str());
      }
      auto it = multicast_.find(mid);
      if (it == multicast_.end()) {
        std::ostringstream os;
        os << "integrity: node " << node << " delivered never-multicast message " << mid;
        violate(r, os.str());
        continue;
      }
      const auto& dst = it->second.dst;
      if (std::find(dst.begin(), dst.end(), g) == dst.end()) {
        std::ostringstream os;
        os << "integrity: node " << node << " (group " << g
           << ") delivered message " << mid << " not addressed to its group";
        violate(r, os.str());
      }
    }
  }
}

void Checker::check_acyclic(Report& r) const {
  // Build consecutive-delivery edges; Kahn's algorithm detects cycles.
  std::unordered_map<MsgId, std::vector<MsgId>> succ;
  std::unordered_map<MsgId, std::size_t> indegree;
  for (const auto& [node, seq] : deliveries_) {
    for (MsgId mid : seq) indegree.try_emplace(mid, 0);
    for (std::size_t i = 1; i < seq.size(); ++i) {
      succ[seq[i - 1]].push_back(seq[i]);
      ++indegree[seq[i]];
      ++r.order_edges;
    }
  }
  std::deque<MsgId> ready;
  for (const auto& [mid, deg] : indegree) {
    if (deg == 0) ready.push_back(mid);
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const MsgId mid = ready.front();
    ready.pop_front();
    ++visited;
    auto it = succ.find(mid);
    if (it == succ.end()) continue;
    for (MsgId next : it->second) {
      if (--indegree[next] == 0) ready.push_back(next);
    }
  }
  if (visited != indegree.size()) {
    std::ostringstream os;
    os << "acyclic order: delivery precedence contains a cycle ("
       << (indegree.size() - visited) << " messages involved)";
    violate(r, os.str());
  }
}

void Checker::check_same_group(Report& r, bool quiesced) const {
  // Replicas of one group must deliver prefixes of a common sequence
  // (equal sequences once quiesced, for surviving replicas).
  for (std::size_t g = 0; g < membership_->group_count(); ++g) {
    const auto& members = membership_->members(static_cast<GroupId>(g));
    const std::vector<MsgId>* longest = nullptr;
    NodeId longest_node = kInvalidNode;
    for (NodeId n : members) {
      if (crashed_.contains(n)) continue;
      auto it = deliveries_.find(n);
      const std::vector<MsgId>* seq = it == deliveries_.end() ? nullptr : &it->second;
      static const std::vector<MsgId> kEmpty;
      if (seq == nullptr) seq = &kEmpty;
      if (longest == nullptr || seq->size() > longest->size()) {
        longest = seq;
        longest_node = n;
      }
    }
    if (longest == nullptr) continue;
    for (NodeId n : members) {
      if (crashed_.contains(n)) continue;
      auto it = deliveries_.find(n);
      static const std::vector<MsgId> kEmpty;
      const std::vector<MsgId>& seq = it == deliveries_.end() ? kEmpty : it->second;
      ++r.orders_compared;
      if (!std::equal(seq.begin(), seq.end(), longest->begin())) {
        const auto [mine, theirs] =
            std::mismatch(seq.begin(), seq.end(), longest->begin());
        std::ostringstream os;
        os << "group consistency: node " << n << " and node " << longest_node
           << " (group " << g << ") deliver diverging sequences at position "
           << (mine - seq.begin()) << ": " << *mine << " vs " << *theirs;
        violate(r, os.str());
      } else if (quiesced && seq.size() != longest->size()) {
        std::ostringstream os;
        os << "group consistency: node " << n << " delivered " << seq.size()
           << " messages but node " << longest_node << " delivered "
           << longest->size() << " after quiescence (group " << g << ")";
        violate(r, os.str());
      }
    }
  }
}

void Checker::check_prefix_crosswise(Report& r) const {
  // For every pair of replicas (p, q) in different groups: collect the
  // messages addressed to both groups; neither replica may have delivered
  // a both-addressed message the other misses while the other delivered a
  // different both-addressed message p misses.
  std::vector<NodeId> replicas;
  for (const auto& [node, seq] : deliveries_) {
    (void)seq;
    if (membership_->group_of(node) != kNoGroup) replicas.push_back(node);
  }
  std::sort(replicas.begin(), replicas.end());

  std::unordered_map<NodeId, std::unordered_set<MsgId>> delivered_sets;
  for (NodeId n : replicas) {
    const auto& seq = deliveries_.at(n);
    delivered_sets[n] = std::unordered_set<MsgId>(seq.begin(), seq.end());
  }

  for (std::size_t i = 0; i < replicas.size(); ++i) {
    for (std::size_t j = i + 1; j < replicas.size(); ++j) {
      const NodeId p = replicas[i];
      const NodeId q = replicas[j];
      const GroupId gp = membership_->group_of(p);
      const GroupId gq = membership_->group_of(q);
      if (gp == gq) continue;  // covered by check_same_group
      ++r.orders_compared;
      const auto& sp = delivered_sets[p];
      const auto& sq = delivered_sets[q];

      auto both_addressed = [&](MsgId mid) {
        auto it = multicast_.find(mid);
        if (it == multicast_.end()) return false;  // flagged by integrity
        const auto& dst = it->second.dst;
        return std::find(dst.begin(), dst.end(), gp) != dst.end() &&
               std::find(dst.begin(), dst.end(), gq) != dst.end();
      };

      MsgId p_only = 0;
      bool has_p_only = false;
      for (MsgId mid : sp) {
        if (!sq.contains(mid) && both_addressed(mid)) {
          p_only = mid;
          has_p_only = true;
          break;
        }
      }
      if (!has_p_only) continue;
      for (MsgId mid : sq) {
        if (!sp.contains(mid) && both_addressed(mid)) {
          std::ostringstream os;
          os << "prefix order: node " << p << " delivered " << p_only
             << " without " << mid << " while node " << q
             << " delivered " << mid << " without " << p_only;
          violate(r, os.str());
          break;
        }
      }
    }
  }
}

void Checker::check_agreement_validity(Report& r) const {
  // Which messages were delivered by anyone / by whom?
  std::unordered_set<MsgId> delivered_any;
  std::unordered_map<NodeId, std::unordered_set<MsgId>> delivered_sets;
  for (const auto& [node, seq] : deliveries_) {
    delivered_any.insert(seq.begin(), seq.end());
    delivered_sets[node] = std::unordered_set<MsgId>(seq.begin(), seq.end());
  }

  for (const auto& [mid, info] : multicast_) {
    const bool anyone = delivered_any.contains(mid);
    const bool sender_ok = !crashed_.contains(info.sender);
    if (!anyone && !sender_ok) continue;  // crashed sender: nothing required
    if (!anyone && rejected_.contains(mid)) continue;  // explicitly rejected
    if (!anyone && sender_ok) {
      std::ostringstream os;
      os << "validity: message " << mid << " from surviving sender "
         << info.sender << " was never delivered";
      violate(r, os.str());
      continue;
    }
    // Agreement: every surviving replica of every destination group.
    for (GroupId g : info.dst) {
      for (NodeId n : membership_->members(g)) {
        if (crashed_.contains(n)) continue;
        auto it = delivered_sets.find(n);
        const bool has = it != delivered_sets.end() && it->second.contains(mid);
        if (!has) {
          std::ostringstream os;
          os << "agreement: surviving node " << n << " (group " << g
             << ") missed delivered message " << mid;
          violate(r, os.str());
        }
      }
    }
  }
}

}  // namespace fastcast
