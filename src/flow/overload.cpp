#include "fastcast/flow/overload.hpp"

namespace fastcast::flow {

void OverloadController::note(const Options& opt, double& ewma, Time& last,
                              Duration sample) {
  if (sample < 0) sample = 0;
  if (last < 0) {
    ewma = static_cast<double>(sample);
  } else {
    ewma = opt.ewma_alpha * static_cast<double>(sample) +
           (1.0 - opt.ewma_alpha) * ewma;
  }
}

void OverloadController::note_sojourn(Time now, Duration sojourn) {
  if (!opt_.enable) return;
  note(opt_, ewma_ns_, last_sojourn_, sojourn);
  last_sojourn_ = now;
  update(now);
}

void OverloadController::note_arrival_lag(Time now, Duration lag) {
  if (!opt_.enable) return;
  note(opt_, arrival_ewma_, last_arrival_, lag);
  last_arrival_ = now;
  update(now);
}

// Idle decay: once admission closes, a fully shed node stops proposing, so
// the sojourn stream goes silent and its estimate would pin above target
// forever. Halve a stream's estimate per sample-free trigger window — the
// queues that produced the old estimate are draining (or gone) while the
// stream sees no new work. Each stream decays on its own clock: arrivals
// from trickling clients keep sampling (fresh, small lags) even while the
// pipeline is silent, and must not suppress the pipeline's decay.
void OverloadController::decay_idle(Time now, double& ewma, Time& last) const {
  if (last < 0) return;
  while (now - last >= opt_.trigger_window && ewma > 1.0) {
    ewma *= 0.5;
    last += opt_.trigger_window;
  }
}

void OverloadController::update(Time now) {
  if (!opt_.enable) return;

  decay_idle(now, ewma_ns_, last_sojourn_);
  decay_idle(now, arrival_ewma_, last_arrival_);

  const auto target = static_cast<double>(opt_.target_delay);
  const bool above = ewma_ns_ + arrival_ewma_ > target;

  if (depth_ >= opt_.max_depth) {
    // Depth backstop: a burst deep enough to exhaust the pipeline budget is
    // shed immediately, latency estimate notwithstanding.
    shedding_ = true;
    if (first_above_ < 0) first_above_ = now;
    return;
  }

  if (!shedding_) {
    if (above) {
      if (first_above_ < 0) first_above_ = now;
      if (now - first_above_ >= opt_.trigger_window) shedding_ = true;
    } else {
      first_above_ = -1;
    }
    return;
  }

  // Shedding: reopen only after the estimate has fallen well below target
  // (hysteresis) and the backlog has visibly drained.
  if (ewma_ns_ + arrival_ewma_ <= target * 0.5 && depth_ < opt_.max_depth / 2) {
    shedding_ = false;
    first_above_ = -1;
  }
}

}  // namespace fastcast::flow
