#include "fastcast/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "fastcast/common/assert.hpp"

namespace fastcast {

void LatencyRecorder::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

Duration LatencyRecorder::percentile(double p) const {
  FC_ASSERT(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0;
  sort_if_needed();
  // Nearest-rank percentile: ceil(p/100 * N), 1-indexed.
  const auto n = static_cast<double>(samples_.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

Duration LatencyRecorder::min() const {
  if (samples_.empty()) return 0;
  sort_if_needed();
  return samples_.front();
}

Duration LatencyRecorder::max() const {
  if (samples_.empty()) return 0;
  sort_if_needed();
  return samples_.back();
}

double LatencyRecorder::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (Duration s : samples_) sum += static_cast<double>(s);
  return sum / static_cast<double>(samples_.size());
}

double LatencyRecorder::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (Duration s : samples_) {
    const double d = static_cast<double>(s) - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

MeanCi mean_ci95(const std::vector<double>& values) {
  MeanCi out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  if (values.size() < 2) return out;
  double acc = 0.0;
  for (double v : values) {
    const double d = v - out.mean;
    acc += d * d;
  }
  const double sd = std::sqrt(acc / static_cast<double>(values.size() - 1));
  // 1.96 · s/√n — the normal approximation is adequate for the slice counts
  // we summarise (n ≥ 10).
  out.ci95 = 1.96 * sd / std::sqrt(static_cast<double>(values.size()));
  return out;
}

ThroughputSummary summarize_throughput(const std::vector<std::uint64_t>& slice_counts,
                                       Duration slice_length) {
  ThroughputSummary out;
  if (slice_counts.empty() || slice_length <= 0) return out;
  std::vector<double> rates;
  rates.reserve(slice_counts.size());
  const double secs = to_seconds(slice_length);
  for (std::uint64_t c : slice_counts) {
    out.total += c;
    rates.push_back(static_cast<double>(c) / secs);
  }
  const MeanCi ci = mean_ci95(rates);
  out.mean_per_sec = ci.mean;
  out.ci95_per_sec = ci.ci95;
  return out;
}

std::string format_ms(Duration d) {
  char buf[64];
  const double ms = to_milliseconds(d);
  if (ms < 10.0) {
    std::snprintf(buf, sizeof buf, "%.3f", ms);
  } else if (ms < 100.0) {
    std::snprintf(buf, sizeof buf, "%.2f", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f", ms);
  }
  return buf;
}

}  // namespace fastcast
