#include "fastcast/common/codec.hpp"

namespace fastcast {

std::vector<std::byte> to_bytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return std::vector<std::byte>(p, p + s.size());
}

std::string to_string(std::span<const std::byte> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

}  // namespace fastcast
