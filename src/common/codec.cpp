#include "fastcast/common/codec.hpp"

namespace fastcast {

std::vector<std::byte> BufferPool::acquire() {
  if (pool_.empty()) return {};
  std::vector<std::byte> buf = std::move(pool_.back());
  pool_.pop_back();
  buf.clear();
  return buf;
}

void BufferPool::release(std::vector<std::byte>&& buf) {
  if (pool_.size() >= kMaxPooled || buf.capacity() == 0 ||
      buf.capacity() > kMaxRetainedBytes) {
    return;  // let it free; keeps idle memory bounded
  }
  pool_.push_back(std::move(buf));
}

std::vector<std::byte> to_bytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return std::vector<std::byte>(p, p + s.size());
}

std::string to_string(std::span<const std::byte> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

}  // namespace fastcast
