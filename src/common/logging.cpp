#include "fastcast/common/logging.hpp"

#include <chrono>
#include <cstdio>

namespace fastcast {

namespace log_detail {
LogLevel g_level = LogLevel::kWarn;
}

namespace {
LogTimeSource g_time_source = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

std::int64_t now_ns() {
  if (g_time_source != nullptr) return g_time_source();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void set_log_level(LogLevel level) { log_detail::g_level = level; }

LogLevel log_level() { return log_detail::g_level; }

void set_log_time_source(LogTimeSource source) { g_time_source = source; }

void log_write(LogLevel level, const char* file, int line, const char* fmt, ...) {
  // Strip directory components so lines stay short.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  const double t_ms = static_cast<double>(now_ns()) / 1e6;
  std::fprintf(stderr, "[%12.4fms %s %s:%d] ", t_ms, level_name(level), base, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace fastcast
