#include "fastcast/net/transport_backend.hpp"

/// io_uring TransportBackend, written against the raw kernel ABI
/// (<linux/io_uring.h> + syscall(2)) so the build needs no liburing. The
/// whole file degrades to a two-line stub when the kernel headers are
/// absent (FASTCAST_HAS_URING off): uring_available() is false and the
/// factory returns null, so every caller falls back to the poll backend.
///
/// Mechanics (mirrors what liburing does under the hood):
///   * io_uring_setup(2) creates the ring; the SQ/CQ rings and the SQE
///     array are mmap(2)ed into this process. IORING_FEAT_SINGLE_MMAP
///     (5.4+) lets both rings share one mapping.
///   * Receives are IORING_OP_RECV SQEs pointing straight at the caller's
///     buffer (the FrameParser arena); readiness watches are one-shot
///     IORING_OP_POLL_ADD SQEs re-armed lazily at the next wait.
///   * wait() is one io_uring_enter(2): it flushes every queued SQE and
///     reaps every available CQE in the same syscall. Timed waits use
///     IORING_ENTER_EXT_ARG (IORING_FEAT_EXT_ARG, 5.11+ — part of the
///     availability probe) so no timeout SQEs are needed.
///   * remove(fd) submits IORING_OP_ASYNC_CANCEL for the fd's in-flight
///     ops (pending ops hold a file reference, so closing the fd alone
///     would strand them) and synchronously reaps CQEs until those ops
///     have completed — the caller is allowed to free the armed receive
///     buffer the moment remove() returns. A per-registration generation
///     baked into every user_data drops stale completions for a recycled
///     fd number.

#if defined(FASTCAST_HAS_URING)

#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

namespace fastcast::net {

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags, const void* arg, std::size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

constexpr unsigned kRingEntries = 256;

/// user_data layout: [ gen:32 | kind:2 | fd:30 ]. fd numbers are small
/// non-negative ints; 30 bits is far beyond any fd table here.
enum class OpKind : std::uint64_t { kWatch = 1, kRecv = 2, kCancel = 3 };

std::uint64_t make_tag(int fd, OpKind kind, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(gen) << 32) |
         (static_cast<std::uint64_t>(kind) << 30) |
         static_cast<std::uint64_t>(fd);
}
int tag_fd(std::uint64_t tag) { return static_cast<int>(tag & 0x3fffffffu); }
OpKind tag_kind(std::uint64_t tag) {
  return static_cast<OpKind>((tag >> 30) & 0x3u);
}
std::uint32_t tag_gen(std::uint64_t tag) {
  return static_cast<std::uint32_t>(tag >> 32);
}

class UringBackend final : public TransportBackend {
 public:
  /// Two-phase init: construct, then init() — false means "fall back".
  bool init() {
    io_uring_params p{};
    ring_fd_ = sys_io_uring_setup(kRingEntries, &p);
    if (ring_fd_ < 0) return false;
    if ((p.features & IORING_FEAT_EXT_ARG) == 0) {
      ::close(ring_fd_);
      ring_fd_ = -1;
      return false;
    }
    single_mmap_ = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;

    sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(std::uint32_t);
    cq_ring_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    if (single_mmap_) {
      sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) return fail();
    cq_ring_ = single_mmap_
                   ? sq_ring_
                   : ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd_,
                            IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) return fail();
    sqes_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) return fail();

    auto* sq = static_cast<std::uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<std::atomic<std::uint32_t>*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<std::atomic<std::uint32_t>*>(sq + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<std::uint32_t*>(sq + p.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<std::uint32_t*>(sq + p.sq_off.array);
    sq_entries_ = p.sq_entries;

    auto* cq = static_cast<std::uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<std::atomic<std::uint32_t>*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<std::atomic<std::uint32_t>*>(cq + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<std::uint32_t*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
    return true;
  }

  ~UringBackend() override {
    drain_inflight();
    if (sqes_ != nullptr && sqes_ != MAP_FAILED) ::munmap(sqes_, sqes_bytes_);
    if (!single_mmap_ && cq_ring_ != nullptr && cq_ring_ != MAP_FAILED) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sq_ring_ != nullptr && sq_ring_ != MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_bytes_);
    }
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  const char* name() const override { return "uring"; }

  void watch_readable(int fd) override {
    Entry& e = entry_for(fd);
    e.watched = true;
    // The POLL_ADD SQE is pushed lazily at the top of the next wait() so a
    // watch+remove pair between waits costs no submissions.
  }

  void arm_recv(int fd, std::byte* buf, std::size_t len) override {
    Entry& e = entry_for(fd);
    if (e.watched) {
      // Arming supersedes the readiness watch (hello → data transition).
      e.watched = false;
      if (e.watch_inflight) push_cancel(make_tag(fd, OpKind::kWatch, e.gen));
    }
    if (e.recv_inflight) return;
    io_uring_sqe* sqe = get_sqe();
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_RECV;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(buf);
    sqe->len = static_cast<std::uint32_t>(len);
    sqe->user_data = make_tag(fd, OpKind::kRecv, e.gen);
    e.recv_inflight = true;
  }

  void remove(int fd) override {
    const auto it = entries_.find(fd);
    if (it == entries_.end()) return;
    Entry& e = it->second;
    // Pending ops pin the file; cancel them explicitly. The contract lets
    // the caller reclaim the armed receive buffer the moment remove()
    // returns, so the cancels must be submitted and reaped *synchronously*
    // here — a still-pending RECV can otherwise complete into freed memory
    // (kernel-side write, invisible to ASan). Completions for other fds
    // reaped along the way land in pending_ and surface at the next wait.
    if (e.recv_inflight || e.watch_inflight) {
      if (e.recv_inflight) push_cancel(make_tag(fd, OpKind::kRecv, e.gen));
      if (e.watch_inflight) push_cancel(make_tag(fd, OpKind::kWatch, e.gen));
      e.removing = true;  // drain_cq clears the flags but emits no events
      // Cancels complete in microseconds; the cap only guards against a
      // wedged kernel so remove() cannot hang.
      for (int spin = 0; (e.recv_inflight || e.watch_inflight) && spin < 1000;
           ++spin) {
        submit_pending();
        drain_cq(pending_);
        if (!e.recv_inflight && !e.watch_inflight) break;
        wait_for_cqe(/*timeout_ms=*/1);
      }
      if (e.recv_inflight || e.watch_inflight) {
        ::fprintf(stderr,
                  "[uring] remove(%d): in-flight ops failed to cancel\n", fd);
      }
    }
    entries_.erase(it);
    // Drop buffered events for this fd: the number can be recycled before
    // the next wait() flushes pending_.
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [fd](const Event& ev) { return ev.fd == fd; }),
                   pending_.end());
  }

  ssize_t send_gather(int fd, const struct iovec* iov, int iovcnt) override {
    msghdr mh{};
    mh.msg_iov = const_cast<struct iovec*>(iov);
    mh.msg_iovlen = static_cast<std::size_t>(iovcnt);
    return ::sendmsg(fd, &mh, MSG_NOSIGNAL);
  }

  std::size_t wait(int timeout_ms, std::vector<Event>& out) override {
    // Re-arm readiness watches whose one-shot poll fired (or were just
    // registered). Done here so each wait cycle batches every re-arm plus
    // every armed receive into the single enter below.
    for (auto& [fd, e] : entries_) {
      if (e.watched && !e.watch_inflight) {
        io_uring_sqe* sqe = get_sqe();
        std::memset(sqe, 0, sizeof(*sqe));
        sqe->opcode = IORING_OP_POLL_ADD;
        sqe->fd = fd;
        sqe->poll32_events = POLLIN;
        sqe->user_data = make_tag(fd, OpKind::kWatch, e.gen);
        e.watch_inflight = true;
      }
    }

    std::size_t emitted = take_pending(out);
    emitted += drain_cq(out);
    submit_pending();
    if (emitted > 0 || timeout_ms == 0) {
      // Events already pending (or a pure probe): no sleeping, just take
      // whatever else the submit flushed out.
      return emitted + drain_cq(out);
    }

    wait_for_cqe(timeout_ms);
    return emitted + drain_cq(out);
  }

 private:
  struct Entry {
    std::uint32_t gen = 0;
    bool watched = false;
    bool watch_inflight = false;
    bool recv_inflight = false;
    bool removing = false;  ///< remove() draining: reap but don't emit
  };

  bool fail() {
    // init() failure path; the destructor unmaps whatever succeeded.
    return false;
  }

  /// Synchronously cancels and reaps every in-flight op before the ring
  /// goes away. Without this, close(ring_fd_) tears the ring down on a
  /// deferred kernel worker while pending POLL_ADD/RECV ops still pin
  /// their files — so a listen socket can outlive the process for a few
  /// milliseconds and the next bind() of the same port sees EADDRINUSE
  /// (SO_REUSEADDR cannot override a socket that is still in LISTEN).
  /// Caught by back-to-back tcp_cluster runs; pinned by the
  /// RebindAfterDestroy conformance test.
  void drain_inflight() {
    if (ring_fd_ < 0) return;
    for (auto& [fd, e] : entries_) {
      if (e.recv_inflight) push_cancel(make_tag(fd, OpKind::kRecv, e.gen));
      if (e.watch_inflight) push_cancel(make_tag(fd, OpKind::kWatch, e.gen));
    }
    std::vector<Event> discard;
    // Every SQE yields exactly one CQE (no multishot ops here), so
    // inflight_ hitting zero means nothing pins a file any more. Bounded:
    // cancellations complete in microseconds; the cap only guards against
    // a wedged kernel so the destructor cannot hang.
    int spins = 0;
    for (int spin = 0; inflight_ > 0 && spin < 100; ++spin) {
      submit_pending();
      drain_cq(discard);
      if (inflight_ == 0) break;
      wait_for_cqe(/*timeout_ms=*/10);
      ++spins;
    }
    if (const char* dbg = ::getenv("FASTCAST_URING_DEBUG"); dbg != nullptr) {
      ::fprintf(stderr, "[uring drain] inflight=%u unsubmitted=%u spins=%d\n",
                inflight_, unsubmitted_, spins);
    }
  }

  Entry& entry_for(int fd) {
    const auto it = entries_.find(fd);
    if (it != entries_.end()) return it->second;
    Entry e;
    e.gen = next_gen_++;
    return entries_.emplace(fd, e).first->second;
  }

  io_uring_sqe* get_sqe() {
    std::uint32_t tail = sq_tail_->load(std::memory_order_relaxed);
    while (tail - sq_head_->load(std::memory_order_acquire) >= sq_entries_) {
      // SQ full: flush what we have so the kernel drains the ring.
      submit_pending();
      if (tail - sq_head_->load(std::memory_order_acquire) < sq_entries_) break;
      // Submit made no room (EBUSY/EAGAIN: CQ backpressure). Reap
      // completions into the pending buffer so the kernel can retire ops —
      // spinning on submit alone livelocks once in-flight ops exceed ring
      // capacity.
      drain_cq(pending_);
      if (tail - sq_head_->load(std::memory_order_acquire) < sq_entries_) break;
      wait_for_cqe(/*timeout_ms=*/1);
    }
    const std::uint32_t idx = tail & sq_mask_;
    sq_array_[idx] = idx;
    io_uring_sqe* sqe = &sqes_[idx];
    sq_tail_->store(tail + 1, std::memory_order_release);
    ++unsubmitted_;
    ++inflight_;  // every SQE produces exactly one CQE (reaped in drain_cq)
    return sqe;
  }

  void push_cancel(std::uint64_t target_tag) {
    io_uring_sqe* sqe = get_sqe();
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->fd = -1;
    sqe->addr = target_tag;
    sqe->user_data = make_tag(0, OpKind::kCancel, 0);
  }

  /// Flushes every queued SQE to the kernel (no waiting). Kept separate
  /// from the timed wait because io_uring_enter's -ETIME return is
  /// ambiguous about whether the submissions it carried were consumed.
  void submit_pending() {
    while (unsubmitted_ > 0) {
      const int n =
          sys_io_uring_enter(ring_fd_, unsubmitted_, 0, 0, nullptr, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        // EBUSY/EAGAIN: CQ backpressure — the caller drains completions
        // and the SQEs stay queued for the next flush.
        return;
      }
      unsubmitted_ -= std::min<unsigned>(unsubmitted_, static_cast<unsigned>(n));
    }
  }

  /// Sleeps for up to timeout_ms or until one CQE is available (EXT_ARG).
  void wait_for_cqe(int timeout_ms) {
    io_uring_getevents_arg ext{};
    __kernel_timespec ts{};
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1'000'000;
    ext.ts = reinterpret_cast<std::uint64_t>(&ts);
    for (;;) {
      const int n = sys_io_uring_enter(
          ring_fd_, 0, 1, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &ext,
          sizeof(ext));
      if (n < 0 && errno == EINTR) continue;
      return;  // success, -ETIME, or an error the caller can't act on
    }
  }

  /// Moves events reaped outside wait() (remove()'s synchronous drain, SQ
  /// backpressure in get_sqe) into the caller's event list.
  std::size_t take_pending(std::vector<Event>& out) {
    if (pending_.empty()) return 0;
    const std::size_t n = pending_.size();
    out.insert(out.end(), pending_.begin(), pending_.end());
    pending_.clear();
    return n;
  }

  std::size_t drain_cq(std::vector<Event>& out) {
    std::size_t emitted = 0;
    std::uint32_t head = cq_head_->load(std::memory_order_relaxed);
    const std::uint32_t tail = cq_tail_->load(std::memory_order_acquire);
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      ++head;
      if (inflight_ > 0) --inflight_;
      const std::uint64_t tag = cqe.user_data;
      const OpKind kind = tag_kind(tag);
      if (kind == OpKind::kCancel) continue;
      const auto it = entries_.find(tag_fd(tag));
      if (it == entries_.end() || it->second.gen != tag_gen(tag)) {
        continue;  // stale: fd was removed (and possibly recycled)
      }
      Entry& e = it->second;
      if (kind == OpKind::kRecv) {
        e.recv_inflight = false;
        if (e.removing || cqe.res == -ECANCELED) continue;
        out.push_back(Event{Event::Kind::kRecv, it->first,
                            cqe.res >= 0 ? static_cast<ssize_t>(cqe.res)
                                         : static_cast<ssize_t>(-1)});
        ++emitted;
      } else if (kind == OpKind::kWatch) {
        e.watch_inflight = false;  // one-shot; re-armed next wait
        if (e.removing || cqe.res < 0) continue;
        out.push_back(Event{Event::Kind::kReadable, it->first, 0});
        ++emitted;
      }
    }
    cq_head_->store(head, std::memory_order_release);
    return emitted;
  }

  int ring_fd_ = -1;
  bool single_mmap_ = false;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  std::size_t cq_ring_bytes_ = 0;
  std::size_t sqes_bytes_ = 0;

  std::atomic<std::uint32_t>* sq_head_ = nullptr;
  std::atomic<std::uint32_t>* sq_tail_ = nullptr;
  std::uint32_t sq_mask_ = 0;
  std::uint32_t* sq_array_ = nullptr;
  std::uint32_t sq_entries_ = 0;
  unsigned unsubmitted_ = 0;
  unsigned inflight_ = 0;  // SQEs submitted or queued whose CQE is unreaped

  std::atomic<std::uint32_t>* cq_head_ = nullptr;
  std::atomic<std::uint32_t>* cq_tail_ = nullptr;
  std::uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  std::unordered_map<int, Entry> entries_;
  std::uint32_t next_gen_ = 1;
  std::vector<Event> pending_;  ///< events reaped outside wait()
};

}  // namespace

bool uring_available() {
  static const bool available = [] {
    io_uring_params p{};
    const int fd = sys_io_uring_setup(4, &p);
    if (fd < 0) return false;  // ENOSYS / seccomp / disabled sysctl
    ::close(fd);
    return (p.features & IORING_FEAT_EXT_ARG) != 0;
  }();
  return available;
}

std::unique_ptr<TransportBackend> make_uring_backend() {
  if (!uring_available()) return nullptr;
  auto b = std::make_unique<UringBackend>();
  if (!b->init()) return nullptr;
  return b;
}

}  // namespace fastcast::net

#else  // !FASTCAST_HAS_URING

namespace fastcast::net {

bool uring_available() { return false; }

std::unique_ptr<TransportBackend> make_uring_backend() { return nullptr; }

}  // namespace fastcast::net

#endif
