#include "fastcast/net/sharded_transport.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cstdint>
#include <stdexcept>

#include "fastcast/common/logging.hpp"
#include "fastcast/net/cpu_affinity.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast::net {

ShardedTransport::ShardedTransport(NodeId self, AddressBook addresses,
                                   ShardedOptions options)
    : self_(self), addresses_(addresses), options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_.ring_capacity));
  }
}

ShardedTransport::~ShardedTransport() { stop(); }

const char* ShardedTransport::backend_name() const {
  return shards_.front()->transport
             ? shards_.front()->transport->backend_name()
             : to_string(resolve_backend(options_.backend));
}

void ShardedTransport::set_observability(obs::Observability* o) {
  obs_ = o;
  g_ring_hwm_ = o ? &o->metrics.gauge("net.shard_ring_hwm") : nullptr;
  for (auto& shard : shards_) {
    if (shard->transport) shard->transport->set_observability(o);
  }
}

std::uint64_t ShardedTransport::frames_received() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->received.load(std::memory_order_relaxed);
  }
  return total;
}

void ShardedTransport::start() {
  if (running_.exchange(true)) return;
  TransportOptions topt;
  topt.backend = options_.backend;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    shard.wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (shard.wake_fd < 0) throw std::runtime_error("eventfd() failed");
    shard.transport =
        std::make_unique<TcpTransport>(self_, addresses_, topt);
    if (obs_ != nullptr) shard.transport->set_observability(obs_);
    shard.transport->set_receive([this, &shard](NodeId from, const Message& msg) {
      // Shard thread → protocol thread. Backpressure, never drop — except
      // at shutdown: once running_ is false the protocol thread no longer
      // drains rx, so spinning on a full ring would wedge this shard
      // thread and deadlock stop()'s join.
      RxItem item{from, msg};
      while (!shard.rx.push(std::move(item))) {
        if (!running_.load(std::memory_order_acquire)) return;
        std::this_thread::yield();
      }
      shard.received.fetch_add(1, std::memory_order_relaxed);
      if (g_ring_hwm_ != nullptr) {
        g_ring_hwm_->record_max(
            static_cast<std::int64_t>(shard.rx.size_approx()));
      }
    });
  }
  // Shard 0 is the acceptor: every inbound connection lands here, and its
  // hello routes the fd onward to the owning shard.
  shards_[0]->transport->listen();
  shards_[0]->transport->set_hello_router([this](int fd, NodeId peer) {
    const int target = shard_of(peer);
    if (target == 0) return false;  // shard 0 keeps its own peers
    Shard& dst = *shards_[static_cast<std::size_t>(target)];
    Adopted handoff{fd, peer};
    while (!dst.adopt.push(std::move(handoff))) {
      if (!running_.load(std::memory_order_acquire)) {
        // The target shard may already have done its final drain; parking
        // the fd in its ring would strand the socket. We own it — close.
        ::close(fd);
        return true;
      }
      std::this_thread::yield();
    }
    wake(dst);
    return true;
  });
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->thread =
        std::thread([this, i] { run_shard(static_cast<int>(i)); });
  }
}

void ShardedTransport::stop() {
  if (!running_.exchange(false)) return;
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      wake(*shard);
      shard->thread.join();
    }
  }
  for (auto& shard : shards_) {
    if (shard->wake_fd >= 0) {
      ::close(shard->wake_fd);
      shard->wake_fd = -1;
    }
    shard->transport.reset();
  }
}

void ShardedTransport::wake(Shard& shard) {
  // Skip the syscall when the shard is provably awake: it re-drains its
  // rings after raising `sleeping`, so a push that observes
  // sleeping == false is picked up without a wake, and one that observes
  // true fires the eventfd. Worst case (flag flips mid-push) costs one
  // poll timeout of latency, never a lost item.
  if (!shard.sleeping.load(std::memory_order_acquire)) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(shard.wake_fd, &one, sizeof one);
}

void ShardedTransport::send(NodeId to, const Message& msg) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_of(to))];
  TxItem item{to, msg};
  while (!shard.tx.push(std::move(item))) {
    // A stopped shard no longer drains tx; drop rather than spin forever.
    if (!running_.load(std::memory_order_acquire)) return;
    std::this_thread::yield();
  }
  if (g_ring_hwm_ != nullptr) {
    g_ring_hwm_->record_max(static_cast<std::int64_t>(shard.tx.size_approx()));
  }
  wake(shard);
}

std::size_t ShardedTransport::poll_deliveries(const ReceiveFn& fn) {
  std::size_t delivered = 0;
  RxItem item;
  for (auto& shard : shards_) {
    while (shard->rx.pop(item)) {
      ++delivered;
      fn(item.from, item.msg);
    }
  }
  return delivered;
}

void ShardedTransport::drain_control(Shard& shard) {
  Adopted handoff;
  while (shard.adopt.pop(handoff)) {
    shard.transport->adopt_inbound(handoff.fd, handoff.peer);
  }
  TxItem item;
  while (shard.tx.pop(item)) {
    shard.transport->send(item.to, item.msg);
  }
}

void ShardedTransport::run_shard(int index) {
  Shard& shard = *shards_[static_cast<std::size_t>(index)];
  if (options_.pin_threads && !pin_current_thread(index)) {
    FC_WARN("node %u: shard %d could not pin to a CPU (running unpinned)",
            self_, index);
  }
  // The eventfd is level-ish: drain the counter whenever it fires so the
  // next wake can register again.
  shard.transport->watch_fd(shard.wake_fd, [&shard] {
    std::uint64_t count = 0;
    [[maybe_unused]] const ssize_t n =
        ::read(shard.wake_fd, &count, sizeof count);
  });

  while (running_.load(std::memory_order_acquire)) {
    drain_control(shard);
    // Announce intent to sleep, then re-drain: a producer that pushed
    // before seeing sleeping==true is caught here; one that pushed after
    // will fire the eventfd and cut the poll short.
    shard.sleeping.store(true, std::memory_order_release);
    drain_control(shard);
    shard.transport->poll_once(options_.poll_timeout_ms);
    shard.sleeping.store(false, std::memory_order_release);
  }

  shard.transport->unwatch_fd(shard.wake_fd);
  drain_control(shard);  // flush stragglers queued during shutdown
  shard.transport->flush();
  shard.transport->close_all();
}

}  // namespace fastcast::net
