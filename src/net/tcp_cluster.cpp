#include "fastcast/net/tcp_cluster.hpp"

#include <chrono>

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/net/timer_heap.hpp"
#include "fastcast/obs/observability.hpp"
#include "fastcast/storage/storage.hpp"

namespace fastcast::net {

namespace {
Time steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

/// Context over a TcpTransport plus a local timer heap; single-threaded.
class TcpCluster::NodeRuntime final : public Context {
 public:
  NodeRuntime(TcpCluster* cluster, NodeId self, const AddressBook& addresses,
              std::uint64_t seed)
      : cluster_(cluster),
        self_(self),
        transport_(self, addresses,
                   TransportOptions{cluster->config_.backend}),
        rng_(seed) {
    transport_.set_receive([this](NodeId from, const Message& msg) {
      if (c_received_) c_received_->inc();
      process_->on_message(*this, from, msg);
    });
    if (obs::Observability* o = cluster_->config_.observability) {
      set_observability(o);
      transport_.set_observability(o);
      c_sent_ = &o->metrics.counter("net.unicasts");
      c_received_ = &o->metrics.counter("net.received");
    }
    if (storage::StorageManager* sm = cluster_->config_.storage) {
      set_storage(sm->node(self_));
    }
  }

  void set_process(std::shared_ptr<Process> p) { process_ = std::move(p); }
  bool has_process() const { return process_ != nullptr; }
  void listen() { transport_.listen(); }

  // Context ------------------------------------------------------------------
  NodeId self() const override { return self_; }
  Time now() const override { return steady_now_ns() - epoch_; }
  Rng& rng() override { return rng_; }
  const Membership& membership() const override {
    return cluster_->config_.membership;
  }
  void send(NodeId to, const Message& msg) override {
    if (c_sent_) c_sent_->inc();
    transport_.send(to, msg);
  }

  TimerId set_timer(Duration delay, std::function<void()> cb) override {
    return timers_.schedule(now() + delay, std::move(cb));
  }
  void cancel_timer(TimerId id) override { timers_.cancel(id); }

  // Node thread main loop ----------------------------------------------------
  void run(std::atomic<bool>& running, int poll_interval_ms, Time epoch,
           bool recovering) {
    epoch_ = epoch;
    active_.store(true, std::memory_order_relaxed);
    if (recovering) {
      // Crash semantics: timers armed before the kill are gone; the
      // process re-arms what it needs from on_recover.
      timers_.clear();
      process_->on_recover(*this);
    } else {
      process_->on_start(*this);
    }
    while (running.load(std::memory_order_relaxed) &&
           active_.load(std::memory_order_relaxed)) {
      int timeout = poll_interval_ms;
      Time due = 0;
      if (timers_.next_due(due)) {
        const Duration until = due - now();
        if (until <= 0) {
          timeout = 0;
        } else {
          timeout = static_cast<int>(
              std::min<Duration>(until / kMillisecond + 1, poll_interval_ms));
        }
      }
      transport_.poll_once(timeout);
      timers_.fire_due(now());
    }
    transport_.close_all();
  }

  void deactivate() { active_.store(false, std::memory_order_relaxed); }
  Time epoch() const { return epoch_; }

 private:
  TcpCluster* cluster_;
  NodeId self_;
  TcpTransport transport_;
  Rng rng_;
  obs::Counter* c_sent_ = nullptr;
  obs::Counter* c_received_ = nullptr;
  std::shared_ptr<Process> process_;
  Time epoch_ = 0;
  std::atomic<bool> active_{false};
  TimerHeap timers_;
};

TcpCluster::TcpCluster(Config config) : config_(std::move(config)) {
  Rng seeder(0x7cf0c1);
  nodes_.resize(config_.membership.node_count());
  AddressBook addresses;
  addresses.base_port = config_.base_port;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i] = std::make_unique<NodeRuntime>(this, static_cast<NodeId>(i),
                                              addresses, seeder.next());
  }
}

TcpCluster::~TcpCluster() { stop(); }

void TcpCluster::add_process(NodeId node, std::shared_ptr<Process> process) {
  FC_ASSERT(node < nodes_.size());
  nodes_[node]->set_process(std::move(process));
}

void TcpCluster::start() {
  for (auto& n : nodes_) {
    FC_ASSERT_MSG(n->has_process(), "every node needs a process");
    n->listen();
  }
  running_.store(true);
  const Time epoch = steady_now_ns();
  threads_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    threads_[i] = std::thread([this, node = nodes_[i].get(), epoch] {
      node->run(running_, config_.poll_interval_ms, epoch, /*recovering=*/false);
    });
  }
}

void TcpCluster::stop() {
  if (!running_.exchange(false)) return;
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void TcpCluster::stop_node(NodeId node) {
  FC_ASSERT(node < nodes_.size());
  FC_ASSERT_MSG(running_.load(), "cluster not running");
  nodes_[node]->deactivate();
  if (threads_[node].joinable()) threads_[node].join();
  if (config_.storage) {
    // Process death: gated externalizations whose records never became
    // durable are gone for good — replay after restart must not see them.
    config_.storage->node(node)->drop_pending();
  }
  if (config_.observability) {
    config_.observability->metrics.counter("fault.crashes").inc();
  }
}

void TcpCluster::restart_node(NodeId node) { restart_node(node, nullptr); }

void TcpCluster::restart_node(NodeId node, std::shared_ptr<Process> replacement) {
  FC_ASSERT(node < nodes_.size());
  FC_ASSERT_MSG(running_.load(), "cluster not running");
  FC_ASSERT_MSG(!threads_[node].joinable(), "node still running");
  NodeRuntime* n = nodes_[node].get();
  if (replacement != nullptr) n->set_process(std::move(replacement));
  n->listen();  // SO_REUSEADDR: rebinding the same port succeeds promptly
  const Time epoch = n->epoch();
  threads_[node] = std::thread([this, n, epoch] {
    n->run(running_, config_.poll_interval_ms, epoch, /*recovering=*/true);
  });
  if (config_.observability) {
    config_.observability->metrics.counter("fault.recoveries").inc();
  }
}

}  // namespace fastcast::net
