#include "fastcast/net/tcp_cluster.hpp"

#include <chrono>
#include <map>
#include <queue>

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast::net {

namespace {
Time steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

/// Context over a TcpTransport plus a local timer heap; single-threaded.
class TcpCluster::NodeRuntime final : public Context {
 public:
  NodeRuntime(TcpCluster* cluster, NodeId self, const AddressBook& addresses,
              std::uint64_t seed)
      : cluster_(cluster), self_(self), transport_(self, addresses), rng_(seed) {
    transport_.set_receive([this](NodeId from, const Message& msg) {
      if (c_received_) c_received_->inc();
      process_->on_message(*this, from, msg);
    });
    if (obs::Observability* o = cluster_->config_.observability) {
      set_observability(o);
      c_sent_ = &o->metrics.counter("net.unicasts");
      c_received_ = &o->metrics.counter("net.received");
    }
  }

  void set_process(std::shared_ptr<Process> p) { process_ = std::move(p); }
  bool has_process() const { return process_ != nullptr; }
  void listen() { transport_.listen(); }

  // Context ------------------------------------------------------------------
  NodeId self() const override { return self_; }
  Time now() const override { return steady_now_ns() - epoch_; }
  Rng& rng() override { return rng_; }
  const Membership& membership() const override {
    return cluster_->config_.membership;
  }
  void send(NodeId to, const Message& msg) override {
    if (c_sent_) c_sent_->inc();
    transport_.send(to, msg);
  }

  TimerId set_timer(Duration delay, std::function<void()> cb) override {
    const TimerId id = next_timer_id_++;
    timer_cbs_.emplace(id, std::move(cb));
    timer_heap_.push({now() + delay, id});
    return id;
  }
  void cancel_timer(TimerId id) override { timer_cbs_.erase(id); }

  // Node thread main loop ----------------------------------------------------
  void run(std::atomic<bool>& running, int poll_interval_ms, Time epoch) {
    epoch_ = epoch;
    process_->on_start(*this);
    while (running.load(std::memory_order_relaxed)) {
      int timeout = poll_interval_ms;
      if (!timer_heap_.empty()) {
        const Duration until = timer_heap_.top().at - now();
        if (until <= 0) {
          timeout = 0;
        } else {
          timeout = static_cast<int>(
              std::min<Duration>(until / kMillisecond + 1, poll_interval_ms));
        }
      }
      transport_.poll_once(timeout);
      fire_due_timers();
    }
    transport_.close_all();
  }

 private:
  struct TimerEntry {
    Time at;
    TimerId id;
    bool operator>(const TimerEntry& o) const {
      return at != o.at ? at > o.at : id > o.id;
    }
  };

  void fire_due_timers() {
    while (!timer_heap_.empty() && timer_heap_.top().at <= now()) {
      const TimerEntry e = timer_heap_.top();
      timer_heap_.pop();
      auto it = timer_cbs_.find(e.id);
      if (it == timer_cbs_.end()) continue;  // cancelled
      auto cb = std::move(it->second);
      timer_cbs_.erase(it);
      cb();
    }
  }

  TcpCluster* cluster_;
  NodeId self_;
  TcpTransport transport_;
  Rng rng_;
  obs::Counter* c_sent_ = nullptr;
  obs::Counter* c_received_ = nullptr;
  std::shared_ptr<Process> process_;
  Time epoch_ = 0;
  TimerId next_timer_id_ = 1;
  std::map<TimerId, std::function<void()>> timer_cbs_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<>> timer_heap_;
};

TcpCluster::TcpCluster(Config config) : config_(std::move(config)) {
  Rng seeder(0x7cf0c1);
  nodes_.resize(config_.membership.node_count());
  AddressBook addresses;
  addresses.base_port = config_.base_port;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i] = std::make_unique<NodeRuntime>(this, static_cast<NodeId>(i),
                                              addresses, seeder.next());
  }
}

TcpCluster::~TcpCluster() { stop(); }

void TcpCluster::add_process(NodeId node, std::shared_ptr<Process> process) {
  FC_ASSERT(node < nodes_.size());
  nodes_[node]->set_process(std::move(process));
}

void TcpCluster::start() {
  for (auto& n : nodes_) {
    FC_ASSERT_MSG(n->has_process(), "every node needs a process");
    n->listen();
  }
  running_.store(true);
  const Time epoch = steady_now_ns();
  threads_.reserve(nodes_.size());
  for (auto& n : nodes_) {
    threads_.emplace_back([this, node = n.get(), epoch] {
      node->run(running_, config_.poll_interval_ms, epoch);
    });
  }
}

void TcpCluster::stop() {
  if (!running_.exchange(false)) return;
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace fastcast::net
