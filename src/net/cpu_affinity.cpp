#include "fastcast/net/cpu_affinity.hpp"

#include <pthread.h>
#include <sched.h>

#include <vector>

namespace fastcast::net {

namespace {

/// CPUs the process is allowed on, in ascending order. Empty when the
/// affinity syscall itself fails (treat as "pinning unsupported").
std::vector<int> allowed_cpus() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (::sched_getaffinity(0, sizeof set, &set) != 0) return {};
  std::vector<int> cpus;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &set)) cpus.push_back(cpu);
  }
  return cpus;
}

}  // namespace

int online_cpu_count() {
  const auto cpus = allowed_cpus();
  return cpus.empty() ? 1 : static_cast<int>(cpus.size());
}

bool pin_current_thread(int index) {
  const auto cpus = allowed_cpus();
  if (cpus.empty() || index < 0) return false;
  const int cpu = cpus[static_cast<std::size_t>(index) % cpus.size()];
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return ::pthread_setaffinity_np(::pthread_self(), sizeof set, &set) == 0;
}

}  // namespace fastcast::net
