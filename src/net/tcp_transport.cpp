#include "fastcast/net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "fastcast/common/logging.hpp"

namespace fastcast::net {

namespace {

/// Writes the whole buffer, retrying on partial writes/EINTR.
bool write_all(int fd, const std::byte* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

TcpTransport::TcpTransport(NodeId self, AddressBook addresses)
    : self_(self), addresses_(addresses) {}

TcpTransport::~TcpTransport() { close_all(); }

void TcpTransport::listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(addresses_.port_of(self_));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw std::runtime_error("bind() failed for node " + std::to_string(self_) +
                             " port " + std::to_string(addresses_.port_of(self_)));
  }
  if (::listen(listen_fd_, 64) != 0) throw std::runtime_error("listen() failed");
}

int TcpTransport::connect_to(NodeId to) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(addresses_.port_of(to));
  ::inet_pton(AF_INET, addresses_.host.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  // Hello: identify ourselves so the peer can attribute inbound frames.
  const std::uint32_t id = self_;
  if (!write_all(fd, reinterpret_cast<const std::byte*>(&id), sizeof id)) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void TcpTransport::send(NodeId to, const Message& msg) {
  auto it = outbound_.find(to);
  if (it == outbound_.end()) {
    const int fd = connect_to(to);
    if (fd < 0) {
      FC_WARN("node %u: connect to %u failed: %s", self_, to, std::strerror(errno));
      return;
    }
    it = outbound_.emplace(to, fd).first;
  }
  const std::vector<std::byte> frame = frame_message(msg);
  if (!write_all(it->second, frame.data(), frame.size())) {
    FC_WARN("node %u: send to %u failed; dropping connection", self_, to);
    ::close(it->second);
    outbound_.erase(it);
  }
}

void TcpTransport::drop(int fd) {
  ::close(fd);
  inbound_.erase(fd);
}

void TcpTransport::handle_readable(Peer& peer) {
  std::byte buf[64 * 1024];
  const ssize_t n = ::recv(peer.fd, buf, sizeof buf, 0);
  if (n <= 0) {
    drop(peer.fd);
    return;
  }
  std::size_t off = 0;
  if (peer.id == kInvalidNode) {
    // First bytes of an inbound connection carry the peer's node id.
    if (static_cast<std::size_t>(n) < sizeof(std::uint32_t)) {
      drop(peer.fd);  // degenerate fragmentation; peers resend on reconnect
      return;
    }
    std::uint32_t id = 0;
    std::memcpy(&id, buf, sizeof id);
    peer.id = id;
    off = sizeof id;
  }
  peer.parser.feed(buf + off, static_cast<std::size_t>(n) - off);
  while (auto msg = peer.parser.next()) {
    if (receive_) receive_(peer.id, *msg);
  }
  if (peer.parser.corrupted()) {
    FC_ERROR("node %u: corrupted stream from %u", self_, peer.id);
    drop(peer.fd);
  }
}

std::size_t TcpTransport::poll_once(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  for (const auto& [fd, peer] : inbound_) fds.push_back(pollfd{fd, POLLIN, 0});

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return 0;

  std::size_t dispatched = 0;
  if ((fds[0].revents & POLLIN) != 0) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      Peer peer;
      peer.fd = fd;
      inbound_.emplace(fd, std::move(peer));
    }
  }
  for (std::size_t i = 1; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    auto it = inbound_.find(fds[i].fd);
    if (it == inbound_.end()) continue;  // dropped earlier this round
    const std::size_t before = dispatched;
    // Count dispatches via a wrapper to keep the callback signature simple.
    ReceiveFn original = receive_;
    receive_ = [&](NodeId from, const Message& msg) {
      ++dispatched;
      if (original) original(from, msg);
    };
    handle_readable(it->second);
    receive_ = std::move(original);
    (void)before;
  }
  return dispatched;
}

void TcpTransport::close_all() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [node, fd] : outbound_) ::close(fd);
  outbound_.clear();
  for (auto& [fd, peer] : inbound_) ::close(fd);
  inbound_.clear();
}

}  // namespace fastcast::net
