#include "fastcast/net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast::net {

namespace {

/// Queue size at which send() flushes immediately instead of waiting for
/// the next poll_once(); bounds per-peer queued memory under bursts.
constexpr std::size_t kFlushThresholdBytes = 256 * 1024;

/// Gather-write width: frames coalesced into one sendmsg call. Linux's
/// UIO_MAXIOV is 1024; 64 already amortizes the syscall to noise.
constexpr int kMaxIov = 64;

/// recv() chunk reserved in the parser arena per readable event.
constexpr std::size_t kReadChunkBytes = 64 * 1024;

/// Writes the whole buffer, retrying on partial writes/EINTR.
bool write_all(int fd, const std::byte* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

TcpTransport::TcpTransport(NodeId self, AddressBook addresses)
    : self_(self), addresses_(addresses), rng_(0xbacc0ffULL + self) {}

void TcpTransport::set_observability(obs::Observability* o) {
  c_reconnects_ = o ? &o->metrics.counter("net.reconnects") : nullptr;
  c_connect_failures_ = o ? &o->metrics.counter("net.connect_failures") : nullptr;
  c_disconnects_ = o ? &o->metrics.counter("net.disconnects") : nullptr;
  c_tx_dropped_ = o ? &o->metrics.counter("net.tx_frames_dropped") : nullptr;
}

TcpTransport::~TcpTransport() { close_all(); }

void TcpTransport::listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(addresses_.port_of(self_));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    throw std::runtime_error("bind() failed for node " + std::to_string(self_) +
                             " port " + std::to_string(addresses_.port_of(self_)));
  }
  if (::listen(listen_fd_, 64) != 0) throw std::runtime_error("listen() failed");
  pollfds_dirty_ = true;
}

int TcpTransport::connect_to(NodeId to) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(addresses_.port_of(to));
  ::inet_pton(AF_INET, addresses_.host.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  // Hello: identify ourselves so the peer can attribute inbound frames.
  const std::uint32_t id = self_;
  if (!write_all(fd, reinterpret_cast<const std::byte*>(&id), sizeof id)) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::chrono::milliseconds TcpTransport::backoff_for(int attempts) {
  const int shift = std::min(attempts > 0 ? attempts - 1 : 0, 20);
  double ms = static_cast<double>(retry_.base_backoff_ms) *
              static_cast<double>(1u << shift);
  ms = std::min(ms, static_cast<double>(retry_.max_backoff_ms));
  if (retry_.jitter > 0) {
    ms *= 1.0 + retry_.jitter * (2.0 * rng_.uniform_double() - 1.0);
  }
  return std::chrono::milliseconds(std::max<std::int64_t>(
      1, static_cast<std::int64_t>(ms)));
}

bool TcpTransport::try_connect(NodeId to, Outbound& ob) {
  if (ob.connected) return true;
  const auto now = std::chrono::steady_clock::now();
  if (now < ob.next_attempt) return false;
  const int fd = connect_to(to);
  if (fd < 0) {
    ++ob.attempts;
    ++stats_.connect_failures;
    if (c_connect_failures_) c_connect_failures_->inc();
    ob.next_attempt = now + backoff_for(ob.attempts);
    if (ob.attempts == 1) {
      FC_WARN("node %u: connect to %u failed: %s (retrying with backoff)",
              self_, to, std::strerror(errno));
    }
    if (retry_.max_attempts > 0 && ob.attempts >= retry_.max_attempts) {
      // Retry budget exhausted: shed the queue so memory stays bounded, but
      // keep probing at max backoff so a recovered peer re-establishes.
      shed_queue(ob);
    }
    return false;
  }
  ob.fd = fd;
  ob.connected = true;
  if (ob.attempts > 0 || stats_.disconnects > 0) {
    ++stats_.reconnects;
    if (c_reconnects_) c_reconnects_->inc();
  }
  ob.attempts = 0;
  return true;
}

void TcpTransport::disconnect(NodeId to, Outbound& ob) {
  FC_WARN("node %u: connection to %u lost; queueing for reconnect", self_, to);
  if (ob.fd >= 0) ::close(ob.fd);
  ob.fd = -1;
  ob.connected = false;
  // The partially-written head frame must be resent in full on the next
  // connection (the peer's parser starts fresh), so re-account its prefix.
  ob.queued_bytes += ob.head_offset;
  ob.head_offset = 0;
  ++stats_.disconnects;
  if (c_disconnects_) c_disconnects_->inc();
  ob.next_attempt = std::chrono::steady_clock::now() + backoff_for(1);
  ob.attempts = 1;
}

void TcpTransport::shed_queue(Outbound& ob) {
  if (ob.frames.empty()) return;
  stats_.tx_frames_dropped += ob.frames.size();
  if (c_tx_dropped_) c_tx_dropped_->inc(ob.frames.size());
  for (auto& frame : ob.frames) pool_.release(std::move(frame));
  ob.frames.clear();
  ob.queued_bytes = 0;
  ob.head_offset = 0;
}

void TcpTransport::send(NodeId to, const Message& msg) {
  Outbound& ob = outbound_[to];
  if (!ob.connected && ob.queued_bytes >= retry_.max_queued_bytes) {
    // Unreachable peer with a full queue: shed the newest frame so memory
    // stays bounded while the backoff loop keeps probing.
    ++stats_.tx_frames_dropped;
    if (c_tx_dropped_) c_tx_dropped_->inc();
    return;
  }
  std::vector<std::byte> frame = pool_.acquire();
  frame_message_into(msg, frame);
  ob.queued_bytes += frame.size();
  ob.frames.push_back(std::move(frame));
  if (!try_connect(to, ob)) return;  // queued; backoff flush will deliver
  if (ob.queued_bytes >= kFlushThresholdBytes && !write_pending(ob)) {
    disconnect(to, ob);
  }
}

void TcpTransport::flush() {
  for (auto& [to, ob] : outbound_) {
    if (ob.frames.empty()) continue;
    if (!try_connect(to, ob)) continue;
    if (!write_pending(ob)) disconnect(to, ob);
  }
}

std::size_t TcpTransport::pending_bytes() const {
  std::size_t total = 0;
  for (const auto& [node, ob] : outbound_) total += ob.queued_bytes;
  return total;
}

bool TcpTransport::write_pending(Outbound& ob) {
  while (!ob.frames.empty()) {
    iovec iov[kMaxIov];
    int iovcnt = 0;
    std::size_t offset = ob.head_offset;
    for (const auto& frame : ob.frames) {
      if (iovcnt == kMaxIov) break;
      iov[iovcnt].iov_base =
          const_cast<std::byte*>(frame.data() + offset);
      iov[iovcnt].iov_len = frame.size() - offset;
      ++iovcnt;
      offset = 0;
    }
    // sendmsg == writev with MSG_NOSIGNAL (plain writev raises SIGPIPE on
    // a dead peer): the whole queue leaves in one syscall per kMaxIov.
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(ob.fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    advance_written(ob, static_cast<std::size_t>(n));
  }
  return true;
}

void TcpTransport::advance_written(Outbound& ob, std::size_t n) {
  ob.queued_bytes -= n;
  while (n > 0) {
    std::vector<std::byte>& head = ob.frames.front();
    const std::size_t left = head.size() - ob.head_offset;
    if (n < left) {
      ob.head_offset += n;
      return;
    }
    n -= left;
    ob.head_offset = 0;
    pool_.release(std::move(head));
    ob.frames.pop_front();
  }
}

void TcpTransport::drop(int fd) {
  ::close(fd);
  inbound_.erase(fd);
  pollfds_dirty_ = true;
}

std::size_t TcpTransport::handle_readable(Peer& peer) {
  if (peer.id == kInvalidNode) {
    // First bytes of an inbound connection carry the peer's node id; keep
    // reading until the 4-byte hello is complete (it may fragment).
    const ssize_t n = ::recv(peer.fd, peer.hello + peer.hello_got,
                             sizeof peer.hello - peer.hello_got, 0);
    if (n <= 0) {
      drop(peer.fd);
      return 0;
    }
    peer.hello_got += static_cast<std::size_t>(n);
    if (peer.hello_got == sizeof peer.hello) {
      std::uint32_t id = 0;
      std::memcpy(&id, peer.hello, sizeof id);
      peer.id = id;
    }
    return 0;
  }

  const std::span<std::byte> dst = peer.parser.recv_buffer(kReadChunkBytes);
  const ssize_t n = ::recv(peer.fd, dst.data(), dst.size(), 0);
  if (n <= 0) {
    drop(peer.fd);
    return 0;
  }
  peer.parser.commit(static_cast<std::size_t>(n));
  std::size_t dispatched = 0;
  while (auto msg = peer.parser.next()) {
    ++dispatched;
    if (receive_) receive_(peer.id, *msg);
  }
  if (peer.parser.corrupted()) {
    FC_ERROR("node %u: corrupted stream from %u", self_, peer.id);
    drop(peer.fd);
  }
  return dispatched;
}

void TcpTransport::rebuild_pollfds() {
  pollfds_.clear();
  pollfds_.push_back(pollfd{listen_fd_, POLLIN, 0});
  for (const auto& [fd, peer] : inbound_) {
    pollfds_.push_back(pollfd{fd, POLLIN, 0});
  }
  pollfds_dirty_ = false;
}

std::size_t TcpTransport::poll_once(int timeout_ms) {
  flush();
  if (pollfds_dirty_) rebuild_pollfds();
  for (pollfd& p : pollfds_) p.revents = 0;

  const int ready = ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
  if (ready <= 0) return 0;

  std::size_t dispatched = 0;
  if ((pollfds_[0].revents & POLLIN) != 0) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      Peer peer;
      peer.fd = fd;
      inbound_.emplace(fd, std::move(peer));
      pollfds_dirty_ = true;
    }
  }
  for (std::size_t i = 1; i < pollfds_.size(); ++i) {
    if ((pollfds_[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    auto it = inbound_.find(pollfds_[i].fd);
    if (it == inbound_.end()) continue;  // dropped earlier this round
    dispatched += handle_readable(it->second);
  }
  return dispatched;
}

void TcpTransport::close_all() {
  flush();  // best-effort: don't strand queued frames on shutdown
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [node, ob] : outbound_) {
    if (ob.fd >= 0) ::close(ob.fd);
  }
  outbound_.clear();
  for (auto& [fd, peer] : inbound_) ::close(fd);
  inbound_.clear();
  pollfds_.clear();
  pollfds_dirty_ = true;
}

}  // namespace fastcast::net
