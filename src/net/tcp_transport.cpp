#include "fastcast/net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast::net {

namespace {

/// Queue size at which send() flushes immediately instead of waiting for
/// the next poll_once(); bounds per-peer queued memory under bursts.
constexpr std::size_t kFlushThresholdBytes = 256 * 1024;

/// Gather-write width: frames coalesced into one sendmsg call. Linux's
/// UIO_MAXIOV is 1024; 64 already amortizes the syscall to noise.
constexpr int kMaxIov = 64;

/// recv chunk reserved in the parser arena per armed receive.
constexpr std::size_t kReadChunkBytes = 64 * 1024;

/// Writes the whole buffer, retrying on partial writes/EINTR.
bool write_all(int fd, const std::byte* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

TcpTransport::TcpTransport(NodeId self, AddressBook addresses,
                           TransportOptions options)
    : self_(self),
      addresses_(addresses),
      options_(options),
      backend_(make_backend(options.backend)),
      rng_(0xbacc0ffULL + self) {}

void TcpTransport::set_observability(obs::Observability* o) {
  c_reconnects_ = o ? &o->metrics.counter("net.reconnects") : nullptr;
  c_connect_failures_ = o ? &o->metrics.counter("net.connect_failures") : nullptr;
  c_disconnects_ = o ? &o->metrics.counter("net.disconnects") : nullptr;
  c_tx_dropped_ = o ? &o->metrics.counter("net.tx_frames_dropped") : nullptr;
  c_listen_retries_ = o ? &o->metrics.counter("net.listen_retries") : nullptr;
  g_tx_queued_ = o ? &o->metrics.gauge("net.tx_queued_bytes") : nullptr;
  g_tx_queued_hwm_ = o ? &o->metrics.gauge("net.tx_queued_bytes_hwm") : nullptr;
  if (g_tx_queued_ != nullptr) {
    g_tx_queued_->set(static_cast<std::int64_t>(total_queued_));
    g_tx_queued_hwm_->record_max(static_cast<std::int64_t>(total_queued_));
  }
}

void TcpTransport::note_queued_delta(std::ptrdiff_t delta) {
  total_queued_ = static_cast<std::size_t>(
      static_cast<std::ptrdiff_t>(total_queued_) + delta);
  if (g_tx_queued_ != nullptr) {
    g_tx_queued_->set(static_cast<std::int64_t>(total_queued_));
    g_tx_queued_hwm_->record_max(static_cast<std::int64_t>(total_queued_));
  }
}

TcpTransport::~TcpTransport() { close_all(); }

const char* TcpTransport::backend_name() const { return backend_->name(); }

void TcpTransport::listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(addresses_.port_of(self_));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // Bind with a bounded EADDRINUSE retry, scoped to the one case that
  // needs it. SO_REUSEADDR covers TIME_WAIT, but io_uring's deferred
  // ring-exit work drops a just-closed ring's last file references ~5ms
  // after close(ring) — userspace cannot flush it synchronously, so
  // back-to-back restarts on a fixed port need a grace window (observed:
  // repeated tcp_cluster runs on the uring backend). On poll there is no
  // such deferral: retrying there would only turn a genuine port conflict
  // (another live process owns the port) into a 500ms hang before the
  // same error, so the auto default fails fast. bind_retry_ms overrides.
  const int retry_ms =
      options_.bind_retry_ms >= 0
          ? options_.bind_retry_ms
          : (std::strcmp(backend_->name(), "uring") == 0 ? 500 : 0);
  const auto bind_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(retry_ms);
  while (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
         0) {
    if (errno != EADDRINUSE ||
        std::chrono::steady_clock::now() >= bind_deadline) {
      throw std::runtime_error(
          "bind() failed for node " + std::to_string(self_) + " port " +
          std::to_string(addresses_.port_of(self_)) + ": " +
          std::strerror(errno));
    }
    ++stats_.listen_retries;
    if (c_listen_retries_ != nullptr) c_listen_retries_->inc();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (::listen(listen_fd_, 64) != 0) throw std::runtime_error("listen() failed");
  backend_->watch_readable(listen_fd_);
}

int TcpTransport::connect_to(NodeId to) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(addresses_.port_of(to));
  ::inet_pton(AF_INET, addresses_.host.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  // Hello: identify ourselves so the peer can attribute inbound frames.
  const std::uint32_t id = self_;
  if (!write_all(fd, reinterpret_cast<const std::byte*>(&id), sizeof id)) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::chrono::milliseconds TcpTransport::backoff_for(int attempts) {
  const int shift = std::min(attempts > 0 ? attempts - 1 : 0, 20);
  double ms = static_cast<double>(retry_.base_backoff_ms) *
              static_cast<double>(1u << shift);
  ms = std::min(ms, static_cast<double>(retry_.max_backoff_ms));
  if (retry_.jitter > 0) {
    ms *= 1.0 + retry_.jitter * (2.0 * rng_.uniform_double() - 1.0);
  }
  return std::chrono::milliseconds(std::max<std::int64_t>(
      1, static_cast<std::int64_t>(ms)));
}

bool TcpTransport::try_connect(NodeId to, Outbound& ob) {
  if (ob.connected) return true;
  const auto now = std::chrono::steady_clock::now();
  if (now < ob.next_attempt) return false;
  const int fd = connect_to(to);
  if (fd < 0) {
    ++ob.attempts;
    ++stats_.connect_failures;
    if (c_connect_failures_) c_connect_failures_->inc();
    ob.next_attempt = now + backoff_for(ob.attempts);
    if (ob.attempts == 1) {
      FC_WARN("node %u: connect to %u failed: %s (retrying with backoff)",
              self_, to, std::strerror(errno));
    }
    if (retry_.max_attempts > 0 && ob.attempts >= retry_.max_attempts) {
      // Retry budget exhausted: shed the queue so memory stays bounded, but
      // keep probing at max backoff so a recovered peer re-establishes.
      shed_queue(ob);
    }
    return false;
  }
  ob.fd = fd;
  ob.connected = true;
  // A reconnect is a successful connect to *this* peer after it failed or
  // dropped. The old condition also consulted the global disconnect count,
  // so a clean first-try connect to peer B was miscounted as a reconnect
  // whenever any other peer had ever disconnected.
  if (ob.attempts > 0 || ob.ever_connected) {
    ++stats_.reconnects;
    if (c_reconnects_) c_reconnects_->inc();
  }
  ob.ever_connected = true;
  ob.attempts = 0;
  return true;
}

void TcpTransport::disconnect(NodeId to, Outbound& ob) {
  FC_WARN("node %u: connection to %u lost; queueing for reconnect", self_, to);
  if (ob.fd >= 0) ::close(ob.fd);
  ob.fd = -1;
  ob.connected = false;
  // The partially-written head frame must be resent in full on the next
  // connection (the peer's parser starts fresh), so re-account its prefix.
  ob.queued_bytes += ob.head_offset;
  note_queued_delta(static_cast<std::ptrdiff_t>(ob.head_offset));
  ob.head_offset = 0;
  ++stats_.disconnects;
  if (c_disconnects_) c_disconnects_->inc();
  ob.next_attempt = std::chrono::steady_clock::now() + backoff_for(1);
  ob.attempts = 1;
}

void TcpTransport::shed_queue(Outbound& ob) {
  if (ob.frames.empty()) return;
  stats_.tx_frames_dropped += ob.frames.size();
  if (c_tx_dropped_) c_tx_dropped_->inc(ob.frames.size());
  for (auto& frame : ob.frames) pool_.release(std::move(frame));
  ob.frames.clear();
  note_queued_delta(-static_cast<std::ptrdiff_t>(ob.queued_bytes));
  ob.queued_bytes = 0;
  ob.head_offset = 0;
}

void TcpTransport::send(NodeId to, const Message& msg) {
  Outbound& ob = outbound_[to];
  if (!ob.connected && ob.queued_bytes >= retry_.max_queued_bytes) {
    // Unreachable peer with a full queue: shed the newest frame so memory
    // stays bounded while the backoff loop keeps probing.
    ++stats_.tx_frames_dropped;
    if (c_tx_dropped_) c_tx_dropped_->inc();
    return;
  }
  std::vector<std::byte> frame = pool_.acquire();
  frame_message_into(msg, frame);
  ob.queued_bytes += frame.size();
  note_queued_delta(static_cast<std::ptrdiff_t>(frame.size()));
  ob.frames.push_back(std::move(frame));
  if (!try_connect(to, ob)) return;  // queued; backoff flush will deliver
  if (ob.queued_bytes >= kFlushThresholdBytes && !write_pending(ob)) {
    disconnect(to, ob);
  }
}

void TcpTransport::flush() {
  for (auto& [to, ob] : outbound_) {
    if (ob.frames.empty()) continue;
    if (!try_connect(to, ob)) continue;
    if (!write_pending(ob)) disconnect(to, ob);
  }
}

std::size_t TcpTransport::pending_bytes() const {
  std::size_t total = 0;
  for (const auto& [node, ob] : outbound_) total += ob.queued_bytes;
  return total;
}

bool TcpTransport::write_pending(Outbound& ob) {
  while (!ob.frames.empty()) {
    iovec iov[kMaxIov];
    int iovcnt = 0;
    std::size_t offset = ob.head_offset;
    for (const auto& frame : ob.frames) {
      if (iovcnt == kMaxIov) break;
      iov[iovcnt].iov_base =
          const_cast<std::byte*>(frame.data() + offset);
      iov[iovcnt].iov_len = frame.size() - offset;
      ++iovcnt;
      offset = 0;
    }
    // One gather syscall per kMaxIov frames (sendmsg == writev with
    // MSG_NOSIGNAL — plain writev raises SIGPIPE on a dead peer).
    const ssize_t n = backend_->send_gather(ob.fd, iov, iovcnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    advance_written(ob, static_cast<std::size_t>(n));
  }
  return true;
}

void TcpTransport::advance_written(Outbound& ob, std::size_t n) {
  ob.queued_bytes -= n;
  note_queued_delta(-static_cast<std::ptrdiff_t>(n));
  while (n > 0) {
    std::vector<std::byte>& head = ob.frames.front();
    const std::size_t left = head.size() - ob.head_offset;
    if (n < left) {
      ob.head_offset += n;
      return;
    }
    n -= left;
    ob.head_offset = 0;
    pool_.release(std::move(head));
    ob.frames.pop_front();
  }
}

void TcpTransport::drop(int fd) {
  backend_->remove(fd);
  ::close(fd);
  inbound_.erase(fd);
}

void TcpTransport::accept_one() {
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return;
  set_nodelay(fd);
  Peer peer;
  peer.fd = fd;
  inbound_.emplace(fd, std::move(peer));
  // Hello phase: plain readiness watch; the 4 id bytes are read
  // synchronously when they arrive (they may fragment).
  backend_->watch_readable(fd);
}

void TcpTransport::adopt_inbound(int fd, NodeId peer_id) {
  set_nodelay(fd);
  if (const auto old = inbound_.find(fd); old != inbound_.end()) {
    // fd numbers are unique among live descriptors, so a collision means
    // the old entry's socket was closed without drop() and the number
    // recycled: that entry is stale. Evict it (its fd now names *this*
    // socket, so don't close) — keeping it would leak the adopted socket
    // and leave the new peer's connection silently dead.
    FC_WARN("node %u: adopt_inbound fd %d evicts a stale entry for node %u",
            self_, fd, old->second.id);
    backend_->remove(fd);
    inbound_.erase(old);
  }
  Peer peer;
  peer.fd = fd;
  peer.id = peer_id;
  const auto it = inbound_.emplace(fd, std::move(peer)).first;
  arm_peer_recv(it->second);
}

void TcpTransport::watch_fd(int fd, std::function<void()> cb) {
  watched_[fd] = std::move(cb);
  backend_->watch_readable(fd);
}

void TcpTransport::unwatch_fd(int fd) {
  if (watched_.erase(fd) > 0) backend_->remove(fd);
}

void TcpTransport::handle_hello(Peer& peer) {
  if (peer.id != kInvalidNode) return;  // stale readiness after arming
  const ssize_t n = ::recv(peer.fd, peer.hello + peer.hello_got,
                           sizeof peer.hello - peer.hello_got, 0);
  if (n <= 0) {
    if (n < 0 && errno == EINTR) return;
    drop(peer.fd);
    return;
  }
  peer.hello_got += static_cast<std::size_t>(n);
  if (peer.hello_got == sizeof peer.hello) {
    std::uint32_t id = 0;
    std::memcpy(&id, peer.hello, sizeof id);
    if (hello_router_ && hello_router_(peer.fd, id)) {
      // The router took the connection (e.g. it belongs to another shard):
      // forget the fd without closing it.
      const int fd = peer.fd;
      backend_->remove(fd);
      inbound_.erase(fd);
      return;
    }
    peer.id = id;
    // Data phase: receives now land in the parser arena via the backend
    // (arming supersedes the hello watch).
    arm_peer_recv(peer);
  }
}

void TcpTransport::arm_peer_recv(Peer& peer) {
  const std::span<std::byte> dst = peer.parser.recv_buffer(kReadChunkBytes);
  backend_->arm_recv(peer.fd, dst.data(), dst.size());
}

std::size_t TcpTransport::handle_recv(Peer& peer, ssize_t n) {
  if (n <= 0) {
    drop(peer.fd);
    return 0;
  }
  peer.parser.commit(static_cast<std::size_t>(n));
  std::size_t dispatched = 0;
  while (auto msg = peer.parser.next()) {
    ++dispatched;
    if (receive_) receive_(peer.id, *msg);
  }
  if (peer.parser.corrupted()) {
    FC_ERROR("node %u: corrupted stream from %u", self_, peer.id);
    drop(peer.fd);
    return dispatched;
  }
  // Re-arm only after the parser drained: recv_buffer may compact or grow
  // the arena, which is safe exactly because no receive is in flight.
  arm_peer_recv(peer);
  return dispatched;
}

std::size_t TcpTransport::poll_once(int timeout_ms) {
  flush();
  events_.clear();
  backend_->wait(timeout_ms, events_);

  std::size_t dispatched = 0;
  for (const TransportBackend::Event& ev : events_) {
    if (ev.kind == TransportBackend::Event::Kind::kReadable) {
      if (ev.fd == listen_fd_) {
        accept_one();
        continue;
      }
      if (const auto wit = watched_.find(ev.fd); wit != watched_.end()) {
        wit->second();
        continue;
      }
      const auto it = inbound_.find(ev.fd);
      if (it == inbound_.end()) continue;  // dropped earlier this round
      handle_hello(it->second);
    } else {
      const auto it = inbound_.find(ev.fd);
      if (it == inbound_.end()) continue;  // dropped earlier this round
      dispatched += handle_recv(it->second, ev.n);
    }
  }
  return dispatched;
}

void TcpTransport::close_all() {
  flush();  // best-effort: don't strand queued frames on shutdown
  if (listen_fd_ >= 0) {
    backend_->remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [node, ob] : outbound_) {
    if (ob.fd >= 0) ::close(ob.fd);
  }
  outbound_.clear();
  for (auto& [fd, peer] : inbound_) {
    backend_->remove(fd);
    ::close(fd);
  }
  inbound_.clear();
}

}  // namespace fastcast::net
