#include "fastcast/net/frame.hpp"

#include <cstring>

namespace fastcast::net {

std::vector<std::byte> frame_message(const Message& msg) {
  const std::vector<std::byte> body = encode_message(msg);
  std::vector<std::byte> out;
  out.reserve(4 + body.size());
  const auto len = static_cast<std::uint32_t>(body.size());
  const auto* lp = reinterpret_cast<const std::byte*>(&len);
  out.insert(out.end(), lp, lp + 4);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void FrameParser::feed(const std::byte* data, std::size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void FrameParser::compact() {
  // Reclaim consumed prefix once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

std::optional<Message> FrameParser::next() {
  if (corrupted_) return std::nullopt;
  if (buf_.size() - consumed_ < 4) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data() + consumed_, 4);
  if (len > kMaxFrameBytes) {
    corrupted_ = true;
    return std::nullopt;
  }
  if (buf_.size() - consumed_ < 4 + static_cast<std::size_t>(len)) return std::nullopt;

  Message out;
  const std::span<const std::byte> body(buf_.data() + consumed_ + 4, len);
  if (!decode_message(body, out)) {
    corrupted_ = true;
    return std::nullopt;
  }
  consumed_ += 4 + len;
  compact();
  return out;
}

}  // namespace fastcast::net
