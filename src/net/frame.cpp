#include "fastcast/net/frame.hpp"

#include <algorithm>
#include <cstring>

#include "fastcast/common/assert.hpp"

namespace fastcast::net {

std::vector<std::byte> frame_message(const Message& msg) {
  std::vector<std::byte> out;
  frame_message_into(msg, out);
  return out;
}

void frame_message_into(const Message& msg, std::vector<std::byte>& out) {
  // Reserve the length slot, encode the body in place, then backfill the
  // prefix — one buffer, no body-copy.
  const std::size_t len_pos = out.size();
  out.resize(len_pos + 4);
  Writer w(std::move(out));
  encode(w, msg);
  out = w.take();
  const auto len = static_cast<std::uint32_t>(out.size() - len_pos - 4);
  std::memcpy(out.data() + len_pos, &len, 4);
}

void FrameParser::feed(const std::byte* data, std::size_t len) {
  std::memcpy(recv_buffer(len).data(), data, len);
  commit(len);
}

std::span<std::byte> FrameParser::recv_buffer(std::size_t min_bytes) {
  compact();
  if (buf_.size() - end_ < min_bytes) {
    // The vector's size is the arena capacity; growth value-initializes
    // once, after which the region is recycled without further writes.
    buf_.resize(std::max(end_ + min_bytes, buf_.size() * 2));
  }
  return {buf_.data() + end_, buf_.size() - end_};
}

void FrameParser::commit(std::size_t n) {
  FC_ASSERT(end_ + n <= buf_.size());
  end_ += n;
}

void FrameParser::compact() {
  // Reclaim the consumed prefix once it dominates the arena.
  if (consumed_ > 4096 && consumed_ * 2 > end_) {
    std::memmove(buf_.data(), buf_.data() + consumed_, end_ - consumed_);
    end_ -= consumed_;
    consumed_ = 0;
  }
}

std::optional<Message> FrameParser::next() {
  if (corrupted_) return std::nullopt;
  if (end_ - consumed_ < 4) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, buf_.data() + consumed_, 4);
  if (len > kMaxFrameBytes) {
    corrupted_ = true;
    return std::nullopt;
  }
  if (end_ - consumed_ < 4 + static_cast<std::size_t>(len)) return std::nullopt;

  Message out;
  const std::span<const std::byte> body(buf_.data() + consumed_ + 4, len);
  if (!decode_message(body, out)) {
    corrupted_ = true;
    return std::nullopt;
  }
  consumed_ += 4 + len;
  return out;
}

}  // namespace fastcast::net
