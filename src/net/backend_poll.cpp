#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>
#include <unordered_map>

#include "fastcast/net/transport_backend.hpp"

/// poll(2) TransportBackend: the portable baseline, extracted from the
/// original TcpTransport event loop.
///
/// The cached-pollfd optimization survives the extraction: the pollfd array
/// is rebuilt only when the *fd set* changes (watch/arm of a new fd,
/// remove), never on re-arms of an already-registered fd — so the
/// steady-state wait cycle is one poll(2) plus one recv(2) per readable
/// armed fd, with zero per-cycle allocation. Re-arming a receive on an fd
/// that is already in the set only swaps the destination buffer.

namespace fastcast::net {

namespace {

class PollBackend final : public TransportBackend {
 public:
  const char* name() const override { return "poll"; }

  void watch_readable(int fd) override {
    Entry& e = entries_[fd];
    if (!e.registered) {
      e.registered = true;
      dirty_ = true;
    }
  }

  void arm_recv(int fd, std::byte* buf, std::size_t len) override {
    Entry& e = entries_[fd];
    if (!e.registered) {
      e.registered = true;
      dirty_ = true;
    }
    // One outstanding receive per fd: the first arm wins until its event
    // is delivered (matches the in-flight-SQE semantics of io_uring).
    if (e.armed) return;
    e.armed = true;
    e.buf = buf;
    e.len = len;
  }

  void remove(int fd) override {
    if (entries_.erase(fd) > 0) dirty_ = true;
  }

  ssize_t send_gather(int fd, const struct iovec* iov, int iovcnt) override {
    msghdr mh{};
    mh.msg_iov = const_cast<struct iovec*>(iov);
    mh.msg_iovlen = static_cast<std::size_t>(iovcnt);
    return ::sendmsg(fd, &mh, MSG_NOSIGNAL);
  }

  std::size_t wait(int timeout_ms, std::vector<Event>& out) override {
    if (dirty_) rebuild();
    for (pollfd& p : pollfds_) p.revents = 0;

    const int ready =
        ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
    if (ready <= 0) return 0;

    std::size_t emitted = 0;
    for (const pollfd& p : pollfds_) {
      if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const auto it = entries_.find(p.fd);
      if (it == entries_.end()) continue;  // removed by an earlier handler
      Entry& e = it->second;
      if (e.armed) {
        // Satisfy the armed receive right here: the buffer was provided up
        // front, so the bytes land with no intermediate copy. POLLHUP/ERR
        // also route through recv so the caller sees the 0/-1 it expects.
        const ssize_t n = ::recv(p.fd, e.buf, e.len, 0);
        if (n < 0 && errno == EINTR) continue;  // retry next wait
        e.armed = false;
        out.push_back(Event{Event::Kind::kRecv, p.fd, n});
      } else {
        out.push_back(Event{Event::Kind::kReadable, p.fd, 0});
      }
      ++emitted;
    }
    return emitted;
  }

 private:
  struct Entry {
    bool registered = false;
    bool armed = false;
    std::byte* buf = nullptr;
    std::size_t len = 0;
  };

  void rebuild() {
    pollfds_.clear();
    pollfds_.reserve(entries_.size());
    for (const auto& [fd, e] : entries_) {
      pollfds_.push_back(pollfd{fd, POLLIN, 0});
    }
    dirty_ = false;
  }

  std::unordered_map<int, Entry> entries_;
  std::vector<pollfd> pollfds_;  ///< cached; rebuilt only when dirty_
  bool dirty_ = true;
};

}  // namespace

std::unique_ptr<TransportBackend> make_poll_backend() {
  return std::make_unique<PollBackend>();
}

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPoll:
      return "poll";
    case BackendKind::kUring:
      return "uring";
    case BackendKind::kAuto:
      return "auto";
  }
  return "?";
}

std::optional<BackendKind> parse_backend_kind(std::string_view name) {
  if (name == "poll") return BackendKind::kPoll;
  if (name == "uring" || name == "io_uring") return BackendKind::kUring;
  if (name == "auto") return BackendKind::kAuto;
  return std::nullopt;
}

BackendKind resolve_backend(BackendKind kind) {
  if (kind == BackendKind::kPoll) return BackendKind::kPoll;
  return uring_available() ? BackendKind::kUring : BackendKind::kPoll;
}

std::unique_ptr<TransportBackend> make_backend(BackendKind kind) {
  if (resolve_backend(kind) == BackendKind::kUring) {
    if (auto b = make_uring_backend()) return b;
  }
  return make_poll_backend();
}

}  // namespace fastcast::net
