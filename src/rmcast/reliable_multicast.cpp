#include "fastcast/rmcast/reliable_multicast.hpp"

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast {

void ReliableMulticast::multicast(Context& ctx, const std::vector<GroupId>& dst,
                                  AmcastPayload inner) {
  FC_ASSERT_MSG(!dst.empty(), "multicast needs at least one destination group");
  const std::vector<NodeId> dests = ctx.membership().nodes_of_groups(dst);

  RmData frame;
  frame.origin = ctx.self();
  frame.dst_groups = dst;
  frame.dest_nodes = dests;
  frame.dest_seqs.reserve(dests.size());
  for (NodeId d : dests) {
    auto [it, inserted] = next_seq_.try_emplace(d, 1);
    (void)inserted;
    frame.dest_seqs.push_back(it->second++);
  }
  frame.inner = std::move(inner);

  for (std::size_t i = 0; i < dests.size(); ++i) {
    frame.seq = frame.dest_seqs[i];
    if (!config_.reliable_links) {
      unacked_.emplace(std::make_pair(dests[i], frame.seq), frame);
    }
    ctx.send(dests[i], Message{frame});
  }
}

void ReliableMulticast::on_start(Context& ctx) {
  if (!config_.reliable_links) arm_retransmit(ctx);
}

void ReliableMulticast::on_recover(Context& ctx) {
  timer_armed_ = false;
  on_start(ctx);
}

void ReliableMulticast::arm_retransmit(Context& ctx) {
  if (timer_armed_) return;
  timer_armed_ = true;
  ctx.set_timer(config_.retransmit_interval, [this, &ctx] {
    timer_armed_ = false;
    if (auto* o = ctx.obs(); o && !unacked_.empty()) {
      o->metrics.counter("rmcast.retransmits").inc(unacked_.size());
    }
    for (const auto& [key, frame] : unacked_) {
      RmData copy = frame;
      copy.seq = key.second;
      ctx.send(key.first, Message{std::move(copy)});
    }
    if (!unacked_.empty() || !config_.reliable_links) arm_retransmit(ctx);
  });
}

bool ReliableMulticast::handle(Context& ctx, NodeId from, const Message& msg) {
  if (const auto* data = std::get_if<RmData>(&msg.payload)) {
    on_data(ctx, from, *data);
    return true;
  }
  if (const auto* ack = std::get_if<RmAck>(&msg.payload)) {
    unacked_.erase(std::make_pair(from, ack->seq));
    return true;
  }
  return false;
}

void ReliableMulticast::on_data(Context& ctx, NodeId from, const RmData& data) {
  if (!config_.reliable_links) {
    // Ack to whoever transmitted this copy (origin or a relay).
    ctx.send(from, Message{RmAck{data.origin, data.seq}});
  }

  auto& origin = origins_[data.origin];
  if (data.seq < origin.next_expected) return;  // duplicate
  if (origin.holdback.contains(data.seq)) return;

  origin.holdback.emplace(data.seq, data);
  if (auto* o = ctx.obs()) {
    o->metrics.gauge("rmcast.holdback_max")
        .record_max(static_cast<std::int64_t>(holdback_size()));
  }

  // Drain contiguous prefix in FIFO order.
  while (true) {
    auto it = origin.holdback.find(origin.next_expected);
    if (it == origin.holdback.end()) break;
    const RmData frame = std::move(it->second);
    origin.holdback.erase(it);
    ++origin.next_expected;

    const bool should_relay =
        config_.relay == RmConfig::Relay::kSelf && (!relay_pred_ || relay_pred_());
    if (should_relay) relay(ctx, frame);
    if (deliver_) {
      if (auto* o = ctx.obs()) {
        o->trace(mid_of(frame.inner), obs::SpanEventKind::kRdeliver,
                 ctx.self(), ctx.my_group(), ctx.now());
      }
      deliver_(ctx, frame.origin, frame.inner);
    }
  }
}

void ReliableMulticast::relay(Context& ctx, const RmData& data) {
  FC_ASSERT(data.dest_nodes.size() == data.dest_seqs.size());
  for (std::size_t i = 0; i < data.dest_nodes.size(); ++i) {
    const NodeId dest = data.dest_nodes[i];
    if (dest == ctx.self()) continue;
    RmData copy = data;
    copy.seq = data.dest_seqs[i];
    ctx.send(dest, Message{std::move(copy)});
  }
}

std::size_t ReliableMulticast::holdback_size() const {
  std::size_t total = 0;
  for (const auto& [origin, state] : origins_) total += state.holdback.size();
  return total;
}

}  // namespace fastcast
