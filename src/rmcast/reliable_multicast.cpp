#include "fastcast/rmcast/reliable_multicast.hpp"

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"
#include "fastcast/storage/storage.hpp"

namespace fastcast {

void ReliableMulticast::restore(const storage::DurableState& durable) {
  for (const auto& [node, seq] : durable.rm_next_seq) {
    auto& next = next_seq_[node];
    if (seq > next) next = seq;
  }
  for (const auto& [key, frame_bytes] : durable.rm_staged) {
    Message m;
    if (!decode_message(frame_bytes, m)) continue;  // guarded by WAL CRC
    if (const auto* data = std::get_if<RmData>(&m.payload)) {
      RmData copy = *data;
      copy.seq = key.second;
      // Restored from the WAL, so durable by construction: no gate.
      unacked_.emplace(key, Staged{std::move(copy), 0});
    }
  }
  for (const auto& [node, seq] : durable.rm_next_expected) {
    auto& next = origins_[node].next_expected;
    if (seq > next) next = seq;
  }
}

void ReliableMulticast::multicast(Context& ctx, const std::vector<GroupId>& dst,
                                  AmcastPayload inner) {
  FC_ASSERT_MSG(!dst.empty(), "multicast needs at least one destination group");
  const std::vector<NodeId> dests = ctx.membership().nodes_of_groups(dst);

  RmData frame;
  frame.origin = ctx.self();
  frame.dst_groups = dst;
  frame.dest_nodes = dests;
  frame.dest_seqs.reserve(dests.size());
  for (NodeId d : dests) {
    auto [it, inserted] = next_seq_.try_emplace(d, 1);
    (void)inserted;
    frame.dest_seqs.push_back(it->second++);
  }
  frame.inner = std::move(inner);

  storage::NodeStorage* st = ctx.storage();
  for (std::size_t i = 0; i < dests.size(); ++i) {
    frame.seq = frame.dest_seqs[i];
    if (st != nullptr) {
      // Log the seq advance (a restarted origin must never reuse it) plus
      // the staged frame when retransmission needs it, and gate the send:
      // a frame that hits the wire is always reconstructible from disk.
      storage::Lsn lsn = st->log_rm_next_seq(dests[i], next_seq_[dests[i]]);
      if (!config_.reliable_links) {
        stage_scratch_.clear();
        encode_message_into(Message{frame}, stage_scratch_);
        lsn = st->log_rm_stage(dests[i], frame.seq, stage_scratch_);
        // The staged copy carries the same gate so the retransmit timer
        // cannot leak the frame onto the wire before the seq advance is
        // durable either.
        unacked_.emplace(std::make_pair(dests[i], frame.seq),
                         Staged{frame, lsn});
      }
      st->when_durable(lsn, [c = &ctx, to = dests[i], frame]() {
        c->send(to, Message{frame});
      });
    } else {
      if (!config_.reliable_links) {
        unacked_.emplace(std::make_pair(dests[i], frame.seq),
                         Staged{frame, 0});
      }
      ctx.send(dests[i], Message{frame});
    }
  }
  if (st != nullptr) st->commit();
}

void ReliableMulticast::on_start(Context& ctx) {
  if (!config_.reliable_links) arm_retransmit(ctx);
}

void ReliableMulticast::on_recover(Context& ctx) {
  timer_armed_ = false;
  on_start(ctx);
}

void ReliableMulticast::arm_retransmit(Context& ctx) {
  if (timer_armed_) return;
  timer_armed_ = true;
  ctx.set_timer(config_.retransmit_interval, [this, &ctx] {
    timer_armed_ = false;
    storage::NodeStorage* st = ctx.storage();
    std::uint64_t sent = 0;
    for (const auto& [key, staged] : unacked_) {
      // Honor the durability gate: retransmitting a frame whose seq
      // advance is still unsynced would externalize state a crash can
      // forget (see Staged::lsn).
      if (st != nullptr && staged.lsn > st->durable_lsn()) continue;
      RmData copy = staged.frame;
      copy.seq = key.second;
      ctx.send(key.first, Message{std::move(copy)});
      ++sent;
    }
    if (auto* o = ctx.obs(); o && sent > 0) {
      o->metrics.counter("rmcast.retransmits").inc(sent);
    }
    if (!unacked_.empty() || !config_.reliable_links) arm_retransmit(ctx);
  });
}

bool ReliableMulticast::handle(Context& ctx, NodeId from, const Message& msg) {
  if (const auto* data = std::get_if<RmData>(&msg.payload)) {
    on_data(ctx, from, *data);
    return true;
  }
  if (const auto* ack = std::get_if<RmAck>(&msg.payload)) {
    if (unacked_.erase(std::make_pair(from, ack->seq)) > 0) {
      if (storage::NodeStorage* st = ctx.storage()) {
        // The staged frame will never be retransmitted again; the settle
        // record lets recovery (and the next snapshot) drop it. Advisory,
        // so no gate and no forced commit.
        st->log_rm_settle(from, ack->seq);
      }
    }
    return true;
  }
  return false;
}

void ReliableMulticast::deliver_frame(Context& ctx, const RmData& frame) {
  const bool should_relay =
      config_.relay == RmConfig::Relay::kSelf && (!relay_pred_ || relay_pred_());
  if (should_relay) relay(ctx, frame);
  if (deliver_) {
    if (auto* o = ctx.obs()) {
      o->trace(mid_of(frame.inner), obs::SpanEventKind::kRdeliver, ctx.self(),
               ctx.my_group(), ctx.now());
    }
    deliver_(ctx, frame.origin, frame.inner);
  }
}

void ReliableMulticast::on_data(Context& ctx, NodeId from, const RmData& data) {
  storage::NodeStorage* st = ctx.storage();
  auto& origin = origins_[data.origin];

  if (st == nullptr) {
    if (!config_.reliable_links) {
      // Ack to whoever transmitted this copy (origin or a relay).
      ctx.send(from, Message{RmAck{data.origin, data.seq}});
    }
  } else if (!config_.reliable_links && data.seq < origin.next_expected) {
    // Durable mode acks only what a restart provably keeps: this frame is
    // below a logged next-expected floor, so ack once that floor commits
    // (usually already has). Fresh frames are acked on drain below.
    st->when_durable(st->last_lsn(), [c = &ctx, from,
                                      ack = RmAck{data.origin, data.seq}]() {
      c->send(from, Message{ack});
    });
  }

  if (data.seq < origin.next_expected) return;  // duplicate
  if (origin.holdback.contains(data.seq)) return;

  origin.holdback.emplace(data.seq, data);
  if (auto* o = ctx.obs()) {
    o->metrics.gauge("rmcast.holdback_max")
        .record_max(static_cast<std::int64_t>(holdback_size()));
  }

  // Drain contiguous prefix in FIFO order.
  std::vector<RmData> drained;
  while (true) {
    auto it = origin.holdback.find(origin.next_expected);
    if (it == origin.holdback.end()) break;
    drained.push_back(std::move(it->second));
    origin.holdback.erase(it);
    ++origin.next_expected;
  }
  if (drained.empty()) return;

  if (st == nullptr) {
    for (const RmData& frame : drained) deliver_frame(ctx, frame);
    return;
  }

  // Log the new FIFO floor and gate every externalization — relays, the
  // delivery upcall (whose downstream effects include sends), and the ack
  // for the just-arrived frame — on its commit. If the node dies first the
  // closures are dropped, the origin retransmits, and replay re-drains.
  // Note: `origin` may be invalidated by upcalls re-entering origins_, so
  // nothing below touches it.
  const std::uint64_t next_expected =
      origins_.at(data.origin).next_expected;
  const storage::Lsn lsn = st->log_rm_progress(data.origin, next_expected);
  const bool ack_arrived =
      !config_.reliable_links && data.seq < next_expected;
  for (RmData& frame : drained) {
    st->when_durable(lsn, [this, c = &ctx, frame = std::move(frame)]() {
      deliver_frame(*c, frame);
    });
  }
  if (ack_arrived) {
    st->when_durable(lsn, [c = &ctx, from,
                           ack = RmAck{data.origin, data.seq}]() {
      c->send(from, Message{ack});
    });
  }
  st->commit();
}

void ReliableMulticast::relay(Context& ctx, const RmData& data) {
  FC_ASSERT(data.dest_nodes.size() == data.dest_seqs.size());
  for (std::size_t i = 0; i < data.dest_nodes.size(); ++i) {
    const NodeId dest = data.dest_nodes[i];
    if (dest == ctx.self()) continue;
    RmData copy = data;
    copy.seq = data.dest_seqs[i];
    ctx.send(dest, Message{std::move(copy)});
  }
}

std::size_t ReliableMulticast::holdback_size() const {
  std::size_t total = 0;
  for (const auto& [origin, state] : origins_) total += state.holdback.size();
  return total;
}

}  // namespace fastcast
