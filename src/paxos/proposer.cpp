#include "fastcast/paxos/proposer.hpp"

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"
#include "fastcast/storage/storage.hpp"

namespace fastcast::paxos {

void Proposer::assume_stable_leadership(std::uint32_t round, NodeId self) {
  ballot_ = Ballot{round, self};
  ballot_lsn_ = 0;
  phase_ = Phase::kSteady;
}

void Proposer::start_leadership(Context& ctx, std::uint32_t round,
                                InstanceId first_undecided) {
  if (round < round_floor_) round = round_floor_;
  ballot_ = Ballot{round, ctx.self()};
  phase_ = Phase::kPrepare;
  prepare_from_ = first_undecided;
  promises_.clear();
  best_accepted_.clear();
  // Values that were in flight under the previous ballot get requeued; if
  // they were in fact decided, on_decided() / the idempotent caller filters
  // them out.
  for (auto& [inst, value] : in_flight_) queue_.push_front(std::move(value));
  in_flight_.clear();

  P1a prepare{config_.group, ballot_, prepare_from_};
  if (storage::NodeStorage* st = ctx.storage()) {
    // WAL-before-send for the new ballot: log it as a promise record
    // (raising the durable promise watermark this node restores from) and
    // gate the P1a on its commit. A restart then picks a round strictly
    // above anything this incarnation externalized — reusing a round
    // would let two incarnations put different values in one
    // (ballot, instance) slot.
    ballot_lsn_ = st->log_promise(config_.group, ballot_);
    st->when_durable(ballot_lsn_,
                     [c = &ctx, acceptors = config_.acceptors, prepare]() {
                       for (NodeId a : acceptors) c->send(a, Message{prepare});
                     });
    st->commit();
  } else {
    for (NodeId a : config_.acceptors) ctx.send(a, Message{prepare});
  }
  arm_retry(ctx);
}

void Proposer::on_p1b(Context& ctx, NodeId from, const P1b& msg) {
  if (phase_ != Phase::kPrepare || msg.ballot != ballot_) return;
  promises_.insert(from);
  for (const auto& entry : msg.accepted) {
    auto [it, inserted] = best_accepted_.try_emplace(
        entry.instance, std::make_pair(entry.vballot, entry.value));
    if (!inserted && entry.vballot > it->second.first) {
      it->second = {entry.vballot, entry.value};
    }
  }
  if (promises_.size() < config_.quorum) return;

  // Phase 1 complete. Re-drive the highest-ballot accepted value of every
  // open instance (Paxos safety: a decided value is always visible in a
  // quorum of promises) and fill gaps with no-ops so the decision stream
  // stays contiguous.
  phase_ = Phase::kSteady;
  InstanceId max_seen = prepare_from_;
  for (const auto& [inst, entry] : best_accepted_) {
    if (inst + 1 > max_seen) max_seen = inst + 1;
  }
  if (next_instance_ < max_seen) next_instance_ = max_seen;
  if (next_instance_ < prepare_from_) next_instance_ = prepare_from_;
  for (InstanceId inst = prepare_from_; inst < max_seen; ++inst) {
    auto it = best_accepted_.find(inst);
    std::vector<std::byte> value =
        it == best_accepted_.end() ? std::vector<std::byte>{} : it->second.second;
    open_instance(ctx, inst, std::move(value));
  }
  best_accepted_.clear();
  promises_.clear();
  pump(ctx);
}

void Proposer::on_nack(Context& ctx, const PaxosNack& msg) {
  if (phase_ == Phase::kIdle) return;
  if (msg.promised <= ballot_) return;
  // Preempted by a higher ballot. If we still believe we are the leader
  // (the elector has not demoted us) retry Phase 1 above the observed
  // ballot; otherwise the elector will resign us shortly.
  FC_DEBUG("proposer %u preempted by ballot (%u,%u)", ctx.self(),
           msg.promised.round, msg.promised.node);
  const InstanceId from = first_undecided_ ? first_undecided_() : prepare_from_;
  start_leadership(ctx, msg.promised.round + 1, from);
}

void Proposer::propose(Context& ctx, std::vector<std::byte> value) {
  queue_.push_back(std::move(value));
  pump(ctx);
}

void Proposer::open_instance(Context& ctx, InstanceId inst,
                             std::vector<std::byte> value) {
  P2a accept{config_.group, ballot_, inst, value};
  in_flight_.emplace(inst, std::move(value));
  if (auto* o = ctx.obs()) {
    // Pipeline depth: how many consensus instances this proposer keeps in
    // flight simultaneously (bounded by config_.window), plus the size of
    // each proposed value — together they show whether the ordering path
    // is running id-batches through a deep pipeline or serialized payloads.
    o->metrics.gauge("paxos.pipeline.in_flight")
        .record_max(static_cast<std::int64_t>(in_flight_.size()));
    o->metrics.histogram("paxos.pipeline.value_bytes")
        .observe(static_cast<std::int64_t>(accept.value.size()));
  }
  for (NodeId a : config_.acceptors) ctx.send(a, Message{accept});
  arm_retry(ctx);
}

void Proposer::pump(Context& ctx) {
  if (phase_ != Phase::kSteady) return;
  while (!queue_.empty() && in_flight_.size() < config_.window) {
    std::vector<std::byte> value = std::move(queue_.front());
    queue_.pop_front();
    open_instance(ctx, next_instance_++, std::move(value));
  }
}

void Proposer::on_decided(Context& ctx, InstanceId instance,
                          const std::vector<std::byte>& value) {
  if (instance >= next_instance_) next_instance_ = instance + 1;
  auto it = in_flight_.find(instance);
  if (it != in_flight_.end()) {
    if (it->second != value) {
      // A competing proposer took this slot; our value still needs a slot.
      queue_.push_front(std::move(it->second));
    }
    in_flight_.erase(it);
  }
  pump(ctx);
}

void Proposer::on_start(Context& ctx) {
  if (!config_.reliable_links) arm_retry(ctx);
}

void Proposer::on_recover(Context& ctx) {
  retry_armed_ = false;
  on_start(ctx);
}

void Proposer::arm_retry(Context& ctx) {
  if (config_.reliable_links || retry_armed_) return;
  retry_armed_ = true;
  ctx.set_timer(config_.retry_interval, [this, &ctx] {
    retry_armed_ = false;
    storage::NodeStorage* st = ctx.storage();
    if (phase_ == Phase::kPrepare &&
        (st == nullptr || ballot_lsn_ <= st->durable_lsn())) {
      P1a prepare{config_.group, ballot_, prepare_from_};
      for (NodeId a : config_.acceptors) ctx.send(a, Message{prepare});
    } else if (phase_ == Phase::kSteady) {
      for (const auto& [inst, value] : in_flight_) {
        P2a accept{config_.group, ballot_, inst, value};
        for (NodeId a : config_.acceptors) ctx.send(a, Message{accept});
      }
    }
    if (!config_.reliable_links) arm_retry(ctx);
  });
}

}  // namespace fastcast::paxos
