#include "fastcast/paxos/learner.hpp"

#include "fastcast/common/assert.hpp"

namespace fastcast::paxos {

void Learner::on_p2b(Context& ctx, const P2b& msg) {
  if (is_decided(msg.instance)) return;

  // Round 0 is reserved for "never voted": no proposer ever runs Phase 2 at
  // it, so a round-0 vote can only be an acceptor replaying a value it
  // installed from a repair transfer — decided by construction, one report
  // suffices. Counting it as an ordinary vote would split the quorum
  // between the sentinel and the real accept ballot and stall small gaps.
  if (msg.ballot.round == 0) {
    force_decided(ctx, msg.instance, msg.value);
    return;
  }

  auto& state = votes_[msg.instance];
  if (state.voters.empty() || msg.ballot > state.ballot) {
    // First vote, or votes at a higher ballot supersede lower-ballot ones.
    state.ballot = msg.ballot;
    state.voters.clear();
    state.value = msg.value;
  } else if (msg.ballot < state.ballot) {
    return;  // stale vote
  }
  state.voters.insert(msg.acceptor);
  if (state.voters.size() < quorum_) return;

  // Decided. All votes at one ballot carry the same value by the Paxos
  // acceptance invariant.
  std::vector<std::byte> value = std::move(state.value);
  votes_.erase(msg.instance);
  if (observer_) observer_(msg.instance, value);
  decided_.emplace(msg.instance, std::move(value));
  drain(ctx);
}

void Learner::set_start(InstanceId start) {
  if (start <= next_deliver_) return;
  next_deliver_ = start;
  votes_.erase(votes_.begin(), votes_.lower_bound(start));
  decided_.erase(decided_.begin(), decided_.lower_bound(start));
}

bool Learner::force_decided(Context& ctx, InstanceId inst,
                            const std::vector<std::byte>& value) {
  if (is_decided(inst)) return false;
  votes_.erase(inst);
  if (observer_) observer_(inst, value);
  decided_.emplace(inst, value);
  drain(ctx);
  return true;
}

void Learner::drain(Context&) {
  while (true) {
    auto it = decided_.find(next_deliver_);
    if (it == decided_.end()) return;
    std::vector<std::byte> value = std::move(it->second);
    decided_.erase(it);
    const InstanceId inst = next_deliver_++;
    if (decide_) decide_(inst, value);
  }
}

}  // namespace fastcast::paxos
