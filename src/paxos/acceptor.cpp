#include "fastcast/paxos/acceptor.hpp"

#include <iterator>

#include "fastcast/common/logging.hpp"
#include "fastcast/storage/storage.hpp"

namespace fastcast::paxos {

void Acceptor::restore(const storage::DurableState::GroupState& durable) {
  if (durable.promised > promised_) promised_ = durable.promised;
  for (const auto& [inst, acc] : durable.accepted) {
    accepted_[inst] = AcceptedValue{acc.ballot, acc.value};
  }
  if (durable.pruned_below > pruned_below_) pruned_below_ = durable.pruned_below;
}

void Acceptor::on_p1a(Context& ctx, NodeId from, const P1a& msg) {
  // Ballots embed the proposer id, so equality implies the same proposer
  // retransmitting Phase 1 — replying again is idempotent.
  if (msg.ballot < promised_) {
    ctx.send(from, Message{PaxosNack{group_, promised_, msg.from_instance}});
    return;
  }
  promised_ = msg.ballot;

  P1b reply;
  reply.group = group_;
  reply.ballot = promised_;
  reply.from_instance = msg.from_instance;
  for (auto it = accepted_.lower_bound(msg.from_instance); it != accepted_.end();
       ++it) {
    reply.accepted.push_back({it->first, it->second.vballot, it->second.value});
  }

  if (storage::NodeStorage* st = ctx.storage()) {
    // The promise record is appended after any accept records it reports,
    // so gating the reply on it transitively covers them all. The closure
    // is dropped if the node crashes first — then the promise was never
    // externalized and forgetting it is harmless.
    const storage::Lsn lsn = st->log_promise(group_, promised_);
    st->when_durable(lsn, [c = &ctx, from, reply = std::move(reply)]() {
      c->send(from, Message{reply});
    });
    st->commit();
  } else {
    ctx.send(from, Message{std::move(reply)});
  }
}

void Acceptor::on_p2a(Context& ctx, NodeId from, const P2a& msg) {
  if (msg.ballot < promised_) {
    ctx.send(from, Message{PaxosNack{group_, promised_, msg.instance}});
    return;
  }
  promised_ = msg.ballot;
  accepted_[msg.instance] = AcceptedValue{msg.ballot, msg.value};

  P2b vote;
  vote.group = group_;
  vote.ballot = msg.ballot;
  vote.instance = msg.instance;
  vote.acceptor = ctx.self();
  vote.value = msg.value;

  if (storage::NodeStorage* st = ctx.storage()) {
    // An accept record implies the promise (DurableState::apply), so one
    // record covers both state changes this handler made.
    const storage::Lsn lsn =
        st->log_accept(group_, msg.instance, msg.ballot, msg.value);
    st->when_durable(
        lsn, [c = &ctx, learners = learners_, vote = std::move(vote)]() {
          for (NodeId learner : learners) c->send(learner, Message{vote});
        });
    st->commit();
  } else {
    for (NodeId learner : learners_) ctx.send(learner, Message{vote});
  }
}

void Acceptor::on_p2b_request(Context& ctx, NodeId from, const P2bRequest& msg) {
  // Catch-up re-externalizes accepted values; make sure every logged accept
  // is durable before any of them goes back on the wire.
  if (storage::NodeStorage* st = ctx.storage()) st->flush();

  constexpr std::size_t kMaxReplies = 128;
  std::size_t sent = 0;
  auto it = accepted_.lower_bound(msg.from_instance);
  for (; it != accepted_.end() && sent < kMaxReplies; ++it, ++sent) {
    P2b vote;
    vote.group = group_;
    vote.ballot = it->second.vballot;
    vote.instance = it->first;
    vote.acceptor = ctx.self();
    vote.value = it->second.value;
    ctx.send(from, Message{vote});
  }
  // A far-behind learner would otherwise wait out its full retry interval
  // per 128-instance batch; tell it where this batch stopped so it can
  // re-poll immediately.
  if (it != accepted_.end()) {
    ctx.send(from, Message{P2bMore{group_, it->first}});
  }
}

void Acceptor::install(Context& ctx, InstanceId inst,
                       const std::vector<std::byte>& value) {
  if (inst < pruned_below_) return;
  auto [it, fresh] = accepted_.try_emplace(inst);
  if (!fresh) return;  // the live entry carries a real ballot; keep it
  // Ballot (0,0) marks "learned via repair": any later real accept or P1b
  // adoption supersedes it, and since only decided values are installed the
  // value can never differ from what a quorum converges on. Learners treat
  // a replayed round-0 vote as decided outright (no quorum), so catch-up
  // cannot stall on votes split between the sentinel and the real ballot.
  it->second = AcceptedValue{Ballot{}, value};
  if (storage::NodeStorage* st = ctx.storage()) {
    st->log_accept(group_, inst, Ballot{}, value);
    st->commit();
  }
}

std::size_t Acceptor::prune_below(Context& ctx, InstanceId floor) {
  if (floor <= pruned_below_) return 0;
  pruned_below_ = floor;
  const auto end = accepted_.lower_bound(floor);
  const auto n =
      static_cast<std::size_t>(std::distance(accepted_.begin(), end));
  accepted_.erase(accepted_.begin(), end);
  if (storage::NodeStorage* st = ctx.storage()) {
    // Losing this record to a crash only resurrects already-pruned entries
    // on recovery — wasteful, never unsafe — so the erase need not gate.
    st->log_prune_accepted(group_, floor);
    st->commit();
  }
  return n;
}

}  // namespace fastcast::paxos
