#include "fastcast/paxos/leader_elector.hpp"

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"

namespace fastcast::paxos {

LeaderElector::LeaderElector(Config config) : config_(std::move(config)) {
  FC_ASSERT(!config_.members.empty());
}

NodeId LeaderElector::leader() const {
  return config_.members[epoch_ % config_.members.size()];
}

void LeaderElector::on_start(Context& ctx) {
  if (!config_.heartbeats) return;
  last_heard_ = ctx.now();
  if (is_self_leader(ctx)) arm_heartbeat(ctx);
  arm_monitor(ctx);
}

void LeaderElector::arm_heartbeat(Context& ctx) {
  ctx.set_timer(config_.heartbeat_interval, [this, &ctx] {
    if (!is_self_leader(ctx)) return;  // demoted meanwhile
    FdHeartbeat hb{config_.group, ctx.self(), epoch_};
    for (NodeId n : config_.members) {
      if (n != ctx.self()) ctx.send(n, Message{hb});
    }
    arm_heartbeat(ctx);
  });
}

void LeaderElector::arm_monitor(Context& ctx) {
  ctx.set_timer(config_.timeout, [this, &ctx] {
    if (!is_self_leader(ctx) && ctx.now() - last_heard_ >= config_.timeout) {
      advance_epoch(ctx, epoch_ + 1);
    }
    arm_monitor(ctx);
  });
}

void LeaderElector::advance_epoch(Context& ctx, std::uint64_t epoch) {
  if (epoch <= epoch_) return;
  epoch_ = epoch;
  last_heard_ = ctx.now();
  FC_INFO("group %u node %u: leader epoch -> %llu (leader %u)", config_.group,
          ctx.self(), static_cast<unsigned long long>(epoch_), leader());
  if (is_self_leader(ctx)) arm_heartbeat(ctx);
  if (on_change_) on_change_(ctx, leader(), epoch_);
}

bool LeaderElector::handle(Context& ctx, NodeId from, const Message& msg) {
  const auto* hb = std::get_if<FdHeartbeat>(&msg.payload);
  if (hb == nullptr || hb->group != config_.group) return false;
  (void)from;
  if (hb->epoch > epoch_) {
    advance_epoch(ctx, hb->epoch);
  } else if (hb->epoch == epoch_ && hb->from == leader()) {
    last_heard_ = ctx.now();
  }
  return true;
}

}  // namespace fastcast::paxos
