#include "fastcast/paxos/leader_elector.hpp"

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast::paxos {

LeaderElector::LeaderElector(Config config) : config_(std::move(config)) {
  FC_ASSERT(!config_.members.empty());
}

NodeId LeaderElector::leader() const {
  return config_.members[epoch_ % config_.members.size()];
}

void LeaderElector::on_start(Context& ctx) {
  if (!config_.heartbeats) return;
  last_heard_ = ctx.now();
  if (is_self_leader(ctx)) arm_heartbeat(ctx);
  arm_monitor(ctx);
}

void LeaderElector::on_recover(Context& ctx) {
  // Timers died with the crash; the armed flags would otherwise keep both
  // chains permanently disarmed. The generation bump kills chain callbacks
  // that survive the restart in environments with persistent timer maps.
  ++timer_generation_;
  hb_armed_ = false;
  monitor_armed_ = false;
  on_start(ctx);
}

void LeaderElector::arm_heartbeat(Context& ctx) {
  if (hb_armed_) return;  // exactly one chain, even across re-promotions
  hb_armed_ = true;
  const std::uint64_t gen = timer_generation_;
  ctx.set_timer(config_.heartbeat_interval, [this, &ctx, gen] {
    if (gen != timer_generation_) return;  // stale pre-recovery chain
    hb_armed_ = false;
    if (!is_self_leader(ctx)) return;  // demoted meanwhile; chain ends here
    FdHeartbeat hb{config_.group, ctx.self(), epoch_};
    for (NodeId n : config_.members) {
      if (n != ctx.self()) ctx.send(n, Message{hb});
    }
    arm_heartbeat(ctx);
  });
}

void LeaderElector::arm_monitor(Context& ctx) {
  if (monitor_armed_) return;
  monitor_armed_ = true;
  const std::uint64_t gen = timer_generation_;
  ctx.set_timer(config_.timeout, [this, &ctx, gen] {
    if (gen != timer_generation_) return;
    monitor_armed_ = false;
    if (!is_self_leader(ctx) && ctx.now() - last_heard_ >= config_.timeout) {
      if (auto* o = ctx.obs()) o->metrics.counter("paxos.suspicions").inc();
      advance_epoch(ctx, epoch_ + 1);
    }
    arm_monitor(ctx);
  });
}

void LeaderElector::advance_epoch(Context& ctx, std::uint64_t epoch) {
  if (epoch <= epoch_) return;
  const Time heard_gap = ctx.now() - last_heard_;
  epoch_ = epoch;
  last_heard_ = ctx.now();
  FC_INFO("group %u node %u: leader epoch -> %llu (leader %u)", config_.group,
          ctx.self(), static_cast<unsigned long long>(epoch_), leader());
  if (auto* o = ctx.obs()) {
    o->metrics.counter("paxos.leader_failovers").inc();
    if (is_self_leader(ctx)) {
      // Failover latency as the new leader observes it: time since the old
      // leader was last heard until this node took over.
      o->metrics.histogram("paxos.failover_latency_ns").observe(heard_gap);
    }
  }
  if (is_self_leader(ctx)) arm_heartbeat(ctx);
  if (on_change_) on_change_(ctx, leader(), epoch_);
}

bool LeaderElector::handle(Context& ctx, NodeId from, const Message& msg) {
  const auto* hb = std::get_if<FdHeartbeat>(&msg.payload);
  if (hb == nullptr || hb->group != config_.group) return false;
  (void)from;
  if (hb->epoch > epoch_) {
    advance_epoch(ctx, hb->epoch);
  } else if (hb->epoch == epoch_ && hb->from == leader()) {
    last_heard_ = ctx.now();
  }
  return true;
}

}  // namespace fastcast::paxos
