#include "fastcast/paxos/group_consensus.hpp"

#include <algorithm>

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast::paxos {

std::vector<NodeId> GroupConsensus::all_learners(const Config& config) {
  std::vector<NodeId> out = config.members;
  out.insert(out.end(), config.extra_learners.begin(), config.extra_learners.end());
  return out;
}

GroupConsensus::GroupConsensus(Config config, NodeId self)
    : config_(std::move(config)),
      self_(self),
      acceptor_(config_.group, all_learners(config_)),
      learner_(config_.members.size() / 2 + 1),
      proposer_(Proposer::Config{
          .group = config_.group,
          .acceptors = config_.members,
          .quorum = config_.members.size() / 2 + 1,
          .window = config_.window,
          .reliable_links = config_.reliable_links,
          .retry_interval = config_.retry_interval,
      }),
      elector_(LeaderElector::Config{
          .group = config_.group,
          .members = config_.members,
          .heartbeats = config_.heartbeats,
          .heartbeat_interval = config_.heartbeat_interval,
          .timeout = config_.election_timeout,
      }) {
  FC_ASSERT(!config_.members.empty());

  // Stable-leader deployment: every acceptor pre-promises ballot
  // (1, members[0]) so the initial leader streams Phase 2 from the start.
  const Ballot initial{1, config_.members.front()};
  acceptor_.set_initial_promise(initial);
  if (self_ == config_.members.front()) {
    proposer_.assume_stable_leadership(1, self_);
  }

  if (is_member(self_)) {
    learner_.set_decided_observer(
        [this](InstanceId inst, const std::vector<std::byte>& value) {
          FC_ASSERT_MSG(ctx_ != nullptr, "decision before on_start");
          if (auto* o = ctx_->obs()) {
            o->metrics.counter("paxos.decisions").inc();
          }
          proposer_.on_decided(*ctx_, inst, value);
        });
    proposer_.set_first_undecided_provider(
        [this] { return learner_.next_to_deliver(); });
  }

  elector_.set_on_change([this](Context& ctx, NodeId new_leader, std::uint64_t epoch) {
    if (new_leader == self_ && is_member(self_)) {
      proposer_.start_leadership(ctx, static_cast<std::uint32_t>(epoch + 1),
                                 learner_.next_to_deliver());
    } else {
      proposer_.resign();
    }
    if (on_leader_change_) on_leader_change_(ctx, new_leader);
  });
}

bool GroupConsensus::is_member(NodeId n) const {
  return std::find(config_.members.begin(), config_.members.end(), n) !=
         config_.members.end();
}

void GroupConsensus::restore_durable(
    const storage::DurableState::GroupState* durable) {
  recovered_from_storage_ = true;
  if (durable == nullptr) return;  // cold start: stable-leader fast path holds
  acceptor_.restore(*durable);
  must_reestablish_ = true;
  // Every ballot the dead incarnation externalized is covered by a durable
  // promise record (acceptor replies and proposer P1a sends are both gated
  // on one), so promised.round is an upper bound on the wire history.
  std::uint32_t round = durable->promised.round;
  for (const auto& [inst, acc] : durable->accepted) {
    round = std::max(round, acc.ballot.round);
  }
  recover_round_ = std::max<std::uint32_t>(round + 1, 2);
  proposer_.set_round_floor(recover_round_);
}

void GroupConsensus::on_start(Context& ctx) {
  ctx_ = &ctx;
  elector_.on_start(ctx);
  if (is_member(self_)) proposer_.on_start(ctx);
  // Over lossy links a learner can permanently miss a quorum of P2b votes
  // (the proposer stops retrying once *it* has learned); poll acceptors
  // for anything at or beyond our next undecided instance. A storage-
  // recovered instance polls even over reliable links: its learner starts
  // empty and must relearn every decided instance from the acceptors.
  if (!config_.reliable_links || recovered_from_storage_) arm_catch_up(ctx);
  reestablish_leadership(ctx);
}

void GroupConsensus::on_recover(Context& ctx) {
  ctx_ = &ctx;
  elector_.on_recover(ctx);
  if (is_member(self_)) proposer_.on_recover(ctx);
  catch_up_armed_ = false;
  if (!config_.reliable_links || recovered_from_storage_) arm_catch_up(ctx);
  reestablish_leadership(ctx);
}

void GroupConsensus::reestablish_leadership(Context& ctx) {
  if (!must_reestablish_) return;
  must_reestablish_ = false;
  if (!is_member(self_)) return;
  // A node restarted from its WAL cannot resume the constructor's
  // pre-promised steady phase: the proposer's instance tracking is not
  // persisted, so streaming Phase 2 at the old ballot would reuse
  // instances the dead incarnation already filled — at an equal ballot,
  // which acceptors overwrite and learners mis-decide. Re-run Phase 1 at
  // recover_round_; the promise quorum reveals every accepted instance
  // and re-drives it before anything new enters the stream.
  if (elector_.is_self_leader(ctx)) {
    proposer_.start_leadership(ctx, recover_round_, learner_.next_to_deliver());
  } else {
    proposer_.resign();
  }
}

void GroupConsensus::arm_catch_up(Context& ctx) {
  if (catch_up_armed_) return;  // one chain even if on_start runs twice
  catch_up_armed_ = true;
  ctx.set_timer(config_.retry_interval, [this, &ctx] {
    catch_up_armed_ = false;
    const P2bRequest req{config_.group, learner_.next_to_deliver()};
    for (NodeId member : config_.members) {
      if (member != self_) ctx.send(member, Message{req});
    }
    arm_catch_up(ctx);
  });
}

void GroupConsensus::propose(Context& ctx, std::vector<std::byte> value) {
  if (!is_member(self_) || !elector_.is_self_leader(ctx)) return;
  if (auto* o = ctx.obs()) {
    o->metrics.counter("paxos.proposals").inc();
  }
  proposer_.propose(ctx, std::move(value));
}

bool GroupConsensus::handle(Context& ctx, NodeId from, const Message& msg) {
  if (const auto* p1a = std::get_if<P1a>(&msg.payload)) {
    if (p1a->group != config_.group) return false;
    if (is_member(self_)) acceptor_.on_p1a(ctx, from, *p1a);
    return true;
  }
  if (const auto* p1b = std::get_if<P1b>(&msg.payload)) {
    if (p1b->group != config_.group) return false;
    proposer_.on_p1b(ctx, from, *p1b);
    return true;
  }
  if (const auto* p2a = std::get_if<P2a>(&msg.payload)) {
    if (p2a->group != config_.group) return false;
    if (is_member(self_)) acceptor_.on_p2a(ctx, from, *p2a);
    return true;
  }
  if (const auto* p2b = std::get_if<P2b>(&msg.payload)) {
    if (p2b->group != config_.group) return false;
    learner_.on_p2b(ctx, *p2b);
    return true;
  }
  if (const auto* nack = std::get_if<PaxosNack>(&msg.payload)) {
    if (nack->group != config_.group) return false;
    proposer_.on_nack(ctx, *nack);
    return true;
  }
  if (const auto* req = std::get_if<P2bRequest>(&msg.payload)) {
    if (req->group != config_.group) return false;
    if (is_member(self_)) acceptor_.on_p2b_request(ctx, from, *req);
    return true;
  }
  if (const auto* hb = std::get_if<FdHeartbeat>(&msg.payload)) {
    if (hb->group != config_.group) return false;
    return elector_.handle(ctx, from, msg);
  }
  return false;
}

}  // namespace fastcast::paxos
