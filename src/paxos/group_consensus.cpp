#include "fastcast/paxos/group_consensus.hpp"

#include <algorithm>

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast::paxos {

std::vector<NodeId> GroupConsensus::all_learners(const Config& config) {
  std::vector<NodeId> out = config.members;
  out.insert(out.end(), config.extra_learners.begin(), config.extra_learners.end());
  return out;
}

GroupConsensus::GroupConsensus(Config config, NodeId self)
    : config_(std::move(config)),
      self_(self),
      acceptor_(config_.group, all_learners(config_)),
      learner_(config_.members.size() / 2 + 1),
      proposer_(Proposer::Config{
          .group = config_.group,
          .acceptors = config_.members,
          .quorum = config_.members.size() / 2 + 1,
          .window = config_.window,
          .reliable_links = config_.reliable_links,
          .retry_interval = config_.retry_interval,
      }),
      elector_(LeaderElector::Config{
          .group = config_.group,
          .members = config_.members,
          .heartbeats = config_.heartbeats,
          .heartbeat_interval = config_.heartbeat_interval,
          .timeout = config_.election_timeout,
      }) {
  FC_ASSERT(!config_.members.empty());

  // Stable-leader deployment: every acceptor pre-promises ballot
  // (1, members[0]) so the initial leader streams Phase 2 from the start.
  const Ballot initial{1, config_.members.front()};
  acceptor_.set_initial_promise(initial);
  if (self_ == config_.members.front()) {
    proposer_.assume_stable_leadership(1, self_);
  }

  if (is_member(self_)) {
    learner_.set_decided_observer(
        [this](InstanceId inst, const std::vector<std::byte>& value) {
          FC_ASSERT_MSG(ctx_ != nullptr, "decision before on_start");
          if (auto* o = ctx_->obs()) {
            o->metrics.counter("paxos.decisions").inc();
          }
          proposer_.on_decided(*ctx_, inst, value);
          // Members retain decided values so they can serve repair
          // transfers; the log trims at the group's prune floor.
          if (repair_) repair_->note_decided(inst, value);
        });
    proposer_.set_first_undecided_provider(
        [this] { return learner_.next_to_deliver(); });
  }

  if (config_.repair.enable) {
    repair::RepairCoordinator::Config rc;
    rc.group = config_.group;
    rc.self = self_;
    rc.members = config_.members;
    rc.learners = all_learners(config_);
    rc.options = config_.repair;
    repair::RepairCoordinator::Hooks hooks;
    hooks.settled = [this] {
      return settled_provider_
                 ? settled_provider_()
                 : repair::Settled{learner_.next_to_deliver(), 0};
    };
    hooks.frontier = [this] { return learner_.next_to_deliver(); };
    hooks.install = [this](Context& ctx, InstanceId inst,
                           const std::vector<std::byte>& value) {
      return install_decided(ctx, inst, value);
    };
    hooks.prune = [this](Context& ctx, InstanceId floor) {
      if (is_member(self_)) acceptor_.prune_below(ctx, floor);
    };
    hooks.kick_tail = [this](Context& ctx) { arm_catch_up(ctx); };
    repair_ = std::make_unique<repair::RepairCoordinator>(std::move(rc),
                                                          std::move(hooks));
  }

  elector_.set_on_change([this](Context& ctx, NodeId new_leader, std::uint64_t epoch) {
    if (new_leader == self_ && is_member(self_)) {
      proposer_.start_leadership(ctx, static_cast<std::uint32_t>(epoch + 1),
                                 learner_.next_to_deliver());
    } else {
      proposer_.resign();
    }
    if (on_leader_change_) on_leader_change_(ctx, new_leader);
  });
}

bool GroupConsensus::is_member(NodeId n) const {
  return std::find(config_.members.begin(), config_.members.end(), n) !=
         config_.members.end();
}

void GroupConsensus::restore_durable(
    const storage::DurableState::GroupState* durable) {
  recovered_from_storage_ = true;
  if (durable == nullptr) return;  // cold start: stable-leader fast path holds
  acceptor_.restore(*durable);
  // Resume learning at the durable settled frontier: every skipped
  // instance is fully reflected in the durable delivered set (that is what
  // "settled" means), and below the group's prune floor — which the
  // announced settled frontier bounds from above — no peer retains the
  // entries to relearn anyway.
  learner_.set_start(durable->settled);
  if (repair_) repair_->restore_durable_settled(durable->settled);
  must_reestablish_ = true;
  // Every ballot the dead incarnation externalized is covered by a durable
  // promise record (acceptor replies and proposer P1a sends are both gated
  // on one), so promised.round is an upper bound on the wire history.
  std::uint32_t round = durable->promised.round;
  for (const auto& [inst, acc] : durable->accepted) {
    round = std::max(round, acc.ballot.round);
  }
  recover_round_ = std::max<std::uint32_t>(round + 1, 2);
  proposer_.set_round_floor(recover_round_);
}

void GroupConsensus::on_start(Context& ctx) {
  ctx_ = &ctx;
  elector_.on_start(ctx);
  if (is_member(self_)) proposer_.on_start(ctx);
  if (repair_) repair_->on_start(ctx);
  // Over lossy links a learner can permanently miss a quorum of P2b votes
  // (the proposer stops retrying once *it* has learned); poll acceptors
  // for anything at or beyond our next undecided instance. A storage-
  // recovered instance polls even over reliable links: its learner starts
  // empty and must relearn every decided instance from the acceptors.
  if (!config_.reliable_links || recovered_from_storage_) arm_catch_up(ctx);
  reestablish_leadership(ctx);
}

void GroupConsensus::on_recover(Context& ctx) {
  ctx_ = &ctx;
  elector_.on_recover(ctx);
  if (is_member(self_)) proposer_.on_recover(ctx);
  if (repair_) repair_->on_recover(ctx);
  catch_up_armed_ = false;
  if (!config_.reliable_links || recovered_from_storage_) arm_catch_up(ctx);
  reestablish_leadership(ctx);
}

void GroupConsensus::reestablish_leadership(Context& ctx) {
  if (!must_reestablish_) return;
  must_reestablish_ = false;
  if (!is_member(self_)) return;
  // A node restarted from its WAL cannot resume the constructor's
  // pre-promised steady phase: the proposer's instance tracking is not
  // persisted, so streaming Phase 2 at the old ballot would reuse
  // instances the dead incarnation already filled — at an equal ballot,
  // which acceptors overwrite and learners mis-decide. Re-run Phase 1 at
  // recover_round_; the promise quorum reveals every accepted instance
  // and re-drives it before anything new enters the stream.
  if (elector_.is_self_leader(ctx)) {
    proposer_.start_leadership(ctx, recover_round_, learner_.next_to_deliver());
  } else {
    proposer_.resign();
  }
}

void GroupConsensus::arm_catch_up(Context& ctx) {
  if (catch_up_armed_) return;  // one chain even if on_start runs twice
  catch_up_armed_ = true;
  // Polls that make no progress back off exponentially (a far-behind
  // learner is driven by P2bMore continuation hints instead, and an idle
  // group has nothing new to poll for); any progress snaps back to the
  // base interval.
  ctx.set_timer(config_.retry_interval * catch_up_backoff_, [this, &ctx] {
    catch_up_armed_ = false;
    const InstanceId next = learner_.next_to_deliver();
    if (next > catch_up_last_frontier_) {
      catch_up_backoff_ = 1;
    } else if (catch_up_backoff_ < kMaxCatchUpBackoff) {
      catch_up_backoff_ *= 2;
    }
    catch_up_last_frontier_ = next;
    const P2bRequest req{config_.group, next};
    for (NodeId member : config_.members) {
      if (member != self_) ctx.send(member, Message{req});
    }
    arm_catch_up(ctx);
  });
}

bool GroupConsensus::install_decided(Context& ctx, InstanceId inst,
                                     const std::vector<std::byte>& value) {
  if (learner_.is_decided(inst)) return false;
  // Members also adopt the entry into their acceptor (logged when durable)
  // so the repaired node can in turn serve catch-up and later repairs.
  if (is_member(self_)) acceptor_.install(ctx, inst, value);
  return learner_.force_decided(ctx, inst, value);
}

void GroupConsensus::propose(Context& ctx, std::vector<std::byte> value) {
  if (!is_member(self_) || !elector_.is_self_leader(ctx)) return;
  if (auto* o = ctx.obs()) {
    o->metrics.counter("paxos.proposals").inc();
  }
  proposer_.propose(ctx, std::move(value));
}

bool GroupConsensus::handle(Context& ctx, NodeId from, const Message& msg) {
  if (const auto* p1a = std::get_if<P1a>(&msg.payload)) {
    if (p1a->group != config_.group) return false;
    if (is_member(self_)) acceptor_.on_p1a(ctx, from, *p1a);
    return true;
  }
  if (const auto* p1b = std::get_if<P1b>(&msg.payload)) {
    if (p1b->group != config_.group) return false;
    proposer_.on_p1b(ctx, from, *p1b);
    return true;
  }
  if (const auto* p2a = std::get_if<P2a>(&msg.payload)) {
    if (p2a->group != config_.group) return false;
    if (is_member(self_)) acceptor_.on_p2a(ctx, from, *p2a);
    return true;
  }
  if (const auto* p2b = std::get_if<P2b>(&msg.payload)) {
    if (p2b->group != config_.group) return false;
    learner_.on_p2b(ctx, *p2b);
    return true;
  }
  if (const auto* nack = std::get_if<PaxosNack>(&msg.payload)) {
    if (nack->group != config_.group) return false;
    proposer_.on_nack(ctx, *nack);
    return true;
  }
  if (const auto* req = std::get_if<P2bRequest>(&msg.payload)) {
    if (req->group != config_.group) return false;
    if (is_member(self_)) acceptor_.on_p2b_request(ctx, from, *req);
    return true;
  }
  if (const auto* hb = std::get_if<FdHeartbeat>(&msg.payload)) {
    if (hb->group != config_.group) return false;
    return elector_.handle(ctx, from, msg);
  }
  if (const auto* more = std::get_if<P2bMore>(&msg.payload)) {
    if (more->group != config_.group) return false;
    // Continuation hint: the acceptor's reply batch was capped. Re-poll it
    // immediately — but at most once per frontier value, so a gap that no
    // reply can fill falls back to the backed-off timer instead of
    // ping-ponging at network speed.
    const InstanceId next = learner_.next_to_deliver();
    if (next != more_polled_) {
      more_polled_ = next;
      ctx.send(from, Message{P2bRequest{config_.group, next}});
    }
    return true;
  }
  const auto* ann = std::get_if<WatermarkAnnounce>(&msg.payload);
  const auto* rreq = std::get_if<RepairRequest>(&msg.payload);
  const auto* rsnap = std::get_if<RepairSnapshot>(&msg.payload);
  if (ann != nullptr || rreq != nullptr || rsnap != nullptr) {
    const GroupId g = ann != nullptr    ? ann->group
                      : rreq != nullptr ? rreq->group
                                        : rsnap->group;
    if (g != config_.group) return false;
    // With repair disabled the traffic is still ours — consume it so it
    // does not surface as unroutable.
    if (repair_ != nullptr) repair_->handle(ctx, from, msg);
    return true;
  }
  return false;
}

}  // namespace fastcast::paxos
