#include "fastcast/storage/storage.hpp"

#include <charconv>
#include <chrono>

#include "fastcast/common/assert.hpp"
#include "fastcast/obs/metrics.hpp"

namespace fastcast::storage {

// ---------------------------------------------------------------------------
// FsyncPolicy
// ---------------------------------------------------------------------------

std::optional<FsyncPolicy> FsyncPolicy::parse(std::string_view text) {
  FsyncPolicy p;
  if (text == "always") {
    p.mode = Mode::kAlways;
    return p;
  }
  if (text == "never" || text == "never-for-sim") {
    p.mode = Mode::kNever;
    return p;
  }
  if (text == "batch") {
    p.mode = Mode::kBatch;
    return p;
  }
  if (text.starts_with("batch:")) {
    p.mode = Mode::kBatch;
    std::string_view rest = text.substr(6);
    const std::size_t colon = rest.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    std::uint64_t n = 0;
    std::int64_t t_ms = 0;
    auto [p1, e1] = std::from_chars(rest.data(), rest.data() + colon, n);
    if (e1 != std::errc{} || p1 != rest.data() + colon || n == 0) {
      return std::nullopt;
    }
    const std::string_view t = rest.substr(colon + 1);
    auto [p2, e2] = std::from_chars(t.data(), t.data() + t.size(), t_ms);
    if (e2 != std::errc{} || p2 != t.data() + t.size() || t_ms <= 0) {
      return std::nullopt;
    }
    p.batch_records = n;
    p.batch_interval = milliseconds(t_ms);
    return p;
  }
  return std::nullopt;
}

std::string FsyncPolicy::to_string() const {
  switch (mode) {
    case Mode::kAlways: return "always";
    case Mode::kNever: return "never";
    case Mode::kBatch:
      return "batch:" + std::to_string(batch_records) + ":" +
             std::to_string(batch_interval / kMillisecond);
  }
  return "always";
}

// ---------------------------------------------------------------------------
// NodeStorage
// ---------------------------------------------------------------------------

NodeStorage::NodeStorage(std::unique_ptr<StorageBackend> backend, Config config)
    : backend_(std::move(backend)),
      config_(config),
      wal_(backend_.get(), config.segment_bytes),
      snapshots_(backend_.get()) {
  // A fresh handle starts by recovering whatever the backend already holds
  // — an empty dir is just the degenerate cold-start case.
  reset_and_recover();
}

NodeStorage::~NodeStorage() = default;

void NodeStorage::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
}

Lsn NodeStorage::append(const WalRecord& rec) {
  const Lsn lsn = wal_.append(rec);
  state_.apply(rec);
  ++records_since_snapshot_;
  if (metrics_ != nullptr) metrics_->counter("storage.appends").inc();
  return lsn;
}

Lsn NodeStorage::log_promise(GroupId group, Ballot ballot) {
  return append(WalRecord::promise(group, ballot));
}

Lsn NodeStorage::log_accept(GroupId group, InstanceId instance, Ballot ballot,
                            std::span<const std::byte> value) {
  return append(WalRecord::accept(group, instance, ballot, value));
}

Lsn NodeStorage::log_rm_next_seq(NodeId dest, std::uint64_t next) {
  return append(WalRecord::rm_next_seq(dest, next));
}

Lsn NodeStorage::log_rm_stage(NodeId dest, std::uint64_t seq,
                              std::span<const std::byte> frame) {
  return append(WalRecord::rm_stage(dest, seq, frame));
}

Lsn NodeStorage::log_rm_settle(NodeId dest, std::uint64_t seq) {
  return append(WalRecord::rm_settle(dest, seq));
}

Lsn NodeStorage::log_rm_progress(NodeId origin, std::uint64_t next_expected) {
  return append(WalRecord::rm_progress(origin, next_expected));
}

Lsn NodeStorage::log_delivered(MsgId mid) {
  return append(WalRecord::delivered(mid));
}

Lsn NodeStorage::log_body(MsgId mid, std::span<const std::byte> encoded) {
  return append(WalRecord::body(mid, encoded));
}

Lsn NodeStorage::log_settled(GroupId group, InstanceId frontier,
                             std::uint64_t clock) {
  return append(WalRecord::settled(group, frontier, clock));
}

Lsn NodeStorage::log_prune_accepted(GroupId group, InstanceId floor) {
  return append(WalRecord::prune_accepted(group, floor));
}

Lsn NodeStorage::log_repair_install(GroupId group, InstanceId from,
                                    InstanceId through) {
  return append(WalRecord::repair_install(group, from, through));
}

void NodeStorage::when_durable(Lsn lsn, std::function<void()> fn) {
  if (lsn <= wal_.durable_lsn()) {
    fn();
    return;
  }
  if (metrics_ != nullptr) metrics_->counter("storage.gated").inc();
  gated_.push_back(Gated{lsn, std::move(fn)});
}

void NodeStorage::commit() {
  switch (config_.fsync.mode) {
    case FsyncPolicy::Mode::kAlways:
      flush();
      break;
    case FsyncPolicy::Mode::kBatch:
      if (wal_.pending_records() >= config_.fsync.batch_records) flush();
      break;
    case FsyncPolicy::Mode::kNever:
      wal_.commit_all(false);
      release_gated();
      maybe_snapshot();
      break;
  }
}

void NodeStorage::flush() {
  const std::uint64_t batch = wal_.pending_records();
  const bool fsync = config_.fsync.mode != FsyncPolicy::Mode::kNever;
  if (batch > 0) {
    if (metrics_ != nullptr) {
      const auto t0 = std::chrono::steady_clock::now();
      wal_.commit_all(fsync);
      const auto t1 = std::chrono::steady_clock::now();
      metrics_->histogram("storage.commit_latency_ns")
          .observe(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                       .count());
      metrics_->histogram("storage.batch_commit_records")
          .observe(static_cast<std::int64_t>(batch));
      if (fsync) metrics_->counter("storage.fsyncs").inc();
    } else {
      wal_.commit_all(fsync);
    }
  }
  release_gated();
  maybe_snapshot();
}

void NodeStorage::release_gated() {
  if (releasing_) return;  // a released closure logged + committed; the
                           // outer loop will drain the rest
  releasing_ = true;
  while (!gated_.empty() && gated_.front().lsn <= wal_.durable_lsn()) {
    auto fn = std::move(gated_.front().fn);
    gated_.pop_front();
    fn();
  }
  releasing_ = false;
}

void NodeStorage::drop_pending() { gated_.clear(); }

void NodeStorage::on_crash(Rng* torn_rng) {
  backend_->drop_unsynced(torn_rng);
  gated_.clear();
}

const DurableState& NodeStorage::reset_and_recover() {
  state_ = DurableState{};
  in_doubt_.clear();
  std::uint64_t rejected = 0;
  snapshot_lsn_ = snapshots_.load_latest(state_, &rejected);
  const WalReplayStats stats =
      wal_.open(snapshot_lsn_, [this](Lsn, const WalRecord& rec) {
        if (rec.type == WalRecordType::kDelivered) {
          // The body must be grabbed before apply() — delivery is what
          // garbage-collects it from the durable fold.
          InDoubtDelivery d;
          d.mid = rec.seq;
          if (const auto it = state_.bodies.find(d.mid);
              it != state_.bodies.end()) {
            d.body = it->second;
          }
          in_doubt_.push_back(std::move(d));
        }
        state_.apply(rec);
      });

  recovery_info_.snapshot_lsn = snapshot_lsn_;
  recovery_info_.snapshots_rejected = rejected;
  recovery_info_.replay = stats;
  ++recovery_info_.recoveries;
  records_since_snapshot_ =
      wal_.last_lsn() > snapshot_lsn_ ? wal_.last_lsn() - snapshot_lsn_ : 0;
  gated_.clear();

  if (metrics_ != nullptr) {
    metrics_->counter("storage.recoveries").inc();
    metrics_->counter("storage.replayed_records").inc(stats.replayed);
    metrics_->counter("storage.checksum_rejections")
        .inc(stats.checksum_rejections + rejected);
    if (stats.torn_tail) metrics_->counter("storage.torn_tails").inc();
  }
  return state_;
}

void NodeStorage::maybe_snapshot() {
  if (records_since_snapshot_ < config_.snapshot_every) return;
  // Only a fully committed prefix may be snapshotted: state_ folds every
  // appended record, so the watermark is sound only when nothing is pending.
  if (wal_.durable_lsn() != wal_.last_lsn()) return;
  const Lsn at = wal_.last_lsn();
  snapshots_.write(at, state_);
  const std::size_t truncated = wal_.truncate_through(at);
  snapshot_lsn_ = at;
  records_since_snapshot_ = 0;
  ++snapshots_taken_;
  if (metrics_ != nullptr) {
    metrics_->counter("storage.snapshots").inc();
    metrics_->counter("storage.truncated_segments").inc(truncated);
  }
}

// ---------------------------------------------------------------------------
// StorageManager
// ---------------------------------------------------------------------------

NodeStorage* StorageManager::node(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(id);
  if (it != nodes_.end()) return it->second.get();
  std::unique_ptr<StorageBackend> backend;
  if (file_backed()) {
    backend = std::make_unique<FileBackend>(config_.wal_dir + "/node-" +
                                            std::to_string(id));
  } else {
    backend = std::make_unique<MemBackend>();
  }
  auto storage = std::make_unique<NodeStorage>(std::move(backend), config_.node);
  storage->set_metrics(metrics_);
  NodeStorage* raw = storage.get();
  nodes_.emplace(id, std::move(storage));
  return raw;
}

void StorageManager::set_metrics(obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_ = metrics;
  for (auto& [id, storage] : nodes_) storage->set_metrics(metrics);
}

}  // namespace fastcast::storage
