#include "fastcast/storage/backend.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"

namespace fastcast::storage {

// ---------------------------------------------------------------------------
// MemBackend
// ---------------------------------------------------------------------------

std::vector<std::string> MemBackend::list() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, file] : files_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

bool MemBackend::read(const std::string& name, std::vector<std::byte>& out) const {
  auto it = files_.find(name);
  if (it == files_.end()) return false;
  // A live reader sees everything written, synced or not — exactly like a
  // process re-reading its own buffered writes through the page cache.
  out = it->second.durable;
  out.insert(out.end(), it->second.pending.begin(), it->second.pending.end());
  return true;
}

void MemBackend::append(const std::string& name, std::span<const std::byte> data) {
  auto& file = files_[name];
  file.pending.insert(file.pending.end(), data.begin(), data.end());
}

void MemBackend::sync(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) return;
  auto& file = it->second;
  file.durable.insert(file.durable.end(), file.pending.begin(), file.pending.end());
  file.pending.clear();
}

void MemBackend::write_atomic(const std::string& name,
                              std::span<const std::byte> data) {
  auto& file = files_[name];
  file.durable.assign(data.begin(), data.end());
  file.pending.clear();
}

void MemBackend::remove(const std::string& name) { files_.erase(name); }

void MemBackend::drop_unsynced(Rng* torn_rng) {
  for (auto& [name, file] : files_) {
    if (file.pending.empty()) continue;
    // Model sequential disk writes: a random *prefix* of the unsynced
    // bytes may have reached the platter before the kill, possibly
    // cutting a record in half (the torn tail recovery must repair).
    std::size_t keep = 0;
    if (torn_rng != nullptr) {
      keep = static_cast<std::size_t>(
          torn_rng->uniform(static_cast<std::uint64_t>(file.pending.size()) + 1));
    }
    file.durable.insert(file.durable.end(), file.pending.begin(),
                        file.pending.begin() + static_cast<std::ptrdiff_t>(keep));
    file.pending.clear();
  }
}

std::size_t MemBackend::pending_bytes() const {
  std::size_t total = 0;
  for (const auto& [name, file] : files_) total += file.pending.size();
  return total;
}

// ---------------------------------------------------------------------------
// FileBackend
// ---------------------------------------------------------------------------

namespace {

void make_dirs(const std::string& path) {
  std::string partial;
  partial.reserve(path.size());
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      partial.push_back(path[i]);
      continue;
    }
    if (!partial.empty() && partial != "/" && partial != ".") {
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        FC_ASSERT_MSG(false, "mkdir failed");
      }
    }
    if (i < path.size()) partial.push_back('/');
  }
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

bool write_all(int fd, std::span<const std::byte> data) {
  const auto* p = reinterpret_cast<const char*>(data.data());
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FileBackend::FileBackend(std::string dir) : dir_(std::move(dir)) {
  FC_ASSERT_MSG(!dir_.empty(), "FileBackend needs a directory");
  make_dirs(dir_);
}

FileBackend::~FileBackend() {
  for (auto& [name, fd] : fds_) ::close(fd);
}

std::string FileBackend::path_of(const std::string& name) const {
  return dir_ + "/" + name;
}

int FileBackend::fd_for(const std::string& name) {
  auto it = fds_.find(name);
  if (it != fds_.end()) return it->second;
  const int fd =
      ::open(path_of(name).c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  FC_ASSERT_MSG(fd >= 0, "cannot open wal file for append");
  fds_.emplace(name, fd);
  return fd;
}

void FileBackend::drop_fd(const std::string& name) {
  auto it = fds_.find(name);
  if (it == fds_.end()) return;
  ::close(it->second);
  fds_.erase(it);
}

std::vector<std::string> FileBackend::list() const {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return names;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    if (name.size() >= 4 && name.ends_with(".tmp")) continue;  // aborted write_atomic
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

bool FileBackend::read(const std::string& name, std::vector<std::byte>& out) const {
  const int fd = ::open(path_of(name).c_str(), O_RDONLY);
  if (fd < 0) return false;
  out.clear();
  std::byte buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return true;
}

void FileBackend::append(const std::string& name, std::span<const std::byte> data) {
  FC_ASSERT_MSG(write_all(fd_for(name), data), "wal append failed");
}

void FileBackend::sync(const std::string& name) { ::fsync(fd_for(name)); }

void FileBackend::write_atomic(const std::string& name,
                               std::span<const std::byte> data) {
  const std::string tmp = path_of(name) + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  FC_ASSERT_MSG(fd >= 0, "cannot open tmp file");
  FC_ASSERT_MSG(write_all(fd, data), "tmp write failed");
  ::fsync(fd);
  ::close(fd);
  FC_ASSERT_MSG(::rename(tmp.c_str(), path_of(name).c_str()) == 0, "rename failed");
  fsync_dir(dir_);
  // Any cached append fd points at the replaced inode; reopen on next use.
  drop_fd(name);
}

void FileBackend::remove(const std::string& name) {
  drop_fd(name);
  ::unlink(path_of(name).c_str());
}

}  // namespace fastcast::storage
