#include "fastcast/storage/wal.hpp"

#include <array>
#include <cstdio>

#include "fastcast/common/assert.hpp"

namespace fastcast::storage {

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

/// Bytes per frame header: u32 body length + u32 CRC.
constexpr std::size_t kFrameHeader = 8;

std::uint32_t read_u32_le(const std::byte* p) {
  return static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[0])) |
         (static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[1])) << 8) |
         (static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[2])) << 16) |
         (static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[3])) << 24);
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  std::uint32_t c = 0xffffffffu;
  for (const std::byte b : data) {
    c = kCrcTable[(c ^ std::to_integer<std::uint8_t>(b)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

WalRecord WalRecord::promise(GroupId g, Ballot b) {
  WalRecord rec;
  rec.type = WalRecordType::kPromise;
  rec.group = g;
  rec.ballot = b;
  return rec;
}

WalRecord WalRecord::accept(GroupId g, InstanceId inst, Ballot b,
                            std::span<const std::byte> value) {
  WalRecord rec;
  rec.type = WalRecordType::kAccept;
  rec.group = g;
  rec.instance = inst;
  rec.ballot = b;
  rec.value.assign(value.begin(), value.end());
  return rec;
}

WalRecord WalRecord::rm_next_seq(NodeId dest, std::uint64_t next) {
  WalRecord rec;
  rec.type = WalRecordType::kRmNextSeq;
  rec.node = dest;
  rec.seq = next;
  return rec;
}

WalRecord WalRecord::rm_stage(NodeId dest, std::uint64_t seq,
                              std::span<const std::byte> frame) {
  WalRecord rec;
  rec.type = WalRecordType::kRmStage;
  rec.node = dest;
  rec.seq = seq;
  rec.value.assign(frame.begin(), frame.end());
  return rec;
}

WalRecord WalRecord::rm_settle(NodeId dest, std::uint64_t seq) {
  WalRecord rec;
  rec.type = WalRecordType::kRmSettle;
  rec.node = dest;
  rec.seq = seq;
  return rec;
}

WalRecord WalRecord::rm_progress(NodeId origin, std::uint64_t next_expected) {
  WalRecord rec;
  rec.type = WalRecordType::kRmProgress;
  rec.node = origin;
  rec.seq = next_expected;
  return rec;
}

WalRecord WalRecord::delivered(MsgId mid) {
  WalRecord rec;
  rec.type = WalRecordType::kDelivered;
  rec.seq = mid;
  return rec;
}

WalRecord WalRecord::body(MsgId mid, std::span<const std::byte> encoded) {
  WalRecord rec;
  rec.type = WalRecordType::kBody;
  rec.seq = mid;
  rec.value.assign(encoded.begin(), encoded.end());
  return rec;
}

WalRecord WalRecord::settled(GroupId g, InstanceId frontier, std::uint64_t clock) {
  WalRecord rec;
  rec.type = WalRecordType::kSettled;
  rec.group = g;
  rec.instance = frontier;
  rec.seq = clock;
  return rec;
}

WalRecord WalRecord::prune_accepted(GroupId g, InstanceId floor) {
  WalRecord rec;
  rec.type = WalRecordType::kPruneAccepted;
  rec.group = g;
  rec.instance = floor;
  return rec;
}

WalRecord WalRecord::repair_install(GroupId g, InstanceId from, InstanceId through) {
  WalRecord rec;
  rec.type = WalRecordType::kRepairInstall;
  rec.group = g;
  rec.seq = from;
  rec.instance = through;
  return rec;
}

void encode_record(Writer& w, const WalRecord& rec) {
  w.u8(static_cast<std::uint8_t>(rec.type));
  w.u32(rec.group);
  w.u32(rec.ballot.round);
  w.u32(rec.ballot.node);
  w.varint(rec.instance);
  w.u32(rec.node);
  w.varint(rec.seq);
  w.bytes(rec.value);
}

bool decode_record(Reader& r, WalRecord& rec) {
  const std::uint8_t type = r.u8();
  if (type < 1 || type > 11) return false;
  rec.type = static_cast<WalRecordType>(type);
  rec.group = r.u32();
  rec.ballot.round = r.u32();
  rec.ballot.node = r.u32();
  rec.instance = r.varint();
  rec.node = r.u32();
  rec.seq = r.varint();
  rec.value = r.bytes();
  return r.ok() && r.at_end();
}

// ---------------------------------------------------------------------------
// Wal
// ---------------------------------------------------------------------------

Wal::Wal(StorageBackend* backend, std::size_t segment_bytes)
    : backend_(backend), segment_bytes_(segment_bytes) {
  FC_ASSERT_MSG(backend_ != nullptr, "Wal needs a backend");
  FC_ASSERT_MSG(segment_bytes_ > 0, "segment size must be positive");
}

std::string Wal::segment_name(Lsn first) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "wal-%016llx.seg",
                static_cast<unsigned long long>(first));
  return buf;
}

bool Wal::parse_segment_name(const std::string& name, Lsn& first) {
  // "wal-" + 16 hex digits + ".seg"
  if (name.size() != 24 || !name.starts_with("wal-") || !name.ends_with(".seg")) {
    return false;
  }
  Lsn v = 0;
  for (std::size_t i = 4; i < 20; ++i) {
    const char c = name[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else return false;
    v = (v << 4) | digit;
  }
  first = v;
  return true;
}

WalReplayStats Wal::open(Lsn skip_through,
                         const std::function<void(Lsn, const WalRecord&)>& fn) {
  WalReplayStats stats;
  segments_.clear();
  last_lsn_ = 0;

  // Collect segments; backend listing is lexicographic, which for the
  // fixed-width hex names is also first-lsn order.
  std::vector<std::pair<Lsn, std::string>> found;
  for (const std::string& name : backend_->list()) {
    Lsn first = 0;
    if (parse_segment_name(name, first)) found.emplace_back(first, name);
  }

  bool stop = false;  // corruption found: drop every later segment
  std::vector<std::byte> content;
  for (const auto& [first, name] : found) {
    if (stop) {
      backend_->remove(name);
      ++stats.dropped_segments;
      continue;
    }
    // A gap means the segment holding the successor record is missing;
    // records after the gap are unreachable by contiguous replay.
    if (!segments_.empty() || last_lsn_ != 0) {
      if (first != last_lsn_ + 1) {
        backend_->remove(name);
        ++stats.dropped_segments;
        stop = true;
        continue;
      }
    }

    FC_ASSERT_MSG(backend_->read(name, content), "listed segment unreadable");
    Lsn lsn = first - 1;
    std::size_t pos = 0;
    std::size_t valid_end = 0;
    bool corrupt = false;
    while (pos < content.size()) {
      if (content.size() - pos < kFrameHeader) {
        stats.torn_tail = true;
        break;
      }
      const std::uint32_t len = read_u32_le(content.data() + pos);
      const std::uint32_t crc = read_u32_le(content.data() + pos + 4);
      if (content.size() - pos - kFrameHeader < len) {
        stats.torn_tail = true;
        break;
      }
      const std::span<const std::byte> body(content.data() + pos + kFrameHeader,
                                            len);
      if (crc32(body) != crc) {
        ++stats.checksum_rejections;
        corrupt = true;
        break;
      }
      WalRecord rec;
      Reader r(body);
      if (!decode_record(r, rec)) {
        ++stats.checksum_rejections;
        corrupt = true;
        break;
      }
      pos += kFrameHeader + len;
      valid_end = pos;
      ++lsn;
      ++stats.records;
      if (fn && lsn > skip_through) {
        fn(lsn, rec);
        ++stats.replayed;
      }
    }

    const bool has_records = lsn >= first;
    if (valid_end < content.size()) {
      // Torn or corrupt tail: rewrite the segment to its valid prefix so
      // the bad bytes can never be re-read (and appends go after them).
      backend_->write_atomic(
          name, std::span<const std::byte>(content.data(), valid_end));
      stop = true;
      if (!has_records) {
        // Nothing valid at all — the file is pure garbage; drop it.
        backend_->remove(name);
        ++stats.dropped_segments;
        continue;
      }
    }
    (void)corrupt;
    segments_.push_back(Segment{name, first, valid_end, false});
    last_lsn_ = lsn;
  }

  if (last_lsn_ < skip_through) {
    // The snapshot is ahead of the surviving log (no-fsync policy: the
    // snapshot was written atomically while the covering WAL bytes were
    // still unsynced, and a crash lost them). Everything left in the log
    // is folded into the snapshot already; drop it and resume numbering
    // after the watermark so lsns stay monotone.
    for (const Segment& seg : segments_) {
      backend_->remove(seg.name);
      ++stats.dropped_segments;
    }
    segments_.clear();
    last_lsn_ = skip_through;
  }
  durable_lsn_ = last_lsn_;
  opened_ = true;
  return stats;
}

void Wal::start_segment(Lsn first) {
  segments_.push_back(Segment{segment_name(first), first, 0, false});
}

Lsn Wal::append(const WalRecord& rec) {
  FC_ASSERT_MSG(opened_, "Wal::append before open");
  const Lsn lsn = last_lsn_ + 1;
  if (segments_.empty() || segments_.back().bytes >= segment_bytes_) {
    start_segment(lsn);
  }
  body_scratch_.clear();
  encode_record(body_scratch_, rec);
  const auto& body = body_scratch_.data();
  frame_scratch_.clear();
  frame_scratch_.u32(static_cast<std::uint32_t>(body.size()));
  frame_scratch_.u32(crc32(body));
  frame_scratch_.raw(body);

  Segment& seg = segments_.back();
  backend_->append(seg.name, frame_scratch_.data());
  seg.bytes += frame_scratch_.size();
  seg.dirty = true;
  last_lsn_ = lsn;
  return lsn;
}

void Wal::commit_all(bool fsync) {
  if (fsync) {
    for (Segment& seg : segments_) {
      if (!seg.dirty) continue;
      backend_->sync(seg.name);
      seg.dirty = false;
    }
  }
  durable_lsn_ = last_lsn_;
}

std::size_t Wal::truncate_through(Lsn lsn) {
  std::size_t removed = 0;
  // A segment is removable once the *next* segment starts at or below
  // lsn + 1, i.e. every record in it is covered by the snapshot.
  while (segments_.size() > 1 && segments_[1].first <= lsn + 1) {
    backend_->remove(segments_.front().name);
    segments_.erase(segments_.begin());
    ++removed;
  }
  return removed;
}

}  // namespace fastcast::storage
