#include "fastcast/storage/snapshot.hpp"

#include <algorithm>
#include <cstdio>

#include "fastcast/common/assert.hpp"

namespace fastcast::storage {

// ---------------------------------------------------------------------------
// DurableState
// ---------------------------------------------------------------------------

void DurableState::apply(const WalRecord& rec) {
  switch (rec.type) {
    case WalRecordType::kPromise: {
      auto& g = groups[rec.group];
      if (rec.ballot > g.promised) g.promised = rec.ballot;
      break;
    }
    case WalRecordType::kAccept: {
      auto& g = groups[rec.group];
      // Accepting at a ballot implies having promised it.
      if (rec.ballot > g.promised) g.promised = rec.ballot;
      auto& acc = g.accepted[rec.instance];
      if (rec.ballot >= acc.ballot) {
        acc.ballot = rec.ballot;
        acc.value = rec.value;
      }
      break;
    }
    case WalRecordType::kRmNextSeq: {
      auto& next = rm_next_seq[rec.node];
      if (rec.seq > next) next = rec.seq;
      break;
    }
    case WalRecordType::kRmStage:
      rm_staged[{rec.node, rec.seq}] = rec.value;
      break;
    case WalRecordType::kRmSettle:
      rm_staged.erase({rec.node, rec.seq});
      break;
    case WalRecordType::kRmProgress: {
      auto& next = rm_next_expected[rec.node];
      if (rec.seq > next) next = rec.seq;
      break;
    }
    case WalRecordType::kDelivered:
      delivered.insert(rec.seq);
      bodies.erase(rec.seq);  // a delivered message's body is no longer needed
      break;
    case WalRecordType::kBody:
      if (!delivered.contains(rec.seq)) bodies[rec.seq] = rec.value;
      break;
    case WalRecordType::kSettled: {
      auto& g = groups[rec.group];
      if (rec.instance > g.settled) g.settled = rec.instance;
      if (rec.seq > g.settled_clock) g.settled_clock = rec.seq;
      break;
    }
    case WalRecordType::kPruneAccepted: {
      auto& g = groups[rec.group];
      if (rec.instance > g.pruned_below) g.pruned_below = rec.instance;
      g.accepted.erase(g.accepted.begin(),
                       g.accepted.lower_bound(rec.instance));
      break;
    }
    case WalRecordType::kRepairInstall:
      // Transfer-boundary marker: the installed entries and deliveries are
      // carried by their own kAccept/kDelivered/kSettled records, so the
      // marker folds to nothing — it exists for replay visibility.
      break;
  }
}

namespace {

/// Snapshot body version; bumped on any layout change so stale snapshots
/// are rejected instead of misdecoded.
constexpr std::uint8_t kSnapshotVersion = 2;

}  // namespace

void encode_state(Writer& w, const DurableState& state) {
  w.u8(kSnapshotVersion);
  w.varint(state.groups.size());
  for (const auto& [gid, g] : state.groups) {
    w.u32(gid);
    w.u32(g.promised.round);
    w.u32(g.promised.node);
    w.varint(g.settled);
    w.varint(g.settled_clock);
    w.varint(g.pruned_below);
    w.varint(g.accepted.size());
    for (const auto& [inst, acc] : g.accepted) {
      w.varint(inst);
      w.u32(acc.ballot.round);
      w.u32(acc.ballot.node);
      w.bytes(acc.value);
    }
  }
  w.varint(state.rm_next_seq.size());
  for (const auto& [node, seq] : state.rm_next_seq) {
    w.u32(node);
    w.varint(seq);
  }
  w.varint(state.rm_staged.size());
  for (const auto& [key, frame] : state.rm_staged) {
    w.u32(key.first);
    w.varint(key.second);
    w.bytes(frame);
  }
  w.varint(state.rm_next_expected.size());
  for (const auto& [node, seq] : state.rm_next_expected) {
    w.u32(node);
    w.varint(seq);
  }
  w.varint(state.delivered.size());
  for (const MsgId mid : state.delivered) w.varint(mid);
  w.varint(state.bodies.size());
  for (const auto& [mid, body] : state.bodies) {
    w.varint(mid);
    w.bytes(body);
  }
}

bool decode_state(Reader& r, DurableState& state) {
  state = DurableState{};
  if (r.u8() != kSnapshotVersion) return false;
  const std::uint64_t n_groups = r.varint();
  for (std::uint64_t i = 0; r.ok() && i < n_groups; ++i) {
    const GroupId gid = r.u32();
    auto& g = state.groups[gid];
    g.promised.round = r.u32();
    g.promised.node = r.u32();
    g.settled = r.varint();
    g.settled_clock = r.varint();
    g.pruned_below = r.varint();
    const std::uint64_t n_acc = r.varint();
    for (std::uint64_t j = 0; r.ok() && j < n_acc; ++j) {
      const InstanceId inst = r.varint();
      auto& acc = g.accepted[inst];
      acc.ballot.round = r.u32();
      acc.ballot.node = r.u32();
      acc.value = r.bytes();
    }
  }
  const std::uint64_t n_next = r.varint();
  for (std::uint64_t i = 0; r.ok() && i < n_next; ++i) {
    const NodeId node = r.u32();
    state.rm_next_seq[node] = r.varint();
  }
  const std::uint64_t n_staged = r.varint();
  for (std::uint64_t i = 0; r.ok() && i < n_staged; ++i) {
    const NodeId node = r.u32();
    const std::uint64_t seq = r.varint();
    state.rm_staged[{node, seq}] = r.bytes();
  }
  const std::uint64_t n_exp = r.varint();
  for (std::uint64_t i = 0; r.ok() && i < n_exp; ++i) {
    const NodeId node = r.u32();
    state.rm_next_expected[node] = r.varint();
  }
  const std::uint64_t n_del = r.varint();
  for (std::uint64_t i = 0; r.ok() && i < n_del; ++i) {
    state.delivered.insert(r.varint());
  }
  const std::uint64_t n_bodies = r.varint();
  for (std::uint64_t i = 0; r.ok() && i < n_bodies; ++i) {
    const MsgId mid = r.varint();
    state.bodies[mid] = r.bytes();
  }
  return r.ok() && r.at_end();
}

// ---------------------------------------------------------------------------
// SnapshotStore
// ---------------------------------------------------------------------------

SnapshotStore::SnapshotStore(StorageBackend* backend) : backend_(backend) {
  FC_ASSERT_MSG(backend_ != nullptr, "SnapshotStore needs a backend");
}

std::string SnapshotStore::snapshot_name(Lsn lsn) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "snap-%016llx.snap",
                static_cast<unsigned long long>(lsn));
  return buf;
}

bool SnapshotStore::parse_snapshot_name(const std::string& name, Lsn& lsn) {
  // "snap-" + 16 hex digits + ".snap"
  if (name.size() != 26 || !name.starts_with("snap-") ||
      !name.ends_with(".snap")) {
    return false;
  }
  Lsn v = 0;
  for (std::size_t i = 5; i < 21; ++i) {
    const char c = name[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else return false;
    v = (v << 4) | digit;
  }
  lsn = v;
  return true;
}

void SnapshotStore::write(Lsn lsn, const DurableState& state) {
  scratch_.clear();
  encode_state(scratch_, state);
  // Same [len][crc] guard as WAL frames, so bit rot is detected on load.
  Writer framed;
  framed.reserve(scratch_.size() + 8);
  framed.u32(static_cast<std::uint32_t>(scratch_.size()));
  framed.u32(crc32(scratch_.data()));
  framed.raw(scratch_.data());
  backend_->write_atomic(snapshot_name(lsn), framed.data());

  // GC: keep the newest two snapshots (this one and its predecessor).
  std::vector<Lsn> lsns;
  for (const std::string& name : backend_->list()) {
    Lsn at = 0;
    if (parse_snapshot_name(name, at)) lsns.push_back(at);
  }
  std::sort(lsns.begin(), lsns.end());
  while (lsns.size() > 2) {
    backend_->remove(snapshot_name(lsns.front()));
    lsns.erase(lsns.begin());
  }
}

Lsn SnapshotStore::load_latest(DurableState& state, std::uint64_t* rejected) {
  std::vector<Lsn> lsns;
  for (const std::string& name : backend_->list()) {
    Lsn at = 0;
    if (parse_snapshot_name(name, at)) lsns.push_back(at);
  }
  std::sort(lsns.begin(), lsns.end());
  std::vector<std::byte> content;
  for (auto it = lsns.rbegin(); it != lsns.rend(); ++it) {
    if (!backend_->read(snapshot_name(*it), content)) continue;
    if (content.size() < 8) {
      if (rejected != nullptr) ++*rejected;
      continue;
    }
    Reader header(content);
    const std::uint32_t len = header.u32();
    const std::uint32_t crc = header.u32();
    if (content.size() - 8 != len) {
      if (rejected != nullptr) ++*rejected;
      continue;
    }
    const std::span<const std::byte> body(content.data() + 8, len);
    if (crc32(body) != crc) {
      if (rejected != nullptr) ++*rejected;
      continue;
    }
    Reader r(body);
    DurableState decoded;
    if (!decode_state(r, decoded)) {
      if (rejected != nullptr) ++*rejected;
      continue;
    }
    state = std::move(decoded);
    return *it;
  }
  return 0;
}

std::size_t SnapshotStore::count() const {
  std::size_t n = 0;
  for (const std::string& name : backend_->list()) {
    Lsn at = 0;
    if (parse_snapshot_name(name, at)) ++n;
  }
  return n;
}

}  // namespace fastcast::storage
