#include "fastcast/obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "fastcast/common/assert.hpp"
#include "fastcast/obs/json.hpp"

namespace fastcast::obs {

const char* to_string(SpanEventKind k) {
  switch (k) {
    case SpanEventKind::kMcast: return "mcast";
    case SpanEventKind::kRdeliver: return "rdeliver";
    case SpanEventKind::kSyncSoft: return "sync_soft";
    case SpanEventKind::kSetHardDecided: return "set_hard_decided";
    case SpanEventKind::kSyncHard: return "sync_hard";
    case SpanEventKind::kTask6Match: return "task6_match";
    case SpanEventKind::kAdeliver: return "adeliver";
  }
  return "?";
}

Time Span::mcast_at() const {
  for (const SpanEvent& e : events) {
    if (e.kind == SpanEventKind::kMcast) return e.at;
  }
  return -1;
}

std::vector<SpanEvent> Span::of_kind(SpanEventKind k) const {
  std::vector<SpanEvent> out;
  for (const SpanEvent& e : events) {
    if (e.kind == k) out.push_back(e);
  }
  return out;
}

void Tracer::record(MsgId mid, SpanEventKind kind, NodeId node, GroupId group,
                    Time at, std::uint32_t aux) {
  std::lock_guard lock(mu_);
  Span& span = spans_[mid];
  span.mid = mid;
  span.events.push_back({kind, node, group, at, aux});
  ++events_;
  ++by_kind_[static_cast<std::size_t>(kind)];
}

std::size_t Tracer::span_count() const {
  std::lock_guard lock(mu_);
  return spans_.size();
}

std::uint64_t Tracer::event_count() const {
  std::lock_guard lock(mu_);
  return events_;
}

std::uint64_t Tracer::count(SpanEventKind kind) const {
  std::lock_guard lock(mu_);
  return by_kind_[static_cast<std::size_t>(kind)];
}

Span Tracer::span(MsgId mid) const {
  std::lock_guard lock(mu_);
  auto it = spans_.find(mid);
  if (it == spans_.end()) return Span{mid, {}};
  return it->second;
}

std::vector<Span> Tracer::spans() const {
  std::vector<Span> out;
  {
    std::lock_guard lock(mu_);
    out.reserve(spans_.size());
    for (const auto& [mid, span] : spans_) out.push_back(span);
  }
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.mid < b.mid; });
  return out;
}

std::vector<DeliveryDelta> Tracer::delivery_deltas(Duration delta) const {
  FC_ASSERT_MSG(delta > 0, "delta must be positive");
  std::vector<DeliveryDelta> out;
  for (const Span& span : spans()) {
    const Time start = span.mcast_at();
    if (start < 0) continue;
    std::uint32_t dst_groups = 0;
    for (const SpanEvent& e : span.events) {
      if (e.kind == SpanEventKind::kMcast) dst_groups = e.aux;
    }
    for (const SpanEvent& e : span.events) {
      if (e.kind != SpanEventKind::kAdeliver) continue;
      const Duration elapsed = e.at - start;
      out.push_back({span.mid, e.node, e.group, dst_groups, elapsed,
                     static_cast<double>(elapsed) / static_cast<double>(delta)});
    }
  }
  return out;
}

DeltaSummary Tracer::summarize(Duration delta) const {
  DeltaSummary s;
  s.delta = delta;
  std::map<std::uint32_t, DeltaSummary::Class> classes;
  for (const DeliveryDelta& d : delivery_deltas(delta)) {
    DeltaSummary::Class& c = classes[d.dst_groups];
    if (c.samples == 0) {
      c.dst_groups = d.dst_groups;
      c.min_hops = c.max_hops = d.hops;
    } else {
      c.min_hops = std::min(c.min_hops, d.hops);
      c.max_hops = std::max(c.max_hops, d.hops);
    }
    c.mean_hops += d.hops;  // sum for now, divided below
    ++c.samples;
    ++c.histogram[static_cast<int>(std::lround(d.hops))];
    ++s.deliveries;
  }
  {
    std::lock_guard lock(mu_);
    const std::uint64_t matched = s.deliveries;
    const std::uint64_t total =
        by_kind_[static_cast<std::size_t>(SpanEventKind::kAdeliver)];
    s.unmatched = total > matched ? total - matched : 0;
  }
  for (auto& [dst, c] : classes) {
    c.mean_hops /= static_cast<double>(c.samples);
    s.classes.push_back(std::move(c));
  }
  return s;
}

std::string DeltaSummary::to_string() const {
  std::ostringstream out;
  out << "empirical δ-count (δ = " << to_milliseconds(delta) << " ms, "
      << deliveries << " deliveries";
  if (unmatched > 0) out << ", " << unmatched << " unmatched";
  out << ")\n";
  out << "  dst-groups  deliveries   min    mean    max   histogram\n";
  char line[160];
  for (const Class& c : classes) {
    std::snprintf(line, sizeof(line), "  %9u  %10llu  %5.2f  %5.2f  %5.2f   ",
                  c.dst_groups,
                  static_cast<unsigned long long>(c.samples), c.min_hops,
                  c.mean_hops, c.max_hops);
    out << line;
    bool first = true;
    for (const auto& [hops, n] : c.histogram) {
      if (!first) out << ", ";
      first = false;
      out << hops << "δ×" << n;
    }
    out << '\n';
  }
  return out.str();
}

void Tracer::dump_json(std::ostream& out, int indent) const {
  const auto all = spans();
  JsonWriter w(out, indent);
  w.begin_object();
  w.key("spans").begin_array();
  for (const Span& span : all) {
    w.begin_object();
    w.kv("mid", span.mid);
    w.kv("sender", static_cast<std::uint64_t>(msg_id_sender(span.mid)));
    w.kv("seq", static_cast<std::uint64_t>(msg_id_seq(span.mid)));
    w.key("events").begin_array();
    for (const SpanEvent& e : span.events) {
      w.begin_object();
      w.kv("kind", to_string(e.kind));
      w.kv("node", static_cast<std::uint64_t>(e.node));
      if (e.group != kNoGroup) w.kv("group", static_cast<std::uint64_t>(e.group));
      w.kv("at_ns", static_cast<std::int64_t>(e.at));
      if (e.aux != 0) w.kv("aux", static_cast<std::uint64_t>(e.aux));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  spans_.clear();
  events_ = 0;
  by_kind_.fill(0);
}

}  // namespace fastcast::obs
