#include "fastcast/obs/metrics.hpp"

#include <iomanip>

#include "fastcast/obs/json.hpp"

namespace fastcast::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  std::lock_guard lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::map<std::string, std::int64_t> MetricsRegistry::gauges() const {
  std::lock_guard lock(mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, g] : gauges_) out.emplace(name, g->value());
  return out;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  const auto cs = other.counters();
  const auto gs = other.gauges();
  for (const auto& [name, v] : cs) counter(name).inc(v);
  for (const auto& [name, v] : gs) gauge(name).record_max(v);
}

void MetricsRegistry::write_json(std::ostream& out, int indent) const {
  const auto cs = counters();
  const auto gs = gauges();
  JsonWriter w(out, indent);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : cs) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gs) w.kv(name, v);
  w.end_object();
  w.end_object();
}

void MetricsRegistry::write_text(std::ostream& out) const {
  for (const auto& [name, v] : counters()) {
    out << "  " << std::left << std::setw(40) << name << ' ' << v << '\n';
  }
  for (const auto& [name, v] : gauges()) {
    out << "  " << std::left << std::setw(40) << name << ' ' << v << '\n';
  }
}

}  // namespace fastcast::obs
