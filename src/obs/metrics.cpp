#include "fastcast/obs/metrics.hpp"

#include <iomanip>
#include <limits>

#include "fastcast/obs/json.hpp"

namespace fastcast::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::int64_t Histogram::bucket_bound(std::size_t i) {
  if (i >= 63) return std::numeric_limits<std::int64_t>::max();
  return std::int64_t{1} << i;
}

std::int64_t Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  const double rank = p / 100.0 * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (static_cast<double>(seen) >= rank) return bucket_bound(i);
  }
  return bucket_bound(kBuckets - 1);
}

void Histogram::merge_from(const Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = other.bucket(i);
    if (n > 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  std::lock_guard lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::map<std::string, std::int64_t> MetricsRegistry::gauges() const {
  std::lock_guard lock(mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, g] : gauges_) out.emplace(name, g->value());
  return out;
}

std::map<std::string, MetricsRegistry::HistogramSummary>
MetricsRegistry::histograms() const {
  std::lock_guard lock(mu_);
  std::map<std::string, HistogramSummary> out;
  for (const auto& [name, h] : histograms_) {
    out.emplace(name, HistogramSummary{h->count(), h->sum(), h->percentile(50),
                                       h->percentile(95), h->percentile(99)});
  }
  return out;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  const auto cs = other.counters();
  const auto gs = other.gauges();
  for (const auto& [name, v] : cs) counter(name).inc(v);
  for (const auto& [name, v] : gs) gauge(name).record_max(v);
  std::lock_guard lock(other.mu_);
  for (const auto& [name, h] : other.histograms_) {
    histogram(name).merge_from(*h);
  }
}

void MetricsRegistry::write_json(std::ostream& out, int indent) const {
  const auto cs = counters();
  const auto gs = gauges();
  const auto hs = histograms();
  JsonWriter w(out, indent);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : cs) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gs) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : hs) {
    w.key(name).begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("p50", h.p50);
    w.kv("p95", h.p95);
    w.kv("p99", h.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void MetricsRegistry::write_text(std::ostream& out) const {
  for (const auto& [name, v] : counters()) {
    out << "  " << std::left << std::setw(40) << name << ' ' << v << '\n';
  }
  for (const auto& [name, v] : gauges()) {
    out << "  " << std::left << std::setw(40) << name << ' ' << v << '\n';
  }
  for (const auto& [name, h] : histograms()) {
    out << "  " << std::left << std::setw(40) << name << " n=" << h.count
        << " p50=" << h.p50 << " p99=" << h.p99 << '\n';
  }
}

}  // namespace fastcast::obs
