#include "fastcast/obs/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "fastcast/common/assert.hpp"

namespace fastcast::obs {

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (c < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
          out << buf.data();
        } else {
          out << static_cast<char>(c);
        }
    }
  }
  out << '"';
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    out_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already placed the comma and indentation
  }
  if (stack_.empty()) return;  // top-level value
  Frame& f = stack_.back();
  FC_ASSERT_MSG(!f.is_object, "object members need key() first");
  if (f.items++ > 0) out_ << ',';
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  FC_ASSERT_MSG(!stack_.empty() && stack_.back().is_object,
                "key() outside object");
  FC_ASSERT_MSG(!pending_key_, "two keys in a row");
  Frame& f = stack_.back();
  if (f.items++ > 0) out_ << ',';
  newline_indent();
  write_json_string(out_, k);
  out_ << (indent_ > 0 ? ": " : ":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  stack_.push_back({/*is_object=*/true, 0});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  FC_ASSERT(!stack_.empty() && stack_.back().is_object);
  const bool had_items = stack_.back().items > 0;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  stack_.push_back({/*is_object=*/false, 0});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  FC_ASSERT(!stack_.empty() && !stack_.back().is_object);
  const bool had_items = stack_.back().items > 0;
  stack_.pop_back();
  if (had_items) newline_indent();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  write_json_string(out_, v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no Inf/NaN
    return *this;
  }
  std::array<char, 32> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  FC_ASSERT(ec == std::errc());
  out_.write(buf.data(), ptr - buf.data());
  return *this;
}

}  // namespace fastcast::obs
