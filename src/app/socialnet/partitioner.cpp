#include "fastcast/app/socialnet/partitioner.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "fastcast/common/assert.hpp"

namespace fastcast::app {

namespace {

std::size_t count_cut_edges(const SocialGraph& graph,
                            const std::vector<std::uint32_t>& partition_of) {
  std::size_t cut = 0;
  for (std::size_t u = 0; u < graph.user_count; ++u) {
    for (UserId f : graph.followers[u]) {
      if (partition_of[f] != partition_of[u]) ++cut;
    }
  }
  return cut;
}

}  // namespace

PartitionResult partition_graph(const SocialGraph& graph,
                                const PartitionerConfig& config) {
  FC_ASSERT(config.partitions >= 1);
  const std::size_t n = graph.user_count;
  const std::size_t cap = static_cast<std::size_t>(
      static_cast<double>(n) / static_cast<double>(config.partitions) *
      (1.0 + config.balance_slack)) + 1;

  constexpr std::uint32_t kUnassigned = 0xffffffffu;
  PartitionResult result;
  result.partition_of.assign(n, kUnassigned);
  result.sizes.assign(config.partitions, 0);

  // Undirected adjacency (followers + following) drives locality.
  auto neighbours = [&](std::size_t u, auto&& fn) {
    for (UserId v : graph.followers[u]) fn(v);
    for (UserId v : graph.following[u]) fn(v);
  };

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const std::size_t da = graph.followers[a].size() + graph.following[a].size();
    const std::size_t db = graph.followers[b].size() + graph.following[b].size();
    if (da != db) return da > db;
    return a < b;
  });

  std::vector<std::size_t> score(config.partitions);
  for (std::size_t u : order) {
    std::fill(score.begin(), score.end(), 0);
    neighbours(u, [&](UserId v) {
      if (result.partition_of[v] != kUnassigned) ++score[result.partition_of[v]];
    });
    // Best feasible partition by neighbour count; ties break toward the
    // least-loaded partition so balance emerges naturally.
    std::size_t best = config.partitions;
    for (std::size_t p = 0; p < config.partitions; ++p) {
      if (result.sizes[p] >= cap) continue;
      if (best == config.partitions || score[p] > score[best] ||
          (score[p] == score[best] && result.sizes[p] < result.sizes[best])) {
        best = p;
      }
    }
    FC_ASSERT_MSG(best < config.partitions, "capacity exhausted");
    result.partition_of[u] = static_cast<std::uint32_t>(best);
    ++result.sizes[best];
  }

  // Refinement: move users toward their dominant-neighbour partition.
  for (std::size_t pass = 0; pass < config.refine_passes; ++pass) {
    std::size_t moved = 0;
    for (std::size_t u = 0; u < n; ++u) {
      std::fill(score.begin(), score.end(), 0);
      neighbours(u, [&](UserId v) { ++score[result.partition_of[v]]; });
      const std::uint32_t cur = result.partition_of[u];
      std::size_t best = cur;
      for (std::size_t p = 0; p < config.partitions; ++p) {
        if (p == cur || result.sizes[p] >= cap) continue;
        if (score[p] > score[best]) best = p;
      }
      if (best != cur) {
        result.partition_of[u] = static_cast<std::uint32_t>(best);
        --result.sizes[cur];
        ++result.sizes[best];
        ++moved;
      }
    }
    if (moved == 0) break;
  }

  result.cut_edges = count_cut_edges(graph, result.partition_of);
  return result;
}

std::vector<std::size_t> spread_histogram(const SocialGraph& graph,
                                          const std::vector<std::uint32_t>& partition_of,
                                          std::size_t partitions) {
  std::vector<std::size_t> histogram(partitions, 0);
  for (std::size_t u = 0; u < graph.user_count; ++u) {
    std::set<std::uint32_t> parts;
    parts.insert(partition_of[u]);  // a post always reaches the home partition
    for (UserId f : graph.followers[u]) parts.insert(partition_of[f]);
    FC_ASSERT(parts.size() <= partitions);
    ++histogram[parts.size() - 1];
  }
  return histogram;
}

}  // namespace fastcast::app
