#include "fastcast/app/socialnet/graph.hpp"

#include <algorithm>
#include <set>

#include "fastcast/common/assert.hpp"

namespace fastcast::app {

std::size_t SocialGraph::edge_count() const {
  std::size_t total = 0;
  for (const auto& f : followers) total += f.size();
  return total;
}

SocialGraph generate_social_graph(const SocialGraphConfig& config) {
  FC_ASSERT(config.users >= config.communities);
  FC_ASSERT(config.communities >= 1);
  Rng rng(config.seed);

  SocialGraph g;
  g.user_count = config.users;
  g.followers.resize(config.users);
  g.following.resize(config.users);

  // Community of each user: round-robin keeps communities balanced.
  std::vector<std::uint32_t> community(config.users);
  for (std::size_t u = 0; u < config.users; ++u) {
    community[u] = static_cast<std::uint32_t>(u % config.communities);
  }
  std::vector<std::vector<UserId>> by_community(config.communities);
  for (std::size_t u = 0; u < config.users; ++u) {
    by_community[community[u]].push_back(static_cast<UserId>(u));
  }

  // Preferential attachment with community structure: each follow either
  // stays in the follower's community (probability intra_community_bias)
  // or goes anywhere; within the chosen scope, a degree-proportional pick
  // (a uniformly random end of an existing follow edge in that scope)
  // happens with high probability, producing the skewed "celebrity"
  // follower counts real social graphs show.
  std::vector<UserId> global_targets;  // multiset of followees
  std::vector<std::vector<UserId>> community_targets(config.communities);
  global_targets.reserve(config.users * config.mean_follows);

  for (std::size_t u = 0; u < config.users; ++u) {
    const std::size_t follows =
        1 + static_cast<std::size_t>(rng.uniform(2 * config.mean_follows - 1));
    std::set<UserId> chosen;
    const std::uint32_t c = community[u];
    for (std::size_t e = 0; e < follows; ++e) {
      const bool intra = rng.bernoulli(config.intra_community_bias);
      const auto& pa_pool = intra ? community_targets[c] : global_targets;
      UserId target;
      if (!pa_pool.empty() && rng.bernoulli(0.85)) {
        target = pa_pool[rng.uniform(pa_pool.size())];  // degree-proportional
      } else if (intra) {
        const auto& pool = by_community[c];
        target = pool[rng.uniform(pool.size())];
      } else {
        target = static_cast<UserId>(rng.uniform(config.users));
      }
      if (target == u || !chosen.insert(target).second) continue;
      g.following[u].push_back(target);
      g.followers[target].push_back(static_cast<UserId>(u));
      global_targets.push_back(target);
      community_targets[community[target]].push_back(target);
    }
  }
  return g;
}

PartitionedGraph generate_paper_spread_graph(std::size_t users,
                                             std::size_t partitions,
                                             std::uint64_t seed) {
  FC_ASSERT(partitions >= 1);
  Rng rng(seed);

  PartitionedGraph pg;
  pg.partitions = partitions;
  pg.graph.user_count = users;
  pg.graph.followers.resize(users);
  pg.graph.following.resize(users);
  pg.partition_of.resize(users);
  for (std::size_t u = 0; u < users; ++u) {
    pg.partition_of[u] = static_cast<std::uint32_t>(u % partitions);
  }
  std::vector<std::vector<UserId>> by_partition(partitions);
  for (std::size_t u = 0; u < users; ++u) {
    by_partition[pg.partition_of[u]].push_back(static_cast<UserId>(u));
  }

  // Paper distribution over the number of partitions a user's followers
  // span (out of 10000 users / 16 partitions): 7110 / 2474 / 376 / 26 / 14.
  // The 4-or-5 bucket (40 users) is split 26/14. Scaled for other sizes.
  const double cdf[5] = {0.7110, 0.9584, 0.9960, 0.9986, 1.0};

  for (std::size_t u = 0; u < users; ++u) {
    const double x = rng.uniform_double();
    std::size_t span = 5;
    for (std::size_t k = 0; k < 5; ++k) {
      if (x < cdf[k]) {
        span = k + 1;
        break;
      }
    }
    span = std::min(span, partitions);

    // The user's own partition is always spanned (local followers), plus
    // span-1 random others.
    std::set<std::uint32_t> parts{pg.partition_of[u]};
    while (parts.size() < span) {
      parts.insert(static_cast<std::uint32_t>(rng.uniform(partitions)));
    }
    // 1–4 followers per spanned partition keeps the graph light while
    // fixing the destination sets, which is all the benchmark consumes.
    for (std::uint32_t p : parts) {
      const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(4));
      for (std::size_t i = 0; i < n; ++i) {
        const auto& pool = by_partition[p];
        const UserId f = pool[rng.uniform(pool.size())];
        if (f == u) continue;
        pg.graph.followers[u].push_back(f);
        pg.graph.following[f].push_back(static_cast<UserId>(u));
      }
    }
  }
  return pg;
}

}  // namespace fastcast::app
