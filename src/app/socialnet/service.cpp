#include "fastcast/app/socialnet/service.hpp"

#include <algorithm>
#include <set>

#include "fastcast/common/assert.hpp"
#include "fastcast/common/codec.hpp"

namespace fastcast::app {

SocialNetworkService::SocialNetworkService(SocialGraph graph,
                                           std::vector<std::uint32_t> partition_of,
                                           std::size_t groups)
    : graph_(std::move(graph)), partition_of_(std::move(partition_of)), groups_(groups) {
  FC_ASSERT(partition_of_.size() == graph_.user_count);
  destinations_.resize(graph_.user_count);
  for (std::size_t u = 0; u < graph_.user_count; ++u) {
    std::set<GroupId> parts{partition_of_[u]};
    for (UserId f : graph_.followers[u]) {
      FC_ASSERT(partition_of_[f] < groups_);
      parts.insert(partition_of_[f]);
    }
    destinations_[u].assign(parts.begin(), parts.end());
  }
}

const std::vector<GroupId>& SocialNetworkService::post_destinations(UserId user) const {
  FC_ASSERT(user < destinations_.size());
  return destinations_[user];
}

std::string SocialNetworkService::encode_post(UserId user, std::uint64_t post_seq) {
  Writer w(16);
  w.u32(user);
  w.u64(post_seq);
  const auto& bytes = w.data();
  return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

bool SocialNetworkService::decode_post(const std::string& payload, UserId& user,
                                       std::uint64_t& post_seq) {
  const auto* p = reinterpret_cast<const std::byte*>(payload.data());
  Reader r(std::span<const std::byte>(p, payload.size()));
  user = r.u32();
  post_seq = r.u64();
  return r.ok();
}

void TimelineState::apply(GroupId group, const MulticastMessage& msg) {
  UserId poster = 0;
  std::uint64_t seq = 0;
  if (!SocialNetworkService::decode_post(msg.payload, poster, seq)) return;
  ++applied_;
  digest_ = digest_ * 0x100000001b3ULL ^ msg.id;  // FNV-style order-sensitive

  // Fan the post out to the timelines of followers homed in this group.
  const std::string entry =
      "user" + std::to_string(poster) + "#" + std::to_string(seq);
  const auto& graph = service_->graph();
  for (UserId f : graph.followers[poster]) {
    if (service_->partition_of(f) == group) timelines_[f].push_back(entry);
  }
  if (service_->partition_of(poster) == group) {
    timelines_[poster].push_back(entry);  // own timeline
  }
}

std::vector<std::string> TimelineState::read_timeline(UserId reader,
                                                      std::size_t limit) const {
  std::vector<std::string> out;
  auto it = timelines_.find(reader);
  if (it == timelines_.end()) return out;
  const auto& tl = it->second;
  const std::size_t n = std::min(limit, tl.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(tl[tl.size() - 1 - i]);
  return out;
}

harness::DstPicker social_post_picker(
    std::shared_ptr<const SocialNetworkService> service) {
  return [service](Rng& rng) {
    const auto user = static_cast<UserId>(rng.uniform(service->user_count()));
    return service->post_destinations(user);
  };
}

harness::DstPicker social_post_picker_with_span(
    std::shared_ptr<const SocialNetworkService> service, std::size_t span) {
  // Precompute the eligible users once; shared across the picker's copies.
  auto eligible = std::make_shared<std::vector<UserId>>();
  for (std::size_t u = 0; u < service->user_count(); ++u) {
    if (service->post_destinations(static_cast<UserId>(u)).size() == span) {
      eligible->push_back(static_cast<UserId>(u));
    }
  }
  FC_ASSERT_MSG(!eligible->empty(), "no user spans the requested group count");
  return [service, eligible](Rng& rng) {
    const UserId user = (*eligible)[rng.uniform(eligible->size())];
    return service->post_destinations(user);
  };
}

}  // namespace fastcast::app
