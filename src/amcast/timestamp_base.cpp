#include "fastcast/amcast/timestamp_base.hpp"

#include <algorithm>

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast {

TimestampProtocolBase::TimestampProtocolBase(Config config, NodeId self)
    : cfg_(std::move(config)), self_(self), rm_(cfg_.rmcast), cons_(cfg_.consensus, self),
      overload_(cfg_.flow) {
  FC_ASSERT(cfg_.group != kNoGroup);

  rm_.set_deliver([this](Context& ctx, NodeId origin, const AmcastPayload& payload) {
    // The START is already reliably multicast, so it MUST be processed —
    // a genuine protocol has no safe shedding point past this. The group
    // leader can still tell the client to slow down.
    if (const auto* start = std::get_if<AmStart>(&payload)) {
      maybe_advise(ctx, start->msg);
    }
    on_rdeliver(ctx, origin, payload);
  });

  cons_.set_decide([this](InstanceId inst, const std::vector<std::byte>& value) {
    FC_ASSERT_MSG(decide_ctx_ != nullptr, "decision before on_start");
    on_decide(*decide_ctx_, inst, value);
  });

  cons_.set_on_leader_change([this](Context& ctx, NodeId leader) {
    if (leader != ctx.self()) return;
    // New leader: re-send pending SEND-HARDs (the previous leader may have
    // crashed between deciding SET-HARD and transmitting) and re-propose
    // everything still unordered.
    for (const auto& [mid, info] : hard_pending_) {
      rm_.multicast(ctx, info.second,
                    AmSendHard{cfg_.group, info.first, mid, info.second});
    }
    restage_all(ctx);
  });

  buffer_.set_deliver([this](Context& ctx, const MulticastMessage& msg) {
    deliver(ctx, msg);  // appends the kDelivered record before any settle
    settle_note_delivered(msg.id);
  });

  cons_.set_settled_provider([this] {
    // CH upper-bounds every timestamp the settled instances influenced, so
    // a restart that jumps past them cannot assign a regressed timestamp.
    return repair::Settled{settled_frontier(), ch_};
  });
}

void TimestampProtocolBase::restore_durable(const storage::DurableState& durable) {
  const auto it = durable.groups.find(cfg_.consensus.group);
  cons_.restore_durable(it == durable.groups.end() ? nullptr : &it->second);
  if (it != durable.groups.end()) {
    // The learner resumes at the durable settled frontier; instances below
    // it are never replayed, so CH must jump to the recorded clock bound or
    // a recovered leader could assign regressed hard timestamps.
    settle_frontier_ = it->second.settled;
    ch_ = std::max<Ts>(ch_, it->second.settled_clock);
  }
  rm_.restore(durable);
  buffer_.restore_delivered(durable.delivered);
  for (const auto& [mid, encoded] : durable.bodies) {
    std::vector<MulticastMessage> batch;
    if (!decode_msg_batch(encoded, batch)) continue;  // guarded by WAL CRC
    for (const MulticastMessage& m : batch) buffer_.restore_body(m);
  }
  // Timestamps (CH, buffer entries, ToOrder/Ordered) are deliberately not
  // persisted: the consensus catch-up replays every decided tuple through
  // on_decide, and delivered-set dedup suppresses re-deliveries.
}

void TimestampProtocolBase::on_start(Context& ctx) {
  decide_ctx_ = &ctx;
  rm_.on_start(ctx);
  cons_.on_start(ctx);
  if (cfg_.enable_repropose) arm_repropose(ctx);
}

void TimestampProtocolBase::on_recover(Context& ctx) {
  decide_ctx_ = &ctx;
  rm_.on_recover(ctx);
  cons_.on_recover(ctx);
  repropose_armed_ = false;
  if (cfg_.enable_repropose) arm_repropose(ctx);
  // Anything still unordered was in flight when we crashed; queue it for
  // the next proposal round (the leader check inside flush() applies).
  restage_all(ctx);
  // Backstop for the restore path: if restored state ever produced a
  // deliverable FINAL whose body arrived via restore_body (which cannot
  // retry delivery itself — no Context there), release it now instead of
  // waiting for the next unrelated add_entry.
  buffer_.try_deliver(ctx);
}

bool TimestampProtocolBase::handle(Context& ctx, NodeId from, const Message& msg) {
  if (rm_.handle(ctx, from, msg)) return true;
  if (cons_.handle(ctx, from, msg)) return true;
  return false;
}

void TimestampProtocolBase::stage(Context& ctx, Tuple tuple) {
  const TupleId id = id_of(tuple);
  if (known_.contains(id)) return;
  known_.insert(id);
  staged_.push_back(id);
  unordered_.emplace(id, std::move(tuple));
  flush(ctx);
}

void TimestampProtocolBase::track_deferred(Tuple tuple) {
  const TupleId id = id_of(tuple);
  if (known_.contains(id)) return;
  known_.insert(id);
  unordered_.emplace(id, std::move(tuple));
}

void TimestampProtocolBase::promote_deferred(Context& ctx, const TupleId& id) {
  if (!unordered_.contains(id)) return;
  staged_.push_back(id);
  flush(ctx);
}

void TimestampProtocolBase::mark_ordered_out_of_band(const TupleId& id) {
  FC_ASSERT(!ordered_.contains(id));
  known_.insert(id);
  ordered_.insert(id);
  unordered_.erase(id);
}

const Tuple* TimestampProtocolBase::find_unordered(const TupleId& id) const {
  auto it = unordered_.find(id);
  return it == unordered_.end() ? nullptr : &it->second;
}

void TimestampProtocolBase::flush(Context& ctx) {
  if (staged_.empty()) return;
  if (!cons_.is_leader(ctx)) return;
  if (!cons_.window_open()) return;  // batch: accumulate until a slot frees

  std::vector<Tuple> batch;
  batch.reserve(staged_.size());
  for (const TupleId& id : staged_) {
    auto it = unordered_.find(id);
    if (it != unordered_.end()) batch.push_back(it->second);
  }
  staged_.clear();
  if (batch.empty()) return;

  before_propose(ctx, batch);
  if (auto* o = ctx.obs()) {
    o->metrics.counter("amcast.tuples_proposed").inc(batch.size());
  }
  cons_.propose(ctx, encode_tuples(batch));
  if (overload_.enabled()) proposed_at_.push_back(ctx.now());
}

void TimestampProtocolBase::maybe_advise(Context& ctx, const MulticastMessage& msg) {
  if (!overload_.enabled()) return;
  overload_.note_depth(unordered_.size() + cons_.proposer().queued() +
                       cons_.proposer().in_flight());
  // Arrival lag (client send → START receipt) catches saturation upstream
  // of the protocol clock — transport queues, unprocessed-event backlog —
  // which propose→decide round trips alone never see.
  if (msg.sent_at > 0) {
    overload_.note_arrival_lag(ctx.now(), ctx.now() - msg.sent_at);
  }
  if (!cons_.is_leader(ctx)) return;  // one advisory per group, from its leader
  // Advise with probability proportional to the delay excess — a genuine
  // protocol has no rejection backstop, so advisories must land while the
  // queue is still shallow, and probabilistic marking desynchronizes the
  // resulting client backoffs.
  const double mark_p = overload_.mark_probability(ctx.now());
  if (mark_p <= 0 || (mark_p < 1.0 && !ctx.rng().bernoulli(mark_p))) return;
  if (auto* o = ctx.obs()) o->metrics.counter("flow.advisories").inc();
  ctx.send(msg.sender, Message{Busy{msg.id, Busy::Reason::kOverload,
                                    /*advisory=*/true, overload_.retry_after()}});
}

void TimestampProtocolBase::on_decide(Context& ctx, InstanceId inst,
                                      const std::vector<std::byte>& value) {
  if (overload_.enabled()) {
    // Propose→decide round trip feeds the sojourn estimate; only the
    // current leadership stint's proposals are matched (cf. MultiPaxos).
    if (!cons_.is_leader(ctx)) {
      proposed_at_.clear();
    } else if (!proposed_at_.empty()) {
      overload_.note_sojourn(ctx.now(), ctx.now() - proposed_at_.front());
      proposed_at_.pop_front();
    }
  }
  settle_frontier_ = std::max(settle_frontier_, inst + 1);
  if (value.empty()) {
    flush(ctx);  // no-op gap filler from a leader change
    return;
  }
  std::vector<Tuple> tuples;
  FC_ASSERT_MSG(decode_tuples(value, tuples), "undecodable consensus value");
  for (const Tuple& t : tuples) {
    const TupleId id = id_of(t);
    if (ordered_.contains(id)) continue;  // Decided \ Ordered
    apply_tuple(ctx, t);
    ordered_.insert(id);
    unordered_.erase(id);
  }
  // Every tuple pins this instance until its message is locally delivered —
  // including tuples skipped above (a post-restart replay has an empty
  // Ordered set and would re-apply them).
  for (const Tuple& t : tuples) {
    if (buffer_.was_delivered(t.mid)) continue;
    if (settle_pending_[inst].insert(t.mid).second) {
      settle_waiters_[t.mid].push_back(inst);
    }
  }
  buffer_.try_deliver(ctx);
  flush(ctx);  // the decision freed a pipeline slot
}

void TimestampProtocolBase::settle_note_delivered(MsgId mid) {
  const auto it = settle_waiters_.find(mid);
  if (it == settle_waiters_.end()) return;
  for (InstanceId inst : it->second) {
    const auto p = settle_pending_.find(inst);
    if (p == settle_pending_.end()) continue;
    p->second.erase(mid);
    if (p->second.empty()) settle_pending_.erase(p);
  }
  settle_waiters_.erase(it);
}

void TimestampProtocolBase::handle_set_hard(Context& ctx, const Tuple& tuple) {
  FC_ASSERT_MSG(tuple.group == cfg_.group, "SET-HARD for a foreign group");
  ++ch_;
  if (auto* o = ctx.obs()) {
    o->trace(tuple.mid, obs::SpanEventKind::kSetHardDecided, ctx.self(),
             cfg_.group, ctx.now());
  }
  buffer_.note_dst(tuple.mid, tuple.dst);
  if (tuple.dst.size() > 1) {
    // Global: park our own (deterministic) hard timestamp as a placeholder
    // and propagate it to every destination group. Skipped for messages in
    // the restored delivered set — catch-up after a storage recovery
    // replays old SET-HARDs, and every destination settled them long ago.
    if (buffer_.was_delivered(tuple.mid)) return;
    buffer_.add_entry(ctx, EntryKind::kPendingHard, cfg_.group, ch_, tuple.mid);
    hard_pending_[tuple.mid] = {ch_, tuple.dst};
    const bool transmit = cfg_.hard_send == Config::HardSend::kAll ||
                          cons_.is_leader(ctx);
    if (transmit) {
      rm_.multicast(ctx, tuple.dst,
                    AmSendHard{cfg_.group, ch_, tuple.mid, tuple.dst});
    }
  } else {
    // Local: the decided timestamp is already final (3δ path).
    buffer_.add_entry(ctx, EntryKind::kSyncHard, cfg_.group, ch_, tuple.mid);
  }
}

void TimestampProtocolBase::handle_sync_hard(Context& ctx, const Tuple& tuple) {
  if (tuple.ts > ch_) ch_ = tuple.ts;  // Lamport's rule
  if (auto* o = ctx.obs()) {
    o->trace(tuple.mid, obs::SpanEventKind::kSyncHard, ctx.self(), tuple.group,
             ctx.now());
  }
  buffer_.note_dst(tuple.mid, tuple.dst);
  if (tuple.group == cfg_.group) settle_own_hard(ctx, tuple.mid);
  buffer_.add_entry(ctx, EntryKind::kSyncHard, tuple.group, tuple.ts, tuple.mid);
}

void TimestampProtocolBase::settle_own_hard(Context& ctx, MsgId mid) {
  buffer_.remove_pending_hard(ctx, mid, cfg_.group);
  hard_pending_.erase(mid);
}

void TimestampProtocolBase::restage_all(Context& ctx) {
  staged_.clear();
  staged_.reserve(unordered_.size());
  for (const auto& [id, tuple] : unordered_) staged_.push_back(id);
  flush(ctx);
}

void TimestampProtocolBase::arm_repropose(Context& ctx) {
  if (repropose_armed_) return;
  repropose_armed_ = true;
  ctx.set_timer(cfg_.repropose_interval, [this, &ctx] {
    repropose_armed_ = false;
    if (!unordered_.empty()) restage_all(ctx);
    arm_repropose(ctx);
  });
}

}  // namespace fastcast
