#include "fastcast/amcast/multipaxos_amcast.hpp"

#include <algorithm>

#include "fastcast/common/assert.hpp"
#include "fastcast/obs/observability.hpp"
#include "fastcast/storage/storage.hpp"

namespace fastcast {

namespace {

bool addressed_to(const MulticastMessage& msg, GroupId g) {
  return std::find(msg.dst.begin(), msg.dst.end(), g) != msg.dst.end();
}

bool addressed_to(const MpIdRecord& rec, GroupId g) {
  return std::find(rec.dst.begin(), rec.dst.end(), g) != rec.dst.end();
}

}  // namespace

MultiPaxosAmcast::MultiPaxosAmcast(Config config, NodeId self)
    : cfg_(std::move(config)), self_(self), cons_(cfg_.consensus, self),
      overload_(cfg_.flow) {
  cons_.set_decide([this](InstanceId, const std::vector<std::byte>& value) {
    FC_ASSERT_MSG(ctx_ != nullptr, "decision before on_start");
    on_decide(*ctx_, value);
  });
}

void MultiPaxosAmcast::restore_durable(const storage::DurableState& durable) {
  const auto it = durable.groups.find(cfg_.consensus.group);
  cons_.restore_durable(it == durable.groups.end() ? nullptr : &it->second);
  // Re-decided batches replayed by consensus catch-up must not re-deliver.
  delivered_.insert(durable.delivered.begin(), durable.delivered.end());
  if (cfg_.ordering != Config::Ordering::kIds) return;
  // Id mode logs every body on arrival (store_body): a decided record may
  // still reference it after the leader's retransmissions stopped, so the
  // WAL is the only place the payload survives a crash before delivery.
  for (const auto& [mid, encoded] : durable.bodies) {
    std::vector<MulticastMessage> batch;
    if (!decode_msg_batch(encoded, batch)) continue;  // guarded by WAL CRC
    for (MulticastMessage& m : batch) {
      const MsgId id = m.id;
      const bool deliverable_here = cfg_.my_group != kNoGroup &&
                                    addressed_to(m, cfg_.my_group) &&
                                    !delivered_.contains(id);
      if (bodies_.emplace(id, std::move(m)).second && !deliverable_here) {
        retain_delivered(id);  // serve pulls, but bounded
      }
    }
  }
}

void MultiPaxosAmcast::on_start(Context& ctx) {
  ctx_ = &ctx;
  cons_.on_start(ctx);
}

void MultiPaxosAmcast::on_recover(Context& ctx) {
  ctx_ = &ctx;
  cons_.on_recover(ctx);
  // All timers died with the crash; re-arm what the current state needs.
  batch_timer_armed_ = false;
  pull_armed_ = false;
  pull_backoff_ = 1;
  flush(ctx);  // staged submissions from before the crash
  drain_pending(ctx);  // restored bodies may unblock replayed records
}

bool MultiPaxosAmcast::handle(Context& ctx, NodeId from, const Message& msg) {
  if (cons_.handle(ctx, from, msg)) return true;
  if (const auto* submit = std::get_if<MpSubmit>(&msg.payload)) {
    on_submit(ctx, submit->msg);
    return true;
  }
  if (const auto* body = std::get_if<MpBody>(&msg.payload)) {
    on_body(ctx, body->msg);
    return true;
  }
  if (const auto* req = std::get_if<MpBodyRequest>(&msg.payload)) {
    auto it = bodies_.find(req->mid);
    if (it != bodies_.end()) {
      ctx.send(from, Message{MpBody{it->second}});
      if (auto* o = ctx.obs()) {
        o->metrics.counter("multipaxos.body_pulls_served").inc();
      }
    }
    return true;
  }
  return false;
}

void MultiPaxosAmcast::on_submit(Context& ctx, const MulticastMessage& msg) {
  if (!cons_.is_leader(ctx)) return;  // client will retry against the leader
  if (cfg_.ordering == Config::Ordering::kIds) {
    if (seen_submissions_.contains(msg.id)) {
      // Duplicate retry: the record is staged/ordered already, but the
      // first dissemination may have been lost — re-send the body.
      // Already-accepted submissions bypass admission.
      disseminate(ctx, msg);
      return;
    }
    if (!admit_submission(ctx, msg)) return;
    seen_submissions_.insert(msg.id);
    disseminate(ctx, msg);
    store_body(ctx, msg);  // the leader's copy serves pull requests
    if (staged_ids_.empty()) first_staged_at_ = ctx.now();
    staged_ids_.push_back(MpIdRecord{msg.id, msg.sender, msg.dst});
    staged_at_.push_back(ctx.now());
    flush(ctx);
    return;
  }
  if (seen_submissions_.contains(msg.id)) return;  // duplicate retry
  if (!admit_submission(ctx, msg)) return;
  seen_submissions_.insert(msg.id);
  staged_.push_back(msg);
  staged_at_.push_back(ctx.now());
  flush(ctx);
}

bool MultiPaxosAmcast::admit_submission(Context& ctx, const MulticastMessage& msg) {
  if (!overload_.enabled()) return true;
  const Time now = ctx.now();
  auto& prop = cons_.proposer();
  const std::size_t depth = staged_.size() + staged_ids_.size() +
                            prop.queued() + prop.in_flight() +
                            pending_order_.size();
  overload_.note_depth(depth);
  // Arrival lag (client send → leader receipt) is the third congestion
  // signal, and the only one that sees queueing upstream of the protocol
  // clock: transport tx queues and the leader's own unprocessed-event
  // backlog. An overloaded receiver whose staging and propose→decide waits
  // look healthy still saturates here, because messages arrive already
  // stale.
  const bool was_shedding = overload_.shedding();
  if (msg.sent_at > 0) overload_.note_arrival_lag(now, now - msg.sent_at);
  const bool shedding = overload_.overloaded(now);
  auto* o = ctx.obs();
  if (o) {
    o->metrics.gauge("flow.pipeline_depth")
        .record_max(static_cast<std::int64_t>(depth));
    o->metrics.gauge("flow.estimated_delay_ns")
        .record_max(overload_.total_delay());
    o->metrics.gauge("flow.total_delay_now").set(overload_.total_delay());
    o->metrics.gauge("flow.arrival_lag_now").set(overload_.arrival_lag());
    if (shedding != was_shedding) {
      o->metrics
          .counter(shedding ? "flow.shed_entered" : "flow.shed_exited")
          .inc();
    }
  }
  // Deadline-aware early drop: if the current queueing-delay estimate
  // already exceeds the client's deadline, ordering the message would burn
  // a consensus slot on work guaranteed to miss.
  if (msg.deadline > 0 && now + overload_.estimated_delay() > msg.deadline) {
    if (o) o->metrics.counter("flow.expired").inc();
    ctx.send(msg.sender, Message{Busy{msg.id, Busy::Reason::kExpired,
                                      /*advisory=*/false, overload_.retry_after()}});
    return false;
  }
  if (shedding) {
    if (o) o->metrics.counter("flow.rejected").inc();
    ctx.send(msg.sender, Message{Busy{msg.id, Busy::Reason::kOverload,
                                      /*advisory=*/false, overload_.retry_after()}});
    return false;
  }
  // ECN-style early mark: rejection is the only congestion signal a
  // MultiPaxos client ever sees, and a signal that costs a request costs
  // goodput. Marking (admit + advisory Busy) with probability proportional
  // to the delay excess lets paced clients converge on capacity while the
  // queue is still shallow, keeping the gate itself a rare backstop.
  const double mark_p = overload_.mark_probability(now);
  if (mark_p > 0 && (mark_p >= 1.0 || ctx.rng().bernoulli(mark_p))) {
    if (o) o->metrics.counter("flow.marks").inc();
    ctx.send(msg.sender, Message{Busy{msg.id, Busy::Reason::kOverload,
                                      /*advisory=*/true, overload_.retry_after()}});
  }
  return true;
}

void MultiPaxosAmcast::disseminate(Context& ctx, const MulticastMessage& msg) {
  std::uint64_t copies = 0;
  for (GroupId g : msg.dst) {
    for (NodeId n : ctx.membership().members(g)) {
      if (n == ctx.self()) continue;
      ctx.send(n, Message{MpBody{msg}});
      ++copies;
    }
  }
  if (cfg_.my_group != kNoGroup && addressed_to(msg, cfg_.my_group)) {
    store_body(ctx, msg);
  }
  if (auto* o = ctx.obs()) {
    o->metrics.counter("multipaxos.bodies_sent").inc(copies);
    o->metrics.counter("multipaxos.body_bytes_sent")
        .inc(copies * msg.payload.size());
  }
}

void MultiPaxosAmcast::store_body(Context& ctx, const MulticastMessage& msg) {
  if (delivered_.contains(msg.id)) return;
  if (!bodies_.emplace(msg.id, msg).second) return;
  if (storage::NodeStorage* st = ctx.storage()) {
    // Input, not externalization — logged unconditionally, no durability
    // gate. Once the leader stops re-sending, this WAL record is the only
    // copy a restarted node can still deliver (or serve to a peer).
    st->log_body(msg.id, encode_msg_batch({msg}));
    st->commit();
  }
  if (cfg_.my_group == kNoGroup || !addressed_to(msg, cfg_.my_group)) {
    // Never delivered here (orderer / foreign destination): bound the copy
    // through the retention ring immediately.
    retain_delivered(msg.id);
  }
}

void MultiPaxosAmcast::on_body(Context& ctx, const MulticastMessage& msg) {
  if (delivered_.contains(msg.id)) return;
  store_body(ctx, msg);
  drain_pending(ctx);
}

void MultiPaxosAmcast::flush(Context& ctx, bool force) {
  if (cfg_.ordering == Config::Ordering::kIds) {
    // Accumulate under a size/time threshold: propose once the batch holds
    // batch_fill records or batch_delay elapsed since its first record.
    // batch_delay == 0 disables time-based holding entirely.
    auto ripe = [&] {
      return force || cfg_.batch_delay == 0 ||
             staged_ids_.size() >= cfg_.batch_fill ||
             ctx.now() - first_staged_at_ >= effective_batch_delay();
    };
    while (!staged_ids_.empty() && cons_.window_open() && ripe()) {
      std::vector<MpIdRecord> batch;
      const std::size_t n = std::min(staged_ids_.size(), cfg_.max_batch);
      batch.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(staged_ids_.front()));
        staged_ids_.pop_front();
        if (!staged_at_.empty()) {
          overload_.note_sojourn(ctx.now(), ctx.now() - staged_at_.front());
          staged_at_.pop_front();
        }
      }
      if (auto* o = ctx.obs()) {
        o->metrics.histogram("multipaxos.batch_records")
            .observe(static_cast<std::int64_t>(batch.size()));
      }
      cons_.propose(ctx, encode_id_batch(batch));
      if (overload_.enabled()) proposed_at_.push_back(ctx.now());
      first_staged_at_ = ctx.now();  // next accumulation epoch
    }
    if (!staged_ids_.empty() && cfg_.batch_delay > 0) arm_batch_timer(ctx);
    return;
  }
  while (!staged_.empty() && cons_.window_open()) {
    std::vector<MulticastMessage> batch;
    const std::size_t n = std::min(staged_.size(), cfg_.max_batch);
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(staged_.front()));
      staged_.pop_front();
      if (!staged_at_.empty()) {
        overload_.note_sojourn(ctx.now(), ctx.now() - staged_at_.front());
        staged_at_.pop_front();
      }
    }
    cons_.propose(ctx, encode_msg_batch(batch));
    if (overload_.enabled()) proposed_at_.push_back(ctx.now());
  }
}

// Group commit under pressure: when admission is paced, arrivals slow down
// and time-capped batches get *smaller* — raising per-instance overhead
// exactly when capacity is scarcest. Stretching the accumulation window up
// to 3x with load keeps batches full for a latency cost (sub-millisecond)
// that is noise next to the congestion the fuller batches relieve.
Duration MultiPaxosAmcast::effective_batch_delay() const {
  if (!overload_.enabled()) return cfg_.batch_delay;
  const auto target = static_cast<double>(overload_.options().target_delay);
  const double load =
      std::min(1.0, static_cast<double>(overload_.total_delay()) / target);
  return static_cast<Duration>(static_cast<double>(cfg_.batch_delay) *
                               (1.0 + 2.0 * load));
}

void MultiPaxosAmcast::arm_batch_timer(Context& ctx) {
  if (batch_timer_armed_) return;
  batch_timer_armed_ = true;
  const Time due = first_staged_at_ + effective_batch_delay();
  const Duration wait = due > ctx.now() ? due - ctx.now() : Duration{1};
  ctx.set_timer(wait, [this, &ctx] {
    batch_timer_armed_ = false;
    if (!staged_ids_.empty()) flush(ctx, /*force=*/true);
  });
}

void MultiPaxosAmcast::on_decide(Context& ctx, const std::vector<std::byte>& value) {
  if (overload_.enabled()) {
    // Propose→decide round trip is the second sojourn signal: it grows as
    // the pipelined window and acceptor queues fill. Only the proposals of
    // the *current* leadership stint are matched; a demoted leader's stale
    // stamps would otherwise inflate the estimate after re-election.
    if (!cons_.is_leader(ctx)) {
      proposed_at_.clear();
    } else if (!proposed_at_.empty()) {
      overload_.note_sojourn(ctx.now(), ctx.now() - proposed_at_.front());
      proposed_at_.pop_front();
    }
  }
  if (!value.empty()) {
    if (cfg_.ordering == Config::Ordering::kIds) {
      std::vector<MpIdRecord> batch;
      FC_ASSERT_MSG(decode_id_batch(value, batch), "undecodable id batch");
      for (const MpIdRecord& rec : batch) {
        ++ordered_count_;
        if (auto* o = ctx.obs()) {
          o->metrics.counter("multipaxos.ordered").inc();
        }
        if (cfg_.my_group == kNoGroup) continue;  // pure orderer
        if (!addressed_to(rec, cfg_.my_group)) continue;
        if (delivered_.contains(rec.mid)) continue;  // re-proposed duplicate
        if (!pending_set_.insert(rec.mid).second) continue;
        pending_order_.push_back(rec);
      }
      drain_pending(ctx);
    } else {
      std::vector<MulticastMessage> batch;
      FC_ASSERT_MSG(decode_msg_batch(value, batch), "undecodable MultiPaxos batch");
      for (const MulticastMessage& msg : batch) {
        ++ordered_count_;
        if (auto* o = ctx.obs()) {
          o->metrics.counter("multipaxos.ordered").inc();
        }
        if (cfg_.my_group == kNoGroup) continue;  // pure orderer delivers nothing
        if (!addressed_to(msg, cfg_.my_group)) continue;
        if (!delivered_.insert(msg.id).second) continue;  // re-proposed duplicate
        deliver(ctx, msg);
      }
    }
  }
  flush(ctx);
}

void MultiPaxosAmcast::drain_pending(Context& ctx) {
  // Deliver strictly in decision order; the queue head gates on its body.
  bool progressed = false;
  while (!pending_order_.empty()) {
    const MsgId mid = pending_order_.front().mid;
    auto it = bodies_.find(mid);
    if (it == bodies_.end()) break;  // body still in flight; stall
    const MulticastMessage body = it->second;
    pending_order_.pop_front();
    pending_set_.erase(mid);
    delivered_.insert(mid);
    retain_delivered(mid);
    progressed = true;
    deliver(ctx, body);
  }
  if (progressed) pull_backoff_ = 1;
  if (!pending_order_.empty()) {
    if (auto* o = ctx.obs()) {
      o->metrics.gauge("multipaxos.stalled_deliveries")
          .record_max(static_cast<std::int64_t>(pending_order_.size()));
    }
    arm_body_pull(ctx);
  }
}

void MultiPaxosAmcast::retain_delivered(MsgId mid) {
  retained_.push_back(mid);
  while (retained_.size() > cfg_.retain_bodies) {
    bodies_.erase(retained_.front());
    retained_.pop_front();
  }
}

void MultiPaxosAmcast::arm_body_pull(Context& ctx) {
  if (pull_armed_ || pending_order_.empty()) return;
  pull_armed_ = true;
  ctx.set_timer(cfg_.body_pull_interval * pull_backoff_, [this, &ctx] {
    pull_armed_ = false;
    if (pending_order_.empty()) return;  // body arrived meanwhile
    const MpIdRecord& head = pending_order_.front();
    // Candidate holders: the ordering members (the leader stored a copy at
    // submit time) and the other destination replicas (any that delivered
    // still retains the body for a while). Rotate so a crashed candidate
    // does not absorb every request.
    std::vector<NodeId> candidates;
    for (NodeId n : cfg_.consensus.members) {
      if (n != ctx.self()) candidates.push_back(n);
    }
    for (GroupId g : head.dst) {
      for (NodeId n : ctx.membership().members(g)) {
        if (n != ctx.self()) candidates.push_back(n);
      }
    }
    if (!candidates.empty()) {
      const NodeId target = candidates[pull_rr_++ % candidates.size()];
      ctx.send(target, Message{MpBodyRequest{head.mid}});
      if (auto* o = ctx.obs()) {
        o->metrics.counter("multipaxos.body_pulls").inc();
      }
    }
    if (pull_backoff_ < 8) pull_backoff_ *= 2;
    arm_body_pull(ctx);
  });
}

}  // namespace fastcast
