#include "fastcast/amcast/multipaxos_amcast.hpp"

#include <algorithm>

#include "fastcast/common/assert.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast {

MultiPaxosAmcast::MultiPaxosAmcast(Config config, NodeId self)
    : cfg_(std::move(config)), self_(self), cons_(cfg_.consensus, self) {
  cons_.set_decide([this](InstanceId, const std::vector<std::byte>& value) {
    FC_ASSERT_MSG(ctx_ != nullptr, "decision before on_start");
    on_decide(*ctx_, value);
  });
}

void MultiPaxosAmcast::restore_durable(const storage::DurableState& durable) {
  const auto it = durable.groups.find(cfg_.consensus.group);
  cons_.restore_durable(it == durable.groups.end() ? nullptr : &it->second);
  // Re-decided batches replayed by consensus catch-up must not re-deliver.
  delivered_.insert(durable.delivered.begin(), durable.delivered.end());
}

void MultiPaxosAmcast::on_start(Context& ctx) {
  ctx_ = &ctx;
  cons_.on_start(ctx);
}

void MultiPaxosAmcast::on_recover(Context& ctx) {
  ctx_ = &ctx;
  cons_.on_recover(ctx);
  flush(ctx);  // staged submissions from before the crash
}

bool MultiPaxosAmcast::handle(Context& ctx, NodeId from, const Message& msg) {
  if (cons_.handle(ctx, from, msg)) return true;
  if (const auto* submit = std::get_if<MpSubmit>(&msg.payload)) {
    on_submit(ctx, submit->msg);
    return true;
  }
  return false;
}

void MultiPaxosAmcast::on_submit(Context& ctx, const MulticastMessage& msg) {
  if (!cons_.is_leader(ctx)) return;  // client will retry against the leader
  if (!seen_submissions_.insert(msg.id).second) return;  // duplicate retry
  staged_.push_back(msg);
  flush(ctx);
}

void MultiPaxosAmcast::flush(Context& ctx) {
  while (!staged_.empty() && cons_.window_open()) {
    std::vector<MulticastMessage> batch;
    const std::size_t n = std::min(staged_.size(), cfg_.max_batch);
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(staged_.front()));
      staged_.pop_front();
    }
    cons_.propose(ctx, encode_msg_batch(batch));
  }
}

void MultiPaxosAmcast::on_decide(Context& ctx, const std::vector<std::byte>& value) {
  if (!value.empty()) {
    std::vector<MulticastMessage> batch;
    FC_ASSERT_MSG(decode_msg_batch(value, batch), "undecodable MultiPaxos batch");
    for (const MulticastMessage& msg : batch) {
      ++ordered_count_;
      if (auto* o = ctx.obs()) {
        o->metrics.counter("multipaxos.ordered").inc();
      }
      if (cfg_.my_group == kNoGroup) continue;  // pure orderer delivers nothing
      if (std::find(msg.dst.begin(), msg.dst.end(), cfg_.my_group) == msg.dst.end()) {
        continue;  // not addressed to this replica's group
      }
      if (!delivered_.insert(msg.id).second) continue;  // re-proposed duplicate
      deliver(ctx, msg);
    }
  }
  flush(ctx);
}

}  // namespace fastcast
