#include "fastcast/amcast/delivery_buffer.hpp"

#include <algorithm>

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"
#include "fastcast/storage/storage.hpp"

namespace fastcast {

void DeliveryBuffer::note_dst(MsgId mid, const std::vector<GroupId>& dst) {
  if (delivered_.contains(mid)) return;
  auto& pm = msgs_[mid];
  if (!pm.dst_known) {
    pm.dst = dst;
    pm.dst_known = true;
  }
}

void DeliveryBuffer::store_body(Context& ctx, const MulticastMessage& msg) {
  if (delivered_.contains(msg.id)) return;
  auto& pm = msgs_[msg.id];
  if (!pm.body.has_value()) {
    pm.body = msg;
    note_dst(msg.id, msg.dst);
    if (storage::NodeStorage* st = ctx.storage()) {
      // Persist the payload: after the origin's retransmission settles,
      // replaying this record is the only way a restarted node can still
      // deliver the message. Input, not externalization — no gate.
      st->log_body(msg.id, encode_msg_batch({msg}));
      st->commit();
    }
    // A formed FINAL may have been waiting for this body.
    if (pm.final_formed) try_deliver(ctx);
  }
}

void DeliveryBuffer::restore_delivered(const std::set<MsgId>& delivered) {
  delivered_.insert(delivered.begin(), delivered.end());
}

void DeliveryBuffer::restore_body(const MulticastMessage& msg) {
  if (delivered_.contains(msg.id)) return;
  auto& pm = msgs_[msg.id];
  // Unlike store_body this does not attempt delivery when final_formed is
  // set — and must not need to: restore_body runs only from
  // restore_durable, before any add_entry, and timestamps are never
  // persisted (see timestamp_base.cpp), so no restored message can have a
  // formed FINAL yet. FINALs formed later by the consensus catch-up replay
  // go through add_entry → try_deliver, which sees this body. The recover
  // path additionally runs try_deliver as a backstop, so if this invariant
  // is ever broken the message stalls a recovery sweep, not forever.
  FC_ASSERT_MSG(!pm.final_formed,
                "restore_body after a FINAL formed: restore must precede "
                "consensus replay");
  if (!pm.body.has_value()) {
    pm.body = msg;
    if (!pm.dst_known) {
      pm.dst = msg.dst;
      pm.dst_known = true;
    }
  }
}

bool DeliveryBuffer::has_body(MsgId mid) const {
  auto it = msgs_.find(mid);
  return it != msgs_.end() && it->second.body.has_value();
}

void DeliveryBuffer::add_entry(Context& ctx, EntryKind kind, GroupId group,
                               Ts ts, MsgId mid) {
  if (delivered_.contains(mid)) return;
  auto& pm = msgs_[mid];
  // A SYNC-SOFT can be ordered after the slow path already completed the
  // message's FINAL; it is no longer relevant (the paper's B would keep it
  // forever, blocking deliveries — see DESIGN.md).
  if (pm.final_formed) return;
  for (const Entry& e : pm.entries) {
    if (e.kind == kind && e.group == group) return;  // duplicate
  }
  pm.entries.push_back(Entry{kind, group, ts});
  blocking_.insert(TsKey{ts, mid});
  if (auto* o = ctx.obs()) {
    o->metrics.gauge("amcast.delivery_buffer.max_depth")
        .record_max(static_cast<std::int64_t>(msgs_.size()));
  }
  if (kind == EntryKind::kSyncHard) {
    ++pm.sync_hard_count;
    try_form_final(ctx, mid, pm);
  }
  try_deliver(ctx);
}

void DeliveryBuffer::remove_pending_hard(Context& ctx, MsgId mid, GroupId group) {
  auto it = msgs_.find(mid);
  if (it == msgs_.end()) return;
  auto& entries = it->second.entries;
  for (auto e = entries.begin(); e != entries.end(); ++e) {
    if (e->kind == EntryKind::kPendingHard && e->group == group) {
      auto b = blocking_.find(TsKey{e->ts, mid});
      FC_ASSERT(b != blocking_.end());
      blocking_.erase(b);
      entries.erase(e);
      // Deliberately no try_deliver() here: the caller immediately inserts
      // the ordered SYNC-HARD that replaces this placeholder (with the
      // same timestamp). Attempting delivery in the gap would let another
      // message with a larger final timestamp jump ahead of this one.
      (void)ctx;
      return;
    }
  }
}

std::optional<Ts> DeliveryBuffer::sync_soft_ts(MsgId mid, GroupId group) const {
  auto it = msgs_.find(mid);
  if (it == msgs_.end()) return std::nullopt;
  for (const Entry& e : it->second.entries) {
    if (e.kind == EntryKind::kSyncSoft && e.group == group) return e.ts;
  }
  return std::nullopt;
}

bool DeliveryBuffer::has_sync_hard(MsgId mid, GroupId group) const {
  auto it = msgs_.find(mid);
  if (it == msgs_.end()) return false;
  for (const Entry& e : it->second.entries) {
    if (e.kind == EntryKind::kSyncHard && e.group == group) return true;
  }
  return false;
}

void DeliveryBuffer::try_form_final(Context& ctx, MsgId mid, PerMessage& pm) {
  (void)ctx;
  if (pm.final_formed || !pm.dst_known) return;
  if (pm.sync_hard_count < pm.dst.size()) return;
  // Sanity: one SYNC-HARD per destination group.
  Ts max_ts = 0;
  std::size_t hard_seen = 0;
  for (const Entry& e : pm.entries) {
    if (e.kind != EntryKind::kSyncHard) continue;
    FC_ASSERT_MSG(std::find(pm.dst.begin(), pm.dst.end(), e.group) != pm.dst.end(),
                  "SYNC-HARD from a non-destination group");
    max_ts = std::max(max_ts, e.ts);
    ++hard_seen;
  }
  FC_ASSERT(hard_seen == pm.dst.size());

  // Replace every tentative entry of this message by its FINAL.
  for (const Entry& e : pm.entries) {
    auto b = blocking_.find(TsKey{e.ts, mid});
    FC_ASSERT(b != blocking_.end());
    blocking_.erase(b);
  }
  pm.entries.clear();
  pm.final_formed = true;
  pm.final_key = TsKey{max_ts, mid};
  finals_.insert(pm.final_key);
  blocking_.insert(pm.final_key);
}

void DeliveryBuffer::try_deliver(Context& ctx) {
  // Deliver while the smallest FINAL is smaller than every other buffered
  // timestamp — since a FINAL's own tentative entries were removed, that
  // is exactly "the FINAL is the minimum of the blocking set".
  while (!finals_.empty()) {
    const TsKey f = *finals_.begin();
    FC_ASSERT(!blocking_.empty());
    if (*blocking_.begin() < f) return;  // some other message may precede
    FC_ASSERT(*blocking_.begin() == f);

    auto it = msgs_.find(f.mid);
    FC_ASSERT(it != msgs_.end());
    PerMessage& pm = it->second;
    if (!pm.body.has_value()) return;  // START still in flight; stall

    const MulticastMessage body = std::move(*pm.body);
    finals_.erase(finals_.begin());
    blocking_.erase(blocking_.find(f));
    msgs_.erase(it);
    delivered_.insert(f.mid);
    ++delivered_count_;
    if (deliver_) deliver_(ctx, body);
  }
}

}  // namespace fastcast
