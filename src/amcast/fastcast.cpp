#include "fastcast/amcast/fastcast.hpp"

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"
#include <string>

namespace fastcast {

void FastCast::on_rdeliver(Context& ctx, NodeId origin, const AmcastPayload& payload) {
  (void)origin;
  if (const auto* start = std::get_if<AmStart>(&payload)) {
    // Task 1.
    buffer_.store_body(ctx, start->msg);
    stage(ctx, Tuple{TupleKind::kSetHard, cfg_.group, 0, start->msg.id,
                     start->msg.dst});
    return;
  }
  if (const auto* soft = std::get_if<AmSendSoft>(&payload)) {
    // Task 2.
    buffer_.note_dst(soft->mid, soft->dst);
    stage(ctx, Tuple{TupleKind::kSyncSoft, soft->from_group, soft->ts, soft->mid,
                     soft->dst});
    return;
  }
  const auto& hard = std::get<AmSendHard>(payload);
  // Task 3. Whether the tuple is queued for the second consensus depends
  // on the fast path's state:
  //   * soft already ordered with the same x — Task 6 fires now, no
  //     consensus needed;
  //   * soft seen but not ordered yet — defer; its decision resolves the
  //     match (Task 6) or promotes the hard for consensus (mismatch);
  //   * no soft seen / ordered with a different x — genuine slow path,
  //     propose immediately as BaseCast would.
  buffer_.note_dst(hard.mid, hard.dst);
  const Tuple tuple{TupleKind::kSyncHard, hard.from_group, hard.ts, hard.mid,
                    hard.dst};
  const TupleId id = id_of(tuple);
  if (known(id)) {
    try_task6(ctx, tuple);
    return;
  }
  const auto soft_ts = buffer_.sync_soft_ts(hard.mid, hard.from_group);
  if (soft_ts.has_value() && *soft_ts == hard.ts) {
    try_task6(ctx, tuple);
    return;
  }
  const TupleId soft_id{TupleKind::kSyncSoft, hard.from_group, hard.mid};
  if (!options_.eager_hard_propose && !soft_ts.has_value() && known(soft_id)) {
    track_deferred(tuple);
    return;
  }
  stage(ctx, tuple);
}

void FastCast::before_propose(Context& ctx, const std::vector<Tuple>& batch) {
  // Algorithm 2, Task 4 (leader only): guess hard timestamps with the soft
  // clock and propagate the guesses one consensus earlier than SEND-HARD.
  if (cs_ < ch_) cs_ = ch_;
  for (const Tuple& t : batch) {
    if (t.kind == TupleKind::kSetHard) {
      ++cs_;
      if (t.dst.size() > 1 && !soft_sent_.contains(t.mid)) {
        soft_sent_.insert(t.mid);
        const Ts wire_ts = options_.force_slow_path ? cs_ + kForcedSlowOffset : cs_;
        ++guesses_sent_;
        if (auto* o = ctx.obs()) {
          o->metrics.counter("fastcast.guesses_sent").inc();
        }
        sent_guess_.emplace(t.mid, wire_ts);
        rm_.multicast(ctx, t.dst, AmSendSoft{cfg_.group, wire_ts, t.mid, t.dst});
      }
    } else if (t.ts > cs_) {
      cs_ = t.ts;  // soft clock must not trail unordered timestamps
    }
  }
}

void FastCast::apply_tuple(Context& ctx, const Tuple& tuple) {
  switch (tuple.kind) {
    case TupleKind::kSetHard: {
      auto it = sent_guess_.find(tuple.mid);
      if (it != sent_guess_.end()) {
        if (it->second != ch_ + 1) {
          ++guess_mismatches_;
          if (auto* o = ctx.obs()) {
            o->metrics.counter("fastcast.guess_mismatches").inc();
          }
        }
        sent_guess_.erase(it);
      }
      handle_set_hard(ctx, tuple);
      return;
    }
    case TupleKind::kSyncSoft: {
      // Task 5: Lamport update, then buffer the ordered guess; the guess
      // may immediately validate a SEND-HARD that arrived earlier (Task 6).
      if (tuple.ts > ch_) ch_ = tuple.ts;
      if (auto* o = ctx.obs()) {
        o->trace(tuple.mid, obs::SpanEventKind::kSyncSoft, ctx.self(),
                 tuple.group, ctx.now());
      }
      buffer_.note_dst(tuple.mid, tuple.dst);
      buffer_.add_entry(ctx, EntryKind::kSyncSoft, tuple.group, tuple.ts, tuple.mid);
      const TupleId hard_id{TupleKind::kSyncHard, tuple.group, tuple.mid};
      if (const Tuple* hard = find_unordered(hard_id)) {
        if (hard->ts == tuple.ts) {
          try_task6(ctx, *hard);
        } else {
          // Wrong guess: the deferred SYNC-HARD now needs the second
          // consensus round (the BaseCast slow path).
          promote_deferred(ctx, hard_id);
        }
      }
      return;
    }
    case TupleKind::kSyncHard:
      // Task 5 slow-path completion (Task 6 missed or mismatched).
      ++slow_hits_;
      if (auto* o = ctx.obs()) {
        o->metrics.counter("fastcast.slow_path").inc();
      }
      handle_sync_hard(ctx, tuple);
      return;
  }
}

void FastCast::try_task6(Context& ctx, Tuple hard_tuple) {
  FC_ASSERT(hard_tuple.kind == TupleKind::kSyncHard);
  const TupleId id = id_of(hard_tuple);
  if (is_ordered(id)) return;
  const auto soft = buffer_.sync_soft_ts(hard_tuple.mid, hard_tuple.group);
  if (!soft.has_value() || *soft != hard_tuple.ts) {
    FC_TRACE("node %u task6 miss: mid=%llu group=%u hard=%llu soft=%s", ctx.self(),
             (unsigned long long)hard_tuple.mid, hard_tuple.group,
             (unsigned long long)hard_tuple.ts,
             soft ? std::to_string(*soft).c_str() : "absent");
    return;
  }
  FC_TRACE("node %u task6 match: mid=%llu group=%u ts=%llu", ctx.self(),
           (unsigned long long)hard_tuple.mid, hard_tuple.group,
           (unsigned long long)hard_tuple.ts);

  // Match: the guess was right — treat the SYNC-HARD as ordered without
  // the second consensus. CH is not updated here: the SYNC-SOFT with the
  // same x already raised it in Task 5, identically on every member, so
  // members that order this tuple through the decision stream instead
  // compute the same clock.
  ++fast_hits_;
  if (auto* o = ctx.obs()) {
    o->metrics.counter("fastcast.fast_path").inc();
    o->trace(hard_tuple.mid, obs::SpanEventKind::kTask6Match, ctx.self(),
             hard_tuple.group, ctx.now());
  }
  mark_ordered_out_of_band(id);
  buffer_.note_dst(hard_tuple.mid, hard_tuple.dst);
  if (hard_tuple.group == cfg_.group) settle_own_hard(ctx, hard_tuple.mid);
  buffer_.add_entry(ctx, EntryKind::kSyncHard, hard_tuple.group, hard_tuple.ts,
                    hard_tuple.mid);
  buffer_.try_deliver(ctx);
}

}  // namespace fastcast
