#include "fastcast/amcast/node.hpp"

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"

namespace fastcast {

ReplicaNode::ReplicaNode(std::shared_ptr<AtomicMulticast> protocol, Options options)
    : protocol_(std::move(protocol)), options_(options) {
  FC_ASSERT(protocol_ != nullptr);
  protocol_->set_deliver([this](Context& ctx, const MulticastMessage& msg) {
    ++delivered_count_;
    if (auto* o = ctx.obs()) {
      o->metrics.counter("amcast.adeliver").inc();
      o->trace(msg.id, obs::SpanEventKind::kAdeliver, ctx.self(),
               ctx.my_group(), ctx.now(),
               static_cast<std::uint32_t>(msg.dst.size()));
    }
    if (options_.send_acks && msg.sender != kInvalidNode) {
      ctx.send(msg.sender, Message{AmAck{msg.id, ctx.my_group(), ctx.self()}});
    }
    for (const auto& observer : observers_) observer(ctx, msg);
  });
}

ReplicaNode::ReplicaNode(std::shared_ptr<AtomicMulticast> protocol)
    : ReplicaNode(std::move(protocol), Options{}) {}

void ReplicaNode::on_start(Context& ctx) { protocol_->on_start(ctx); }

void ReplicaNode::on_recover(Context& ctx) { protocol_->on_recover(ctx); }

void ReplicaNode::on_message(Context& ctx, NodeId from, const Message& msg) {
  if (!protocol_->handle(ctx, from, msg)) {
    FC_TRACE("node %u: unhandled %s from %u", ctx.self(), message_kind(msg), from);
  }
}

}  // namespace fastcast
