#include "fastcast/amcast/node.hpp"

#include "fastcast/common/assert.hpp"
#include "fastcast/common/logging.hpp"
#include "fastcast/obs/observability.hpp"
#include "fastcast/storage/storage.hpp"

namespace fastcast {

ReplicaNode::ReplicaNode(std::shared_ptr<AtomicMulticast> protocol, Options options)
    : protocol_(std::move(protocol)), options_(options) {
  FC_ASSERT(protocol_ != nullptr);
  protocol_->set_deliver([this](Context& ctx, const MulticastMessage& msg) {
    ++delivered_count_;
    if (storage::NodeStorage* st = ctx.storage()) {
      // The delivered record is what recovery dedups on; the ack and the
      // checker/application observers must not see a delivery the WAL can
      // still forget, so they wait behind its commit.
      const storage::Lsn lsn = st->log_delivered(msg.id);
      st->when_durable(lsn, [this, c = &ctx, msg]() { externalize(*c, msg); });
      st->commit();
    } else {
      externalize(ctx, msg);
    }
  });
}

ReplicaNode::ReplicaNode(std::shared_ptr<AtomicMulticast> protocol)
    : ReplicaNode(std::move(protocol), Options{}) {}

void ReplicaNode::externalize(Context& ctx, const MulticastMessage& msg) {
  if (auto* o = ctx.obs()) {
    o->metrics.counter("amcast.adeliver").inc();
    o->trace(msg.id, obs::SpanEventKind::kAdeliver, ctx.self(), ctx.my_group(),
             ctx.now(), static_cast<std::uint32_t>(msg.dst.size()));
  }
  if (options_.send_acks && msg.sender != kInvalidNode) {
    ctx.send(msg.sender, Message{AmAck{msg.id, ctx.my_group(), ctx.self()}});
  }
  for (const auto& observer : observers_) observer(ctx, msg);
}

void ReplicaNode::redeliver_in_doubt(Context& ctx) {
  storage::NodeStorage* st = ctx.storage();
  if (st == nullptr) return;
  for (const storage::NodeStorage::InDoubtDelivery& d :
       st->in_doubt_deliveries()) {
    MulticastMessage msg;
    bool decoded = false;
    if (!d.body.empty()) {
      std::vector<MulticastMessage> batch;
      if (decode_msg_batch(d.body, batch)) {
        for (MulticastMessage& m : batch) {
          if (m.id != d.mid) continue;
          msg = std::move(m);
          decoded = true;
        }
      }
    }
    if (!decoded) {
      // No body in the WAL (e.g. state-machine protocols that only log
      // consensus values). The ack and the delivery observers key on the
      // id, and the id encodes the sender.
      msg.id = d.mid;
      msg.sender = static_cast<NodeId>(d.mid >> 32);
    }
    externalize(ctx, msg);
  }
}

void ReplicaNode::arm_commit_tick(Context& ctx) {
  storage::NodeStorage* st = ctx.storage();
  if (st == nullptr ||
      st->fsync_policy().mode != storage::FsyncPolicy::Mode::kBatch) {
    return;
  }
  if (commit_tick_armed_) return;
  commit_tick_armed_ = true;
  // The batch policy's time bound: records that never fill a batch still
  // become durable (and their gated sends released) within the interval.
  ctx.set_timer(st->fsync_policy().batch_interval, [this, &ctx] {
    commit_tick_armed_ = false;
    if (storage::NodeStorage* s = ctx.storage()) s->flush();
    arm_commit_tick(ctx);
  });
}

void ReplicaNode::on_start(Context& ctx) {
  redeliver_in_doubt(ctx);
  protocol_->on_start(ctx);
  arm_commit_tick(ctx);
}

void ReplicaNode::on_recover(Context& ctx) {
  commit_tick_armed_ = false;
  redeliver_in_doubt(ctx);
  protocol_->on_recover(ctx);
  arm_commit_tick(ctx);
}

void ReplicaNode::on_message(Context& ctx, NodeId from, const Message& msg) {
  if (!protocol_->handle(ctx, from, msg)) {
    FC_TRACE("node %u: unhandled %s from %u", ctx.self(), message_kind(msg), from);
  }
}

}  // namespace fastcast
