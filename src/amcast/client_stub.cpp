#include "fastcast/amcast/client_stub.hpp"

#include "fastcast/common/assert.hpp"

namespace fastcast {

void MultiPaxosClientStub::amulticast(Context& ctx, const MulticastMessage& msg) {
  FC_ASSERT(!cfg_.ordering_members.empty());
  if (auto* o = ctx.obs()) {
    o->metrics.counter("client.mcast").inc();
    o->trace(msg.id, obs::SpanEventKind::kMcast, ctx.self(), kNoGroup,
             ctx.now(), static_cast<std::uint32_t>(msg.dst.size()));
  }
  pending_.emplace(msg.id, msg);
  ctx.send(cfg_.ordering_members.front(), Message{MpSubmit{msg}});
  if (!cfg_.reliable_links) arm_retry(ctx);
}

void MultiPaxosClientStub::arm_retry(Context& ctx) {
  if (timer_armed_) return;
  timer_armed_ = true;
  ctx.set_timer(cfg_.retry_interval, [this, &ctx] {
    timer_armed_ = false;
    if (pending_.empty()) return;
    // Rotate through ordering members so a crashed leader is bypassed.
    retry_target_ = (retry_target_ + 1) % cfg_.ordering_members.size();
    const NodeId target = cfg_.ordering_members[retry_target_];
    for (auto& [mid, msg] : pending_) {
      // Fresh transmission, fresh stamp: the leader's arrival-lag estimate
      // measures the path this frame took, not how old the request is (the
      // deadline carries that). A stale stamp would keep the estimate — and
      // the admission gate — pinned shut long after queues drained.
      if (msg.sent_at > 0) msg.sent_at = ctx.now();
      ctx.send(target, Message{MpSubmit{msg}});
    }
    arm_retry(ctx);
  });
}

}  // namespace fastcast
