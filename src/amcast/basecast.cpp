#include "fastcast/amcast/basecast.hpp"

#include "fastcast/common/assert.hpp"

namespace fastcast {

void BaseCast::on_rdeliver(Context& ctx, NodeId origin, const AmcastPayload& payload) {
  (void)origin;
  if (const auto* start = std::get_if<AmStart>(&payload)) {
    // Task 1: request a hard tentative timestamp from our group.
    buffer_.store_body(ctx, start->msg);
    stage(ctx, Tuple{TupleKind::kSetHard, cfg_.group, 0, start->msg.id,
                     start->msg.dst});
    return;
  }
  if (const auto* hard = std::get_if<AmSendHard>(&payload)) {
    // Task 2: order the remote group's hard tentative timestamp.
    buffer_.note_dst(hard->mid, hard->dst);
    stage(ctx, Tuple{TupleKind::kSyncHard, hard->from_group, hard->ts, hard->mid,
                     hard->dst});
    return;
  }
  FC_ASSERT_MSG(false, "BaseCast received a SEND-SOFT");
}

void BaseCast::apply_tuple(Context& ctx, const Tuple& tuple) {
  switch (tuple.kind) {
    case TupleKind::kSetHard:
      handle_set_hard(ctx, tuple);
      return;
    case TupleKind::kSyncHard:
      handle_sync_hard(ctx, tuple);
      return;
    case TupleKind::kSyncSoft:
      FC_ASSERT_MSG(false, "BaseCast ordered a SYNC-SOFT");
  }
}

}  // namespace fastcast
