#include "fastcast/runtime/membership.hpp"

#include "fastcast/common/assert.hpp"

namespace fastcast {

GroupId Membership::add_group(std::size_t replicas, const std::vector<RegionId>& regions) {
  FC_ASSERT_MSG(replicas >= 1, "a group needs at least one replica");
  FC_ASSERT_MSG(regions.size() == replicas, "one region per replica required");
  const auto g = static_cast<GroupId>(groups_.size());
  std::vector<NodeId> members;
  members.reserve(replicas);
  for (std::size_t i = 0; i < replicas; ++i) {
    const auto n = static_cast<NodeId>(group_of_.size());
    group_of_.push_back(g);
    region_of_.push_back(regions[i]);
    members.push_back(n);
  }
  groups_.push_back(std::move(members));
  return g;
}

NodeId Membership::add_client(RegionId region) {
  const auto n = static_cast<NodeId>(group_of_.size());
  group_of_.push_back(kNoGroup);
  region_of_.push_back(region);
  clients_.push_back(n);
  return n;
}

GroupId Membership::group_of(NodeId n) const {
  FC_ASSERT(n < group_of_.size());
  return group_of_[n];
}

RegionId Membership::region_of(NodeId n) const {
  FC_ASSERT(n < region_of_.size());
  return region_of_[n];
}

const std::vector<NodeId>& Membership::members(GroupId g) const {
  FC_ASSERT(g < groups_.size());
  return groups_[g];
}

std::size_t Membership::quorum_size(GroupId g) const {
  return members(g).size() / 2 + 1;
}

std::vector<NodeId> Membership::all_nodes() const {
  std::vector<NodeId> out(node_count());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<NodeId>(i);
  return out;
}

std::vector<NodeId> Membership::all_replicas() const {
  std::vector<NodeId> out;
  out.reserve(node_count() - clients_.size());
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (group_of_[i] != kNoGroup) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<NodeId> Membership::nodes_of_groups(const std::vector<GroupId>& dst) const {
  std::vector<NodeId> out;
  for (GroupId g : dst) {
    const auto& m = members(g);
    out.insert(out.end(), m.begin(), m.end());
  }
  return out;
}

}  // namespace fastcast
