#include "fastcast/runtime/message.hpp"

#include "fastcast/common/assert.hpp"

namespace fastcast {

namespace {

// Stable wire tags; order must never change once released.
enum class WireTag : std::uint8_t {
  kRmData = 1,
  kRmAck = 2,
  kP1a = 3,
  kP1b = 4,
  kP2a = 5,
  kP2b = 6,
  kPaxosNack = 7,
  kMpSubmit = 8,
  kAmAck = 9,
  kFdHeartbeat = 10,
  kP2bRequest = 11,
  kWatermarkAnnounce = 12,
  kRepairRequest = 13,
  kRepairSnapshot = 14,
  kP2bMore = 15,
  kMpBody = 16,
  kMpBodyRequest = 17,
  kBusy = 18,
};

enum class AmTag : std::uint8_t { kStart = 1, kSendSoft = 2, kSendHard = 3 };

void encode_groups(Writer& w, const std::vector<GroupId>& gs) {
  w.varint(gs.size());
  for (GroupId g : gs) w.varint(g);
}

bool decode_groups(Reader& r, std::vector<GroupId>& out) {
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > r.remaining()) return false;  // each entry ≥ 1 byte
  out.resize(n);
  for (auto& g : out) g = static_cast<GroupId>(r.varint());
  return r.ok();
}

void encode_ballot(Writer& w, const Ballot& b) {
  w.u32(b.round);
  w.u32(b.node);
}

bool decode_ballot(Reader& r, Ballot& b) {
  b.round = r.u32();
  b.node = r.u32();
  return r.ok();
}

void encode_value(Writer& w, const std::vector<std::byte>& v) { w.bytes(v); }

bool decode_value(Reader& r, std::vector<std::byte>& v) {
  v = r.bytes();
  return r.ok();
}

void encode_amcast(Writer& w, const AmcastPayload& p) {
  if (const auto* s = std::get_if<AmStart>(&p)) {
    w.u8(static_cast<std::uint8_t>(AmTag::kStart));
    encode(w, s->msg);
  } else if (const auto* ss = std::get_if<AmSendSoft>(&p)) {
    w.u8(static_cast<std::uint8_t>(AmTag::kSendSoft));
    w.varint(ss->from_group);
    w.varint(ss->ts);
    w.u64(ss->mid);
    encode_groups(w, ss->dst);
  } else {
    const auto& sh = std::get<AmSendHard>(p);
    w.u8(static_cast<std::uint8_t>(AmTag::kSendHard));
    w.varint(sh.from_group);
    w.varint(sh.ts);
    w.u64(sh.mid);
    encode_groups(w, sh.dst);
  }
}

bool decode_amcast(Reader& r, AmcastPayload& out) {
  const auto tag = static_cast<AmTag>(r.u8());
  if (!r.ok()) return false;
  switch (tag) {
    case AmTag::kStart: {
      AmStart s;
      if (!decode(r, s.msg)) return false;
      out = std::move(s);
      return true;
    }
    case AmTag::kSendSoft: {
      AmSendSoft s;
      s.from_group = static_cast<GroupId>(r.varint());
      s.ts = r.varint();
      s.mid = r.u64();
      if (!decode_groups(r, s.dst)) return false;
      out = std::move(s);
      return r.ok();
    }
    case AmTag::kSendHard: {
      AmSendHard s;
      s.from_group = static_cast<GroupId>(r.varint());
      s.ts = r.varint();
      s.mid = r.u64();
      if (!decode_groups(r, s.dst)) return false;
      out = std::move(s);
      return r.ok();
    }
  }
  return false;
}

}  // namespace

const char* to_string(TupleKind k) {
  switch (k) {
    case TupleKind::kSetHard: return "SET-HARD";
    case TupleKind::kSyncSoft: return "SYNC-SOFT";
    case TupleKind::kSyncHard: return "SYNC-HARD";
  }
  return "?";
}

const char* message_kind(const Message& m) {
  struct Visitor {
    const char* operator()(const RmData&) const { return "RmData"; }
    const char* operator()(const RmAck&) const { return "RmAck"; }
    const char* operator()(const P1a&) const { return "P1a"; }
    const char* operator()(const P1b&) const { return "P1b"; }
    const char* operator()(const P2a&) const { return "P2a"; }
    const char* operator()(const P2b&) const { return "P2b"; }
    const char* operator()(const PaxosNack&) const { return "PaxosNack"; }
    const char* operator()(const P2bRequest&) const { return "P2bRequest"; }
    const char* operator()(const MpSubmit&) const { return "MpSubmit"; }
    const char* operator()(const AmAck&) const { return "AmAck"; }
    const char* operator()(const FdHeartbeat&) const { return "FdHeartbeat"; }
    const char* operator()(const WatermarkAnnounce&) const { return "WatermarkAnnounce"; }
    const char* operator()(const RepairRequest&) const { return "RepairRequest"; }
    const char* operator()(const RepairSnapshot&) const { return "RepairSnapshot"; }
    const char* operator()(const P2bMore&) const { return "P2bMore"; }
    const char* operator()(const MpBody&) const { return "MpBody"; }
    const char* operator()(const MpBodyRequest&) const { return "MpBodyRequest"; }
    const char* operator()(const Busy&) const { return "Busy"; }
  };
  return std::visit(Visitor{}, m.payload);
}

namespace {

// Member templates are illegal in local classes, so the visitor lives here.
struct WireBytesVisitor {
  std::size_t operator()(const RmData& d) const {
    std::size_t n = 8 * d.dest_nodes.size() + d.dst_groups.size();
    if (const auto* s = std::get_if<AmStart>(&d.inner)) {
      n += s->msg.payload.size() + s->msg.dst.size();
    }
    return n;
  }
  std::size_t operator()(const P1b& p) const {
    std::size_t n = 0;
    for (const auto& e : p.accepted) n += 16 + e.value.size();
    return n;
  }
  std::size_t operator()(const P2a& p) const { return p.value.size(); }
  std::size_t operator()(const P2b& p) const { return p.value.size(); }
  std::size_t operator()(const MpSubmit& s) const {
    return s.msg.payload.size() + s.msg.dst.size();
  }
  std::size_t operator()(const MpBody& b) const {
    return b.msg.payload.size() + b.msg.dst.size();
  }
  std::size_t operator()(const RepairSnapshot& s) const {
    return s.payload.size();
  }
  template <typename T>
  std::size_t operator()(const T&) const {
    return 0;
  }
};

}  // namespace

std::size_t approx_wire_bytes(const Message& m) {
  // Fixed allowance for the tag plus small scalar fields; only the fields
  // that can dominate a frame are counted exactly.
  constexpr std::size_t kBase = 16;
  return kBase + std::visit(WireBytesVisitor{}, m.payload);
}

void encode(Writer& w, const MulticastMessage& m) {
  w.u64(m.id);
  w.u32(m.sender);
  encode_groups(w, m.dst);
  w.str(m.payload);
}

bool decode(Reader& r, MulticastMessage& out) {
  out.id = r.u64();
  out.sender = r.u32();
  if (!decode_groups(r, out.dst)) return false;
  out.payload = r.str();
  return r.ok();
}

void encode(Writer& w, const Tuple& t) {
  w.u8(static_cast<std::uint8_t>(t.kind));
  w.varint(t.group);
  w.varint(t.ts);
  w.u64(t.mid);
  encode_groups(w, t.dst);
}

bool decode(Reader& r, Tuple& out) {
  const std::uint8_t k = r.u8();
  if (!r.ok() || k > static_cast<std::uint8_t>(TupleKind::kSyncHard)) return false;
  out.kind = static_cast<TupleKind>(k);
  out.group = static_cast<GroupId>(r.varint());
  out.ts = r.varint();
  out.mid = r.u64();
  if (!decode_groups(r, out.dst)) return false;
  return r.ok();
}

std::vector<std::byte> encode_tuples(const std::vector<Tuple>& tuples) {
  std::vector<std::byte> out;
  encode_tuples_into(tuples, out);
  return out;
}

void encode_tuples_into(const std::vector<Tuple>& tuples,
                        std::vector<std::byte>& out) {
  out.clear();
  Writer w(std::move(out));
  w.varint(tuples.size());
  for (const Tuple& t : tuples) encode(w, t);
  out = w.take();
}

bool decode_tuples(std::span<const std::byte> bytes, std::vector<Tuple>& out) {
  Reader r(bytes);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > bytes.size()) return false;
  out.clear();
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Tuple t;
    if (!decode(r, t)) return false;
    out.push_back(std::move(t));
  }
  return r.at_end();
}

std::vector<std::byte> encode_msg_batch(const std::vector<MulticastMessage>& msgs) {
  std::vector<std::byte> out;
  encode_msg_batch_into(msgs, out);
  return out;
}

void encode_msg_batch_into(const std::vector<MulticastMessage>& msgs,
                           std::vector<std::byte>& out) {
  out.clear();
  Writer w(std::move(out));
  w.varint(msgs.size());
  for (const auto& m : msgs) encode(w, m);
  out = w.take();
}

bool decode_msg_batch(std::span<const std::byte> bytes,
                      std::vector<MulticastMessage>& out) {
  Reader r(bytes);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > bytes.size()) return false;
  out.clear();
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    MulticastMessage m;
    if (!decode(r, m)) return false;
    out.push_back(std::move(m));
  }
  return r.at_end();
}

namespace {

void encode_id_record(Writer& w, const MpIdRecord& rec) {
  w.u64(rec.mid);
  w.u32(rec.sender);
  encode_groups(w, rec.dst);
}

bool decode_id_record(Reader& r, MpIdRecord& out) {
  out.mid = r.u64();
  out.sender = r.u32();
  if (!decode_groups(r, out.dst)) return false;
  return r.ok();
}

}  // namespace

std::vector<std::byte> encode_id_batch(const std::vector<MpIdRecord>& records) {
  std::vector<std::byte> out;
  encode_id_batch_into(records, out);
  return out;
}

void encode_id_batch_into(const std::vector<MpIdRecord>& records,
                          std::vector<std::byte>& out) {
  out.clear();
  Writer w(std::move(out));
  w.varint(records.size());
  for (const MpIdRecord& rec : records) encode_id_record(w, rec);
  out = w.take();
}

bool decode_id_batch(std::span<const std::byte> bytes,
                     std::vector<MpIdRecord>& out) {
  Reader r(bytes);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > bytes.size()) return false;
  out.clear();
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    MpIdRecord rec;
    if (!decode_id_record(r, rec)) return false;
    out.push_back(std::move(rec));
  }
  return r.at_end();
}

void encode(Writer& w, const Message& m) {
  struct Visitor {
    Writer& w;

    void operator()(const RmData& d) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kRmData));
      w.u32(d.origin);
      w.u64(d.seq);
      encode_groups(w, d.dst_groups);
      w.varint(d.dest_nodes.size());
      FC_ASSERT(d.dest_nodes.size() == d.dest_seqs.size());
      for (std::size_t i = 0; i < d.dest_nodes.size(); ++i) {
        w.u32(d.dest_nodes[i]);
        w.varint(d.dest_seqs[i]);
      }
      encode_amcast(w, d.inner);
      // Optional trailing deadline + sent_at: only meaningful for START
      // envelopes, and only emitted when set, so pre-deadline golden bytes
      // still hold. The pair is written together to keep positions fixed.
      if (const auto* s = std::get_if<AmStart>(&d.inner);
          s != nullptr && (s->msg.deadline > 0 || s->msg.sent_at > 0)) {
        w.varint(static_cast<std::uint64_t>(s->msg.deadline));
        w.varint(static_cast<std::uint64_t>(s->msg.sent_at));
      }
    }
    void operator()(const RmAck& a) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kRmAck));
      w.u32(a.origin);
      w.u64(a.seq);
    }
    void operator()(const P1a& p) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kP1a));
      w.varint(p.group);
      encode_ballot(w, p.ballot);
      w.u64(p.from_instance);
    }
    void operator()(const P1b& p) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kP1b));
      w.varint(p.group);
      encode_ballot(w, p.ballot);
      w.u64(p.from_instance);
      w.varint(p.accepted.size());
      for (const auto& e : p.accepted) {
        w.u64(e.instance);
        encode_ballot(w, e.vballot);
        encode_value(w, e.value);
      }
    }
    void operator()(const P2a& p) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kP2a));
      w.varint(p.group);
      encode_ballot(w, p.ballot);
      w.u64(p.instance);
      encode_value(w, p.value);
    }
    void operator()(const P2b& p) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kP2b));
      w.varint(p.group);
      encode_ballot(w, p.ballot);
      w.u64(p.instance);
      w.u32(p.acceptor);
      encode_value(w, p.value);
    }
    void operator()(const PaxosNack& p) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kPaxosNack));
      w.varint(p.group);
      encode_ballot(w, p.promised);
      w.u64(p.instance);
    }
    void operator()(const P2bRequest& p) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kP2bRequest));
      w.varint(p.group);
      w.u64(p.from_instance);
    }
    void operator()(const MpSubmit& s) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kMpSubmit));
      encode(w, s.msg);
      if (s.msg.deadline > 0 || s.msg.sent_at > 0) {
        w.varint(static_cast<std::uint64_t>(s.msg.deadline));
        w.varint(static_cast<std::uint64_t>(s.msg.sent_at));
      }
    }
    void operator()(const AmAck& a) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kAmAck));
      w.u64(a.mid);
      w.varint(a.from_group);
      w.u32(a.deliverer);
    }
    void operator()(const FdHeartbeat& h) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kFdHeartbeat));
      w.varint(h.group);
      w.u32(h.from);
      w.u64(h.epoch);
    }
    void operator()(const WatermarkAnnounce& a) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kWatermarkAnnounce));
      w.varint(a.group);
      w.u32(a.from);
      w.u64(a.settled);
      w.u64(a.frontier);
    }
    void operator()(const RepairRequest& q) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kRepairRequest));
      w.varint(q.group);
      w.u64(q.from_instance);
    }
    void operator()(const RepairSnapshot& s) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kRepairSnapshot));
      w.varint(s.group);
      w.u64(s.from_instance);
      w.u64(s.watermark);
      w.u8(s.last ? 1 : 0);
      w.u32(s.payload_crc);
      encode_value(w, s.payload);
    }
    void operator()(const P2bMore& m2) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kP2bMore));
      w.varint(m2.group);
      w.u64(m2.next_instance);
    }
    void operator()(const MpBody& b) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kMpBody));
      encode(w, b.msg);
      if (b.msg.deadline > 0 || b.msg.sent_at > 0) {
        w.varint(static_cast<std::uint64_t>(b.msg.deadline));
        w.varint(static_cast<std::uint64_t>(b.msg.sent_at));
      }
    }
    void operator()(const MpBodyRequest& q) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kMpBodyRequest));
      w.u64(q.mid);
    }
    void operator()(const Busy& b) const {
      w.u8(static_cast<std::uint8_t>(WireTag::kBusy));
      w.u64(b.mid);
      w.u8(static_cast<std::uint8_t>(b.reason));
      w.u8(b.advisory ? 1 : 0);
      w.varint(static_cast<std::uint64_t>(b.retry_after));
    }
  };
  std::visit(Visitor{w}, m.payload);
}

bool decode(Reader& r, Message& out) {
  const auto tag = static_cast<WireTag>(r.u8());
  if (!r.ok()) return false;
  switch (tag) {
    case WireTag::kRmData: {
      RmData d;
      d.origin = r.u32();
      d.seq = r.u64();
      if (!decode_groups(r, d.dst_groups)) return false;
      const std::uint64_t n = r.varint();
      if (!r.ok() || n > r.remaining()) return false;
      d.dest_nodes.resize(n);
      d.dest_seqs.resize(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        d.dest_nodes[i] = r.u32();
        d.dest_seqs[i] = r.varint();
      }
      if (!decode_amcast(r, d.inner)) return false;
      if (auto* s = std::get_if<AmStart>(&d.inner);
          s != nullptr && r.remaining() > 0) {
        s->msg.deadline = static_cast<Time>(r.varint());
        if (r.remaining() > 0) s->msg.sent_at = static_cast<Time>(r.varint());
      }
      out.payload = std::move(d);
      return r.ok();
    }
    case WireTag::kRmAck: {
      RmAck a;
      a.origin = r.u32();
      a.seq = r.u64();
      out.payload = a;
      return r.ok();
    }
    case WireTag::kP1a: {
      P1a p;
      p.group = static_cast<GroupId>(r.varint());
      if (!decode_ballot(r, p.ballot)) return false;
      p.from_instance = r.u64();
      out.payload = p;
      return r.ok();
    }
    case WireTag::kP1b: {
      P1b p;
      p.group = static_cast<GroupId>(r.varint());
      if (!decode_ballot(r, p.ballot)) return false;
      p.from_instance = r.u64();
      const std::uint64_t n = r.varint();
      if (!r.ok() || n > r.remaining()) return false;
      p.accepted.resize(n);
      for (auto& e : p.accepted) {
        e.instance = r.u64();
        if (!decode_ballot(r, e.vballot)) return false;
        if (!decode_value(r, e.value)) return false;
      }
      out.payload = std::move(p);
      return r.ok();
    }
    case WireTag::kP2a: {
      P2a p;
      p.group = static_cast<GroupId>(r.varint());
      if (!decode_ballot(r, p.ballot)) return false;
      p.instance = r.u64();
      if (!decode_value(r, p.value)) return false;
      out.payload = std::move(p);
      return r.ok();
    }
    case WireTag::kP2b: {
      P2b p;
      p.group = static_cast<GroupId>(r.varint());
      if (!decode_ballot(r, p.ballot)) return false;
      p.instance = r.u64();
      p.acceptor = r.u32();
      if (!decode_value(r, p.value)) return false;
      out.payload = std::move(p);
      return r.ok();
    }
    case WireTag::kPaxosNack: {
      PaxosNack p;
      p.group = static_cast<GroupId>(r.varint());
      if (!decode_ballot(r, p.promised)) return false;
      p.instance = r.u64();
      out.payload = p;
      return r.ok();
    }
    case WireTag::kP2bRequest: {
      P2bRequest p;
      p.group = static_cast<GroupId>(r.varint());
      p.from_instance = r.u64();
      out.payload = p;
      return r.ok();
    }
    case WireTag::kMpSubmit: {
      MpSubmit s;
      if (!decode(r, s.msg)) return false;
      if (r.remaining() > 0) {
        s.msg.deadline = static_cast<Time>(r.varint());
        if (r.remaining() > 0) s.msg.sent_at = static_cast<Time>(r.varint());
      }
      out.payload = std::move(s);
      return r.ok();
    }
    case WireTag::kAmAck: {
      AmAck a;
      a.mid = r.u64();
      a.from_group = static_cast<GroupId>(r.varint());
      a.deliverer = r.u32();
      out.payload = a;
      return r.ok();
    }
    case WireTag::kFdHeartbeat: {
      FdHeartbeat h;
      h.group = static_cast<GroupId>(r.varint());
      h.from = r.u32();
      h.epoch = r.u64();
      out.payload = h;
      return r.ok();
    }
    case WireTag::kWatermarkAnnounce: {
      WatermarkAnnounce a;
      a.group = static_cast<GroupId>(r.varint());
      a.from = r.u32();
      a.settled = r.u64();
      a.frontier = r.u64();
      out.payload = a;
      return r.ok();
    }
    case WireTag::kRepairRequest: {
      RepairRequest q;
      q.group = static_cast<GroupId>(r.varint());
      q.from_instance = r.u64();
      out.payload = q;
      return r.ok();
    }
    case WireTag::kRepairSnapshot: {
      RepairSnapshot s;
      s.group = static_cast<GroupId>(r.varint());
      s.from_instance = r.u64();
      s.watermark = r.u64();
      const std::uint8_t last = r.u8();
      if (!r.ok() || last > 1) return false;
      s.last = last != 0;
      s.payload_crc = r.u32();
      if (!decode_value(r, s.payload)) return false;
      out.payload = std::move(s);
      return r.ok();
    }
    case WireTag::kP2bMore: {
      P2bMore m2;
      m2.group = static_cast<GroupId>(r.varint());
      m2.next_instance = r.u64();
      out.payload = m2;
      return r.ok();
    }
    case WireTag::kMpBody: {
      MpBody b;
      if (!decode(r, b.msg)) return false;
      if (r.remaining() > 0) {
        b.msg.deadline = static_cast<Time>(r.varint());
        if (r.remaining() > 0) b.msg.sent_at = static_cast<Time>(r.varint());
      }
      out.payload = std::move(b);
      return r.ok();
    }
    case WireTag::kMpBodyRequest: {
      MpBodyRequest q;
      q.mid = r.u64();
      out.payload = q;
      return r.ok();
    }
    case WireTag::kBusy: {
      Busy b;
      b.mid = r.u64();
      const std::uint8_t reason = r.u8();
      if (!r.ok() || reason > static_cast<std::uint8_t>(Busy::Reason::kExpired))
        return false;
      b.reason = static_cast<Busy::Reason>(reason);
      const std::uint8_t advisory = r.u8();
      if (!r.ok() || advisory > 1) return false;
      b.advisory = advisory != 0;
      b.retry_after = static_cast<Duration>(r.varint());
      out.payload = b;
      return r.ok();
    }
  }
  return false;
}

std::vector<std::byte> encode_message(const Message& m) {
  std::vector<std::byte> out;
  out.reserve(128);
  encode_message_into(m, out);
  return out;
}

void encode_message_into(const Message& m, std::vector<std::byte>& out) {
  out.clear();
  Writer w(std::move(out));
  encode(w, m);
  out = w.take();
}

bool decode_message(std::span<const std::byte> bytes, Message& out) {
  Reader r(bytes);
  if (!decode(r, out)) return false;
  return r.at_end();
}

}  // namespace fastcast
