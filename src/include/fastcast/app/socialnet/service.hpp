#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "fastcast/app/socialnet/graph.hpp"
#include "fastcast/harness/client.hpp"
#include "fastcast/runtime/message.hpp"

/// \file service.hpp
/// The Twitter-like service of §5.3 on top of atomic multicast.
///
/// A 'post' is atomically multicast to every group holding a follower of
/// the poster (plus the poster's home group, so reads of one's own
/// timeline stay local). Reads are single-group and thus served locally.
/// Because posts and reads both go through atomic multicast / local
/// state, the service is linearizable — the strong-consistency story that
/// motivates the paper.

namespace fastcast::app {

class SocialNetworkService {
 public:
  SocialNetworkService(SocialGraph graph, std::vector<std::uint32_t> partition_of,
                       std::size_t groups);

  std::size_t user_count() const { return graph_.user_count; }
  std::size_t group_count() const { return groups_; }
  const SocialGraph& graph() const { return graph_; }
  std::uint32_t partition_of(UserId u) const { return partition_of_[u]; }

  /// Destination groups of a post by `user`: the home partition plus every
  /// partition containing a follower. Sorted, unique, never empty.
  const std::vector<GroupId>& post_destinations(UserId user) const;

  /// Encodes / decodes a post payload carried inside MulticastMessage.
  static std::string encode_post(UserId user, std::uint64_t post_seq);
  static bool decode_post(const std::string& payload, UserId& user,
                          std::uint64_t& post_seq);

 private:
  SocialGraph graph_;
  std::vector<std::uint32_t> partition_of_;
  std::size_t groups_;
  std::vector<std::vector<GroupId>> destinations_;  // precomputed per user
};

/// Replica-side state machine: timelines updated by a-delivered posts.
/// Deterministic given the delivery order, so all replicas of a group
/// stay identical — verified in the integration tests.
class TimelineState {
 public:
  explicit TimelineState(std::shared_ptr<const SocialNetworkService> service)
      : service_(std::move(service)) {}

  /// Applies an a-delivered post at a replica of `group`.
  void apply(GroupId group, const MulticastMessage& msg);

  /// The last `limit` posts visible to `reader` (its followees' posts that
  /// reached this group), newest first.
  std::vector<std::string> read_timeline(UserId reader, std::size_t limit = 10) const;

  std::uint64_t applied_count() const { return applied_; }
  /// Order-sensitive digest of everything applied (replica comparison).
  std::uint64_t digest() const { return digest_; }

 private:
  std::shared_ptr<const SocialNetworkService> service_;
  std::unordered_map<UserId, std::vector<std::string>> timelines_;
  std::uint64_t applied_ = 0;
  std::uint64_t digest_ = 0;
};

/// DstPicker for the harness: each multicast is a post by a random user
/// (uniform, as in the paper's post-only workload).
harness::DstPicker social_post_picker(std::shared_ptr<const SocialNetworkService> service);

/// DstPicker restricted to users whose posts span exactly `span` groups —
/// Fig. 7's "latency versus number of groups in the followers list".
harness::DstPicker social_post_picker_with_span(
    std::shared_ptr<const SocialNetworkService> service, std::size_t span);

}  // namespace fastcast::app
