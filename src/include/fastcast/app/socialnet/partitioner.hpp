#pragma once

#include "fastcast/app/socialnet/graph.hpp"

/// \file partitioner.hpp
/// Greedy balanced edge-cut partitioner — the from-scratch stand-in for
/// METIS (§5.3): balance users per partition while keeping follower edges
/// inside partitions, so most posts stay local.
///
/// Algorithm: users are visited in decreasing degree order; each is placed
/// in the partition holding most of its already-placed neighbours, subject
/// to a capacity cap of (users/partitions)·(1+slack). A refinement pass
/// then moves users whose dominant-neighbour partition differs from their
/// current one when the move does not break balance.

namespace fastcast::app {

struct PartitionerConfig {
  std::size_t partitions = 16;
  double balance_slack = 0.05;  ///< max overshoot over perfect balance
  std::size_t refine_passes = 2;
};

struct PartitionResult {
  std::vector<std::uint32_t> partition_of;  ///< user → partition
  std::size_t cut_edges = 0;                ///< follower edges crossing partitions
  std::vector<std::size_t> sizes;           ///< users per partition
};

PartitionResult partition_graph(const SocialGraph& graph,
                                const PartitionerConfig& config);

/// Histogram of "how many partitions does a user's follower set span":
/// result[k] = number of users spanning exactly k+1 partitions. Users with
/// no followers count as spanning 1 (their own partition).
std::vector<std::size_t> spread_histogram(const SocialGraph& graph,
                                          const std::vector<std::uint32_t>& partition_of,
                                          std::size_t partitions);

}  // namespace fastcast::app
