#pragma once

#include <cstdint>
#include <vector>

#include "fastcast/common/rng.hpp"

/// \file graph.hpp
/// Social-graph generation for the paper's social network benchmark (§5.3):
/// ten thousand users whose follower sets determine the destination groups
/// of 'post' multicasts.
///
/// Two generators:
///   * generate_social_graph — community-structured preferential attachment
///     (power-law follower counts, mostly intra-community edges). Fed to the
///     partitioner, it reproduces a METIS-like "mostly local" spread.
///   * generate_paper_spread_graph — places followers so that the
///     partition-spread distribution matches the paper's reported numbers
///     exactly (7110 users span 1 partition, 2474 span 2, 376 span 3,
///     40 span 4–5 of 16 partitions). Used by the Fig. 7 bench so the
///     workload's destination-set sizes are the paper's.

namespace fastcast::app {

using UserId = std::uint32_t;

struct SocialGraph {
  std::size_t user_count = 0;
  /// followers[u] — users who follow u (receive u's posts).
  std::vector<std::vector<UserId>> followers;
  /// following[u] — users u follows (whose posts u reads).
  std::vector<std::vector<UserId>> following;

  std::size_t edge_count() const;
};

struct SocialGraphConfig {
  std::size_t users = 10000;
  std::size_t communities = 16;
  /// Probability that a new follow edge stays inside the community.
  double intra_community_bias = 0.92;
  /// Mean follows per user (power-law-ish via preferential attachment).
  std::size_t mean_follows = 8;
  std::uint64_t seed = 42;
};

SocialGraph generate_social_graph(const SocialGraphConfig& config);

/// A graph together with a fixed user→partition assignment whose
/// follower-partition spread matches the paper's distribution.
struct PartitionedGraph {
  SocialGraph graph;
  std::vector<std::uint32_t> partition_of;  ///< user → partition
  std::size_t partitions = 0;
};

PartitionedGraph generate_paper_spread_graph(std::size_t users,
                                             std::size_t partitions,
                                             std::uint64_t seed);

}  // namespace fastcast::app
