#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

/// \file spsc_ring.hpp
/// Bounded single-producer/single-consumer ring used for cross-shard
/// handoff in the sharded transport: exactly one thread pushes and exactly
/// one thread pops, so the only synchronization needed is an
/// acquire/release pair on the head and tail indices — no locks, no CAS.
///
/// Cache behaviour: head_ and tail_ live on separate cache lines so the
/// producer's stores never invalidate the consumer's hot line (false
/// sharing is the classic SPSC throughput killer). Each side additionally
/// caches the opposite index and refreshes it only when the ring *looks*
/// full/empty, so the steady-state fast path touches one shared line, not
/// two.

namespace fastcast::net {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (masking beats modulo).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full (caller decides: retry, shed,
  /// or backpressure).
  bool push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    // A moved-from T may still own memory (shared_ptr refcounts, vector
    // capacity); reset the slot so an idle ring pins no freight. Must
    // happen before publishing head_: afterwards the producer may claim
    // the slot.
    slots_[head & mask_] = T{};
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness probe (racy for the producer, exact for the
  /// consumer — same contract as pop returning false).
  bool empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy: exact from either endpoint's own thread,
  /// momentarily stale from the other (both loads are relaxed). Good
  /// enough for the backpressure gauges that sample it.
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail - head;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;

  alignas(64) std::atomic<std::size_t> head_{0};  ///< next pop index
  alignas(64) std::size_t cached_tail_ = 0;       ///< consumer's view of tail_
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< next push index
  alignas(64) std::size_t cached_head_ = 0;       ///< producer's view of head_
};

}  // namespace fastcast::net
