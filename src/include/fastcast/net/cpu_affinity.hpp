#pragma once

/// \file cpu_affinity.hpp
/// Thread-per-core plumbing for the sharded transport: discover how many
/// CPUs the process may run on and pin the calling thread to one of them.
/// Pinning is best-effort — containers and cpuset-restricted hosts may
/// refuse, and the shard runs fine unpinned, just with worse locality.

namespace fastcast::net {

/// CPUs available to this process (affinity-mask aware, so a container
/// limited to 2 of the host's 64 cores reports 2). Always >= 1.
int online_cpu_count();

/// Pins the calling thread to one allowed CPU, chosen by `index` modulo the
/// allowed set (shard i passes i, so shards spread round-robin across
/// whatever CPUs the process actually has). Returns false when the kernel
/// refuses; the caller should carry on unpinned.
bool pin_current_thread(int index);

}  // namespace fastcast::net
