#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <map>
#include <vector>

#include "fastcast/common/time.hpp"
#include "fastcast/runtime/context.hpp"

/// \file timer_heap.hpp
/// Min-heap of armed timers with lazy cancellation and stale-entry
/// compaction. cancel() erases the callback but leaves the heap entry in
/// place (removing an arbitrary heap element is O(n)); stale entries are
/// skipped when they surface. Without compaction, arm-and-cancel loops —
/// failure detectors re-arming on every heartbeat — grow the heap without
/// bound; compaction rebuilds it whenever stale entries outnumber live
/// ones past a minimum size, bounding heap_size() ≤ max(kCompactMin,
/// 2 × armed()) outside the transient where a cancel burst just landed.

namespace fastcast::net {

class TimerHeap {
 public:
  /// Below this size compaction is skipped: rebuilding a tiny heap costs
  /// more than the stale entries it reclaims.
  static constexpr std::size_t kCompactMin = 64;

  TimerId schedule(Time at, std::function<void()> cb) {
    const TimerId id = next_id_++;
    cbs_.emplace(id, std::move(cb));
    heap_.push_back({at, id});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return id;
  }

  void cancel(TimerId id) {
    cbs_.erase(id);
    if (heap_.size() >= kCompactMin && heap_.size() >= 2 * cbs_.size()) {
      compact();
    }
  }

  bool empty() const { return cbs_.empty(); }
  std::size_t armed() const { return cbs_.size(); }       ///< live timers
  std::size_t heap_size() const { return heap_.size(); }  ///< incl. stale

  /// Earliest live deadline; false when no timer is armed.
  bool next_due(Time& at) {
    prune_stale_head();
    if (heap_.empty()) return false;
    at = heap_.front().at;
    return true;
  }

  /// Pops and runs every callback due at or before `now`, in deadline
  /// order. Callbacks may re-entrantly schedule()/cancel(). Returns the
  /// number fired.
  std::size_t fire_due(Time now) {
    std::size_t fired = 0;
    for (;;) {
      prune_stale_head();
      if (heap_.empty() || heap_.front().at > now) break;
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      const TimerId id = heap_.back().id;
      heap_.pop_back();
      auto it = cbs_.find(id);
      if (it == cbs_.end()) continue;  // cancelled while due
      auto cb = std::move(it->second);
      cbs_.erase(it);
      ++fired;
      cb();
    }
    return fired;
  }

  /// Drops every timer (crash semantics: armed timers do not survive).
  void clear() {
    cbs_.clear();
    heap_.clear();
  }

 private:
  struct Entry {
    Time at;
    TimerId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at != b.at ? a.at > b.at : a.id > b.id;
    }
  };

  void prune_stale_head() {
    while (!heap_.empty() && !cbs_.contains(heap_.front().id)) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  void compact() {
    std::erase_if(heap_,
                  [this](const Entry& e) { return !cbs_.contains(e.id); });
    std::make_heap(heap_.begin(), heap_.end(), Later{});
  }

  std::vector<Entry> heap_;
  std::map<TimerId, std::function<void()>> cbs_;
  TimerId next_id_ = 1;
};

}  // namespace fastcast::net
