#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "fastcast/net/tcp_transport.hpp"
#include "fastcast/runtime/context.hpp"

/// \file tcp_cluster.hpp
/// Runs a whole deployment over real TCP sockets inside one OS process:
/// one thread per node, each with its own TcpTransport-backed Context.
/// The protocol objects are exactly the ones the simulator runs — this is
/// the "deploy the same code on a real network" demonstrator used by the
/// tcp_cluster example and the net integration tests.
///
/// Every node's Process runs strictly on its own thread; cross-thread
/// interaction happens only through sockets. Observers installed on
/// processes are invoked on node threads and must synchronise themselves.

namespace fastcast {
namespace obs {
class Observability;
}
namespace storage {
class StorageManager;
}

namespace net {

class TcpCluster {
 public:
  struct Config {
    Membership membership;
    std::uint16_t base_port = 17400;
    int poll_interval_ms = 2;
    /// Event engine for every node's transport (kAuto = io_uring when the
    /// kernel supports it, else poll).
    BackendKind backend = BackendKind::kPoll;
    /// Optional run-wide metrics/tracing bundle shared by all node threads
    /// (instruments are thread-safe). Must outlive the cluster.
    obs::Observability* observability = nullptr;
    /// Optional durable storage. When set, each node's Context carries its
    /// NodeStorage (created lazily, one WAL directory per node), so the
    /// protocol stack logs and gates exactly as it does in simulation.
    /// Must outlive the cluster. Each NodeStorage is only ever touched from
    /// its own node thread (plus restart plumbing after that thread joined).
    storage::StorageManager* storage = nullptr;
  };

  explicit TcpCluster(Config config);
  ~TcpCluster();

  TcpCluster(const TcpCluster&) = delete;
  TcpCluster& operator=(const TcpCluster&) = delete;

  void add_process(NodeId node, std::shared_ptr<Process> process);

  /// Binds all listeners, then spawns node threads (on_start runs on the
  /// node's own thread before its loop begins).
  void start();

  /// Signals all loops to exit and joins the threads.
  void stop();

  /// Kills one running node: its loop exits, sockets close, armed timers
  /// are lost. Peers keep queueing frames for it under backoff reconnect.
  /// With storage attached, gated externalizations that never became
  /// durable are dropped — exactly what a process death loses.
  void stop_node(NodeId node);

  /// Restarts a stopped node with its retained Process object. Without
  /// storage this over-approximates durability (all in-memory state
  /// survives, as if everything had been on disk); with storage attached
  /// prefer the replacement overload, which models a real process death.
  /// Re-binds the listener and runs on_recover on the fresh node thread so
  /// the process re-arms its timers and re-joins.
  void restart_node(NodeId node);

  /// Restarts a stopped node with a fresh Process (typically rebuilt from
  /// storage::NodeStorage::reset_and_recover + restore_durable), discarding
  /// the old object and every bit of state that was not on disk.
  void restart_node(NodeId node, std::shared_ptr<Process> replacement);

  const Membership& membership() const { return config_.membership; }

 private:
  class NodeRuntime;

  Config config_;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  std::vector<std::thread> threads_;  ///< indexed by NodeId
};

}  // namespace net
}  // namespace fastcast
