#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fastcast/common/codec.hpp"
#include "fastcast/common/rng.hpp"
#include "fastcast/net/frame.hpp"
#include "fastcast/runtime/ids.hpp"

struct pollfd;  // <poll.h>

namespace fastcast::obs {
class Observability;
class Counter;
}  // namespace fastcast::obs

/// \file tcp_transport.hpp
/// A single node's TCP endpoint: listens on its own port, lazily connects
/// to peers, frames outbound Messages, and parses inbound streams. The
/// owner drives it from one thread via poll_once(); inbound messages are
/// surfaced through a callback carrying the sender's NodeId (peers
/// identify themselves with a hello frame when connecting).
///
/// Hot-path engineering:
///   * send() enqueues the framed message on a per-peer output queue of
///     pooled buffers; flush() drains a whole queue with one gather-write
///     syscall (sendmsg with an iovec per frame — writev-style coalescing
///     plus MSG_NOSIGNAL), so N frames cost one syscall, not N.
///   * poll_once() reuses a cached pollfd array that is rebuilt only when
///     the connection set changes (accept/drop), not on every call.
///   * Inbound reads land directly in each peer's FrameParser arena
///     (recv_buffer/commit) — no intermediate stack buffer copy.
/// Writes still block on localhost-scale deployments.
///
/// Failure handling: frames for an unreachable peer stay queued, and the
/// transport reconnects with exponential backoff + jitter (RetryPolicy).
/// Queued frames flush in order once the peer returns; the per-peer queue
/// is bounded, with overflow counted rather than silently lost.

namespace fastcast::net {

/// node → (host, port) resolution.
struct AddressBook {
  std::string host = "127.0.0.1";
  std::uint16_t base_port = 0;

  std::uint16_t port_of(NodeId n) const {
    return static_cast<std::uint16_t>(base_port + n);
  }
};

/// Reconnect/backoff behaviour for outbound connections.
struct RetryPolicy {
  int base_backoff_ms = 5;    ///< delay after the first failure
  int max_backoff_ms = 1000;  ///< backoff doubles per failure up to this cap
  double jitter = 0.2;        ///< ± fraction randomizing each backoff
  /// Per-peer queued-bytes bound while disconnected; frames arriving beyond
  /// it are dropped (and counted in stats().tx_frames_dropped).
  std::size_t max_queued_bytes = 8 * 1024 * 1024;
  /// Consecutive connect failures before the queued frames for that peer
  /// are discarded (counted as dropped). Reconnection attempts continue at
  /// max backoff so a recovered peer still re-establishes. 0 = never give
  /// up the queue.
  int max_attempts = 0;
};

class TcpTransport {
 public:
  using ReceiveFn = std::function<void(NodeId from, const Message& msg)>;

  TcpTransport(NodeId self, AddressBook addresses);
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds and listens; throws std::runtime_error on failure.
  void listen();

  void set_receive(ReceiveFn fn) { receive_ = std::move(fn); }

  /// Replaces the reconnect policy (call before traffic starts).
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  /// Wires degradation counters (net.reconnects, net.connect_failures,
  /// net.disconnects, net.tx_frames_dropped). Pass null to detach.
  void set_observability(obs::Observability* o);

  /// Frames and queues one message. The frame leaves the socket at the next
  /// flush()/poll_once(), or immediately once the peer's queue passes the
  /// coalescing threshold. If the peer is unreachable the frame stays
  /// queued and departs once backoff reconnection succeeds.
  void send(NodeId to, const Message& msg);

  /// Writes every peer's queued frames (one gather syscall per peer),
  /// attempting due reconnects first.
  void flush();

  /// Bytes queued but not yet handed to the kernel (all peers).
  std::size_t pending_bytes() const;

  /// Flushes queued output, then accepts/reads once with the given
  /// timeout; dispatches every complete inbound message. Returns the
  /// number of messages dispatched.
  std::size_t poll_once(int timeout_ms);

  void close_all();

  NodeId self() const { return self_; }

  /// Degradation counters (also exported through set_observability).
  struct Stats {
    std::uint64_t reconnects = 0;        ///< successful connects after a loss
    std::uint64_t connect_failures = 0;  ///< failed connect attempts
    std::uint64_t disconnects = 0;       ///< established connections lost
    std::uint64_t tx_frames_dropped = 0;  ///< frames shed (overflow/budget)
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Peer {
    int fd = -1;
    FrameParser parser;
    NodeId id = kInvalidNode;  ///< learned from the hello frame
    std::byte hello[4];        ///< partial hello bytes
    std::size_t hello_got = 0;
  };

  /// Outbound connection with its coalescing queue: frames wait here and
  /// leave in one gather-write. head_offset tracks the partially-written
  /// prefix of frames.front() across flushes. While disconnected, frames
  /// accumulate (bounded by RetryPolicy) and next_attempt gates backoff.
  struct Outbound {
    int fd = -1;
    bool connected = false;
    std::deque<std::vector<std::byte>> frames;
    std::size_t head_offset = 0;
    std::size_t queued_bytes = 0;
    int attempts = 0;  ///< consecutive failed connects this episode
    std::chrono::steady_clock::time_point next_attempt{};  ///< epoch = now
  };

  int connect_to(NodeId to);
  bool try_connect(NodeId to, Outbound& ob);  ///< respects backoff schedule
  void disconnect(NodeId to, Outbound& ob);   ///< keep queue, arm reconnect
  std::chrono::milliseconds backoff_for(int attempts);
  void shed_queue(Outbound& ob);              ///< discard + count all frames
  void drop(int fd);
  std::size_t handle_readable(Peer& peer);
  bool write_pending(Outbound& ob);           ///< false = connection died
  void advance_written(Outbound& ob, std::size_t n);
  void rebuild_pollfds();

  NodeId self_;
  AddressBook addresses_;
  RetryPolicy retry_;
  int listen_fd_ = -1;
  std::map<NodeId, Outbound> outbound_;  // node → connection + queue
  std::map<int, Peer> inbound_;          // fd → peer state
  ReceiveFn receive_;
  BufferPool pool_;  ///< recycles frame buffers across sends
  Rng rng_;          ///< backoff jitter
  Stats stats_;
  obs::Counter* c_reconnects_ = nullptr;
  obs::Counter* c_connect_failures_ = nullptr;
  obs::Counter* c_disconnects_ = nullptr;
  obs::Counter* c_tx_dropped_ = nullptr;

  std::vector<struct pollfd> pollfds_;  ///< cached; [0] is the listen fd
  bool pollfds_dirty_ = true;
};

}  // namespace fastcast::net
