#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fastcast/common/codec.hpp"
#include "fastcast/net/frame.hpp"
#include "fastcast/runtime/ids.hpp"

struct pollfd;  // <poll.h>

/// \file tcp_transport.hpp
/// A single node's TCP endpoint: listens on its own port, lazily connects
/// to peers, frames outbound Messages, and parses inbound streams. The
/// owner drives it from one thread via poll_once(); inbound messages are
/// surfaced through a callback carrying the sender's NodeId (peers
/// identify themselves with a hello frame when connecting).
///
/// Hot-path engineering:
///   * send() enqueues the framed message on a per-peer output queue of
///     pooled buffers; flush() drains a whole queue with one gather-write
///     syscall (sendmsg with an iovec per frame — writev-style coalescing
///     plus MSG_NOSIGNAL), so N frames cost one syscall, not N.
///   * poll_once() reuses a cached pollfd array that is rebuilt only when
///     the connection set changes (accept/drop), not on every call.
///   * Inbound reads land directly in each peer's FrameParser arena
///     (recv_buffer/commit) — no intermediate stack buffer copy.
/// Writes still block on localhost-scale deployments; automatic reconnect
/// on failure at the next send.

namespace fastcast::net {

/// node → (host, port) resolution.
struct AddressBook {
  std::string host = "127.0.0.1";
  std::uint16_t base_port = 0;

  std::uint16_t port_of(NodeId n) const {
    return static_cast<std::uint16_t>(base_port + n);
  }
};

class TcpTransport {
 public:
  using ReceiveFn = std::function<void(NodeId from, const Message& msg)>;

  TcpTransport(NodeId self, AddressBook addresses);
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds and listens; throws std::runtime_error on failure.
  void listen();

  void set_receive(ReceiveFn fn) { receive_ = std::move(fn); }

  /// Frames and queues one message (connecting first if needed). The frame
  /// leaves the socket at the next flush()/poll_once(), or immediately once
  /// the peer's queue passes the coalescing threshold. Best-effort: on
  /// write failure the connection is dropped and re-established on the
  /// next send.
  void send(NodeId to, const Message& msg);

  /// Writes every peer's queued frames (one gather syscall per peer).
  void flush();

  /// Bytes queued but not yet handed to the kernel (all peers).
  std::size_t pending_bytes() const;

  /// Flushes queued output, then accepts/reads once with the given
  /// timeout; dispatches every complete inbound message. Returns the
  /// number of messages dispatched.
  std::size_t poll_once(int timeout_ms);

  void close_all();

  NodeId self() const { return self_; }

 private:
  struct Peer {
    int fd = -1;
    FrameParser parser;
    NodeId id = kInvalidNode;  ///< learned from the hello frame
    std::byte hello[4];        ///< partial hello bytes
    std::size_t hello_got = 0;
  };

  /// Outbound connection with its coalescing queue: frames wait here and
  /// leave in one gather-write. head_offset tracks the partially-written
  /// prefix of frames.front() across flushes.
  struct Outbound {
    int fd = -1;
    std::deque<std::vector<std::byte>> frames;
    std::size_t head_offset = 0;
    std::size_t queued_bytes = 0;
  };

  int connect_to(NodeId to);
  void drop(int fd);
  std::size_t handle_readable(Peer& peer);
  bool write_pending(Outbound& ob);           ///< false = connection died
  void advance_written(Outbound& ob, std::size_t n);
  void rebuild_pollfds();

  NodeId self_;
  AddressBook addresses_;
  int listen_fd_ = -1;
  std::map<NodeId, Outbound> outbound_;  // node → connection + queue
  std::map<int, Peer> inbound_;          // fd → peer state
  ReceiveFn receive_;
  BufferPool pool_;  ///< recycles frame buffers across sends

  std::vector<struct pollfd> pollfds_;  ///< cached; [0] is the listen fd
  bool pollfds_dirty_ = true;
};

}  // namespace fastcast::net
