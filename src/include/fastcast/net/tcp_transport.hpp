#pragma once

#include <functional>
#include <map>
#include <string>

#include "fastcast/net/frame.hpp"
#include "fastcast/runtime/ids.hpp"

/// \file tcp_transport.hpp
/// A single node's TCP endpoint: listens on its own port, lazily connects
/// to peers, frames outbound Messages, and parses inbound streams. The
/// owner drives it from one thread via poll_once(); inbound messages are
/// surfaced through a callback carrying the sender's NodeId (peers
/// identify themselves with a hello frame when connecting).
///
/// Intentionally modest: blocking connects/writes on localhost-scale
/// deployments, automatic reconnect on failure at the next send. This is
/// the "same protocol code on a real network" demonstrator, not a
/// high-performance messaging layer — the paper's performance claims are
/// reproduced in the simulator.

namespace fastcast::net {

/// node → (host, port) resolution.
struct AddressBook {
  std::string host = "127.0.0.1";
  std::uint16_t base_port = 0;

  std::uint16_t port_of(NodeId n) const {
    return static_cast<std::uint16_t>(base_port + n);
  }
};

class TcpTransport {
 public:
  using ReceiveFn = std::function<void(NodeId from, const Message& msg)>;

  TcpTransport(NodeId self, AddressBook addresses);
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds and listens; throws std::runtime_error on failure.
  void listen();

  void set_receive(ReceiveFn fn) { receive_ = std::move(fn); }

  /// Sends one framed message (connecting first if needed). Best-effort:
  /// on failure the connection is dropped and will be re-established on
  /// the next send.
  void send(NodeId to, const Message& msg);

  /// Accepts/reads once with the given timeout; dispatches every complete
  /// inbound message. Returns the number of messages dispatched.
  std::size_t poll_once(int timeout_ms);

  void close_all();

  NodeId self() const { return self_; }

 private:
  struct Peer {
    int fd = -1;
    FrameParser parser;
    NodeId id = kInvalidNode;  ///< learned from the hello frame
  };

  int connect_to(NodeId to);
  void drop(int fd);
  void handle_readable(Peer& peer);

  NodeId self_;
  AddressBook addresses_;
  int listen_fd_ = -1;
  std::map<NodeId, int> outbound_;  // node → fd
  std::map<int, Peer> inbound_;     // fd → peer state
  ReceiveFn receive_;
};

}  // namespace fastcast::net
