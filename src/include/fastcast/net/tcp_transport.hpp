#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fastcast/common/codec.hpp"
#include "fastcast/common/rng.hpp"
#include "fastcast/net/frame.hpp"
#include "fastcast/net/transport_backend.hpp"
#include "fastcast/runtime/ids.hpp"

namespace fastcast::obs {
class Observability;
class Counter;
class Gauge;
}  // namespace fastcast::obs

/// \file tcp_transport.hpp
/// A single node's TCP endpoint: listens on its own port, lazily connects
/// to peers, frames outbound Messages, and parses inbound streams. The
/// owner drives it from one thread via poll_once(); inbound messages are
/// surfaced through a callback carrying the sender's NodeId (peers
/// identify themselves with a hello frame when connecting).
///
/// Hot-path engineering:
///   * send() enqueues the framed message on a per-peer output queue of
///     pooled buffers; flush() drains a whole queue with one gather-write
///     syscall (sendmsg with an iovec per frame — writev-style coalescing
///     plus MSG_NOSIGNAL), so N frames cost one syscall, not N.
///   * The event engine is pluggable (TransportOptions::backend): the
///     poll(2) backend keeps its cached pollfd array, rebuilt only when
///     the connection set changes (accept/drop); the io_uring backend
///     batches every armed receive and readiness re-arm into one
///     io_uring_enter per wait cycle.
///   * Inbound reads land directly in each peer's FrameParser arena
///     (recv_buffer/commit, armed through the backend) — no intermediate
///     stack buffer copy.
/// Writes still block on localhost-scale deployments.
///
/// Failure handling: frames for an unreachable peer stay queued, and the
/// transport reconnects with exponential backoff + jitter (RetryPolicy).
/// Queued frames flush in order once the peer returns; the per-peer queue
/// is bounded, with overflow counted rather than silently lost.

namespace fastcast::net {

/// node → (host, port) resolution.
struct AddressBook {
  std::string host = "127.0.0.1";
  std::uint16_t base_port = 0;

  std::uint16_t port_of(NodeId n) const {
    return static_cast<std::uint16_t>(base_port + n);
  }
};

/// Reconnect/backoff behaviour for outbound connections.
struct RetryPolicy {
  int base_backoff_ms = 5;    ///< delay after the first failure
  int max_backoff_ms = 1000;  ///< backoff doubles per failure up to this cap
  double jitter = 0.2;        ///< ± fraction randomizing each backoff
  /// Per-peer queued-bytes bound while disconnected; frames arriving beyond
  /// it are dropped (and counted in stats().tx_frames_dropped).
  std::size_t max_queued_bytes = 8 * 1024 * 1024;
  /// Consecutive connect failures before the queued frames for that peer
  /// are discarded (counted as dropped). Reconnection attempts continue at
  /// max backoff so a recovered peer still re-establishes. 0 = never give
  /// up the queue.
  int max_attempts = 0;
};

/// Construction-time knobs orthogonal to retry behaviour.
struct TransportOptions {
  /// Event-engine selection; kAuto resolves to io_uring when the kernel
  /// supports it and falls back to poll(2) otherwise. kPoll is the default
  /// so existing single-threaded deployments are bit-for-bit unchanged.
  BackendKind backend = BackendKind::kPoll;
  /// How long listen() retries bind() on EADDRINUSE. The retry exists for
  /// one reason: io_uring's deferred ring-exit work can hold a just-closed
  /// listen socket's last file reference a few ms past close(), so
  /// back-to-back restarts on a fixed port need a grace window. -1 (auto)
  /// scopes the retry to exactly that case — 500ms on the uring backend,
  /// 0 on poll so a genuine port conflict fails fast instead of hanging
  /// half a second. Set explicitly to override either way.
  int bind_retry_ms = -1;
};

class TcpTransport {
 public:
  using ReceiveFn = std::function<void(NodeId from, const Message& msg)>;

  TcpTransport(NodeId self, AddressBook addresses,
               TransportOptions options = {});
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds and listens; throws std::runtime_error on failure.
  void listen();

  void set_receive(ReceiveFn fn) { receive_ = std::move(fn); }

  /// Replaces the reconnect policy (call before traffic starts).
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  /// Wires degradation counters (net.reconnects, net.connect_failures,
  /// net.disconnects, net.tx_frames_dropped) plus the backpressure gauges
  /// net.tx_queued_bytes (current total queued across peers, the signal
  /// admission control samples) and net.tx_queued_bytes_hwm (run
  /// high-water mark). Pass null to detach.
  void set_observability(obs::Observability* o);

  /// Frames and queues one message. The frame leaves the socket at the next
  /// flush()/poll_once(), or immediately once the peer's queue passes the
  /// coalescing threshold. If the peer is unreachable the frame stays
  /// queued and departs once backoff reconnection succeeds.
  void send(NodeId to, const Message& msg);

  /// Writes every peer's queued frames (one gather syscall per peer),
  /// attempting due reconnects first.
  void flush();

  /// Bytes queued but not yet handed to the kernel (all peers).
  std::size_t pending_bytes() const;

  /// Flushes queued output, then accepts/reads once with the given
  /// timeout; dispatches every complete inbound message. Returns the
  /// number of messages dispatched.
  std::size_t poll_once(int timeout_ms);

  void close_all();

  NodeId self() const { return self_; }

  /// The event engine actually in use ("poll" or "uring") — kAuto and
  /// unsupported-kernel fallback both resolve at construction.
  const char* backend_name() const;

  /// Adopts an already-accepted, hello-complete inbound connection (the
  /// sharded runtime's acceptor hands fds to the owning shard this way).
  /// The transport takes ownership of fd and attributes its frames to
  /// `peer`.
  void adopt_inbound(int fd, NodeId peer);

  /// Registers an auxiliary fd (eventfd, listen socket owned by a router):
  /// `cb` runs from poll_once whenever it turns readable. The caller keeps
  /// ownership of the fd and must unwatch before closing it.
  void watch_fd(int fd, std::function<void()> cb);
  void unwatch_fd(int fd);

  /// Consulted once per inbound connection, right after its hello frame
  /// identifies the peer. Returning true transfers ownership of fd to the
  /// router (the transport forgets it without closing); returning false
  /// keeps the connection here. The sharded runtime uses this to move
  /// accepted connections to the shard that owns the peer.
  using HelloRouter = std::function<bool(int fd, NodeId peer)>;
  void set_hello_router(HelloRouter fn) { hello_router_ = std::move(fn); }

  /// Degradation counters (also exported through set_observability).
  struct Stats {
    std::uint64_t reconnects = 0;        ///< successful connects after a loss
    std::uint64_t connect_failures = 0;  ///< failed connect attempts
    std::uint64_t disconnects = 0;       ///< established connections lost
    std::uint64_t tx_frames_dropped = 0;  ///< frames shed (overflow/budget)
    std::uint64_t listen_retries = 0;  ///< EADDRINUSE bind retries in listen()
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Peer {
    int fd = -1;
    FrameParser parser;
    NodeId id = kInvalidNode;  ///< learned from the hello frame
    std::byte hello[4];        ///< partial hello bytes
    std::size_t hello_got = 0;
  };

  /// Outbound connection with its coalescing queue: frames wait here and
  /// leave in one gather-write. head_offset tracks the partially-written
  /// prefix of frames.front() across flushes. While disconnected, frames
  /// accumulate (bounded by RetryPolicy) and next_attempt gates backoff.
  struct Outbound {
    int fd = -1;
    bool connected = false;
    /// True once this peer has ever been connected. With attempts, gates
    /// the reconnects counter per peer: a clean first-try connect is never
    /// a reconnect (it used to count as one whenever any *other* peer had
    /// disconnected before).
    bool ever_connected = false;
    std::deque<std::vector<std::byte>> frames;
    std::size_t head_offset = 0;
    std::size_t queued_bytes = 0;
    int attempts = 0;  ///< consecutive failed connects this episode
    std::chrono::steady_clock::time_point next_attempt{};  ///< epoch = now
  };

  int connect_to(NodeId to);
  bool try_connect(NodeId to, Outbound& ob);  ///< respects backoff schedule
  void disconnect(NodeId to, Outbound& ob);   ///< keep queue, arm reconnect
  std::chrono::milliseconds backoff_for(int attempts);
  void shed_queue(Outbound& ob);              ///< discard + count all frames
  void drop(int fd);
  void accept_one();
  void handle_hello(Peer& peer);
  std::size_t handle_recv(Peer& peer, ssize_t n);
  void arm_peer_recv(Peer& peer);
  bool write_pending(Outbound& ob);           ///< false = connection died
  void advance_written(Outbound& ob, std::size_t n);
  /// Applies a queued-bytes change (signed) to the running total and
  /// mirrors it into the tx-queue gauges when attached.
  void note_queued_delta(std::ptrdiff_t delta);

  NodeId self_;
  AddressBook addresses_;
  TransportOptions options_;
  RetryPolicy retry_;
  std::unique_ptr<TransportBackend> backend_;
  int listen_fd_ = -1;
  std::map<NodeId, Outbound> outbound_;  // node → connection + queue
  std::map<int, Peer> inbound_;          // fd → peer state
  std::map<int, std::function<void()>> watched_;  // aux fds (watch_fd)
  HelloRouter hello_router_;
  ReceiveFn receive_;
  BufferPool pool_;  ///< recycles frame buffers across sends
  Rng rng_;          ///< backoff jitter
  Stats stats_;
  obs::Counter* c_reconnects_ = nullptr;
  obs::Counter* c_connect_failures_ = nullptr;
  obs::Counter* c_disconnects_ = nullptr;
  obs::Counter* c_tx_dropped_ = nullptr;
  obs::Counter* c_listen_retries_ = nullptr;
  obs::Gauge* g_tx_queued_ = nullptr;
  obs::Gauge* g_tx_queued_hwm_ = nullptr;
  /// Incremental sum of every peer's queued_bytes (kept so gauge updates
  /// are O(1) on the send hot path, not a map walk).
  std::size_t total_queued_ = 0;

  std::vector<TransportBackend::Event> events_;  ///< reused per poll_once
};

}  // namespace fastcast::net
