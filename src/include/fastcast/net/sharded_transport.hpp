#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "fastcast/net/spsc_ring.hpp"
#include "fastcast/net/tcp_transport.hpp"

/// \file sharded_transport.hpp
/// Thread-per-core transport runtime: N shards, each owning a disjoint set
/// of peer connections (shard = peer % N), its own TcpTransport (and thus
/// its own event backend, FrameParser arenas and buffer pool), and a
/// thread pinned to one CPU. The protocol thread talks to shards only
/// through SPSC rings:
///
///   protocol ── tx ring ──▶ shard   (send(to, msg); eventfd wake)
///   protocol ◀── rx ring ── shard   (poll_deliveries drains)
///
/// Inbound connections all arrive at shard 0's listen socket; once the
/// hello frame names the peer, the fd is handed to the owning shard over
/// an adopt ring (TcpTransport::set_hello_router +
/// TcpTransport::adopt_inbound), so steady-state traffic never crosses
/// shard boundaries.
///
/// Threading contract: one protocol thread calls send()/poll_deliveries()
/// (the rings are single-producer/single-consumer by construction). Ring
/// overflow applies backpressure (the pushing side yields until space),
/// never drops — except once stop() has begun, when the opposite side may
/// no longer be draining: pushers then bail out (dropping the item) so
/// shutdown cannot deadlock on a full ring.

namespace fastcast::net {

struct ShardedOptions {
  int shards = 1;
  /// Event engine per shard; kAuto picks io_uring when the kernel has it.
  BackendKind backend = BackendKind::kAuto;
  /// Pin shard i to CPU (i mod allowed-set). Best-effort.
  bool pin_threads = true;
  /// Per-ring entry capacity (rounded up to a power of two).
  std::size_t ring_capacity = 1 << 14;
  /// Shard poll timeout: bounds wake-miss latency (see sleeping flag).
  int poll_timeout_ms = 1;
};

class ShardedTransport {
 public:
  using ReceiveFn = TcpTransport::ReceiveFn;

  ShardedTransport(NodeId self, AddressBook addresses,
                   ShardedOptions options = {});
  ~ShardedTransport();

  ShardedTransport(const ShardedTransport&) = delete;
  ShardedTransport& operator=(const ShardedTransport&) = delete;

  /// Binds shard 0's listener, then spawns one pinned thread per shard.
  void start();

  /// Stops and joins every shard thread; shard transports close on their
  /// own threads.
  void stop();

  /// Queues msg for the shard owning `to` (backpressures when the ring is
  /// full). Protocol-thread only.
  void send(NodeId to, const Message& msg);

  /// Drains every shard's delivery ring, invoking fn per message on the
  /// calling (protocol) thread. Returns messages delivered.
  std::size_t poll_deliveries(const ReceiveFn& fn);

  int shard_count() const { return static_cast<int>(shards_.size()); }
  int shard_of(NodeId peer) const {
    return static_cast<int>(peer % shards_.size());
  }

  /// Resolved event engine (all shards share one kind).
  const char* backend_name() const;

  /// Attaches one registry to every shard transport (degradation counters
  /// add across shards; net.tx_queued_bytes reflects whichever shard wrote
  /// last, its _hwm the max over per-shard totals) and arms the
  /// net.shard_ring_hwm gauge: running high-water of SPSC ring occupancy
  /// (tx and rx) — the cross-thread handoff's backpressure signal. Callable
  /// before or after start(); pass null to detach.
  void set_observability(obs::Observability* o);

  /// Total frames received across shards (atomic; readable any time).
  std::uint64_t frames_received() const;

 private:
  struct TxItem {
    NodeId to = kInvalidNode;
    Message msg;
  };
  struct RxItem {
    NodeId from = kInvalidNode;
    Message msg;
  };
  struct Adopted {
    int fd = -1;
    NodeId peer = kInvalidNode;
  };

  struct Shard {
    explicit Shard(std::size_t ring_capacity)
        : tx(ring_capacity), rx(ring_capacity), adopt(64) {}

    std::unique_ptr<TcpTransport> transport;
    SpscRing<TxItem> tx;      ///< protocol → shard
    SpscRing<RxItem> rx;      ///< shard → protocol
    SpscRing<Adopted> adopt;  ///< shard 0 (acceptor) → shard
    int wake_fd = -1;         ///< eventfd; poked when a ring gains work
    /// True while the shard is (about to be) blocked in poll; producers
    /// skip the eventfd syscall when the shard is provably awake.
    std::atomic<bool> sleeping{false};
    std::atomic<std::uint64_t> received{0};
    std::thread thread;
  };

  void run_shard(int index);
  void wake(Shard& shard);
  void drain_control(Shard& shard);  ///< adopt + tx rings, on shard thread

  NodeId self_;
  AddressBook addresses_;
  ShardedOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> running_{false};
  obs::Observability* obs_ = nullptr;
  obs::Gauge* g_ring_hwm_ = nullptr;
};

}  // namespace fastcast::net
