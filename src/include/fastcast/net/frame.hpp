#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fastcast/runtime/message.hpp"

/// \file frame.hpp
/// Length-prefixed framing for the TCP transport: each frame is a 4-byte
/// little-endian length followed by one encoded Message. FrameParser
/// incrementally consumes a byte stream and yields complete messages.
///
/// The hot paths are allocation-aware: frame_message_into appends into a
/// caller-recycled buffer (pair with BufferPool), and FrameParser exposes
/// its internal arena through recv_buffer()/commit() so sockets can read
/// straight into it — no intermediate stack buffer, no feed() copy.

namespace fastcast::net {

/// Hard cap on a frame body; larger lengths indicate stream corruption.
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Encodes `msg` as one frame (length prefix included).
std::vector<std::byte> frame_message(const Message& msg);

/// Appends one frame for `msg` to `out` (capacity reused, contents kept),
/// so many frames can be coalesced into one buffer or a pooled buffer can
/// be recycled across messages. Byte-identical to frame_message.
void frame_message_into(const Message& msg, std::vector<std::byte>& out);

class FrameParser {
 public:
  /// Appends raw stream bytes (copying path; recv_buffer/commit is the
  /// copy-free alternative).
  void feed(const std::byte* data, std::size_t len);

  /// Returns a writable region of at least `min_bytes` at the tail of the
  /// internal arena. Read socket data directly into it, then call
  /// commit(n) with the byte count actually received.
  std::span<std::byte> recv_buffer(std::size_t min_bytes);
  void commit(std::size_t n);

  /// Extracts the next complete message, if any. Returns std::nullopt when
  /// more bytes are needed. Sets corrupted() on framing/codec errors, after
  /// which the connection must be dropped. Decoding reads std::span views
  /// of the arena; only the decoded Message fields are materialized.
  std::optional<Message> next();

  bool corrupted() const { return corrupted_; }
  std::size_t buffered() const { return end_ - consumed_; }

 private:
  void compact();

  /// The arena: bytes [consumed_, end_) are unparsed stream data; the
  /// vector's size is treated as capacity (bytes past end_ are garbage).
  std::vector<std::byte> buf_;
  std::size_t end_ = 0;
  std::size_t consumed_ = 0;
  bool corrupted_ = false;
};

}  // namespace fastcast::net
