#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fastcast/runtime/message.hpp"

/// \file frame.hpp
/// Length-prefixed framing for the TCP transport: each frame is a 4-byte
/// little-endian length followed by one encoded Message. FrameParser
/// incrementally consumes a byte stream and yields complete messages.

namespace fastcast::net {

/// Hard cap on a frame body; larger lengths indicate stream corruption.
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Encodes `msg` as one frame (length prefix included).
std::vector<std::byte> frame_message(const Message& msg);

class FrameParser {
 public:
  /// Appends raw stream bytes.
  void feed(const std::byte* data, std::size_t len);

  /// Extracts the next complete message, if any. Returns std::nullopt when
  /// more bytes are needed. Sets corrupted() on framing/codec errors, after
  /// which the connection must be dropped.
  std::optional<Message> next();

  bool corrupted() const { return corrupted_; }
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  void compact();

  std::vector<std::byte> buf_;
  std::size_t consumed_ = 0;
  bool corrupted_ = false;
};

}  // namespace fastcast::net
