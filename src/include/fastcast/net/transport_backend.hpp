#pragma once

#include <sys/types.h>

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

struct iovec;  // <sys/uio.h>

/// \file transport_backend.hpp
/// The event-engine seam of the TCP runtime. A TransportBackend owns the
/// "wait for I/O, hand me bytes" half of a transport: readiness watches for
/// control fds (listen sockets, eventfds, half-shaken connections), armed
/// single-shot receives that land directly in a caller-owned buffer (the
/// FrameParser arena — zero intermediate copies), and synchronous gather
/// writes. Everything above it — framing, per-peer queues, reconnect
/// backoff, shedding — is backend-agnostic and lives in TcpTransport.
///
/// Two implementations ship today:
///   * poll(2)   — the portable baseline. One poll per wait; armed receives
///                 are satisfied with one recv(2) per readable fd. Keeps the
///                 cached-pollfd-array optimization: the array is rebuilt
///                 only when the fd set changes, not per wait.
///   * io_uring  — completion-based. Receives and readiness watches are
///                 submitted as SQEs; one io_uring_enter(2) per wait both
///                 flushes the submission queue and reaps every completion,
///                 so a wait cycle costs one syscall regardless of how many
///                 connections had traffic. Implemented against the raw
///                 kernel ABI (no liburing dependency); built when the
///                 kernel headers are present (FASTCAST_URING) and selected
///                 at runtime only if io_uring_setup(2) actually works —
///                 kAuto degrades to poll on kernels/sandboxes without it.
///
/// The same interface boundary is what a future RDMA/DPDK-style backend
/// would implement.
///
/// Threading: a backend instance belongs to exactly one thread, like the
/// transport that owns it.

namespace fastcast::net {

/// Runtime-selectable backend. kAuto resolves to kUring when the kernel
/// supports it (see uring_available), else kPoll.
enum class BackendKind { kPoll, kUring, kAuto };

const char* to_string(BackendKind kind);

/// Parses "poll" / "uring" / "auto" (CLI flag values).
std::optional<BackendKind> parse_backend_kind(std::string_view name);

/// True when this build carries the io_uring backend and the running kernel
/// accepts io_uring_setup(2) with the features it needs (EXT_ARG wait
/// timeouts). Probed once, then cached.
bool uring_available();

class TransportBackend {
 public:
  struct Event {
    enum class Kind : std::uint8_t {
      kReadable,  ///< a watched fd is readable (no buffer was armed)
      kRecv,      ///< an armed receive finished; n has recv(2) semantics
    };
    Kind kind;
    int fd;
    ssize_t n;  ///< kRecv: >0 bytes received, 0 EOF, <0 error. kReadable: 0.
  };

  virtual ~TransportBackend() = default;

  virtual const char* name() const = 0;

  /// Registers persistent read-readiness interest in fd (listen sockets,
  /// eventfds, connections still in their hello handshake). Events surface
  /// as kReadable; the caller does its own read.
  virtual void watch_readable(int fd) = 0;

  /// Arms a single-shot receive into [buf, buf+len). At most one receive is
  /// outstanding per fd; re-arming while armed is a no-op (the io_uring SQE
  /// is already in flight). Arming supersedes any readiness watch on fd
  /// (the hello-phase watch ends when the data phase arms its first
  /// receive). The buffer must stay valid and untouched until the fd's
  /// kRecv event is delivered or remove(fd) is called.
  virtual void arm_recv(int fd, std::byte* buf, std::size_t len) = 0;

  /// Drops all interest in fd: readiness watch and any armed receive. Must
  /// be called before closing an fd so a recycled fd number cannot inherit
  /// stale completions. On return no in-flight operation references the
  /// armed buffer any more — the caller may reclaim it immediately, so a
  /// completion-based backend must cancel and reap synchronously here.
  virtual void remove(int fd) = 0;

  /// Synchronous gather write: sendmsg(2) over iov with MSG_NOSIGNAL.
  /// Returns bytes written or -1 with errno set (EINTR included).
  virtual ssize_t send_gather(int fd, const struct iovec* iov, int iovcnt) = 0;

  /// Waits up to timeout_ms (0 = non-blocking probe) and appends every
  /// ready event to out. Returns the number of events appended.
  virtual std::size_t wait(int timeout_ms, std::vector<Event>& out) = 0;
};

/// Creates a poll(2) backend.
std::unique_ptr<TransportBackend> make_poll_backend();

/// Creates an io_uring backend; null when unsupported (build or kernel).
std::unique_ptr<TransportBackend> make_uring_backend();

/// Resolves kAuto per uring_available(); kUring on an unsupported host also
/// falls back to kPoll (callers that need hard failure check
/// uring_available() themselves).
BackendKind resolve_backend(BackendKind kind);

/// Factory: resolves `kind`, then builds the backend.
std::unique_ptr<TransportBackend> make_backend(BackendKind kind);

}  // namespace fastcast::net
