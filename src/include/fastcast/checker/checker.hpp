#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fastcast/obs/metrics.hpp"
#include "fastcast/runtime/membership.hpp"
#include "fastcast/runtime/message.hpp"

/// \file checker.hpp
/// Post-hoc verifier for the atomic-multicast properties of §2.3.
///
/// The harness feeds it every a-multicast and every per-replica a-delivery;
/// check() then validates:
///   * uniform integrity — delivered at most once, only by destination
///     replicas, only if previously multicast;
///   * acyclic order — the union of all per-replica delivery orders has no
///     cycle (checked by topological sort over consecutive-delivery edges;
///     per-replica orders are total, so any pairwise inversion forms a
///     cycle and is caught here too);
///   * uniform prefix order — for replicas p, q whose groups are both in
///     dst(m) ∩ dst(m'), it is impossible that p delivered m but not m'
///     while q delivered m' but not m (the ordering half is subsumed by
///     acyclicity);
///   * same-group consistency — replicas of one group deliver prefixes of
///     a common sequence;
///   * uniform agreement + validity — only meaningful on a quiesced run
///     (all traffic drained): every message delivered by anyone (resp.
///     multicast by a surviving client) was delivered by every surviving
///     replica of every destination group.
///
/// Level::kFast skips the quadratic pairwise checks for large bench runs.

namespace fastcast {

class Checker {
 public:
  enum class Level { kFast, kFull };

  explicit Checker(const Membership* membership) : membership_(membership) {}

  void note_multicast(const MulticastMessage& msg);
  void note_delivery(NodeId node, MsgId mid);
  void note_crashed(NodeId node) { crashed_.insert(node); }

  /// Marks a multicast as *explicitly* terminated without delivery: the
  /// client received a non-advisory Busy (overload rejection / deadline
  /// expiry) or gave up after a timeout. Such messages are exempt from the
  /// quiesced validity check — "never silently lost" means every noted
  /// multicast is either delivered or explicitly accounted for, which is
  /// exactly what check() then verifies. Safety checks (integrity, order,
  /// agreement) still apply in full if the message was delivered anywhere.
  void note_rejected(MsgId mid) { rejected_.insert(mid); }

  struct Report {
    bool ok = true;
    std::vector<std::string> violations;
    std::uint64_t multicast_count = 0;
    std::uint64_t delivery_count = 0;
    std::uint64_t order_edges = 0;     ///< delivery-precedence edges examined
    std::uint64_t orders_compared = 0; ///< replica-pair order comparisons

    /// Reports the check through the run's metrics registry, keeping
    /// experiment output uniform instead of ad-hoc stdout counts.
    void publish(obs::MetricsRegistry& metrics) const;
  };

  /// `quiesced` enables the liveness-flavoured checks (agreement/validity).
  Report check(bool quiesced, Level level = Level::kFull) const;

  std::uint64_t delivery_count() const { return delivery_count_; }
  std::uint64_t multicast_count() const { return multicast_.size(); }

 private:
  struct MsgInfo {
    std::vector<GroupId> dst;
    NodeId sender = kInvalidNode;
  };

  void check_integrity(Report& r) const;
  void check_acyclic(Report& r) const;
  void check_prefix_crosswise(Report& r) const;
  void check_same_group(Report& r, bool quiesced) const;
  void check_agreement_validity(Report& r) const;

  static void violate(Report& r, std::string what);

  const Membership* membership_;
  std::unordered_map<MsgId, MsgInfo> multicast_;
  std::unordered_map<NodeId, std::vector<MsgId>> deliveries_;
  std::unordered_set<NodeId> crashed_;
  std::unordered_set<MsgId> rejected_;
  std::uint64_t delivery_count_ = 0;
};

}  // namespace fastcast
