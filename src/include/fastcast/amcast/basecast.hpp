#pragma once

#include "fastcast/amcast/timestamp_base.hpp"

/// \file basecast.hpp
/// BaseCast — Algorithm 1 of the paper (the 6δ baseline genuine atomic
/// multicast in the style of Fritzke et al. / Schiper & Pedone).
///
/// Per global message: START (1δ) → SET-HARD consensus (2δ) → SEND-HARD
/// exchange (1δ) → SYNC-HARD consensus (2δ) → a-deliver. Local messages
/// finish after the SET-HARD consensus (3δ).

namespace fastcast {

class BaseCast final : public TimestampProtocolBase {
 public:
  BaseCast(Config config, NodeId self)
      : TimestampProtocolBase(std::move(config), self) {}

  const char* name() const override { return "BaseCast"; }

 protected:
  void on_rdeliver(Context& ctx, NodeId origin, const AmcastPayload& payload) override;
  void apply_tuple(Context& ctx, const Tuple& tuple) override;
};

}  // namespace fastcast
