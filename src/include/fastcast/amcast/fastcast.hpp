#pragma once

#include <map>
#include <set>

#include "fastcast/amcast/timestamp_base.hpp"

/// \file fastcast.hpp
/// FastCast — Algorithm 2 of the paper: the optimistic genuine atomic
/// multicast that a-delivers global messages in 4δ on the fast path.
///
/// Fast path: on proposing a SET-HARD, the leader *guesses* the hard
/// timestamp with a soft logical clock CS and r-multicasts SEND-SOFT to
/// the destinations (1δ after START). Destinations order the soft
/// timestamps via consensus (SYNC-SOFT, +2δ). Meanwhile the slow path's
/// first phase runs concurrently: the SET-HARD consensus decides the real
/// hard timestamp and SEND-HARD propagates it (also 3δ after START, +1δ to
/// arrive). Task 6: if a received SEND-HARD carries exactly the timestamp
/// the ordered SYNC-SOFT guessed, the SYNC-HARD is treated as ordered
/// without the second consensus — all groups' SYNC-HARDs are then in B at
/// 4δ. On a mismatch the second consensus runs, as in BaseCast (6δ).
///
/// `force_slow_path` makes the leader transmit deliberately wrong guesses
/// (the ablation of Fig. 5): every message then takes the slow path while
/// still paying the fast path's message overhead.

namespace fastcast {

class FastCast final : public TimestampProtocolBase {
 public:
  struct Options {
    bool force_slow_path = false;
    /// Propose every received SYNC-HARD immediately (Algorithm 2 verbatim)
    /// instead of deferring while its SYNC-SOFT is pending. The redundant
    /// instances compete with the next message's SYNC-SOFT proposals for
    /// the pipeline — the ablation bench quantifies the cost.
    bool eager_hard_propose = false;
  };

  FastCast(Config config, NodeId self, Options options)
      : TimestampProtocolBase(std::move(config), self), options_(options) {}
  FastCast(Config config, NodeId self)
      : FastCast(std::move(config), self, Options{}) {}

  const char* name() const override { return "FastCast"; }

  Ts soft_clock() const { return cs_; }
  std::uint64_t fast_path_hits() const { return fast_hits_; }
  std::uint64_t slow_path_hits() const { return slow_hits_; }
  /// Leader-side: SET-HARDs whose decided hard timestamp differed from the
  /// transmitted soft guess (each forces the slow path for this group).
  std::uint64_t guess_mismatches() const { return guess_mismatches_; }
  std::uint64_t guesses_sent() const { return guesses_sent_; }

 protected:
  void on_rdeliver(Context& ctx, NodeId origin, const AmcastPayload& payload) override;
  void apply_tuple(Context& ctx, const Tuple& tuple) override;
  void before_propose(Context& ctx, const std::vector<Tuple>& batch) override;

 private:
  /// Task 6: orders (SYNC-HARD, h, x, m) out of band when the ordered
  /// SYNC-SOFT for (h, m) carries the same x.
  /// Takes the tuple by value: a match erases the protocol's own stored
  /// copy (ToOrder bookkeeping) while the tuple is still being used.
  void try_task6(Context& ctx, Tuple hard_tuple);

  /// Deliberately-wrong guesses are offset far beyond any real clock value.
  static constexpr Ts kForcedSlowOffset = Ts{1} << 40;

  Options options_;
  Ts cs_ = 0;  ///< soft logical clock CS (leader only uses it)
  std::set<MsgId> soft_sent_;
  std::map<MsgId, Ts> sent_guess_;  ///< transmitted guess, for diagnostics
  std::uint64_t fast_hits_ = 0;
  std::uint64_t slow_hits_ = 0;
  std::uint64_t guess_mismatches_ = 0;
  std::uint64_t guesses_sent_ = 0;
};

}  // namespace fastcast
