#pragma once

#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "fastcast/amcast/atomic_multicast.hpp"
#include "fastcast/amcast/delivery_buffer.hpp"
#include "fastcast/flow/overload.hpp"
#include "fastcast/paxos/group_consensus.hpp"
#include "fastcast/rmcast/reliable_multicast.hpp"

/// \file timestamp_base.hpp
/// Shared machinery of the two timestamp-based genuine protocols.
///
/// BaseCast and FastCast differ only in the fast path (soft timestamps and
/// Task 6 matching); everything else — the hard logical clock CH, the
/// ToOrder/Ordered bookkeeping, leader-driven batched proposals, SET-HARD
/// handling, SYNC-HARD application and the delivery buffer — is identical
/// and lives here.
///
/// Deviations from the pseudocode, standard for practical deployments and
/// documented in DESIGN.md:
///   * only the group leader proposes (Task 3/4 "when ToOrder\Ordered≠∅"
///     runs at every process in the paper; with Paxos that just produces
///     collisions) — staged tuples are re-proposed on leader change and,
///     when losses or elections are enabled, on a periodic tick;
///   * SEND-HARD is transmitted by the leader only (configurable to "all
///     members" to match the pseudocode literally); the hard timestamp is
///     deterministic across members, so receivers cannot observe the
///     difference except in message counts. A new leader re-sends pending
///     SEND-HARDs so the slow path survives leader crashes.

namespace fastcast {

class TimestampProtocolBase : public AtomicMulticast {
 public:
  struct Config {
    GroupId group = kNoGroup;
    paxos::GroupConsensus::Config consensus;
    RmConfig rmcast;

    enum class HardSend {
      kLeaderOnly,  ///< leader transmits SEND-HARD (prototype behaviour)
      kAll,         ///< every member transmits (pseudocode behaviour)
    };
    HardSend hard_send = HardSend::kLeaderOnly;

    /// Periodically re-propose unordered tuples; required for liveness
    /// under message loss or leader re-election.
    bool enable_repropose = false;
    Duration repropose_interval = milliseconds(150);

    /// Overload detection (DESIGN.md §14). Genuine protocols CANNOT shed a
    /// message once it is reliably multicast — a tentative timestamp staged
    /// in one destination group that never finalizes would stall every
    /// other group's delivery buffer — so when the group leader detects
    /// overload it sends an *advisory* Busy to the message's sender (the
    /// message is still processed in full) and the client throttles.
    flow::Options flow;
  };

  TimestampProtocolBase(Config config, NodeId self);

  void on_start(Context& ctx) override;
  void on_recover(Context& ctx) override;
  void restore_durable(const storage::DurableState& durable) override;
  paxos::GroupConsensus* consensus_engine() override { return &cons_; }
  bool handle(Context& ctx, NodeId from, const Message& msg) override;

  // Introspection (tests, stats).
  const DeliveryBuffer& buffer() const { return buffer_; }
  Ts hard_clock() const { return ch_; }

  /// Settled frontier for the repair subsystem: every instance below it
  /// only touches locally delivered messages, so replaying it against the
  /// durable delivered set is a provable no-op and recovery may skip it.
  InstanceId settled_frontier() const {
    return settle_pending_.empty() ? settle_frontier_
                                   : settle_pending_.begin()->first;
  }

  std::size_t unordered_count() const { return unordered_.size(); }
  paxos::GroupConsensus& consensus() { return cons_; }
  /// Overload detector (tests / diagnostics).
  const flow::OverloadController& overload() const { return overload_; }

 protected:
  /// Reliable-multicast delivery (START / SEND-SOFT / SEND-HARD).
  virtual void on_rdeliver(Context& ctx, NodeId origin, const AmcastPayload& payload) = 0;

  /// Applies one consensus-ordered tuple (Task 4 / Task 5 body).
  virtual void apply_tuple(Context& ctx, const Tuple& tuple) = 0;

  /// Invoked on the leader just before a batch is proposed — FastCast's
  /// soft-timestamp logic (Algorithm 2, Task 4) hooks in here.
  virtual void before_propose(Context& ctx, const std::vector<Tuple>& batch) {
    (void)ctx;
    (void)batch;
  }

  /// Adds a tuple to ToOrder unless already known; triggers a flush.
  void stage(Context& ctx, Tuple tuple);

  /// Tracks a tuple as known-but-unordered *without* queueing it for
  /// proposal — FastCast defers SYNC-HARDs whose SYNC-SOFT is still in
  /// flight, since a Task-6 match makes the second consensus unnecessary.
  /// The repropose tick still covers deferred tuples (liveness backstop).
  void track_deferred(Tuple tuple);

  /// Queues a previously deferred tuple for proposal (soft/hard mismatch).
  void promote_deferred(Context& ctx, const TupleId& id);
  bool known(const TupleId& id) const { return known_.contains(id); }
  bool is_ordered(const TupleId& id) const { return ordered_.contains(id); }

  /// Marks a tuple ordered outside the decision stream (FastCast Task 6).
  void mark_ordered_out_of_band(const TupleId& id);

  /// Looks up a known-but-unordered tuple (FastCast Task 6 match test).
  const Tuple* find_unordered(const TupleId& id) const;

  /// Shared SET-HARD handling: advances CH, emits SEND-HARD + placeholder
  /// for global messages, forms the final entry for local ones.
  void handle_set_hard(Context& ctx, const Tuple& tuple);

  /// Shared SYNC-HARD handling: Lamport update + buffer insertion.
  void handle_sync_hard(Context& ctx, const Tuple& tuple);

  /// Removes own-group pending state once the group's SYNC-HARD is ordered.
  void settle_own_hard(Context& ctx, MsgId mid);

  Config cfg_;
  NodeId self_;
  ReliableMulticast rm_;
  paxos::GroupConsensus cons_;
  DeliveryBuffer buffer_;
  Ts ch_ = 0;  ///< hard logical clock CH

 private:
  void flush(Context& ctx);
  void on_decide(Context& ctx, InstanceId inst, const std::vector<std::byte>& value);
  void restage_all(Context& ctx);
  void arm_repropose(Context& ctx);
  void settle_note_delivered(MsgId mid);
  void maybe_advise(Context& ctx, const MulticastMessage& msg);

  std::set<TupleId> known_;            // ever staged (ToOrder ∪ Ordered)
  std::set<TupleId> ordered_;          // Ordered
  std::map<TupleId, Tuple> unordered_;  // ToOrder \ Ordered
  std::vector<TupleId> staged_;        // to include in the next proposal
  /// Decided-but-not-yet-settled own hard timestamps, for leader resend.
  std::map<MsgId, std::pair<Ts, std::vector<GroupId>>> hard_pending_;
  /// Settled tracking: an instance is settled once every message its
  /// tuples touch is locally delivered (the delivered-set dedup then makes
  /// every replayed side effect a no-op; CH advancement is covered by the
  /// settled-clock record).
  InstanceId settle_frontier_ = 0;  ///< next instance past contiguous decides
  std::map<InstanceId, std::set<MsgId>> settle_pending_;
  std::unordered_map<MsgId, std::vector<InstanceId>> settle_waiters_;
  bool repropose_armed_ = false;
  Context* decide_ctx_ = nullptr;  ///< bound at on_start

  // Overload detection: the propose→decide round trip of the group's own
  // consensus is the sojourn signal (tracked on the leader only).
  flow::OverloadController overload_;
  std::deque<Time> proposed_at_;
};

}  // namespace fastcast
