#pragma once

#include <map>
#include <memory>

#include "fastcast/obs/observability.hpp"
#include "fastcast/rmcast/reliable_multicast.hpp"
#include "fastcast/runtime/context.hpp"

/// \file client_stub.hpp
/// Client-side initiation of an atomic multicast.
///
/// The genuine protocols start with the client r-multicasting START to the
/// destination groups; the non-genuine protocol submits to the fixed
/// ordering group's leader. Completion (delivery acks) is observed by the
/// caller — typically the closed-loop harness client — via AmAck messages;
/// the stub only needs to know about completions to stop retrying.

namespace fastcast {

class ClientStub {
 public:
  virtual ~ClientStub() = default;

  virtual void on_start(Context& ctx) { (void)ctx; }

  /// Initiates a-multicast(msg). msg.id and msg.dst must be filled in.
  virtual void amulticast(Context& ctx, const MulticastMessage& msg) = 0;

  /// Tells the stub the message completed (first delivery ack observed).
  virtual void complete(MsgId mid) { (void)mid; }

  /// Routes stub-internal messages (e.g. rmcast acks); false if not ours.
  virtual bool handle(Context& ctx, NodeId from, const Message& msg) {
    (void)ctx;
    (void)from;
    (void)msg;
    return false;
  }
};

/// START via FIFO reliable multicast — BaseCast and FastCast clients.
class GenuineClientStub final : public ClientStub {
 public:
  explicit GenuineClientStub(RmConfig rmcast = {}) : rm_(rmcast) {}

  void on_start(Context& ctx) override { rm_.on_start(ctx); }
  void amulticast(Context& ctx, const MulticastMessage& msg) override {
    if (auto* o = ctx.obs()) {
      o->metrics.counter("client.mcast").inc();
      o->trace(msg.id, obs::SpanEventKind::kMcast, ctx.self(), kNoGroup,
               ctx.now(), static_cast<std::uint32_t>(msg.dst.size()));
    }
    rm_.multicast(ctx, msg.dst, AmStart{msg});
  }
  bool handle(Context& ctx, NodeId from, const Message& msg) override {
    return rm_.handle(ctx, from, msg);
  }

 private:
  ReliableMulticast rm_;
};

/// Submission to the fixed ordering group — MultiPaxos clients. Retries
/// against successive ordering members until complete() (covers message
/// loss and ordering-leader failover).
class MultiPaxosClientStub final : public ClientStub {
 public:
  struct Config {
    std::vector<NodeId> ordering_members;
    bool reliable_links = true;           ///< disables the retry timer
    Duration retry_interval = milliseconds(150);
  };

  explicit MultiPaxosClientStub(Config config) : cfg_(std::move(config)) {}

  void amulticast(Context& ctx, const MulticastMessage& msg) override;
  void complete(MsgId mid) override { pending_.erase(mid); }

 private:
  void arm_retry(Context& ctx);

  Config cfg_;
  std::map<MsgId, MulticastMessage> pending_;
  std::size_t retry_target_ = 0;
  bool timer_armed_ = false;
};

}  // namespace fastcast
