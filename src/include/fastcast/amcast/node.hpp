#pragma once

#include <memory>

#include "fastcast/amcast/atomic_multicast.hpp"
#include "fastcast/runtime/context.hpp"

/// \file node.hpp
/// The replica Process: owns one AtomicMulticast protocol instance,
/// forwards inbound traffic to it, acknowledges deliveries back to the
/// message sender (how closed-loop clients measure completion latency),
/// and exposes a delivery observer for the checker/metrics.

namespace fastcast {

class ReplicaNode final : public Process {
 public:
  struct Options {
    /// Send AmAck to msg.sender on every a-delivery.
    bool send_acks = true;
  };

  ReplicaNode(std::shared_ptr<AtomicMulticast> protocol, Options options);
  explicit ReplicaNode(std::shared_ptr<AtomicMulticast> protocol);

  /// Observers invoked on every a-delivery (after the ack is queued), in
  /// registration order. Used by the checker, metrics and applications.
  using ObserverFn = std::function<void(Context&, const MulticastMessage&)>;
  void add_observer(ObserverFn fn) { observers_.push_back(std::move(fn)); }

  AtomicMulticast& protocol() { return *protocol_; }

  void on_start(Context& ctx) override;
  void on_recover(Context& ctx) override;
  void on_message(Context& ctx, NodeId from, const Message& msg) override;

  std::uint64_t delivered_count() const { return delivered_count_; }

 private:
  std::shared_ptr<AtomicMulticast> protocol_;
  Options options_;
  std::vector<ObserverFn> observers_;
  std::uint64_t delivered_count_ = 0;
};

}  // namespace fastcast
