#pragma once

#include <memory>

#include "fastcast/amcast/atomic_multicast.hpp"
#include "fastcast/runtime/context.hpp"

/// \file node.hpp
/// The replica Process: owns one AtomicMulticast protocol instance,
/// forwards inbound traffic to it, acknowledges deliveries back to the
/// message sender (how closed-loop clients measure completion latency),
/// and exposes a delivery observer for the checker/metrics.
///
/// With storage attached, a-deliveries are the node's last externalization
/// point: the delivered record is logged and the ack + observers gated on
/// its commit, and under the batch fsync policy this node arms the
/// interval timer that flushes partially filled batches. On start/recover
/// the node re-externalizes every delivery recovery replayed from the WAL:
/// a record can outlive its dropped gate closure (fsynced or kept by a
/// torn tail), and without the redo the delivered-set dedup would hide
/// that delivery from the application forever. Re-externalization is
/// at-least-once; acks and observers dedup by message id.

namespace fastcast {

class ReplicaNode final : public Process {
 public:
  struct Options {
    /// Send AmAck to msg.sender on every a-delivery.
    bool send_acks = true;
  };

  ReplicaNode(std::shared_ptr<AtomicMulticast> protocol, Options options);
  explicit ReplicaNode(std::shared_ptr<AtomicMulticast> protocol);

  /// Observers invoked on every a-delivery (after the ack is queued), in
  /// registration order. Used by the checker, metrics and applications.
  using ObserverFn = std::function<void(Context&, const MulticastMessage&)>;
  void add_observer(ObserverFn fn) { observers_.push_back(std::move(fn)); }

  AtomicMulticast& protocol() { return *protocol_; }

  void on_start(Context& ctx) override;
  void on_recover(Context& ctx) override;
  void on_message(Context& ctx, NodeId from, const Message& msg) override;

  std::uint64_t delivered_count() const { return delivered_count_; }

 private:
  void externalize(Context& ctx, const MulticastMessage& msg);
  void redeliver_in_doubt(Context& ctx);
  void arm_commit_tick(Context& ctx);

  std::shared_ptr<AtomicMulticast> protocol_;
  Options options_;
  std::vector<ObserverFn> observers_;
  std::uint64_t delivered_count_ = 0;
  bool commit_tick_armed_ = false;
};

}  // namespace fastcast
