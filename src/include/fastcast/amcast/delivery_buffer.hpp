#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "fastcast/runtime/context.hpp"

/// \file delivery_buffer.hpp
/// The buffer "B" of Algorithms 1 and 2, shared by BaseCast and FastCast.
///
/// Holds the tentative timestamps of undelivered messages, forms final
/// timestamps once SYNC-HARD entries from every destination group are
/// present (Task 5 / Task 7), and a-delivers messages whose final
/// timestamp is smaller than every tentative timestamp still buffered.
///
/// Two deviations from the paper's pseudocode, both deliberate:
///   * Tie-break — timestamps are compared as (ts, message id) pairs;
///     the pseudocode's strict `ts < x` would livelock on equal final
///     timestamps, which Lamport-clock maxima do produce.
///   * kPendingHard placeholders — when a group decides SET-HARD for a
///     global message it records its own (not yet ordered) hard timestamp
///     here, as BaseCast's line 22 does. Algorithm 2 omits this insert;
///     without it a message whose SET-HARD was decided earlier (with a
///     smaller clock value) could be overtaken, violating prefix order.
///     The placeholder is replaced when the group's own SYNC-HARD is
///     ordered, so the fast path is unaffected.
///
/// Message bodies arrive via START and may lag behind timestamps (tuples
/// carry only ids); delivery stalls until the body is present.

namespace fastcast {

/// Kinds of entries B can hold for one (message, group) pair.
enum class EntryKind : std::uint8_t {
  kPendingHard,  ///< own group's hard ts, decided but not yet ordered
  kSyncSoft,     ///< ordered soft tentative timestamp (FastCast)
  kSyncHard,     ///< ordered hard tentative timestamp
};

class DeliveryBuffer {
 public:
  using DeliverFn = std::function<void(Context&, const MulticastMessage&)>;
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Records the destination set of a message (idempotent).
  void note_dst(MsgId mid, const std::vector<GroupId>& dst);

  /// Stores the application message carried by START; may unblock delivery.
  /// With storage present the body is also WAL-logged (kBody): once the
  /// origin's retransmission stops, this node's disk is the only place the
  /// payload survives a crash before delivery.
  void store_body(Context& ctx, const MulticastMessage& msg);
  bool has_body(MsgId mid) const;

  /// Recovery: marks messages as already a-delivered (never again) without
  /// counting them or invoking the upcall.
  void restore_delivered(const std::set<MsgId>& delivered);

  /// Recovery: re-installs a persisted body (and its destination set)
  /// without attempting delivery — timestamps arrive separately via the
  /// protocol layer's catch-up.
  void restore_body(const MulticastMessage& msg);

  /// Adds one tentative-timestamp entry. At most one entry per
  /// (kind, group, mid) — duplicates are ignored (the protocol layer's
  /// Ordered set normally prevents them).
  void add_entry(Context& ctx, EntryKind kind, GroupId group, Ts ts, MsgId mid);

  /// Drops the kPendingHard placeholder of `group` for `mid` (called when
  /// the group's own SYNC-HARD gets ordered).
  void remove_pending_hard(Context& ctx, MsgId mid, GroupId group);

  /// Returns the ordered soft timestamp of (group, mid) if present —
  /// FastCast's Task 6 match test.
  std::optional<Ts> sync_soft_ts(MsgId mid, GroupId group) const;
  bool has_sync_hard(MsgId mid, GroupId group) const;

  /// Forms the final timestamp if every destination's SYNC-HARD is present
  /// and attempts deliveries. Also invoked internally by add_entry.
  void try_deliver(Context& ctx);

  // Introspection.
  std::size_t undelivered_count() const { return msgs_.size(); }
  std::size_t blocking_count() const { return blocking_.size(); }
  std::uint64_t delivered_count() const { return delivered_count_; }
  bool was_delivered(MsgId mid) const { return delivered_.contains(mid); }

 private:
  struct Entry {
    EntryKind kind;
    GroupId group;
    Ts ts;
  };

  struct PerMessage {
    std::vector<GroupId> dst;
    bool dst_known = false;
    std::optional<MulticastMessage> body;
    std::vector<Entry> entries;
    bool final_formed = false;
    TsKey final_key;
    std::size_t sync_hard_count = 0;
  };

  void try_form_final(Context& ctx, MsgId mid, PerMessage& pm);

  DeliverFn deliver_;
  std::unordered_map<MsgId, PerMessage> msgs_;
  /// Every tentative entry and every formed FINAL, as (ts, mid) keys.
  std::multiset<TsKey> blocking_;
  /// Formed FINALs awaiting delivery.
  std::set<TsKey> finals_;
  std::set<MsgId> delivered_;
  std::uint64_t delivered_count_ = 0;
};

}  // namespace fastcast
