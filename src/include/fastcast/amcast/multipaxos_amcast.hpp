#pragma once

#include <deque>
#include <set>
#include <unordered_map>

#include "fastcast/amcast/atomic_multicast.hpp"
#include "fastcast/flow/overload.hpp"
#include "fastcast/paxos/group_consensus.hpp"

/// \file multipaxos_amcast.hpp
/// The non-genuine atomic multicast the paper compares against (§5.1):
/// a fixed ordering group sequences *every* multicast with MultiPaxos,
/// regardless of destinations, and every process in the system learns the
/// decisions (acceptors broadcast P2b to all learners). A replica
/// a-delivers, in decision order, exactly the messages whose destination
/// set contains its group.
///
/// Latency: submit → leader (1δ), accept (1δ), learn (1δ) = 3δ, the atomic
/// broadcast lower bound. Throughput: the ordering group processes the
/// whole system's load, so it saturates at a fixed rate no matter how many
/// groups exist — the contrast Fig. 3 demonstrates.
///
/// Two ordering modes (Config::Ordering):
///   * kPayload — full message batches flow through consensus (the paper's
///     baseline): every P2a/P2b carries every payload byte, so the ordering
///     group's bandwidth caps system throughput.
///   * kIds — the Ring-Paxos-style dissemination/ordering split: the leader
///     forwards bodies directly to the destination replicas (MpBody) while
///     consensus orders compact MpIdRecord batches through its pipelined
///     instance window. A replica delivers in decision order, stalling the
///     queue head until its body arrives; lost bodies are recovered with
///     pull requests (MpBodyRequest) against retained copies, and — when
///     durability is on — bodies are WAL-logged on arrival so a restart
///     keeps every payload a decided record may still reference.
/// Ordering safety is identical in both modes: only what flows through
/// consensus changes.

namespace fastcast {

class MultiPaxosAmcast final : public AtomicMulticast {
 public:
  struct Config {
    paxos::GroupConsensus::Config consensus;  ///< the fixed ordering group
    GroupId my_group = kNoGroup;  ///< delivery filter; kNoGroup on orderers
    std::size_t max_batch = 128;  ///< messages/records per proposed value

    enum class Ordering {
      kPayload,  ///< full payload batches through consensus (baseline)
      kIds,      ///< compact id records; bodies disseminated out-of-band
    };
    Ordering ordering = Ordering::kPayload;

    /// Id-mode batch accumulation: a staged batch is proposed once it holds
    /// batch_fill records or batch_delay elapsed since its first record,
    /// whichever comes first. The defaults propose immediately (latency
    /// first); throughput sweeps raise both to trade ~one batch_delay of
    /// latency for fewer, fuller consensus instances.
    std::size_t batch_fill = 1;
    Duration batch_delay = 0;

    /// Id-mode body recovery: a replica whose ordered id-record head has no
    /// body yet re-requests it at this interval (backing off ×2 up to 8×).
    Duration body_pull_interval = milliseconds(25);

    /// Id-mode: delivered bodies retained (FIFO) to serve peers' pull
    /// requests before being dropped.
    std::size_t retain_bodies = 8192;

    /// Admission control (DESIGN.md §14). The ordering leader is the one
    /// real admission point of the non-genuine protocol: a submission it
    /// has not yet accepted is uncommitted, so rejecting it with Busy is
    /// safe and authoritative. Duplicate retries of already-accepted
    /// submissions bypass admission.
    flow::Options flow;
  };

  MultiPaxosAmcast(Config config, NodeId self);

  void on_start(Context& ctx) override;
  void on_recover(Context& ctx) override;
  void restore_durable(const storage::DurableState& durable) override;
  paxos::GroupConsensus* consensus_engine() override { return &cons_; }
  bool handle(Context& ctx, NodeId from, const Message& msg) override;
  const char* name() const override { return "MultiPaxos"; }

  std::uint64_t ordered_count() const { return ordered_count_; }
  /// Id mode: decided records still waiting for their body (tests).
  std::size_t stalled_deliveries() const { return pending_order_.size(); }
  /// Id mode: bodies currently held (staged + retained) (tests).
  std::size_t body_store_size() const { return bodies_.size(); }
  /// Admission controller (tests / diagnostics).
  const flow::OverloadController& overload() const { return overload_; }

 private:
  void on_submit(Context& ctx, const MulticastMessage& msg);
  bool admit_submission(Context& ctx, const MulticastMessage& msg);
  void flush(Context& ctx, bool force = false);
  void on_decide(Context& ctx, const std::vector<std::byte>& value);

  // Id-mode machinery.
  void disseminate(Context& ctx, const MulticastMessage& msg);
  void store_body(Context& ctx, const MulticastMessage& msg);
  void on_body(Context& ctx, const MulticastMessage& msg);
  void drain_pending(Context& ctx);
  void retain_delivered(MsgId mid);
  void arm_batch_timer(Context& ctx);
  Duration effective_batch_delay() const;
  void arm_body_pull(Context& ctx);

  Config cfg_;
  NodeId self_;
  paxos::GroupConsensus cons_;
  Context* ctx_ = nullptr;

  std::deque<MulticastMessage> staged_;  // payload mode
  std::set<MsgId> seen_submissions_;  // leader-side dedup of client retries

  // Overload control: staging arrival times (parallel to whichever staging
  // deque the ordering mode uses) feed the controller's sojourn signal at
  // flush; propose times feed it the propose→decide round trip.
  flow::OverloadController overload_;
  std::deque<Time> staged_at_;
  std::deque<Time> proposed_at_;
  std::set<MsgId> delivered_;        // delivery dedup across leader changes
  std::uint64_t ordered_count_ = 0;

  // Id mode: staged compact records awaiting proposal (leader only).
  std::deque<MpIdRecord> staged_ids_;
  Time first_staged_at_ = 0;
  bool batch_timer_armed_ = false;

  // Id mode: body store. Holds bodies awaiting their ordering record plus
  // a bounded FIFO of already-delivered bodies kept to serve pulls.
  std::unordered_map<MsgId, MulticastMessage> bodies_;
  std::deque<MsgId> retained_;

  // Id mode: decided records addressed to my_group, in decision order,
  // whose delivery stalls until the head's body is present.
  std::deque<MpIdRecord> pending_order_;
  std::set<MsgId> pending_set_;
  bool pull_armed_ = false;
  std::uint32_t pull_backoff_ = 1;
  std::size_t pull_rr_ = 0;  ///< rotates pull targets across candidates
};

}  // namespace fastcast
