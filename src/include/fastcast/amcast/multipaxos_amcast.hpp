#pragma once

#include <deque>
#include <set>

#include "fastcast/amcast/atomic_multicast.hpp"
#include "fastcast/paxos/group_consensus.hpp"

/// \file multipaxos_amcast.hpp
/// The non-genuine atomic multicast the paper compares against (§5.1):
/// a fixed ordering group sequences *every* multicast with MultiPaxos,
/// regardless of destinations, and every process in the system learns the
/// decisions (acceptors broadcast P2b to all learners). A replica
/// a-delivers, in decision order, exactly the messages whose destination
/// set contains its group.
///
/// Latency: submit → leader (1δ), accept (1δ), learn (1δ) = 3δ, the atomic
/// broadcast lower bound. Throughput: the ordering group processes the
/// whole system's load, so it saturates at a fixed rate no matter how many
/// groups exist — the contrast Fig. 3 demonstrates.

namespace fastcast {

class MultiPaxosAmcast final : public AtomicMulticast {
 public:
  struct Config {
    paxos::GroupConsensus::Config consensus;  ///< the fixed ordering group
    GroupId my_group = kNoGroup;  ///< delivery filter; kNoGroup on orderers
    std::size_t max_batch = 128;  ///< messages per proposed value
  };

  MultiPaxosAmcast(Config config, NodeId self);

  void on_start(Context& ctx) override;
  void on_recover(Context& ctx) override;
  void restore_durable(const storage::DurableState& durable) override;
  paxos::GroupConsensus* consensus_engine() override { return &cons_; }
  bool handle(Context& ctx, NodeId from, const Message& msg) override;
  const char* name() const override { return "MultiPaxos"; }

  std::uint64_t ordered_count() const { return ordered_count_; }

 private:
  void on_submit(Context& ctx, const MulticastMessage& msg);
  void flush(Context& ctx);
  void on_decide(Context& ctx, const std::vector<std::byte>& value);

  Config cfg_;
  NodeId self_;
  paxos::GroupConsensus cons_;
  Context* ctx_ = nullptr;

  std::deque<MulticastMessage> staged_;
  std::set<MsgId> seen_submissions_;  // leader-side dedup of client retries
  std::set<MsgId> delivered_;        // delivery dedup across leader changes
  std::uint64_t ordered_count_ = 0;
};

}  // namespace fastcast
