#pragma once

#include <functional>

#include "fastcast/runtime/context.hpp"

/// \file atomic_multicast.hpp
/// Replica-side interface implemented by the three protocols in this
/// repository: BaseCast (Algorithm 1), FastCast (Algorithm 2), and the
/// non-genuine MultiPaxos-based atomic multicast.
///
/// A protocol instance runs inside one replica process. It consumes the
/// messages routed to it by its node, and a-delivers application messages
/// through the deliver callback — in an order satisfying uniform integrity,
/// validity, uniform agreement, uniform prefix order and acyclic order
/// (§2.3). Clients initiate multicasts with the helpers in
/// client_stub.hpp.

namespace fastcast {

namespace storage {
struct DurableState;
}
namespace paxos {
class GroupConsensus;
}

class AtomicMulticast {
 public:
  virtual ~AtomicMulticast() = default;

  /// a-deliver upcall. Invoked at most once per message, in this replica's
  /// delivery order.
  using DeliverFn = std::function<void(Context&, const MulticastMessage&)>;
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  virtual void on_start(Context& ctx) = 0;

  /// Crash-recovery restart. Without storage the environment retains this
  /// object, so protocol state survives in-memory — a simulation
  /// convenience, not durability. With storage the environment builds a
  /// fresh instance, calls restore_durable() with the recovered state, and
  /// then this; either way all armed timers are gone, so implementations
  /// reset their timer guards and re-arm. Default: run on_start again.
  virtual void on_recover(Context& ctx) { on_start(ctx); }

  /// Installs WAL-recovered state into a freshly constructed instance
  /// (acceptor promises/accepted values, rmcast floors and staged frames,
  /// the delivered set, persisted bodies). Called before on_recover, never
  /// after messages. Default: nothing durable to restore.
  virtual void restore_durable(const storage::DurableState& durable) {
    (void)durable;
  }

  /// The group-consensus engine driving this protocol's deciding group, or
  /// null (client stubs, protocols without one on this node). Lets the
  /// environment flush/inspect acceptor state without knowing the subtype.
  virtual paxos::GroupConsensus* consensus_engine() { return nullptr; }

  /// Routes one inbound message; returns false if it is not for this
  /// protocol (the node wrapper may then try other components).
  virtual bool handle(Context& ctx, NodeId from, const Message& msg) = 0;

  virtual const char* name() const = 0;

 protected:
  void deliver(Context& ctx, const MulticastMessage& msg) {
    if (deliver_) deliver_(ctx, msg);
  }

 private:
  DeliverFn deliver_;
};

}  // namespace fastcast
