#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "fastcast/runtime/context.hpp"
#include "fastcast/storage/snapshot.hpp"

/// \file reliable_multicast.hpp
/// Non-uniform FIFO reliable multicast (§2.3 of the paper).
///
/// Properties provided:
///   * validity / integrity — a message multicast by a correct origin is
///     delivered exactly once by every correct destination process;
///   * FIFO order — per (origin, destination) sequence numbers with a
///     holdback queue;
///   * non-uniform agreement — optional relaying: when a process
///     r-delivers a copy it can forward the remaining copies, so a
///     destination still delivers if the origin crashed mid-multicast.
///
/// Retransmission (for fair-lossy links) is ack-based and driven by a
/// periodic timer at the origin; over reliable links (the simulator's
/// default, or TCP) acks are disabled entirely, matching the paper's
/// TCP-based prototype.
///
/// One delay: the origin unicasts a copy directly to every destination
/// process, which is the 1δ propagation assumed by Propositions 1–2.
///
/// Durability (ctx.storage() non-null): sequence assignments and staged
/// frames are WAL-logged and every transmission — the first send and
/// retransmissions alike — gated on the covering commit, so a
/// restarted origin never reuses a sequence number; receivers log FIFO
/// progress and gate both the delivery upcall and the ack on it, so a
/// frame is acked (retransmission stops) only once surviving the crash is
/// guaranteed — anything less durable is simply retransmitted.

namespace fastcast {

struct RmConfig {
  /// When true (TCP-like links) acks/retransmissions are skipped.
  bool reliable_links = true;

  enum class Relay {
    kNone,    ///< trust the origin (paper prototype behaviour)
    kSelf,    ///< every receiver relays its first delivery (uniform-ish)
  };
  Relay relay = Relay::kNone;

  Duration retransmit_interval = milliseconds(40);
};

class ReliableMulticast {
 public:
  explicit ReliableMulticast(RmConfig config = {}) : config_(config) {}

  /// Delivery upcall: FIFO per origin, invoked exactly once per message.
  using DeliverFn =
      std::function<void(Context&, NodeId origin, const AmcastPayload&)>;
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Enables relaying only on nodes where `relay_if` returns true (e.g. the
  /// group leader); unset means the RmConfig::relay policy applies as-is.
  void set_relay_predicate(std::function<bool()> pred) {
    relay_pred_ = std::move(pred);
  }

  /// r-multicast(inner) to every member of every group in `dst`.
  void multicast(Context& ctx, const std::vector<GroupId>& dst,
                 AmcastPayload inner);

  /// Starts the retransmission timer when links are lossy.
  void on_start(Context& ctx);

  /// Re-arms the retransmission timer after a crash-recovery restart (the
  /// armed guard refers to a timer that died with the crash). Without
  /// storage the environment retains this object, so sender/receiver state
  /// survives in-memory by fiat; with storage a fresh instance gets the
  /// recovered sequence floors and staged frames via restore() first, so
  /// FIFO sequencing stays intact across a real process death.
  void on_recover(Context& ctx);

  /// Installs recovered durable state: per-destination sequence floors,
  /// still-unacked staged frames (resuming retransmission), and receiver
  /// next-expected floors (resuming dedup). Call before on_recover.
  void restore(const storage::DurableState& durable);

  /// Returns true if the message was an rmcast frame (consumed).
  bool handle(Context& ctx, NodeId from, const Message& msg);

  // Introspection for tests.
  std::size_t holdback_size() const;
  std::size_t unacked_count() const { return unacked_.size(); }
  std::uint64_t next_expected_from(NodeId origin) const {
    auto it = origins_.find(origin);
    return it == origins_.end() ? 1 : it->second.next_expected;
  }

 private:
  struct OriginState {
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, RmData> holdback;  // seq -> frame
  };

  void on_data(Context& ctx, NodeId from, const RmData& data);
  void deliver_frame(Context& ctx, const RmData& frame);
  void relay(Context& ctx, const RmData& data);
  void arm_retransmit(Context& ctx);

  RmConfig config_;
  DeliverFn deliver_;
  std::function<bool()> relay_pred_;

  // Sender side.
  struct Staged {
    RmData frame;
    /// WAL position covering the frame's seq advance and staged copy. The
    /// frame must never hit the wire — first send OR retransmission —
    /// before this is durable: a crash could otherwise forget the seq
    /// advance of a frame a receiver already saw, and the recovered
    /// sender would reuse the seq for a different message, which every
    /// receiver silently drops as a duplicate. 0 = no gate (no storage,
    /// or restored from the WAL itself).
    storage::Lsn lsn = 0;
  };
  std::unordered_map<NodeId, std::uint64_t> next_seq_;  // per destination
  std::map<std::pair<NodeId, std::uint64_t>, Staged> unacked_;  // (dest,seq)

  // Receiver side.
  std::unordered_map<NodeId, OriginState> origins_;
  bool timer_armed_ = false;

  std::vector<std::byte> stage_scratch_;  ///< reused staged-frame encoding
};

}  // namespace fastcast
