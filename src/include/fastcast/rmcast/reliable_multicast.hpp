#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "fastcast/runtime/context.hpp"

/// \file reliable_multicast.hpp
/// Non-uniform FIFO reliable multicast (§2.3 of the paper).
///
/// Properties provided:
///   * validity / integrity — a message multicast by a correct origin is
///     delivered exactly once by every correct destination process;
///   * FIFO order — per (origin, destination) sequence numbers with a
///     holdback queue;
///   * non-uniform agreement — optional relaying: when a process
///     r-delivers a copy it can forward the remaining copies, so a
///     destination still delivers if the origin crashed mid-multicast.
///
/// Retransmission (for fair-lossy links) is ack-based and driven by a
/// periodic timer at the origin; over reliable links (the simulator's
/// default, or TCP) acks are disabled entirely, matching the paper's
/// TCP-based prototype.
///
/// One delay: the origin unicasts a copy directly to every destination
/// process, which is the 1δ propagation assumed by Propositions 1–2.

namespace fastcast {

struct RmConfig {
  /// When true (TCP-like links) acks/retransmissions are skipped.
  bool reliable_links = true;

  enum class Relay {
    kNone,    ///< trust the origin (paper prototype behaviour)
    kSelf,    ///< every receiver relays its first delivery (uniform-ish)
  };
  Relay relay = Relay::kNone;

  Duration retransmit_interval = milliseconds(40);
};

class ReliableMulticast {
 public:
  explicit ReliableMulticast(RmConfig config = {}) : config_(config) {}

  /// Delivery upcall: FIFO per origin, invoked exactly once per message.
  using DeliverFn =
      std::function<void(Context&, NodeId origin, const AmcastPayload&)>;
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Enables relaying only on nodes where `relay_if` returns true (e.g. the
  /// group leader); unset means the RmConfig::relay policy applies as-is.
  void set_relay_predicate(std::function<bool()> pred) {
    relay_pred_ = std::move(pred);
  }

  /// r-multicast(inner) to every member of every group in `dst`.
  void multicast(Context& ctx, const std::vector<GroupId>& dst,
                 AmcastPayload inner);

  /// Starts the retransmission timer when links are lossy.
  void on_start(Context& ctx);

  /// Re-arms the retransmission timer after a crash-recovery restart (the
  /// armed guard refers to a timer that died with the crash). Receiver and
  /// sender state is retained — the crash-recovery model assumes it was
  /// replayed from stable storage — so FIFO sequencing stays intact.
  void on_recover(Context& ctx);

  /// Returns true if the message was an rmcast frame (consumed).
  bool handle(Context& ctx, NodeId from, const Message& msg);

  // Introspection for tests.
  std::size_t holdback_size() const;
  std::size_t unacked_count() const { return unacked_.size(); }

 private:
  struct OriginState {
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, RmData> holdback;  // seq -> frame
  };

  void on_data(Context& ctx, NodeId from, const RmData& data);
  void relay(Context& ctx, const RmData& data);
  void arm_retransmit(Context& ctx);

  RmConfig config_;
  DeliverFn deliver_;
  std::function<bool()> relay_pred_;

  // Sender side.
  std::unordered_map<NodeId, std::uint64_t> next_seq_;  // per destination
  std::map<std::pair<NodeId, std::uint64_t>, RmData> unacked_;  // (dest,seq)

  // Receiver side.
  std::unordered_map<NodeId, OriginState> origins_;
  bool timer_armed_ = false;
};

}  // namespace fastcast
