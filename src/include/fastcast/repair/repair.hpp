#pragma once

#include <functional>
#include <map>
#include <span>
#include <vector>

#include "fastcast/common/time.hpp"
#include "fastcast/runtime/context.hpp"
#include "fastcast/runtime/message.hpp"

/// \file repair.hpp
/// State transfer and replica repair for one consensus group.
///
/// Every learner of a group periodically gossips a WatermarkAnnounce with
/// two cursors: its *settled* frontier (every instance below it is fully
/// reflected in its durable delivered set, so replaying it is a provable
/// no-op) and its decided *frontier* (next undecided instance). From these
/// the coordinator derives both halves of the subsystem:
///
///  * Lag recovery: a replica whose frontier trails the best peer's by more
///    than a threshold pulls the decided range [frontier, peer frontier)
///    as chunked, CRC-guarded RepairSnapshot messages served from the
///    peer's retained decided log — O(gap / chunk) messages instead of the
///    O(gap × acceptors) P2b replay of plain catch-up polling. Chunks are
///    fetched stop-and-wait (one outstanding request), so jittered links
///    cannot reorder a transfer. Installed entries flow through the normal
///    learner decide path, so delivery order, dedup, and durability gating
///    are untouched; a corrupt chunk indicts the server and the transfer
///    re-fetches from another peer.
///
///  * Watermark pruning: the minimum settled frontier over *all* learners
///    is the group's prune floor — below it no live peer can ever need an
///    accepted value again, so acceptors drop those entries (and the
///    decided log trims) instead of growing without bound. A learner that
///    has not announced blocks pruning entirely, and a down learner
///    freezes the floor at its last announce: pruning can stall, never
///    overtake a peer. With storage attached, the announced settled value
///    is additionally gated on WAL durability (it advances only once the
///    backing kSettled record — and transitively the kDelivered records it
///    summarizes — is flushed), so a crash can never leave the node below
///    a floor its own announce let peers prune to.

namespace fastcast::repair {

/// Protocol-layer settled view: the frontier plus a logical-clock upper
/// bound covering every timestamp the settled instances influenced (so a
/// restart that jumps to `frontier` cannot regress its clock).
struct Settled {
  InstanceId frontier = 0;
  std::uint64_t clock = 0;
};

/// User-facing knobs; disabled by default so baselines are unaffected.
struct Options {
  bool enable = false;
  Duration announce_interval = milliseconds(40);
  InstanceId lag_threshold = 64;     ///< frontier gap that triggers a transfer
  std::size_t chunk_entries = 256;   ///< decided entries per RepairSnapshot
  std::size_t max_chunks_per_request = 16;  ///< chunk budget per transfer
  Duration transfer_timeout = milliseconds(200);
  bool prune = true;

  friend bool operator==(const Options&, const Options&) = default;
};

/// One decided (instance, value) pair shipped inside a RepairSnapshot.
struct RepairEntry {
  InstanceId instance = 0;
  std::vector<std::byte> value;

  friend bool operator==(const RepairEntry&, const RepairEntry&) = default;
};

void encode_repair_entries(const std::vector<RepairEntry>& entries,
                           std::vector<std::byte>& out);
bool decode_repair_entries(std::span<const std::byte> bytes,
                           std::vector<RepairEntry>& out);

/// Per-(node, group) repair engine, owned by GroupConsensus and driven by
/// its message routing. Single-threaded like everything a Context owns.
class RepairCoordinator {
 public:
  struct Config {
    GroupId group = kNoGroup;
    NodeId self = kInvalidNode;
    std::vector<NodeId> members;   ///< acceptors — the repair servers
    std::vector<NodeId> learners;  ///< members + extras — the prune quorum
    Options options;
  };

  struct Hooks {
    std::function<Settled()> settled;      ///< protocol settled view
    std::function<InstanceId()> frontier;  ///< learner's next undecided
    /// Installs one decided value (acceptor log + learner force-decide);
    /// returns false when the instance was already decided locally.
    std::function<bool(Context&, InstanceId, const std::vector<std::byte>&)>
        install;
    /// Applies an advanced prune floor to the acceptor (members only).
    std::function<void(Context&, InstanceId)> prune;
    /// Arms normal P2bRequest catch-up for the tail above the transfer.
    std::function<void(Context&)> kick_tail;
  };

  RepairCoordinator(Config config, Hooks hooks);

  void on_start(Context& ctx);
  void on_recover(Context& ctx);

  /// Seeds the durable settled watermark from a WAL-recovered settled
  /// frontier, so a storage-recovered node announces it without waiting to
  /// re-log and re-flush a record that is already durable.
  void restore_durable_settled(InstanceId settled);

  /// Feeds the retained decided log transfers are served from. Members
  /// call this for every decided instance (any order); non-members never
  /// serve transfers, so for them it is a no-op.
  void note_decided(InstanceId inst, const std::vector<std::byte>& value);

  /// Routes WatermarkAnnounce / RepairRequest / RepairSnapshot for this
  /// group; false if the message is not repair traffic for this group.
  bool handle(Context& ctx, NodeId from, const Message& msg);

  InstanceId prune_floor() const { return prune_floor_; }
  InstanceId durable_settled() const { return durable_settled_; }
  bool transfer_active() const { return transfer_active_; }
  std::size_t decided_log_size() const { return decided_log_.size(); }

 private:
  struct PeerMark {
    InstanceId settled = 0;
    InstanceId frontier = 0;
  };

  void arm_announce(Context& ctx);
  void announce(Context& ctx);
  void maybe_prune(Context& ctx);
  void maybe_request(Context& ctx);
  void reject_transfer(Context& ctx, NodeId from);
  void on_announce(Context& ctx, NodeId from, const WatermarkAnnounce& msg);
  void on_request(Context& ctx, NodeId from, const RepairRequest& msg);
  void on_snapshot(Context& ctx, NodeId from, const RepairSnapshot& msg);
  bool is_member(NodeId n) const;

  Config cfg_;
  Hooks hooks_;
  bool announce_armed_ = false;

  std::map<NodeId, PeerMark> marks_;  ///< last announce per learner (and self)
  InstanceId prune_floor_ = 0;
  InstanceId logged_settled_ = 0;   ///< highest settled frontier WAL-logged
  /// Highest settled frontier whose kSettled record is known durable — the
  /// only value announce() may ship, since peers prune to it.
  InstanceId durable_settled_ = 0;

  /// Decided values retained for serving transfers; trimmed at the floor.
  std::map<InstanceId, std::vector<std::byte>> decided_log_;

  bool transfer_active_ = false;
  NodeId transfer_server_ = kInvalidNode;
  NodeId last_failed_server_ = kInvalidNode;
  InstanceId expect_next_ = 0;
  std::size_t chunks_fetched_ = 0;  ///< chunks pulled in the active transfer
  Time transfer_started_ = 0;
  Time last_chunk_at_ = 0;
};

}  // namespace fastcast::repair
