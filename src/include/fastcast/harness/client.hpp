#pragma once

#include <map>
#include <memory>

#include "fastcast/amcast/client_stub.hpp"
#include "fastcast/common/stats.hpp"
#include "fastcast/runtime/context.hpp"

/// \file client.hpp
/// Benchmark client. Default is the paper's closed loop: one outstanding
/// multicast at a time, completing on the first delivery ack. With
/// Config::send_interval > 0 it becomes an open loop instead: a timer
/// injects a new multicast every interval regardless of outstanding acks,
/// so offered load stays fixed while latency-under-load grows — the shape
/// saturation benchmarks need.

namespace fastcast::harness {

/// Shared measurement sink. Completions inside [window_start, window_end)
/// are recorded; slice counts feed the throughput confidence interval.
class Metrics {
 public:
  void open_window(Time start, Time end, Duration slice);
  void close_window() { window_open_ = false; }

  /// `tag` buckets the sample (the harness uses the destination-group
  /// count, so Fig. 7 can report latency per follower spread).
  void note_completion(Time sent, Time completed, std::size_t tag = 0);

  LatencyRecorder& latency() { return latency_; }
  const LatencyRecorder& latency() const { return latency_; }
  /// Latency restricted to one tag (empty recorder if unseen).
  const LatencyRecorder& latency_for_tag(std::size_t tag) const;
  ThroughputSummary throughput() const;
  std::uint64_t completions_total() const { return completions_total_; }
  /// Per-slice completion counts of the (closed) window; chaos campaigns
  /// derive availability from the fraction of slices with progress.
  const std::vector<std::uint64_t>& slice_counts() const { return slices_; }

 private:
  LatencyRecorder latency_;
  std::map<std::size_t, LatencyRecorder> by_tag_;
  std::vector<std::uint64_t> slices_;
  Time window_start_ = 0;
  Time window_end_ = 0;
  Duration slice_ = kSecond;
  bool window_open_ = false;
  std::uint64_t completions_total_ = 0;
};

/// Picks the destination groups of each multicast.
using DstPicker = std::function<std::vector<GroupId>(Rng& rng)>;

/// Every message to the same single group (Fig. 3 local workload).
DstPicker fixed_group(GroupId g);
/// Every message to all of groups [0, n).
DstPicker all_groups(std::size_t n);
/// Every message to a uniformly random k-subset of groups [0, n).
DstPicker random_subset(std::size_t n, std::size_t k);

class ClientProcess final : public Process {
 public:
  struct Config {
    std::unique_ptr<ClientStub> stub;
    DstPicker dst;
    std::size_t payload_size = 64;  ///< paper microbenchmark message size
    Time first_send_at = 0;         ///< staggered start
    Time stop_at = -1;              ///< no new sends after this (<0 = never)
    /// >0 = open loop: send every interval, track acks per message id.
    /// 0 = closed loop (one outstanding).
    Duration send_interval = 0;
  };

  ClientProcess(Config config, std::shared_ptr<Metrics> metrics);

  /// Observers invoked for every a-multicast initiated, in registration
  /// order (the checker hook plus application bookkeeping).
  using MulticastObserverFn = std::function<void(const MulticastMessage&)>;
  void add_multicast_observer(MulticastObserverFn fn) {
    observers_.push_back(std::move(fn));
  }

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, NodeId from, const Message& msg) override;

  std::uint64_t sent_count() const { return next_seq_; }

  /// Forbids new sends at/after `at` (the closed loop goes idle).
  void set_stop(Time at) { config_.stop_at = at; }

 private:
  MulticastMessage build_message(Context& ctx);
  void send_next(Context& ctx);
  void open_loop_tick(Context& ctx);

  Config config_;
  std::shared_ptr<Metrics> metrics_;
  std::vector<MulticastObserverFn> observers_;
  std::uint32_t next_seq_ = 0;
  MsgId outstanding_ = 0;
  std::size_t outstanding_dst_size_ = 0;
  Time sent_at_ = 0;
  bool idle_ = true;
  /// Open loop only: send time + dst-group count of every unacked message.
  std::map<MsgId, std::pair<Time, std::size_t>> in_flight_;
};

}  // namespace fastcast::harness
