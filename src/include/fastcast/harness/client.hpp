#pragma once

#include <map>
#include <memory>

#include "fastcast/amcast/client_stub.hpp"
#include "fastcast/common/stats.hpp"
#include "fastcast/flow/overload.hpp"
#include "fastcast/runtime/context.hpp"

/// \file client.hpp
/// Benchmark client. Default is the paper's closed loop: one outstanding
/// multicast at a time, completing on the first delivery ack. With
/// Config::send_interval > 0 it becomes an open loop instead: a timer
/// injects a new multicast every interval regardless of outstanding acks,
/// so offered load stays fixed while latency-under-load grows — the shape
/// saturation benchmarks need.
///
/// With flow::ClientOptions set (Config::flow) the client additionally
/// stamps deadlines, times out silent requests, backs off exponentially on
/// Busy/timeout (open loop: injection ticks are suppressed — counted, not
/// sent — while backed off), and retries rejected requests from a bounded
/// budget. Every request then reaches exactly one terminal state: completed,
/// rejected, expired, or timed out — the conservation law overload tests
/// assert.

namespace fastcast::harness {

/// Shared measurement sink. Completions inside [window_start, window_end)
/// are recorded; slice counts feed the throughput confidence interval.
class Metrics {
 public:
  void open_window(Time start, Time end, Duration slice);
  void close_window() { window_open_ = false; }

  /// `tag` buckets the sample (the harness uses the destination-group
  /// count, so Fig. 7 can report latency per follower spread).
  /// `deadline_met` is false when the request completed past its stamped
  /// deadline — it still counts as a completion (and a latency sample) but
  /// not as goodput.
  void note_completion(Time sent, Time completed, std::size_t tag = 0,
                       bool deadline_met = true);

  // Overload-control terminal/pacing events (see client flow machinery).
  void note_rejected() { ++rejected_total_; }
  void note_expired() { ++expired_total_; }
  void note_timeout() { ++timeouts_total_; }
  void note_suppressed() { ++suppressed_total_; }
  void note_retry() { ++retries_total_; }
  void note_busy() { ++busy_total_; }

  LatencyRecorder& latency() { return latency_; }
  const LatencyRecorder& latency() const { return latency_; }
  /// Latency restricted to one tag (empty recorder if unseen).
  const LatencyRecorder& latency_for_tag(std::size_t tag) const;
  ThroughputSummary throughput() const;
  std::uint64_t completions_total() const { return completions_total_; }
  /// Windowed completions that met their deadline — the "goodput"
  /// numerator benches report next to raw deliveries.
  std::uint64_t window_goodput() const { return window_goodput_; }
  std::uint64_t rejected_total() const { return rejected_total_; }
  std::uint64_t expired_total() const { return expired_total_; }
  std::uint64_t timeouts_total() const { return timeouts_total_; }
  std::uint64_t deadline_miss_total() const { return deadline_miss_total_; }
  std::uint64_t suppressed_total() const { return suppressed_total_; }
  std::uint64_t retries_total() const { return retries_total_; }
  std::uint64_t busy_total() const { return busy_total_; }
  /// Per-slice completion counts of the (closed) window; chaos campaigns
  /// derive availability from the fraction of slices with progress.
  const std::vector<std::uint64_t>& slice_counts() const { return slices_; }

 private:
  LatencyRecorder latency_;
  std::map<std::size_t, LatencyRecorder> by_tag_;
  std::vector<std::uint64_t> slices_;
  Time window_start_ = 0;
  Time window_end_ = 0;
  Duration slice_ = kSecond;
  bool window_open_ = false;
  std::uint64_t completions_total_ = 0;
  std::uint64_t window_goodput_ = 0;
  std::uint64_t deadline_miss_total_ = 0;
  std::uint64_t rejected_total_ = 0;
  std::uint64_t expired_total_ = 0;
  std::uint64_t timeouts_total_ = 0;
  std::uint64_t suppressed_total_ = 0;
  std::uint64_t retries_total_ = 0;
  std::uint64_t busy_total_ = 0;
};

/// Picks the destination groups of each multicast.
using DstPicker = std::function<std::vector<GroupId>(Rng& rng)>;

/// Every message to the same single group (Fig. 3 local workload).
DstPicker fixed_group(GroupId g);
/// Every message to all of groups [0, n).
DstPicker all_groups(std::size_t n);
/// Every message to a uniformly random k-subset of groups [0, n).
DstPicker random_subset(std::size_t n, std::size_t k);

class ClientProcess final : public Process {
 public:
  struct Config {
    std::unique_ptr<ClientStub> stub;
    DstPicker dst;
    std::size_t payload_size = 64;  ///< paper microbenchmark message size
    Time first_send_at = 0;         ///< staggered start
    Time stop_at = -1;              ///< no new sends after this (<0 = never)
    /// >0 = open loop: send every interval, track acks per message id.
    /// 0 = closed loop (one outstanding).
    Duration send_interval = 0;
    /// Client-side overload robustness; default-constructed = all off.
    flow::ClientOptions flow;
  };

  ClientProcess(Config config, std::shared_ptr<Metrics> metrics);

  /// Observers invoked for every a-multicast initiated, in registration
  /// order (the checker hook plus application bookkeeping).
  using MulticastObserverFn = std::function<void(const MulticastMessage&)>;
  void add_multicast_observer(MulticastObserverFn fn) {
    observers_.push_back(std::move(fn));
  }

  /// Observers invoked when a request terminates *without* delivery but
  /// with explicit accounting (Busy rejection, deadline expiry, timeout).
  /// The harness hooks the checker here so quiesced validity reads "every
  /// multicast is delivered or explicitly rejected".
  using RejectObserverFn = std::function<void(MsgId)>;
  void add_reject_observer(RejectObserverFn fn) {
    reject_observers_.push_back(std::move(fn));
  }

  void on_start(Context& ctx) override;
  void on_message(Context& ctx, NodeId from, const Message& msg) override;

  std::uint64_t sent_count() const { return next_seq_; }
  /// Requests awaiting a terminal state (conservation accounting).
  std::size_t in_flight_count() const { return in_flight_.size(); }

  /// Forbids new sends at/after `at` (the closed loop goes idle).
  void set_stop(Time at) { config_.stop_at = at; }

 private:
  /// A sent-but-unresolved request. `timeout_gen` invalidates stale
  /// timeout timers after a retry (timers are not cancelled, just aged
  /// out). `msg` is retained only when retries are possible.
  struct InFlight {
    Time sent_at = 0;          ///< original send; latency measured from here
    std::size_t dst_size = 0;
    Time deadline = 0;         ///< absolute, 0 = none
    std::uint32_t retries = 0;
    std::uint64_t timeout_gen = 0;
    MulticastMessage msg;
  };
  using InFlightMap = std::map<MsgId, InFlight>;

  MulticastMessage build_message(Context& ctx);
  void send_next(Context& ctx);
  void open_loop_tick(Context& ctx);
  void track_and_send(Context& ctx, MulticastMessage msg);
  void on_ack(Context& ctx, const AmAck& ack);
  void on_busy(Context& ctx, const Busy& busy);
  void arm_timeout(Context& ctx, MsgId mid, std::uint64_t gen);
  bool try_retry(Context& ctx, InFlightMap::iterator it);
  void finish_failed(Context& ctx, InFlightMap::iterator it);
  void apply_backoff(Context& ctx, Duration hint);
  void cut_pace(Context& ctx);
  bool retries_enabled() const {
    return config_.flow.retry_budget > 0 && config_.flow.max_retries > 0;
  }
  bool pacing_enabled() const { return config_.flow.pace_increase > 0; }

  Config config_;
  std::shared_ptr<Metrics> metrics_;
  std::vector<MulticastObserverFn> observers_;
  std::vector<RejectObserverFn> reject_observers_;
  std::uint32_t next_seq_ = 0;
  MsgId outstanding_ = 0;
  bool idle_ = true;
  /// Every unresolved request, open and closed loop alike (the closed loop
  /// holds at most one entry).
  InFlightMap in_flight_;

  // Flow state: shared exponential backoff (Busy/timeout push it out,
  // completions reset it) and the retry-token bucket (accrues
  // flow.retry_budget per primary send, capped).
  Time backoff_until_ = 0;
  Duration backoff_ = 0;
  double retry_tokens_ = 0;
  // AIMD injection pacer (flow.pace_increase > 0): probability an open-loop
  // tick outside a backoff window actually sends. Halved per Busy/timeout
  // (at most once per backoff window, so a burst of rejections from one
  // overload episode counts as one signal), raised additively on each
  // completion.
  double pace_ = 1.0;
  Time pace_cut_until_ = 0;
};

}  // namespace fastcast::harness
