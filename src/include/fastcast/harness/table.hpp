#pragma once

#include <string>
#include <vector>

/// \file table.hpp
/// Plain-text table printing for the bench binaries: aligned columns, a
/// title line, and an optional note — the same rows/series the paper's
/// figures plot.

namespace fastcast::harness {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);

  /// Renders to stdout.
  void print(const std::string& note = "") const;

  std::string to_string(const std::string& note = "") const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats helpers used by the benches.
std::string fmt_double(double v, int decimals = 1);
std::string fmt_count(double v);  ///< integer-ish with thousands grouping

}  // namespace fastcast::harness
