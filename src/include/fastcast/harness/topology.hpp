#pragma once

#include <memory>
#include <string>

#include "fastcast/runtime/membership.hpp"
#include "fastcast/sim/latency.hpp"
#include "fastcast/sim/simulator.hpp"

/// \file topology.hpp
/// Builders for the paper's three environments (§5.2) and deployments.
///
/// * LAN — every node in one region, 0.1 ms RTT, paper-era Xeon CPUs.
/// * Emulated WAN — three regions with RTTs 70/70/144 ms (±5%), same CPUs.
/// * Real WAN — same latency matrix, faster CPUs (the paper attributes the
///   EC2 improvement to m3.large processors).
///
/// WAN replica placement follows Fig. 2: replica i of every group lives in
/// region i, so each group survives the loss of a whole datacenter, and
/// every group's initial leader (member 0) is in region R1. Clients are
/// placed round-robin across regions starting at R1, so a single client is
/// co-located with the leaders — the configuration behind the paper's
/// "FastCast ≈ 1 RTT" single-client numbers.

namespace fastcast::harness {

enum class Environment { kLan, kEmulatedWan, kRealWan };
enum class Protocol { kBaseCast, kFastCast, kFastCastSlowPath, kMultiPaxos };

const char* to_string(Environment env);
const char* to_string(Protocol p);

struct TopologyConfig {
  Environment env = Environment::kLan;
  std::size_t groups = 2;
  std::size_t replicas_per_group = 3;
  std::size_t clients = 1;
  Protocol protocol = Protocol::kFastCast;
};

/// A concrete deployment: membership plus role assignments.
struct Deployment {
  Membership membership;
  std::size_t group_count = 0;        ///< destination groups: 0..group_count-1
  GroupId ordering_group = kNoGroup;  ///< extra group (MultiPaxos only)
  std::vector<NodeId> clients;
};

Deployment build_deployment(const TopologyConfig& config);

/// Latency model matching the environment (see latency.hpp).
std::unique_ptr<sim::LatencyModel> make_latency(Environment env,
                                                const Membership* membership);

/// Per-message CPU costs calibrated so LAN saturation matches the paper's
/// order of magnitude (§5.4: ~36 k local msgs/s per group, MultiPaxos
/// CPU-bound near 48 k/s).
sim::CpuModel cpu_for(Environment env);

}  // namespace fastcast::harness
