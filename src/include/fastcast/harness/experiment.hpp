#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "fastcast/amcast/fastcast.hpp"
#include "fastcast/amcast/node.hpp"
#include "fastcast/checker/checker.hpp"
#include "fastcast/harness/client.hpp"
#include "fastcast/harness/topology.hpp"
#include "fastcast/obs/observability.hpp"
#include "fastcast/storage/storage.hpp"

/// \file experiment.hpp
/// Builds a full cluster (replicas + protocol + clients + checker) inside
/// the simulator and runs the paper's warm-up / measurement-window /
/// drain regimen. Benches call run_experiment(); tests that inject faults
/// mid-run drive a Cluster directly.

namespace fastcast::harness {

struct ExperimentConfig {
  TopologyConfig topo;

  /// Destination picker per client index (e.g. Fig. 3 pins client i to
  /// group i % G). Use same_dst_for_all() when all clients share one.
  std::function<DstPicker(std::size_t client_idx)> dst_factory;

  Duration warmup = milliseconds(400);
  Duration measure = seconds(2);
  Duration slice = milliseconds(100);
  std::uint64_t seed = 1;

  /// Stop clients at window end and drain in-flight traffic; enables the
  /// quiesced (agreement/validity) checks. Forced off when timers would
  /// never let the event queue empty (lossy links / heartbeats).
  bool drain = true;
  Duration drain_grace = seconds(30);

  bool run_checker = true;
  Checker::Level check_level = Checker::Level::kFast;

  // Environment/fault knobs.
  bool serialize_messages = false;  ///< codec round-trip on every unicast
  double drop_probability = 0.0;    ///< fair-lossy links
  bool heartbeats = false;          ///< leader re-election on
  RmConfig::Relay relay = RmConfig::Relay::kNone;

  // Protocol knobs.
  std::size_t consensus_window = 32;
  /// MultiPaxos ordering mode (mirrors MultiPaxosAmcast::Config::Ordering
  /// without pulling in the protocol header): kPayload runs full message
  /// batches through consensus, kIds disseminates bodies out-of-band and
  /// orders compact id records.
  enum class MpOrdering { kPayload, kIds };
  MpOrdering mp_ordering = MpOrdering::kPayload;
  /// Id-mode batch accumulation thresholds (see MultiPaxosAmcast::Config).
  std::size_t mp_batch_fill = 1;
  Duration mp_batch_delay = 0;
  /// State transfer + watermark pruning (src/repair). Off by default so
  /// baseline message counts are untouched; lag scenarios switch it on.
  repair::Options repair;
  TimestampProtocolBase::Config::HardSend hard_send =
      TimestampProtocolBase::Config::HardSend::kLeaderOnly;
  std::size_t payload_size = 64;
  /// >0 switches every client to an open loop: a new multicast every
  /// interval regardless of outstanding acks, so offered load is
  /// clients / interval instead of tracking service rate. 0 keeps the
  /// paper's closed loop.
  Duration open_loop_interval = 0;
  /// Server-side admission control (DESIGN.md §14): the MultiPaxos
  /// ordering leader rejects with Busy when shedding; genuine group
  /// leaders send advisory Busy. Off by default.
  flow::Options flow;
  /// Client-side robustness (deadlines, timeouts, backoff, retry budget).
  flow::ClientOptions client_flow;
  /// Ablation: Algorithm-2-verbatim eager SYNC-HARD proposals in FastCast.
  bool fastcast_eager_hard = false;

  // Durability. With durable on, every replica gets a storage::NodeStorage
  // (in-memory backend unless wal_dir names a real directory) attached to
  // its simulator Context, so acceptor promises/accepts, rmcast staging and
  // a-deliveries are logged and their externalizations gated on commit.
  struct DurabilityOptions {
    bool durable = false;
    storage::FsyncPolicy fsync;       ///< commit policy for every replica
    std::string wal_dir;              ///< empty → deterministic MemBackend
    std::uint64_t snapshot_every = 4096;  ///< records between snapshots
  };
  DurabilityOptions durability;

  // Observability.
  bool observe = false;        ///< attach a metrics registry to the run
  bool trace = false;          ///< also record per-message spans (implies observe)
  std::string metrics_out;     ///< write metrics JSON here (implies observe)
  /// Nominal one-way delay for empirical δ-accounting; with trace on and
  /// delta > 0 the result carries a DeltaSummary of hop counts.
  Duration delta = 0;

  // Environment overrides (δ-accounting uses a jitter-free uniform latency).
  std::function<std::unique_ptr<sim::LatencyModel>(const Membership*)>
      latency_factory;                     ///< replaces make_latency(env)
  std::optional<sim::CpuModel> cpu_override;  ///< replaces cpu_for(env)
};

inline std::function<DstPicker(std::size_t)> same_dst_for_all(DstPicker p) {
  return [p = std::move(p)](std::size_t) { return p; };
}

struct ExperimentResult {
  LatencyRecorder latency;          ///< completion latencies in the window
  ThroughputSummary throughput;     ///< completions/s across window slices
  Checker::Report report;
  bool drained = false;
  std::uint64_t events_processed = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t fast_path_hits = 0;  ///< FastCast Task-6 matches (all replicas)
  std::uint64_t slow_path_hits = 0;  ///< SYNC-HARDs ordered via consensus
  /// A-deliveries externalized by all replicas during the measurement
  /// window (completion-independent: open-loop saturation shows up here
  /// even when ack latency grows without bound).
  std::uint64_t window_deliveries = 0;

  // Overload accounting (flow layer). `window_goodput` counts windowed
  // completions that met their deadline — what benches report as goodput,
  // distinct from raw deliveries. The terminal buckets are exclusive per
  // request: sent == completions + rejected + expired + timed_out +
  // in_flight_end (the conservation law overload chaos asserts).
  std::uint64_t sent = 0;             ///< primary sends across all clients
  std::uint64_t completions = 0;      ///< acked requests (window-independent)
  std::uint64_t window_goodput = 0;
  std::uint64_t rejected = 0;         ///< terminal Busy/kOverload
  std::uint64_t expired = 0;          ///< terminal Busy/kExpired
  std::uint64_t timed_out = 0;        ///< client gave up waiting
  std::uint64_t deadline_miss = 0;    ///< completed but past deadline
  std::uint64_t suppressed = 0;       ///< open-loop ticks shed during backoff
  std::uint64_t retries = 0;          ///< budgeted resubmits
  std::uint64_t busy_received = 0;    ///< Busy frames seen (incl. advisory)
  std::uint64_t in_flight_end = 0;    ///< unresolved at run end
  /// Per-slice completion counts of the measurement window (the data behind
  /// `throughput`); lets callers see duty-cycling a mean would hide.
  std::vector<std::uint64_t> slices;
  /// Run-wide metrics/spans; null unless observe/trace/metrics_out was set.
  std::shared_ptr<obs::Observability> obs;
  /// Filled when trace is on and delta > 0.
  obs::DeltaSummary delta_summary;
};

/// A fully wired cluster. Lifetime: construct → start() → run via
/// simulator() → collect results.
class Cluster {
 public:
  explicit Cluster(const ExperimentConfig& config);

  sim::Simulator& simulator() { return *sim_; }
  Checker& checker() { return checker_; }
  Metrics& metrics() { return *metrics_; }
  /// Null unless the config asked for observability.
  const std::shared_ptr<obs::Observability>& observability() const {
    return obs_;
  }
  const Deployment& deployment() const { return deployment_; }
  const ExperimentConfig& config() const { return config_; }

  void start() { sim_->start(); }

  /// Forbids new client sends from `at` on (closed loops go idle).
  void stop_clients(Time at);

  ReplicaNode& replica(NodeId node);
  ClientProcess& client(std::size_t idx);
  std::size_t replica_count() const { return replicas_.size(); }
  std::size_t client_count() const { return clients_.size(); }

  /// Sums sent counts / unresolved requests over all clients (overload
  /// conservation accounting).
  std::uint64_t total_sent() const;
  std::uint64_t total_in_flight() const;

  /// Sums FastCast fast/slow path counters over all replicas.
  std::pair<std::uint64_t, std::uint64_t> path_stats() const;

  /// Sums a-deliveries externalized so far over all replicas.
  std::uint64_t total_deliveries() const;

  /// Null unless the config asked for durability.
  storage::StorageManager* storage() { return storage_.get(); }

  /// Crash-recovers one replica as a real process death would: discards the
  /// old protocol/ReplicaNode objects, re-reads the node's snapshot + WAL
  /// (storage::NodeStorage::reset_and_recover), and builds a fresh stack
  /// seeded only from that durable state. The returned process is what the
  /// simulator's recovery factory installs before on_recover runs.
  std::shared_ptr<Process> rebuild_replica(NodeId node);

 private:
  std::shared_ptr<AtomicMulticast> make_protocol(NodeId node, GroupId group);
  std::unique_ptr<ClientStub> make_stub();

  std::shared_ptr<ReplicaNode> make_replica(NodeId node,
                                            std::shared_ptr<AtomicMulticast>);

  ExperimentConfig config_;
  Deployment deployment_;
  std::shared_ptr<obs::Observability> obs_;
  std::unique_ptr<storage::StorageManager> storage_;
  std::unique_ptr<sim::Simulator> sim_;
  Checker checker_;
  std::shared_ptr<Metrics> metrics_;
  std::vector<std::shared_ptr<ReplicaNode>> replicas_;        // by replica idx
  std::vector<std::shared_ptr<AtomicMulticast>> protocols_;   // parallel
  std::vector<std::shared_ptr<ClientProcess>> clients_;
  /// Durable runs: per-node delivery ids already reported to the checker.
  /// Outlives replica rebuilds so re-externalized in-doubt deliveries are
  /// observed exactly once.
  std::map<NodeId, std::set<MsgId>> seen_deliveries_;
};

/// The standard regimen: warm up, measure, optionally drain, check.
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace fastcast::harness
