#pragma once

#include <cstdint>
#include <string>

#include "fastcast/harness/experiment.hpp"
#include "fastcast/sim/chaos.hpp"

/// \file chaos.hpp
/// Randomized fault-campaign runner shared by the chaos tests and the
/// chaos_campaign bench: wires a standard harness Cluster to a seeded
/// ChaosSchedule, runs the measurement window under crash/recover windows,
/// drop bursts and partitions, and reports safety (the checker's
/// properties, non-quiesced) plus availability and failover latency.
///
/// Every run is a deterministic function of (config, seed): a failing
/// campaign reproduces from the seed printed in its report.

namespace fastcast::harness {

struct ChaosRunConfig {
  ExperimentConfig experiment;  ///< base deployment/workload/windows
  /// Fault schedule knobs. start/end default to the measurement window
  /// when end <= start. Campaigns should pair a nonzero
  /// experiment.drop_probability with experiment.heartbeats = true so the
  /// lossy-link machinery (retransmission, catch-up, re-election) is armed.
  sim::ChaosConfig faults;
  std::uint64_t seed = 1;  ///< overrides experiment.seed; also fault seed
  /// Post-window settle time before the safety check (recovered nodes keep
  /// catching up; the run never fully drains with heartbeats on).
  Duration cooldown = milliseconds(500);
};

struct ChaosRunResult {
  Checker::Report report;       ///< non-quiesced safety verdict
  sim::ChaosSchedule schedule;  ///< what was injected (for failure reports)

  std::uint64_t completions = 0;  ///< client completions in the window
  /// Fraction of measurement slices with at least one client completion —
  /// the campaign's availability signal (1.0 = no visible outage).
  double availability = 0.0;

  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t leader_failovers = 0;
  std::int64_t failover_p99_ns = 0;  ///< paxos.failover_latency_ns p99

  /// One-line summary for campaign tables / failure messages.
  std::string to_string() const;
};

/// Runs one seeded chaos campaign. The checker runs at level
/// experiment.check_level with quiesced = false (safety properties only —
/// the run cannot drain while heartbeat timers keep ticking).
ChaosRunResult run_chaos(const ChaosRunConfig& config);

}  // namespace fastcast::harness
