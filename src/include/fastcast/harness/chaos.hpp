#pragma once

#include <cstdint>
#include <string>

#include "fastcast/harness/experiment.hpp"
#include "fastcast/sim/chaos.hpp"

/// \file chaos.hpp
/// Randomized fault-campaign runner shared by the chaos tests and the
/// chaos_campaign bench: wires a standard harness Cluster to a seeded
/// ChaosSchedule, runs the measurement window under crash/recover windows,
/// drop bursts and partitions, and reports safety (the checker's
/// properties, non-quiesced) plus availability and failover latency.
///
/// Every run is a deterministic function of (config, seed): a failing
/// campaign reproduces from the seed printed in its report.

namespace fastcast::harness {

struct ChaosRunConfig {
  ExperimentConfig experiment;  ///< base deployment/workload/windows
  /// Fault schedule knobs. start/end default to the measurement window
  /// when end <= start. Campaigns should pair a nonzero
  /// experiment.drop_probability with experiment.heartbeats = true so the
  /// lossy-link machinery (retransmission, catch-up, re-election) is armed.
  sim::ChaosConfig faults;
  std::uint64_t seed = 1;  ///< overrides experiment.seed; also fault seed
  /// Post-window settle time before the safety check (recovered nodes keep
  /// catching up; the run never fully drains with heartbeats on).
  Duration cooldown = milliseconds(500);
};

/// With experiment.durability.durable set, every crash becomes a real
/// process death: the crash hook drops a torn suffix of the victim's
/// unsynced WAL bytes, and recovery rebuilds the replica from scratch out
/// of its snapshot + surviving log (Cluster::rebuild_replica). The run
/// additionally tracks every promise/accept an acceptor externalizes and,
/// at the end, re-reads each replica's durable state to assert none of
/// them regressed — the WAL-before-send contract, checked from the wire.

struct ChaosRunResult {
  Checker::Report report;       ///< non-quiesced safety verdict
  sim::ChaosSchedule schedule;  ///< what was injected (for failure reports)

  std::uint64_t completions = 0;  ///< client completions in the window
  /// Fraction of measurement slices with at least one client completion —
  /// the campaign's availability signal (1.0 = no visible outage).
  double availability = 0.0;

  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t leader_failovers = 0;
  std::int64_t failover_p99_ns = 0;  ///< paxos.failover_latency_ns p99

  // Durable-mode extras (zero when durability is off).
  std::uint64_t replayed_records = 0;   ///< WAL records replayed on recoveries
  std::uint64_t storage_snapshots = 0;  ///< snapshots taken across the run
  /// Per-(acceptor, group) no-regression checks performed against the
  /// re-read durable state. Violations land in report.violations.
  std::uint64_t durability_checks = 0;

  // Overload extras (zero unless experiment.flow.enable). The terminal
  // buckets are exclusive per request; overload campaigns assert the
  // conservation law sent == completions + rejected + expired + timed_out
  // with in_flight_end == 0 after the settle window — admitted messages
  // are never silently lost.
  std::uint64_t sent = 0;
  std::uint64_t rejected = 0;    ///< terminal Busy/kOverload
  std::uint64_t expired = 0;     ///< terminal Busy/kExpired
  std::uint64_t timed_out = 0;   ///< client gave up waiting
  std::uint64_t suppressed = 0;  ///< open-loop ticks shed during backoff
  std::uint64_t retries = 0;     ///< budgeted resubmits
  std::uint64_t in_flight_end = 0;  ///< unresolved at run end

  // Repair extras (zero unless experiment.repair.enable).
  std::uint64_t repair_transfers = 0;          ///< snapshot transfers started
  std::uint64_t repair_completed = 0;          ///< transfers fully installed
  std::uint64_t repair_entries_installed = 0;  ///< decided values installed
  std::int64_t prune_watermark = 0;            ///< highest acceptor prune floor
  /// Residual lag at end of run: per consensus group, the spread
  /// (max - min) of the learners' decided frontiers across its replicas,
  /// maximized over groups. This is the lag campaigns' catch-up signal — a
  /// single dropped transfer request is benign as long as the replica is
  /// back near the frontier by the end of the settle window.
  std::uint64_t end_max_lag = 0;

  /// One-line summary for campaign tables / failure messages.
  std::string to_string() const;
};

/// Runs one seeded chaos campaign. The checker runs at level
/// experiment.check_level with quiesced = false (safety properties only —
/// the run cannot drain while heartbeat timers keep ticking).
ChaosRunResult run_chaos(const ChaosRunConfig& config);

}  // namespace fastcast::harness
