#pragma once

#include <cstddef>
#include <cstdint>

#include "fastcast/common/time.hpp"

/// \file overload.hpp
/// End-to-end overload control (DESIGN.md §14).
///
/// The controller is a CoDel-style admission gate: instead of tripping on
/// instantaneous queue depth (which confuses a burst with overload), it
/// watches the *sojourn time* of work through the node — how long staged
/// submissions wait before being proposed, and how long proposals take to
/// decide. When the smoothed sojourn estimate stays above `target_delay`
/// for a full `trigger_window`, the node is genuinely saturated (arrival
/// rate > service rate, queues growing) and the controller starts shedding;
/// it reopens only once the estimate has fallen back below half the target
/// (hysteresis, so admission does not flap at the boundary). A hard depth
/// cap backstops the latency signal against pathological bursts.
///
/// Who may shed is protocol-dependent and is the crux of the design:
///
///   * The MultiPaxos ordering leader is a real admission point. A client
///     submission it has not yet seen is uncommitted — rejecting it with a
///     non-advisory `Busy` is safe, and the single serialization point
///     makes the verdict authoritative.
///   * Genuine protocols (FastCast/BaseCast) CANNOT renege once a message
///     is reliably multicast: a tentative timestamp staged in one group
///     that never finalizes would stall every other destination group's
///     delivery buffer forever. Their group leaders therefore send only
///     *advisory* Busy — the message is still processed in full; the
///     client is asked to back off.
///
/// Clients close the loop (flow::ClientOptions): they stamp deadlines,
/// time out silent requests, back off exponentially on Busy/timeout, and
/// spend retries from a budget proportional to primary sends so that a
/// saturated cluster sees shed load instead of a retry storm.

namespace fastcast::flow {

/// Server-side admission knobs (per protocol node).
struct Options {
  bool enable = false;            ///< off ⇒ admit() always true, no advisories
  Duration target_delay = milliseconds(5);   ///< CoDel sojourn target
  Duration trigger_window = milliseconds(20);///< sustained-excess window
  std::size_t max_depth = 4096;   ///< hard pipeline-depth backstop
  double ewma_alpha = 0.3;        ///< sojourn EWMA smoothing factor
  Duration retry_after_base = milliseconds(2);  ///< floor for the Busy hint
};

/// Client-side robustness knobs. Every behaviour is gated on its knob being
/// nonzero, so the default-constructed value reproduces pre-flow clients.
struct ClientOptions {
  Duration deadline = 0;        ///< per-request deadline stamped as now+deadline
  Duration request_timeout = 0; ///< give up on a silent request after this long
  Duration backoff_base = 0;    ///< first backoff step on Busy/timeout
  Duration backoff_max = milliseconds(64);  ///< backoff cap
  double retry_budget = 0;      ///< retry tokens accrued per primary send
  std::uint32_t max_retries = 2;  ///< per-message retry cap
  /// AIMD injection pacing for open-loop clients (0 = off). Backoff windows
  /// alone give a client only two rates — line rate or silence — so a fleet
  /// oscillates in lockstep with the server's admission gate and the server
  /// idles between bursts. With pacing, each tick outside a backoff window
  /// sends with probability `pace`: Busy/timeout halves pace (at most once
  /// per backoff window), each completion adds `pace_increase`. The fleet
  /// converges near the capacity/offered ratio instead of duty-cycling.
  double pace_increase = 0;
};

/// CoDel-style overload detector. Single-threaded (lives inside a Process);
/// fed sojourn samples and depth observations by its owning protocol.
class OverloadController {
 public:
  OverloadController() = default;
  explicit OverloadController(const Options& opt) : opt_(opt) {}

  bool enabled() const { return opt_.enable; }
  const Options& options() const { return opt_; }

  /// Records one queueing-delay observation (staging wait, propose→decide
  /// round trip, ...). `now` anchors the sustained-excess window.
  void note_sojourn(Time now, Duration sojourn);

  /// Records how long a submission spent *reaching* this node (client send
  /// → admission, from the envelope's sent_at stamp). Kept separate from
  /// note_sojourn: the two populations have very different scales, and one
  /// EWMA over both flickers around the target instead of sustaining above
  /// it — post-admission staging waits are short even while arrivals are
  /// tens of ms stale. The gate triggers on the *sum* of the two estimates
  /// (expected client-send → ordered delay).
  void note_arrival_lag(Time now, Duration lag);

  /// Records the current pipeline depth (staged + queued + in-flight work).
  void note_depth(std::size_t depth) { depth_ = depth; }

  /// Advances the state machine and returns whether the node is shedding.
  bool overloaded(Time now) {
    update(now);
    return shedding_;
  }

  /// True ⇔ the submission should be accepted. Equivalent to
  /// `!overloaded(now)` but reads as the admission decision it is.
  bool admit(Time now) { return !overloaded(now); }

  /// ECN/RED-style early-warning signal: the probability with which an
  /// admitted submission should carry an advisory Busy. Ramps linearly from
  /// 0 at half the target delay to 1 at the target (1 while shedding), so
  /// the aggregate slow-down pressure on the client fleet is proportional
  /// to the excess. Marking every message above a hard threshold instead
  /// parks the fleet just *below* it — and an empty queue means an idle
  /// server; the probabilistic ramp lets a small standing queue persist,
  /// which is exactly what keeps the server busy without risking deadlines.
  /// Rejection (the gate itself) stays a rare backstop, because every
  /// rejection costs a request.
  double mark_probability(Time now) {
    update(now);
    if (shedding_) return 1.0;
    const auto target = static_cast<double>(opt_.target_delay);
    const double excess = (ewma_ns_ + arrival_ewma_) - target * 0.5;
    if (excess <= 0) return 0.0;
    const double p = excess / (target * 0.5);
    return p < 1.0 ? p : 1.0;
  }

  /// Smoothed post-admission queueing estimate: the "residual delay" a
  /// newly admitted message can expect before it is ordered. Deliberately
  /// excludes arrival lag — a message processed now has already *paid* its
  /// lag, so deadline checks add residual to `now`, not lag twice.
  Duration estimated_delay() const {
    return static_cast<Duration>(ewma_ns_);
  }

  /// Smoothed client-send → admission lag (0 without sent_at stamps).
  Duration arrival_lag() const { return static_cast<Duration>(arrival_ewma_); }

  /// Expected client-send → ordered delay; what the gate compares against
  /// target_delay.
  Duration total_delay() const {
    return static_cast<Duration>(ewma_ns_ + arrival_ewma_);
  }

  /// Backoff hint carried in Busy replies: roughly how long the current
  /// queues need to drain.
  Duration retry_after() const {
    const Duration est = total_delay();
    return est > opt_.retry_after_base ? est : opt_.retry_after_base;
  }

  bool shedding() const { return shedding_; }
  std::size_t depth() const { return depth_; }

 private:
  void update(Time now);
  static void note(const Options& opt, double& ewma, Time& last, Duration sample);
  void decay_idle(Time now, double& ewma, Time& last) const;

  Options opt_;
  double ewma_ns_ = 0;        ///< smoothed post-admission sojourn, ns
  double arrival_ewma_ = 0;   ///< smoothed client→admission lag, ns
  Time first_above_ = -1;     ///< when the estimate first exceeded target (-1 = not)
  // Idle-decay clocks are per estimator: while shedding, nothing is proposed,
  // so the sojourn stream goes silent exactly when its estimate must decay —
  // and arrival samples from trickling clients must not keep resetting it.
  Time last_sojourn_ = -1;    ///< last sojourn observation (for idle decay)
  Time last_arrival_ = -1;    ///< last arrival-lag observation (for idle decay)
  std::size_t depth_ = 0;
  bool shedding_ = false;
};

}  // namespace fastcast::flow
